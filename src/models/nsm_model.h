#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "index/bplus_tree.h"
#include "index/transformation_table.h"
#include "models/normalization.h"
#include "models/storage_model.h"
#include "storage/record_manager.h"

/// \file nsm_model.h
/// The Normalized Storage Model (§3.3): one flat relation per tuple-type
/// path, stored in small shared-page records.
///
/// Plain NSM has no access path except full relation scans — every
/// value-based selection reads a whole relation, which is why the paper
/// finds it "not particularly suited for complex object storage". Object
/// references (query 1a) are unsupported ("With NSM we have no
/// identifiers").
///
/// The indexed variant (the paper's "NSM+index" rows of Table 3) adds an
/// in-memory root-key index on each non-root relation: "a page is read from
/// disk then and only then if a tuple it stores is requested". Value
/// selection on the root relation itself still scans — the index maps root
/// keys of child tuples, not the root relation's own key.

namespace starfish {

/// NSM behaviour switches.
struct NsmModelOptions {
  /// Maintain and use root-key indexes on the child relations.
  bool with_index = false;

  /// Store those indexes in persistent B+-trees whose page I/O is metered,
  /// instead of the paper's free in-memory tables. Implies with_index.
  /// This is the "honest" NSM+index the ablation benches quantify: index
  /// probes cost real page fixes and, when cold, real reads.
  bool persistent_index = false;
};

/// NSM / NSM+index implementation.
class NsmModel : public StorageModel {
 public:
  static Result<std::unique_ptr<NsmModel>> Create(StorageEngine* engine,
                                                  ModelConfig config,
                                                  NsmModelOptions options);

  StorageModelKind kind() const override {
    return options_.with_index ? StorageModelKind::kNsmIndexed
                               : StorageModelKind::kNsm;
  }

  Status Insert(ObjectRef ref, const Tuple& object) override;
  Result<Tuple> GetByRef(ObjectRef ref, const Projection& proj) override;
  Result<Tuple> GetByKey(int64_t key, const Projection& proj) override;
  Status ScanAll(const Projection& proj, const ScanCallback& fn) override;
  Result<std::vector<ObjectRef>> GetChildRefs(ObjectRef ref) override;
  Result<Tuple> GetRootRecord(ObjectRef ref) override;
  /// Plain NSM answers a whole batch with one scan of each link relation
  /// (set-oriented value selection); the indexed variant fetches per object.
  Result<std::vector<std::vector<ObjectRef>>> GetChildRefsBatch(
      const std::vector<ObjectRef>& refs) override;
  Result<std::vector<Tuple>> GetRootRecordsBatch(
      const std::vector<ObjectRef>& refs) override;
  Status UpdateRootRecord(ObjectRef ref, const Tuple& new_root) override;
  Status ReplaceObject(ObjectRef ref, const Tuple& new_object) override;
  Status Remove(ObjectRef ref) override;
  bool SupportsGetByRef() const override { return options_.with_index; }
  uint64_t object_count() const override { return live_count_; }
  Status SaveState(std::string* out) const override;
  Status LoadState(std::string_view* in) override;
  Status CollectLiveTids(std::vector<Tid>* out) const override;
  /// Every write op shreds the object over all path relations (and their
  /// index trees), so the write-latch set is all of them — NSM ops never
  /// apply in parallel with each other.
  void CollectWriteSegments(ObjectRef ref,
                            std::vector<Segment*>* out) const override;
  /// Plain NSM has no by-ref access; undo capture goes through the key map.
  Result<Tuple> ReadObjectForUndo(ObjectRef ref) override;

  /// The decomposition in use (tests/calibration).
  const NsmDecomposition& decomposition() const { return decomp_; }

  /// Relation segment of one path (tests/calibration).
  Segment* segment(PathId path) { return segments_[path]; }

 private:
  NsmModel(ModelConfig config, NsmDecomposition decomp,
           NsmModelOptions options);

  /// Scans the whole relation of `path`, calling `fn` for each flat tuple.
  Status ScanRelation(PathId path,
                      const std::function<Status(Tid, const Tuple&)>& fn);

  /// Index probe: addresses of object `key`'s tuples in `path` (empty when
  /// none). Uses the metered B+-tree when persistent_index is set,
  /// otherwise the free in-memory table.
  Result<std::vector<Tid>> ChildTids(PathId path, int64_t key);

  /// Index maintenance on insert/replace/remove.
  Status IndexAdd(PathId path, int64_t key, const Tid& tid);
  Status IndexDropKey(PathId path, int64_t key);

  /// Reads the flat tuples at `tids` (index-assisted fetch).
  Result<std::vector<Tuple>> FetchTuples(PathId path,
                                         const std::vector<Tid>& tids);

  /// Collects the flat tuples of object `key` for every projected path:
  /// relation scans (plain) or index fetches (indexed).
  Result<ShreddedObject> CollectObject(int64_t key, const Projection& proj);

  Result<int64_t> RefToKey(ObjectRef ref) const;

  NsmDecomposition decomp_;
  NsmModelOptions options_;
  std::vector<Segment*> segments_;                       // per path
  std::vector<std::unique_ptr<RecordManager>> records_;  // per path
  // In-memory maps (uncounted, per the paper's accounting).
  std::vector<int64_t> key_of_ref_;  // kNoKey sentinel marks free refs
  std::unordered_map<int64_t, ObjectRef> ref_of_key_;
  std::vector<Tid> root_tid_of_ref_;
  std::vector<TransformationTable> index_;  // per path: RootKey -> tids
  // Metered twins of index_ (persistent_index mode only; empty otherwise).
  std::vector<std::unique_ptr<BPlusTree>> trees_;
  uint64_t live_count_ = 0;
};

}  // namespace starfish
