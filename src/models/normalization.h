#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "nf2/projection.h"
#include "nf2/schema.h"
#include "nf2/value.h"
#include "util/status.h"

/// \file normalization.h
/// Generic decomposition of NF² objects into normalized relations.
///
/// Implements §3.3/§3.4 of the paper for *arbitrary* root schemas, not just
/// the benchmark's Station:
///
///   **NSM** — one flat relation per tuple-type path. Three kinds of key
///   attributes are added, with the paper's "superfluous keys omitted" rule:
///     * RootKey   — key of the owning object (all non-root paths);
///     * ParentKey — own key of the parent sub-tuple (paths at depth >= 2;
///                   at depth 1 it would equal RootKey);
///     * OwnKey    — ordinal of this sub-tuple within the object (only on
///                   paths that have child paths; leaf paths are never
///                   referred to).
///   Relation-valued attributes are dropped from the flat tuples (the
///   nesting is recoverable from the keys).
///
///   **DASDBS-NSM** — the same rows re-*nested* per object, so each relation
///   keeps a single tuple per object and the root/parent keys are not
///   replicated into sibling tuples:
///     * depth-1 paths:   ( RootKey, {( [OwnKey,] data... )} )
///     * depth>=2 paths:  ( RootKey, {( ParentKey, {( [OwnKey,] data... )} )} )
///   Own keys are unique per path within an object, so grouping by the
///   immediate parent key is lossless at any depth.
///
/// Shred turns an object into relation tuples (document order); Assemble
/// inverts it, honouring a Projection (unselected paths come back as empty
/// relations).

namespace starfish {

/// One derived relation of a decomposition.
struct DecomposedRelation {
  PathId path = kRootPath;  ///< source tuple-type path
  uint32_t depth = 0;       ///< 0 = root relation

  /// Flat relation schema (NSM layout: added keys first, then data attrs).
  std::shared_ptr<const Schema> flat_schema;

  /// Nested relation schema (DASDBS-NSM layout); null for the root path,
  /// whose relation stays flat.
  std::shared_ptr<const Schema> nested_schema;

  bool has_root_key = false;    ///< flat attr 0
  bool has_parent_key = false;  ///< flat attr 1 (when present)
  bool has_own_key = false;     ///< flat attr after the foreign keys

  /// Index of the first data attribute within the flat schema.
  size_t data_offset = 0;

  /// For each data attribute: its index in the original path schema.
  std::vector<size_t> data_source;

  /// True if any data attribute is a LINK.
  bool has_links = false;
};

/// Shredded object: for each path (indexed by PathId) the flat tuples of
/// that path, in document order.
using ShreddedObject = std::vector<std::vector<Tuple>>;

/// Decomposition options.
struct DecompositionOptions {
  /// The paper's "superfluous keys omitted" rule drops OwnKey from leaf
  /// paths ("not referred to"). That saves 4 bytes per leaf tuple but
  /// loses sub-tuple document order once structural updates reuse freed
  /// slots, so the storage models default to keeping own keys everywhere;
  /// set true for the paper's exact Figure-3 layout.
  bool omit_leaf_own_keys = false;
};

/// NSM decomposition of one root schema.
class NsmDecomposition {
 public:
  /// Derives the relation schemas. `key_attr_index` names the root
  /// attribute holding the object key (must be Int32).
  static Result<NsmDecomposition> Derive(std::shared_ptr<const Schema> root,
                                         size_t key_attr_index,
                                         DecompositionOptions options = {});

  /// One entry per PathId of the root schema.
  const std::vector<DecomposedRelation>& relations() const { return relations_; }
  const DecomposedRelation& relation(PathId path) const { return relations_[path]; }

  const std::shared_ptr<const Schema>& root_schema() const { return root_; }
  size_t key_attr_index() const { return key_attr_index_; }

  /// Splits an object into flat relation tuples.
  Result<ShreddedObject> Shred(const Tuple& object) const;

  /// Rebuilds the object from (a projection-subset of) its flat tuples.
  /// parts[p] may be in any order; sub-tuples are re-ordered by OwnKey when
  /// present and by arrival order otherwise.
  Result<Tuple> Assemble(const ShreddedObject& parts,
                         const Projection& projection) const;

  /// Re-nests the flat tuples of `path` into the single DASDBS-NSM relation
  /// tuple for one object (`key` supplies the RootKey).
  Result<Tuple> Nest(PathId path, int64_t key,
                     const std::vector<Tuple>& flat_tuples) const;

  /// Inverse of Nest: extracts the flat tuples of `path` from the nested
  /// relation tuple.
  Result<std::vector<Tuple>> Unnest(PathId path, const Tuple& nested) const;

 private:
  NsmDecomposition() = default;

  Status ShredRec(const Schema& schema, PathId path, const Tuple& tuple,
                  int64_t root_key, int64_t parent_key,
                  std::vector<uint32_t>* ordinals, ShreddedObject* out) const;

  Status AssembleRec(PathId path, const Tuple& flat, const ShreddedObject& parts,
                     const Projection& projection, Tuple* out) const;

  std::shared_ptr<const Schema> root_;
  size_t key_attr_index_ = 0;
  std::vector<DecomposedRelation> relations_;
};

}  // namespace starfish
