#include "models/normalization.h"

#include <algorithm>
#include <map>

namespace starfish {

namespace {

/// Depth of `path` in the schema tree (root = 0).
uint32_t DepthOf(const Schema& root, PathId path) {
  uint32_t depth = 0;
  while (path != kRootPath) {
    path = root.path(path).parent;
    ++depth;
  }
  return depth;
}

/// True if any path has `path` as its parent.
bool HasChildPaths(const Schema& root, PathId path) {
  for (PathId q = 1; q < root.path_count(); ++q) {
    if (root.path(q).parent == path) return true;
  }
  return false;
}

}  // namespace

Result<NsmDecomposition> NsmDecomposition::Derive(
    std::shared_ptr<const Schema> root, size_t key_attr_index,
    DecompositionOptions options) {
  if (root == nullptr || root->path_count() == 0) {
    return Status::InvalidArgument("schema must be a finalized root schema");
  }
  if (key_attr_index >= root->attributes().size() ||
      root->attributes()[key_attr_index].type != AttrType::kInt32) {
    return Status::InvalidArgument(
        "key attribute must be an Int32 root attribute");
  }

  NsmDecomposition out;
  out.root_ = root;
  out.key_attr_index_ = key_attr_index;

  for (PathId p = 0; p < root->path_count(); ++p) {
    const Schema& node = *root->path(p).schema;
    DecomposedRelation rel;
    rel.path = p;
    rel.depth = DepthOf(*root, p);
    rel.has_root_key = p != kRootPath;
    rel.has_parent_key = rel.depth >= 2;
    // The root relation's own key is its existing key attribute. Leaf
    // paths keep an own key unless the paper's omission rule is requested
    // (see DecompositionOptions::omit_leaf_own_keys).
    rel.has_own_key =
        p != kRootPath &&
        (HasChildPaths(*root, p) || !options.omit_leaf_own_keys);

    SchemaBuilder flat("NSM_" + root->path(p).qualified_name);
    if (rel.has_root_key) flat.AddInt32("RootKey");
    if (rel.has_parent_key) flat.AddInt32("ParentKey");
    if (rel.has_own_key) flat.AddInt32("OwnKey");
    rel.data_offset = static_cast<size_t>(rel.has_root_key) +
                      static_cast<size_t>(rel.has_parent_key) +
                      static_cast<size_t>(rel.has_own_key);
    for (size_t i = 0; i < node.attributes().size(); ++i) {
      const Attribute& attr = node.attributes()[i];
      if (attr.type == AttrType::kRelation) continue;
      switch (attr.type) {
        case AttrType::kInt32:
          flat.AddInt32(attr.name);
          break;
        case AttrType::kString:
          flat.AddString(attr.name);
          break;
        case AttrType::kLink:
          flat.AddLink(attr.name);
          rel.has_links = true;
          break;
        case AttrType::kRelation:
          break;
      }
      rel.data_source.push_back(i);
    }
    rel.flat_schema = flat.Build();

    if (p != kRootPath) {
      // Leaf tuple type of the nested layout: [OwnKey,] data attrs.
      SchemaBuilder leaf("DNSM_leaf_" + root->path(p).qualified_name);
      if (rel.has_own_key) leaf.AddInt32("OwnKey");
      for (size_t src : rel.data_source) {
        const Attribute& attr = node.attributes()[src];
        switch (attr.type) {
          case AttrType::kInt32:
            leaf.AddInt32(attr.name);
            break;
          case AttrType::kString:
            leaf.AddString(attr.name);
            break;
          case AttrType::kLink:
            leaf.AddLink(attr.name);
            break;
          case AttrType::kRelation:
            break;
        }
      }
      auto leaf_schema = leaf.Build();

      SchemaBuilder nested("DASDBS-NSM_" + root->path(p).qualified_name);
      nested.AddInt32("RootKey");
      if (rel.depth >= 2) {
        auto group_schema = SchemaBuilder("DNSM_group_" +
                                          root->path(p).qualified_name)
                                .AddInt32("ParentKey")
                                .AddRelation("Tuples", leaf_schema)
                                .Build();
        nested.AddRelation("Groups", group_schema);
      } else {
        nested.AddRelation("Tuples", leaf_schema);
      }
      rel.nested_schema = nested.Build();
    }

    out.relations_.push_back(std::move(rel));
  }
  return out;
}

Result<ShreddedObject> NsmDecomposition::Shred(const Tuple& object) const {
  STARFISH_RETURN_NOT_OK(ValidateTuple(*root_, object));
  const Value& key_value = object.values[key_attr_index_];
  const int64_t root_key = key_value.as_int32();
  ShreddedObject out(root_->path_count());
  std::vector<uint32_t> ordinals(root_->path_count(), 0);
  STARFISH_RETURN_NOT_OK(ShredRec(*root_, kRootPath, object, root_key,
                                  /*parent_key=*/0, &ordinals, &out));
  return out;
}

Status NsmDecomposition::ShredRec(const Schema& schema, PathId path,
                                  const Tuple& tuple, int64_t root_key,
                                  int64_t parent_key,
                                  std::vector<uint32_t>* ordinals,
                                  ShreddedObject* out) const {
  const DecomposedRelation& rel = relations_[path];
  const int64_t own_key = (*ordinals)[path]++;

  Tuple flat;
  if (rel.has_root_key) {
    flat.values.push_back(Value::Int32(static_cast<int32_t>(root_key)));
  }
  if (rel.has_parent_key) {
    flat.values.push_back(Value::Int32(static_cast<int32_t>(parent_key)));
  }
  if (rel.has_own_key) {
    flat.values.push_back(Value::Int32(static_cast<int32_t>(own_key)));
  }
  for (size_t src : rel.data_source) {
    flat.values.push_back(tuple.values[src]);
  }
  (*out)[path].push_back(std::move(flat));

  for (size_t i = 0; i < schema.attributes().size(); ++i) {
    const Attribute& attr = schema.attributes()[i];
    if (attr.type != AttrType::kRelation) continue;
    STARFISH_ASSIGN_OR_RETURN(PathId child, root_->ChildPath(path, i));
    for (const Tuple& sub : tuple.values[i].as_relation()) {
      STARFISH_RETURN_NOT_OK(
          ShredRec(*attr.relation, child, sub, root_key, own_key, ordinals, out));
    }
  }
  return Status::OK();
}

Result<Tuple> NsmDecomposition::Assemble(const ShreddedObject& parts,
                                         const Projection& projection) const {
  if (parts.size() != root_->path_count()) {
    return Status::InvalidArgument("parts must have one entry per path");
  }
  if (parts[kRootPath].size() != 1) {
    return Status::InvalidArgument("expected exactly one root tuple, got " +
                                   std::to_string(parts[kRootPath].size()));
  }
  Tuple out;
  STARFISH_RETURN_NOT_OK(
      AssembleRec(kRootPath, parts[kRootPath][0], parts, projection, &out));
  return out;
}

Status NsmDecomposition::AssembleRec(PathId path, const Tuple& flat,
                                     const ShreddedObject& parts,
                                     const Projection& projection,
                                     Tuple* out) const {
  const DecomposedRelation& rel = relations_[path];
  const Schema& node = *root_->path(path).schema;
  if (flat.values.size() != rel.flat_schema->attributes().size()) {
    return Status::Corruption("flat tuple arity mismatch for path " +
                              std::to_string(path));
  }

  // Own key of this tuple (used to claim children at depth >= 2).
  int64_t own_key = 0;
  if (rel.has_own_key) {
    const size_t idx = static_cast<size_t>(rel.has_root_key) +
                       static_cast<size_t>(rel.has_parent_key);
    own_key = flat.values[idx].as_int32();
  }

  out->values.assign(node.attributes().size(), Value());
  // Data attributes back into their original positions.
  for (size_t d = 0; d < rel.data_source.size(); ++d) {
    out->values[rel.data_source[d]] = flat.values[rel.data_offset + d];
  }

  // Relation attributes: collect and order matching child tuples.
  for (size_t i = 0; i < node.attributes().size(); ++i) {
    const Attribute& attr = node.attributes()[i];
    if (attr.type != AttrType::kRelation) continue;
    STARFISH_ASSIGN_OR_RETURN(PathId child, root_->ChildPath(path, i));
    if (!projection.Includes(child)) {
      out->values[i] = Value::Relation({});
      continue;
    }
    const DecomposedRelation& crel = relations_[child];
    std::vector<const Tuple*> mine;
    for (const Tuple& cand : parts[child]) {
      if (crel.has_parent_key) {
        if (cand.values[1].as_int32() != own_key) continue;
      }
      // Depth-1 children: every tuple of the path belongs to this (root)
      // object — parts are per-object already.
      mine.push_back(&cand);
    }
    if (crel.has_own_key) {
      const size_t own_idx = static_cast<size_t>(crel.has_root_key) +
                             static_cast<size_t>(crel.has_parent_key);
      std::stable_sort(mine.begin(), mine.end(),
                       [own_idx](const Tuple* a, const Tuple* b) {
                         return a->values[own_idx].as_int32() <
                                b->values[own_idx].as_int32();
                       });
    }
    std::vector<Tuple> subs;
    subs.reserve(mine.size());
    for (const Tuple* cand : mine) {
      Tuple sub;
      STARFISH_RETURN_NOT_OK(AssembleRec(child, *cand, parts, projection, &sub));
      subs.push_back(std::move(sub));
    }
    out->values[i] = Value::Relation(std::move(subs));
  }
  return Status::OK();
}

Result<Tuple> NsmDecomposition::Nest(PathId path, int64_t key,
                                     const std::vector<Tuple>& flat_tuples) const {
  if (path == kRootPath) {
    return Status::InvalidArgument("root relation is not nested");
  }
  const DecomposedRelation& rel = relations_[path];

  auto strip = [&rel](const Tuple& flat) {
    Tuple leaf;
    const size_t skip = static_cast<size_t>(rel.has_root_key) +
                        static_cast<size_t>(rel.has_parent_key);
    leaf.values.assign(flat.values.begin() + static_cast<long>(skip),
                       flat.values.end());
    return leaf;  // [OwnKey,] data...
  };

  Tuple nested;
  nested.values.push_back(Value::Int32(static_cast<int32_t>(key)));
  if (rel.depth < 2) {
    std::vector<Tuple> leaves;
    leaves.reserve(flat_tuples.size());
    for (const Tuple& flat : flat_tuples) leaves.push_back(strip(flat));
    nested.values.push_back(Value::Relation(std::move(leaves)));
    return nested;
  }

  // Group by ParentKey, groups ordered by first appearance.
  std::vector<int32_t> group_order;
  std::map<int32_t, std::vector<Tuple>> groups;
  for (const Tuple& flat : flat_tuples) {
    const int32_t parent = flat.values[1].as_int32();
    if (groups.find(parent) == groups.end()) group_order.push_back(parent);
    groups[parent].push_back(strip(flat));
  }
  std::vector<Tuple> group_tuples;
  group_tuples.reserve(group_order.size());
  for (int32_t parent : group_order) {
    Tuple group;
    group.values.push_back(Value::Int32(parent));
    group.values.push_back(Value::Relation(std::move(groups[parent])));
    group_tuples.push_back(std::move(group));
  }
  nested.values.push_back(Value::Relation(std::move(group_tuples)));
  return nested;
}

Result<std::vector<Tuple>> NsmDecomposition::Unnest(PathId path,
                                                    const Tuple& nested) const {
  if (path == kRootPath) {
    return Status::InvalidArgument("root relation is not nested");
  }
  const DecomposedRelation& rel = relations_[path];
  if (nested.values.size() != 2 || !nested.values[0].is_int32() ||
      !nested.values[1].is_relation()) {
    return Status::Corruption("malformed nested relation tuple for path " +
                              std::to_string(path));
  }
  const int32_t root_key = nested.values[0].as_int32();

  auto unstrip = [&](int32_t parent_key, const Tuple& leaf) {
    Tuple flat;
    if (rel.has_root_key) flat.values.push_back(Value::Int32(root_key));
    if (rel.has_parent_key) flat.values.push_back(Value::Int32(parent_key));
    flat.values.insert(flat.values.end(), leaf.values.begin(),
                       leaf.values.end());
    return flat;  // RootKey [ParentKey] [OwnKey] data...
  };

  std::vector<Tuple> out;
  if (rel.depth < 2) {
    for (const Tuple& leaf : nested.values[1].as_relation()) {
      out.push_back(unstrip(0, leaf));
    }
    return out;
  }
  for (const Tuple& group : nested.values[1].as_relation()) {
    if (group.values.size() != 2 || !group.values[0].is_int32() ||
        !group.values[1].is_relation()) {
      return Status::Corruption("malformed nested group for path " +
                                std::to_string(path));
    }
    const int32_t parent_key = group.values[0].as_int32();
    for (const Tuple& leaf : group.values[1].as_relation()) {
      out.push_back(unstrip(parent_key, leaf));
    }
  }
  return out;
}

}  // namespace starfish
