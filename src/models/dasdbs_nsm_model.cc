#include "models/dasdbs_nsm_model.h"

#include <algorithm>
#include <limits>

#include "util/coding.h"

namespace starfish {

namespace {
// key_of_ref_ sentinel for "ref not in use" (keys may legitimately be 0).
constexpr int64_t kNoKey = std::numeric_limits<int64_t>::min();
}  // namespace

DasdbsNsmModel::DasdbsNsmModel(ModelConfig config, NsmDecomposition decomp)
    : StorageModel(std::move(config)), decomp_(std::move(decomp)) {}

Result<std::unique_ptr<DasdbsNsmModel>> DasdbsNsmModel::Create(
    StorageEngine* engine, ModelConfig config) {
  if (config.schema == nullptr) {
    return Status::InvalidArgument("model requires a schema");
  }
  STARFISH_ASSIGN_OR_RETURN(
      NsmDecomposition decomp,
      NsmDecomposition::Derive(config.schema, config.key_attr_index));
  auto model = std::unique_ptr<DasdbsNsmModel>(
      new DasdbsNsmModel(std::move(config), std::move(decomp)));
  for (const DecomposedRelation& rel : model->decomp_.relations()) {
    STARFISH_ASSIGN_OR_RETURN(
        Segment * segment,
        engine->OpenOrCreateSegment(
            "DASDBS-NSM_" +
            model->config().schema->path(rel.path).qualified_name));
    model->segments_.push_back(segment);
    model->stores_.push_back(std::make_unique<ComplexRecordStore>(segment));
    model->serializers_.push_back(std::make_unique<ObjectSerializer>(
        rel.path == kRootPath ? rel.flat_schema : rel.nested_schema));
  }
  return model;
}

Status DasdbsNsmModel::SaveState(std::string* out) const {
  PutFixed32(out, static_cast<uint32_t>(segments_.size()));
  for (const auto& store : stores_) PutFixed32(out, store->pool_first());
  PutFixed64(out, static_cast<uint64_t>(key_of_ref_.size()));
  for (int64_t key : key_of_ref_) PutFixed64(out, static_cast<uint64_t>(key));
  table_.SaveState(out);
  return Status::OK();
}

Status DasdbsNsmModel::LoadState(std::string_view* in) {
  uint32_t paths = 0;
  if (!GetFixed32(in, &paths)) {
    return Status::Corruption("dasdbs-nsm catalog: truncated header");
  }
  if (paths != segments_.size()) {
    return Status::Corruption("dasdbs-nsm catalog: path count mismatch "
                              "(schema changed since the store was written?)");
  }
  for (auto& store : stores_) {
    uint32_t pool_first = kInvalidPageId;
    if (!GetFixed32(in, &pool_first)) {
      return Status::Corruption("dasdbs-nsm catalog: truncated pool entry");
    }
    store->set_pool_first(pool_first);
  }
  uint64_t refs = 0;
  if (!GetFixed64(in, &refs)) {
    return Status::Corruption("dasdbs-nsm catalog: truncated object table");
  }
  // Bound the on-disk count (8 bytes per entry) before allocating.
  if (refs > in->size() / 8) {
    return Status::Corruption("dasdbs-nsm catalog: implausible table size");
  }
  key_of_ref_.assign(refs, kNoKey);
  ref_of_key_.clear();
  for (uint64_t i = 0; i < refs; ++i) {
    uint64_t key = 0;
    if (!GetFixed64(in, &key)) {
      return Status::Corruption("dasdbs-nsm catalog: truncated object table");
    }
    key_of_ref_[i] = static_cast<int64_t>(key);
    if (key_of_ref_[i] != kNoKey) {
      ref_of_key_[key_of_ref_[i]] = static_cast<ObjectRef>(i);
    }
  }
  return table_.LoadState(in);
}

Status DasdbsNsmModel::CollectLiveTids(std::vector<Tid>* out) const {
  for (int64_t key : key_of_ref_) {
    if (key == kNoKey) continue;
    auto tids_or = table_.Get(key);
    if (!tids_or.ok()) {
      // A ref'd key absent from the transformation table is catalog
      // damage; a partial live set would make the scrub destructive.
      return Status::Corruption("key " + std::to_string(key) +
                                " has no transformation entry: " +
                                tids_or.status().ToString());
    }
    const std::vector<Tid>& tids = tids_or.value();
    for (PathId p = 0; p < tids.size() && p < stores_.size(); ++p) {
      if (!tids[p].valid()) continue;
      out->push_back(tids[p]);
      STARFISH_ASSIGN_OR_RETURN(const Tid target,
                                stores_[p]->ForwardTarget(tids[p]));
      if (target.valid()) out->push_back(target);
    }
  }
  return Status::OK();
}

void DasdbsNsmModel::CollectWriteSegments(ObjectRef /*ref*/,
                                          std::vector<Segment*>* out) const {
  for (Segment* segment : segments_) out->push_back(segment);
}

Status DasdbsNsmModel::Insert(ObjectRef ref, const Tuple& object) {
  STARFISH_ASSIGN_OR_RETURN(ShreddedObject parts, decomp_.Shred(object));
  STARFISH_ASSIGN_OR_RETURN(int64_t key, KeyOf(object));
  if (ref_of_key_.count(key) > 0) {
    return Status::AlreadyExists("key " + std::to_string(key) +
                                 " already stored");
  }
  if (ref < key_of_ref_.size() && key_of_ref_[ref] != kNoKey) {
    return Status::AlreadyExists("ref " + std::to_string(ref) +
                                 " already stored");
  }

  std::vector<Tid> tids(decomp_.relations().size(), kInvalidTid);
  for (PathId p = 0; p < decomp_.relations().size(); ++p) {
    Tuple relation_tuple;
    if (p == kRootPath) {
      relation_tuple = parts[kRootPath][0];
    } else {
      STARFISH_ASSIGN_OR_RETURN(relation_tuple, decomp_.Nest(p, key, parts[p]));
    }
    STARFISH_ASSIGN_OR_RETURN(std::vector<RecordRegion> regions,
                              serializers_[p]->ToRegions(relation_tuple));
    STARFISH_ASSIGN_OR_RETURN(tids[p], stores_[p]->Insert(regions));
  }
  table_.Put(key, tids);
  if (ref >= key_of_ref_.size()) key_of_ref_.resize(ref + 1, kNoKey);
  key_of_ref_[ref] = key;
  ref_of_key_[key] = ref;
  return Status::OK();
}

Status DasdbsNsmModel::ReplaceObject(ObjectRef ref, const Tuple& new_object) {
  if (ref >= key_of_ref_.size() || key_of_ref_[ref] == kNoKey) {
    return Status::NotFound("no object with ref " + std::to_string(ref));
  }
  const int64_t key = key_of_ref_[ref];
  STARFISH_ASSIGN_OR_RETURN(int64_t new_key, KeyOf(new_object));
  if (key != new_key) {
    return Status::InvalidArgument("object keys are immutable");
  }
  STARFISH_ASSIGN_OR_RETURN(ShreddedObject parts, decomp_.Shred(new_object));
  STARFISH_ASSIGN_OR_RETURN(std::vector<Tid> tids, table_.Get(key));
  for (PathId p = 0; p < decomp_.relations().size(); ++p) {
    Tuple relation_tuple;
    if (p == kRootPath) {
      relation_tuple = parts[kRootPath][0];
    } else {
      STARFISH_ASSIGN_OR_RETURN(relation_tuple, decomp_.Nest(p, key, parts[p]));
    }
    STARFISH_ASSIGN_OR_RETURN(std::vector<RecordRegion> regions,
                              serializers_[p]->ToRegions(relation_tuple));
    STARFISH_ASSIGN_OR_RETURN(Tid new_tid, stores_[p]->Replace(tids[p], regions));
    tids[p] = new_tid;
  }
  table_.Put(key, tids);
  return Status::OK();
}

Status DasdbsNsmModel::Remove(ObjectRef ref) {
  if (ref >= key_of_ref_.size() || key_of_ref_[ref] == kNoKey) {
    return Status::NotFound("no object with ref " + std::to_string(ref));
  }
  const int64_t key = key_of_ref_[ref];
  STARFISH_ASSIGN_OR_RETURN(std::vector<Tid> tids, table_.Get(key));
  for (PathId p = 0; p < decomp_.relations().size(); ++p) {
    STARFISH_RETURN_NOT_OK(stores_[p]->Delete(tids[p]));
  }
  STARFISH_RETURN_NOT_OK(table_.Erase(key));
  key_of_ref_[ref] = kNoKey;
  ref_of_key_.erase(key);
  return Status::OK();
}

Result<std::vector<Tuple>> DasdbsNsmModel::ReadRelationTuple(PathId path,
                                                             const Tid& tid) {
  STARFISH_ASSIGN_OR_RETURN(std::vector<RecordRegion> regions,
                            stores_[path]->ReadAll(tid));
  STARFISH_ASSIGN_OR_RETURN(Tuple nested,
                            serializers_[path]->FromRegionsAll(regions));
  return decomp_.Unnest(path, nested);
}

Result<Tuple> DasdbsNsmModel::AssembleFrom(const std::vector<Tid>& tids,
                                           const Projection& proj) {
  ShreddedObject parts(decomp_.relations().size());
  {
    STARFISH_ASSIGN_OR_RETURN(std::vector<RecordRegion> regions,
                              stores_[kRootPath]->ReadAll(tids[kRootPath]));
    STARFISH_ASSIGN_OR_RETURN(Tuple root_flat,
                              serializers_[kRootPath]->FromRegionsAll(regions));
    parts[kRootPath].push_back(std::move(root_flat));
  }
  for (PathId p = 1; p < decomp_.relations().size(); ++p) {
    if (!proj.Includes(p)) continue;
    STARFISH_ASSIGN_OR_RETURN(parts[p], ReadRelationTuple(p, tids[p]));
  }
  return decomp_.Assemble(parts, proj);
}

Result<Tuple> DasdbsNsmModel::GetByRef(ObjectRef ref, const Projection& proj) {
  if (ref >= key_of_ref_.size()) {
    return Status::NotFound("no object with ref " + std::to_string(ref));
  }
  STARFISH_ASSIGN_OR_RETURN(std::vector<Tid> tids, table_.Get(key_of_ref_[ref]));
  return AssembleFrom(tids, proj);
}

Result<Tuple> DasdbsNsmModel::GetByKey(int64_t key, const Projection& proj) {
  // Value selection on the root relation: scan it (the transformation table
  // is keyed by the very value we are selecting on, but the paper models
  // query 1b as a value scan of the root relation followed by addressed
  // fetches of the remaining tuples — Table 3: 120 pages = root scan + 4).
  bool found = false;
  STARFISH_RETURN_NOT_OK(stores_[kRootPath]->ScanObjects(
      [&](Tid, const std::vector<RecordRegion>& regions) -> Status {
        STARFISH_ASSIGN_OR_RETURN(
            Tuple flat, serializers_[kRootPath]->FromRegionsAll(regions));
        if (flat.values[config_.key_attr_index].as_int32() == key) {
          found = true;
        }
        return Status::OK();
      }));
  if (!found) {
    return Status::NotFound("no object with key " + std::to_string(key));
  }
  STARFISH_ASSIGN_OR_RETURN(std::vector<Tid> tids, table_.Get(key));
  return AssembleFrom(tids, proj);
}

Status DasdbsNsmModel::ScanAll(const Projection& proj, const ScanCallback& fn) {
  // Scan each projected relation segment sequentially; join in memory.
  std::vector<int64_t> key_order;
  std::unordered_map<int64_t, ShreddedObject> by_key;
  STARFISH_RETURN_NOT_OK(stores_[kRootPath]->ScanObjects(
      [&](Tid, const std::vector<RecordRegion>& regions) -> Status {
        STARFISH_ASSIGN_OR_RETURN(
            Tuple flat, serializers_[kRootPath]->FromRegionsAll(regions));
        const int64_t key = flat.values[config_.key_attr_index].as_int32();
        key_order.push_back(key);
        auto& parts = by_key[key];
        parts.resize(decomp_.relations().size());
        parts[kRootPath].push_back(std::move(flat));
        return Status::OK();
      }));
  for (PathId p = 1; p < decomp_.relations().size(); ++p) {
    if (!proj.Includes(p)) continue;
    STARFISH_RETURN_NOT_OK(stores_[p]->ScanObjects(
        [&](Tid, const std::vector<RecordRegion>& regions) -> Status {
          STARFISH_ASSIGN_OR_RETURN(Tuple nested,
                                    serializers_[p]->FromRegionsAll(regions));
          STARFISH_ASSIGN_OR_RETURN(std::vector<Tuple> flats,
                                    decomp_.Unnest(p, nested));
          if (nested.values.empty() || !nested.values[0].is_int32()) {
            return Status::Corruption("nested tuple without root key");
          }
          const int64_t key = nested.values[0].as_int32();
          auto it = by_key.find(key);
          if (it == by_key.end()) {
            return Status::Corruption("orphan relation tuple for key " +
                                      std::to_string(key));
          }
          it->second[p] = std::move(flats);
          return Status::OK();
        }));
  }
  for (int64_t key : key_order) {
    STARFISH_ASSIGN_OR_RETURN(Tuple object, decomp_.Assemble(by_key[key], proj));
    STARFISH_RETURN_NOT_OK(fn(key, object));
  }
  return Status::OK();
}

Result<std::vector<ObjectRef>> DasdbsNsmModel::GetChildRefs(ObjectRef ref) {
  if (ref >= key_of_ref_.size()) {
    return Status::NotFound("no object with ref " + std::to_string(ref));
  }
  STARFISH_ASSIGN_OR_RETURN(std::vector<Tid> tids, table_.Get(key_of_ref_[ref]));

  // Fast path: links confined to one non-root path — one addressed record
  // read, rows re-ordered by OwnKey (document order).
  PathId link_path = kRootPath;
  bool single = !decomp_.relation(kRootPath).has_links;
  if (single) {
    for (PathId p = 1; p < decomp_.relations().size(); ++p) {
      if (!decomp_.relation(p).has_links) continue;
      if (link_path != kRootPath) {
        single = false;
        break;
      }
      link_path = p;
    }
  }
  if (single) {
    std::vector<ObjectRef> refs;
    if (link_path == kRootPath) return refs;  // no links anywhere
    const DecomposedRelation& rel = decomp_.relation(link_path);
    STARFISH_ASSIGN_OR_RETURN(std::vector<Tuple> flats,
                              ReadRelationTuple(link_path, tids[link_path]));
    if (rel.has_own_key) {
      const size_t idx = static_cast<size_t>(rel.has_root_key) +
                         static_cast<size_t>(rel.has_parent_key);
      std::stable_sort(flats.begin(), flats.end(),
                       [idx](const Tuple& a, const Tuple& b) {
                         return a.values[idx].as_int32() <
                                b.values[idx].as_int32();
                       });
    }
    for (const Tuple& flat : flats) {
      for (size_t a = rel.data_offset; a < flat.values.size(); ++a) {
        if (flat.values[a].is_link()) refs.push_back(flat.values[a].as_link());
      }
    }
    return refs;
  }

  // General case (root links or several link paths): assemble the
  // link-projected object to preserve global document order.
  STARFISH_ASSIGN_OR_RETURN(Tuple object, AssembleFrom(tids, LinkProjection()));
  std::vector<ObjectRef> refs;
  CollectLinks(object, &refs);
  return refs;
}

Result<Tuple> DasdbsNsmModel::GetRootRecord(ObjectRef ref) {
  if (ref >= key_of_ref_.size()) {
    return Status::NotFound("no object with ref " + std::to_string(ref));
  }
  STARFISH_ASSIGN_OR_RETURN(std::vector<Tid> tids, table_.Get(key_of_ref_[ref]));
  ShreddedObject parts(decomp_.relations().size());
  STARFISH_ASSIGN_OR_RETURN(std::vector<RecordRegion> regions,
                            stores_[kRootPath]->ReadAll(tids[kRootPath]));
  STARFISH_ASSIGN_OR_RETURN(Tuple root_flat,
                            serializers_[kRootPath]->FromRegionsAll(regions));
  parts[kRootPath].push_back(std::move(root_flat));
  return decomp_.Assemble(parts, Projection::RootOnly(*config_.schema));
}

Status DasdbsNsmModel::UpdateRootRecord(ObjectRef ref, const Tuple& new_root) {
  if (ref >= key_of_ref_.size()) {
    return Status::NotFound("no object with ref " + std::to_string(ref));
  }
  const int64_t key = key_of_ref_[ref];
  STARFISH_ASSIGN_OR_RETURN(int64_t new_key, KeyOf(new_root));
  if (key != new_key) {
    return Status::InvalidArgument("object keys are immutable");
  }
  STARFISH_ASSIGN_OR_RETURN(std::vector<Tid> tids, table_.Get(key));
  const DecomposedRelation& rel = decomp_.relation(kRootPath);
  Tuple flat;
  for (size_t src : rel.data_source) {
    flat.values.push_back(new_root.values[src]);
  }
  STARFISH_ASSIGN_OR_RETURN(std::vector<RecordRegion> regions,
                            serializers_[kRootPath]->ToRegions(flat));
  STARFISH_ASSIGN_OR_RETURN(Tid new_tid,
                            stores_[kRootPath]->Replace(tids[kRootPath], regions));
  if (new_tid != tids[kRootPath]) {
    STARFISH_RETURN_NOT_OK(table_.Replace(key, tids[kRootPath], new_tid));
  }
  return Status::OK();
}

}  // namespace starfish
