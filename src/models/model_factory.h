#pragma once

#include <memory>
#include <vector>

#include "models/storage_model.h"

/// \file model_factory.h
/// Constructs any of the paper's storage models over a storage engine.

namespace starfish {

/// Creates the storage model of the given kind. Each model creates its own
/// segment(s) inside `engine`; multiple models can coexist in one engine
/// (they share the disk, buffer and counters — the benchmark runner uses
/// one engine per model to keep measurements independent).
Result<std::unique_ptr<StorageModel>> CreateStorageModel(
    StorageModelKind kind, StorageEngine* engine, ModelConfig config);

/// All model kinds in the paper's table order.
std::vector<StorageModelKind> AllStorageModelKinds();

}  // namespace starfish
