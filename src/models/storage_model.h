#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "nf2/projection.h"
#include "nf2/schema.h"
#include "nf2/value.h"
#include "storage/storage_engine.h"
#include "util/status.h"

/// \file storage_model.h
/// The common interface of the paper's four complex-object storage models.
///
/// A storage model owns how one class of complex objects is fragmented and
/// placed on pages. All four models implement the same logical operations —
/// the benchmark queries are written once against this interface and the
/// models differ only in the physical I/O they cause:
///
///   * DSM           — direct, whole object clustered, no partial access
///   * DASDBS-DSM    — direct + object header, partial page access
///   * NSM           — normalized flat relations, value-based access
///                     (optional in-memory root-key index)
///   * DASDBS-NSM    — normalized, re-nested per object, transformation
///                     table from key to tuple addresses
///
/// Objects are named by an ObjectRef — the logical object number also used
/// as the LINK value in references. The direct models map it to a physical
/// address via their (uncounted, in-memory) object table, mirroring the
/// paper where "the physical reference ... is the address of the referred
/// Station". NSM has no object addresses; by-ref access is unsupported
/// there unless the index variant is used (the paper's "query 1a is not
/// relevant" for NSM).

namespace starfish {

/// Logical object identity; doubles as the LINK attribute payload.
using ObjectRef = uint64_t;

/// Model selector (factory + reporting).
enum class StorageModelKind {
  kDsm,
  kDasdbsDsm,
  kNsm,
  kNsmIndexed,
  kDasdbsNsm,
};

/// Human-readable model name as printed in the paper's tables.
std::string ToString(StorageModelKind kind);

/// Configuration shared by all models.
struct ModelConfig {
  /// Root schema of the stored objects.
  std::shared_ptr<const Schema> schema;

  /// Index of the root attribute holding the (unique) integer object key
  /// (the benchmark's Station.Key).
  size_t key_attr_index = 0;

  /// Number of independent write stripes for the direct models: objects are
  /// routed to stripe `ref % write_stripes`, each stripe owning its own
  /// segment (and hence its own write latch), so ops on different stripes
  /// apply in parallel at the store level. 1 (default) is the paper-exact
  /// single-segment layout, byte-identical to the unstriped code. Requires
  /// a thread-safe buffer pool (shard_count != 1) to actually run striped
  /// ops concurrently. The normalized models ignore this — their ops touch
  /// every path segment, so striping cannot decouple them.
  uint32_t write_stripes = 1;
};

/// Callback for full-database scans: (key, object).
using ScanCallback = std::function<Status(int64_t, const Tuple&)>;

/// Abstract storage model.
class StorageModel {
 public:
  virtual ~StorageModel() = default;

  virtual StorageModelKind kind() const = 0;
  std::string name() const { return ToString(kind()); }

  const ModelConfig& config() const { return config_; }

  /// Stores a new object under logical id `ref`. Keys must be unique.
  virtual Status Insert(ObjectRef ref, const Tuple& object) = 0;

  /// Query 1a: retrieve by object reference (physical address for the
  /// direct models). NotSupported for plain NSM.
  virtual Result<Tuple> GetByRef(ObjectRef ref, const Projection& proj) = 0;

  /// Query 1b: retrieve by key value (value-based selection).
  virtual Result<Tuple> GetByKey(int64_t key, const Projection& proj) = 0;

  /// Query 1c: retrieve every object.
  virtual Status ScanAll(const Projection& proj, const ScanCallback& fn) = 0;

  /// Query 2 navigation step: the references this object makes to other
  /// objects (its "children"), in document order. Reads only the sub-tuples
  /// that hold LINK attributes (plus their ancestors).
  virtual Result<std::vector<ObjectRef>> GetChildRefs(ObjectRef ref) = 0;

  /// Query 2 leaf step: the root record (atomic/link root attributes;
  /// relation attributes come back empty).
  virtual Result<Tuple> GetRootRecord(ObjectRef ref) = 0;

  /// Set-oriented navigation step: child references of several objects at
  /// once, one result entry per input. The benchmark queries are
  /// set-oriented — models without addresses (plain NSM) answer a whole
  /// batch with one relation scan instead of one scan per object.
  virtual Result<std::vector<std::vector<ObjectRef>>> GetChildRefsBatch(
      const std::vector<ObjectRef>& refs);

  /// Set-oriented root-record fetch, one result entry per input.
  virtual Result<std::vector<Tuple>> GetRootRecordsBatch(
      const std::vector<ObjectRef>& refs);

  /// Query 3: replace the atomic/link attributes of the root record. The
  /// object structure (sub-tuple sets) is unchanged. `new_root` is a root
  /// tuple whose relation-valued attributes are ignored.
  virtual Status UpdateRootRecord(ObjectRef ref, const Tuple& new_root) = 0;

  /// Replaces the whole object, structure changes included (sub-tuples may
  /// be added or removed) — the update class the paper's queries exclude
  /// ("the object structure is not changed") but real applications need.
  /// The key attribute must be unchanged.
  virtual Status ReplaceObject(ObjectRef ref, const Tuple& new_object) = 0;

  /// Removes the object and releases its pages. Dangling LINKs in other
  /// objects are the application's concern (as they were in DASDBS).
  virtual Status Remove(ObjectRef ref) = 0;

  /// False for plain NSM (no object identifiers).
  virtual bool SupportsGetByRef() const { return true; }

  /// Number of objects stored.
  virtual uint64_t object_count() const = 0;

  /// Serializes the model's in-memory tables (object tables, transformation
  /// tables, index roots) so a persistent store can rebuild them on reopen.
  /// Page contents are NOT included — they live in the volume.
  virtual Status SaveState(std::string* out) const = 0;

  /// Restores the state written by SaveState over a catalog-restored
  /// engine. The model must be freshly created (no objects inserted).
  virtual Status LoadState(std::string_view* in) = 0;

  /// Every record address (TID) the model's restored state considers live,
  /// forwarding targets included. Crash recovery scrubs shared slotted
  /// pages down to exactly this set: records a torn checkpoint persisted
  /// but never committed must not reappear as phantoms in scans, and the
  /// recomputed free space must not lie to future inserts. MUST fail
  /// rather than return a partial set — a truncated set would make the
  /// scrub delete live records as phantoms.
  virtual Status CollectLiveTids(std::vector<Tid>* out) const = 0;

  /// Appends every segment a write op on `ref` may touch (pages dirtied,
  /// allocated or freed) to `*out`. The store locks exactly this set (its
  /// write-latch set) around the op's apply — ops whose sets are disjoint
  /// run in parallel. Duplicates are fine; the store dedups. Must be
  /// correct for refs that do not exist yet (an Insert's target).
  virtual void CollectWriteSegments(ObjectRef ref,
                                    std::vector<Segment*>* out) const = 0;

  /// The full current object under `ref`, read for logical-undo capture
  /// before an in-transaction Replace/Remove/UpdateRoot mutates it.
  /// Defaults to GetByRef with an all-projection; plain NSM (no by-ref
  /// access) overrides via its key map.
  virtual Result<Tuple> ReadObjectForUndo(ObjectRef ref);

 protected:
  explicit StorageModel(ModelConfig config) : config_(std::move(config)) {}

  /// Extracts the integer key from a root tuple.
  Result<int64_t> KeyOf(const Tuple& object) const;

  /// The minimal ancestor-closed projection covering every LINK attribute
  /// of the schema (what a navigation step must read).
  Projection LinkProjection() const;

  /// Collects the link values of `object` in document order.
  void CollectLinks(const Tuple& object, std::vector<ObjectRef>* out) const;

  ModelConfig config_;

 private:
  void CollectLinksRec(const Schema& schema, const Tuple& tuple,
                       std::vector<ObjectRef>* out) const;
};

}  // namespace starfish
