#include "models/direct_model.h"

#include <algorithm>

#include "util/coding.h"

namespace starfish {

DirectModel::DirectModel(ModelConfig config, Segment* segment,
                         DirectModelOptions options)
    : StorageModel(std::move(config)),
      segment_(segment),
      store_(segment,
             ComplexStoreOptions{
                 options.change_attr_updates ? options.page_pool_pages : 0,
                 /*force_large=*/false}),
      serializer_(config_.schema),
      options_(options),
      link_projection_(LinkProjection()) {}

Result<std::unique_ptr<DirectModel>> DirectModel::Create(
    StorageEngine* engine, ModelConfig config, DirectModelOptions options) {
  if (config.schema == nullptr) {
    return Status::InvalidArgument("model requires a schema");
  }
  const std::string segment_name =
      (options.partial_reads ? std::string("DASDBS-DSM_") : std::string("DSM_")) +
      config.schema->name();
  STARFISH_ASSIGN_OR_RETURN(Segment * segment,
                            engine->OpenOrCreateSegment(segment_name));
  return std::unique_ptr<DirectModel>(
      new DirectModel(std::move(config), segment, options));
}

Status DirectModel::SaveState(std::string* out) const {
  PutFixed64(out, live_count_);
  PutFixed32(out, store_.pool_first());
  PutFixed64(out, static_cast<uint64_t>(address_of_.size()));
  for (const Tid& tid : address_of_) PutFixed64(out, tid.Pack());
  return Status::OK();
}

Status DirectModel::CollectLiveTids(std::vector<Tid>* out) const {
  for (const Tid& tid : address_of_) {
    if (!tid.valid()) continue;
    out->push_back(tid);
    STARFISH_ASSIGN_OR_RETURN(const Tid target, store_.ForwardTarget(tid));
    if (target.valid()) out->push_back(target);
  }
  return Status::OK();
}

Status DirectModel::LoadState(std::string_view* in) {
  uint64_t refs = 0;
  uint32_t pool_first = kInvalidPageId;
  if (!GetFixed64(in, &live_count_) || !GetFixed32(in, &pool_first) ||
      !GetFixed64(in, &refs)) {
    return Status::Corruption("direct model catalog: truncated header");
  }
  // Bound the on-disk count (8 bytes per entry) before allocating.
  if (refs > in->size() / 8) {
    return Status::Corruption("direct model catalog: implausible table size");
  }
  store_.set_pool_first(pool_first);
  address_of_.assign(refs, kInvalidTid);
  for (uint64_t i = 0; i < refs; ++i) {
    uint64_t packed = 0;
    if (!GetFixed64(in, &packed)) {
      return Status::Corruption("direct model catalog: truncated object table");
    }
    address_of_[i] = Tid::Unpack(packed);
  }
  return Status::OK();
}

Status DirectModel::Insert(ObjectRef ref, const Tuple& object) {
  STARFISH_ASSIGN_OR_RETURN(std::vector<RecordRegion> regions,
                            serializer_.ToRegions(object));
  STARFISH_ASSIGN_OR_RETURN(Tid tid, store_.Insert(regions));
  if (ref >= address_of_.size()) address_of_.resize(ref + 1, kInvalidTid);
  if (address_of_[ref].valid()) {
    return Status::AlreadyExists("object " + std::to_string(ref) +
                                 " already stored");
  }
  address_of_[ref] = tid;
  ++live_count_;
  return Status::OK();
}

Result<Tid> DirectModel::AddressOf(ObjectRef ref) const {
  if (ref >= address_of_.size() || !address_of_[ref].valid()) {
    return Status::NotFound("no object with ref " + std::to_string(ref));
  }
  return address_of_[ref];
}

Result<ComplexRecordInfo> DirectModel::RecordInfo(ObjectRef ref) const {
  STARFISH_ASSIGN_OR_RETURN(Tid tid, AddressOf(ref));
  return store_.GetInfo(tid);
}

Status DirectModel::ReplaceObject(ObjectRef ref, const Tuple& new_object) {
  STARFISH_ASSIGN_OR_RETURN(Tid tid, AddressOf(ref));
  // Keys are immutable: the root region feeds value scans.
  {
    STARFISH_ASSIGN_OR_RETURN(
        std::vector<RecordRegion> root_regions,
        store_.ReadPartial(tid, [](uint32_t tag) {
          return ObjectSerializer::TagPath(tag) == kRootPath;
        }));
    if (root_regions.empty()) {
      return Status::Corruption("object without root region");
    }
    STARFISH_ASSIGN_OR_RETURN(
        Tuple stored_root,
        ObjectSerializer::DecodeFlat(*config_.schema, root_regions[0].bytes));
    STARFISH_ASSIGN_OR_RETURN(int64_t old_key, KeyOf(stored_root));
    STARFISH_ASSIGN_OR_RETURN(int64_t new_key, KeyOf(new_object));
    if (old_key != new_key) {
      return Status::InvalidArgument("object keys are immutable");
    }
  }
  STARFISH_ASSIGN_OR_RETURN(std::vector<RecordRegion> regions,
                            serializer_.ToRegions(new_object));
  STARFISH_ASSIGN_OR_RETURN(Tid new_tid, store_.Replace(tid, regions));
  address_of_[ref] = new_tid;
  return Status::OK();
}

Status DirectModel::Remove(ObjectRef ref) {
  STARFISH_ASSIGN_OR_RETURN(Tid tid, AddressOf(ref));
  STARFISH_RETURN_NOT_OK(store_.Delete(tid));
  address_of_[ref] = kInvalidTid;
  --live_count_;
  return Status::OK();
}

Result<std::vector<RecordRegion>> DirectModel::ReadRegions(
    const Tid& tid, const Projection& proj) const {
  if (options_.partial_reads && !proj.IsAll()) {
    // DASDBS-DSM: the object header routes us to just the needed pages.
    return store_.ReadPartial(tid, [&proj](uint32_t tag) {
      return proj.Includes(ObjectSerializer::TagPath(tag));
    });
  }
  // DSM: all pages of the object are fetched; projection is logical only.
  STARFISH_ASSIGN_OR_RETURN(std::vector<RecordRegion> all, store_.ReadAll(tid));
  if (proj.IsAll()) return all;
  std::vector<RecordRegion> filtered;
  for (auto& region : all) {
    if (proj.Includes(ObjectSerializer::TagPath(region.tag))) {
      filtered.push_back(std::move(region));
    }
  }
  return filtered;
}

Result<Tuple> DirectModel::GetByRef(ObjectRef ref, const Projection& proj) {
  STARFISH_ASSIGN_OR_RETURN(Tid tid, AddressOf(ref));
  STARFISH_ASSIGN_OR_RETURN(std::vector<RecordRegion> regions,
                            ReadRegions(tid, proj));
  return serializer_.FromRegions(regions, proj);
}

Result<Tuple> DirectModel::GetByKey(int64_t key, const Projection& proj) {
  // Value-based selection: no access path, the whole relation is scanned
  // (set-oriented — the scan runs to the end even after a match).
  Result<Tuple> found = Status::NotFound("no object with key " +
                                         std::to_string(key));
  if (options_.partial_reads && options_.scan_pushdown) {
    // Pushdown: test the key on root regions only; fetch the one match.
    Tid match = kInvalidTid;
    STARFISH_RETURN_NOT_OK(store_.ScanPartial(
        [](uint32_t tag) {
          return ObjectSerializer::TagPath(tag) == kRootPath;
        },
        [&](Tid tid, const std::vector<RecordRegion>& regions) -> Status {
          if (regions.empty()) return Status::Corruption("no root region");
          STARFISH_ASSIGN_OR_RETURN(
              Tuple root_flat,
              ObjectSerializer::DecodeFlat(*config_.schema, regions[0].bytes));
          STARFISH_ASSIGN_OR_RETURN(int64_t k, KeyOf(root_flat));
          if (k == key) match = tid;
          return Status::OK();
        }));
    if (!match.valid()) return found;
    STARFISH_ASSIGN_OR_RETURN(std::vector<RecordRegion> regions,
                              ReadRegions(match, proj));
    return serializer_.FromRegions(regions, proj);
  }
  Status scan_status = store_.ScanObjects(
      [&](Tid, const std::vector<RecordRegion>& regions) -> Status {
        if (regions.empty()) return Status::Corruption("object with no regions");
        STARFISH_ASSIGN_OR_RETURN(
            Tuple root_flat,
            ObjectSerializer::DecodeFlat(*config_.schema, regions[0].bytes));
        STARFISH_ASSIGN_OR_RETURN(int64_t k, KeyOf(root_flat));
        if (k != key) return Status::OK();
        std::vector<RecordRegion> kept;
        for (const auto& region : regions) {
          if (proj.Includes(ObjectSerializer::TagPath(region.tag))) {
            kept.push_back(region);
          }
        }
        STARFISH_ASSIGN_OR_RETURN(Tuple object,
                                  serializer_.FromRegions(kept, proj));
        found = std::move(object);
        return Status::OK();
      });
  STARFISH_RETURN_NOT_OK(scan_status);
  return found;
}

Status DirectModel::ScanAll(const Projection& proj, const ScanCallback& fn) {
  if (options_.partial_reads && options_.scan_pushdown && !proj.IsAll()) {
    // Pushdown: data pages holding only unselected sub-tuples are skipped.
    return store_.ScanPartial(
        [&proj](uint32_t tag) {
          return proj.Includes(ObjectSerializer::TagPath(tag));
        },
        [&](Tid, const std::vector<RecordRegion>& regions) -> Status {
          STARFISH_ASSIGN_OR_RETURN(Tuple object,
                                    serializer_.FromRegions(regions, proj));
          STARFISH_ASSIGN_OR_RETURN(int64_t key, KeyOf(object));
          return fn(key, object);
        });
  }
  return store_.ScanObjects(
      [&](Tid, const std::vector<RecordRegion>& regions) -> Status {
        std::vector<RecordRegion> kept;
        for (const auto& region : regions) {
          if (proj.Includes(ObjectSerializer::TagPath(region.tag))) {
            kept.push_back(region);
          }
        }
        STARFISH_ASSIGN_OR_RETURN(Tuple object,
                                  serializer_.FromRegions(kept, proj));
        STARFISH_ASSIGN_OR_RETURN(int64_t key, KeyOf(object));
        return fn(key, object);
      });
}

Result<std::vector<ObjectRef>> DirectModel::GetChildRefs(ObjectRef ref) {
  STARFISH_ASSIGN_OR_RETURN(Tid tid, AddressOf(ref));
  STARFISH_ASSIGN_OR_RETURN(std::vector<RecordRegion> regions,
                            ReadRegions(tid, link_projection_));
  STARFISH_ASSIGN_OR_RETURN(Tuple object,
                            serializer_.FromRegions(regions, link_projection_));
  std::vector<ObjectRef> refs;
  CollectLinks(object, &refs);
  return refs;
}

Result<Tuple> DirectModel::GetRootRecord(ObjectRef ref) {
  STARFISH_ASSIGN_OR_RETURN(Tid tid, AddressOf(ref));
  const Projection root_only = Projection::RootOnly(*config_.schema);
  STARFISH_ASSIGN_OR_RETURN(std::vector<RecordRegion> regions,
                            ReadRegions(tid, root_only));
  return serializer_.FromRegions(regions, root_only);
}

Status DirectModel::UpdateRootRecord(ObjectRef ref, const Tuple& new_root) {
  STARFISH_ASSIGN_OR_RETURN(Tid tid, AddressOf(ref));

  if (options_.change_attr_updates) {
    // DASDBS-DSM §5.3: the object was only partially retrieved, so a
    // whole-tuple replace is impossible — patch the root region in place
    // with a change-attribute operation (page pool written inside).
    STARFISH_ASSIGN_OR_RETURN(
        std::vector<RecordRegion> root_regions,
        store_.ReadPartial(tid, [](uint32_t tag) {
          return ObjectSerializer::TagPath(tag) == kRootPath;
        }));
    if (root_regions.empty()) {
      return Status::Corruption("object without root region");
    }
    std::vector<uint32_t> counts;
    STARFISH_ASSIGN_OR_RETURN(
        Tuple stored_root,
        ObjectSerializer::DecodeFlat(*config_.schema, root_regions[0].bytes,
                                     &counts));
    STARFISH_ASSIGN_OR_RETURN(int64_t old_key, KeyOf(stored_root));
    STARFISH_ASSIGN_OR_RETURN(int64_t new_key, KeyOf(new_root));
    if (old_key != new_key) {
      return Status::InvalidArgument("object keys are immutable");
    }
    const std::string bytes = ObjectSerializer::EncodeFlatWithCounts(
        *config_.schema, new_root, counts);
    STARFISH_ASSIGN_OR_RETURN(Tid new_tid,
                              store_.UpdateRegion(tid, root_regions[0].tag, 0,
                                                  bytes));
    address_of_[ref] = new_tid;
    return Status::OK();
  }

  // DSM: replace the entire nested tuple (the paper's update protocol for
  // the non-partial models) — read it all, swap the root atomics, rewrite.
  STARFISH_ASSIGN_OR_RETURN(std::vector<RecordRegion> regions,
                            store_.ReadAll(tid));
  STARFISH_ASSIGN_OR_RETURN(Tuple object, serializer_.FromRegionsAll(regions));
  STARFISH_ASSIGN_OR_RETURN(int64_t old_key, KeyOf(object));
  STARFISH_ASSIGN_OR_RETURN(int64_t new_key, KeyOf(new_root));
  if (old_key != new_key) {
    return Status::InvalidArgument("object keys are immutable");
  }
  for (size_t i = 0; i < config_.schema->attributes().size(); ++i) {
    if (config_.schema->attributes()[i].type != AttrType::kRelation) {
      object.values[i] = new_root.values[i];
    }
  }
  STARFISH_ASSIGN_OR_RETURN(std::vector<RecordRegion> new_regions,
                            serializer_.ToRegions(object));
  STARFISH_ASSIGN_OR_RETURN(Tid new_tid, store_.Replace(tid, new_regions));
  address_of_[ref] = new_tid;
  return Status::OK();
}

}  // namespace starfish
