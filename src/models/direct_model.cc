#include "models/direct_model.h"

#include <algorithm>

#include "util/coding.h"

namespace starfish {

DirectModel::DirectModel(ModelConfig config, std::vector<Segment*> segments,
                         DirectModelOptions options)
    : StorageModel(std::move(config)),
      serializer_(config_.schema),
      options_(options),
      link_projection_(LinkProjection()) {
  stripes_.reserve(segments.size());
  for (Segment* segment : segments) {
    Stripe stripe;
    stripe.segment = segment;
    stripe.store = std::make_unique<ComplexRecordStore>(
        segment,
        ComplexStoreOptions{
            options.change_attr_updates ? options.page_pool_pages : 0,
            /*force_large=*/false});
    stripes_.push_back(std::move(stripe));
  }
}

Result<std::unique_ptr<DirectModel>> DirectModel::Create(
    StorageEngine* engine, ModelConfig config, DirectModelOptions options) {
  if (config.schema == nullptr) {
    return Status::InvalidArgument("model requires a schema");
  }
  if (config.write_stripes == 0) config.write_stripes = 1;
  const std::string base_name =
      (options.partial_reads ? std::string("DASDBS-DSM_") : std::string("DSM_")) +
      config.schema->name();
  std::vector<Segment*> segments;
  segments.reserve(config.write_stripes);
  for (uint32_t i = 0; i < config.write_stripes; ++i) {
    // Stripe 0 keeps the historical name so single-stripe layouts (and the
    // directories they persist) are unchanged.
    const std::string name =
        i == 0 ? base_name : base_name + ".s" + std::to_string(i);
    STARFISH_ASSIGN_OR_RETURN(Segment * segment,
                              engine->OpenOrCreateSegment(name));
    segments.push_back(segment);
  }
  return std::unique_ptr<DirectModel>(
      new DirectModel(std::move(config), std::move(segments), options));
}

uint64_t DirectModel::object_count() const {
  uint64_t total = 0;
  for (const Stripe& stripe : stripes_) total += stripe.live_count;
  return total;
}

Status DirectModel::SaveState(std::string* out) const {
  PutFixed64(out, object_count());
  PutFixed32(out, static_cast<uint32_t>(stripes_.size()));
  for (const Stripe& stripe : stripes_) {
    PutFixed32(out, stripe.store->pool_first());
    PutFixed64(out, static_cast<uint64_t>(stripe.address_of.size()));
    for (const Tid& tid : stripe.address_of) PutFixed64(out, tid.Pack());
  }
  return Status::OK();
}

Status DirectModel::CollectLiveTids(std::vector<Tid>* out) const {
  for (const Stripe& stripe : stripes_) {
    for (const Tid& tid : stripe.address_of) {
      if (!tid.valid()) continue;
      out->push_back(tid);
      STARFISH_ASSIGN_OR_RETURN(const Tid target,
                                stripe.store->ForwardTarget(tid));
      if (target.valid()) out->push_back(target);
    }
  }
  return Status::OK();
}

void DirectModel::CollectWriteSegments(ObjectRef ref,
                                       std::vector<Segment*>* out) const {
  out->push_back(StripeOf(ref).segment);
}

Status DirectModel::LoadState(std::string_view* in) {
  uint64_t live_total = 0;
  uint32_t stripe_count = 0;
  if (!GetFixed64(in, &live_total) || !GetFixed32(in, &stripe_count)) {
    return Status::Corruption("direct model catalog: truncated header");
  }
  if (stripe_count != stripes_.size()) {
    return Status::InvalidArgument(
        "store was created with write_stripes=" + std::to_string(stripe_count) +
        "; reopen with the same stripe count (got " +
        std::to_string(stripes_.size()) + ")");
  }
  uint64_t live_check = 0;
  for (Stripe& stripe : stripes_) {
    uint64_t refs = 0;
    uint32_t pool_first = kInvalidPageId;
    if (!GetFixed32(in, &pool_first) || !GetFixed64(in, &refs)) {
      return Status::Corruption("direct model catalog: truncated stripe");
    }
    // Bound the on-disk count (8 bytes per entry) before allocating.
    if (refs > in->size() / 8) {
      return Status::Corruption(
          "direct model catalog: implausible table size");
    }
    stripe.store->set_pool_first(pool_first);
    stripe.address_of.assign(refs, kInvalidTid);
    stripe.live_count = 0;
    for (uint64_t i = 0; i < refs; ++i) {
      uint64_t packed = 0;
      if (!GetFixed64(in, &packed)) {
        return Status::Corruption(
            "direct model catalog: truncated object table");
      }
      stripe.address_of[i] = Tid::Unpack(packed);
      if (stripe.address_of[i].valid()) ++stripe.live_count;
    }
    live_check += stripe.live_count;
  }
  if (live_check != live_total) {
    return Status::Corruption("direct model catalog: live count disagrees "
                              "with object table");
  }
  return Status::OK();
}

Status DirectModel::Insert(ObjectRef ref, const Tuple& object) {
  STARFISH_ASSIGN_OR_RETURN(std::vector<RecordRegion> regions,
                            serializer_.ToRegions(object));
  Stripe& stripe = StripeOf(ref);
  const size_t slot = SlotOf(ref);
  if (slot < stripe.address_of.size() && stripe.address_of[slot].valid()) {
    return Status::AlreadyExists("object " + std::to_string(ref) +
                                 " already stored");
  }
  STARFISH_ASSIGN_OR_RETURN(Tid tid, stripe.store->Insert(regions));
  if (slot >= stripe.address_of.size()) {
    stripe.address_of.resize(slot + 1, kInvalidTid);
  }
  stripe.address_of[slot] = tid;
  ++stripe.live_count;
  return Status::OK();
}

Result<Tid> DirectModel::AddressOf(ObjectRef ref) const {
  const Stripe& stripe = StripeOf(ref);
  const size_t slot = SlotOf(ref);
  if (slot >= stripe.address_of.size() || !stripe.address_of[slot].valid()) {
    return Status::NotFound("no object with ref " + std::to_string(ref));
  }
  return stripe.address_of[slot];
}

Result<ComplexRecordInfo> DirectModel::RecordInfo(ObjectRef ref) const {
  STARFISH_ASSIGN_OR_RETURN(Tid tid, AddressOf(ref));
  return StripeOf(ref).store->GetInfo(tid);
}

Status DirectModel::ReplaceObject(ObjectRef ref, const Tuple& new_object) {
  STARFISH_ASSIGN_OR_RETURN(Tid tid, AddressOf(ref));
  Stripe& stripe = StripeOf(ref);
  // Keys are immutable: the root region feeds value scans.
  {
    STARFISH_ASSIGN_OR_RETURN(
        std::vector<RecordRegion> root_regions,
        stripe.store->ReadPartial(tid, [](uint32_t tag) {
          return ObjectSerializer::TagPath(tag) == kRootPath;
        }));
    if (root_regions.empty()) {
      return Status::Corruption("object without root region");
    }
    STARFISH_ASSIGN_OR_RETURN(
        Tuple stored_root,
        ObjectSerializer::DecodeFlat(*config_.schema, root_regions[0].bytes));
    STARFISH_ASSIGN_OR_RETURN(int64_t old_key, KeyOf(stored_root));
    STARFISH_ASSIGN_OR_RETURN(int64_t new_key, KeyOf(new_object));
    if (old_key != new_key) {
      return Status::InvalidArgument("object keys are immutable");
    }
  }
  STARFISH_ASSIGN_OR_RETURN(std::vector<RecordRegion> regions,
                            serializer_.ToRegions(new_object));
  STARFISH_ASSIGN_OR_RETURN(Tid new_tid, stripe.store->Replace(tid, regions));
  stripe.address_of[SlotOf(ref)] = new_tid;
  return Status::OK();
}

Status DirectModel::Remove(ObjectRef ref) {
  STARFISH_ASSIGN_OR_RETURN(Tid tid, AddressOf(ref));
  Stripe& stripe = StripeOf(ref);
  STARFISH_RETURN_NOT_OK(stripe.store->Delete(tid));
  stripe.address_of[SlotOf(ref)] = kInvalidTid;
  --stripe.live_count;
  return Status::OK();
}

Result<std::vector<RecordRegion>> DirectModel::ReadRegions(
    const ComplexRecordStore& store, const Tid& tid,
    const Projection& proj) const {
  if (options_.partial_reads && !proj.IsAll()) {
    // DASDBS-DSM: the object header routes us to just the needed pages.
    return store.ReadPartial(tid, [&proj](uint32_t tag) {
      return proj.Includes(ObjectSerializer::TagPath(tag));
    });
  }
  // DSM: all pages of the object are fetched; projection is logical only.
  STARFISH_ASSIGN_OR_RETURN(std::vector<RecordRegion> all, store.ReadAll(tid));
  if (proj.IsAll()) return all;
  std::vector<RecordRegion> filtered;
  for (auto& region : all) {
    if (proj.Includes(ObjectSerializer::TagPath(region.tag))) {
      filtered.push_back(std::move(region));
    }
  }
  return filtered;
}

Result<Tuple> DirectModel::GetByRef(ObjectRef ref, const Projection& proj) {
  STARFISH_ASSIGN_OR_RETURN(Tid tid, AddressOf(ref));
  STARFISH_ASSIGN_OR_RETURN(std::vector<RecordRegion> regions,
                            ReadRegions(*StripeOf(ref).store, tid, proj));
  return serializer_.FromRegions(regions, proj);
}

Result<Tuple> DirectModel::GetByKey(int64_t key, const Projection& proj) {
  // Value-based selection: no access path, the whole relation is scanned
  // (set-oriented — the scan runs to the end even after a match).
  Result<Tuple> found = Status::NotFound("no object with key " +
                                         std::to_string(key));
  if (options_.partial_reads && options_.scan_pushdown) {
    // Pushdown: test the key on root regions only; fetch the one match.
    for (Stripe& stripe : stripes_) {
      Tid match = kInvalidTid;
      STARFISH_RETURN_NOT_OK(stripe.store->ScanPartial(
          [](uint32_t tag) {
            return ObjectSerializer::TagPath(tag) == kRootPath;
          },
          [&](Tid tid, const std::vector<RecordRegion>& regions) -> Status {
            if (regions.empty()) return Status::Corruption("no root region");
            STARFISH_ASSIGN_OR_RETURN(
                Tuple root_flat,
                ObjectSerializer::DecodeFlat(*config_.schema,
                                             regions[0].bytes));
            STARFISH_ASSIGN_OR_RETURN(int64_t k, KeyOf(root_flat));
            if (k == key) match = tid;
            return Status::OK();
          }));
      if (!match.valid()) continue;
      STARFISH_ASSIGN_OR_RETURN(std::vector<RecordRegion> regions,
                                ReadRegions(*stripe.store, match, proj));
      STARFISH_ASSIGN_OR_RETURN(Tuple object,
                                serializer_.FromRegions(regions, proj));
      found = std::move(object);
    }
    return found;
  }
  for (Stripe& stripe : stripes_) {
    Status scan_status = stripe.store->ScanObjects(
        [&](Tid, const std::vector<RecordRegion>& regions) -> Status {
          if (regions.empty()) {
            return Status::Corruption("object with no regions");
          }
          STARFISH_ASSIGN_OR_RETURN(
              Tuple root_flat,
              ObjectSerializer::DecodeFlat(*config_.schema, regions[0].bytes));
          STARFISH_ASSIGN_OR_RETURN(int64_t k, KeyOf(root_flat));
          if (k != key) return Status::OK();
          std::vector<RecordRegion> kept;
          for (const auto& region : regions) {
            if (proj.Includes(ObjectSerializer::TagPath(region.tag))) {
              kept.push_back(region);
            }
          }
          STARFISH_ASSIGN_OR_RETURN(Tuple object,
                                    serializer_.FromRegions(kept, proj));
          found = std::move(object);
          return Status::OK();
        });
    STARFISH_RETURN_NOT_OK(scan_status);
  }
  return found;
}

Status DirectModel::ScanAll(const Projection& proj, const ScanCallback& fn) {
  if (options_.partial_reads && options_.scan_pushdown && !proj.IsAll()) {
    // Pushdown: data pages holding only unselected sub-tuples are skipped.
    for (Stripe& stripe : stripes_) {
      STARFISH_RETURN_NOT_OK(stripe.store->ScanPartial(
          [&proj](uint32_t tag) {
            return proj.Includes(ObjectSerializer::TagPath(tag));
          },
          [&](Tid, const std::vector<RecordRegion>& regions) -> Status {
            STARFISH_ASSIGN_OR_RETURN(Tuple object,
                                      serializer_.FromRegions(regions, proj));
            STARFISH_ASSIGN_OR_RETURN(int64_t key, KeyOf(object));
            return fn(key, object);
          }));
    }
    return Status::OK();
  }
  for (Stripe& stripe : stripes_) {
    STARFISH_RETURN_NOT_OK(stripe.store->ScanObjects(
        [&](Tid, const std::vector<RecordRegion>& regions) -> Status {
          std::vector<RecordRegion> kept;
          for (const auto& region : regions) {
            if (proj.Includes(ObjectSerializer::TagPath(region.tag))) {
              kept.push_back(region);
            }
          }
          STARFISH_ASSIGN_OR_RETURN(Tuple object,
                                    serializer_.FromRegions(kept, proj));
          STARFISH_ASSIGN_OR_RETURN(int64_t key, KeyOf(object));
          return fn(key, object);
        }));
  }
  return Status::OK();
}

Result<std::vector<ObjectRef>> DirectModel::GetChildRefs(ObjectRef ref) {
  STARFISH_ASSIGN_OR_RETURN(Tid tid, AddressOf(ref));
  STARFISH_ASSIGN_OR_RETURN(
      std::vector<RecordRegion> regions,
      ReadRegions(*StripeOf(ref).store, tid, link_projection_));
  STARFISH_ASSIGN_OR_RETURN(Tuple object,
                            serializer_.FromRegions(regions, link_projection_));
  std::vector<ObjectRef> refs;
  CollectLinks(object, &refs);
  return refs;
}

Result<Tuple> DirectModel::GetRootRecord(ObjectRef ref) {
  STARFISH_ASSIGN_OR_RETURN(Tid tid, AddressOf(ref));
  const Projection root_only = Projection::RootOnly(*config_.schema);
  STARFISH_ASSIGN_OR_RETURN(std::vector<RecordRegion> regions,
                            ReadRegions(*StripeOf(ref).store, tid, root_only));
  return serializer_.FromRegions(regions, root_only);
}

Status DirectModel::UpdateRootRecord(ObjectRef ref, const Tuple& new_root) {
  STARFISH_ASSIGN_OR_RETURN(Tid tid, AddressOf(ref));
  Stripe& stripe = StripeOf(ref);

  if (options_.change_attr_updates) {
    // DASDBS-DSM §5.3: the object was only partially retrieved, so a
    // whole-tuple replace is impossible — patch the root region in place
    // with a change-attribute operation (page pool written inside).
    STARFISH_ASSIGN_OR_RETURN(
        std::vector<RecordRegion> root_regions,
        stripe.store->ReadPartial(tid, [](uint32_t tag) {
          return ObjectSerializer::TagPath(tag) == kRootPath;
        }));
    if (root_regions.empty()) {
      return Status::Corruption("object without root region");
    }
    std::vector<uint32_t> counts;
    STARFISH_ASSIGN_OR_RETURN(
        Tuple stored_root,
        ObjectSerializer::DecodeFlat(*config_.schema, root_regions[0].bytes,
                                     &counts));
    STARFISH_ASSIGN_OR_RETURN(int64_t old_key, KeyOf(stored_root));
    STARFISH_ASSIGN_OR_RETURN(int64_t new_key, KeyOf(new_root));
    if (old_key != new_key) {
      return Status::InvalidArgument("object keys are immutable");
    }
    const std::string bytes = ObjectSerializer::EncodeFlatWithCounts(
        *config_.schema, new_root, counts);
    STARFISH_ASSIGN_OR_RETURN(
        Tid new_tid,
        stripe.store->UpdateRegion(tid, root_regions[0].tag, 0, bytes));
    stripe.address_of[SlotOf(ref)] = new_tid;
    return Status::OK();
  }

  // DSM: replace the entire nested tuple (the paper's update protocol for
  // the non-partial models) — read it all, swap the root atomics, rewrite.
  STARFISH_ASSIGN_OR_RETURN(std::vector<RecordRegion> regions,
                            stripe.store->ReadAll(tid));
  STARFISH_ASSIGN_OR_RETURN(Tuple object, serializer_.FromRegionsAll(regions));
  STARFISH_ASSIGN_OR_RETURN(int64_t old_key, KeyOf(object));
  STARFISH_ASSIGN_OR_RETURN(int64_t new_key, KeyOf(new_root));
  if (old_key != new_key) {
    return Status::InvalidArgument("object keys are immutable");
  }
  for (size_t i = 0; i < config_.schema->attributes().size(); ++i) {
    if (config_.schema->attributes()[i].type != AttrType::kRelation) {
      object.values[i] = new_root.values[i];
    }
  }
  STARFISH_ASSIGN_OR_RETURN(std::vector<RecordRegion> new_regions,
                            serializer_.ToRegions(object));
  STARFISH_ASSIGN_OR_RETURN(Tid new_tid, stripe.store->Replace(tid, new_regions));
  stripe.address_of[SlotOf(ref)] = new_tid;
  return Status::OK();
}

}  // namespace starfish
