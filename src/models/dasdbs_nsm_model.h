#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "index/transformation_table.h"
#include "models/normalization.h"
#include "models/storage_model.h"
#include "nf2/serializer.h"
#include "storage/complex_record.h"

/// \file dasdbs_nsm_model.h
/// DASDBS-NSM (§3.4): normalized relations re-nested per object.
///
/// The flat NSM tuples of each path are nested on the root (and parent)
/// foreign keys, so each relation keeps exactly *one* tuple per object and
/// the foreign keys are not replicated into sibling tuples. That makes it
/// "efficient to keep an additional table (index) with a single entry per
/// object and a fixed and limited number of addresses in this entry" — the
/// transformation table, which maps the object key to the addresses of the
/// relation tuples that together store the object.
///
/// Access costs: by reference/key, each needed relation costs one addressed
/// record fetch (typically one page; the nested Sightseeing tuple spans
/// pages and costs header + data pages). Root-record updates touch one
/// small shared-page tuple — the reason DASDBS-NSM wins the update queries.

namespace starfish {

/// DASDBS-NSM implementation.
class DasdbsNsmModel : public StorageModel {
 public:
  static Result<std::unique_ptr<DasdbsNsmModel>> Create(StorageEngine* engine,
                                                        ModelConfig config);

  StorageModelKind kind() const override { return StorageModelKind::kDasdbsNsm; }

  Status Insert(ObjectRef ref, const Tuple& object) override;
  Result<Tuple> GetByRef(ObjectRef ref, const Projection& proj) override;
  Result<Tuple> GetByKey(int64_t key, const Projection& proj) override;
  Status ScanAll(const Projection& proj, const ScanCallback& fn) override;
  Result<std::vector<ObjectRef>> GetChildRefs(ObjectRef ref) override;
  Result<Tuple> GetRootRecord(ObjectRef ref) override;
  Status UpdateRootRecord(ObjectRef ref, const Tuple& new_root) override;
  Status ReplaceObject(ObjectRef ref, const Tuple& new_object) override;
  Status Remove(ObjectRef ref) override;
  uint64_t object_count() const override { return table_.size(); }
  Status SaveState(std::string* out) const override;
  Status LoadState(std::string_view* in) override;
  Status CollectLiveTids(std::vector<Tid>* out) const override;
  /// Every write op touches one relation tuple per path, so the write-latch
  /// set is every path segment.
  void CollectWriteSegments(ObjectRef ref,
                            std::vector<Segment*>* out) const override;

  const NsmDecomposition& decomposition() const { return decomp_; }
  Segment* segment(PathId path) { return segments_[path]; }

  /// Addresses of the relation tuples storing object `key` (calibration).
  Result<std::vector<Tid>> AddressesOf(int64_t key) const {
    return table_.Get(key);
  }

  /// Placement info of one relation tuple (Table 2 calibration).
  Result<ComplexRecordInfo> RecordInfo(PathId path, int64_t key) const {
    STARFISH_ASSIGN_OR_RETURN(std::vector<Tid> tids, table_.Get(key));
    return stores_[path]->GetInfo(tids[path]);
  }

 private:
  DasdbsNsmModel(ModelConfig config, NsmDecomposition decomp);

  /// Reads and un-nests the relation tuple of `path` at `tid` into flat
  /// NSM rows.
  Result<std::vector<Tuple>> ReadRelationTuple(PathId path, const Tid& tid);

  /// Assembles an object from the per-path addresses in `tids`, honouring
  /// the projection.
  Result<Tuple> AssembleFrom(const std::vector<Tid>& tids,
                             const Projection& proj);

  NsmDecomposition decomp_;
  std::vector<Segment*> segments_;  // per path
  std::vector<std::unique_ptr<ComplexRecordStore>> stores_;  // per path
  std::vector<std::unique_ptr<ObjectSerializer>> serializers_;  // per path
  // In-memory maps (uncounted, per the paper's accounting).
  TransformationTable table_;  // key -> one Tid per path
  std::vector<int64_t> key_of_ref_;
  std::unordered_map<int64_t, ObjectRef> ref_of_key_;
};

}  // namespace starfish
