#include "models/storage_model.h"

#include <vector>

namespace starfish {

std::string ToString(StorageModelKind kind) {
  switch (kind) {
    case StorageModelKind::kDsm:
      return "DSM";
    case StorageModelKind::kDasdbsDsm:
      return "DASDBS-DSM";
    case StorageModelKind::kNsm:
      return "NSM";
    case StorageModelKind::kNsmIndexed:
      return "NSM+index";
    case StorageModelKind::kDasdbsNsm:
      return "DASDBS-NSM";
  }
  return "?";
}

Result<std::vector<std::vector<ObjectRef>>> StorageModel::GetChildRefsBatch(
    const std::vector<ObjectRef>& refs) {
  std::vector<std::vector<ObjectRef>> out;
  out.reserve(refs.size());
  for (ObjectRef ref : refs) {
    STARFISH_ASSIGN_OR_RETURN(std::vector<ObjectRef> children,
                              GetChildRefs(ref));
    out.push_back(std::move(children));
  }
  return out;
}

Result<std::vector<Tuple>> StorageModel::GetRootRecordsBatch(
    const std::vector<ObjectRef>& refs) {
  std::vector<Tuple> out;
  out.reserve(refs.size());
  for (ObjectRef ref : refs) {
    STARFISH_ASSIGN_OR_RETURN(Tuple root, GetRootRecord(ref));
    out.push_back(std::move(root));
  }
  return out;
}

Result<Tuple> StorageModel::ReadObjectForUndo(ObjectRef ref) {
  return GetByRef(ref, Projection::All(*config_.schema));
}

Result<int64_t> StorageModel::KeyOf(const Tuple& object) const {
  if (config_.key_attr_index >= object.values.size()) {
    return Status::InvalidArgument("key attribute index out of range");
  }
  const Value& v = object.values[config_.key_attr_index];
  if (!v.is_int32()) {
    return Status::InvalidArgument("key attribute is not an Int32");
  }
  return static_cast<int64_t>(v.as_int32());
}

Projection StorageModel::LinkProjection() const {
  const Schema& root = *config_.schema;
  std::vector<bool> keep(root.path_count(), false);
  keep[kRootPath] = true;
  for (PathId p = 0; p < root.path_count(); ++p) {
    bool has_link = false;
    for (const Attribute& attr : root.path(p).schema->attributes()) {
      if (attr.type == AttrType::kLink) has_link = true;
    }
    if (has_link) {
      // Mark the path and all its ancestors.
      PathId cur = p;
      while (!keep[cur]) {
        keep[cur] = true;
        cur = root.path(cur).parent;
      }
      keep[kRootPath] = true;
    }
  }
  std::vector<PathId> paths;
  for (PathId p = 0; p < keep.size(); ++p) {
    if (keep[p]) paths.push_back(p);
  }
  auto proj = Projection::OfPaths(root, paths);
  // Cannot fail: the set is ancestor-closed by construction.
  return proj.value();
}

void StorageModel::CollectLinks(const Tuple& object,
                                std::vector<ObjectRef>* out) const {
  CollectLinksRec(*config_.schema, object, out);
}

void StorageModel::CollectLinksRec(const Schema& schema, const Tuple& tuple,
                                   std::vector<ObjectRef>* out) const {
  for (size_t i = 0; i < schema.attributes().size() && i < tuple.values.size();
       ++i) {
    const Attribute& attr = schema.attributes()[i];
    if (attr.type == AttrType::kLink) {
      out->push_back(tuple.values[i].as_link());
    } else if (attr.type == AttrType::kRelation) {
      for (const Tuple& sub : tuple.values[i].as_relation()) {
        CollectLinksRec(*attr.relation, sub, out);
      }
    }
  }
}

}  // namespace starfish
