#include "models/model_factory.h"

#include "models/dasdbs_nsm_model.h"
#include "models/direct_model.h"
#include "models/nsm_model.h"

namespace starfish {

Result<std::unique_ptr<StorageModel>> CreateStorageModel(
    StorageModelKind kind, StorageEngine* engine, ModelConfig config) {
  switch (kind) {
    case StorageModelKind::kDsm: {
      STARFISH_ASSIGN_OR_RETURN(
          auto model,
          DirectModel::Create(engine, std::move(config), DirectModelOptions{}));
      return std::unique_ptr<StorageModel>(std::move(model));
    }
    case StorageModelKind::kDasdbsDsm: {
      DirectModelOptions options;
      options.partial_reads = true;
      options.change_attr_updates = true;
      options.page_pool_pages = 1;
      STARFISH_ASSIGN_OR_RETURN(
          auto model, DirectModel::Create(engine, std::move(config), options));
      return std::unique_ptr<StorageModel>(std::move(model));
    }
    case StorageModelKind::kNsm: {
      STARFISH_ASSIGN_OR_RETURN(
          auto model,
          NsmModel::Create(engine, std::move(config), NsmModelOptions{}));
      return std::unique_ptr<StorageModel>(std::move(model));
    }
    case StorageModelKind::kNsmIndexed: {
      NsmModelOptions options;
      options.with_index = true;
      STARFISH_ASSIGN_OR_RETURN(
          auto model, NsmModel::Create(engine, std::move(config), options));
      return std::unique_ptr<StorageModel>(std::move(model));
    }
    case StorageModelKind::kDasdbsNsm: {
      STARFISH_ASSIGN_OR_RETURN(
          auto model, DasdbsNsmModel::Create(engine, std::move(config)));
      return std::unique_ptr<StorageModel>(std::move(model));
    }
  }
  return Status::InvalidArgument("unknown storage model kind");
}

std::vector<StorageModelKind> AllStorageModelKinds() {
  return {StorageModelKind::kDsm, StorageModelKind::kDasdbsDsm,
          StorageModelKind::kNsm, StorageModelKind::kNsmIndexed,
          StorageModelKind::kDasdbsNsm};
}

}  // namespace starfish
