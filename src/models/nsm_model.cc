#include "models/nsm_model.h"

#include <algorithm>
#include <limits>

#include "util/coding.h"

#include "buffer/buffer_manager.h"
#include "nf2/serializer.h"

namespace starfish {

namespace {
// key_of_ref_ sentinel for "ref not in use" (keys may legitimately be 0).
constexpr int64_t kNoKey = std::numeric_limits<int64_t>::min();
}  // namespace

NsmModel::NsmModel(ModelConfig config, NsmDecomposition decomp,
                   NsmModelOptions options)
    : StorageModel(std::move(config)),
      decomp_(std::move(decomp)),
      options_(options) {}

Result<std::unique_ptr<NsmModel>> NsmModel::Create(StorageEngine* engine,
                                                   ModelConfig config,
                                                   NsmModelOptions options) {
  if (config.schema == nullptr) {
    return Status::InvalidArgument("model requires a schema");
  }
  STARFISH_ASSIGN_OR_RETURN(
      NsmDecomposition decomp,
      NsmDecomposition::Derive(config.schema, config.key_attr_index));
  if (options.persistent_index) options.with_index = true;
  auto model = std::unique_ptr<NsmModel>(
      new NsmModel(std::move(config), std::move(decomp), options));
  const std::string prefix = options.with_index ? "NSMx_" : "NSM_";
  for (const DecomposedRelation& rel : model->decomp_.relations()) {
    const std::string relation_name =
        model->config().schema->path(rel.path).qualified_name;
    STARFISH_ASSIGN_OR_RETURN(
        Segment * segment, engine->OpenOrCreateSegment(prefix + relation_name));
    model->segments_.push_back(segment);
    model->records_.push_back(std::make_unique<RecordManager>(segment));
    model->index_.emplace_back();
    if (options.persistent_index && rel.path != kRootPath) {
      STARFISH_ASSIGN_OR_RETURN(
          Segment * index_segment,
          engine->OpenOrCreateSegment(prefix + "idx_" + relation_name));
      model->trees_.push_back(std::make_unique<BPlusTree>(index_segment));
    } else {
      model->trees_.push_back(nullptr);
    }
  }
  return model;
}

Status NsmModel::SaveState(std::string* out) const {
  PutFixed64(out, live_count_);
  PutFixed32(out, static_cast<uint32_t>(segments_.size()));
  PutFixed64(out, static_cast<uint64_t>(key_of_ref_.size()));
  for (size_t i = 0; i < key_of_ref_.size(); ++i) {
    PutFixed64(out, static_cast<uint64_t>(key_of_ref_[i]));
    PutFixed64(out, root_tid_of_ref_[i].Pack());
  }
  for (const TransformationTable& table : index_) table.SaveState(out);
  for (const auto& tree : trees_) {
    PutFixed16(out, tree != nullptr ? 1 : 0);
    if (tree != nullptr) tree->SaveState(out);
  }
  return Status::OK();
}

Status NsmModel::LoadState(std::string_view* in) {
  uint32_t paths = 0;
  uint64_t refs = 0;
  if (!GetFixed64(in, &live_count_) || !GetFixed32(in, &paths) ||
      !GetFixed64(in, &refs)) {
    return Status::Corruption("nsm catalog: truncated header");
  }
  if (paths != segments_.size()) {
    return Status::Corruption("nsm catalog: path count mismatch (schema "
                              "changed since the store was written?)");
  }
  // Bound the on-disk count (16 bytes per entry) before allocating.
  if (refs > in->size() / 16) {
    return Status::Corruption("nsm catalog: implausible object table size");
  }
  key_of_ref_.assign(refs, kNoKey);
  root_tid_of_ref_.assign(refs, kInvalidTid);
  ref_of_key_.clear();
  for (uint64_t i = 0; i < refs; ++i) {
    uint64_t key = 0, packed = 0;
    if (!GetFixed64(in, &key) || !GetFixed64(in, &packed)) {
      return Status::Corruption("nsm catalog: truncated object table");
    }
    key_of_ref_[i] = static_cast<int64_t>(key);
    root_tid_of_ref_[i] = Tid::Unpack(packed);
    if (key_of_ref_[i] != kNoKey) {
      ref_of_key_[key_of_ref_[i]] = static_cast<ObjectRef>(i);
    }
  }
  for (TransformationTable& table : index_) {
    STARFISH_RETURN_NOT_OK(table.LoadState(in));
  }
  for (auto& tree : trees_) {
    uint16_t present = 0;
    if (!GetFixed16(in, &present)) {
      return Status::Corruption("nsm catalog: truncated tree flag");
    }
    if ((present != 0) != (tree != nullptr)) {
      return Status::Corruption("nsm catalog: index layout mismatch (store "
                                "written with different index options?)");
    }
    if (tree != nullptr) STARFISH_RETURN_NOT_OK(tree->LoadState(in));
  }
  return Status::OK();
}

Status NsmModel::CollectLiveTids(std::vector<Tid>* out) const {
  for (const Tid& tid : root_tid_of_ref_) {
    if (!tid.valid()) continue;
    out->push_back(tid);
    STARFISH_ASSIGN_OR_RETURN(const Tid target,
                              records_[kRootPath]->ForwardTarget(tid));
    if (target.valid()) out->push_back(target);
  }
  for (PathId p = 0; p < index_.size(); ++p) {
    Status status = Status::OK();
    index_[p].ForEach([&](int64_t, const Tid& tid) {
      if (!status.ok()) return;
      out->push_back(tid);
      auto target_or = records_[p]->ForwardTarget(tid);
      if (!target_or.ok()) {
        status = target_or.status();
        return;
      }
      if (target_or.value().valid()) out->push_back(target_or.value());
    });
    STARFISH_RETURN_NOT_OK(status);
  }
  // Under persistent_index the child TIDs live exclusively in the trees
  // (index_ stays empty) — walk them too, or the scrub would treat every
  // child record as a phantom.
  for (PathId p = 0; p < trees_.size(); ++p) {
    if (trees_[p] == nullptr) continue;
    STARFISH_RETURN_NOT_OK(trees_[p]->Scan([&](int64_t, uint64_t packed) {
      const Tid tid = Tid::Unpack(packed);
      if (tid.valid()) {
        out->push_back(tid);
        STARFISH_ASSIGN_OR_RETURN(const Tid target,
                                  records_[p]->ForwardTarget(tid));
        if (target.valid()) out->push_back(target);
      }
      return Status::OK();
    }));
  }
  return Status::OK();
}

void NsmModel::CollectWriteSegments(ObjectRef /*ref*/,
                                    std::vector<Segment*>* out) const {
  for (Segment* segment : segments_) out->push_back(segment);
  for (const auto& tree : trees_) {
    if (tree != nullptr) out->push_back(tree->segment());
  }
}

Result<Tuple> NsmModel::ReadObjectForUndo(ObjectRef ref) {
  STARFISH_ASSIGN_OR_RETURN(int64_t key, RefToKey(ref));
  return GetByKey(key, Projection::All(*config_.schema));
}

Result<int64_t> NsmModel::RefToKey(ObjectRef ref) const {
  if (ref >= key_of_ref_.size() || key_of_ref_[ref] == kNoKey) {
    return Status::NotFound("no object with ref " + std::to_string(ref));
  }
  return key_of_ref_[ref];
}

Status NsmModel::Insert(ObjectRef ref, const Tuple& object) {
  STARFISH_ASSIGN_OR_RETURN(ShreddedObject parts, decomp_.Shred(object));
  STARFISH_ASSIGN_OR_RETURN(int64_t key, KeyOf(object));
  if (ref_of_key_.count(key) > 0) {
    return Status::AlreadyExists("key " + std::to_string(key) +
                                 " already stored");
  }
  if (ref < root_tid_of_ref_.size() && root_tid_of_ref_[ref].valid()) {
    return Status::AlreadyExists("ref " + std::to_string(ref) +
                                 " already stored");
  }
  Tid root_tid = kInvalidTid;
  for (PathId p = 0; p < parts.size(); ++p) {
    const DecomposedRelation& rel = decomp_.relation(p);
    for (const Tuple& flat : parts[p]) {
      const std::string bytes =
          ObjectSerializer::EncodeFlat(*rel.flat_schema, flat);
      STARFISH_ASSIGN_OR_RETURN(Tid tid, records_[p]->Insert(bytes));
      if (p == kRootPath) {
        root_tid = tid;
      } else {
        STARFISH_RETURN_NOT_OK(IndexAdd(p, key, tid));
      }
    }
  }
  if (ref >= key_of_ref_.size()) {
    key_of_ref_.resize(ref + 1, kNoKey);
    root_tid_of_ref_.resize(ref + 1, kInvalidTid);
  }
  key_of_ref_[ref] = key;
  root_tid_of_ref_[ref] = root_tid;
  ref_of_key_[key] = ref;
  ++live_count_;
  return Status::OK();
}

Status NsmModel::ReplaceObject(ObjectRef ref, const Tuple& new_object) {
  STARFISH_ASSIGN_OR_RETURN(int64_t key, RefToKey(ref));
  STARFISH_ASSIGN_OR_RETURN(int64_t new_key, KeyOf(new_object));
  if (key != new_key) {
    return Status::InvalidArgument("object keys are immutable");
  }
  STARFISH_ASSIGN_OR_RETURN(ShreddedObject parts, decomp_.Shred(new_object));
  // Root row: update in place (the TID stays valid via forwarding).
  {
    const DecomposedRelation& rel = decomp_.relation(kRootPath);
    const std::string bytes =
        ObjectSerializer::EncodeFlat(*rel.flat_schema, parts[kRootPath][0]);
    STARFISH_RETURN_NOT_OK(records_[kRootPath]->Update(root_tid_of_ref_[ref],
                                                       bytes));
  }
  // Child rows: drop the old set, insert the new one, refresh the index.
  for (PathId p = 1; p < decomp_.relations().size(); ++p) {
    STARFISH_ASSIGN_OR_RETURN(std::vector<Tid> old_tids, ChildTids(p, key));
    for (const Tid& tid : old_tids) {
      STARFISH_RETURN_NOT_OK(records_[p]->Delete(tid));
    }
    STARFISH_RETURN_NOT_OK(IndexDropKey(p, key));
    const DecomposedRelation& rel = decomp_.relation(p);
    for (const Tuple& flat : parts[p]) {
      const std::string bytes =
          ObjectSerializer::EncodeFlat(*rel.flat_schema, flat);
      STARFISH_ASSIGN_OR_RETURN(Tid tid, records_[p]->Insert(bytes));
      STARFISH_RETURN_NOT_OK(IndexAdd(p, key, tid));
    }
  }
  return Status::OK();
}

Status NsmModel::Remove(ObjectRef ref) {
  STARFISH_ASSIGN_OR_RETURN(int64_t key, RefToKey(ref));
  for (PathId p = 1; p < decomp_.relations().size(); ++p) {
    STARFISH_ASSIGN_OR_RETURN(std::vector<Tid> tids, ChildTids(p, key));
    for (const Tid& tid : tids) {
      STARFISH_RETURN_NOT_OK(records_[p]->Delete(tid));
    }
    STARFISH_RETURN_NOT_OK(IndexDropKey(p, key));
  }
  STARFISH_RETURN_NOT_OK(records_[kRootPath]->Delete(root_tid_of_ref_[ref]));
  key_of_ref_[ref] = kNoKey;
  root_tid_of_ref_[ref] = kInvalidTid;
  ref_of_key_.erase(key);
  --live_count_;
  return Status::OK();
}

Result<std::vector<Tid>> NsmModel::ChildTids(PathId path, int64_t key) {
  if (options_.persistent_index) {
    STARFISH_ASSIGN_OR_RETURN(std::vector<uint64_t> packed,
                              trees_[path]->Find(key));
    std::vector<Tid> tids;
    tids.reserve(packed.size());
    for (uint64_t p : packed) tids.push_back(Tid::Unpack(p));
    return tids;
  }
  auto tids = index_[path].Get(key);
  if (!tids.ok()) return std::vector<Tid>{};
  return tids.value();
}

Status NsmModel::IndexAdd(PathId path, int64_t key, const Tid& tid) {
  if (options_.persistent_index) {
    return trees_[path]->Insert(key, tid.Pack());
  }
  index_[path].Append(key, tid);
  return Status::OK();
}

Status NsmModel::IndexDropKey(PathId path, int64_t key) {
  if (options_.persistent_index) {
    STARFISH_ASSIGN_OR_RETURN(std::vector<uint64_t> packed,
                              trees_[path]->Find(key));
    for (uint64_t p : packed) {
      STARFISH_RETURN_NOT_OK(trees_[path]->Delete(key, p));
    }
    return Status::OK();
  }
  if (index_[path].Contains(key)) {
    STARFISH_RETURN_NOT_OK(index_[path].Erase(key));
  }
  return Status::OK();
}

Status NsmModel::ScanRelation(
    PathId path, const std::function<Status(Tid, const Tuple&)>& fn) {
  const DecomposedRelation& rel = decomp_.relation(path);
  Segment* segment = segments_[path];
  const std::vector<PageId> pages = segment->pages();
  constexpr uint32_t kWindow = 64;
  size_t window_end = 0;
  for (size_t i = 0; i < pages.size(); ++i) {
    if (i >= window_end) {
      const size_t end = std::min(pages.size(), i + kWindow);
      std::vector<PageId> window(pages.begin() + static_cast<long>(i),
                                 pages.begin() + static_cast<long>(end));
      STARFISH_RETURN_NOT_OK(segment->buffer()->Prefetch(
          window, PrefetchMode::kContiguousRuns));
      window_end = end;
    }
    STARFISH_RETURN_NOT_OK(records_[path]->ForEachOnPage(
        pages[i], [&](Tid tid, std::string_view bytes) -> Status {
          STARFISH_ASSIGN_OR_RETURN(
              Tuple flat, ObjectSerializer::DecodeFlat(*rel.flat_schema, bytes));
          return fn(tid, flat);
        }));
  }
  return Status::OK();
}

Result<std::vector<Tuple>> NsmModel::FetchTuples(PathId path,
                                                 const std::vector<Tid>& tids) {
  const DecomposedRelation& rel = decomp_.relation(path);
  std::vector<Tuple> out;
  out.reserve(tids.size());
  for (const Tid& tid : tids) {
    STARFISH_ASSIGN_OR_RETURN(std::string bytes, records_[path]->Read(tid));
    STARFISH_ASSIGN_OR_RETURN(Tuple flat,
                              ObjectSerializer::DecodeFlat(*rel.flat_schema, bytes));
    out.push_back(std::move(flat));
  }
  return out;
}

Result<ShreddedObject> NsmModel::CollectObject(int64_t key,
                                               const Projection& proj) {
  ShreddedObject parts(decomp_.relations().size());
  // Root relation: value selection on the key — always a scan (the index
  // covers child root-keys only).
  STARFISH_RETURN_NOT_OK(
      ScanRelation(kRootPath, [&](Tid, const Tuple& flat) -> Status {
        if (flat.values[config_.key_attr_index].as_int32() == key) {
          parts[kRootPath].push_back(flat);
        }
        return Status::OK();
      }));
  if (parts[kRootPath].empty()) {
    return Status::NotFound("no object with key " + std::to_string(key));
  }
  for (PathId p = 1; p < decomp_.relations().size(); ++p) {
    if (!proj.Includes(p)) continue;
    if (options_.with_index) {
      STARFISH_ASSIGN_OR_RETURN(std::vector<Tid> tids, ChildTids(p, key));
      STARFISH_ASSIGN_OR_RETURN(parts[p], FetchTuples(p, tids));
    } else {
      STARFISH_RETURN_NOT_OK(ScanRelation(p, [&](Tid, const Tuple& flat) {
        if (flat.values[0].as_int32() == key) parts[p].push_back(flat);
        return Status::OK();
      }));
    }
  }
  return parts;
}

Result<Tuple> NsmModel::GetByRef(ObjectRef ref, const Projection& proj) {
  if (!options_.with_index) {
    return Status::NotSupported(
        "plain NSM has no object identifiers (paper: query 1a not relevant)");
  }
  // With the index, the object table yields the root tuple's address and
  // the root key selects the child tuples.
  STARFISH_ASSIGN_OR_RETURN(int64_t key, RefToKey(ref));
  ShreddedObject parts(decomp_.relations().size());
  STARFISH_ASSIGN_OR_RETURN(std::string bytes,
                            records_[kRootPath]->Read(root_tid_of_ref_[ref]));
  STARFISH_ASSIGN_OR_RETURN(
      Tuple root_flat,
      ObjectSerializer::DecodeFlat(*decomp_.relation(kRootPath).flat_schema,
                                   bytes));
  parts[kRootPath].push_back(std::move(root_flat));
  for (PathId p = 1; p < decomp_.relations().size(); ++p) {
    if (!proj.Includes(p)) continue;
    STARFISH_ASSIGN_OR_RETURN(std::vector<Tid> tids, ChildTids(p, key));
    STARFISH_ASSIGN_OR_RETURN(parts[p], FetchTuples(p, tids));
  }
  return decomp_.Assemble(parts, proj);
}

Result<Tuple> NsmModel::GetByKey(int64_t key, const Projection& proj) {
  STARFISH_ASSIGN_OR_RETURN(ShreddedObject parts, CollectObject(key, proj));
  return decomp_.Assemble(parts, proj);
}

Status NsmModel::ScanAll(const Projection& proj, const ScanCallback& fn) {
  // Scan every projected relation once; join in memory (the paper's
  // explicit best-case assumption for NSM).
  std::vector<int64_t> key_order;
  std::unordered_map<int64_t, ShreddedObject> by_key;
  STARFISH_RETURN_NOT_OK(
      ScanRelation(kRootPath, [&](Tid, const Tuple& flat) {
        const int64_t key = flat.values[config_.key_attr_index].as_int32();
        key_order.push_back(key);
        auto& parts = by_key[key];
        parts.resize(decomp_.relations().size());
        parts[kRootPath].push_back(flat);
        return Status::OK();
      }));
  for (PathId p = 1; p < decomp_.relations().size(); ++p) {
    if (!proj.Includes(p)) continue;
    STARFISH_RETURN_NOT_OK(ScanRelation(p, [&](Tid, const Tuple& flat) {
      const int64_t key = flat.values[0].as_int32();
      auto it = by_key.find(key);
      if (it == by_key.end()) {
        return Status::Corruption("orphan tuple with root key " +
                                  std::to_string(key));
      }
      it->second[p].push_back(flat);
      return Status::OK();
    }));
  }
  for (int64_t key : key_order) {
    STARFISH_ASSIGN_OR_RETURN(Tuple object,
                              decomp_.Assemble(by_key[key], proj));
    STARFISH_RETURN_NOT_OK(fn(key, object));
  }
  return Status::OK();
}

namespace {

/// True when link extraction can bypass object assembly: links live in at
/// most one non-root path and never in the root tuple, so document order
/// is recoverable from that path's rows alone (by OwnKey when present).
bool SingleLinkPath(const NsmDecomposition& decomp, PathId* link_path) {
  if (decomp.relation(kRootPath).has_links) return false;
  *link_path = kRootPath;  // "none" marker
  for (PathId p = 1; p < decomp.relations().size(); ++p) {
    if (!decomp.relation(p).has_links) continue;
    if (*link_path != kRootPath) return false;  // second link path
    *link_path = p;
  }
  return true;
}

/// Orders an object's rows of one path by OwnKey (document order) when the
/// decomposition stores own keys; otherwise keeps arrival order.
void SortByOwnKey(const DecomposedRelation& rel, std::vector<Tuple>* rows) {
  if (!rel.has_own_key) return;
  const size_t idx = static_cast<size_t>(rel.has_root_key) +
                     static_cast<size_t>(rel.has_parent_key);
  std::stable_sort(rows->begin(), rows->end(),
                   [idx](const Tuple& a, const Tuple& b) {
                     return a.values[idx].as_int32() < b.values[idx].as_int32();
                   });
}

/// Appends the link attribute values of one flat row, in attribute order.
void ExtractRowLinks(const DecomposedRelation& rel, const Tuple& row,
                     std::vector<ObjectRef>* out) {
  for (size_t a = rel.data_offset; a < row.values.size(); ++a) {
    if (row.values[a].is_link()) out->push_back(row.values[a].as_link());
  }
}

}  // namespace

Result<std::vector<ObjectRef>> NsmModel::GetChildRefs(ObjectRef ref) {
  STARFISH_ASSIGN_OR_RETURN(int64_t key, RefToKey(ref));
  PathId link_path = kRootPath;
  if (SingleLinkPath(decomp_, &link_path)) {
    if (link_path == kRootPath) return std::vector<ObjectRef>{};  // no links
    const DecomposedRelation& rel = decomp_.relation(link_path);
    std::vector<Tuple> mine;
    if (options_.with_index) {
      STARFISH_ASSIGN_OR_RETURN(std::vector<Tid> tids, ChildTids(link_path, key));
      STARFISH_ASSIGN_OR_RETURN(mine, FetchTuples(link_path, tids));
    } else {
      STARFISH_RETURN_NOT_OK(
          ScanRelation(link_path, [&](Tid, const Tuple& flat) {
            if (flat.values[0].as_int32() == key) mine.push_back(flat);
            return Status::OK();
          }));
    }
    SortByOwnKey(rel, &mine);
    std::vector<ObjectRef> refs;
    for (const Tuple& row : mine) ExtractRowLinks(rel, row, &refs);
    return refs;
  }
  // General case (root links or several link paths): assemble the
  // link-projected object, which preserves global document order.
  const Projection proj = LinkProjection();
  Tuple object;
  if (options_.with_index) {
    STARFISH_ASSIGN_OR_RETURN(object, GetByRef(ref, proj));
  } else {
    STARFISH_ASSIGN_OR_RETURN(ShreddedObject parts, CollectObject(key, proj));
    STARFISH_ASSIGN_OR_RETURN(object, decomp_.Assemble(parts, proj));
  }
  std::vector<ObjectRef> refs;
  CollectLinks(object, &refs);
  return refs;
}

Result<std::vector<std::vector<ObjectRef>>> NsmModel::GetChildRefsBatch(
    const std::vector<ObjectRef>& refs) {
  if (options_.with_index) return StorageModel::GetChildRefsBatch(refs);
  std::vector<std::vector<ObjectRef>> out(refs.size());
  if (refs.empty()) return out;
  std::unordered_map<int64_t, std::vector<size_t>> want;  // key -> batch slots
  for (size_t i = 0; i < refs.size(); ++i) {
    STARFISH_ASSIGN_OR_RETURN(int64_t key, RefToKey(refs[i]));
    want[key].push_back(i);
  }

  PathId link_path = kRootPath;
  if (SingleLinkPath(decomp_, &link_path)) {
    if (link_path == kRootPath) return out;  // no links anywhere
    // One scan of the single link relation answers the whole batch.
    const DecomposedRelation& rel = decomp_.relation(link_path);
    std::unordered_map<int64_t, std::vector<Tuple>> rows;
    STARFISH_RETURN_NOT_OK(
        ScanRelation(link_path, [&](Tid, const Tuple& flat) {
          if (want.count(flat.values[0].as_int32()) > 0) {
            rows[flat.values[0].as_int32()].push_back(flat);
          }
          return Status::OK();
        }));
    for (auto& [key, mine] : rows) {
      SortByOwnKey(rel, &mine);
      std::vector<ObjectRef> links;
      for (const Tuple& row : mine) ExtractRowLinks(rel, row, &links);
      for (size_t slot : want[key]) out[slot] = links;
    }
    return out;
  }

  // General case: one scan per link-projected relation, then assemble.
  const Projection proj = LinkProjection();
  std::unordered_map<int64_t, ShreddedObject> parts_by_key;
  for (const auto& [key, slots] : want) {
    parts_by_key[key].resize(decomp_.relations().size());
  }
  STARFISH_RETURN_NOT_OK(
      ScanRelation(kRootPath, [&](Tid, const Tuple& flat) {
        auto it = parts_by_key.find(
            flat.values[config_.key_attr_index].as_int32());
        if (it != parts_by_key.end()) it->second[kRootPath].push_back(flat);
        return Status::OK();
      }));
  for (PathId p = 1; p < decomp_.relations().size(); ++p) {
    if (!proj.Includes(p)) continue;
    STARFISH_RETURN_NOT_OK(ScanRelation(p, [&](Tid, const Tuple& flat) {
      auto it = parts_by_key.find(flat.values[0].as_int32());
      if (it != parts_by_key.end()) it->second[p].push_back(flat);
      return Status::OK();
    }));
  }
  for (auto& [key, parts] : parts_by_key) {
    STARFISH_ASSIGN_OR_RETURN(Tuple object, decomp_.Assemble(parts, proj));
    std::vector<ObjectRef> links;
    CollectLinks(object, &links);
    for (size_t slot : want[key]) out[slot] = links;
  }
  return out;
}

Result<std::vector<Tuple>> NsmModel::GetRootRecordsBatch(
    const std::vector<ObjectRef>& refs) {
  if (options_.with_index) return StorageModel::GetRootRecordsBatch(refs);
  // One scan of the root relation answers the whole batch.
  std::unordered_map<int64_t, std::vector<size_t>> want;
  for (size_t i = 0; i < refs.size(); ++i) {
    STARFISH_ASSIGN_OR_RETURN(int64_t key, RefToKey(refs[i]));
    want[key].push_back(i);
  }
  const Projection root_only = Projection::RootOnly(*config_.schema);
  std::vector<Tuple> out(refs.size());
  std::vector<bool> filled(refs.size(), false);
  STARFISH_RETURN_NOT_OK(
      ScanRelation(kRootPath, [&](Tid, const Tuple& flat) -> Status {
        auto it = want.find(flat.values[config_.key_attr_index].as_int32());
        if (it == want.end()) return Status::OK();
        ShreddedObject parts(decomp_.relations().size());
        parts[kRootPath].push_back(flat);
        STARFISH_ASSIGN_OR_RETURN(Tuple root,
                                  decomp_.Assemble(parts, root_only));
        for (size_t slot : it->second) {
          out[slot] = root;
          filled[slot] = true;
        }
        return Status::OK();
      }));
  for (size_t i = 0; i < refs.size(); ++i) {
    if (!filled[i]) {
      return Status::NotFound("no object with ref " + std::to_string(refs[i]));
    }
  }
  return out;
}

Result<Tuple> NsmModel::GetRootRecord(ObjectRef ref) {
  STARFISH_ASSIGN_OR_RETURN(int64_t key, RefToKey(ref));
  const Projection root_only = Projection::RootOnly(*config_.schema);
  ShreddedObject parts(decomp_.relations().size());
  if (options_.with_index) {
    STARFISH_ASSIGN_OR_RETURN(std::string bytes,
                              records_[kRootPath]->Read(root_tid_of_ref_[ref]));
    STARFISH_ASSIGN_OR_RETURN(
        Tuple flat,
        ObjectSerializer::DecodeFlat(*decomp_.relation(kRootPath).flat_schema,
                                     bytes));
    parts[kRootPath].push_back(std::move(flat));
  } else {
    // Value selection: scan the root relation (cached across a query loop).
    STARFISH_RETURN_NOT_OK(
        ScanRelation(kRootPath, [&](Tid, const Tuple& flat) {
          if (flat.values[config_.key_attr_index].as_int32() == key) {
            parts[kRootPath].push_back(flat);
          }
          return Status::OK();
        }));
    if (parts[kRootPath].empty()) {
      return Status::NotFound("no object with key " + std::to_string(key));
    }
  }
  return decomp_.Assemble(parts, root_only);
}

Status NsmModel::UpdateRootRecord(ObjectRef ref, const Tuple& new_root) {
  STARFISH_ASSIGN_OR_RETURN(int64_t key, RefToKey(ref));
  STARFISH_ASSIGN_OR_RETURN(int64_t new_key, KeyOf(new_root));
  if (key != new_key) {
    return Status::InvalidArgument("object keys are immutable");
  }
  const DecomposedRelation& rel = decomp_.relation(kRootPath);
  Tuple flat;
  for (size_t src : rel.data_source) {
    flat.values.push_back(new_root.values[src]);
  }
  const std::string bytes = ObjectSerializer::EncodeFlat(*rel.flat_schema, flat);
  return records_[kRootPath]->Update(root_tid_of_ref_[ref], bytes);
}

}  // namespace starfish
