#pragma once

#include <memory>
#include <vector>

#include "models/storage_model.h"
#include "nf2/serializer.h"
#include "storage/complex_record.h"

/// \file direct_model.h
/// The direct storage models: DSM and DASDBS-DSM (§3.1/§3.2).
///
/// Both store each complex object as one clustered record: small objects
/// share slotted pages, large objects get a private header/data page run.
/// The difference is purely behavioural:
///
///   * **DSM** ignores the structural header on reads — every retrieval
///     fetches *all* pages of the object ("as far as possible, the nested
///     tuples will be stored contiguously on disk"), and updates replace
///     the entire nested tuple.
///   * **DASDBS-DSM** exploits the object header: reads fetch only the data
///     pages containing projected sub-tuples. The price appears on update:
///     because only part of the tuple was retrieved, a whole-tuple replace
///     is impossible and the model falls back to per-tuple change-attribute
///     operations, each of which writes a page pool (§5.3).
///
/// The object table (ObjectRef -> physical TID) is in-memory and uncounted:
/// in the paper the OID *is* the physical address.
///
/// Write striping (ModelConfig::write_stripes): the relation can be split
/// into N independent stripes, object `ref` living entirely in stripe
/// `ref % N`. Each stripe owns its own segment, record store, page pool and
/// slice of the object table — no state is shared between stripes — so the
/// store-level per-segment write latching lets ops on different stripes
/// apply concurrently. N == 1 (default) is byte-identical to the unstriped
/// paper layout; scans visit stripes in order (stripe-major, so the order
/// differs from global insertion order when N > 1).

namespace starfish {

/// Behaviour switches distinguishing DSM from DASDBS-DSM.
struct DirectModelOptions {
  /// Read only the pages holding projected sub-tuples (DASDBS-DSM).
  bool partial_reads = false;

  /// Update root records via change-attribute + page pool instead of a
  /// whole-tuple replace (DASDBS-DSM).
  bool change_attr_updates = false;

  /// Page-pool size of the change-attribute protocol.
  uint32_t page_pool_pages = 1;

  /// Extension beyond the paper: push projections into scans too, so a
  /// value selection reads only header + root-region pages of non-matching
  /// objects instead of whole objects. Off by default — the paper models
  /// query 1b as a full relation scan; DASDBS's measured 1c of 1.82
  /// pages/object suggests its scans had a comparable trick. Requires
  /// partial_reads.
  bool scan_pushdown = false;
};

/// DSM / DASDBS-DSM implementation.
class DirectModel : public StorageModel {
 public:
  /// Creates the model's segment(s) inside `engine`. The first stripe's
  /// segment name is derived from the model name and the schema name (e.g.
  /// "DSM_Station", so single-stripe layouts match the pre-striping ones);
  /// stripes beyond the first get a ".s<i>" suffix.
  static Result<std::unique_ptr<DirectModel>> Create(StorageEngine* engine,
                                                     ModelConfig config,
                                                     DirectModelOptions options);

  StorageModelKind kind() const override {
    return options_.partial_reads ? StorageModelKind::kDasdbsDsm
                                  : StorageModelKind::kDsm;
  }

  Status Insert(ObjectRef ref, const Tuple& object) override;
  Result<Tuple> GetByRef(ObjectRef ref, const Projection& proj) override;
  Result<Tuple> GetByKey(int64_t key, const Projection& proj) override;
  Status ScanAll(const Projection& proj, const ScanCallback& fn) override;
  Result<std::vector<ObjectRef>> GetChildRefs(ObjectRef ref) override;
  Result<Tuple> GetRootRecord(ObjectRef ref) override;
  Status UpdateRootRecord(ObjectRef ref, const Tuple& new_root) override;
  Status ReplaceObject(ObjectRef ref, const Tuple& new_object) override;
  Status Remove(ObjectRef ref) override;
  uint64_t object_count() const override;
  Status SaveState(std::string* out) const override;
  Status LoadState(std::string_view* in) override;
  Status CollectLiveTids(std::vector<Tid>* out) const override;
  void CollectWriteSegments(ObjectRef ref,
                            std::vector<Segment*>* out) const override;

  /// Physical address of an object (for tests/calibration).
  Result<Tid> AddressOf(ObjectRef ref) const;

  /// Placement info of an object's record (Table 2 calibration).
  Result<ComplexRecordInfo> RecordInfo(ObjectRef ref) const;

  /// The relation's (first stripe's) segment (tests/calibration).
  Segment* segment() { return stripes_[0].segment; }

  /// Number of write stripes (1 = the paper-exact unstriped layout).
  uint32_t stripe_count() const {
    return static_cast<uint32_t>(stripes_.size());
  }

 private:
  /// One independent slice of the relation: a segment, its record store
  /// (page pool included) and the object-table slice of the refs routed
  /// here. Nothing is shared between stripes.
  struct Stripe {
    Segment* segment = nullptr;
    std::unique_ptr<ComplexRecordStore> store;
    std::vector<Tid> address_of;  ///< slot = ref / stripe_count
    uint64_t live_count = 0;
  };

  DirectModel(ModelConfig config, std::vector<Segment*> segments,
              DirectModelOptions options);

  uint32_t StripeIndexOf(ObjectRef ref) const {
    return static_cast<uint32_t>(ref % stripes_.size());
  }
  size_t SlotOf(ObjectRef ref) const {
    return static_cast<size_t>(ref / stripes_.size());
  }
  Stripe& StripeOf(ObjectRef ref) { return stripes_[StripeIndexOf(ref)]; }
  const Stripe& StripeOf(ObjectRef ref) const {
    return stripes_[StripeIndexOf(ref)];
  }

  /// Reads an object's regions under `proj`: partial for DASDBS-DSM,
  /// everything (then logically filtered) for DSM.
  Result<std::vector<RecordRegion>> ReadRegions(const ComplexRecordStore& store,
                                                const Tid& tid,
                                                const Projection& proj) const;

  ObjectSerializer serializer_;
  DirectModelOptions options_;
  Projection link_projection_;
  std::vector<Stripe> stripes_;
};

}  // namespace starfish
