#pragma once

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

#include "disk/page.h"
#include "disk/sim_disk.h"
#include "util/status.h"

/// \file buffer_manager.h
/// The main-memory page buffer between the storage layer and the disk.
///
/// Reproduces the buffer behaviour the paper's measurements depend on:
///   * a fixed pool of frames (DASDBS ran with 1200 frames — the default);
///   * fix/unfix with pin counts; every fix is counted (Table 6 reports
///     "page fixes in buffer" as a CPU-load indicator);
///   * write-back caching: dirty pages go to disk only when the buffer
///     overflows or at FlushAll ("database disconnect"), and write-back is
///     batched so a single write call carries many pages (Table 5 observed
///     20-30 pages per write call for the direct models);
///   * prefetching an object's pages in one chained read call (DASDBS issued
///     separate calls for the root page, remaining header pages and data
///     pages of a complex record).
///
/// Replacement is LRU by default; CLOCK and FIFO are provided for the
/// buffer-policy ablation bench.

namespace starfish {

/// Frame replacement policies.
enum class ReplacementPolicy {
  kLru,    ///< evict the least recently fixed unpinned page (default)
  kClock,  ///< second-chance clock
  kFifo,   ///< evict the oldest-loaded unpinned page
};

/// Buffer pool configuration.
struct BufferOptions {
  /// Number of page frames. DASDBS measurement setup: 1200.
  uint32_t frame_count = 1200;

  /// Replacement policy.
  ReplacementPolicy policy = ReplacementPolicy::kLru;

  /// When an eviction victim is dirty, up to this many cold dirty pages are
  /// cleaned together in one chained write call (DASDBS-style batched
  /// write-back). 1 disables batching.
  uint32_t write_batch_size = 32;
};

/// Buffer-side counters (disk-side counters live in SimDisk::stats()).
struct BufferStats {
  uint64_t fixes = 0;            ///< Fix calls (the paper's "page fixes")
  uint64_t hits = 0;             ///< fixes satisfied without disk access
  uint64_t misses = 0;           ///< fixes that had to read the page
  uint64_t prefetched_pages = 0; ///< pages loaded via Prefetch
  uint64_t evictions = 0;        ///< frames reclaimed
  uint64_t write_backs = 0;      ///< dirty pages cleaned (overflow + flush)

  BufferStats Since(const BufferStats& earlier) const {
    BufferStats d;
    d.fixes = fixes - earlier.fixes;
    d.hits = hits - earlier.hits;
    d.misses = misses - earlier.misses;
    d.prefetched_pages = prefetched_pages - earlier.prefetched_pages;
    d.evictions = evictions - earlier.evictions;
    d.write_backs = write_backs - earlier.write_backs;
    return d;
  }

  std::string ToString() const;
};

/// How Prefetch groups the pages it must read into I/O calls.
enum class PrefetchMode {
  /// All missing pages in one chained call (an object fetched as a unit).
  kChained,
  /// Missing pages grouped into maximal runs of consecutive page ids, one
  /// call per run (a sequential scan through a segment).
  kContiguousRuns,
};

class BufferManager;

/// RAII pin on a buffered page. Move-only; unfixes on destruction.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(BufferManager* bm, PageId id, char* data)
      : bm_(bm), id_(id), data_(data) {}
  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  PageGuard(PageGuard&& other) noexcept { *this = std::move(other); }
  PageGuard& operator=(PageGuard&& other) noexcept;
  ~PageGuard() { Release(); }

  /// True when this guard holds a pinned page.
  bool valid() const { return bm_ != nullptr; }

  PageId page_id() const { return id_; }

  /// Frame contents; full physical page (header included).
  char* data() { return data_; }
  const char* data() const { return data_; }

  /// Marks the page modified; it will be written back on overflow or flush.
  void MarkDirty() { dirty_ = true; }

  /// Unfixes immediately (idempotent).
  void Release();

 private:
  BufferManager* bm_ = nullptr;
  PageId id_ = kInvalidPageId;
  char* data_ = nullptr;
  bool dirty_ = false;
};

/// The buffer pool. Not thread-safe (single-user evaluation, like the paper).
class BufferManager {
 public:
  BufferManager(SimDisk* disk, BufferOptions options = {});
  ~BufferManager();

  /// Pins `id` in the pool, reading it from disk if absent (one single-page
  /// read call on miss). Multiple concurrent pins on one page are allowed.
  Result<PageGuard> Fix(PageId id);

  /// Unpins a page; `dirty` marks it modified. Called by PageGuard.
  Status Unfix(PageId id, bool dirty);

  /// Ensures every listed page is resident, reading the missing ones
  /// according to `mode`. Does not pin. Duplicate ids are allowed.
  Status Prefetch(const std::vector<PageId>& ids, PrefetchMode mode);

  /// Writes all dirty pages (batched into chained calls of at most
  /// write_batch_size pages) and marks them clean. Frames stay resident.
  /// Models the paper's write-back at "database disconnect".
  Status FlushAll();

  /// Drops every unpinned frame after flushing dirty ones. Returns an error
  /// if any page is still pinned. Used between benchmark phases to start
  /// queries from a cold buffer.
  Status DropAll();

  /// True if `id` currently occupies a frame.
  bool IsCached(PageId id) const { return frame_of_.count(id) > 0; }

  /// Number of resident pages.
  uint32_t resident_count() const { return static_cast<uint32_t>(frame_of_.size()); }

  uint32_t frame_count() const { return options_.frame_count; }

  const BufferStats& stats() const { return stats_; }
  void ResetStats() { stats_ = BufferStats{}; }

  SimDisk* disk() { return disk_; }

 private:
  struct Frame {
    PageId page_id = kInvalidPageId;
    std::vector<char> data;
    uint32_t pins = 0;
    bool dirty = false;
    bool referenced = false;  // CLOCK second-chance bit
    std::list<uint32_t>::iterator order_pos;  // position in order_ (LRU/FIFO)
    bool in_order = false;
  };

  /// Loads `id` into a frame (evicting if needed) without counting a fix.
  /// `already_read` supplies page bytes read by a chained call, nullptr to
  /// read from disk (single-page call).
  Result<uint32_t> Load(PageId id, const char* already_read);

  /// Returns a free frame index, evicting a victim if the pool is full.
  Result<uint32_t> GrabFrame();

  /// Chooses an eviction victim among unpinned frames, or an error when all
  /// frames are pinned.
  Result<uint32_t> PickVictim();

  /// Cleans up to write_batch_size cold dirty unpinned pages (always
  /// including `must_include`) with one chained write call.
  Status WriteBackBatch(uint32_t must_include);

  /// Policy bookkeeping on access / load.
  void TouchFrame(uint32_t frame_idx);
  void EnqueueFrame(uint32_t frame_idx);
  void RemoveFromOrder(uint32_t frame_idx);

  SimDisk* disk_;
  BufferOptions options_;
  std::vector<Frame> frames_;
  std::vector<uint32_t> free_frames_;
  std::unordered_map<PageId, uint32_t> frame_of_;
  std::list<uint32_t> order_;  // eviction order for LRU/FIFO (front = coldest)
  uint32_t clock_hand_ = 0;
  BufferStats stats_;
};

}  // namespace starfish
