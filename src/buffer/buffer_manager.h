#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "disk/page.h"
#include "disk/volume.h"
#include "util/aligned_buffer.h"
#include "util/status.h"

/// \file buffer_manager.h
/// The main-memory page buffer between the storage layer and the disk.
///
/// Reproduces the buffer behaviour the paper's measurements depend on:
///   * a fixed pool of frames (DASDBS ran with 1200 frames — the default);
///   * fix/unfix with pin counts; every fix is counted (Table 6 reports
///     "page fixes in buffer" as a CPU-load indicator);
///   * write-back caching: dirty pages go to disk only when the buffer
///     overflows or at FlushAll ("database disconnect"), and write-back is
///     batched so a single write call carries many pages (Table 5 observed
///     20-30 pages per write call for the direct models);
///   * prefetching an object's pages in one chained read call (DASDBS issued
///     separate calls for the root page, remaining header pages and data
///     pages of a complex record).
///
/// Replacement is LRU by default; CLOCK and FIFO are provided for the
/// buffer-policy ablation bench.
///
/// Implementation notes (the zero-copy hot path): all frame data lives in
/// one contiguous pool allocation; the LRU/FIFO eviction order is an
/// intrusive doubly-linked list threaded through prev/next frame indices (no
/// per-touch heap traffic); the page->frame map is a flat open-addressing
/// table with linear probing. Prefetch copies pages from the volume's
/// extents straight into frames via the Volume zero-copy read views, and
/// write-back hands frame pointers straight to WriteChained — steady state
/// does no heap allocation and one memcpy per page moved. The manager
/// programs against the abstract Volume interface, so any backend
/// (in-memory, mmap, direct, timed) plugs in underneath. Backends without a
/// memory image (supports_zero_copy() == false, i.e. the O_DIRECT backend)
/// take a copying path instead: Fix misses read the device straight into
/// the frame, Prefetch reads batches into an aligned per-thread staging
/// area — and BufferOptions::frame_alignment lets the frames themselves be
/// DMA targets.
///
/// Concurrency model: the pool is split into BufferOptions::shard_count
/// independent shards. A page id maps to its shard by the top bits of the
/// same Fibonacci hash the page table uses; each shard owns its slice of
/// frames, its page table, its LRU/CLOCK/FIFO order list, its counters and
/// its write-back scratch, all guarded by one shard mutex. A page therefore
/// only ever occupies frames of its own shard, eviction decisions never
/// cross shards, and a pinned page cannot be evicted by a racing thread
/// (pin counts are only read or written under the owning shard's lock).
///
///   * shard_count == 1 (the default) — the paper's single-user pool: one
///     shard, global replacement order, and NO locking. Counters and
///     eviction decisions are bit-for-bit what the original flat layout
///     produced; the Fix hit path stays lock-free. Not thread-safe.
///   * shard_count != 1 — thread-safe mode: Fix/FixFresh/Unfix/Prefetch/
///     FlushAll/IsCached/stats() may be called from any thread
///     concurrently. 0 picks a shard count from the hardware concurrency.
///     DropAll/ResetStats remain quiescent-only operations (benchmark phase
///     separators), and replacement is per shard, so miss counts can differ
///     from the 1-shard pool (still deterministic for a deterministic
///     access sequence).

namespace starfish {

/// WAL-before-data seam. The buffer manager knows nothing about the log's
/// format; it only promises that before any frame batch reaches the volume,
/// the hook has made every LSN recorded on those frames durable. WalManager
/// implements this (wal/wal_manager.h); the storage engine wires it in.
class WalOrderingHook {
 public:
  virtual ~WalOrderingHook() = default;

  /// Blocks until every log record with LSN <= `lsn` is durable (or the log
  /// is poisoned — then the write-back must not proceed).
  virtual Status EnsureDurable(uint64_t lsn) = 0;
};

/// Frame replacement policies.
enum class ReplacementPolicy {
  kLru,    ///< evict the least recently fixed unpinned page (default)
  kClock,  ///< second-chance clock
  kFifo,   ///< evict the oldest-loaded unpinned page
};

/// Buffer pool configuration.
struct BufferOptions {
  /// Number of page frames. DASDBS measurement setup: 1200.
  uint32_t frame_count = 1200;

  /// Replacement policy.
  ReplacementPolicy policy = ReplacementPolicy::kLru;

  /// When an eviction victim is dirty, up to this many cold dirty pages are
  /// cleaned together in one chained write call (DASDBS-style batched
  /// write-back). 1 disables batching.
  uint32_t write_batch_size = 32;

  /// Number of independent pool shards. 1 (default) = the paper-exact
  /// single-user pool, unlocked and NOT thread-safe. Any other value makes
  /// every hot-path call thread-safe behind per-shard mutexes: 0 derives a
  /// power of two from std::thread::hardware_concurrency(); values > 1 are
  /// rounded up to a power of two and clamped to frame_count.
  uint32_t shard_count = 1;

  /// Byte alignment of the frame arena (0 = natural new[] alignment;
  /// non-zero values are rounded up to a power of two). The storage engine
  /// raises this to Volume::io_buffer_alignment() so a direct (O_DIRECT)
  /// backend can DMA page reads straight into the frames. Every individual
  /// frame is aligned when page_size is itself a multiple of the alignment
  /// (e.g. 4096-byte pages at 4096 alignment); otherwise only the arena
  /// base is, and the volume bounces internally — correct either way.
  uint32_t frame_alignment = 0;
};

/// Buffer-side counters (disk-side counters live in Volume::stats()).
/// Aggregated over all shards on read; exact, because each shard's counters
/// only change under its lock.
struct BufferStats {
  uint64_t fixes = 0;            ///< Fix calls (the paper's "page fixes")
  uint64_t hits = 0;             ///< fixes satisfied without disk access
  uint64_t misses = 0;           ///< fixes that had to read the page
  uint64_t prefetched_pages = 0; ///< pages loaded via Prefetch
  uint64_t evictions = 0;        ///< frames reclaimed
  uint64_t write_backs = 0;      ///< dirty pages cleaned (overflow + flush)

  BufferStats Since(const BufferStats& earlier) const {
    BufferStats d;
    d.fixes = fixes - earlier.fixes;
    d.hits = hits - earlier.hits;
    d.misses = misses - earlier.misses;
    d.prefetched_pages = prefetched_pages - earlier.prefetched_pages;
    d.evictions = evictions - earlier.evictions;
    d.write_backs = write_backs - earlier.write_backs;
    return d;
  }

  BufferStats& operator+=(const BufferStats& other) {
    fixes += other.fixes;
    hits += other.hits;
    misses += other.misses;
    prefetched_pages += other.prefetched_pages;
    evictions += other.evictions;
    write_backs += other.write_backs;
    return *this;
  }

  std::string ToString() const;
};

/// How Prefetch groups the pages it must read into I/O calls.
enum class PrefetchMode {
  /// All missing pages in one chained call (an object fetched as a unit).
  kChained,
  /// Missing pages grouped into maximal runs of consecutive page ids, one
  /// call per run (a sequential scan through a segment).
  kContiguousRuns,
};

class BufferManager;

/// RAII pin on a buffered page. Move-only; unfixes on destruction.
///
/// Pin-ownership contract: the pin travels with the guard, and the guard
/// (including one it was move-assigned into) must be released on the thread
/// that created the pin — a guard is a thread-local lease, not a mailbox for
/// handing pages between threads. Debug builds assert this in Release();
/// each thread wanting the page takes its own Fix.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(void* shard, PageId id, char* data, uint32_t frame_idx)
      : shard_(shard), id_(id), data_(data), frame_idx_(frame_idx) {
#ifndef NDEBUG
    owner_ = std::this_thread::get_id();
#endif
  }
  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  PageGuard(PageGuard&& other) noexcept { *this = std::move(other); }
  PageGuard& operator=(PageGuard&& other) noexcept;
  // Dying guards skip Release()'s member resets (nobody can observe them).
  ~PageGuard();

  /// True when this guard holds a pinned page.
  bool valid() const { return shard_ != nullptr; }

  PageId page_id() const { return id_; }

  /// Frame contents; full physical page (header included).
  char* data() { return data_; }
  const char* data() const { return data_; }

  /// Marks the page modified; it will be written back on overflow or flush.
  void MarkDirty() { dirty_ = true; }

  /// Unfixes immediately (idempotent).
  void Release();

 private:
  void AssertOwningThread() const {
#ifndef NDEBUG
    assert(owner_ == std::this_thread::get_id() &&
           "PageGuard released on a different thread than the one that "
           "created the pin");
#endif
  }

  /// Drops the pin (shard lock taken through the shard's lock pointer).
  void Unpin();

  /// The owning BufferManager::Shard (opaque at this point in the header).
  /// The shard pointer is all a release needs: it carries the frame array,
  /// and its precomputed lock pointer (null for an unlocked pool) — so an
  /// unfix costs no hash and no detour through the manager.
  void* shard_ = nullptr;
  PageId id_ = kInvalidPageId;
  char* data_ = nullptr;
  uint32_t frame_idx_ = 0;  ///< shard-local frame index
  bool dirty_ = false;
#ifndef NDEBUG
  std::thread::id owner_;
#endif
};

/// The buffer pool. Thread-safe when options.shard_count != 1 (see the
/// concurrency model in the file comment).
///
/// WAL integration (all optional — a pool without a hook behaves exactly as
/// before):
///
///   * Each frame has a `recovery_lsn` (a per-shard array parallel to the
///     frames): the LSN of the last WAL record that dirtied the page.
///     Before a write-back batch reaches the volume, the WalOrderingHook
///     must make max(recovery_lsn of the batch) durable — WAL-before-data.
///   * While an op is being applied (between BeginWriteCapture and
///     StampRecoveryLsn) its dirtied frames hold the kPendingRecoveryLsn
///     sentinel: they are not yet explained by any log record, so eviction,
///     flush and write-back all skip them. StampRecoveryLsn resolves them
///     to the op's real LSN — and writes the same LSN into the page header
///     (disk/page.h), which is what sf_fsck cross-checks offline.
///   * BeginWriteCapture also records, per op, the dirtied page ids and a
///     pre-image (full page copy, taken at Fix time — before the caller
///     mutates) of every page the pre-image query approves. The WAL layer
///     logs those images so replay can roll shared pages back to their
///     committed content before re-running ops.
///
/// Write capture is THREAD-SCOPED, like the read capture: the capture state
/// lives in a thread-local slot, so concurrent writers (whose ops hold
/// disjoint segment write-latch sets) each capture exactly their own op's
/// pages with no shared state and no lock. The Fix/Unpin hot paths pay one
/// TLS load and a predicted-not-taken branch when no capture is active.
/// The per-frame pending sentinel is still shared state — but two ops can
/// only race on a frame if their latch sets overlap, which the store's
/// latching rules out.
class BufferManager {
 public:
  BufferManager(Volume* disk, BufferOptions options = {});
  ~BufferManager();

  /// recovery_lsn sentinel of a frame dirtied by an op whose WAL record has
  /// not been assigned yet (unevictable, unflushable).
  static constexpr uint64_t kPendingRecoveryLsn = ~0ull;

  /// What one op's write capture collected.
  struct WriteCapture {
    std::vector<PageId> dirtied;  ///< pages left with a pending LSN
    std::vector<std::pair<PageId, std::string>> preimages;
  };

  /// Installs (or clears, nullptr) the WAL-before-data hook consulted by
  /// write-back. Wire-up time only, not thread-safe against running I/O.
  void SetWalHook(WalOrderingHook* hook) { wal_hook_ = hook; }

  /// Pre-image filter: return false to skip copying a page's image (e.g.
  /// because the WAL already holds one for this checkpoint interval).
  /// Null = capture every page below the limit. Wire-up time only.
  void SetPreimageQuery(std::function<bool(PageId)> query) {
    preimage_query_ = std::move(query);
  }

  /// Starts THIS THREAD's write capture. Pages with id < preimage_limit get
  /// pre-imaged at Fix time. Thread-scoped: concurrent writer threads each
  /// capture their own op (their latch sets must be disjoint — see the
  /// class comment); captures do not nest on one thread.
  void BeginWriteCapture(PageId preimage_limit);

  /// Ends this thread's capture and returns what it collected. The dirtied
  /// frames stay pending until StampRecoveryLsn.
  WriteCapture TakeWriteCapture();

  /// Resolves the pending frames of `pages` to `lsn`, stamping the LSN into
  /// both the frame metadata and the page header bytes. Pages no longer
  /// resident are skipped (freed mid-op). lsn 0 only CLEARS the pending
  /// sentinel (frames become ordinary dirty pages, no page-header stamp) —
  /// the no-WAL path uses it to release captured frames, since 0 is never a
  /// real LSN (they start at 1).
  void StampRecoveryLsn(const std::vector<PageId>& pages, uint64_t lsn);

  /// Starts recording, into *sink, the id of every page THIS THREAD fixes
  /// (Fix and FixFresh, hits and misses alike) until EndThreadReadCapture.
  /// How the object cache learns which pages back an assembly: the store
  /// brackets a miss's model read with a capture and hands the page set to
  /// the cache entry. Thread-local by construction — concurrent readers
  /// each capture only their own fixes, with no shared state and no lock.
  /// `sink` must outlive the capture; captures do not nest.
  static void BeginThreadReadCapture(std::vector<PageId>* sink) {
    read_capture_ = sink;
  }
  static void EndThreadReadCapture() { read_capture_ = nullptr; }

  /// RAII bracket for the above (exception/early-return safe).
  class ThreadReadCaptureScope {
   public:
    explicit ThreadReadCaptureScope(std::vector<PageId>* sink) {
      BeginThreadReadCapture(sink);
    }
    ~ThreadReadCaptureScope() { EndThreadReadCapture(); }
    ThreadReadCaptureScope(const ThreadReadCaptureScope&) = delete;
    ThreadReadCaptureScope& operator=(const ThreadReadCaptureScope&) = delete;
  };

  /// Pins `id` in the pool, reading it from disk if absent (one single-page
  /// read call on miss). Multiple concurrent pins on one page are allowed.
  Result<PageGuard> Fix(PageId id);

  /// Fix variant for pages known to be freshly allocated and still
  /// all-zero on disk: on miss the frame is zero-filled in place instead of
  /// issuing a metered read call for bytes the caller is about to format.
  /// Counted as a normal fix/miss; only the pointless disk read disappears.
  /// Using it on a page with real on-disk contents would hand out a zeroed
  /// frame and clobber the page at write-back — callers must only pass page
  /// ids straight out of Volume::AllocateRun.
  Result<PageGuard> FixFresh(PageId id);

  /// Unpins a page; `dirty` marks it modified. Called by PageGuard.
  Status Unfix(PageId id, bool dirty);

  /// Ensures every listed page is resident, reading the missing ones
  /// according to `mode`. Does not pin. Duplicate ids are allowed.
  Status Prefetch(const std::vector<PageId>& ids, PrefetchMode mode);

  /// Writes all dirty pages (batched into chained calls of at most
  /// write_batch_size pages, shard by shard in page-id order) and marks
  /// them clean. Frames stay resident. Models the paper's write-back at
  /// "database disconnect". In concurrent mode, dirty pages that are
  /// pinned at flush time are deferred (their pin holder may be writing
  /// the bytes); they reach disk on a later flush or at eviction.
  Status FlushAll();

  /// Drops every unpinned frame after flushing dirty ones. Returns an error
  /// if any page is still pinned. Used between benchmark phases to start
  /// queries from a cold buffer; requires that no other thread is using the
  /// pool (the pin check and the drop are not one atomic step).
  Status DropAll();

  /// True if `id` currently occupies a frame. Takes the shard lock, so the
  /// answer is consistent even against a racing load/eviction (and the
  /// accessor is honest in single-threaded runs too).
  bool IsCached(PageId id) const;

  /// Number of resident pages (sums the shards under their locks).
  uint32_t resident_count() const;

  uint32_t frame_count() const { return options_.frame_count; }

  /// Number of independent shards (1 = unlocked single-user mode).
  uint32_t shard_count() const { return shard_count_; }

  /// Aggregated counters over all shards (exact: shard counters only move
  /// under their shard's lock).
  BufferStats stats() const;

  /// Zeroes all counters. Quiescent-only in concurrent mode.
  void ResetStats();

  Volume* disk() { return disk_; }

 private:
  static constexpr uint32_t kNullFrame = 0xFFFFFFFFu;
  static constexpr size_t kNotFound = ~static_cast<size_t>(0);

  /// Frame metadata only — the page bytes live in the contiguous pool_ at
  /// `pool_ + (shard.frame_base + index) * page_size`. prev/next thread the
  /// LRU/FIFO eviction order through the shard's frame array (front =
  /// coldest). All fields are guarded by the owning shard's mutex.
  struct Frame {
    PageId page_id = kInvalidPageId;
    uint32_t pins = 0;
    uint32_t prev = kNullFrame;
    uint32_t next = kNullFrame;
    bool dirty = false;
    bool referenced = false;  // CLOCK second-chance bit
    bool in_order = false;
  };

  /// One slot of a shard's open-addressing page table.
  struct TableSlot {
    PageId page_id = kInvalidPageId;  // kInvalidPageId = empty
    uint32_t frame = 0;
  };

  /// One independent slice of the pool. Everything in here is guarded by
  /// `mu` (never taken in single-shard mode); shard locks are never nested.
  /// Hot-path fields (table, frames, geometry) lead the layout so a Fix hit
  /// touches the first cache lines of the struct.
  struct Shard {
    /// Open-addressing page table: power-of-two capacity >= 2 * the shard's
    /// frame count (load factor <= 0.5), linear probing, backward-shift
    /// deletion.
    std::vector<TableSlot> table;
    std::vector<Frame> frames;  ///< shard-local indices
    size_t table_mask = 0;
    unsigned table_shift = 0;
    char* pool = nullptr;  ///< frame bytes of this shard (slice of pool_)
    /// &mu when the pool is concurrent, nullptr for the unlocked
    /// single-shard mode — set once at construction. Locking through this
    /// pointer lets the hot path (and PageGuard::Release, which has no
    /// manager pointer) skip the mode test entirely.
    std::mutex* lock_mu = nullptr;
    mutable std::mutex mu;
    std::vector<uint32_t> free_frames;
    uint32_t resident = 0;
    uint32_t order_head = kNullFrame;  ///< coldest (eviction candidate)
    uint32_t order_tail = kNullFrame;  ///< hottest
    uint32_t clock_hand = 0;
    /// LSN of the WAL record explaining each frame's dirty content
    /// (0 = none/clean, kPendingRecoveryLsn = mid-op, see the class
    /// comment). Parallel to `frames` but kept out of Frame — and out of
    /// the hot leading fields — because the LSN is only touched on
    /// write-back/flush/eviction/stamp paths, never on a Fix hit.
    std::vector<uint64_t> recovery_lsn;
    /// Owning manager — PageGuard::Unpin reaches the write-capture state
    /// through this (it has no manager pointer of its own). Cold: only the
    /// dirty-unpin path reads it.
    BufferManager* owner = nullptr;
    BufferStats stats;
    /// Reused write-back scratch (steady state allocates nothing).
    std::vector<uint32_t> scratch_frames;
    std::vector<PageId> scratch_ids;
    std::vector<const char*> scratch_srcs;
  };

  /// No-op lock in single-shard mode, shard mutex otherwise. The branch is
  /// on a constant-per-manager bool, so the unlocked hot path pays one
  /// predicted branch and nothing else.
  class ShardLock {
   public:
    explicit ShardLock(std::mutex* mu) : mu_(mu) {
      if (mu_ != nullptr) mu_->lock();
    }
    ~ShardLock() {
      if (mu_ != nullptr) mu_->unlock();
    }
    ShardLock(const ShardLock&) = delete;
    ShardLock& operator=(const ShardLock&) = delete;

   private:
    std::mutex* mu_;
  };

  ShardLock Lock(const Shard& shard) const { return ShardLock(shard.lock_mu); }

  static uint64_t Mix(PageId id) {
    return static_cast<uint64_t>(id) * 0x9E3779B97F4A7C15ull;
  }

  /// Shard owning a page with hash `h`: the top shard_bits_ of the
  /// Fibonacci hash (one multiply, shared with the home-slot computation).
  /// The shard_bits_ == 0 case takes an explicit (perfectly predicted)
  /// branch rather than a branchless shift: in single-shard mode the shard
  /// pointer must not data-depend on the hash, or the table lookup stalls
  /// behind the multiply — this is what keeps the unlocked Fix hit path at
  /// the flat pool's latency.
  Shard& ShardOfHash(uint64_t h) {
    if (shard_bits_ == 0) return single_;
    return shards_[h >> (64 - shard_bits_)];
  }
  const Shard& ShardOfHash(uint64_t h) const {
    if (shard_bits_ == 0) return single_;
    return shards_[h >> (64 - shard_bits_)];
  }

  /// Shard `s` for whole-pool walks (flush, drop, stats).
  Shard& ShardAt(uint32_t s) { return shard_bits_ == 0 ? single_ : shards_[s]; }
  const Shard& ShardAt(uint32_t s) const {
    return shard_bits_ == 0 ? single_ : shards_[s];
  }
  Shard& ShardOf(PageId id) { return ShardOfHash(Mix(id)); }
  const Shard& ShardOf(PageId id) const { return ShardOfHash(Mix(id)); }

  char* FrameData(const Shard& shard, uint32_t frame_idx) {
    return shard.pool + static_cast<size_t>(frame_idx) * page_size_;
  }

  /// Home slot of a page with hash `h` in its shard's table: the hash bits
  /// directly below the shard-selection bits (so one shard's keys spread
  /// over its whole table). With one shard this is exactly the flat table's
  /// old home slot.
  size_t HomeSlotOfHash(const Shard& shard, uint64_t h) const {
    return static_cast<size_t>((h << shard_bits_) >> shard.table_shift);
  }
  size_t HomeSlot(const Shard& shard, PageId id) const {
    return HomeSlotOfHash(shard, Mix(id));
  }

  /// Table slot holding `id` whose hash is `h`, or kNotFound. Shard lock
  /// held.
  size_t FindSlotH(const Shard& shard, PageId id, uint64_t h) const {
    size_t slot = HomeSlotOfHash(shard, h);
    while (shard.table[slot].page_id != kInvalidPageId) {
      if (shard.table[slot].page_id == id) return slot;
      slot = (slot + 1) & shard.table_mask;
    }
    return kNotFound;
  }
  size_t FindSlot(const Shard& shard, PageId id) const {
    return FindSlotH(shard, id, Mix(id));
  }

  void TableInsert(Shard& shard, PageId id, uint32_t frame_idx);
  void TableErase(Shard& shard, PageId id);

  // PageGuard::Release unpins directly through its shard pointer (no hash,
  // no page-table lookup, no manager detour). Safe because a pinned page
  // cannot be evicted, so the page->frame binding (and the shard) is stable
  // while the guard lives.
  friend class PageGuard;

  // PrefetchStream installs completed async batches through Load() under
  // the shard locks, exactly like Prefetch does inline.
  friend class PrefetchStream;

  /// Loads `id` into a frame of `shard` (evicting if needed) without
  /// counting a fix. `already_read` supplies page bytes read by a chained
  /// call (a zero-copy view into the volume's extents), nullptr to read
  /// from disk (single-page call, straight into the frame). Shard lock held.
  Result<uint32_t> Load(Shard& shard, PageId id, const char* already_read);

  /// Load variant for FixFresh: installs a zero-filled frame with no disk
  /// read (the page is fresh, its on-disk image is all zeros).
  Result<uint32_t> LoadFresh(Shard& shard, PageId id);

  /// Returns a free frame index, evicting a victim if the shard is full.
  Result<uint32_t> GrabFrame(Shard& shard);

  /// Chooses an eviction victim among the shard's unpinned frames, or an
  /// error when all of them are pinned.
  Result<uint32_t> PickVictim(Shard& shard);

  /// Cleans up to write_batch_size cold dirty unpinned pages of `shard`
  /// (always including `must_include`) with one chained write call.
  Status WriteBackBatch(Shard& shard, uint32_t must_include);

  /// Writes the dirty frames listed in `shard.scratch_frames` (chained,
  /// batched, page-id order) and marks them clean. Shared by
  /// FlushAll/WriteBackBatch.
  Status WriteFrameBatchSorted(Shard& shard, size_t batch_limit);

  /// Policy bookkeeping on access / load.
  void TouchFrame(Shard& shard, uint32_t frame_idx);
  void EnqueueFrame(Shard& shard, uint32_t frame_idx);
  void RemoveFromOrder(Shard& shard, uint32_t frame_idx);

  /// Marks a just-dirtied frame pending and records its page id (once per
  /// op) in the calling thread's capture. Shard lock held. Kept out of line
  /// so the cold capture tail does not bloat the inlined Fix/Unpin paths.
  [[gnu::noinline]] [[gnu::cold]] void CaptureDirtyLocked(Shard& shard,
                                                          uint32_t frame_idx,
                                                          PageId id);

  /// Copies the page's pre-op image into the calling thread's capture if
  /// the page is below the pre-image limit, not yet imaged this op, and the
  /// query approves. Shard lock held; called at Fix before the caller can
  /// mutate the frame. Out of line for the same reason as above.
  [[gnu::noinline]] [[gnu::cold]] void MaybeCapturePreimageLocked(
      Shard& shard, uint32_t frame_idx, PageId id);

  /// One op's write-capture state; lives in a thread-local slot so each
  /// writer thread captures exactly its own op.
  struct CaptureState {
    PageId preimage_limit = 0;
    WriteCapture out;
  };

  /// Read-capture sink of the current thread (null = off, the common
  /// case). A plain thread-local pointer: the Fix hot path pays one TLS
  /// load and a predicted-not-taken branch, mirroring the write capture.
  /// Static (not per-manager) — a thread runs one assembly at a time, and
  /// the store brackets captures tightly.
  static thread_local std::vector<PageId>* read_capture_;

  /// This thread's active write capture (null = off). Same shape as the
  /// read capture: static, because a thread applies one op against one
  /// store at a time, and the store brackets the capture tightly.
  static thread_local CaptureState* write_capture_;
  /// Backing storage for write_capture_ (avoids a per-op allocation; the
  /// vectors inside keep their capacity across ops on the same thread).
  static thread_local CaptureState write_capture_slot_;

  Volume* disk_;
  BufferOptions options_;
  uint32_t page_size_;
  uint32_t shard_count_ = 1;
  unsigned shard_bits_ = 0;
  bool concurrent_ = false;  ///< shard mutexes engaged
  /// Frame arena allocation (frame_count * page_size bytes, plus alignment
  /// slack) and the possibly-realigned base the frames actually start at.
  std::unique_ptr<char[]> pool_owner_;
  char* pool_ = nullptr;
  /// Single-shard mode uses the inline `single_` (its fields are
  /// this-relative, keeping the unlocked Fix hit path at the flat pool's
  /// latency); sharded mode uses the heap array. Exactly one is live.
  Shard single_;
  std::unique_ptr<Shard[]> shards_;
  /// Pre-image filter for write captures (see SetPreimageQuery). Shared by
  /// all writer threads; WalManager::NeedsPreimage is internally locked.
  std::function<bool(PageId)> preimage_query_;
  WalOrderingHook* wal_hook_ = nullptr;
};

/// Completion-driven prefetch: a per-thread pipeline keeping up to `depth`
/// chained read batches in flight on an async-capable volume.
///
/// Push() submits one batch (an object's missing pages) through
/// Volume::SubmitReadChained and returns without waiting for the device;
/// when all `depth` pipeline slots are occupied, the oldest batch is
/// completed — its pages installed into the pool — before the new one is
/// submitted. The device therefore works on up to `depth` chained reads
/// from this thread while the thread assembles previously fetched objects:
/// the paper's chained-I/O fetch shapes, overlapped instead of serialized.
///
/// Volumes without an async path (supports_async_read() == false: mem,
/// mmap, the decorators) degrade to one blocking BufferManager::Prefetch
/// per Push — same I/O-call accounting, no pipeline. Accounting on the
/// async path is identical too: SubmitReadChained meters one read call and
/// N page reads at submit, exactly what the ReadChained of a blocking
/// prefetch would have charged.
///
/// Threading: a PrefetchStream is strictly per-thread (io_uring completion
/// tickets are thread-local — submit and complete must happen on the same
/// thread), but many threads may each run their own stream over one shared
/// sharded BufferManager. Destruction drains in-flight batches.
class PrefetchStream {
 public:
  /// Binds to `buffer` with `depth` pipeline slots (minimum 1). Each slot's
  /// staging buffer is registered with the volume as fixed-I/O memory, so a
  /// direct backend with registered-buffer support DMAs into it without a
  /// per-I/O pin.
  explicit PrefetchStream(BufferManager* buffer, uint32_t depth = 4);
  ~PrefetchStream();
  PrefetchStream(const PrefetchStream&) = delete;
  PrefetchStream& operator=(const PrefetchStream&) = delete;

  /// Ensures every listed page will be resident once its batch completes:
  /// filters out pages already cached or already in flight on this stream,
  /// submits the rest as one chained read, and pipelines the completion.
  /// Completed batches install their pages lazily — at the latest by the
  /// Drain() or Push() that recycles their slot — so call Drain() before
  /// fixing pages that must not be re-read from the device.
  Status Push(const std::vector<PageId>& ids);

  /// Completes every in-flight batch and installs its pages. All slots are
  /// reaped regardless of errors; the first error wins.
  Status Drain();

  /// True when the volume accepted the async contract (the stream actually
  /// pipelines; false = blocking-Prefetch degradation).
  bool async_active() const { return async_; }

  /// Pipeline slots.
  uint32_t depth() const { return static_cast<uint32_t>(slots_.size()); }

  /// Batches submitted asynchronously so far (in flight + completed).
  uint64_t async_batches() const { return async_batches_; }

 private:
  struct Slot {
    AlignedBuffer staging;
    /// Staging base currently registered with the volume (null = none);
    /// re-registered when Reserve() moves the allocation.
    char* registered_base = nullptr;
    std::vector<PageId> ids;
    std::vector<char*> ptrs;
    uint64_t ticket = 0;
    bool in_flight = false;
  };

  /// Reaps `slot`: CompleteRead, then install the pages into the pool.
  /// Clears in_flight even on error.
  Status Complete(Slot& slot);

  BufferManager* buffer_;
  Volume* disk_;
  bool async_;
  uint64_t async_batches_ = 0;
  std::vector<Slot> slots_;
  size_t next_ = 0;  ///< ring cursor: next slot to submit into
  std::vector<PageId> scratch_missing_;  ///< reused Push working set
};

// The guard teardown trio is defined inline (PageGuard is a friend, so the
// shard internals are visible here): a guard drop is half of every
// fix/unfix pair, and keeping these bodies header-visible lets them inline
// into callers the same way the Fix hit path does. The cold write-capture
// tail stays out of line in CaptureDirtyLocked.

inline void PageGuard::Unpin() {
  // Pins and the dirty bit move only under the owning shard's lock (a
  // no-op pointer in single-shard mode). Unfix of a held guard cannot
  // fail — the page is pinned by this very guard.
  AssertOwningThread();
  auto* shard = static_cast<BufferManager::Shard*>(shard_);
  BufferManager::ShardLock lock(shard->lock_mu);
  BufferManager::Frame& frame = shard->frames[frame_idx_];
  --frame.pins;
  if (dirty_) {
    frame.dirty = true;
    if (__builtin_expect(BufferManager::write_capture_ != nullptr, false)) {
      shard->owner->CaptureDirtyLocked(*shard, frame_idx_, id_);
    }
  }
}

inline void PageGuard::Release() {
  if (shard_ != nullptr) {
    Unpin();
    shard_ = nullptr;
    id_ = kInvalidPageId;
    data_ = nullptr;
    dirty_ = false;
  }
}

inline PageGuard::~PageGuard() {
  if (shard_ != nullptr) {
    Unpin();
  }
}

}  // namespace starfish
