#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "disk/page.h"
#include "disk/volume.h"
#include "util/status.h"

/// \file buffer_manager.h
/// The main-memory page buffer between the storage layer and the disk.
///
/// Reproduces the buffer behaviour the paper's measurements depend on:
///   * a fixed pool of frames (DASDBS ran with 1200 frames — the default);
///   * fix/unfix with pin counts; every fix is counted (Table 6 reports
///     "page fixes in buffer" as a CPU-load indicator);
///   * write-back caching: dirty pages go to disk only when the buffer
///     overflows or at FlushAll ("database disconnect"), and write-back is
///     batched so a single write call carries many pages (Table 5 observed
///     20-30 pages per write call for the direct models);
///   * prefetching an object's pages in one chained read call (DASDBS issued
///     separate calls for the root page, remaining header pages and data
///     pages of a complex record).
///
/// Replacement is LRU by default; CLOCK and FIFO are provided for the
/// buffer-policy ablation bench.
///
/// Implementation notes (the zero-copy hot path): all frame data lives in
/// one contiguous pool allocation (frame i at `pool + i * page_size`); the
/// LRU/FIFO eviction order is an intrusive doubly-linked list threaded
/// through prev/next frame indices (no per-touch heap traffic); the
/// page->frame map is a flat open-addressing table with linear probing.
/// Prefetch copies pages from the volume's extents straight into frames via
/// the Volume zero-copy read views, and write-back hands frame pointers
/// straight to WriteChained — steady state does no heap allocation and one
/// memcpy per page moved. The manager programs against the abstract Volume
/// interface, so any backend (in-memory, mmap, timed) plugs in underneath.

namespace starfish {

/// Frame replacement policies.
enum class ReplacementPolicy {
  kLru,    ///< evict the least recently fixed unpinned page (default)
  kClock,  ///< second-chance clock
  kFifo,   ///< evict the oldest-loaded unpinned page
};

/// Buffer pool configuration.
struct BufferOptions {
  /// Number of page frames. DASDBS measurement setup: 1200.
  uint32_t frame_count = 1200;

  /// Replacement policy.
  ReplacementPolicy policy = ReplacementPolicy::kLru;

  /// When an eviction victim is dirty, up to this many cold dirty pages are
  /// cleaned together in one chained write call (DASDBS-style batched
  /// write-back). 1 disables batching.
  uint32_t write_batch_size = 32;
};

/// Buffer-side counters (disk-side counters live in Volume::stats()).
struct BufferStats {
  uint64_t fixes = 0;            ///< Fix calls (the paper's "page fixes")
  uint64_t hits = 0;             ///< fixes satisfied without disk access
  uint64_t misses = 0;           ///< fixes that had to read the page
  uint64_t prefetched_pages = 0; ///< pages loaded via Prefetch
  uint64_t evictions = 0;        ///< frames reclaimed
  uint64_t write_backs = 0;      ///< dirty pages cleaned (overflow + flush)

  BufferStats Since(const BufferStats& earlier) const {
    BufferStats d;
    d.fixes = fixes - earlier.fixes;
    d.hits = hits - earlier.hits;
    d.misses = misses - earlier.misses;
    d.prefetched_pages = prefetched_pages - earlier.prefetched_pages;
    d.evictions = evictions - earlier.evictions;
    d.write_backs = write_backs - earlier.write_backs;
    return d;
  }

  std::string ToString() const;
};

/// How Prefetch groups the pages it must read into I/O calls.
enum class PrefetchMode {
  /// All missing pages in one chained call (an object fetched as a unit).
  kChained,
  /// Missing pages grouped into maximal runs of consecutive page ids, one
  /// call per run (a sequential scan through a segment).
  kContiguousRuns,
};

class BufferManager;

/// RAII pin on a buffered page. Move-only; unfixes on destruction.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(BufferManager* bm, PageId id, char* data, uint32_t frame_idx)
      : bm_(bm), id_(id), data_(data), frame_idx_(frame_idx) {}
  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  PageGuard(PageGuard&& other) noexcept { *this = std::move(other); }
  PageGuard& operator=(PageGuard&& other) noexcept;
  // Dying guards skip Release()'s member resets (nobody can observe them).
  ~PageGuard();

  /// True when this guard holds a pinned page.
  bool valid() const { return bm_ != nullptr; }

  PageId page_id() const { return id_; }

  /// Frame contents; full physical page (header included).
  char* data() { return data_; }
  const char* data() const { return data_; }

  /// Marks the page modified; it will be written back on overflow or flush.
  void MarkDirty() { dirty_ = true; }

  /// Unfixes immediately (idempotent).
  void Release();

 private:
  BufferManager* bm_ = nullptr;
  PageId id_ = kInvalidPageId;
  char* data_ = nullptr;
  uint32_t frame_idx_ = 0;
  bool dirty_ = false;
};

/// The buffer pool. Not thread-safe (single-user evaluation, like the paper).
class BufferManager {
 public:
  BufferManager(Volume* disk, BufferOptions options = {});
  ~BufferManager();

  /// Pins `id` in the pool, reading it from disk if absent (one single-page
  /// read call on miss). Multiple concurrent pins on one page are allowed.
  Result<PageGuard> Fix(PageId id);

  /// Fix variant for pages known to be freshly allocated and still
  /// all-zero on disk: on miss the frame is zero-filled in place instead of
  /// issuing a metered read call for bytes the caller is about to format.
  /// Counted as a normal fix/miss; only the pointless disk read disappears.
  /// Using it on a page with real on-disk contents would hand out a zeroed
  /// frame and clobber the page at write-back — callers must only pass page
  /// ids straight out of Volume::AllocateRun.
  Result<PageGuard> FixFresh(PageId id);

  /// Unpins a page; `dirty` marks it modified. Called by PageGuard.
  Status Unfix(PageId id, bool dirty);

  /// Ensures every listed page is resident, reading the missing ones
  /// according to `mode`. Does not pin. Duplicate ids are allowed.
  Status Prefetch(const std::vector<PageId>& ids, PrefetchMode mode);

  /// Writes all dirty pages (batched into chained calls of at most
  /// write_batch_size pages) and marks them clean. Frames stay resident.
  /// Models the paper's write-back at "database disconnect".
  Status FlushAll();

  /// Drops every unpinned frame after flushing dirty ones. Returns an error
  /// if any page is still pinned. Used between benchmark phases to start
  /// queries from a cold buffer.
  Status DropAll();

  /// True if `id` currently occupies a frame.
  bool IsCached(PageId id) const { return FindSlot(id) != kNotFound; }

  /// Number of resident pages.
  uint32_t resident_count() const { return resident_count_; }

  uint32_t frame_count() const { return options_.frame_count; }

  const BufferStats& stats() const { return stats_; }
  void ResetStats() { stats_ = BufferStats{}; }

  Volume* disk() { return disk_; }

 private:
  static constexpr uint32_t kNullFrame = 0xFFFFFFFFu;
  static constexpr size_t kNotFound = ~static_cast<size_t>(0);

  /// Frame metadata only — the page bytes live in the contiguous pool_ at
  /// `pool_ + index * page_size`. prev/next thread the LRU/FIFO eviction
  /// order through the frame array itself (front = coldest).
  struct Frame {
    PageId page_id = kInvalidPageId;
    uint32_t pins = 0;
    uint32_t prev = kNullFrame;
    uint32_t next = kNullFrame;
    bool dirty = false;
    bool referenced = false;  // CLOCK second-chance bit
    bool in_order = false;
  };

  /// One slot of the open-addressing page table.
  struct TableSlot {
    PageId page_id = kInvalidPageId;  // kInvalidPageId = empty
    uint32_t frame = 0;
  };

  char* FrameData(uint32_t frame_idx) {
    return pool_.get() + static_cast<size_t>(frame_idx) * page_size_;
  }
  const char* FrameData(uint32_t frame_idx) const {
    return pool_.get() + static_cast<size_t>(frame_idx) * page_size_;
  }

  /// Fibonacci-hash home slot for a page id.
  size_t HomeSlot(PageId id) const {
    return static_cast<size_t>(
        (static_cast<uint64_t>(id) * 0x9E3779B97F4A7C15ull) >> table_shift_);
  }

  /// Table slot holding `id`, or kNotFound.
  size_t FindSlot(PageId id) const {
    size_t slot = HomeSlot(id);
    while (table_[slot].page_id != kInvalidPageId) {
      if (table_[slot].page_id == id) return slot;
      slot = (slot + 1) & table_mask_;
    }
    return kNotFound;
  }

  void TableInsert(PageId id, uint32_t frame_idx);
  void TableErase(PageId id);

  /// Unpin via the frame index a PageGuard carries — skips the page-table
  /// lookup the public Unfix needs. Safe because a pinned page cannot be
  /// evicted, so the page->frame binding is stable while the guard lives.
  Status UnfixFrame(uint32_t frame_idx, bool dirty);
  friend class PageGuard;

  /// Loads `id` into a frame (evicting if needed) without counting a fix.
  /// `already_read` supplies page bytes read by a chained call (a zero-copy
  /// view into the volume's extents), nullptr to read from disk
  /// (single-page call, straight into the frame).
  Result<uint32_t> Load(PageId id, const char* already_read);

  /// Load variant for FixFresh: installs a zero-filled frame with no disk
  /// read (the page is fresh, its on-disk image is all zeros).
  Result<uint32_t> LoadFresh(PageId id);

  /// Returns a free frame index, evicting a victim if the pool is full.
  Result<uint32_t> GrabFrame();

  /// Chooses an eviction victim among unpinned frames, or an error when all
  /// frames are pinned.
  Result<uint32_t> PickVictim();

  /// Cleans up to write_batch_size cold dirty unpinned pages (always
  /// including `must_include`) with one chained write call.
  Status WriteBackBatch(uint32_t must_include);

  /// Writes the dirty frames listed in `scratch_frames_` (chained, batched,
  /// page-id order) and marks them clean. Shared by FlushAll/WriteBackBatch.
  Status WriteFrameBatchSorted(size_t batch_limit);

  /// Policy bookkeeping on access / load.
  void TouchFrame(uint32_t frame_idx);
  void EnqueueFrame(uint32_t frame_idx);
  void RemoveFromOrder(uint32_t frame_idx);

  Volume* disk_;
  BufferOptions options_;
  uint32_t page_size_;
  std::unique_ptr<char[]> pool_;  ///< frame_count * page_size bytes
  std::vector<Frame> frames_;
  std::vector<uint32_t> free_frames_;
  /// Open-addressing page table: power-of-two capacity >= 2 * frame_count
  /// (load factor <= 0.5), linear probing, backward-shift deletion.
  std::vector<TableSlot> table_;
  size_t table_mask_ = 0;
  unsigned table_shift_ = 0;
  uint32_t resident_count_ = 0;
  uint32_t order_head_ = kNullFrame;  ///< coldest (eviction candidate)
  uint32_t order_tail_ = kNullFrame;  ///< hottest
  uint32_t clock_hand_ = 0;
  BufferStats stats_;
  /// Reused per-call scratch (steady state allocates nothing).
  std::vector<PageId> scratch_missing_;
  std::vector<const char*> scratch_views_;
  std::vector<uint32_t> scratch_frames_;
  std::vector<PageId> scratch_ids_;
  std::vector<const char*> scratch_srcs_;
};

}  // namespace starfish
