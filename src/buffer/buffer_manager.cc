#include "buffer/buffer_manager.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <utility>

namespace starfish {

std::string BufferStats::ToString() const {
  char buf[200];
  std::snprintf(buf, sizeof(buf),
                "BufferStats{fixes=%llu, hits=%llu, misses=%llu, "
                "prefetched=%llu, evictions=%llu, write_backs=%llu}",
                static_cast<unsigned long long>(fixes),
                static_cast<unsigned long long>(hits),
                static_cast<unsigned long long>(misses),
                static_cast<unsigned long long>(prefetched_pages),
                static_cast<unsigned long long>(evictions),
                static_cast<unsigned long long>(write_backs));
  return buf;
}

PageGuard& PageGuard::operator=(PageGuard&& other) noexcept {
  if (this == &other) return *this;
  // Drop our own pin first so a guard that is assigned over never leaks it.
  Release();
  bm_ = std::exchange(other.bm_, nullptr);
  id_ = std::exchange(other.id_, kInvalidPageId);
  data_ = std::exchange(other.data_, nullptr);
  frame_idx_ = std::exchange(other.frame_idx_, 0);
  dirty_ = std::exchange(other.dirty_, false);
  return *this;
}

void PageGuard::Release() {
  if (bm_ != nullptr) {
    // Unfix of a held guard cannot fail: the page is pinned by us.
    (void)bm_->UnfixFrame(frame_idx_, dirty_);
    bm_ = nullptr;
    id_ = kInvalidPageId;
    data_ = nullptr;
    dirty_ = false;
  }
}

PageGuard::~PageGuard() {
  if (bm_ != nullptr) {
    (void)bm_->UnfixFrame(frame_idx_, dirty_);
  }
}

BufferManager::BufferManager(Volume* disk, BufferOptions options)
    : disk_(disk), options_(options), page_size_(disk->page_size()) {
  if (options_.frame_count == 0) options_.frame_count = 1;
  if (options_.write_batch_size == 0) options_.write_batch_size = 1;

  pool_ = std::make_unique<char[]>(static_cast<size_t>(options_.frame_count) *
                                   page_size_);
  frames_.resize(options_.frame_count);
  free_frames_.reserve(options_.frame_count);
  for (uint32_t i = options_.frame_count; i > 0; --i) {
    free_frames_.push_back(i - 1);
  }

  // Power-of-two table capacity >= 2 * frame_count keeps the linear-probing
  // load factor at or below one half even with every frame resident.
  size_t capacity = 8;
  unsigned bits = 3;
  while (capacity < 2 * static_cast<size_t>(options_.frame_count)) {
    capacity <<= 1;
    ++bits;
  }
  table_.resize(capacity);
  table_mask_ = capacity - 1;
  table_shift_ = 64 - bits;
}

BufferManager::~BufferManager() {
  // Best effort: persist dirty pages so a dropped manager does not silently
  // lose updates in examples/tests.
  (void)FlushAll();
}

void BufferManager::TableInsert(PageId id, uint32_t frame_idx) {
  size_t slot = HomeSlot(id);
  while (table_[slot].page_id != kInvalidPageId) {
    slot = (slot + 1) & table_mask_;
  }
  table_[slot].page_id = id;
  table_[slot].frame = frame_idx;
  ++resident_count_;
}

void BufferManager::TableErase(PageId id) {
  size_t hole = FindSlot(id);
  if (hole == kNotFound) return;
  // Backward-shift deletion: pull displaced entries over the hole so every
  // remaining key stays on its probe path (no tombstones to scan past).
  size_t probe = hole;
  for (;;) {
    probe = (probe + 1) & table_mask_;
    if (table_[probe].page_id == kInvalidPageId) break;
    const size_t home = HomeSlot(table_[probe].page_id);
    const bool home_between_hole_and_probe =
        ((probe - home) & table_mask_) < ((probe - hole) & table_mask_);
    if (!home_between_hole_and_probe) {
      table_[hole] = table_[probe];
      hole = probe;
    }
  }
  table_[hole].page_id = kInvalidPageId;
  --resident_count_;
}

Result<PageGuard> BufferManager::Fix(PageId id) {
  ++stats_.fixes;
  const size_t slot = FindSlot(id);
  uint32_t frame_idx;
  if (slot != kNotFound) {
    ++stats_.hits;
    frame_idx = table_[slot].frame;
  } else {
    ++stats_.misses;
    STARFISH_ASSIGN_OR_RETURN(frame_idx, Load(id, nullptr));
  }
  Frame& frame = frames_[frame_idx];
  ++frame.pins;
  TouchFrame(frame_idx);
  return PageGuard(this, id, FrameData(frame_idx), frame_idx);
}

Result<PageGuard> BufferManager::FixFresh(PageId id) {
  ++stats_.fixes;
  const size_t slot = FindSlot(id);
  uint32_t frame_idx;
  if (slot != kNotFound) {
    ++stats_.hits;
    frame_idx = table_[slot].frame;
  } else {
    ++stats_.misses;
    if (id == kInvalidPageId || id >= disk_->page_count()) {
      return Status::OutOfRange("FixFresh of unallocated page " +
                                std::to_string(id));
    }
    STARFISH_ASSIGN_OR_RETURN(frame_idx, LoadFresh(id));
  }
  Frame& frame = frames_[frame_idx];
  ++frame.pins;
  TouchFrame(frame_idx);
  return PageGuard(this, id, FrameData(frame_idx), frame_idx);
}

Status BufferManager::UnfixFrame(uint32_t frame_idx, bool dirty) {
  // frame_idx always comes from a live guard, so it is in range; a pinned
  // page cannot be evicted, so pins > 0 holds whenever the guard is valid.
  Frame& frame = frames_[frame_idx];
  if (frame.pins == 0) {
    return Status::InvalidArgument("unfix of unpinned frame " +
                                   std::to_string(frame_idx));
  }
  --frame.pins;
  frame.dirty = frame.dirty || dirty;
  return Status::OK();
}

Status BufferManager::Unfix(PageId id, bool dirty) {
  const size_t slot = FindSlot(id);
  if (slot == kNotFound) {
    return Status::InvalidArgument("unfix of non-resident page " +
                                   std::to_string(id));
  }
  Frame& frame = frames_[table_[slot].frame];
  if (frame.pins == 0) {
    return Status::InvalidArgument("unfix of unpinned page " +
                                   std::to_string(id));
  }
  --frame.pins;
  frame.dirty = frame.dirty || dirty;
  return Status::OK();
}

Status BufferManager::Prefetch(const std::vector<PageId>& ids,
                               PrefetchMode mode) {
  // Collect distinct missing pages, preserving order.
  std::vector<PageId>& missing = scratch_missing_;
  missing.clear();
  for (PageId id : ids) {
    if (!IsCached(id) &&
        std::find(missing.begin(), missing.end(), id) == missing.end()) {
      missing.push_back(id);
    }
  }
  if (missing.empty()) return Status::OK();

  if (mode == PrefetchMode::kChained) {
    // Zero-copy views into the disk arena: pages go arena -> frame in one
    // memcpy each, with no staging buffer.
    STARFISH_RETURN_NOT_OK(disk_->ReadChainedZeroCopy(missing, &scratch_views_));
    for (size_t i = 0; i < missing.size(); ++i) {
      // Evictions triggered by earlier Load()s only write back resident
      // pages, which are disjoint from `missing` by construction — the
      // IsCached re-check is purely defensive.
      if (!IsCached(missing[i])) {
        STARFISH_RETURN_NOT_OK(Load(missing[i], scratch_views_[i]).status());
      }
      ++stats_.prefetched_pages;
    }
    return Status::OK();
  }

  // kContiguousRuns: group maximal runs of consecutive page ids.
  std::sort(missing.begin(), missing.end());
  size_t start = 0;
  while (start < missing.size()) {
    size_t end = start + 1;
    while (end < missing.size() && missing[end] == missing[end - 1] + 1) {
      ++end;
    }
    const uint32_t count = static_cast<uint32_t>(end - start);
    STARFISH_RETURN_NOT_OK(
        disk_->ReadRunZeroCopy(missing[start], count, &scratch_views_));
    for (uint32_t i = 0; i < count; ++i) {
      if (!IsCached(missing[start + i])) {
        STARFISH_RETURN_NOT_OK(
            Load(missing[start + i], scratch_views_[i]).status());
      }
      ++stats_.prefetched_pages;
    }
    start = end;
  }
  return Status::OK();
}

Status BufferManager::WriteFrameBatchSorted(size_t batch_limit) {
  std::sort(scratch_frames_.begin(), scratch_frames_.end(),
            [this](uint32_t a, uint32_t b) {
              return frames_[a].page_id < frames_[b].page_id;
            });
  size_t pos = 0;
  while (pos < scratch_frames_.size()) {
    const size_t batch_end = std::min(scratch_frames_.size(), pos + batch_limit);
    scratch_ids_.clear();
    scratch_srcs_.clear();
    for (size_t i = pos; i < batch_end; ++i) {
      const uint32_t idx = scratch_frames_[i];
      scratch_ids_.push_back(frames_[idx].page_id);
      scratch_srcs_.push_back(FrameData(idx));
    }
    STARFISH_RETURN_NOT_OK(disk_->WriteChained(scratch_ids_, scratch_srcs_));
    for (size_t i = pos; i < batch_end; ++i) {
      frames_[scratch_frames_[i]].dirty = false;
      ++stats_.write_backs;
    }
    pos = batch_end;
  }
  return Status::OK();
}

Status BufferManager::FlushAll() {
  scratch_frames_.clear();
  for (uint32_t i = 0; i < frames_.size(); ++i) {
    if (frames_[i].page_id != kInvalidPageId && frames_[i].dirty) {
      scratch_frames_.push_back(i);
    }
  }
  // Write in page-id order, chained in batches: disconnect-time write-back.
  return WriteFrameBatchSorted(options_.write_batch_size);
}

Status BufferManager::DropAll() {
  for (const Frame& frame : frames_) {
    if (frame.page_id != kInvalidPageId && frame.pins > 0) {
      return Status::InvalidArgument("DropAll with pinned page " +
                                     std::to_string(frame.page_id));
    }
  }
  STARFISH_RETURN_NOT_OK(FlushAll());
  for (uint32_t i = 0; i < frames_.size(); ++i) {
    Frame& frame = frames_[i];
    if (frame.page_id != kInvalidPageId) {
      RemoveFromOrder(i);
      frame.page_id = kInvalidPageId;
      frame.referenced = false;
      free_frames_.push_back(i);
    }
  }
  std::fill(table_.begin(), table_.end(), TableSlot{});
  resident_count_ = 0;
  return Status::OK();
}

Result<uint32_t> BufferManager::Load(PageId id, const char* already_read) {
  STARFISH_ASSIGN_OR_RETURN(uint32_t frame_idx, GrabFrame());
  Frame& frame = frames_[frame_idx];
  if (already_read != nullptr) {
    std::memcpy(FrameData(frame_idx), already_read, page_size_);
  } else {
    STARFISH_RETURN_NOT_OK(disk_->ReadRun(id, 1, FrameData(frame_idx)));
  }
  frame.page_id = id;
  frame.pins = 0;
  frame.dirty = false;
  frame.referenced = true;
  TableInsert(id, frame_idx);
  EnqueueFrame(frame_idx);
  return frame_idx;
}

Result<uint32_t> BufferManager::LoadFresh(PageId id) {
  STARFISH_ASSIGN_OR_RETURN(uint32_t frame_idx, GrabFrame());
  Frame& frame = frames_[frame_idx];
  std::memset(FrameData(frame_idx), 0, page_size_);
  frame.page_id = id;
  frame.pins = 0;
  frame.dirty = false;
  frame.referenced = true;
  TableInsert(id, frame_idx);
  EnqueueFrame(frame_idx);
  return frame_idx;
}

Result<uint32_t> BufferManager::GrabFrame() {
  if (!free_frames_.empty()) {
    const uint32_t idx = free_frames_.back();
    free_frames_.pop_back();
    return idx;
  }
  STARFISH_ASSIGN_OR_RETURN(uint32_t victim, PickVictim());
  Frame& frame = frames_[victim];
  if (frame.dirty) {
    // Buffer overflow: clean a batch of cold dirty pages in one chained
    // write (the DASDBS write-at-overflow behaviour).
    STARFISH_RETURN_NOT_OK(WriteBackBatch(victim));
  }
  RemoveFromOrder(victim);
  TableErase(frame.page_id);
  frame.page_id = kInvalidPageId;
  frame.referenced = false;
  ++stats_.evictions;
  return victim;
}

Result<uint32_t> BufferManager::PickVictim() {
  switch (options_.policy) {
    case ReplacementPolicy::kLru:
    case ReplacementPolicy::kFifo: {
      for (uint32_t idx = order_head_; idx != kNullFrame;
           idx = frames_[idx].next) {
        if (frames_[idx].pins == 0) return idx;
      }
      return Status::ResourceExhausted("all buffer frames pinned");
    }
    case ReplacementPolicy::kClock: {
      const uint32_t n = static_cast<uint32_t>(frames_.size());
      for (uint32_t sweep = 0; sweep < 2 * n; ++sweep) {
        const uint32_t idx = clock_hand_;
        clock_hand_ = (clock_hand_ + 1) % n;
        Frame& frame = frames_[idx];
        if (frame.page_id == kInvalidPageId || frame.pins > 0) continue;
        if (frame.referenced) {
          frame.referenced = false;
          continue;
        }
        return idx;
      }
      return Status::ResourceExhausted("all buffer frames pinned");
    }
  }
  return Status::Internal("unknown replacement policy");
}

Status BufferManager::WriteBackBatch(uint32_t must_include) {
  scratch_frames_.clear();
  scratch_frames_.push_back(must_include);
  // Walk the eviction order from cold to hot collecting dirty unpinned
  // frames. For CLOCK there is no order list; fall back to frame order.
  if (options_.policy == ReplacementPolicy::kClock) {
    for (uint32_t i = 0; i < frames_.size() &&
                         scratch_frames_.size() < options_.write_batch_size;
         ++i) {
      const Frame& frame = frames_[i];
      if (i != must_include && frame.page_id != kInvalidPageId && frame.dirty &&
          frame.pins == 0) {
        scratch_frames_.push_back(i);
      }
    }
  } else {
    for (uint32_t idx = order_head_; idx != kNullFrame;
         idx = frames_[idx].next) {
      if (scratch_frames_.size() >= options_.write_batch_size) break;
      const Frame& frame = frames_[idx];
      if (idx != must_include && frame.dirty && frame.pins == 0) {
        scratch_frames_.push_back(idx);
      }
    }
  }
  return WriteFrameBatchSorted(scratch_frames_.size());
}

void BufferManager::TouchFrame(uint32_t frame_idx) {
  Frame& frame = frames_[frame_idx];
  frame.referenced = true;
  if (options_.policy == ReplacementPolicy::kLru && frame.in_order &&
      order_tail_ != frame_idx) {
    RemoveFromOrder(frame_idx);
    EnqueueFrame(frame_idx);
  }
  // FIFO: position fixed at load time. CLOCK: referenced bit is enough.
}

void BufferManager::EnqueueFrame(uint32_t frame_idx) {
  Frame& frame = frames_[frame_idx];
  frame.prev = order_tail_;
  frame.next = kNullFrame;
  if (order_tail_ != kNullFrame) {
    frames_[order_tail_].next = frame_idx;
  } else {
    order_head_ = frame_idx;
  }
  order_tail_ = frame_idx;
  frame.in_order = true;
}

void BufferManager::RemoveFromOrder(uint32_t frame_idx) {
  Frame& frame = frames_[frame_idx];
  if (!frame.in_order) return;
  if (frame.prev != kNullFrame) {
    frames_[frame.prev].next = frame.next;
  } else {
    order_head_ = frame.next;
  }
  if (frame.next != kNullFrame) {
    frames_[frame.next].prev = frame.prev;
  } else {
    order_tail_ = frame.prev;
  }
  frame.prev = kNullFrame;
  frame.next = kNullFrame;
  frame.in_order = false;
}

}  // namespace starfish
