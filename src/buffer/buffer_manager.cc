#include "buffer/buffer_manager.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <utility>

#include "util/aligned_buffer.h"

namespace starfish {

namespace {

/// Prefetch staging (non-zero-copy backends) is aligned generously so a
/// direct backend can DMA into it without bouncing a second time.
constexpr size_t kStagingAlign = 4096;

}  // namespace

std::string BufferStats::ToString() const {
  char buf[200];
  std::snprintf(buf, sizeof(buf),
                "BufferStats{fixes=%llu, hits=%llu, misses=%llu, "
                "prefetched=%llu, evictions=%llu, write_backs=%llu}",
                static_cast<unsigned long long>(fixes),
                static_cast<unsigned long long>(hits),
                static_cast<unsigned long long>(misses),
                static_cast<unsigned long long>(prefetched_pages),
                static_cast<unsigned long long>(evictions),
                static_cast<unsigned long long>(write_backs));
  return buf;
}

PageGuard& PageGuard::operator=(PageGuard&& other) noexcept {
  if (this == &other) return *this;
  // Drop our own pin first so a guard that is assigned over never leaks it.
  Release();
  shard_ = std::exchange(other.shard_, nullptr);
  id_ = std::exchange(other.id_, kInvalidPageId);
  data_ = std::exchange(other.data_, nullptr);
  frame_idx_ = std::exchange(other.frame_idx_, 0);
  dirty_ = std::exchange(other.dirty_, false);
#ifndef NDEBUG
  owner_ = other.owner_;
#endif
  return *this;
}

namespace {

/// Smallest power of two >= 2 * n, as (capacity, bits).
void TableGeometry(uint32_t n, size_t* capacity, unsigned* bits) {
  *capacity = 8;
  *bits = 3;
  while (*capacity < 2 * static_cast<size_t>(n)) {
    *capacity <<= 1;
    ++*bits;
  }
}

uint32_t RoundUpPow2(uint32_t v) {
  uint32_t p = 1;
  while (p < v && p < (1u << 30)) p <<= 1;
  return p;
}

}  // namespace

BufferManager::BufferManager(Volume* disk, BufferOptions options)
    : disk_(disk), options_(options), page_size_(disk->page_size()) {
  if (options_.frame_count == 0) options_.frame_count = 1;
  if (options_.write_batch_size == 0) options_.write_batch_size = 1;

  // shard_count == 1 is the paper-exact unlocked pool; anything else engages
  // the shard mutexes. 0 = pick from the hardware.
  concurrent_ = options_.shard_count != 1;
  uint32_t shards = options_.shard_count;
  if (shards == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    shards = RoundUpPow2(hw == 0 ? 4u : 4u * hw);
  }
  shards = RoundUpPow2(shards);
  while (shards > 1 && shards > options_.frame_count) shards /= 2;
  shard_count_ = shards;
  options_.shard_count = concurrent_ ? shards : 1;
  shard_bits_ = 0;
  while ((1u << shard_bits_) < shard_count_) ++shard_bits_;

  // The frame arena, optionally over-allocated so its base can be aligned
  // for direct-I/O backends (see BufferOptions::frame_alignment).
  const size_t pool_bytes =
      static_cast<size_t>(options_.frame_count) * page_size_;
  uint32_t align = options_.frame_alignment;
  if (align > 1) align = RoundUpPow2(align);
  options_.frame_alignment = align;
  pool_owner_ = std::make_unique<char[]>(pool_bytes + (align > 1 ? align : 0));
  pool_ = pool_owner_.get();
  if (align > 1) {
    const uintptr_t base_addr = reinterpret_cast<uintptr_t>(pool_);
    pool_ += (align - base_addr % align) % align;
  }
  // Hand the frame arena to the volume as candidate fixed-I/O memory: a
  // direct backend with registered-buffer support then DMAs Fix-miss reads
  // straight into frames without a per-I/O pin. No-op on other backends.
  disk_->RegisterIoMemory(pool_, pool_bytes);
  if (shard_count_ > 1) shards_ = std::make_unique<Shard[]>(shard_count_);
  const uint32_t base = options_.frame_count / shard_count_;
  const uint32_t extra = options_.frame_count % shard_count_;
  uint32_t next_frame = 0;
  for (uint32_t s = 0; s < shard_count_; ++s) {
    Shard& shard = ShardAt(s);
    const uint32_t n = base + (s < extra ? 1 : 0);
    shard.owner = this;
    shard.pool = pool_ + static_cast<size_t>(next_frame) * page_size_;
    shard.lock_mu = concurrent_ ? &shard.mu : nullptr;
    next_frame += n;
    shard.frames.resize(n);
    shard.recovery_lsn.assign(n, 0);
    shard.free_frames.reserve(n);
    for (uint32_t i = n; i > 0; --i) {
      shard.free_frames.push_back(i - 1);
    }
    size_t capacity = 0;
    unsigned bits = 0;
    TableGeometry(n, &capacity, &bits);
    shard.table.resize(capacity);
    shard.table_mask = capacity - 1;
    shard.table_shift = 64 - bits;
  }
}

BufferManager::~BufferManager() {
  // Best effort: persist dirty pages so a dropped manager does not silently
  // lose updates in examples/tests.
  (void)FlushAll();
  disk_->UnregisterIoMemory(pool_);
}

void BufferManager::TableInsert(Shard& shard, PageId id, uint32_t frame_idx) {
  size_t slot = HomeSlot(shard, id);
  while (shard.table[slot].page_id != kInvalidPageId) {
    slot = (slot + 1) & shard.table_mask;
  }
  shard.table[slot].page_id = id;
  shard.table[slot].frame = frame_idx;
  ++shard.resident;
}

void BufferManager::TableErase(Shard& shard, PageId id) {
  size_t hole = FindSlot(shard, id);
  if (hole == kNotFound) return;
  // Backward-shift deletion: pull displaced entries over the hole so every
  // remaining key stays on its probe path (no tombstones to scan past).
  size_t probe = hole;
  for (;;) {
    probe = (probe + 1) & shard.table_mask;
    if (shard.table[probe].page_id == kInvalidPageId) break;
    const size_t home = HomeSlot(shard, shard.table[probe].page_id);
    const bool home_between_hole_and_probe =
        ((probe - home) & shard.table_mask) < ((probe - hole) & shard.table_mask);
    if (!home_between_hole_and_probe) {
      shard.table[hole] = shard.table[probe];
      hole = probe;
    }
  }
  shard.table[hole].page_id = kInvalidPageId;
  --shard.resident;
}

thread_local std::vector<PageId>* BufferManager::read_capture_ = nullptr;
thread_local BufferManager::CaptureState* BufferManager::write_capture_ =
    nullptr;
thread_local BufferManager::CaptureState BufferManager::write_capture_slot_;

Result<PageGuard> BufferManager::Fix(PageId id) {
  if (__builtin_expect(read_capture_ != nullptr, false)) {
    read_capture_->push_back(id);
  }
  const uint64_t h = Mix(id);
  Shard& shard = ShardOfHash(h);
  ShardLock lock = Lock(shard);
  ++shard.stats.fixes;
  const size_t slot = FindSlotH(shard, id, h);
  uint32_t frame_idx;
  if (slot != kNotFound) {
    ++shard.stats.hits;
    frame_idx = shard.table[slot].frame;
  } else {
    ++shard.stats.misses;
    STARFISH_ASSIGN_OR_RETURN(frame_idx, Load(shard, id, nullptr));
  }
  // Pre-image capture must see the page before the caller can touch it:
  // the thread-local slot is null outside an op, so the hot path pays one
  // TLS load and a predicted branch.
  if (__builtin_expect(write_capture_ != nullptr, false)) {
    MaybeCapturePreimageLocked(shard, frame_idx, id);
  }
  Frame& frame = shard.frames[frame_idx];
  ++frame.pins;
  TouchFrame(shard, frame_idx);
  return PageGuard(&shard, id, FrameData(shard, frame_idx), frame_idx);
}

Result<PageGuard> BufferManager::FixFresh(PageId id) {
  if (__builtin_expect(read_capture_ != nullptr, false)) {
    read_capture_->push_back(id);
  }
  const uint64_t h = Mix(id);
  Shard& shard = ShardOfHash(h);
  ShardLock lock = Lock(shard);
  ++shard.stats.fixes;
  const size_t slot = FindSlotH(shard, id, h);
  uint32_t frame_idx;
  if (slot != kNotFound) {
    ++shard.stats.hits;
    frame_idx = shard.table[slot].frame;
  } else {
    ++shard.stats.misses;
    if (id == kInvalidPageId || id >= disk_->page_count()) {
      return Status::OutOfRange("FixFresh of unallocated page " +
                                std::to_string(id));
    }
    STARFISH_ASSIGN_OR_RETURN(frame_idx, LoadFresh(shard, id));
  }
  Frame& frame = shard.frames[frame_idx];
  ++frame.pins;
  TouchFrame(shard, frame_idx);
  return PageGuard(&shard, id, FrameData(shard, frame_idx), frame_idx);
}

Status BufferManager::Unfix(PageId id, bool dirty) {
  Shard& shard = ShardOf(id);
  ShardLock lock = Lock(shard);
  const size_t slot = FindSlot(shard, id);
  if (slot == kNotFound) {
    return Status::InvalidArgument("unfix of non-resident page " +
                                   std::to_string(id));
  }
  Frame& frame = shard.frames[shard.table[slot].frame];
  if (frame.pins == 0) {
    return Status::InvalidArgument("unfix of unpinned page " +
                                   std::to_string(id));
  }
  --frame.pins;
  if (dirty) {
    frame.dirty = true;
    if (__builtin_expect(write_capture_ != nullptr, false)) {
      CaptureDirtyLocked(shard, shard.table[slot].frame, id);
    }
  }
  return Status::OK();
}

bool BufferManager::IsCached(PageId id) const {
  const Shard& shard = ShardOf(id);
  ShardLock lock = Lock(shard);
  return FindSlot(shard, id) != kNotFound;
}

uint32_t BufferManager::resident_count() const {
  uint32_t total = 0;
  for (uint32_t s = 0; s < shard_count_; ++s) {
    ShardLock lock = Lock(ShardAt(s));
    total += ShardAt(s).resident;
  }
  return total;
}

BufferStats BufferManager::stats() const {
  BufferStats total;
  for (uint32_t s = 0; s < shard_count_; ++s) {
    ShardLock lock = Lock(ShardAt(s));
    total += ShardAt(s).stats;
  }
  return total;
}

void BufferManager::ResetStats() {
  for (uint32_t s = 0; s < shard_count_; ++s) {
    ShardLock lock = Lock(ShardAt(s));
    ShardAt(s).stats = BufferStats{};
  }
}

Status BufferManager::Prefetch(const std::vector<PageId>& ids,
                               PrefetchMode mode) {
  // Per-thread scratch: Prefetch is called concurrently from many reader
  // threads, and each call's working set must be private. Thread-locals
  // keep the steady state allocation-free, as the shared members used to.
  thread_local std::vector<PageId> missing;
  thread_local std::vector<const char*> views;
  thread_local std::vector<char*> staging_ptrs;
  thread_local AlignedBuffer staging;

  // Collect distinct missing pages, preserving order. The residency check
  // takes each page's shard lock; by the time we load a page below another
  // thread may have brought it in — Load re-checks under the lock.
  missing.clear();
  for (PageId id : ids) {
    if (std::find(missing.begin(), missing.end(), id) == missing.end() &&
        !IsCached(id)) {
      missing.push_back(id);
    }
  }
  if (missing.empty()) return Status::OK();

  // Zero-copy backends hand out views into their extents: pages go arena ->
  // frame in one memcpy each, with no staging buffer. Backends without a
  // memory image (O_DIRECT) read the batch into an aligned per-thread
  // staging area instead — same chained/run call accounting, one extra copy
  // that is noise next to a device read.
  const bool zero_copy = disk_->supports_zero_copy();
  if (!zero_copy &&
      !staging.Reserve(missing.size() * static_cast<size_t>(page_size_),
                       kStagingAlign)) {
    return Status::ResourceExhausted("cannot allocate prefetch staging");
  }

  if (mode == PrefetchMode::kChained) {
    if (zero_copy) {
      STARFISH_RETURN_NOT_OK(disk_->ReadChainedZeroCopy(missing, &views));
    } else {
      staging_ptrs.clear();
      for (size_t i = 0; i < missing.size(); ++i) {
        staging_ptrs.push_back(staging.data() + i * page_size_);
      }
      STARFISH_RETURN_NOT_OK(disk_->ReadChained(missing, staging_ptrs));
    }
    for (size_t i = 0; i < missing.size(); ++i) {
      const char* src =
          zero_copy ? views[i] : staging.data() + i * page_size_;
      Shard& shard = ShardOf(missing[i]);
      ShardLock lock = Lock(shard);
      // Single-threaded, evictions triggered by earlier Load()s only write
      // back resident pages, which are disjoint from `missing` by
      // construction; concurrently, another thread may have loaded the page
      // since the residency scan. Either way: only load when still absent.
      if (FindSlot(shard, missing[i]) == kNotFound) {
        STARFISH_RETURN_NOT_OK(Load(shard, missing[i], src).status());
      }
      ++shard.stats.prefetched_pages;
    }
    return Status::OK();
  }

  // kContiguousRuns: group maximal runs of consecutive page ids.
  std::sort(missing.begin(), missing.end());
  size_t start = 0;
  while (start < missing.size()) {
    size_t end = start + 1;
    while (end < missing.size() && missing[end] == missing[end - 1] + 1) {
      ++end;
    }
    const uint32_t count = static_cast<uint32_t>(end - start);
    if (zero_copy) {
      STARFISH_RETURN_NOT_OK(
          disk_->ReadRunZeroCopy(missing[start], count, &views));
    } else {
      STARFISH_RETURN_NOT_OK(
          disk_->ReadRun(missing[start], count, staging.data()));
    }
    for (uint32_t i = 0; i < count; ++i) {
      const char* src =
          zero_copy ? views[i] : staging.data() + i * static_cast<size_t>(page_size_);
      const PageId id = missing[start + i];
      Shard& shard = ShardOf(id);
      ShardLock lock = Lock(shard);
      if (FindSlot(shard, id) == kNotFound) {
        STARFISH_RETURN_NOT_OK(Load(shard, id, src).status());
      }
      ++shard.stats.prefetched_pages;
    }
    start = end;
  }
  return Status::OK();
}

Status BufferManager::WriteFrameBatchSorted(Shard& shard, size_t batch_limit) {
  std::sort(shard.scratch_frames.begin(), shard.scratch_frames.end(),
            [&shard](uint32_t a, uint32_t b) {
              return shard.frames[a].page_id < shard.frames[b].page_id;
            });
  // WAL-before-data: no page image may reach the volume while the record
  // explaining it is still volatile. Pending-sentinel frames were excluded
  // at collection time, so the max below is over resolved LSNs only.
  if (wal_hook_ != nullptr) {
    uint64_t max_lsn = 0;
    for (uint32_t idx : shard.scratch_frames) {
      max_lsn = std::max(max_lsn, shard.recovery_lsn[idx]);
    }
    if (max_lsn > 0) {
      STARFISH_RETURN_NOT_OK(wal_hook_->EnsureDurable(max_lsn));
    }
  }
  size_t pos = 0;
  while (pos < shard.scratch_frames.size()) {
    const size_t batch_end =
        std::min(shard.scratch_frames.size(), pos + batch_limit);
    shard.scratch_ids.clear();
    shard.scratch_srcs.clear();
    for (size_t i = pos; i < batch_end; ++i) {
      const uint32_t idx = shard.scratch_frames[i];
      shard.scratch_ids.push_back(shard.frames[idx].page_id);
      shard.scratch_srcs.push_back(FrameData(shard, idx));
    }
    STARFISH_RETURN_NOT_OK(
        disk_->WriteChained(shard.scratch_ids, shard.scratch_srcs));
    for (size_t i = pos; i < batch_end; ++i) {
      const uint32_t idx = shard.scratch_frames[i];
      shard.frames[idx].dirty = false;
      shard.recovery_lsn[idx] = 0;
      ++shard.stats.write_backs;
    }
    pos = batch_end;
  }
  return Status::OK();
}

Status BufferManager::FlushAll() {
  // Shard by shard: each shard's dirty pages are written in page-id order,
  // chained in batches (disconnect-time write-back). With one shard this is
  // the exact global write pattern of the flat pool.
  for (uint32_t s = 0; s < shard_count_; ++s) {
    Shard& shard = ShardAt(s);
    ShardLock lock = Lock(shard);
    shard.scratch_frames.clear();
    for (uint32_t i = 0; i < shard.frames.size(); ++i) {
      const Frame& frame = shard.frames[i];
      // Concurrent mode defers pinned dirty frames: the pin holder may be
      // writing the page bytes right now, and write-back reads the whole
      // frame. An unpinned dirty page is safe — its writer's bytes were
      // published by the unpin (shard lock release) we ordered behind.
      // Single-shard mode keeps the flat pool's flush-everything behaviour.
      // Frames still pending their WAL record are deferred in either mode
      // (no record exists yet to order the write-back behind).
      if (frame.page_id != kInvalidPageId && frame.dirty &&
          shard.recovery_lsn[i] != kPendingRecoveryLsn &&
          (!concurrent_ || frame.pins == 0)) {
        shard.scratch_frames.push_back(i);
      }
    }
    STARFISH_RETURN_NOT_OK(
        WriteFrameBatchSorted(shard, options_.write_batch_size));
  }
  return Status::OK();
}

Status BufferManager::DropAll() {
  for (uint32_t s = 0; s < shard_count_; ++s) {
    Shard& shard = ShardAt(s);
    ShardLock lock = Lock(shard);
    for (uint32_t i = 0; i < shard.frames.size(); ++i) {
      const Frame& frame = shard.frames[i];
      if (frame.page_id != kInvalidPageId && frame.pins > 0) {
        return Status::InvalidArgument("DropAll with pinned page " +
                                       std::to_string(frame.page_id));
      }
      if (shard.recovery_lsn[i] == kPendingRecoveryLsn) {
        return Status::InvalidArgument(
            "DropAll with page pending a WAL record: " +
            std::to_string(frame.page_id));
      }
    }
  }
  STARFISH_RETURN_NOT_OK(FlushAll());
  for (uint32_t s = 0; s < shard_count_; ++s) {
    Shard& shard = ShardAt(s);
    ShardLock lock = Lock(shard);
    for (uint32_t i = 0; i < shard.frames.size(); ++i) {
      Frame& frame = shard.frames[i];
      if (frame.page_id != kInvalidPageId) {
        RemoveFromOrder(shard, i);
        frame.page_id = kInvalidPageId;
        frame.referenced = false;
        shard.free_frames.push_back(i);
      }
    }
    std::fill(shard.table.begin(), shard.table.end(), TableSlot{});
    shard.resident = 0;
  }
  return Status::OK();
}

Result<uint32_t> BufferManager::Load(Shard& shard, PageId id,
                                     const char* already_read) {
  STARFISH_ASSIGN_OR_RETURN(uint32_t frame_idx, GrabFrame(shard));
  Frame& frame = shard.frames[frame_idx];
  if (already_read != nullptr) {
    std::memcpy(FrameData(shard, frame_idx), already_read, page_size_);
  } else {
    STARFISH_RETURN_NOT_OK(disk_->ReadRun(id, 1, FrameData(shard, frame_idx)));
  }
  frame.page_id = id;
  frame.pins = 0;
  frame.dirty = false;
  shard.recovery_lsn[frame_idx] = 0;
  frame.referenced = true;
  TableInsert(shard, id, frame_idx);
  EnqueueFrame(shard, frame_idx);
  return frame_idx;
}

Result<uint32_t> BufferManager::LoadFresh(Shard& shard, PageId id) {
  STARFISH_ASSIGN_OR_RETURN(uint32_t frame_idx, GrabFrame(shard));
  Frame& frame = shard.frames[frame_idx];
  std::memset(FrameData(shard, frame_idx), 0, page_size_);
  frame.page_id = id;
  frame.pins = 0;
  frame.dirty = false;
  shard.recovery_lsn[frame_idx] = 0;
  frame.referenced = true;
  TableInsert(shard, id, frame_idx);
  EnqueueFrame(shard, frame_idx);
  return frame_idx;
}

Result<uint32_t> BufferManager::GrabFrame(Shard& shard) {
  if (!shard.free_frames.empty()) {
    const uint32_t idx = shard.free_frames.back();
    shard.free_frames.pop_back();
    return idx;
  }
  STARFISH_ASSIGN_OR_RETURN(uint32_t victim, PickVictim(shard));
  Frame& frame = shard.frames[victim];
  if (frame.dirty) {
    // Buffer overflow: clean a batch of cold dirty pages in one chained
    // write (the DASDBS write-at-overflow behaviour).
    STARFISH_RETURN_NOT_OK(WriteBackBatch(shard, victim));
  }
  RemoveFromOrder(shard, victim);
  TableErase(shard, frame.page_id);
  frame.page_id = kInvalidPageId;
  frame.referenced = false;
  ++shard.stats.evictions;
  return victim;
}

Result<uint32_t> BufferManager::PickVictim(Shard& shard) {
  // Distinguish "every frame is pinned" (caller holds too many guards for
  // this pool) from "unpinned frames exist but are all pending a WAL record"
  // — the latter is the bounded leak a failed AppendOp leaves behind (the
  // frames stay unexplained until the store reopens and replays), and the
  // caller should see that cause, not a generic pin complaint.
  bool saw_pending = false;
  switch (options_.policy) {
    case ReplacementPolicy::kLru:
    case ReplacementPolicy::kFifo: {
      // Frames pending a WAL record (recovery_lsn sentinel) are unevictable:
      // their content is not yet explained by any durable record.
      for (uint32_t idx = shard.order_head; idx != kNullFrame;
           idx = shard.frames[idx].next) {
        if (shard.frames[idx].pins != 0) continue;
        if (shard.recovery_lsn[idx] == kPendingRecoveryLsn) {
          saw_pending = true;
          continue;
        }
        return idx;
      }
      break;
    }
    case ReplacementPolicy::kClock: {
      const uint32_t n = static_cast<uint32_t>(shard.frames.size());
      for (uint32_t sweep = 0; sweep < 2 * n; ++sweep) {
        const uint32_t idx = shard.clock_hand;
        shard.clock_hand = (shard.clock_hand + 1) % n;
        Frame& frame = shard.frames[idx];
        if (frame.page_id == kInvalidPageId || frame.pins > 0) continue;
        if (shard.recovery_lsn[idx] == kPendingRecoveryLsn) {
          saw_pending = true;
          continue;
        }
        if (frame.referenced) {
          frame.referenced = false;
          continue;
        }
        return idx;
      }
      break;
    }
  }
  if (saw_pending) {
    return Status::FailedPrecondition(
        "all unpinned buffer frames await a WAL record (a failed log append "
        "leaves its frames unflushable); close and reopen the store to "
        "recover them");
  }
  return Status::ResourceExhausted("all buffer frames pinned");
}

Status BufferManager::WriteBackBatch(Shard& shard, uint32_t must_include) {
  shard.scratch_frames.clear();
  shard.scratch_frames.push_back(must_include);
  // Walk the eviction order from cold to hot collecting dirty unpinned
  // frames. For CLOCK there is no order list; fall back to frame order.
  if (options_.policy == ReplacementPolicy::kClock) {
    for (uint32_t i = 0;
         i < shard.frames.size() &&
         shard.scratch_frames.size() < options_.write_batch_size;
         ++i) {
      const Frame& frame = shard.frames[i];
      if (i != must_include && frame.page_id != kInvalidPageId && frame.dirty &&
          frame.pins == 0 && shard.recovery_lsn[i] != kPendingRecoveryLsn) {
        shard.scratch_frames.push_back(i);
      }
    }
  } else {
    for (uint32_t idx = shard.order_head; idx != kNullFrame;
         idx = shard.frames[idx].next) {
      if (shard.scratch_frames.size() >= options_.write_batch_size) break;
      const Frame& frame = shard.frames[idx];
      if (idx != must_include && frame.dirty && frame.pins == 0 &&
          shard.recovery_lsn[idx] != kPendingRecoveryLsn) {
        shard.scratch_frames.push_back(idx);
      }
    }
  }
  return WriteFrameBatchSorted(shard, shard.scratch_frames.size());
}

void BufferManager::BeginWriteCapture(PageId preimage_limit) {
  CaptureState& slot = write_capture_slot_;
  slot.out.dirtied.clear();
  slot.out.preimages.clear();
  slot.preimage_limit = preimage_limit;
  write_capture_ = &slot;
}

BufferManager::WriteCapture BufferManager::TakeWriteCapture() {
  CaptureState& slot = write_capture_slot_;
  write_capture_ = nullptr;
  return std::move(slot.out);
}

void BufferManager::StampRecoveryLsn(const std::vector<PageId>& pages,
                                     uint64_t lsn) {
  for (PageId id : pages) {
    Shard& shard = ShardOf(id);
    ShardLock lock = Lock(shard);
    const size_t slot = FindSlot(shard, id);
    if (slot == kNotFound) continue;  // freed mid-op, frame dropped
    const uint32_t frame_idx = shard.table[slot].frame;
    shard.recovery_lsn[frame_idx] = lsn;
    shard.frames[frame_idx].dirty = true;
    // lsn 0 is the no-WAL clear: pending frames become ordinary dirty pages
    // and the on-page LSN (always 0 on that path) stays untouched.
    if (lsn != 0) SetPageLsn(FrameData(shard, frame_idx), lsn);
  }
}

void BufferManager::CaptureDirtyLocked(Shard& shard, uint32_t frame_idx,
                                       PageId id) {
  if (shard.recovery_lsn[frame_idx] == kPendingRecoveryLsn) {
    return;  // already recorded
  }
  shard.recovery_lsn[frame_idx] = kPendingRecoveryLsn;
  write_capture_->out.dirtied.push_back(id);
}

void BufferManager::MaybeCapturePreimageLocked(Shard& shard,
                                               uint32_t frame_idx, PageId id) {
  CaptureState& capture = *write_capture_;
  if (id >= capture.preimage_limit) return;
  for (const auto& [seen, image] : capture.out.preimages) {
    (void)image;
    if (seen == id) return;  // intra-op dedup: first Fix saw the pre-image
  }
  if (preimage_query_ && !preimage_query_(id)) return;
  capture.out.preimages.emplace_back(
      id, std::string(FrameData(shard, frame_idx), page_size_));
}

void BufferManager::TouchFrame(Shard& shard, uint32_t frame_idx) {
  Frame& frame = shard.frames[frame_idx];
  frame.referenced = true;
  if (options_.policy == ReplacementPolicy::kLru && frame.in_order &&
      shard.order_tail != frame_idx) {
    RemoveFromOrder(shard, frame_idx);
    EnqueueFrame(shard, frame_idx);
  }
  // FIFO: position fixed at load time. CLOCK: referenced bit is enough.
}

void BufferManager::EnqueueFrame(Shard& shard, uint32_t frame_idx) {
  Frame& frame = shard.frames[frame_idx];
  frame.prev = shard.order_tail;
  frame.next = kNullFrame;
  if (shard.order_tail != kNullFrame) {
    shard.frames[shard.order_tail].next = frame_idx;
  } else {
    shard.order_head = frame_idx;
  }
  shard.order_tail = frame_idx;
  frame.in_order = true;
}

void BufferManager::RemoveFromOrder(Shard& shard, uint32_t frame_idx) {
  Frame& frame = shard.frames[frame_idx];
  if (!frame.in_order) return;
  if (frame.prev != kNullFrame) {
    shard.frames[frame.prev].next = frame.next;
  } else {
    shard.order_head = frame.next;
  }
  if (frame.next != kNullFrame) {
    shard.frames[frame.next].prev = frame.prev;
  } else {
    shard.order_tail = frame.prev;
  }
  frame.prev = kNullFrame;
  frame.next = kNullFrame;
  frame.in_order = false;
}

// ------------------------------------------------------- PrefetchStream --

PrefetchStream::PrefetchStream(BufferManager* buffer, uint32_t depth)
    : buffer_(buffer),
      disk_(buffer->disk_),
      async_(buffer->disk_->supports_async_read()) {
  slots_.resize(depth == 0 ? 1 : depth);
}

PrefetchStream::~PrefetchStream() {
  (void)Drain();
  for (Slot& slot : slots_) {
    if (slot.registered_base != nullptr) {
      disk_->UnregisterIoMemory(slot.registered_base);
    }
  }
}

Status PrefetchStream::Push(const std::vector<PageId>& ids) {
  // Distinct pages neither resident nor already on the wire from this
  // stream. A page in an earlier in-flight batch will be installed when
  // that batch completes; re-reading it would only duplicate device work
  // (Load's re-check under the shard lock keeps duplicates correct, so
  // this filter is an economy, not a safety requirement).
  std::vector<PageId>& missing = scratch_missing_;
  missing.clear();
  for (PageId id : ids) {
    if (std::find(missing.begin(), missing.end(), id) != missing.end()) {
      continue;
    }
    if (buffer_->IsCached(id)) continue;
    bool on_the_wire = false;
    for (const Slot& s : slots_) {
      if (s.in_flight &&
          std::find(s.ids.begin(), s.ids.end(), id) != s.ids.end()) {
        on_the_wire = true;
        break;
      }
    }
    if (!on_the_wire) missing.push_back(id);
  }
  if (missing.empty()) return Status::OK();

  if (!async_) {
    // No async contract: one blocking chained prefetch, identical call
    // accounting, no pipeline.
    return buffer_->Prefetch(missing, PrefetchMode::kChained);
  }

  Slot& slot = slots_[next_];
  if (slot.in_flight) {
    // Pipeline full. The cursor slot holds the oldest batch — the one the
    // device has had the longest to finish — so reaping it here usually
    // costs an install, not a wait.
    STARFISH_RETURN_NOT_OK(Complete(slot));
  }

  const size_t page_size = buffer_->page_size_;
  const size_t align =
      std::max<size_t>(kStagingAlign, disk_->io_buffer_alignment());
  const char* old_base = slot.staging.data();
  if (!slot.staging.Reserve(missing.size() * page_size, align)) {
    return Status::ResourceExhausted("cannot allocate prefetch staging");
  }
  if (slot.staging.data() != old_base || slot.registered_base == nullptr) {
    // New or regrown staging allocation: (re-)register it so the volume can
    // pin it as a fixed I/O buffer. Rings resync registrations lazily when
    // idle, so this is cheap even mid-stream.
    if (slot.registered_base != nullptr) {
      disk_->UnregisterIoMemory(slot.registered_base);
    }
    disk_->RegisterIoMemory(slot.staging.data(), slot.staging.capacity());
    slot.registered_base = slot.staging.data();
  }

  slot.ids = missing;
  slot.ptrs.clear();
  for (size_t i = 0; i < slot.ids.size(); ++i) {
    slot.ptrs.push_back(slot.staging.data() + i * page_size);
  }
  STARFISH_ASSIGN_OR_RETURN(slot.ticket,
                            disk_->SubmitReadChained(slot.ids, slot.ptrs));
  slot.in_flight = true;
  ++async_batches_;
  next_ = (next_ + 1) % slots_.size();
  return Status::OK();
}

Status PrefetchStream::Complete(Slot& slot) {
  slot.in_flight = false;
  STARFISH_RETURN_NOT_OK(disk_->CompleteRead(slot.ticket));
  const size_t page_size = buffer_->page_size_;
  for (size_t i = 0; i < slot.ids.size(); ++i) {
    const PageId id = slot.ids[i];
    const char* src = slot.staging.data() + i * page_size;
    BufferManager::Shard& shard = buffer_->ShardOf(id);
    BufferManager::ShardLock lock = buffer_->Lock(shard);
    // Another thread may have loaded the page while the batch was in
    // flight; only install when still absent (same rule as Prefetch).
    if (buffer_->FindSlot(shard, id) == BufferManager::kNotFound) {
      STARFISH_RETURN_NOT_OK(buffer_->Load(shard, id, src).status());
    }
    ++shard.stats.prefetched_pages;
  }
  return Status::OK();
}

Status PrefetchStream::Drain() {
  Status first = Status::OK();
  for (size_t i = 0; i < slots_.size(); ++i) {
    Slot& slot = slots_[(next_ + i) % slots_.size()];
    if (!slot.in_flight) continue;
    Status st = Complete(slot);
    if (first.ok() && !st.ok()) first = std::move(st);
  }
  return first;
}

}  // namespace starfish
