#include "buffer/buffer_manager.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

namespace starfish {

std::string BufferStats::ToString() const {
  char buf[200];
  std::snprintf(buf, sizeof(buf),
                "BufferStats{fixes=%llu, hits=%llu, misses=%llu, "
                "prefetched=%llu, evictions=%llu, write_backs=%llu}",
                static_cast<unsigned long long>(fixes),
                static_cast<unsigned long long>(hits),
                static_cast<unsigned long long>(misses),
                static_cast<unsigned long long>(prefetched_pages),
                static_cast<unsigned long long>(evictions),
                static_cast<unsigned long long>(write_backs));
  return buf;
}

PageGuard& PageGuard::operator=(PageGuard&& other) noexcept {
  if (this != &other) {
    Release();
    bm_ = other.bm_;
    id_ = other.id_;
    data_ = other.data_;
    dirty_ = other.dirty_;
    other.bm_ = nullptr;
    other.data_ = nullptr;
  }
  return *this;
}

void PageGuard::Release() {
  if (bm_ != nullptr) {
    // Unfix of a held guard cannot fail: the page is pinned by us.
    (void)bm_->Unfix(id_, dirty_);
    bm_ = nullptr;
    data_ = nullptr;
    dirty_ = false;
  }
}

BufferManager::BufferManager(SimDisk* disk, BufferOptions options)
    : disk_(disk), options_(options) {
  if (options_.frame_count == 0) options_.frame_count = 1;
  if (options_.write_batch_size == 0) options_.write_batch_size = 1;
  frames_.resize(options_.frame_count);
  for (auto& frame : frames_) {
    frame.data.resize(disk_->page_size());
  }
  free_frames_.reserve(options_.frame_count);
  for (uint32_t i = options_.frame_count; i > 0; --i) {
    free_frames_.push_back(i - 1);
  }
}

BufferManager::~BufferManager() {
  // Best effort: persist dirty pages so a dropped manager does not silently
  // lose updates in examples/tests.
  (void)FlushAll();
}

Result<PageGuard> BufferManager::Fix(PageId id) {
  ++stats_.fixes;
  auto it = frame_of_.find(id);
  uint32_t frame_idx;
  if (it != frame_of_.end()) {
    ++stats_.hits;
    frame_idx = it->second;
  } else {
    ++stats_.misses;
    STARFISH_ASSIGN_OR_RETURN(frame_idx, Load(id, nullptr));
  }
  Frame& frame = frames_[frame_idx];
  ++frame.pins;
  TouchFrame(frame_idx);
  return PageGuard(this, id, frame.data.data());
}

Status BufferManager::Unfix(PageId id, bool dirty) {
  auto it = frame_of_.find(id);
  if (it == frame_of_.end()) {
    return Status::InvalidArgument("unfix of non-resident page " +
                                   std::to_string(id));
  }
  Frame& frame = frames_[it->second];
  if (frame.pins == 0) {
    return Status::InvalidArgument("unfix of unpinned page " +
                                   std::to_string(id));
  }
  --frame.pins;
  frame.dirty = frame.dirty || dirty;
  return Status::OK();
}

Status BufferManager::Prefetch(const std::vector<PageId>& ids,
                               PrefetchMode mode) {
  // Collect distinct missing pages, preserving order.
  std::vector<PageId> missing;
  missing.reserve(ids.size());
  for (PageId id : ids) {
    if (!IsCached(id) &&
        std::find(missing.begin(), missing.end(), id) == missing.end()) {
      missing.push_back(id);
    }
  }
  if (missing.empty()) return Status::OK();

  const uint32_t page_size = disk_->page_size();
  if (mode == PrefetchMode::kChained) {
    std::vector<char> scratch(static_cast<size_t>(missing.size()) * page_size);
    std::vector<char*> outs;
    outs.reserve(missing.size());
    for (size_t i = 0; i < missing.size(); ++i) {
      outs.push_back(scratch.data() + i * page_size);
    }
    STARFISH_RETURN_NOT_OK(disk_->ReadChained(missing, outs));
    for (size_t i = 0; i < missing.size(); ++i) {
      // Pages might collide with loads triggered by eviction write-backs;
      // Load() tolerates that via the cache check below.
      if (!IsCached(missing[i])) {
        STARFISH_RETURN_NOT_OK(Load(missing[i], outs[i]).status());
      }
      ++stats_.prefetched_pages;
    }
    return Status::OK();
  }

  // kContiguousRuns: group maximal runs of consecutive page ids.
  std::sort(missing.begin(), missing.end());
  size_t start = 0;
  while (start < missing.size()) {
    size_t end = start + 1;
    while (end < missing.size() && missing[end] == missing[end - 1] + 1) {
      ++end;
    }
    const uint32_t count = static_cast<uint32_t>(end - start);
    std::vector<char> scratch(static_cast<size_t>(count) * page_size);
    STARFISH_RETURN_NOT_OK(disk_->ReadRun(missing[start], count, scratch.data()));
    for (uint32_t i = 0; i < count; ++i) {
      if (!IsCached(missing[start + i])) {
        STARFISH_RETURN_NOT_OK(
            Load(missing[start + i], scratch.data() + static_cast<size_t>(i) * page_size)
                .status());
      }
      ++stats_.prefetched_pages;
    }
    start = end;
  }
  return Status::OK();
}

Status BufferManager::FlushAll() {
  std::vector<uint32_t> dirty_frames;
  for (uint32_t i = 0; i < frames_.size(); ++i) {
    if (frames_[i].page_id != kInvalidPageId && frames_[i].dirty) {
      dirty_frames.push_back(i);
    }
  }
  // Write in page-id order, chained in batches: disconnect-time write-back.
  std::sort(dirty_frames.begin(), dirty_frames.end(),
            [this](uint32_t a, uint32_t b) {
              return frames_[a].page_id < frames_[b].page_id;
            });
  size_t pos = 0;
  while (pos < dirty_frames.size()) {
    const size_t batch_end =
        std::min(dirty_frames.size(), pos + options_.write_batch_size);
    std::vector<PageId> ids;
    std::vector<const char*> srcs;
    for (size_t i = pos; i < batch_end; ++i) {
      Frame& frame = frames_[dirty_frames[i]];
      ids.push_back(frame.page_id);
      srcs.push_back(frame.data.data());
    }
    STARFISH_RETURN_NOT_OK(disk_->WriteChained(ids, srcs));
    for (size_t i = pos; i < batch_end; ++i) {
      frames_[dirty_frames[i]].dirty = false;
      ++stats_.write_backs;
    }
    pos = batch_end;
  }
  return Status::OK();
}

Status BufferManager::DropAll() {
  for (const Frame& frame : frames_) {
    if (frame.page_id != kInvalidPageId && frame.pins > 0) {
      return Status::InvalidArgument("DropAll with pinned page " +
                                     std::to_string(frame.page_id));
    }
  }
  STARFISH_RETURN_NOT_OK(FlushAll());
  for (uint32_t i = 0; i < frames_.size(); ++i) {
    Frame& frame = frames_[i];
    if (frame.page_id != kInvalidPageId) {
      RemoveFromOrder(i);
      frame_of_.erase(frame.page_id);
      frame.page_id = kInvalidPageId;
      frame.referenced = false;
      free_frames_.push_back(i);
    }
  }
  return Status::OK();
}

Result<uint32_t> BufferManager::Load(PageId id, const char* already_read) {
  STARFISH_ASSIGN_OR_RETURN(uint32_t frame_idx, GrabFrame());
  Frame& frame = frames_[frame_idx];
  if (already_read != nullptr) {
    std::memcpy(frame.data.data(), already_read, disk_->page_size());
  } else {
    STARFISH_RETURN_NOT_OK(disk_->ReadRun(id, 1, frame.data.data()));
  }
  frame.page_id = id;
  frame.pins = 0;
  frame.dirty = false;
  frame.referenced = true;
  frame_of_[id] = frame_idx;
  EnqueueFrame(frame_idx);
  return frame_idx;
}

Result<uint32_t> BufferManager::GrabFrame() {
  if (!free_frames_.empty()) {
    const uint32_t idx = free_frames_.back();
    free_frames_.pop_back();
    return idx;
  }
  STARFISH_ASSIGN_OR_RETURN(uint32_t victim, PickVictim());
  Frame& frame = frames_[victim];
  if (frame.dirty) {
    // Buffer overflow: clean a batch of cold dirty pages in one chained
    // write (the DASDBS write-at-overflow behaviour).
    STARFISH_RETURN_NOT_OK(WriteBackBatch(victim));
  }
  RemoveFromOrder(victim);
  frame_of_.erase(frame.page_id);
  frame.page_id = kInvalidPageId;
  frame.referenced = false;
  ++stats_.evictions;
  return victim;
}

Result<uint32_t> BufferManager::PickVictim() {
  switch (options_.policy) {
    case ReplacementPolicy::kLru:
    case ReplacementPolicy::kFifo: {
      for (uint32_t idx : order_) {
        if (frames_[idx].pins == 0) return idx;
      }
      return Status::ResourceExhausted("all buffer frames pinned");
    }
    case ReplacementPolicy::kClock: {
      const uint32_t n = static_cast<uint32_t>(frames_.size());
      for (uint32_t sweep = 0; sweep < 2 * n; ++sweep) {
        const uint32_t idx = clock_hand_;
        clock_hand_ = (clock_hand_ + 1) % n;
        Frame& frame = frames_[idx];
        if (frame.page_id == kInvalidPageId || frame.pins > 0) continue;
        if (frame.referenced) {
          frame.referenced = false;
          continue;
        }
        return idx;
      }
      return Status::ResourceExhausted("all buffer frames pinned");
    }
  }
  return Status::Internal("unknown replacement policy");
}

Status BufferManager::WriteBackBatch(uint32_t must_include) {
  std::vector<uint32_t> batch;
  batch.push_back(must_include);
  // Walk the eviction order from cold to hot collecting dirty unpinned
  // frames. For CLOCK there is no order list; fall back to frame order.
  if (options_.policy == ReplacementPolicy::kClock) {
    for (uint32_t i = 0; i < frames_.size() && batch.size() < options_.write_batch_size; ++i) {
      const Frame& frame = frames_[i];
      if (i != must_include && frame.page_id != kInvalidPageId && frame.dirty &&
          frame.pins == 0) {
        batch.push_back(i);
      }
    }
  } else {
    for (uint32_t idx : order_) {
      if (batch.size() >= options_.write_batch_size) break;
      const Frame& frame = frames_[idx];
      if (idx != must_include && frame.dirty && frame.pins == 0) {
        batch.push_back(idx);
      }
    }
  }
  std::sort(batch.begin(), batch.end(), [this](uint32_t a, uint32_t b) {
    return frames_[a].page_id < frames_[b].page_id;
  });
  std::vector<PageId> ids;
  std::vector<const char*> srcs;
  ids.reserve(batch.size());
  for (uint32_t idx : batch) {
    ids.push_back(frames_[idx].page_id);
    srcs.push_back(frames_[idx].data.data());
  }
  STARFISH_RETURN_NOT_OK(disk_->WriteChained(ids, srcs));
  for (uint32_t idx : batch) {
    frames_[idx].dirty = false;
    ++stats_.write_backs;
  }
  return Status::OK();
}

void BufferManager::TouchFrame(uint32_t frame_idx) {
  Frame& frame = frames_[frame_idx];
  frame.referenced = true;
  if (options_.policy == ReplacementPolicy::kLru && frame.in_order) {
    order_.erase(frame.order_pos);
    frame.order_pos = order_.insert(order_.end(), frame_idx);
  }
  // FIFO: position fixed at load time. CLOCK: referenced bit is enough.
}

void BufferManager::EnqueueFrame(uint32_t frame_idx) {
  Frame& frame = frames_[frame_idx];
  frame.order_pos = order_.insert(order_.end(), frame_idx);
  frame.in_order = true;
}

void BufferManager::RemoveFromOrder(uint32_t frame_idx) {
  Frame& frame = frames_[frame_idx];
  if (frame.in_order) {
    order_.erase(frame.order_pos);
    frame.in_order = false;
  }
}

}  // namespace starfish
