#pragma once

#include <cstdint>

/// \file formulas.h
/// The analytical cost formulas of §3 (Equations 2-8).
///
/// All formulas estimate X_IO_pages — expected physical page accesses —
/// for the placement situations of the paper:
///
///   * Eq. 2/3 — page-spanning ("large") tuples fetched by address;
///   * Eq. 4   — small tuples randomly distributed over a relation's pages
///               (Bernstein/Yao formula);
///   * Eq. 5   — partial retrieval of a large tuple through its object
///               header (DASDBS-DSM);
///   * Eq. 6   — one cluster of consecutively stored small tuples;
///   * Eq. 7   — several clusters of consecutive tuples, randomly located;
///   * Eq. 8   — number of distinct objects hit by random draws with
///               replacement (database-cache model for the query loops).
///
/// Equations 5 and 7 are partially illegible in the available scan of the
/// paper and are reconstructed from first principles; tests validate them
/// against Monte-Carlo simulation (see monte_carlo.h) and the benches
/// against the storage simulator itself.

namespace starfish::cost {

/// Equation 2: pages p spanned by a single large tuple of `tuple_bytes` on
/// pages with `page_bytes` usable bytes (ceiling division).
int64_t PagesPerLargeTuple(double tuple_bytes, double page_bytes);

/// Equation 3: page accesses for t large tuples fetched by address,
/// p pages each.
double LargeTuplePages(double t, double p);

/// Equation 4 (Yao/Bernstein), integer form: expected pages touched when t
/// specific tuples are randomly distributed over m pages holding k tuples
/// each:  m * (1 - C(mk - k, t) / C(mk, t)).
double YaoPages(int64_t t, int64_t m, int64_t k);

/// Equation 4 with fractional t (the workload averages are fractional,
/// e.g. 16.7 grand-children): linear interpolation between floor(t) and
/// ceil(t).
double YaoPagesFrac(double t, int64_t m, int64_t k);

/// Equation 6: expected pages touched by one run of t consecutively stored
/// tuples, k per page, uniformly random start alignment:
///   1 + (t - 1) / k, saturating at m (t > m*k - k + 1 touches every page).
double ClusterPages(double t, int64_t m, int64_t k);

/// Equation 7 (reconstructed): expected distinct pages touched by
/// `clusters` independently placed runs of `g` consecutive tuples each:
///   m * (1 - (1 - E1/m)^clusters),   E1 = ClusterPages(g, m, k)
/// — the collision-aware composition of Eq. 6; reduces to Eq. 4 behaviour
/// for g = 1 and saturates at m.
double ClusterGroupPages(double clusters, double g, int64_t m, int64_t k);

/// Equation 5 (reconstructed): expected pages for a partial read of a large
/// tuple through its header: all `header_pages` plus the data pages holding
/// the used fraction. Used bytes are assumed contiguous in document order
/// (the benchmark's navigation reads a prefix: root + Platform +
/// Connection), so data pages = ClusterPages over bytes:
///   header_pages + min(data_pages, 1 + (used_bytes - 1) / page_bytes).
double PartialLargePages(double used_bytes, double header_pages,
                         double data_pages, double page_bytes);

/// Equation 8: expected number of distinct objects selected when drawing
/// `draws` times uniformly with replacement from `n_total` objects:
///   N_tot * (1 - ((N_tot - 1) / N_tot)^draws).
double ExpectedDistinct(double n_total, double draws);

}  // namespace starfish::cost
