#include "cost/monte_carlo.h"

#include <unordered_set>
#include <vector>

#include "util/random.h"

namespace starfish::cost {

double McYaoPages(int64_t t, int64_t m, int64_t k, int trials, uint64_t seed) {
  Rng rng(seed);
  const int64_t total = m * k;
  if (t >= total) return static_cast<double>(m);
  double sum = 0.0;
  std::vector<uint64_t> tuples(static_cast<size_t>(total));
  for (int64_t i = 0; i < total; ++i) tuples[static_cast<size_t>(i)] = i;
  for (int trial = 0; trial < trials; ++trial) {
    // Partial Fisher-Yates: the first t entries are a uniform t-subset.
    for (int64_t i = 0; i < t; ++i) {
      const uint64_t j = i + rng.Uniform(static_cast<uint64_t>(total - i));
      std::swap(tuples[static_cast<size_t>(i)], tuples[static_cast<size_t>(j)]);
    }
    std::unordered_set<int64_t> pages;
    for (int64_t i = 0; i < t; ++i) {
      pages.insert(static_cast<int64_t>(tuples[static_cast<size_t>(i)]) / k);
    }
    sum += static_cast<double>(pages.size());
  }
  return sum / trials;
}

double McClusterGroupPages(int64_t clusters, int64_t g, int64_t m, int64_t k,
                           int trials, uint64_t seed) {
  Rng rng(seed);
  const int64_t total = m * k;
  double sum = 0.0;
  for (int trial = 0; trial < trials; ++trial) {
    std::unordered_set<int64_t> pages;
    for (int64_t c = 0; c < clusters; ++c) {
      const int64_t max_start = total - g;
      const int64_t start =
          max_start > 0 ? static_cast<int64_t>(
                              rng.Uniform(static_cast<uint64_t>(max_start + 1)))
                        : 0;
      const int64_t first_page = start / k;
      const int64_t last_page = (start + g - 1) / k;
      for (int64_t p = first_page; p <= last_page && p < m; ++p) {
        pages.insert(p);
      }
    }
    sum += static_cast<double>(pages.size());
  }
  return sum / trials;
}

double McExpectedDistinct(int64_t n_total, int64_t draws, int trials,
                          uint64_t seed) {
  Rng rng(seed);
  double sum = 0.0;
  for (int trial = 0; trial < trials; ++trial) {
    std::unordered_set<uint64_t> seen;
    for (int64_t d = 0; d < draws; ++d) {
      seen.insert(rng.Uniform(static_cast<uint64_t>(n_total)));
    }
    sum += static_cast<double>(seen.size());
  }
  return sum / trials;
}

}  // namespace starfish::cost
