#include "cost/analytical_model.h"

#include <algorithm>
#include <cmath>

#include "cost/formulas.h"

namespace starfish::cost {

namespace {

/// Expected pages to fetch the relation tuples of one object by address.
double PerObjectFetchPages(const RelationParams& rel) {
  if (rel.is_large) return rel.header_pages + rel.data_pages;
  // Tuples of one object are stored consecutively (insert clustering).
  return ClusterPages(rel.tuples_per_object, static_cast<int64_t>(rel.m),
                      std::max<int64_t>(1, static_cast<int64_t>(rel.k)));
}

int64_t I64(double v) { return static_cast<int64_t>(std::llround(v)); }

}  // namespace

RelationParams StripWaste(const RelationParams& rel, double page_bytes) {
  RelationParams out = rel;
  out.tuple_bytes = rel.payload_bytes;
  if (rel.is_large) {
    out.header_pages = 0.0;
    out.data_pages = rel.payload_bytes / page_bytes;  // fractional, packed
    out.p = out.data_pages;
    out.m = rel.total_tuples * out.p;
  } else {
    out.k = std::floor(page_bytes / std::max(1.0, rel.payload_bytes));
    out.m = std::ceil(rel.total_tuples / std::max(1.0, out.k));
  }
  return out;
}

QueryEstimates EstimateDsm(const RelationParams& rel, const WorkloadParams& w) {
  QueryEstimates e;
  const double visits = w.VisitsPerLoop();
  if (rel.is_large) {
    // Equation 3: every access fetches all p pages of the object.
    e.q1a = rel.p;
    e.q1b = rel.m;              // value selection scans the whole relation
    e.q1c = rel.m / w.n_objects;
    e.q2a = visits * rel.p;
    const double distinct =
        ExpectedDistinct(w.n_objects, w.loops * visits);
    e.q2b = distinct * rel.p / w.loops;
    e.q3a = e.q2a + w.avg_grandchildren * rel.p;  // whole-tuple rewrites
    const double distinct_g =
        ExpectedDistinct(w.n_objects, w.loops * w.avg_grandchildren);
    e.q3b = e.q2b + distinct_g * rel.p / w.loops;
    return e;
  }
  // Small objects share pages: Equation 4 situations.
  const int64_t m = I64(rel.m);
  const int64_t k = std::max<int64_t>(1, I64(rel.k));
  e.q1a = 1.0;
  e.q1b = rel.m;
  e.q1c = rel.m / w.n_objects;
  e.q2a = YaoPagesFrac(visits, m, k);
  const double distinct = ExpectedDistinct(w.n_objects, w.loops * visits);
  e.q2b = YaoPagesFrac(distinct, m, k) / w.loops;
  e.q3a = e.q2a + YaoPagesFrac(w.avg_grandchildren, m, k);
  const double distinct_g =
      ExpectedDistinct(w.n_objects, w.loops * w.avg_grandchildren);
  e.q3b = e.q2b + YaoPagesFrac(distinct_g, m, k) / w.loops;
  return e;
}

QueryEstimates EstimateDasdbsDsm(const RelationParams& rel,
                                 const WorkloadParams& w, double pool_pages) {
  QueryEstimates e;
  const double visits = w.VisitsPerLoop();
  if (!rel.is_large) {
    // Small objects: the header brings no benefit; reads behave like DSM,
    // but updates still follow the change-attribute protocol (page pool).
    e = EstimateDsm(rel, w);
    const int64_t m = I64(rel.m);
    const int64_t k = std::max<int64_t>(1, I64(rel.k));
    e.q3a = e.q2a + w.avg_grandchildren * pool_pages +
            YaoPagesFrac(w.avg_grandchildren, m, k);
    const double distinct_g =
        ExpectedDistinct(w.n_objects, w.loops * w.avg_grandchildren);
    e.q3b = e.q2b + w.avg_grandchildren * pool_pages +
            YaoPagesFrac(distinct_g, m, k) / w.loops;
    return e;
  }

  const double full = rel.header_pages + rel.data_pages;
  // Equation 5: partial reads fetch the headers plus only the used data.
  const double nav_pages = PartialLargePages(w.nav_bytes, rel.header_pages,
                                             rel.data_pages, w.page_bytes);
  const double root_pages = PartialLargePages(w.root_bytes, rel.header_pages,
                                              rel.data_pages, w.page_bytes);
  e.q1a = full;
  e.q1b = rel.m;
  e.q1c = rel.m / w.n_objects;
  e.q2a = (1.0 + w.avg_children) * nav_pages +
          w.avg_grandchildren * root_pages;
  const double per_visit =
      e.q2a / w.VisitsPerLoop();  // average pages per visited object
  const double distinct = ExpectedDistinct(w.n_objects, w.loops * visits);
  e.q2b = distinct * per_visit / w.loops;
  // Change-attribute updates: one page-pool write per updated tuple plus
  // the (eventually written back) dirty root data page.
  e.q3a = e.q2a + w.avg_grandchildren * pool_pages + w.avg_grandchildren;
  const double distinct_g =
      ExpectedDistinct(w.n_objects, w.loops * w.avg_grandchildren);
  e.q3b = e.q2b + w.avg_grandchildren * pool_pages +
          distinct_g * 1.0 / w.loops;
  return e;
}

QueryEstimates EstimateNsm(const std::vector<RelationParams>& rels,
                           const NormalizedLayout& layout,
                           const WorkloadParams& w, bool with_index) {
  QueryEstimates e;
  const RelationParams& root = rels[layout.root_index];
  const int64_t m_root = I64(root.m);
  const int64_t k_root = std::max<int64_t>(1, I64(root.k));

  double m_all = 0.0;
  for (const RelationParams& rel : rels) m_all += rel.m;
  double m_links = 0.0;
  for (size_t idx : layout.link_indexes) m_links += rels[idx].m;

  // Per-object addressed fetch of all non-root relations (index case):
  // each object's tuples form one cluster per relation (Equation 6).
  double fetch_children_rels = 0.0;
  for (size_t i = 0; i < rels.size(); ++i) {
    if (i == layout.root_index) continue;
    fetch_children_rels += ClusterPages(
        rels[i].tuples_per_object, I64(rels[i].m),
        std::max<int64_t>(1, I64(rels[i].k)));
  }
  // Link-relation tuples of one object (one navigation step).
  double link_fetch = 0.0;
  for (size_t idx : layout.link_indexes) {
    link_fetch += ClusterPages(rels[idx].tuples_per_object, I64(rels[idx].m),
                               std::max<int64_t>(1, I64(rels[idx].k)));
  }

  e.q1c = m_all / w.n_objects;
  if (with_index) {
    e.q1a = 1.0 + fetch_children_rels;
    e.q1b = root.m + fetch_children_rels;  // key selection still scans root
    e.q2a = (1.0 + w.avg_children) * link_fetch +
            YaoPagesFrac(w.avg_grandchildren, m_root, k_root);
    // Best case across loops: the touched relations end up fully cached.
    e.q2b = (m_links + root.m) / w.loops;
  } else {
    e.q1a = -1;  // "With NSM we have no identifiers" — not relevant
    e.q1b = m_all;
    // Navigation = full scans of the link relations (+ root relation for
    // the grand-children's records), all cached within the query.
    e.q2a = m_links + root.m;
    e.q2b = (m_links + root.m) / w.loops;
  }
  e.q3a = e.q2a + YaoPagesFrac(w.avg_grandchildren, m_root, k_root);
  e.q3b = e.q2b + root.m / w.loops;  // every root page dirty once, flushed
  return e;
}

QueryEstimates EstimateDasdbsNsm(const std::vector<RelationParams>& rels,
                                 const NormalizedLayout& layout,
                                 const WorkloadParams& w) {
  QueryEstimates e;
  const RelationParams& root = rels[layout.root_index];
  const int64_t m_root = I64(root.m);
  const int64_t k_root = std::max<int64_t>(1, I64(root.k));

  double m_all = 0.0;
  for (const RelationParams& rel : rels) m_all += rel.m;
  double m_links = 0.0, link_fetch = 0.0;
  for (size_t idx : layout.link_indexes) {
    m_links += rels[idx].m;
    link_fetch += PerObjectFetchPages(rels[idx]);
  }
  double fetch_all = 0.0;
  for (size_t i = 0; i < rels.size(); ++i) {
    fetch_all += i == layout.root_index ? 1.0 : PerObjectFetchPages(rels[i]);
  }

  e.q1a = fetch_all;
  e.q1b = root.m + (fetch_all - 1.0);  // root scan + addressed fetches
  e.q1c = m_all / w.n_objects;
  e.q2a = (1.0 + w.avg_children) * link_fetch +
          YaoPagesFrac(w.avg_grandchildren, m_root, k_root);
  e.q2b = (m_links + root.m) / w.loops;
  e.q3a = e.q2a + YaoPagesFrac(w.avg_grandchildren, m_root, k_root);
  e.q3b = e.q2b + root.m / w.loops;
  return e;
}

}  // namespace starfish::cost
