#pragma once

#include <cstdint>

/// \file monte_carlo.h
/// Monte-Carlo oracles for the analytical formulas.
///
/// Equations 5 and 7 of the paper are reconstructed (the available scan is
/// partially illegible); these simulators provide an independent ground
/// truth the property tests compare the closed forms against. They are also
/// used by `bench_table3_analytic` to annotate the reconstructed columns.

namespace starfish::cost {

/// Simulates Equation 4: draws `t` distinct tuples uniformly from `m*k`
/// tuples packed k-per-page; returns the mean number of distinct pages over
/// `trials` experiments.
double McYaoPages(int64_t t, int64_t m, int64_t k, int trials, uint64_t seed);

/// Simulates Equation 6/7: places `clusters` runs of `g` consecutive tuples
/// at uniformly random start offsets in a relation of `m*k` tuple slots;
/// returns the mean number of distinct pages touched.
double McClusterGroupPages(int64_t clusters, int64_t g, int64_t m, int64_t k,
                           int trials, uint64_t seed);

/// Simulates Equation 8: `draws` uniform draws with replacement from
/// `n_total` objects; returns the mean number of distinct objects.
double McExpectedDistinct(int64_t n_total, int64_t draws, int trials,
                          uint64_t seed);

}  // namespace starfish::cost
