#include "cost/formulas.h"

#include <algorithm>
#include <cmath>

#include "util/math_util.h"

namespace starfish::cost {

int64_t PagesPerLargeTuple(double tuple_bytes, double page_bytes) {
  if (tuple_bytes <= 0) return 0;
  return static_cast<int64_t>(std::ceil(tuple_bytes / page_bytes));
}

double LargeTuplePages(double t, double p) { return t * p; }

double YaoPages(int64_t t, int64_t m, int64_t k) {
  if (t <= 0 || m <= 0 || k <= 0) return 0.0;
  const int64_t total = m * k;
  if (t >= total) return static_cast<double>(m);
  // P(one page untouched) = C(total - k, t) / C(total, t).
  const double untouched = BinomialRatio(total - k, total, t);
  return static_cast<double>(m) * (1.0 - untouched);
}

double YaoPagesFrac(double t, int64_t m, int64_t k) {
  const int64_t lo = static_cast<int64_t>(std::floor(t));
  const int64_t hi = static_cast<int64_t>(std::ceil(t));
  if (lo == hi) return YaoPages(lo, m, k);
  const double frac = t - static_cast<double>(lo);
  return (1.0 - frac) * YaoPages(lo, m, k) + frac * YaoPages(hi, m, k);
}

double ClusterPages(double t, int64_t m, int64_t k) {
  if (t <= 0 || m <= 0 || k <= 0) return 0.0;
  const double limit = static_cast<double>(m) * k - k + 1;
  if (t > limit) return static_cast<double>(m);
  return std::min(static_cast<double>(m),
                  1.0 + (t - 1.0) / static_cast<double>(k));
}

double ClusterGroupPages(double clusters, double g, int64_t m, int64_t k) {
  if (clusters <= 0 || g <= 0 || m <= 0 || k <= 0) return 0.0;
  const double e1 = ClusterPages(g, m, k);
  const double miss = 1.0 - e1 / static_cast<double>(m);
  if (miss <= 0.0) return static_cast<double>(m);
  return static_cast<double>(m) * (1.0 - std::pow(miss, clusters));
}

double PartialLargePages(double used_bytes, double header_pages,
                         double data_pages, double page_bytes) {
  if (used_bytes <= 0) return header_pages;
  const double used_data =
      std::min(data_pages, 1.0 + (used_bytes - 1.0) / page_bytes);
  return header_pages + used_data;
}

double ExpectedDistinct(double n_total, double draws) {
  if (n_total <= 0 || draws <= 0) return 0.0;
  const double miss = (n_total - 1.0) / n_total;
  return n_total * (1.0 - std::pow(miss, draws));
}

}  // namespace starfish::cost
