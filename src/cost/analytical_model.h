#pragma once

#include <cstdint>
#include <string>
#include <vector>

/// \file analytical_model.h
/// The per-storage-model page-I/O estimators of §4 (Table 3).
///
/// Inputs are the relation placement parameters of Table 2 (k, p, m,
/// header/data pages per relation) plus the workload parameters of the
/// benchmark (object count, loop count, average fan-outs). Outputs are the
/// estimated X_IO_pages for the seven benchmark queries, normalized the way
/// the paper prints them: query 1 per object, queries 2/3 per loop.
///
/// All estimates are *best case*: an unbounded cache is assumed, with
/// repeat accesses across a query-2/3 loop deduplicated through the Eq. 8
/// cache model (exactly the paper's assumption; its §5 then measures how a
/// finite 1200-page buffer deviates).

namespace starfish::cost {

/// Placement parameters of one stored relation (one Table 2 row).
struct RelationParams {
  std::string name;
  double tuples_per_object = 1.0;  ///< average tuples per complex object
  double total_tuples = 0.0;       ///< tuples in the relation
  double payload_bytes = 0.0;      ///< average useful bytes per tuple
  double tuple_bytes = 0.0;        ///< S_tuple: stored bytes incl. waste
  bool is_large = false;           ///< spans pages (header/data split)
  double k = 0.0;                  ///< tuples per page (small tuples)
  double p = 0.0;                  ///< pages per tuple (large tuples)
  double header_pages = 0.0;       ///< avg header pages (large tuples)
  double data_pages = 0.0;         ///< avg data pages (large tuples)
  double m = 0.0;                  ///< pages storing the whole relation
};

/// Benchmark workload parameters (§2).
struct WorkloadParams {
  double n_objects = 1500.0;
  double loops = 300.0;
  /// Average number of children (link targets) per object: 4.10 in the
  /// default benchmark ((2 * 0.8 * 2 * 0.8)^1... = (fanout*prob)^2).
  double avg_children = 4.10;
  /// Average number of grand-children per loop: children^2 = 16.8.
  double avg_grandchildren = 16.81;
  /// Bytes of an object used by a navigation step (root + the sub-tuples
  /// holding links, with their ancestors) — prefix of the document order.
  double nav_bytes = 800.0;
  /// Bytes of the root record.
  double root_bytes = 120.0;
  /// Usable page bytes.
  double page_bytes = 2012.0;

  /// Objects visited per query-2 loop (self + children + grand-children).
  double VisitsPerLoop() const {
    return 1.0 + avg_children + avg_grandchildren;
  }
};

/// Estimated X_IO_pages per query (query 1 per object, 2/3 per loop).
/// Negative values mean "not applicable" (rendered as "-").
struct QueryEstimates {
  double q1a = -1, q1b = -1, q1c = -1;
  double q2a = -1, q2b = -1;
  double q3a = -1, q3b = -1;
};

/// DSM (§3.1): whole-object reads, whole-tuple replacing updates.
QueryEstimates EstimateDsm(const RelationParams& rel, const WorkloadParams& w);

/// DASDBS-DSM (§3.2): header-directed partial reads; change-attribute
/// updates writing `pool_pages` page-pool pages per updated tuple.
QueryEstimates EstimateDasdbsDsm(const RelationParams& rel,
                                 const WorkloadParams& w,
                                 double pool_pages = 1.0);

/// Which decomposed relations play which role for the normalized models.
struct NormalizedLayout {
  size_t root_index = 0;            ///< relation holding the root records
  std::vector<size_t> link_indexes; ///< relations holding LINK attributes
};

/// NSM (§3.3). `with_index` switches to the NSM+index column.
QueryEstimates EstimateNsm(const std::vector<RelationParams>& rels,
                           const NormalizedLayout& layout,
                           const WorkloadParams& w, bool with_index);

/// DASDBS-NSM (§3.4): one addressed relation tuple per object per relation.
QueryEstimates EstimateDasdbsNsm(const std::vector<RelationParams>& rels,
                                 const NormalizedLayout& layout,
                                 const WorkloadParams& w);

/// The paper's primed (′) model variants: the same relation re-described
/// with all internal waste removed — large tuples pack their payload
/// contiguously with no header/data split and fractional page spans.
RelationParams StripWaste(const RelationParams& rel, double page_bytes);

}  // namespace starfish::cost
