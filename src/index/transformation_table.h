#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "storage/tid.h"
#include "util/coding.h"
#include "util/status.h"

/// \file transformation_table.h
/// The paper's in-memory "table with addresses".
///
/// DASDBS-NSM keeps, per object key, the addresses of the (four) relation
/// tuples that together store the object; NSM+index keeps, per key, the
/// addresses of all tuples with that root key. The paper deliberately does
/// not count the I/O of maintaining or probing this table ("we did not
/// account for additional I/Os needed to ... retrieve the tables with
/// addresses"), so it is a plain in-memory map here. The persistent
/// BPlusTree (bplus_tree.h) exists to quantify that hidden cost in the
/// ablation bench.

namespace starfish {

/// key -> ordered list of record addresses. No I/O is metered.
class TransformationTable {
 public:
  /// Replaces the address list of `key`.
  void Put(int64_t key, std::vector<Tid> addresses) {
    map_[key] = std::move(addresses);
  }

  /// Appends one address to `key`'s list.
  void Append(int64_t key, const Tid& address) {
    map_[key].push_back(address);
  }

  /// Address list for `key`, or NotFound.
  Result<std::vector<Tid>> Get(int64_t key) const {
    auto it = map_.find(key);
    if (it == map_.end()) {
      return Status::NotFound("key " + std::to_string(key) +
                              " not in transformation table");
    }
    return it->second;
  }

  /// Replaces one address in `key`'s list (old -> new), e.g. after a record
  /// moved. NotFound if the pair is absent.
  Status Replace(int64_t key, const Tid& old_addr, const Tid& new_addr) {
    auto it = map_.find(key);
    if (it != map_.end()) {
      for (Tid& tid : it->second) {
        if (tid == old_addr) {
          tid = new_addr;
          return Status::OK();
        }
      }
    }
    return Status::NotFound("address " + old_addr.ToString() +
                            " not registered for key " + std::to_string(key));
  }

  Status Erase(int64_t key) {
    return map_.erase(key) > 0
               ? Status::OK()
               : Status::NotFound("key " + std::to_string(key));
  }

  bool Contains(int64_t key) const { return map_.count(key) > 0; }
  size_t size() const { return map_.size(); }

  /// Visits every registered (key, address) pair, in unspecified order.
  /// Crash recovery walks this to collect the catalog's live addresses.
  void ForEach(const std::function<void(int64_t, const Tid&)>& fn) const {
    for (const auto& [key, addrs] : map_) {
      for (const Tid& tid : addrs) fn(key, tid);
    }
  }

  /// Serializes the table for the persistent-store catalog.
  void SaveState(std::string* out) const {
    PutFixed64(out, static_cast<uint64_t>(map_.size()));
    for (const auto& [key, addrs] : map_) {
      PutFixed64(out, static_cast<uint64_t>(key));
      PutFixed32(out, static_cast<uint32_t>(addrs.size()));
      for (const Tid& tid : addrs) PutFixed64(out, tid.Pack());
    }
  }

  /// Restores the state written by SaveState, consuming it from `*in`.
  Status LoadState(std::string_view* in) {
    uint64_t entries = 0;
    if (!GetFixed64(in, &entries)) {
      return Status::Corruption("transformation table: truncated size");
    }
    // Counts come from disk: bound them by the bytes actually present
    // (each entry is at least 12 bytes) before any allocation, so a
    // corrupt file reports Corruption instead of throwing bad_alloc.
    if (entries > in->size() / 12) {
      return Status::Corruption("transformation table: implausible size");
    }
    map_.clear();
    map_.reserve(entries);
    for (uint64_t i = 0; i < entries; ++i) {
      uint64_t key = 0;
      uint32_t count = 0;
      if (!GetFixed64(in, &key) || !GetFixed32(in, &count)) {
        return Status::Corruption("transformation table: truncated entry");
      }
      if (count > in->size() / 8) {
        return Status::Corruption("transformation table: implausible entry");
      }
      std::vector<Tid> addrs;
      addrs.reserve(count);
      for (uint32_t j = 0; j < count; ++j) {
        uint64_t packed = 0;
        if (!GetFixed64(in, &packed)) {
          return Status::Corruption("transformation table: truncated tid");
        }
        addrs.push_back(Tid::Unpack(packed));
      }
      map_[static_cast<int64_t>(key)] = std::move(addrs);
    }
    return Status::OK();
  }

  /// Estimated resident bytes (for the ablation discussion: what the
  /// "free" index actually costs in memory).
  size_t EstimatedBytes() const {
    size_t bytes = 0;
    for (const auto& [key, addrs] : map_) {
      bytes += sizeof(key) + sizeof(addrs) + addrs.size() * sizeof(Tid);
    }
    return bytes;
  }

 private:
  std::unordered_map<int64_t, std::vector<Tid>> map_;
};

}  // namespace starfish
