#include "index/bplus_tree.h"

#include <cstring>

#include "storage/slotted_page.h"
#include "util/coding.h"

namespace starfish {

namespace {

constexpr uint32_t kNodeTypeOff = kPageHeaderSize + 0;  // u16: 1 leaf, 2 inner
constexpr uint32_t kCountOff = kPageHeaderSize + 2;     // u16
constexpr uint32_t kNextLeafOff = kPageHeaderSize + 4;  // u32
constexpr uint32_t kEntriesOff = kPageHeaderSize + 8;

constexpr uint16_t kLeaf = 1;
constexpr uint16_t kInner = 2;

constexpr uint32_t kLeafEntrySize = 16;  // i64 key + u64 value
constexpr uint32_t kInnerEntrySize = 12; // i64 key + u32 child

uint16_t NodeType(const char* page) { return DecodeFixed16(page + kNodeTypeOff); }
uint16_t Count(const char* page) { return DecodeFixed16(page + kCountOff); }
void SetCount(char* page, uint16_t n) { EncodeFixed16(page + kCountOff, n); }
PageId NextLeaf(const char* page) { return DecodeFixed32(page + kNextLeafOff); }
void SetNextLeaf(char* page, PageId id) { EncodeFixed32(page + kNextLeafOff, id); }

int64_t LeafKey(const char* page, uint32_t i) {
  return static_cast<int64_t>(DecodeFixed64(page + kEntriesOff + i * kLeafEntrySize));
}
uint64_t LeafValue(const char* page, uint32_t i) {
  return DecodeFixed64(page + kEntriesOff + i * kLeafEntrySize + 8);
}
void SetLeafEntry(char* page, uint32_t i, int64_t key, uint64_t value) {
  EncodeFixed64(page + kEntriesOff + i * kLeafEntrySize, static_cast<uint64_t>(key));
  EncodeFixed64(page + kEntriesOff + i * kLeafEntrySize + 8, value);
}
void MoveLeafEntries(char* dst, uint32_t di, const char* src, uint32_t si,
                     uint32_t n) {
  std::memmove(dst + kEntriesOff + di * kLeafEntrySize,
               src + kEntriesOff + si * kLeafEntrySize, n * kLeafEntrySize);
}

// Inner node: child0 at kEntriesOff, entries after it.
PageId InnerChild0(const char* page) { return DecodeFixed32(page + kEntriesOff); }
void SetInnerChild0(char* page, PageId id) { EncodeFixed32(page + kEntriesOff, id); }
int64_t InnerKey(const char* page, uint32_t i) {
  return static_cast<int64_t>(
      DecodeFixed64(page + kEntriesOff + 4 + i * kInnerEntrySize));
}
PageId InnerChild(const char* page, uint32_t i) {
  return DecodeFixed32(page + kEntriesOff + 4 + i * kInnerEntrySize + 8);
}
void SetInnerEntry(char* page, uint32_t i, int64_t key, PageId child) {
  EncodeFixed64(page + kEntriesOff + 4 + i * kInnerEntrySize,
                static_cast<uint64_t>(key));
  EncodeFixed32(page + kEntriesOff + 4 + i * kInnerEntrySize + 8, child);
}
void MoveInnerEntries(char* dst, uint32_t di, const char* src, uint32_t si,
                      uint32_t n) {
  std::memmove(dst + kEntriesOff + 4 + di * kInnerEntrySize,
               src + kEntriesOff + 4 + si * kInnerEntrySize,
               n * kInnerEntrySize);
}

/// First index i in the leaf with key(i) >= key (lower bound).
uint32_t LeafLowerBound(const char* page, int64_t key) {
  uint32_t lo = 0, hi = Count(page);
  while (lo < hi) {
    const uint32_t mid = (lo + hi) / 2;
    if (LeafKey(page, mid) < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

/// Child to descend into when INSERTING `key` (right-biased: equal keys go
/// right of the separator, the classic rule).
uint32_t InnerChildIndexFor(const char* page, int64_t key) {
  // Returns 0 for child0, i+1 for entry i's child.
  uint32_t lo = 0, hi = Count(page);
  while (lo < hi) {
    const uint32_t mid = (lo + hi) / 2;
    if (InnerKey(page, mid) <= key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

/// Child to descend into when SEARCHING `key` (left-biased): duplicates of a
/// key can straddle a split, so lookups start at the leftmost leaf that may
/// hold the key and then walk right along the leaf chain.
uint32_t InnerChildIndexForFind(const char* page, int64_t key) {
  uint32_t lo = 0, hi = Count(page);
  while (lo < hi) {
    const uint32_t mid = (lo + hi) / 2;
    if (InnerKey(page, mid) < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

PageId ChildAt(const char* page, uint32_t idx) {
  return idx == 0 ? InnerChild0(page) : InnerChild(page, idx - 1);
}

}  // namespace

uint32_t BPlusTree::LeafCapacity() const {
  return (page_size() - kEntriesOff) / kLeafEntrySize;
}

uint32_t BPlusTree::InnerCapacity() const {
  return (page_size() - kEntriesOff - 4) / kInnerEntrySize;
}

Result<PageId> BPlusTree::NewNode(bool leaf) {
  STARFISH_ASSIGN_OR_RETURN(PageId id,
                            segment_->AllocatePage(PageType::kIndex));
  STARFISH_ASSIGN_OR_RETURN(PageGuard guard, segment_->buffer()->Fix(id));
  EncodeFixed16(guard.data() + kNodeTypeOff, leaf ? kLeaf : kInner);
  SetCount(guard.data(), 0);
  SetNextLeaf(guard.data(), kInvalidPageId);
  guard.MarkDirty();
  ++node_pages_;
  return id;
}

Status BPlusTree::Insert(int64_t key, uint64_t value) {
  if (root_ == kInvalidPageId) {
    STARFISH_ASSIGN_OR_RETURN(root_, NewNode(/*leaf=*/true));
    height_ = 1;
  }
  SplitResult split;
  STARFISH_RETURN_NOT_OK(InsertRec(root_, key, value, &split));
  if (split.split) {
    STARFISH_ASSIGN_OR_RETURN(PageId new_root, NewNode(/*leaf=*/false));
    STARFISH_ASSIGN_OR_RETURN(PageGuard guard,
                              segment_->buffer()->Fix(new_root));
    SetInnerChild0(guard.data(), root_);
    SetInnerEntry(guard.data(), 0, split.separator, split.right);
    SetCount(guard.data(), 1);
    guard.MarkDirty();
    root_ = new_root;
    ++height_;
  }
  ++size_;
  return Status::OK();
}

Status BPlusTree::InsertRec(PageId node, int64_t key, uint64_t value,
                            SplitResult* out) {
  out->split = false;
  STARFISH_ASSIGN_OR_RETURN(PageGuard guard, segment_->buffer()->Fix(node));
  char* page = guard.data();

  if (NodeType(page) == kLeaf) {
    const uint32_t n = Count(page);
    const uint32_t pos = LeafLowerBound(page, key);
    if (n < LeafCapacity()) {
      MoveLeafEntries(page, pos + 1, page, pos, n - pos);
      SetLeafEntry(page, pos, key, value);
      SetCount(page, static_cast<uint16_t>(n + 1));
      guard.MarkDirty();
      return Status::OK();
    }
    // Split the leaf; then insert into the proper half.
    STARFISH_ASSIGN_OR_RETURN(PageId right_id, NewNode(/*leaf=*/true));
    STARFISH_ASSIGN_OR_RETURN(PageGuard rguard,
                              segment_->buffer()->Fix(right_id));
    char* right = rguard.data();
    const uint32_t keep = n / 2;
    MoveLeafEntries(right, 0, page, keep, n - keep);
    SetCount(right, static_cast<uint16_t>(n - keep));
    SetCount(page, static_cast<uint16_t>(keep));
    SetNextLeaf(right, NextLeaf(page));
    SetNextLeaf(page, right_id);
    const int64_t sep = LeafKey(right, 0);
    char* target = key < sep ? page : right;
    const uint32_t tn = Count(target);
    const uint32_t tpos = LeafLowerBound(target, key);
    MoveLeafEntries(target, tpos + 1, target, tpos, tn - tpos);
    SetLeafEntry(target, tpos, key, value);
    SetCount(target, static_cast<uint16_t>(tn + 1));
    guard.MarkDirty();
    rguard.MarkDirty();
    out->split = true;
    out->separator = sep;
    out->right = right_id;
    return Status::OK();
  }

  // Inner node.
  const uint32_t idx = InnerChildIndexFor(page, key);
  const PageId child = ChildAt(page, idx);
  SplitResult child_split;
  // Release our pin while descending? Keep it: height <= 4, pool >= 50.
  STARFISH_RETURN_NOT_OK(InsertRec(child, key, value, &child_split));
  if (!child_split.split) return Status::OK();

  const uint32_t n = Count(page);
  if (n < InnerCapacity()) {
    MoveInnerEntries(page, idx + 1, page, idx, n - idx);
    SetInnerEntry(page, idx, child_split.separator, child_split.right);
    SetCount(page, static_cast<uint16_t>(n + 1));
    guard.MarkDirty();
    return Status::OK();
  }
  // Split the inner node. Middle key moves up.
  STARFISH_ASSIGN_OR_RETURN(PageId right_id, NewNode(/*leaf=*/false));
  STARFISH_ASSIGN_OR_RETURN(PageGuard rguard, segment_->buffer()->Fix(right_id));
  char* right = rguard.data();
  const uint32_t mid = n / 2;
  const int64_t up_key = InnerKey(page, mid);
  SetInnerChild0(right, InnerChild(page, mid));
  MoveInnerEntries(right, 0, page, mid + 1, n - mid - 1);
  SetCount(right, static_cast<uint16_t>(n - mid - 1));
  SetCount(page, static_cast<uint16_t>(mid));
  // Insert the pending separator into the proper half.
  char* target = child_split.separator < up_key ? page : right;
  const uint32_t tn = Count(target);
  uint32_t tidx = InnerChildIndexFor(target, child_split.separator);
  MoveInnerEntries(target, tidx + 1, target, tidx, tn - tidx);
  SetInnerEntry(target, tidx, child_split.separator, child_split.right);
  SetCount(target, static_cast<uint16_t>(tn + 1));
  guard.MarkDirty();
  rguard.MarkDirty();
  out->split = true;
  out->separator = up_key;
  out->right = right_id;
  return Status::OK();
}

Result<std::vector<uint64_t>> BPlusTree::Find(int64_t key) const {
  std::vector<uint64_t> out;
  if (root_ == kInvalidPageId) return out;
  PageId node = root_;
  for (;;) {
    STARFISH_ASSIGN_OR_RETURN(PageGuard guard, segment_->buffer()->Fix(node));
    const char* page = guard.data();
    if (NodeType(page) == kLeaf) break;
    node = ChildAt(page, InnerChildIndexForFind(page, key));
  }
  // Walk leaves right while keys match (duplicates may spill over).
  while (node != kInvalidPageId) {
    STARFISH_ASSIGN_OR_RETURN(PageGuard guard, segment_->buffer()->Fix(node));
    const char* page = guard.data();
    const uint32_t n = Count(page);
    uint32_t i = LeafLowerBound(page, key);
    if (i == n) {
      node = NextLeaf(page);
      continue;
    }
    bool past = false;
    for (; i < n; ++i) {
      if (LeafKey(page, i) != key) {
        past = true;
        break;
      }
      out.push_back(LeafValue(page, i));
    }
    if (past) break;
    node = NextLeaf(page);
  }
  return out;
}

Status BPlusTree::Delete(int64_t key, uint64_t value) {
  if (root_ == kInvalidPageId) return Status::NotFound("empty tree");
  PageId node = root_;
  for (;;) {
    STARFISH_ASSIGN_OR_RETURN(PageGuard guard, segment_->buffer()->Fix(node));
    const char* page = guard.data();
    if (NodeType(page) == kLeaf) break;
    node = ChildAt(page, InnerChildIndexForFind(page, key));
  }
  while (node != kInvalidPageId) {
    STARFISH_ASSIGN_OR_RETURN(PageGuard guard, segment_->buffer()->Fix(node));
    char* page = guard.data();
    const uint32_t n = Count(page);
    uint32_t i = LeafLowerBound(page, key);
    if (i == n) {
      node = NextLeaf(page);
      continue;
    }
    for (; i < n && LeafKey(page, i) == key; ++i) {
      if (LeafValue(page, i) == value) {
        MoveLeafEntries(page, i, page, i + 1, n - i - 1);
        SetCount(page, static_cast<uint16_t>(n - 1));
        guard.MarkDirty();
        --size_;
        return Status::OK();
      }
    }
    if (i < n) return Status::NotFound("(key, value) pair not in tree");
    node = NextLeaf(page);
  }
  return Status::NotFound("(key, value) pair not in tree");
}

Status BPlusTree::Scan(
    const std::function<Status(int64_t, uint64_t)>& fn) const {
  if (root_ == kInvalidPageId) return Status::OK();
  // Descend to the leftmost leaf.
  PageId node = root_;
  for (;;) {
    STARFISH_ASSIGN_OR_RETURN(PageGuard guard, segment_->buffer()->Fix(node));
    const char* page = guard.data();
    if (NodeType(page) == kLeaf) break;
    node = ChildAt(page, 0);
  }
  while (node != kInvalidPageId) {
    STARFISH_ASSIGN_OR_RETURN(PageGuard guard, segment_->buffer()->Fix(node));
    const char* page = guard.data();
    const uint32_t n = Count(page);
    for (uint32_t i = 0; i < n; ++i) {
      STARFISH_RETURN_NOT_OK(fn(LeafKey(page, i), LeafValue(page, i)));
    }
    node = NextLeaf(page);
  }
  return Status::OK();
}

}  // namespace starfish
