#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "storage/segment.h"
#include "util/coding.h"
#include "util/status.h"

/// \file bplus_tree.h
/// A page-based B+-tree with metered I/O.
///
/// The paper assumes index accesses are free (in-memory tables). This tree
/// stores its nodes in ordinary pages of a segment, so probing it costs
/// buffer fixes and, on cold pages, physical reads — the ablation bench
/// `bench_ablation_index` uses it to quantify what the paper's assumption
/// hides.
///
/// Design: fixed-size entries (i64 key, u64 value), duplicate keys allowed;
/// leaves are chained for in-order scans; deletes are lazy (no rebalancing;
/// underfull nodes are tolerated — the classic engineering simplification,
/// fine for the workloads here, which are insert-then-read).
///
/// Node layout after the 36-byte page header:
///   u16 node_type (1 = leaf, 2 = inner), u16 count, u32 next_leaf
///   leaf entries:  (i64 key, u64 value) pairs, sorted by key
///   inner layout:  u32 child0, then (i64 key, u32 child) pairs;
///                  child_i holds keys >= key_i (and < key_{i+1})

namespace starfish {

/// Persistent B+-tree index over one segment.
class BPlusTree {
 public:
  explicit BPlusTree(Segment* segment) : segment_(segment) {}

  /// Inserts a (key, value) pair. Duplicate keys are allowed; duplicate
  /// (key, value) pairs are stored twice.
  Status Insert(int64_t key, uint64_t value);

  /// All values stored under `key` (empty vector if none).
  Result<std::vector<uint64_t>> Find(int64_t key) const;

  /// Removes one occurrence of (key, value). NotFound if absent.
  Status Delete(int64_t key, uint64_t value);

  /// In-order traversal of all entries.
  Status Scan(const std::function<Status(int64_t, uint64_t)>& fn) const;

  /// Number of live entries.
  uint64_t size() const { return size_; }

  /// Tree height (0 = empty, 1 = single leaf, ...).
  uint32_t height() const { return height_; }

  /// Pages currently used by nodes.
  uint64_t node_pages() const { return node_pages_; }

  /// The segment holding the tree's nodes (write-latch set assembly).
  Segment* segment() const { return segment_; }

  /// Serializes the catalog entry (root page + shape counters); the node
  /// pages themselves live in the segment.
  void SaveState(std::string* out) const {
    PutFixed32(out, root_);
    PutFixed64(out, size_);
    PutFixed32(out, height_);
    PutFixed64(out, node_pages_);
  }

  /// Restores the catalog entry written by SaveState. The tree must wrap
  /// the same (catalog-restored) segment the state was saved from.
  Status LoadState(std::string_view* in) {
    if (!GetFixed32(in, &root_) || !GetFixed64(in, &size_) ||
        !GetFixed32(in, &height_) || !GetFixed64(in, &node_pages_)) {
      return Status::Corruption("b+-tree catalog: truncated state");
    }
    return Status::OK();
  }

 private:
  struct SplitResult {
    bool split = false;
    int64_t separator = 0;
    PageId right = kInvalidPageId;
  };

  uint32_t page_size() const { return segment_->buffer()->disk()->page_size(); }

  uint32_t LeafCapacity() const;
  uint32_t InnerCapacity() const;

  Result<PageId> NewNode(bool leaf);
  Status InsertRec(PageId node, int64_t key, uint64_t value, SplitResult* out);

  Segment* segment_;
  PageId root_ = kInvalidPageId;  // kept in memory, like a catalog entry
  uint64_t size_ = 0;
  uint32_t height_ = 0;
  uint64_t node_pages_ = 0;
};

}  // namespace starfish
