#include "benchmark/station_schema.h"

namespace starfish::bench {

std::shared_ptr<const Schema> MakeStationSchema() {
  auto connection = SchemaBuilder("Connection")
                        .AddInt32("LineNr")
                        .AddInt32("KeyConnection")
                        .AddLink("OidConnection")
                        .AddString("DepartureTimes")
                        .Build();
  auto platform = SchemaBuilder("Platform")
                      .AddInt32("PlatformNr")
                      .AddInt32("NoLine")
                      .AddInt32("TicketCode")
                      .AddString("Information")
                      .AddRelation("Connection", connection)
                      .Build();
  auto sightseeing = SchemaBuilder("Sightseeing")
                         .AddInt32("SeeingNr")
                         .AddString("Description")
                         .AddString("Location")
                         .AddString("History")
                         .AddString("Remarks")
                         .Build();
  return SchemaBuilder("Station")
      .AddInt32("Key")
      .AddInt32("NoPlatform")
      .AddInt32("NoSeeing")
      .AddString("Name")
      .AddRelation("Platform", platform)
      .AddRelation("Sightseeing", sightseeing)
      .Build();
}

}  // namespace starfish::bench
