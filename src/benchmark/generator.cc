#include "benchmark/generator.h"

#include <algorithm>

#include "nf2/serializer.h"
#include "util/random.h"

namespace starfish::bench {

Result<BenchmarkDatabase> BenchmarkDatabase::Generate(
    const GeneratorConfig& config) {
  if (config.n_objects == 0) {
    return Status::InvalidArgument("database needs at least one object");
  }
  BenchmarkDatabase db;
  db.config_ = config;
  db.schema_ = MakeStationSchema();
  db.objects_.reserve(config.n_objects);

  Rng rng(config.seed);
  uint64_t total_platforms = 0, total_connections = 0, total_sightseeings = 0;
  double total_bytes = 0;

  ObjectSerializer serializer(db.schema_);

  for (uint64_t i = 0; i < config.n_objects; ++i) {
    BenchmarkObject object;
    object.ref = i;
    object.key = static_cast<int64_t>(i) + 1;

    // Platforms: `fanout` slots, each created with creation_probability.
    std::vector<Tuple> platforms;
    uint32_t connections_here = 0;
    for (uint32_t slot = 0; slot < config.fanout; ++slot) {
      if (!rng.Bernoulli(config.creation_probability)) continue;
      // Railroads per platform: `fanout` slots; each existing railroad
      // offers `fanout` connection slots, again Bernoulli-created.
      std::vector<Tuple> connections;
      uint32_t railroads = 0;
      for (uint32_t rail = 0; rail < config.fanout; ++rail) {
        if (!rng.Bernoulli(config.creation_probability)) continue;
        ++railroads;
        for (uint32_t c = 0; c < config.fanout; ++c) {
          if (!rng.Bernoulli(config.creation_probability)) continue;
          const uint64_t target = rng.Uniform(config.n_objects);
          Tuple connection;
          connection.values.push_back(Value::Int32(static_cast<int32_t>(rail)));
          connection.values.push_back(
              Value::Int32(static_cast<int32_t>(target) + 1));  // KeyConnection
          connection.values.push_back(Value::Link(target));     // OidConnection
          connection.values.push_back(
              Value::Str(rng.RandomString(config.string_bytes)));
          connections.push_back(std::move(connection));
        }
      }
      connections_here += static_cast<uint32_t>(connections.size());
      Tuple platform;
      platform.values.push_back(Value::Int32(static_cast<int32_t>(slot)));
      platform.values.push_back(Value::Int32(static_cast<int32_t>(railroads)));
      platform.values.push_back(
          Value::Int32(static_cast<int32_t>(rng.Uniform(100000))));
      platform.values.push_back(
          Value::Str(rng.RandomString(config.string_bytes)));
      platform.values.push_back(Value::Relation(std::move(connections)));
      platforms.push_back(std::move(platform));
    }

    // Sightseeings: uniform count in [0, max_sightseeings].
    const uint32_t n_sights = static_cast<uint32_t>(
        rng.Uniform(static_cast<uint64_t>(config.max_sightseeings) + 1));
    std::vector<Tuple> sightseeings;
    sightseeings.reserve(n_sights);
    for (uint32_t s = 0; s < n_sights; ++s) {
      Tuple sight;
      sight.values.push_back(Value::Int32(static_cast<int32_t>(s)));
      for (int str = 0; str < 4; ++str) {
        sight.values.push_back(Value::Str(rng.RandomString(config.string_bytes)));
      }
      sightseeings.push_back(std::move(sight));
    }

    total_platforms += platforms.size();
    total_connections += connections_here;
    total_sightseeings += n_sights;
    db.stats_.max_platforms = std::max(
        db.stats_.max_platforms, static_cast<uint32_t>(platforms.size()));
    db.stats_.max_connections =
        std::max(db.stats_.max_connections, connections_here);

    Tuple station;
    station.values.push_back(Value::Int32(static_cast<int32_t>(object.key)));
    station.values.push_back(
        Value::Int32(static_cast<int32_t>(platforms.size())));
    station.values.push_back(Value::Int32(static_cast<int32_t>(n_sights)));
    station.values.push_back(Value::Str(rng.RandomString(config.string_bytes)));
    station.values.push_back(Value::Relation(std::move(platforms)));
    station.values.push_back(Value::Relation(std::move(sightseeings)));
    object.tuple = std::move(station);

    STARFISH_ASSIGN_OR_RETURN(std::vector<RecordRegion> regions,
                              serializer.ToRegions(object.tuple));
    for (const RecordRegion& region : regions) {
      total_bytes += static_cast<double>(region.bytes.size());
    }
    db.objects_.push_back(std::move(object));
  }

  const double n = static_cast<double>(config.n_objects);
  db.stats_.avg_platforms = static_cast<double>(total_platforms) / n;
  db.stats_.avg_connections = static_cast<double>(total_connections) / n;
  db.stats_.avg_sightseeings = static_cast<double>(total_sightseeings) / n;
  db.stats_.avg_object_bytes = total_bytes / n;
  return db;
}

Status BenchmarkDatabase::LoadInto(StorageModel* model,
                                   StorageEngine* engine) const {
  for (const BenchmarkObject& object : objects_) {
    STARFISH_RETURN_NOT_OK(model->Insert(object.ref, object.tuple));
  }
  // "Pages are written to the database relations only ... at disconnect":
  // the load ends with a flush, and measurements start cold.
  STARFISH_RETURN_NOT_OK(engine->Flush());
  STARFISH_RETURN_NOT_OK(engine->DropCache());
  engine->ResetStats();
  return Status::OK();
}

}  // namespace starfish::bench
