#include "benchmark/runner.h"

namespace starfish::bench {

Result<ModelRunResult> BenchmarkRunner::RunOne(StorageModelKind kind,
                                               const BenchmarkDatabase& db,
                                               const BufferOptions& buffer,
                                               const QueryConfig& query) {
  StorageEngineOptions engine_options;
  engine_options.buffer = buffer;
  StorageEngine engine(engine_options);

  ModelConfig config;
  config.schema = db.schema();
  config.key_attr_index = 0;
  STARFISH_ASSIGN_OR_RETURN(std::unique_ptr<StorageModel> model,
                            CreateStorageModel(kind, &engine, config));
  STARFISH_RETURN_NOT_OK(db.LoadInto(model.get(), &engine));

  QueryRunner runner(model.get(), &engine, &db, query);
  ModelRunResult result;
  result.kind = kind;
  STARFISH_ASSIGN_OR_RETURN(result.queries, runner.RunAll());
  return result;
}

Result<std::vector<ModelRunResult>> BenchmarkRunner::Run() {
  STARFISH_ASSIGN_OR_RETURN(db_, BenchmarkDatabase::Generate(options_.generator));
  std::vector<ModelRunResult> results;
  for (StorageModelKind kind : options_.kinds) {
    STARFISH_ASSIGN_OR_RETURN(
        ModelRunResult result,
        RunOne(kind, db_, options_.buffer, options_.query));
    results.push_back(std::move(result));
  }
  return results;
}

}  // namespace starfish::bench
