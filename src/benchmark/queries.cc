#include "benchmark/queries.h"

#include "nf2/projection.h"

namespace starfish::bench {

QueryRunner::QueryRunner(StorageModel* model, StorageEngine* engine,
                         const BenchmarkDatabase* db, QueryConfig config)
    : model_(model), engine_(engine), db_(db), config_(config),
      rng_(config.seed) {}

Status QueryRunner::ColdStart() {
  STARFISH_RETURN_NOT_OK(engine_->Flush());
  STARFISH_RETURN_NOT_OK(engine_->DropCache());
  engine_->ResetStats();
  return Status::OK();
}

Result<QueryMeasurement> QueryRunner::Query1a() {
  if (!model_->SupportsGetByRef()) {
    return Status::NotSupported("model has no object identifiers");
  }
  const Projection all = Projection::All(*db_->schema());
  QueryMeasurement m;
  m.normalizer = config_.q1a_samples;
  EngineStats sum;
  for (uint32_t s = 0; s < config_.q1a_samples; ++s) {
    STARFISH_RETURN_NOT_OK(ColdStart());  // resets counters
    STARFISH_RETURN_NOT_OK(model_->GetByRef(RandomRef(), all).status());
    sum.io += engine_->stats().io;
    sum.buffer.fixes += engine_->stats().buffer.fixes;
  }
  m.delta = sum;
  return m;
}

Result<QueryMeasurement> QueryRunner::Query1b() {
  const Projection all = Projection::All(*db_->schema());
  STARFISH_RETURN_NOT_OK(ColdStart());
  const int64_t key = db_->objects()[RandomRef()].key;
  STARFISH_RETURN_NOT_OK(model_->GetByKey(key, all).status());
  QueryMeasurement m;
  m.delta = engine_->stats();
  m.normalizer = 1.0;
  return m;
}

Result<QueryMeasurement> QueryRunner::Query1c() {
  const Projection all = Projection::All(*db_->schema());
  STARFISH_RETURN_NOT_OK(ColdStart());
  uint64_t seen = 0;
  STARFISH_RETURN_NOT_OK(model_->ScanAll(all, [&](int64_t, const Tuple&) {
    ++seen;
    return Status::OK();
  }));
  if (seen != db_->objects().size()) {
    return Status::Internal("scan returned " + std::to_string(seen) +
                            " of " + std::to_string(db_->objects().size()) +
                            " objects");
  }
  QueryMeasurement m;
  m.delta = engine_->stats();
  m.normalizer = static_cast<double>(db_->objects().size());
  return m;
}

Status QueryRunner::NavigationLoop(ObjectRef root, bool update) {
  // Wave 1: the root object's child references.
  STARFISH_ASSIGN_OR_RETURN(std::vector<std::vector<ObjectRef>> root_children,
                            model_->GetChildRefsBatch({root}));
  const std::vector<ObjectRef>& children = root_children[0];

  // Wave 2: the children's child references (the grand-children).
  STARFISH_ASSIGN_OR_RETURN(std::vector<std::vector<ObjectRef>> grand_lists,
                            model_->GetChildRefsBatch(children));
  std::vector<ObjectRef> grands;
  for (const auto& list : grand_lists) {
    grands.insert(grands.end(), list.begin(), list.end());
  }

  // Wave 3: the grand-children's root records.
  STARFISH_ASSIGN_OR_RETURN(std::vector<Tuple> roots,
                            model_->GetRootRecordsBatch(grands));

  if (update) {
    // "The root record of the 0-64 grand-children is modified. We update
    // atomic attributes, that is, the object structure is not changed."
    for (size_t i = 0; i < grands.size(); ++i) {
      Tuple new_root = roots[i];
      const int32_t old_value =
          new_root.values[config_.update_attr_index].as_int32();
      new_root.values[config_.update_attr_index] = Value::Int32(old_value + 1);
      STARFISH_RETURN_NOT_OK(model_->UpdateRootRecord(grands[i], new_root));
    }
  }
  return Status::OK();
}

Result<QueryMeasurement> QueryRunner::Query2a() {
  QueryMeasurement m;
  m.normalizer = config_.q2a_samples;
  EngineStats sum;
  for (uint32_t s = 0; s < config_.q2a_samples; ++s) {
    STARFISH_RETURN_NOT_OK(ColdStart());
    STARFISH_RETURN_NOT_OK(NavigationLoop(RandomRef(), /*update=*/false));
    sum.io += engine_->stats().io;
    sum.buffer.fixes += engine_->stats().buffer.fixes;
  }
  m.delta = sum;
  return m;
}

Result<QueryMeasurement> QueryRunner::Query2b() {
  STARFISH_RETURN_NOT_OK(ColdStart());
  for (uint32_t loop = 0; loop < config_.loops; ++loop) {
    STARFISH_RETURN_NOT_OK(NavigationLoop(RandomRef(), /*update=*/false));
  }
  QueryMeasurement m;
  m.delta = engine_->stats();
  m.normalizer = config_.loops;
  return m;
}

Result<QueryMeasurement> QueryRunner::Query3a() {
  QueryMeasurement m;
  m.normalizer = config_.q2a_samples;
  EngineStats sum;
  for (uint32_t s = 0; s < config_.q2a_samples; ++s) {
    STARFISH_RETURN_NOT_OK(ColdStart());
    STARFISH_RETURN_NOT_OK(NavigationLoop(RandomRef(), /*update=*/true));
    // Query ends with the database disconnect: dirty pages reach disk.
    STARFISH_RETURN_NOT_OK(engine_->Flush());
    sum.io += engine_->stats().io;
    sum.buffer.fixes += engine_->stats().buffer.fixes;
  }
  m.delta = sum;
  return m;
}

Result<QueryMeasurement> QueryRunner::Query3b() {
  STARFISH_RETURN_NOT_OK(ColdStart());
  for (uint32_t loop = 0; loop < config_.loops; ++loop) {
    STARFISH_RETURN_NOT_OK(NavigationLoop(RandomRef(), /*update=*/true));
  }
  STARFISH_RETURN_NOT_OK(engine_->Flush());
  QueryMeasurement m;
  m.delta = engine_->stats();
  m.normalizer = config_.loops;
  return m;
}

Result<QuerySuiteResults> QueryRunner::RunAll() {
  QuerySuiteResults results;
  if (model_->SupportsGetByRef()) {
    STARFISH_ASSIGN_OR_RETURN(QueryMeasurement q1a, Query1a());
    results.q1a = q1a;
  }
  STARFISH_ASSIGN_OR_RETURN(results.q1b, Query1b());
  STARFISH_ASSIGN_OR_RETURN(results.q1c, Query1c());
  STARFISH_ASSIGN_OR_RETURN(results.q2a, Query2a());
  STARFISH_ASSIGN_OR_RETURN(results.q2b, Query2b());
  STARFISH_ASSIGN_OR_RETURN(results.q3a, Query3a());
  STARFISH_ASSIGN_OR_RETURN(results.q3b, Query3b());
  return results;
}

}  // namespace starfish::bench
