#pragma once

#include <cstdint>
#include <memory>

#include "nf2/schema.h"

/// \file station_schema.h
/// The benchmark complex object of §2 (Figure 1) and its generation
/// parameters.
///
///   COMPLEX OBJECT Station = {(            % 1500 tuples
///     Key: INT, NoPlatform: INT, NoSeeing: INT, Name: STR,   % 100 bytes
///     Platform: {(                         % 0-2 tuples, p = 80% each
///       PlatformNr: INT, NoLine: INT, TicketCode: INT, Information: STR,
///       Connection: {(                     % 0-4 tuples, p = 64% each
///         LineNr: INT, KeyConnection: INT, OidConnection: LINK,
///         DepartureTimes: STR )} )},
///     Sightseeing: {(                      % 0-15 tuples, uniform
///       SeeingNr: INT, Description: STR, Location: STR, History: STR,
///       Remarks: STR )} )}
///
/// Path ids: Station = 0, Platform = 1, Connection = 2, Sightseeing = 3.

namespace starfish::bench {

/// Generation parameters. Defaults reproduce the paper's database; the
/// variations of §5.3 (object size) and §5.5 (data skew) are single-field
/// changes.
struct GeneratorConfig {
  /// Number of Station objects (1500 in the paper; §5.4 varies it).
  uint64_t n_objects = 1500;

  /// Creation probability of platform/railroad/connection slots (§5.5
  /// changes it to 0.2).
  double creation_probability = 0.8;

  /// Fan-out: platform slots per station, railroads per platform and
  /// connections per railroad (§5.5 changes it to 8).
  uint32_t fanout = 2;

  /// Sightseeing count is uniform in [0, max_sightseeings] (§5.3 uses 0,
  /// 15 and 30).
  uint32_t max_sightseeings = 15;

  /// Length of every STR attribute (the paper uses 100-byte strings).
  uint32_t string_bytes = 100;

  /// PRNG seed — identical seeds generate identical databases.
  uint64_t seed = 19931;

  /// Expected children per station: (fanout * probability)^3 — platforms
  /// x railroads x connections, each a Bernoulli(probability) slot.
  double ExpectedChildren() const {
    const double fp = fanout * creation_probability;
    return fp * fp * fp;
  }

  /// Expected grand-children per navigation loop.
  double ExpectedGrandChildren() const {
    return ExpectedChildren() * ExpectedChildren();
  }
};

/// Builds the Station root schema (paths as documented above).
std::shared_ptr<const Schema> MakeStationSchema();

/// Attribute indexes of the Station schema, for readable query code.
struct StationAttrs {
  static constexpr size_t kKey = 0;
  static constexpr size_t kNoPlatform = 1;
  static constexpr size_t kNoSeeing = 2;
  static constexpr size_t kName = 3;
  static constexpr size_t kPlatforms = 4;
  static constexpr size_t kSightseeings = 5;
};

/// Path ids of the Station schema.
struct StationPaths {
  static constexpr PathId kStation = 0;
  static constexpr PathId kPlatform = 1;
  static constexpr PathId kConnection = 2;
  static constexpr PathId kSightseeing = 3;
};

}  // namespace starfish::bench
