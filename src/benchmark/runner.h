#pragma once

#include <memory>
#include <vector>

#include "benchmark/calibration.h"
#include "benchmark/queries.h"
#include "models/model_factory.h"

/// \file runner.h
/// End-to-end benchmark execution: generate → load → run the query suite,
/// once per storage model, each model in its own engine so measurements are
/// independent (the paper ran the models as separate DASDBS databases).

namespace starfish::bench {

/// Everything a single benchmark run needs.
struct RunnerOptions {
  GeneratorConfig generator;

  /// Buffer configuration — the paper measured with 1200 frames.
  BufferOptions buffer;

  QueryConfig query;

  /// Models to run, in table order.
  std::vector<StorageModelKind> kinds = AllStorageModelKinds();
};

/// Results of one model's full suite.
struct ModelRunResult {
  StorageModelKind kind = StorageModelKind::kDsm;
  QuerySuiteResults queries;
};

/// Runs the suite for every requested model over one generated database.
class BenchmarkRunner {
 public:
  explicit BenchmarkRunner(RunnerOptions options) : options_(std::move(options)) {}

  /// Generates (or reuses) the database and runs all models.
  Result<std::vector<ModelRunResult>> Run();

  /// The database of the last Run() (valid afterwards).
  const BenchmarkDatabase& database() const { return db_; }

  /// Runs the suite for a single kind over `db` with fresh storage.
  static Result<ModelRunResult> RunOne(StorageModelKind kind,
                                       const BenchmarkDatabase& db,
                                       const BufferOptions& buffer,
                                       const QueryConfig& query);

 private:
  RunnerOptions options_;
  BenchmarkDatabase db_;
};

}  // namespace starfish::bench
