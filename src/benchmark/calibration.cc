#include "benchmark/calibration.h"

#include <algorithm>
#include <cmath>

#include "nf2/serializer.h"

namespace starfish::bench {

Result<cost::RelationParams> CalibrateDirect(DirectModel* model,
                                             const BenchmarkDatabase& db) {
  cost::RelationParams rel;
  rel.name = model->name() + "_" + db.schema()->name();
  rel.tuples_per_object = 1.0;
  rel.total_tuples = static_cast<double>(db.objects().size());

  double sum_payload = 0, sum_stored = 0, sum_header = 0, sum_data = 0;
  double sum_private = 0;
  uint64_t large = 0;
  for (const BenchmarkObject& object : db.objects()) {
    STARFISH_ASSIGN_OR_RETURN(ComplexRecordInfo info,
                              model->RecordInfo(object.ref));
    sum_payload += info.payload_bytes;
    sum_stored += info.stored_bytes;
    sum_header += info.header_pages;
    sum_data += info.data_pages;
    sum_private += info.private_pages();
    large += info.is_small ? 0 : 1;
  }
  const double n = rel.total_tuples;
  rel.payload_bytes = sum_payload / n;
  rel.tuple_bytes = sum_stored / n;
  rel.is_large = large * 2 > db.objects().size();  // majority placement
  rel.header_pages = sum_header / n;
  rel.data_pages = sum_data / n;
  rel.p = rel.is_large ? sum_private / n : 0.0;
  rel.m = static_cast<double>(model->segment()->pages().size());
  if (!rel.is_large) {
    rel.k = std::max(1.0, rel.total_tuples / std::max(1.0, rel.m));
  }
  return rel;
}

namespace {

/// Shared flat-relation calibration: sizes from the shredded database,
/// page counts from the segment.
Result<cost::RelationParams> CalibrateFlatRelation(
    const NsmDecomposition& decomp, PathId path, Segment* segment,
    const BenchmarkDatabase& db) {
  const DecomposedRelation& rel_meta = decomp.relation(path);
  cost::RelationParams rel;
  rel.name = segment->name();
  double tuples = 0, bytes = 0;
  for (const BenchmarkObject& object : db.objects()) {
    STARFISH_ASSIGN_OR_RETURN(ShreddedObject parts, decomp.Shred(object.tuple));
    tuples += static_cast<double>(parts[path].size());
    for (const Tuple& flat : parts[path]) {
      bytes += ObjectSerializer::FlatSize(*rel_meta.flat_schema, flat);
    }
  }
  rel.total_tuples = tuples;
  rel.tuples_per_object = tuples / static_cast<double>(db.objects().size());
  rel.payload_bytes = tuples > 0 ? bytes / tuples : 0.0;
  rel.tuple_bytes = rel.payload_bytes + 5.0;  // frame byte + slot entry
  rel.m = static_cast<double>(segment->pages().size());
  rel.is_large = false;
  rel.k = rel.m > 0 ? std::max(1.0, tuples / rel.m) : 0.0;
  return rel;
}

}  // namespace

Result<std::vector<cost::RelationParams>> CalibrateNsm(
    NsmModel* model, const BenchmarkDatabase& db) {
  std::vector<cost::RelationParams> rels;
  const NsmDecomposition& decomp = model->decomposition();
  for (PathId p = 0; p < decomp.relations().size(); ++p) {
    STARFISH_ASSIGN_OR_RETURN(
        cost::RelationParams rel,
        CalibrateFlatRelation(decomp, p, model->segment(p), db));
    rels.push_back(std::move(rel));
  }
  return rels;
}

Result<std::vector<cost::RelationParams>> CalibrateDasdbsNsm(
    DasdbsNsmModel* model, const BenchmarkDatabase& db) {
  std::vector<cost::RelationParams> rels;
  const NsmDecomposition& decomp = model->decomposition();
  for (PathId p = 0; p < decomp.relations().size(); ++p) {
    cost::RelationParams rel;
    rel.name = model->segment(p)->name();
    rel.tuples_per_object = 1.0;  // one nested tuple per object per relation
    rel.total_tuples = static_cast<double>(db.objects().size());

    double sum_payload = 0, sum_stored = 0, sum_header = 0, sum_data = 0;
    double sum_private = 0;
    uint64_t large = 0;
    for (const BenchmarkObject& object : db.objects()) {
      STARFISH_ASSIGN_OR_RETURN(ComplexRecordInfo info,
                                model->RecordInfo(p, object.key));
      sum_payload += info.payload_bytes;
      sum_stored += info.stored_bytes;
      sum_header += info.header_pages;
      sum_data += info.data_pages;
      sum_private += info.private_pages();
      large += info.is_small ? 0 : 1;
    }
    const double n = rel.total_tuples;
    rel.payload_bytes = sum_payload / n;
    rel.tuple_bytes = sum_stored / n;
    rel.is_large = large * 2 > db.objects().size();
    rel.header_pages = sum_header / n;
    rel.data_pages = sum_data / n;
    rel.p = rel.is_large ? sum_private / n : 0.0;
    rel.m = static_cast<double>(model->segment(p)->pages().size());
    if (!rel.is_large) {
      rel.k = std::max(1.0, rel.total_tuples / std::max(1.0, rel.m));
    }
    rels.push_back(std::move(rel));
  }
  return rels;
}

Result<cost::WorkloadParams> DeriveWorkloadParams(const BenchmarkDatabase& db,
                                                  double loops,
                                                  double page_bytes) {
  cost::WorkloadParams w;
  w.n_objects = static_cast<double>(db.objects().size());
  w.loops = loops;
  w.page_bytes = page_bytes;
  // Drawn (not nominal) averages, like the paper reports.
  w.avg_children = db.stats().avg_connections;
  w.avg_grandchildren = w.avg_children * w.avg_children;

  // Bytes of the navigation projection (root + link paths + their
  // ancestors) and of the root record, averaged over the generated objects.
  const Schema& root_schema = *db.schema();
  std::vector<bool> nav_path(root_schema.path_count(), false);
  nav_path[kRootPath] = true;
  for (PathId p = 0; p < root_schema.path_count(); ++p) {
    bool has_link = false;
    for (const Attribute& attr : root_schema.path(p).schema->attributes()) {
      if (attr.type == AttrType::kLink) has_link = true;
    }
    for (PathId cur = p; has_link && !nav_path[cur];
         cur = root_schema.path(cur).parent) {
      nav_path[cur] = true;
    }
  }
  ObjectSerializer serializer(db.schema());
  double nav_bytes = 0, root_bytes = 0;
  for (const BenchmarkObject& object : db.objects()) {
    STARFISH_ASSIGN_OR_RETURN(std::vector<RecordRegion> regions,
                              serializer.ToRegions(object.tuple));
    for (const RecordRegion& region : regions) {
      const PathId path = ObjectSerializer::TagPath(region.tag);
      if (path == kRootPath) root_bytes += region.bytes.size();
      if (nav_path[path]) nav_bytes += region.bytes.size();
    }
  }
  w.nav_bytes = nav_bytes / w.n_objects;
  w.root_bytes = root_bytes / w.n_objects;
  return w;
}

cost::NormalizedLayout DeriveNormalizedLayout(const NsmDecomposition& decomp) {
  cost::NormalizedLayout layout;
  layout.root_index = kRootPath;
  for (PathId p = 0; p < decomp.relations().size(); ++p) {
    if (decomp.relation(p).has_links) layout.link_indexes.push_back(p);
  }
  return layout;
}

}  // namespace starfish::bench
