#pragma once

#include <vector>

#include "benchmark/generator.h"
#include "cost/analytical_model.h"
#include "models/dasdbs_nsm_model.h"
#include "models/direct_model.h"
#include "models/nsm_model.h"

/// \file calibration.h
/// Derives the analytical-model inputs (Table 2: S_tuple, k, p, m per
/// relation) from a loaded database — "these sizes were found by analyzing
/// the DASDBS storage structures" is reproduced by analyzing *our* storage
/// structures the same way.

namespace starfish::bench {

/// Relation parameters of a loaded direct model (one relation).
Result<cost::RelationParams> CalibrateDirect(DirectModel* model,
                                             const BenchmarkDatabase& db);

/// Relation parameters of a loaded NSM model (one entry per path).
Result<std::vector<cost::RelationParams>> CalibrateNsm(
    NsmModel* model, const BenchmarkDatabase& db);

/// Relation parameters of a loaded DASDBS-NSM model (one entry per path).
Result<std::vector<cost::RelationParams>> CalibrateDasdbsNsm(
    DasdbsNsmModel* model, const BenchmarkDatabase& db);

/// Workload parameters for the analytical model, derived from the database
/// (drawn averages, serialized byte sizes of the navigation projection).
Result<cost::WorkloadParams> DeriveWorkloadParams(const BenchmarkDatabase& db,
                                                  double loops,
                                                  double page_bytes);

/// Role assignment of the decomposed relations (root / link-bearing).
cost::NormalizedLayout DeriveNormalizedLayout(const NsmDecomposition& decomp);

}  // namespace starfish::bench
