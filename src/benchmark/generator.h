#pragma once

#include <memory>
#include <vector>

#include "benchmark/station_schema.h"
#include "models/storage_model.h"
#include "nf2/value.h"
#include "util/status.h"

/// \file generator.h
/// Deterministic generation of the benchmark database (§2.1).

namespace starfish::bench {

/// One generated object with its identities.
struct BenchmarkObject {
  ObjectRef ref = 0;  ///< logical object number (also the LINK payload)
  int64_t key = 0;    ///< Station.Key
  Tuple tuple;
};

/// Distribution statistics of a generated database — the paper reports the
/// drawn averages (e.g. "1.59 Platforms, 4.04 Connections, 7.64
/// Sightseeings") next to the expectations.
struct DatabaseStats {
  double avg_platforms = 0;
  double avg_connections = 0;
  double avg_sightseeings = 0;
  uint32_t max_platforms = 0;
  uint32_t max_connections = 0;
  double avg_object_bytes = 0;  ///< serialized payload bytes per object
};

/// The generated benchmark database (logical objects; models load it).
class BenchmarkDatabase {
 public:
  /// Generates `config.n_objects` Station objects. Deterministic in the
  /// seed; inter-object references are uniform over all objects.
  static Result<BenchmarkDatabase> Generate(const GeneratorConfig& config);

  const GeneratorConfig& config() const { return config_; }
  const std::shared_ptr<const Schema>& schema() const { return schema_; }
  const std::vector<BenchmarkObject>& objects() const { return objects_; }
  const DatabaseStats& stats() const { return stats_; }

  /// Loads every object into `model` (in ref order) and flushes the engine.
  Status LoadInto(StorageModel* model, StorageEngine* engine) const;

 private:
  GeneratorConfig config_;
  std::shared_ptr<const Schema> schema_;
  std::vector<BenchmarkObject> objects_;
  DatabaseStats stats_;
};

}  // namespace starfish::bench
