#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "benchmark/generator.h"
#include "models/storage_model.h"
#include "util/random.h"

/// \file queries.h
/// The benchmark queries of §2.2, written once against the StorageModel
/// interface.
///
///   1a — retrieve one object by reference (address/OID)
///   1b — retrieve one object by key value
///   1c — retrieve every object; values normalized per object
///   2a — one navigation loop: a random object, its children (avg 4.1),
///        their children's root records (avg 16.7); projections push down
///        ("only the attribute tuples that are needed will be projected")
///   2b — `loops` navigation loops back to back; values per loop
///   3a/3b — as 2a/2b plus an update of each grand-child's root record,
///        ending with the database disconnect (flush)
///
/// Navigation is set-oriented: each wave of objects is resolved with one
/// batch call, so models without addresses answer a wave with one relation
/// scan (this is what the paper's NSM fix counts imply: ~1,240 fixes per
/// loop = two Connection-relation scans plus one Station scan).

namespace starfish::bench {

/// Counter deltas of one query, plus the normalizer the paper divides by.
struct QueryMeasurement {
  EngineStats delta;
  double normalizer = 1.0;

  double PagesRead() const {
    return static_cast<double>(delta.io.pages_read) / normalizer;
  }
  double PagesWritten() const {
    return static_cast<double>(delta.io.pages_written) / normalizer;
  }
  /// The paper's X_IO_pages (reads + writes).
  double Pages() const {
    return static_cast<double>(delta.io.TotalPages()) / normalizer;
  }
  /// The paper's X_IO_calls.
  double Calls() const {
    return static_cast<double>(delta.io.TotalCalls()) / normalizer;
  }
  /// The paper's buffer fixes (Table 6).
  double Fixes() const {
    return static_cast<double>(delta.buffer.fixes) / normalizer;
  }
};

/// Execution parameters of the query suite.
struct QueryConfig {
  uint64_t seed = 42424201;

  /// Objects sampled (cold buffer each) for query 1a.
  uint32_t q1a_samples = 50;

  /// Navigation roots sampled (cold buffer each) for queries 2a/3a.
  uint32_t q2a_samples = 20;

  /// Consecutive loops for queries 2b/3b (300 in the paper).
  uint32_t loops = 300;

  /// Root attribute updated by query 3 (must be Int32 and not the key).
  size_t update_attr_index = 1;
};

/// Results of the full suite; q1a is absent for plain NSM.
struct QuerySuiteResults {
  std::optional<QueryMeasurement> q1a;
  QueryMeasurement q1b, q1c, q2a, q2b, q3a, q3b;
};

/// Runs the benchmark queries against one loaded model.
class QueryRunner {
 public:
  QueryRunner(StorageModel* model, StorageEngine* engine,
              const BenchmarkDatabase* db, QueryConfig config);

  Result<QueryMeasurement> Query1a();
  Result<QueryMeasurement> Query1b();
  Result<QueryMeasurement> Query1c();
  Result<QueryMeasurement> Query2a();
  Result<QueryMeasurement> Query2b();
  Result<QueryMeasurement> Query3a();
  Result<QueryMeasurement> Query3b();

  /// Runs the whole suite in table order.
  Result<QuerySuiteResults> RunAll();

 private:
  /// One navigation loop from `root`; updates grand-children when `update`.
  Status NavigationLoop(ObjectRef root, bool update);

  /// Uniform random object.
  ObjectRef RandomRef() {
    return rng_.Uniform(db_->objects().size());
  }

  Status ColdStart();

  StorageModel* model_;
  StorageEngine* engine_;
  const BenchmarkDatabase* db_;
  QueryConfig config_;
  Rng rng_;
};

}  // namespace starfish::bench
