#include "objcache/object_cache.h"

#include <algorithm>
#include <mutex>
#include <thread>

namespace starfish {

namespace {

/// Fixed per-entry bookkeeping charge: map node, LRU node, page-index
/// slots. A round constant — the charge only needs to keep thousands of
/// tiny entries from looking free.
constexpr size_t kEntryOverhead = 96;

uint32_t PickShardCount(uint32_t requested) {
  uint32_t n = requested;
  if (n == 0) {
    n = std::thread::hardware_concurrency();
    if (n == 0) n = 8;
  }
  uint32_t pow2 = 1;
  while (pow2 < n && pow2 < 256) pow2 <<= 1;
  return pow2;
}

}  // namespace

std::string ObjCacheStats::ToString() const {
  char buf[352];
  snprintf(buf, sizeof(buf),
           "objcache: hits=%llu misses=%llu (ratio %.3f) inserts=%llu "
           "evictions=%llu invalidations=%llu stale_drops=%llu "
           "neg_hits=%llu neg_inserts=%llu entries=%llu bytes=%llu "
           "neg_entries=%llu",
           static_cast<unsigned long long>(hits),
           static_cast<unsigned long long>(misses), HitRatio(),
           static_cast<unsigned long long>(inserts),
           static_cast<unsigned long long>(evictions),
           static_cast<unsigned long long>(invalidations),
           static_cast<unsigned long long>(stale_drops),
           static_cast<unsigned long long>(negative_hits),
           static_cast<unsigned long long>(negative_inserts),
           static_cast<unsigned long long>(entries),
           static_cast<unsigned long long>(bytes),
           static_cast<unsigned long long>(negative_entries));
  return buf;
}

/// One independent slice of the cache. Everything here is guarded by `mu`;
/// shard locks are never nested (InvalidatePages/Clear visit shards one at
/// a time).
struct ObjectCache::Shard {
  std::mutex mu;

  /// LRU order, front = coldest. Stores the keys; the map holds the
  /// iterator for O(1) touch/erase.
  std::list<ObjectRef> lru;

  struct Slot {
    ObjCacheEntryRef entry;
    std::list<ObjectRef>::iterator lru_it;
  };
  std::unordered_map<ObjectRef, Slot> map;

  /// Backing page -> refs of entries assembled from it (this shard only).
  /// Conservative: pages recorded at assembly time, entries dropped when
  /// any of them is dirtied by a write.
  std::unordered_map<PageId, std::vector<ObjectRef>> page_index;

  /// Invalidation epoch: bumped by every invalidation that could concern
  /// this shard. Lookup misses sample it; Insert refuses when it moved.
  uint64_t epoch = 0;

  /// Resident bytes charged against this shard's capacity slice.
  size_t bytes = 0;

  /// Negative side table: refs whose last model probe came back NotFound,
  /// stamped with the epoch at probe time. An entry is only believed while
  /// its stamp equals the current epoch — every write bumps the epochs, so
  /// stale verdicts die passively; they are reaped when touched or when
  /// the LRU bound pushes them out.
  std::list<ObjectRef> neg_lru;  ///< front = coldest
  struct NegSlot {
    uint64_t epoch = 0;
    std::list<ObjectRef>::iterator lru_it;
  };
  std::unordered_map<ObjectRef, NegSlot> neg_map;
};

ObjectCache::ObjectCache(const ObjCacheOptions& options) : options_(options) {
  const uint32_t n = PickShardCount(options.shard_count);
  mask_ = n - 1;
  shards_.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  shard_capacity_ = std::max<size_t>(options.capacity_bytes / n, 1);
  negative_capacity_ =
      options.negative_capacity == 0
          ? 0
          : std::max<size_t>(options.negative_capacity / n, 1);
}

ObjectCache::~ObjectCache() = default;

ObjCacheEntryRef ObjectCache::Lookup(ObjectRef ref, uint64_t* epoch_out) {
  Shard& shard = ShardOf(ref);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(ref);
  if (it == shard.map.end()) {
    stats_.misses.fetch_add(1, std::memory_order_relaxed);
    if (epoch_out != nullptr) *epoch_out = shard.epoch;
    return nullptr;
  }
  stats_.hits.fetch_add(1, std::memory_order_relaxed);
  // Touch: splice the key to the MRU end without invalidating iterators.
  shard.lru.splice(shard.lru.end(), shard.lru, it->second.lru_it);
  return it->second.entry;
}

bool ObjectCache::EraseLocked(Shard& shard, ObjectRef ref) {
  auto it = shard.map.find(ref);
  if (it == shard.map.end()) return false;
  const ObjCacheEntryRef& entry = it->second.entry;
  for (PageId page : entry->pages) {
    auto page_it = shard.page_index.find(page);
    if (page_it == shard.page_index.end()) continue;
    std::vector<ObjectRef>& refs = page_it->second;
    refs.erase(std::remove(refs.begin(), refs.end(), ref), refs.end());
    if (refs.empty()) shard.page_index.erase(page_it);
  }
  shard.bytes -= entry->bytes;
  stats_.bytes.fetch_sub(entry->bytes, std::memory_order_relaxed);
  stats_.entries.fetch_sub(1, std::memory_order_relaxed);
  shard.lru.erase(it->second.lru_it);
  shard.map.erase(it);
  return true;
}

void ObjectCache::Insert(ObjectRef ref, Tuple object, std::vector<PageId> pages,
                         uint64_t epoch) {
  // Dedup the page list once, outside the lock (Fix capture records every
  // fix, and an assembly fixes header pages repeatedly).
  std::sort(pages.begin(), pages.end());
  pages.erase(std::unique(pages.begin(), pages.end()), pages.end());

  auto entry = std::make_shared<ObjCacheEntry>();
  entry->bytes = sizeof(ObjCacheEntry) + DeepSizeOf(object) +
                 pages.size() * sizeof(PageId) + kEntryOverhead;
  entry->object = std::move(object);
  entry->pages = std::move(pages);

  Shard& shard = ShardOf(ref);
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.epoch != epoch) {
    // An invalidation ran after this assembly sampled the epoch: the pages
    // it read may have been mid-write. Never publish it.
    stats_.stale_drops.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  EraseLocked(shard, ref);
  if (entry->bytes > shard_capacity_) return;  // would evict everything
  while (shard.bytes + entry->bytes > shard_capacity_ && !shard.lru.empty()) {
    const ObjectRef victim = shard.lru.front();
    EraseLocked(shard, victim);
    stats_.evictions.fetch_add(1, std::memory_order_relaxed);
  }
  auto lru_it = shard.lru.insert(shard.lru.end(), ref);
  for (PageId page : entry->pages) {
    shard.page_index[page].push_back(ref);
  }
  shard.bytes += entry->bytes;
  stats_.bytes.fetch_add(entry->bytes, std::memory_order_relaxed);
  stats_.entries.fetch_add(1, std::memory_order_relaxed);
  stats_.inserts.fetch_add(1, std::memory_order_relaxed);
  shard.map.emplace(ref, Shard::Slot{std::move(entry), lru_it});
}

bool ObjectCache::LookupNegative(ObjectRef ref) {
  if (negative_capacity_ == 0) return false;
  Shard& shard = ShardOf(ref);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.neg_map.find(ref);
  if (it == shard.neg_map.end()) return false;
  if (it->second.epoch != shard.epoch) {
    // A write ran since the verdict was recorded: the object may exist
    // now. Reap the stale entry instead of letting the LRU carry it.
    shard.neg_lru.erase(it->second.lru_it);
    shard.neg_map.erase(it);
    stats_.negative_entries.fetch_sub(1, std::memory_order_relaxed);
    return false;
  }
  shard.neg_lru.splice(shard.neg_lru.end(), shard.neg_lru, it->second.lru_it);
  stats_.negative_hits.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void ObjectCache::InsertNegative(ObjectRef ref, uint64_t epoch) {
  if (negative_capacity_ == 0) return;
  Shard& shard = ShardOf(ref);
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.epoch != epoch) {
    // A write overlapped the model probe; its NotFound verdict may already
    // be wrong (a concurrent Put can have created the object).
    stats_.stale_drops.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  auto it = shard.neg_map.find(ref);
  if (it != shard.neg_map.end()) {
    it->second.epoch = epoch;
    shard.neg_lru.splice(shard.neg_lru.end(), shard.neg_lru,
                         it->second.lru_it);
    return;
  }
  while (shard.neg_map.size() >= negative_capacity_ &&
         !shard.neg_lru.empty()) {
    shard.neg_map.erase(shard.neg_lru.front());
    shard.neg_lru.pop_front();
    stats_.negative_entries.fetch_sub(1, std::memory_order_relaxed);
  }
  auto lru_it = shard.neg_lru.insert(shard.neg_lru.end(), ref);
  shard.neg_map.emplace(ref, Shard::NegSlot{epoch, lru_it});
  stats_.negative_inserts.fetch_add(1, std::memory_order_relaxed);
  stats_.negative_entries.fetch_add(1, std::memory_order_relaxed);
}

void ObjectCache::InvalidateRef(ObjectRef ref) {
  Shard& shard = ShardOf(ref);
  std::lock_guard<std::mutex> lock(shard.mu);
  // Bump even when absent: an in-flight assembly of `ref` may be about to
  // publish a pre-write snapshot, and the epoch is what stops it.
  ++shard.epoch;
  if (EraseLocked(shard, ref)) {
    stats_.invalidations.fetch_add(1, std::memory_order_relaxed);
  }
  // The usual caller is a write to `ref` itself — after a Put the object
  // exists, so the negative verdict must go at once (the epoch bump alone
  // would only neutralize it).
  auto neg_it = shard.neg_map.find(ref);
  if (neg_it != shard.neg_map.end()) {
    shard.neg_lru.erase(neg_it->second.lru_it);
    shard.neg_map.erase(neg_it);
    stats_.negative_entries.fetch_sub(1, std::memory_order_relaxed);
  }
}

void ObjectCache::InvalidatePages(const std::vector<PageId>& pages) {
  if (pages.empty()) return;
  std::vector<ObjectRef> victims;
  for (const auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mu);
    // Every shard's epoch moves: a write is in flight, and any concurrent
    // assembly (whatever its ref) may have read a half-applied page.
    ++shard.epoch;
    victims.clear();
    for (PageId page : pages) {
      auto it = shard.page_index.find(page);
      if (it == shard.page_index.end()) continue;
      victims.insert(victims.end(), it->second.begin(), it->second.end());
    }
    for (ObjectRef ref : victims) {
      if (EraseLocked(shard, ref)) {
        stats_.invalidations.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
}

void ObjectCache::Clear() {
  for (const auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mu);
    ++shard.epoch;
    stats_.invalidations.fetch_add(shard.map.size(),
                                   std::memory_order_relaxed);
    stats_.entries.fetch_sub(shard.map.size(), std::memory_order_relaxed);
    stats_.bytes.fetch_sub(shard.bytes, std::memory_order_relaxed);
    shard.map.clear();
    shard.lru.clear();
    shard.page_index.clear();
    shard.bytes = 0;
    stats_.negative_entries.fetch_sub(shard.neg_map.size(),
                                      std::memory_order_relaxed);
    shard.neg_map.clear();
    shard.neg_lru.clear();
  }
}

size_t ObjectCache::TotalBytes() const {
  return stats_.bytes.load(std::memory_order_relaxed);
}

namespace {

size_t DeepExtraOf(const Tuple& tuple);

size_t DeepExtraOf(const Value& value) {
  if (value.is_string()) {
    const std::string& s = value.as_string();
    // SSO strings own no heap; charge only spilled capacity.
    return s.capacity() > sizeof(std::string) ? s.capacity() : 0;
  }
  if (value.is_relation()) {
    const std::vector<Tuple>& rel = value.as_relation();
    size_t n = rel.capacity() * sizeof(Tuple);
    for (const Tuple& sub : rel) n += DeepExtraOf(sub);
    return n;
  }
  return 0;
}

size_t DeepExtraOf(const Tuple& tuple) {
  size_t n = tuple.values.capacity() * sizeof(Value);
  for (const Value& v : tuple.values) n += DeepExtraOf(v);
  return n;
}

void ProjectRec(const Schema& root, const Schema& schema, PathId path,
                const Tuple& in, const Projection& projection, Tuple* out) {
  const std::vector<Attribute>& attrs = schema.attributes();
  out->values.reserve(in.values.size());
  for (size_t i = 0; i < attrs.size() && i < in.values.size(); ++i) {
    if (attrs[i].type != AttrType::kRelation) {
      out->values.push_back(in.values[i]);
      continue;
    }
    // Unselected relation attributes come back EMPTY — the serializer's
    // partial-read contract (nf2/serializer.h).
    auto child_or = root.ChildPath(path, i);
    if (!child_or.ok() || !projection.Includes(child_or.value())) {
      out->values.push_back(Value::Relation({}));
      continue;
    }
    const PathId child = child_or.value();
    const std::vector<Tuple>& in_rel = in.values[i].as_relation();
    std::vector<Tuple> out_rel(in_rel.size());
    for (size_t t = 0; t < in_rel.size(); ++t) {
      ProjectRec(root, *attrs[i].relation, child, in_rel[t], projection,
                 &out_rel[t]);
    }
    out->values.push_back(Value::Relation(std::move(out_rel)));
  }
}

void CollectLinksRec(const Schema& schema, const Tuple& tuple,
                     std::vector<ObjectRef>* out) {
  const std::vector<Attribute>& attrs = schema.attributes();
  for (size_t i = 0; i < attrs.size() && i < tuple.values.size(); ++i) {
    if (attrs[i].type == AttrType::kLink) {
      out->push_back(tuple.values[i].as_link());
    } else if (attrs[i].type == AttrType::kRelation) {
      for (const Tuple& sub : tuple.values[i].as_relation()) {
        CollectLinksRec(*attrs[i].relation, sub, out);
      }
    }
  }
}

}  // namespace

size_t DeepSizeOf(const Tuple& tuple) {
  return sizeof(Tuple) + DeepExtraOf(tuple);
}

Tuple ProjectAssembled(const Schema& root, const Tuple& full,
                       const Projection& projection) {
  if (projection.IsAll()) return full;
  Tuple out;
  ProjectRec(root, root, kRootPath, full, projection, &out);
  return out;
}

std::vector<ObjectRef> CollectAssembledLinks(const Schema& root,
                                             const Tuple& full) {
  std::vector<ObjectRef> out;
  CollectLinksRec(root, full, &out);
  return out;
}

}  // namespace starfish
