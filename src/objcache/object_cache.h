#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "disk/page.h"
#include "nf2/projection.h"
#include "nf2/schema.h"
#include "nf2/value.h"

/// \file object_cache.h
/// The assembled-object cache tier above the page-level buffer pool.
///
/// Every Get against a complex-object store pays two costs: the physical
/// page I/Os the paper measures, and the *transformation* cost of
/// re-assembling an NF² tuple out of its page-resident regions (region
/// reads, flat-format decoding, per-attribute heap allocation). The buffer
/// pool removes the first cost for hot pages; this cache removes the second
/// for hot *objects* — a hit hands back the finished Tuple without touching
/// a single page. The ROADMAP names this second-layer cache the biggest
/// single lever for serve-heavy traffic, and it is the object-granular
/// counterpart of the paper's page-granular Fig. 6 buffer study.
///
/// Shape: a sharded, size-capped LRU map from ObjectRef to an immutable
/// cache entry holding the fully assembled object (Projection::All) plus
/// the set of buffer pages that backed the assembly. Entries are handed
/// out as shared_ptr<const Entry> — the object-level analog of a PageGuard
/// pin: an invalidation drops the cache's reference immediately, while a
/// reader that already holds the entry keeps a consistent (pre-write)
/// assembly alive until it lets go. Nothing is ever mutated in place, so a
/// reader can never observe a half-invalidated entry.
///
/// Invalidation protocol (see docs/OBJCACHE.md):
///   * Write path — the store calls InvalidatePages(dirtied) +
///     InvalidateRef(ref) after every applied write op, before the op is
///     acknowledged. Page-based invalidation is the conservative net wired
///     into the WAL write-capture machinery; ref-based invalidation is the
///     logical backbone (every store write op targets exactly one object).
///   * In-flight assemblies — a miss samples the shard's *epoch* before it
///     reads any page; Insert discards the assembly when the epoch moved.
///     Every invalidation bumps the epochs, so an assembly that overlapped
///     a write can never be published, even though it raced the writer.
///   * Crash / reopen — the cache lives and dies with the in-memory store:
///     ComplexObjectStore::Open creates it empty AFTER WAL replay or the
///     fallback scrub ran, so recovery structurally cannot resurrect a
///     pre-crash assembly.
///
/// Thread safety: all public methods are safe from any thread (per-shard
/// mutexes; counters are relaxed atomics). The cache imposes no ordering of
/// its own — the store's single-writer/multi-reader contract still governs
/// who may touch the pages underneath.

namespace starfish {

/// Logical object identity — mirrors models/storage_model.h. Redeclared
/// here (identical alias) so this layer stays below the model layer.
using ObjectRef = uint64_t;

/// Object-cache configuration (StoreOptions::objcache).
struct ObjCacheOptions {
  /// Master switch. Off by default: the paper benches measure the physical
  /// I/O of *every* access, and a disabled cache keeps them byte-identical.
  bool enabled = false;

  /// Total budget for cached assemblies (deep tuple bytes + bookkeeping),
  /// split evenly across shards. Entries larger than one shard's slice are
  /// simply not cached.
  size_t capacity_bytes = 64ull << 20;

  /// Number of independent shards. 0 (default) derives a power of two from
  /// the hardware concurrency; other values are rounded up to a power of
  /// two. More shards = less reader contention, coarser per-shard LRU.
  uint32_t shard_count = 0;

  /// Total bound on negative entries (refs known NOT to exist), split
  /// evenly across shards. A repeated Get probe for a missing object is
  /// answered from this side table without touching a single page; any
  /// write invalidates the negative knowledge (epoch-guarded, see
  /// LookupNegative). 0 disables negative caching.
  uint32_t negative_capacity = 4096;
};

/// Counter snapshot (assembly-level; page-level counters live in
/// BufferStats). Plain value type — snapshot-and-subtract like IoStats.
struct ObjCacheStats {
  uint64_t hits = 0;           ///< Lookups served from the cache
  uint64_t misses = 0;         ///< Lookups that fell through to assembly
  uint64_t inserts = 0;        ///< assemblies published into the cache
  uint64_t evictions = 0;      ///< entries dropped for capacity
  uint64_t invalidations = 0;  ///< entries dropped by writes / Clear
  uint64_t stale_drops = 0;    ///< assemblies discarded by the epoch guard
  uint64_t negative_hits = 0;     ///< not-found probes served by the side table
  uint64_t negative_inserts = 0;  ///< not-found verdicts recorded
  uint64_t bytes = 0;          ///< resident bytes (gauge, not a counter)
  uint64_t entries = 0;        ///< resident entries (gauge, not a counter)
  uint64_t negative_entries = 0;  ///< resident negative entries (gauge)

  /// Assembly-hit ratio over the snapshot window (0 when idle) — the
  /// object-level analog of the page-level hits/fixes ratio.
  double HitRatio() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }

  /// Component-wise difference of the monotonic counters (this - earlier).
  /// The gauges (bytes, entries) are carried over from `this` unchanged.
  ObjCacheStats Since(const ObjCacheStats& earlier) const {
    ObjCacheStats d = *this;
    d.hits -= earlier.hits;
    d.misses -= earlier.misses;
    d.inserts -= earlier.inserts;
    d.evictions -= earlier.evictions;
    d.invalidations -= earlier.invalidations;
    d.stale_drops -= earlier.stale_drops;
    d.negative_hits -= earlier.negative_hits;
    d.negative_inserts -= earlier.negative_inserts;
    return d;
  }

  std::string ToString() const;
};

/// The accumulator behind ObjCacheStats: one relaxed fetch_add per counted
/// event, exactly the AtomicIoStats pattern — statistics, not
/// synchronization, and no increment is ever lost. The two gauges move in
/// both directions (fetch_add/fetch_sub under the owning shard's lock).
struct AtomicObjCacheStats {
  std::atomic<uint64_t> hits{0};
  std::atomic<uint64_t> misses{0};
  std::atomic<uint64_t> inserts{0};
  std::atomic<uint64_t> evictions{0};
  std::atomic<uint64_t> invalidations{0};
  std::atomic<uint64_t> stale_drops{0};
  std::atomic<uint64_t> negative_hits{0};
  std::atomic<uint64_t> negative_inserts{0};
  std::atomic<uint64_t> bytes{0};
  std::atomic<uint64_t> entries{0};
  std::atomic<uint64_t> negative_entries{0};

  ObjCacheStats Snapshot() const {
    ObjCacheStats s;
    s.hits = hits.load(std::memory_order_relaxed);
    s.misses = misses.load(std::memory_order_relaxed);
    s.inserts = inserts.load(std::memory_order_relaxed);
    s.evictions = evictions.load(std::memory_order_relaxed);
    s.invalidations = invalidations.load(std::memory_order_relaxed);
    s.stale_drops = stale_drops.load(std::memory_order_relaxed);
    s.negative_hits = negative_hits.load(std::memory_order_relaxed);
    s.negative_inserts = negative_inserts.load(std::memory_order_relaxed);
    s.bytes = bytes.load(std::memory_order_relaxed);
    s.entries = entries.load(std::memory_order_relaxed);
    s.negative_entries = negative_entries.load(std::memory_order_relaxed);
    return s;
  }

  /// Zeroes the monotonic counters. The gauges describe what is resident
  /// right now, so a stats reset leaves them alone.
  void Reset() {
    hits.store(0, std::memory_order_relaxed);
    misses.store(0, std::memory_order_relaxed);
    inserts.store(0, std::memory_order_relaxed);
    evictions.store(0, std::memory_order_relaxed);
    invalidations.store(0, std::memory_order_relaxed);
    stale_drops.store(0, std::memory_order_relaxed);
    negative_hits.store(0, std::memory_order_relaxed);
    negative_inserts.store(0, std::memory_order_relaxed);
  }
};

/// One cached assembly. Immutable after construction; shared between the
/// cache and any readers still holding it (the pin).
struct ObjCacheEntry {
  Tuple object;               ///< the full assembly (Projection::All)
  std::vector<PageId> pages;  ///< buffer pages observed while assembling
  size_t bytes = 0;           ///< capacity charge (deep size + bookkeeping)
};

/// A pinned reference to a cached assembly. Holding it keeps the (already
/// consistent) entry alive across invalidation, like a PageGuard keeps a
/// frame across eviction pressure.
using ObjCacheEntryRef = std::shared_ptr<const ObjCacheEntry>;

/// The sharded assembled-object LRU. See the file comment for the model.
class ObjectCache {
 public:
  explicit ObjectCache(const ObjCacheOptions& options);
  ~ObjectCache();  // out of line: Shard is incomplete here

  /// Probes for `ref`. On a hit the entry moves to the MRU end of its
  /// shard and a pinned reference is returned. On a miss returns null and,
  /// when `epoch_out` is non-null, stores the shard's current invalidation
  /// epoch — sample it BEFORE reading any page, and pass it to Insert so
  /// an assembly that overlapped an invalidation is discarded.
  ObjCacheEntryRef Lookup(ObjectRef ref, uint64_t* epoch_out = nullptr);

  /// Publishes an assembly produced after a Lookup miss returned `epoch`.
  /// Discarded (counted as a stale drop) when the shard's epoch has moved
  /// since — the write that moved it may have made this assembly stale.
  /// Replaces an existing entry for `ref`; evicts LRU entries to fit;
  /// silently skips objects larger than one shard's capacity slice.
  void Insert(ObjectRef ref, Tuple object, std::vector<PageId> pages,
              uint64_t epoch);

  /// True when `ref` is recorded as NOT existing and that knowledge is
  /// still current (the recording shard's epoch has not moved since the
  /// verdict was cached — every write bumps the epochs, so any write
  /// anywhere conservatively voids all negative knowledge). A true return
  /// means the caller can answer NotFound without reading a page.
  bool LookupNegative(ObjectRef ref);

  /// Records that a lookup of `ref` fell through to the model and came
  /// back NotFound. `epoch` is the value Lookup handed out before the
  /// model probe; the verdict is discarded when the shard's epoch has
  /// moved since (a concurrent Put may have created the object mid-probe).
  /// Bounded LRU per shard; no-op when negative caching is disabled.
  void InsertNegative(ObjectRef ref, uint64_t epoch);

  /// Drops the entry for `ref` (if any) and bumps the shard's epoch —
  /// unconditionally, so in-flight assemblies of `ref` cannot publish.
  /// Also erases any negative entry for `ref` (the usual caller is a Put,
  /// after which the object exists).
  void InvalidateRef(ObjectRef ref);

  /// Drops every entry whose recorded backing-page set intersects `pages`,
  /// and bumps EVERY shard's epoch (a write is in flight; any concurrent
  /// assembly may have observed half-applied pages). The conservative net
  /// fed from the WAL write capture's dirtied-page list.
  void InvalidatePages(const std::vector<PageId>& pages);

  /// Drops everything and bumps every epoch (wholesale invalidation).
  void Clear();

  ObjCacheStats stats() const { return stats_.Snapshot(); }
  void ResetStats() { stats_.Reset(); }

  size_t capacity_bytes() const { return options_.capacity_bytes; }
  uint32_t shard_count() const { return static_cast<uint32_t>(shards_.size()); }

  /// Resident bytes across all shards (same number as stats().bytes).
  size_t TotalBytes() const;

 private:
  struct Shard;

  Shard& ShardOf(ObjectRef ref) {
    // Fibonacci hash, top byte — the buffer pool's shard-selection scheme.
    // Masking (not shifting) keeps the single-shard case well-defined.
    return *shards_[((ref * 0x9E3779B97F4A7C15ull) >> 56) & mask_];
  }

  /// Unlinks `ref` from the shard's map/LRU/page index and releases its
  /// capacity charge. Shard lock held. Returns false when absent.
  bool EraseLocked(Shard& shard, ObjectRef ref);

  ObjCacheOptions options_;
  size_t shard_capacity_ = 0;  ///< capacity_bytes / shard count
  size_t negative_capacity_ = 0;  ///< negative entries per shard (0 = off)
  uint64_t mask_ = 0;          ///< shard count - 1 (count is a power of two)
  std::vector<std::unique_ptr<Shard>> shards_;
  mutable AtomicObjCacheStats stats_;
};

/// Approximate deep heap footprint of an assembled tuple (the capacity
/// charge of a cache entry). Counts vector/string capacities recursively —
/// an estimate of what the allocator holds, not an exact malloc audit.
size_t DeepSizeOf(const Tuple& tuple);

/// Projects a cached full assembly down to `projection` in memory, with
/// exactly the serializer's partial-read contract: unselected relation
/// attributes come back as EMPTY relations (nesting structure intact for
/// everything selected). `full` must conform to `root`.
Tuple ProjectAssembled(const Schema& root, const Tuple& full,
                       const Projection& projection);

/// Link values of a full assembly in document order — the cached-entry
/// equivalent of StorageModel::GetChildRefs (same traversal order as the
/// models' CollectLinks).
std::vector<ObjectRef> CollectAssembledLinks(const Schema& root,
                                             const Tuple& full);

}  // namespace starfish
