#pragma once

#include <string>
#include <vector>

#include "util/status.h"

/// \file fsck.h
/// Offline consistency verifier for persistent store/volume directories —
/// the library behind the `sf_fsck` tool.
///
/// RunFsck cross-checks the four layers of on-disk state against each
/// other, trusting nothing that is not checksummed:
///
///   1. the volume.meta allocator journal (replay, torn-tail detection,
///      geometry);
///   2. the extent files (existence, size, no orphans beyond the durable
///      page count);
///   3. the committed catalog generation (CURRENT resolution, per-file
///      CRC, structural parse of the segment page lists);
///   4. the model state inside the catalog (object tables, transformation
///      tables, page-pool heads, B+-tree roots);
///   5. the write-ahead log (wal.log framing scan: header CRC, per-record
///      CRCs, dense LSN sequence, torn-tail detection) and its agreement
///      with the committed catalog's checkpoint LSN.
///
/// Cross-checks: every cataloged page must be allocated, un-freed, and
/// carry a formatted page header whose segment id and page type agree with
/// the catalog; every model-state address (TID, pool head, tree root) must
/// point into a cataloged page; no page may belong to two segments; no
/// cataloged page may carry a page LSN at or beyond the log's next LSN
/// (WAL-before-data: a stamped page without a covering record is an
/// inconsistency, not a crash artifact).
///
/// Findings are split into
///   * errors   — inconsistencies; the directory does not describe one
///                coherent committed state;
///   * warnings — recoverable crash artifacts (uncommitted generation
///                files, orphaned-but-unreferenced pages, a torn journal
///                tail): exactly what a crash may leave and the next Open
///                cleans up.
/// A store that went through Open's recovery and a clean close reports
/// zero of either; the crash-matrix suite asserts exactly that.
///
/// fsck runs on the closed directory with plain file reads — no mmap, no
/// buffer pool, no model construction — so it can vet a store no binary
/// can open (wrong schema, unknown model) down to the model-state layer.
/// It is also backend-agnostic by construction: the mmap and O_DIRECT
/// backends write one shared on-disk format (volume.meta + extent_NNNNNN,
/// see volume_meta.h), so the same checks verify a directory regardless of
/// which access path produced it.

namespace starfish {

struct FsckOptions {
  /// Also collect per-segment info lines into FsckReport::info.
  bool verbose = false;
};

/// What RunFsck found.
struct FsckReport {
  std::string dir;

  // Volume layer.
  bool volume_found = false;
  uint64_t page_count = 0;   ///< durable allocator page count
  uint64_t live_pages = 0;   ///< allocated and not freed
  uint32_t page_size = 0;
  uint64_t extent_files = 0;

  // Catalog layer.
  bool catalog_found = false;
  bool legacy_catalog = false;   ///< pre-generation catalog.sf
  uint64_t generation = 0;       ///< committed generation verified
  uint32_t segment_count = 0;
  uint64_t referenced_pages = 0; ///< distinct pages the catalog references
  uint64_t orphan_pages = 0;     ///< live but referenced by nothing

  // WAL layer.
  bool wal_found = false;
  bool wal_header_valid = false;
  bool wal_torn_tail = false;     ///< invalid bytes past the valid prefix
  uint64_t wal_base_lsn = 0;
  uint64_t wal_next_lsn = 0;      ///< first LSN no valid record carries
  uint64_t wal_records = 0;       ///< valid records scanned
  uint64_t wal_stale_records = 0; ///< records below the checkpoint LSN
  /// The committed catalog's WAL checkpoint LSN (0 for v2/legacy payloads).
  uint64_t wal_checkpoint_lsn = 0;

  std::vector<std::string> errors;
  std::vector<std::string> warnings;
  std::vector<std::string> info;

  bool clean() const { return errors.empty(); }

  /// Human-readable multi-line report (what the CLI prints).
  std::string ToString() const;
};

/// Verifies the store/volume at `dir`. Only hard I/O failures (the
/// directory itself unreadable) surface as a non-OK status — every
/// inconsistency is a report entry, so one broken layer never hides the
/// findings of the others.
Result<FsckReport> RunFsck(const std::string& dir, FsckOptions options = {});

}  // namespace starfish
