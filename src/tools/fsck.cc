#include "tools/fsck.h"

#include <cstdio>
#include <filesystem>
#include <map>
#include <set>

#include "core/generations.h"
#include "disk/page.h"
#include "disk/volume_meta.h"
#include "models/storage_model.h"
#include "storage/slotted_page.h"
#include "storage/tid.h"
#include "util/coding.h"
#include "wal/wal_format.h"

namespace starfish {

namespace {

/// Matches Segment's "not a slotted page" free-hint sentinel.
constexpr uint32_t kNotSlotted = ~0u;

/// Everything the checks accumulate while walking the directory.
struct FsckContext {
  std::string dir;
  FsckOptions options;
  FsckReport* report;
  VolumeMetaState meta;
  /// page -> (segment ordinal, cataloged type) for every cataloged page.
  std::map<PageId, std::pair<uint32_t, PageType>> referenced;
  /// The wal.log scan (valid whenever wal.found && wal.header_valid).
  WalScan wal;
  /// The committed catalog payload carries a WAL checkpoint LSN (v3+):
  /// gates the page-LSN-vs-log-horizon cross-check, which would be
  /// meaningless over a pre-WAL directory.
  bool catalog_has_wal_lsn = false;

  void Error(const std::string& message) {
    report->errors.push_back(message);
  }
  void Warn(const std::string& message) {
    report->warnings.push_back(message);
  }
  void Info(const std::string& message) {
    if (options.verbose) report->info.push_back(message);
  }
};

bool ValidPageType(uint16_t type) {
  return type <= static_cast<uint16_t>(PageType::kIndex);
}

std::string PageTypeName(PageType type) {
  switch (type) {
    case PageType::kFree: return "free";
    case PageType::kSlotted: return "slotted";
    case PageType::kComplexHeader: return "complex-header";
    case PageType::kComplexHeaderExt: return "complex-header-ext";
    case PageType::kComplexData: return "complex-data";
    case PageType::kPool: return "pool";
    case PageType::kIndex: return "index";
  }
  return "unknown";
}

/// Reads one page image straight from its extent file (no mmap, no cache).
/// A short read is padded with zeros, matching how MapExtent repairs a
/// short extent file (holes read as zero-filled pages) — the header check
/// then reports "not formatted" only for pages whose bytes are truly gone.
bool ReadPageImage(const FsckContext& ctx, PageId id, std::vector<char>* out) {
  const uint32_t page_size = ctx.meta.options.page_size;
  const uint32_t ppe =
      std::max(1u, ctx.meta.options.extent_bytes / page_size);
  const std::string path =
      ctx.dir + "/" + ExtentFileName(static_cast<size_t>(id / ppe));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  out->assign(page_size, '\0');
  const long offset = static_cast<long>(id % ppe) * page_size;
  const bool ok = std::fseek(f, offset, SEEK_SET) == 0;
  if (ok) (void)std::fread(out->data(), 1, page_size, f);
  std::fclose(f);
  return ok;
}

// ------------------------------------------------------------- layer 1+2 --

/// volume.meta replay + extent-file inventory.
void CheckVolume(FsckContext* ctx) {
  VolumeMetaReplay replay;
  const Status replayed =
      ReplayVolumeMeta(ctx->dir + "/volume.meta", &replay);
  if (!replayed.ok()) {
    ctx->Error("volume.meta: " + replayed.ToString());
    return;
  }
  if (!replay.found) return;  // an empty / catalog-only directory
  ctx->report->volume_found = true;
  ctx->meta = replay.state;
  ctx->report->page_count = replay.state.page_count;
  ctx->report->live_pages = replay.state.live_pages();
  ctx->report->page_size = replay.state.options.page_size;
  if (replay.torn_tail) {
    ctx->Warn("volume.meta: torn tail record dropped (crash artifact; "
              "replay recovered the last durable allocator state)");
  }
  if (replay.legacy) {
    ctx->Warn("volume.meta: legacy v1 format (next checkpoint upgrades)");
  }
  if (replay.state.options.page_size == 0) {
    ctx->Error("volume.meta: zero page size");
    return;
  }

  const uint32_t ppe = std::max(
      1u, replay.state.options.extent_bytes / replay.state.options.page_size);
  const uint64_t expected =
      (replay.state.page_count + ppe - 1) / ppe;
  const size_t extent_bytes = static_cast<size_t>(ppe) *
                              replay.state.options.page_size;
  for (uint64_t i = 0; i < expected; ++i) {
    const std::string path =
        ctx->dir + "/" + ExtentFileName(static_cast<size_t>(i));
    std::error_code ec;
    if (!std::filesystem::exists(path, ec)) {
      ctx->Error("missing extent file " + path + " (pages " +
                 std::to_string(i * ppe) + "..)");
    } else if (std::filesystem::file_size(path, ec) < extent_bytes) {
      ctx->Warn("short extent file " + path +
                " (repairable: holes read as zero-filled pages)");
    }
  }
  // Inventory what is actually there, flagging files beyond the durable
  // allocator state — the leavings of an allocation that never synced.
  // Manual increment: the range-for ++ throws on mid-scan I/O errors.
  std::error_code ec;
  std::filesystem::directory_iterator it(ctx->dir, ec), dir_end;
  for (; !ec && it != dir_end; it.increment(ec)) {
    const std::string name = it->path().filename().string();
    if (name.rfind("extent_", 0) != 0) continue;
    ++ctx->report->extent_files;
    uint64_t index = 0;
    if (!ParseExtentFileName(name, &index)) {
      ctx->Warn("unparseable extent file name " + name);
      continue;
    }
    if (index >= expected) {
      ctx->Warn("orphan extent file " + name +
                " beyond the durable page count (crash artifact; removed "
                "at next open)");
    }
  }
  if (ec) {
    ctx->Error("extent inventory incomplete: " + ec.message());
  }
}

// --------------------------------------------------------------- layer 3 --

/// One cataloged page: allocation, header, segment id, type agreement.
void CheckCatalogedPage(FsckContext* ctx, uint32_t segment_ordinal,
                        const std::string& segment_name, PageId page,
                        uint32_t hint, PageType type) {
  const std::string where =
      "segment '" + segment_name + "' page " + std::to_string(page);
  if (page >= ctx->meta.page_count) {
    ctx->Error(where + ": beyond the volume's " +
               std::to_string(ctx->meta.page_count) + " pages");
    return;
  }
  if (ctx->meta.freed[page]) {
    ctx->Error(where + ": referenced by the catalog but freed in the "
               "allocator journal");
  }
  auto [it, inserted] =
      ctx->referenced.emplace(page, std::make_pair(segment_ordinal, type));
  if (!inserted) {
    ctx->Error(where + ": also cataloged by segment ordinal " +
               std::to_string(it->second.first));
    return;
  }
  if (hint != kNotSlotted &&
      hint > ctx->meta.options.page_size) {
    ctx->Error(where + ": free-space hint " + std::to_string(hint) +
               " exceeds the page size");
  }
  std::vector<char> image;
  if (!ReadPageImage(*ctx, page, &image)) {
    ctx->Error(where + ": page image unreadable");
    return;
  }
  SlottedPage view(image.data(), ctx->meta.options.page_size);
  if (!view.IsFormatted()) {
    ctx->Error(where + ": page header not formatted");
    return;
  }
  if (view.segment_id() != segment_ordinal) {
    ctx->Error(where + ": page header claims segment id " +
               std::to_string(view.segment_id()) + ", catalog ordinal is " +
               std::to_string(segment_ordinal));
  }
  if (view.type() != type) {
    ctx->Error(where + ": page header type '" + PageTypeName(view.type()) +
               "' disagrees with cataloged type '" + PageTypeName(type) +
               "'");
  }
  // WAL-before-data horizon: a committed page stamped with an LSN the log
  // never issued means a page image reached the medium with no durable
  // record explaining it.
  if (ctx->catalog_has_wal_lsn && ctx->wal.found && ctx->wal.header_valid) {
    const uint64_t page_lsn = GetPageLsn(image.data());
    if (page_lsn >= ctx->wal.next_lsn) {
      ctx->Error(where + ": page LSN " + std::to_string(page_lsn) +
                 " at or beyond the log's next LSN " +
                 std::to_string(ctx->wal.next_lsn) +
                 " (WAL-before-data violated)");
    }
  }
}

/// The engine segment catalog: names, page lists, hints.
bool CheckSegmentCatalog(FsckContext* ctx, std::string_view* in) {
  uint32_t segment_count = 0;
  if (!GetFixed32(in, &segment_count)) {
    ctx->Error("catalog: truncated segment count");
    return false;
  }
  ctx->report->segment_count = segment_count;
  for (uint32_t s = 0; s < segment_count; ++s) {
    std::string_view name_view;
    uint32_t page_count = 0;
    if (!GetLengthPrefixed(in, &name_view) || !GetFixed32(in, &page_count)) {
      ctx->Error("catalog: truncated segment entry " + std::to_string(s));
      return false;
    }
    const std::string name(name_view);
    if (page_count > in->size() / 10) {
      ctx->Error("catalog: implausible page count in segment '" + name + "'");
      return false;
    }
    for (uint32_t p = 0; p < page_count; ++p) {
      uint32_t page = 0, hint = 0;
      uint16_t type = 0;
      if (!GetFixed32(in, &page) || !GetFixed32(in, &hint) ||
          !GetFixed16(in, &type)) {
        ctx->Error("catalog: truncated page entry in segment '" + name + "'");
        return false;
      }
      if (!ValidPageType(type)) {
        ctx->Error("segment '" + name + "' page " + std::to_string(page) +
                   ": invalid cataloged page type " + std::to_string(type));
        continue;
      }
      CheckCatalogedPage(ctx, s, name, page, hint,
                         static_cast<PageType>(type));
    }
    ctx->Info("segment '" + name + "': " + std::to_string(page_count) +
              " pages");
  }
  return true;
}

// --------------------------------------------------------------- layer 4 --
//
// The model-state walkers below mirror the SaveState byte layouts of
// DirectModel (direct_model.cc), NsmModel (nsm_model.cc) and
// DasdbsNsmModel (dasdbs_nsm_model.cc) on purpose: fsck's design point is
// vetting a store no binary can open (unknown schema, wrong build), so it
// parses structurally instead of constructing models. The coupling is
// LOCKED BY TESTS, not by shared code — fsck_test, the crash matrix and
// the catalog fuzz suite run these walkers over catalogs freshly written
// by all five models, so any SaveState format change fails them
// immediately. When extending a model's SaveState, update its walker here
// in the same commit.

/// A model-state address must land inside a cataloged page.
void CheckAddress(FsckContext* ctx, PageId page, const char* what) {
  if (ctx->referenced.find(page) == ctx->referenced.end()) {
    ctx->Error(std::string(what) + " points at page " + std::to_string(page) +
               " which no segment catalogs");
  }
}

void CheckTypedPage(FsckContext* ctx, PageId page, PageType want,
                    const char* what) {
  auto it = ctx->referenced.find(page);
  if (it == ctx->referenced.end()) {
    ctx->Error(std::string(what) + " points at page " + std::to_string(page) +
               " which no segment catalogs");
    return;
  }
  if (it->second.second != want) {
    ctx->Error(std::string(what) + " points at page " + std::to_string(page) +
               " of type '" + PageTypeName(it->second.second) +
               "', expected '" + PageTypeName(want) + "'");
  }
}

/// u64 entries, each u64 key + u32 count + count * u64 packed TIDs.
bool CheckTransformationTable(FsckContext* ctx, std::string_view* in,
                              const std::string& what) {
  uint64_t entries = 0;
  if (!GetFixed64(in, &entries) || entries > in->size() / 12) {
    ctx->Error(what + ": truncated or implausible transformation table");
    return false;
  }
  for (uint64_t e = 0; e < entries; ++e) {
    uint64_t key = 0;
    uint32_t count = 0;
    if (!GetFixed64(in, &key) || !GetFixed32(in, &count) ||
        count > in->size() / 8) {
      ctx->Error(what + ": truncated transformation entry");
      return false;
    }
    for (uint32_t i = 0; i < count; ++i) {
      uint64_t packed = 0;
      if (!GetFixed64(in, &packed)) {
        ctx->Error(what + ": truncated transformation address");
        return false;
      }
      const Tid tid = Tid::Unpack(packed);
      if (tid.valid()) {
        CheckAddress(ctx, tid.page,
                     (what + " key " + std::to_string(key)).c_str());
      }
    }
  }
  return true;
}

/// u32 root, u64 size, u32 height, u64 node_pages.
bool CheckTreeState(FsckContext* ctx, std::string_view* in,
                    const std::string& what) {
  uint32_t root = 0, height = 0;
  uint64_t size = 0, node_pages = 0;
  if (!GetFixed32(in, &root) || !GetFixed64(in, &size) ||
      !GetFixed32(in, &height) || !GetFixed64(in, &node_pages)) {
    ctx->Error(what + ": truncated b+-tree state");
    return false;
  }
  if (root != kInvalidPageId) {
    CheckTypedPage(ctx, root, PageType::kIndex, (what + " root").c_str());
  } else if (size != 0 || height != 0) {
    ctx->Error(what + ": empty root but size " + std::to_string(size) +
               ", height " + std::to_string(height));
  }
  return true;
}

/// DirectModel (kDsm / kDasdbsDsm): u64 live total, u32 stripe count, then
/// per stripe u32 pool_first, u64 slots, slots * u64 packed TIDs. Refs map
/// to stripes as ref % stripe_count (slot = ref / stripe_count).
bool CheckDirectModelState(FsckContext* ctx, std::string_view* in) {
  uint64_t live = 0;
  uint32_t stripe_count = 0;
  if (!GetFixed64(in, &live) || !GetFixed32(in, &stripe_count) ||
      stripe_count == 0 || stripe_count > in->size() / 12) {
    ctx->Error("model state: truncated direct-model header");
    return false;
  }
  uint64_t present = 0;
  for (uint32_t s = 0; s < stripe_count; ++s) {
    const std::string stripe = "stripe " + std::to_string(s);
    uint64_t slots = 0;
    uint32_t pool_first = kInvalidPageId;
    if (!GetFixed32(in, &pool_first) || !GetFixed64(in, &slots) ||
        slots > in->size() / 8) {
      ctx->Error("model state: truncated direct-model " + stripe + " header");
      return false;
    }
    if (pool_first != kInvalidPageId) {
      CheckTypedPage(ctx, pool_first, PageType::kPool,
                     (stripe + " page-pool head").c_str());
    }
    for (uint64_t i = 0; i < slots; ++i) {
      uint64_t packed = 0;
      if (!GetFixed64(in, &packed)) {
        ctx->Error("model state: truncated direct-model object table (" +
                   stripe + ")");
        return false;
      }
      const Tid tid = Tid::Unpack(packed);
      if (!tid.valid()) continue;
      ++present;
      const uint64_t ref = i * stripe_count + s;
      CheckAddress(ctx, tid.page,
                   ("object ref " + std::to_string(ref)).c_str());
    }
  }
  if (present != live) {
    ctx->Error("model state: live count " + std::to_string(live) +
               " disagrees with " + std::to_string(present) +
               " addressed objects");
  }
  return true;
}

/// NsmModel (kNsm / kNsmIndexed): u64 live, u32 paths, u64 refs,
/// refs * (u64 key, u64 tid), paths * table, paths * (u16 flag [+ tree]).
bool CheckNsmModelState(FsckContext* ctx, std::string_view* in) {
  constexpr uint64_t kNoKey = 0x8000000000000000ull;  // int64 min
  uint64_t live = 0, refs = 0;
  uint32_t paths = 0;
  if (!GetFixed64(in, &live) || !GetFixed32(in, &paths) ||
      !GetFixed64(in, &refs) || refs > in->size() / 16) {
    ctx->Error("model state: truncated nsm header");
    return false;
  }
  uint64_t present = 0;
  for (uint64_t i = 0; i < refs; ++i) {
    uint64_t key = 0, packed = 0;
    if (!GetFixed64(in, &key) || !GetFixed64(in, &packed)) {
      ctx->Error("model state: truncated nsm object table");
      return false;
    }
    if (key == kNoKey) continue;
    ++present;
    const Tid tid = Tid::Unpack(packed);
    if (tid.valid()) {
      CheckAddress(ctx, tid.page,
                   ("root record of key " + std::to_string(key)).c_str());
    }
  }
  if (present != live) {
    ctx->Error("model state: live count " + std::to_string(live) +
               " disagrees with " + std::to_string(present) + " keys");
  }
  for (uint32_t p = 0; p < paths; ++p) {
    if (!CheckTransformationTable(
            ctx, in, "path " + std::to_string(p) + " table")) {
      return false;
    }
  }
  for (uint32_t p = 0; p < paths; ++p) {
    uint16_t has_tree = 0;
    if (!GetFixed16(in, &has_tree)) {
      ctx->Error("model state: truncated nsm tree flag");
      return false;
    }
    if (has_tree != 0 &&
        !CheckTreeState(ctx, in, "path " + std::to_string(p) + " index")) {
      return false;
    }
  }
  return true;
}

/// DasdbsNsmModel: u32 paths, paths * u32 pool_first, u64 refs,
/// refs * u64 key, one transformation table.
bool CheckDasdbsNsmModelState(FsckContext* ctx, std::string_view* in) {
  uint32_t paths = 0;
  if (!GetFixed32(in, &paths) || paths > in->size() / 4) {
    ctx->Error("model state: truncated dasdbs-nsm header");
    return false;
  }
  for (uint32_t p = 0; p < paths; ++p) {
    uint32_t pool_first = kInvalidPageId;
    if (!GetFixed32(in, &pool_first)) {
      ctx->Error("model state: truncated dasdbs-nsm pool entry");
      return false;
    }
    if (pool_first != kInvalidPageId) {
      CheckTypedPage(ctx, pool_first, PageType::kPool,
                     ("path " + std::to_string(p) + " pool head").c_str());
    }
  }
  uint64_t refs = 0;
  if (!GetFixed64(in, &refs) || refs > in->size() / 8) {
    ctx->Error("model state: truncated dasdbs-nsm object table");
    return false;
  }
  for (uint64_t i = 0; i < refs; ++i) {
    uint64_t key = 0;
    if (!GetFixed64(in, &key)) {
      ctx->Error("model state: truncated dasdbs-nsm key table");
      return false;
    }
  }
  return CheckTransformationTable(ctx, in, "dasdbs-nsm table");
}

bool CheckModelState(FsckContext* ctx, StorageModelKind kind,
                     std::string_view* in) {
  switch (kind) {
    case StorageModelKind::kDsm:
    case StorageModelKind::kDasdbsDsm:
      return CheckDirectModelState(ctx, in);
    case StorageModelKind::kNsm:
    case StorageModelKind::kNsmIndexed:
      return CheckNsmModelState(ctx, in);
    case StorageModelKind::kDasdbsNsm:
      return CheckDasdbsNsmModelState(ctx, in);
  }
  ctx->Error("model state: unknown storage model kind " +
             std::to_string(static_cast<uint32_t>(kind)));
  return false;
}

/// Full structural walk of one catalog payload. `has_wal_lsn` = v3+
/// payload (carries the WAL checkpoint LSN after the path count).
void CheckCatalogPayload(FsckContext* ctx, std::string_view payload,
                         bool has_wal_lsn) {
  uint32_t model_kind = 0, page_size = 0, path_count = 0;
  uint64_t key_attr = 0;
  std::string_view schema_name;
  if (!GetFixed32(&payload, &model_kind) ||
      !GetFixed32(&payload, &page_size) ||
      !GetFixed64(&payload, &key_attr) ||
      !GetLengthPrefixed(&payload, &schema_name) ||
      !GetFixed32(&payload, &path_count) ||
      (has_wal_lsn &&
       !GetFixed64(&payload, &ctx->report->wal_checkpoint_lsn))) {
    ctx->Error("catalog: truncated store header");
    return;
  }
  ctx->catalog_has_wal_lsn = has_wal_lsn;
  if (model_kind > static_cast<uint32_t>(StorageModelKind::kDasdbsNsm)) {
    ctx->Error("catalog: unknown storage model kind " +
               std::to_string(model_kind));
    return;
  }
  if (ctx->report->volume_found && page_size != ctx->meta.options.page_size) {
    ctx->Error("catalog records page size " + std::to_string(page_size) +
               " but volume.meta records " +
               std::to_string(ctx->meta.options.page_size));
    return;
  }
  ctx->Info("schema '" + std::string(schema_name) + "', model '" +
            ToString(static_cast<StorageModelKind>(model_kind)) + "', " +
            std::to_string(path_count) + " paths");
  if (!CheckSegmentCatalog(ctx, &payload)) return;
  if (!CheckModelState(ctx, static_cast<StorageModelKind>(model_kind),
                       &payload)) {
    return;
  }
  if (!payload.empty()) {
    ctx->Error("catalog: " + std::to_string(payload.size()) +
               " bytes of trailing garbage after the model state");
  }
}

/// CURRENT resolution (the same shared algorithm Open runs —
/// ResolveCommittedCatalog) + catalog CRC + the payload walk.
void CheckCatalog(FsckContext* ctx) {
  ResolvedCatalog resolved;
  const Status status = ResolveCommittedCatalog(ctx->dir, &resolved);
  // Every candidate the resolver had to skip is damage worth reporting,
  // whether or not an older generation saved the day.
  for (const std::string& rejection : resolved.rejected) {
    ctx->Error(rejection);
  }
  if (!status.ok()) {
    ctx->Error(status.ToString());
    return;
  }

  if (!resolved.any_committed) {
    std::error_code ec;
    if (std::filesystem::exists(LegacyCatalogPath(ctx->dir), ec)) {
      auto file_or = ReadCatalogFile(LegacyCatalogPath(ctx->dir));
      if (!file_or.ok()) {
        ctx->Error("legacy catalog: " + file_or.status().ToString());
        return;
      }
      ctx->report->catalog_found = true;
      ctx->report->legacy_catalog = true;
      ctx->Warn("legacy single-file catalog without CURRENT (unchecksummed; "
                "the next checkpoint migrates to generations)");
      CheckCatalogPayload(ctx, file_or.value().payload,
                          /*has_wal_lsn=*/false);
      return;
    }
    for (uint64_t gen : resolved.generations) {
      ctx->Warn("catalog." + std::to_string(gen) +
                ".sf without CURRENT: an uncommitted first checkpoint "
                "(crash artifact; removed at next open)");
    }
    if (ctx->report->volume_found && ctx->report->live_pages > 0) {
      ctx->Warn(std::to_string(ctx->report->live_pages) +
                " live pages but nothing ever committed: a run crashed "
                "before its first checkpoint (reclaimed at next store "
                "open)");
    }
    return;  // a bare volume (or an empty directory) — nothing more to vet
  }

  for (auto it = resolved.generations.rbegin();
       it != resolved.generations.rend(); ++it) {
    if (*it > resolved.current) {
      ctx->Warn("catalog." + std::to_string(*it) +
                ".sf is newer than CURRENT: an uncommitted checkpoint "
                "(crash artifact; removed at next open)");
    }
  }
  ctx->report->catalog_found = true;
  ctx->report->generation = resolved.loaded;
  if (resolved.fallback) {
    ctx->Warn("CURRENT names generation " + std::to_string(resolved.current) +
              " but generation " + std::to_string(resolved.loaded) +
              " is the newest loadable one (Open would fall back and "
              "repair CURRENT)");
  }
  CheckCatalogPayload(ctx, resolved.file.payload,
                      /*has_wal_lsn=*/resolved.file.version >= 3);
}

// --------------------------------------------------------------- layer 5 --

/// wal.log framing scan. Runs BEFORE the catalog walk so the per-page LSN
/// horizon check can use the scan; the catalog-agreement checks run after.
void ScanWal(FsckContext* ctx) {
  auto scan_or = ScanWalFile(WalPath(ctx->dir));
  if (!scan_or.ok()) {
    ctx->Error("wal.log: " + scan_or.status().ToString());
    return;
  }
  ctx->wal = std::move(scan_or).value();
  ctx->report->wal_found = ctx->wal.found;
  ctx->report->wal_header_valid = ctx->wal.header_valid;
  ctx->report->wal_torn_tail = ctx->wal.torn_tail;
  ctx->report->wal_base_lsn = ctx->wal.base_lsn;
  ctx->report->wal_next_lsn = ctx->wal.next_lsn;
  ctx->report->wal_records = ctx->wal.records.size();
  if (!ctx->wal.found) return;
  if (!ctx->wal.header_valid) {
    ctx->Warn("wal.log: invalid header (damage; the next open falls back "
              "to the catalog-only scrub and rebuilds the log)");
    return;
  }
  if (ctx->wal.torn_tail) {
    ctx->Warn("wal.log: torn tail after " +
              std::to_string(ctx->wal.records.size()) +
              " valid records (crash artifact; replay stops at the last "
              "valid record)");
  }
}

/// The log against the committed catalog: checkpoint LSN coverage, stale
/// sub-checkpoint records, the truncation checkpoint record's generation.
// Transaction framing is a log-local property — it needs no committed
// catalog (a crash image can predate the first checkpoint entirely):
// marker payloads must decode, and every transaction begun at or past
// the checkpoint horizon should meet its commit/abort. A dangling begin
// is a crash artifact, not damage — the next open treats the transaction
// as aborted (its ops have no commit verdict) — so it warns, never errors.
void CheckWalTxnFraming(FsckContext* ctx) {
  if (!ctx->wal.found || !ctx->wal.header_valid) return;
  const uint64_t horizon = ctx->catalog_has_wal_lsn
                               ? ctx->report->wal_checkpoint_lsn
                               : ctx->wal.base_lsn;
  std::map<uint64_t, uint64_t> open_txns;  // txn id -> begin LSN
  for (const WalRecord& record : ctx->wal.records) {
    if (record.lsn < horizon) continue;
    if (!IsWalTxnMarker(record.kind)) continue;
    uint64_t txn_id = 0;
    if (!DecodeWalTxnPayload(record.payload, &txn_id)) {
      ctx->Error("wal.log: undecodable txn marker payload (lsn " +
                 std::to_string(record.lsn) + ")");
      continue;
    }
    if (record.kind == WalRecordKind::kTxnBegin) {
      open_txns.emplace(txn_id, record.lsn);
    } else if (open_txns.erase(txn_id) == 0) {
      ctx->Warn("wal.log: " + std::string(ToString(record.kind)) +
                " for transaction " + std::to_string(txn_id) +
                " without a begin after the checkpoint horizon (lsn " +
                std::to_string(record.lsn) + ")");
    }
  }
  for (const auto& [txn_id, begin_lsn] : open_txns) {
    ctx->Warn("wal.log: transaction " + std::to_string(txn_id) +
              " begun at LSN " + std::to_string(begin_lsn) +
              " has no commit or abort (crash artifact; its ops are "
              "rolled back at next open)");
  }
}

void CheckWalAgainstCatalog(FsckContext* ctx) {
  if (!ctx->report->catalog_found || !ctx->catalog_has_wal_lsn) return;
  const uint64_t checkpoint_lsn = ctx->report->wal_checkpoint_lsn;
  if (!ctx->wal.found) {
    ctx->Warn("wal.log: missing for a WAL-aware catalog (the next open "
              "falls back to the catalog-only scrub and rebuilds it)");
    return;
  }
  if (!ctx->wal.header_valid) return;  // already warned by ScanWal
  if (ctx->wal.next_lsn < checkpoint_lsn) {
    ctx->Warn("wal.log: ends at LSN " + std::to_string(ctx->wal.next_lsn) +
              ", before the committed checkpoint LSN " +
              std::to_string(checkpoint_lsn) +
              " (not the log that checkpoint truncated; the next open "
              "scrubs instead of replaying)");
    return;
  }
  for (const WalRecord& record : ctx->wal.records) {
    if (record.lsn < checkpoint_lsn) ++ctx->report->wal_stale_records;
  }
  if (ctx->report->wal_stale_records > 0) {
    ctx->Warn("wal.log: " + std::to_string(ctx->report->wal_stale_records) +
              " records below the committed checkpoint LSN " +
              std::to_string(checkpoint_lsn) +
              " (a crash between catalog commit and log truncation; "
              "skipped at replay, truncated at next open)");
  }
  if (!ctx->wal.records.empty() &&
      ctx->wal.records.front().kind == WalRecordKind::kCheckpoint &&
      ctx->wal.records.front().lsn == ctx->wal.base_lsn) {
    uint64_t log_generation = 0;
    if (!DecodeWalCheckpointPayload(ctx->wal.records.front().payload,
                                    &log_generation)) {
      ctx->Error("wal.log: undecodable checkpoint record payload");
    } else if (log_generation != ctx->report->generation) {
      ctx->Warn("wal.log: truncated against generation " +
                std::to_string(log_generation) + " but generation " +
                std::to_string(ctx->report->generation) +
                " is the committed one (fallback artifact; the next open "
                "scrubs instead of replaying)");
    }
  }
}

/// Allocator vs. catalog reference cross-check.
void CrossCheck(FsckContext* ctx) {
  if (!ctx->report->volume_found || !ctx->report->catalog_found) return;
  ctx->report->referenced_pages = ctx->referenced.size();
  uint64_t orphans = 0;
  for (uint64_t page = 0; page < ctx->meta.page_count; ++page) {
    if (ctx->meta.freed[page]) continue;
    if (ctx->referenced.find(static_cast<PageId>(page)) ==
        ctx->referenced.end()) {
      ++orphans;
    }
  }
  ctx->report->orphan_pages = orphans;
  if (orphans > 0) {
    ctx->Warn(std::to_string(orphans) +
              " allocated pages referenced by nothing (crash artifact; "
              "reclaimed at next open)");
  }
}

}  // namespace

std::string FsckReport::ToString() const {
  std::string out = "sf_fsck " + dir + "\n";
  if (volume_found) {
    out += "  volume: " + std::to_string(page_count) + " pages (" +
           std::to_string(live_pages) + " live), page size " +
           std::to_string(page_size) + ", " + std::to_string(extent_files) +
           " extent files\n";
  } else {
    out += "  volume: no volume.meta\n";
  }
  if (catalog_found) {
    out += "  catalog: " +
           (legacy_catalog ? std::string("legacy catalog.sf")
                           : "generation " + std::to_string(generation)) +
           ", " + std::to_string(segment_count) + " segments, " +
           std::to_string(referenced_pages) + " referenced pages, " +
           std::to_string(orphan_pages) + " orphans\n";
  } else {
    out += "  catalog: none committed\n";
  }
  if (wal_found) {
    out += "  wal: ";
    if (!wal_header_valid) {
      out += "invalid header\n";
    } else {
      out += "base LSN " + std::to_string(wal_base_lsn) + ", " +
             std::to_string(wal_records) + " records" +
             (wal_torn_tail ? ", torn tail" : "") +
             (wal_stale_records > 0
                  ? ", " + std::to_string(wal_stale_records) + " stale"
                  : "") +
             ", checkpoint LSN " + std::to_string(wal_checkpoint_lsn) + "\n";
    }
  } else {
    out += "  wal: no wal.log\n";
  }
  for (const std::string& line : info) out += "  info: " + line + "\n";
  for (const std::string& line : warnings) out += "  WARN: " + line + "\n";
  for (const std::string& line : errors) out += "  ERROR: " + line + "\n";
  out += clean() ? "  clean: 0 inconsistencies\n"
                 : "  NOT CLEAN: " + std::to_string(errors.size()) +
                       " inconsistencies\n";
  return out;
}

Result<FsckReport> RunFsck(const std::string& dir, FsckOptions options) {
  std::error_code ec;
  if (!std::filesystem::is_directory(dir, ec)) {
    return Status::IOError("not a directory: " + dir);
  }
  FsckReport report;
  report.dir = dir;
  FsckContext ctx;
  ctx.dir = dir;
  ctx.options = options;
  ctx.report = &report;

  CheckVolume(&ctx);
  ScanWal(&ctx);
  CheckCatalog(&ctx);
  CheckWalAgainstCatalog(&ctx);
  CheckWalTxnFraming(&ctx);
  CrossCheck(&ctx);
  return report;
}

}  // namespace starfish
