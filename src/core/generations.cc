#include "core/generations.h"

#include <algorithm>
#include <filesystem>

#include "util/coding.h"
#include "util/crc32.h"
#include "util/file_io.h"

namespace starfish {

namespace {

constexpr uint32_t kCatalogMagic = 0x54434653;  // "SFCT"
constexpr uint32_t kCatalogVersionLegacy = 1;
// v2 and v3 share the frame layout; v3 payloads additionally carry the WAL
// checkpoint LSN (parsed by the store, not here). New files are written v3.
constexpr uint32_t kCatalogVersionV2 = 2;
constexpr uint32_t kCatalogVersion = 3;

/// Name of generation `gen`, without the directory.
std::string GenerationName(uint64_t gen) {
  return "catalog." + std::to_string(gen) + ".sf";
}

/// Parses "catalog.<digits>.sf" into `*gen`; false for everything else
/// (including the legacy "catalog.sf", which has no digits).
bool ParseGenerationName(const std::string& name, uint64_t* gen) {
  constexpr std::string_view kPrefix = "catalog.";
  constexpr std::string_view kSuffix = ".sf";
  if (name.size() <= kPrefix.size() + kSuffix.size()) return false;
  if (name.compare(0, kPrefix.size(), kPrefix) != 0) return false;
  if (name.compare(name.size() - kSuffix.size(), kSuffix.size(), kSuffix) !=
      0) {
    return false;
  }
  const std::string digits = name.substr(
      kPrefix.size(), name.size() - kPrefix.size() - kSuffix.size());
  if (digits.empty() || digits.size() > 18 ||
      digits.find_first_not_of("0123456789") != std::string::npos) {
    return false;
  }
  *gen = std::stoull(digits);
  return true;
}

}  // namespace

std::string CatalogGenerationPath(const std::string& dir, uint64_t gen) {
  return dir + "/" + GenerationName(gen);
}

std::string CurrentPath(const std::string& dir) { return dir + "/CURRENT"; }

std::string LegacyCatalogPath(const std::string& dir) {
  return dir + "/catalog.sf";
}

Result<uint64_t> ReadCurrentGeneration(const std::string& dir, bool* found) {
  std::string bytes;
  STARFISH_RETURN_NOT_OK(ReadFileToString(CurrentPath(dir), &bytes, found));
  if (!*found) return {uint64_t{0}};
  while (!bytes.empty() && (bytes.back() == '\n' || bytes.back() == '\r')) {
    bytes.pop_back();
  }
  uint64_t gen = 0;
  if (!ParseGenerationName(bytes, &gen)) {
    // CURRENT is tiny and written atomically; garbage here is damage, and
    // guessing a generation would silently time-travel the store.
    return Status::Corruption("unparseable CURRENT in " + dir + ": '" +
                              bytes + "'");
  }
  return gen;
}

Status CommitCurrentGeneration(const std::string& dir, uint64_t gen) {
  return WriteFileAtomic(CurrentPath(dir), GenerationName(gen) + "\n");
}

std::vector<uint64_t> ListCatalogGenerations(const std::string& dir) {
  std::vector<uint64_t> gens;
  // Manual increment with an error_code: the range-for ++ throws on a
  // mid-scan I/O error; this listing degrades to "fewer candidates"
  // instead (the checksummed resolution rejects anything misread).
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec), end;
  for (; !ec && it != end; it.increment(ec)) {
    uint64_t gen = 0;
    if (ParseGenerationName(it->path().filename().string(), &gen)) {
      gens.push_back(gen);
    }
  }
  std::sort(gens.begin(), gens.end());
  return gens;
}

void RemoveCatalogGenerationsExcept(const std::string& dir,
                                    const std::vector<uint64_t>& keep) {
  for (uint64_t gen : ListCatalogGenerations(dir)) {
    if (std::find(keep.begin(), keep.end(), gen) != keep.end()) continue;
    std::error_code ec;
    std::filesystem::remove(CatalogGenerationPath(dir, gen), ec);
  }
}

Result<CatalogFile> ReadCatalogFile(const std::string& path) {
  std::string bytes;
  bool found = false;
  STARFISH_RETURN_NOT_OK(ReadFileToString(path, &bytes, &found));
  if (!found) return Status::NotFound("no catalog at " + path);

  std::string_view in(bytes);
  uint32_t magic = 0, version = 0;
  if (!GetFixed32(&in, &magic) || magic != kCatalogMagic ||
      !GetFixed32(&in, &version)) {
    return Status::Corruption("bad catalog magic in " + path);
  }
  CatalogFile file;
  if (version == kCatalogVersionLegacy) {
    file.legacy = true;
    file.payload.assign(in.data(), in.size());
    return file;
  }
  if (version != kCatalogVersionV2 && version != kCatalogVersion) {
    return Status::Corruption("unsupported catalog version in " + path);
  }
  file.version = version;
  if (!GetFixed64(&in, &file.generation) || in.size() < 4) {
    return Status::Corruption("truncated catalog in " + path);
  }
  const std::string_view body = in.substr(0, in.size() - 4);
  std::string_view crc_view = in.substr(in.size() - 4);
  uint32_t stored_crc = 0;
  GetFixed32(&crc_view, &stored_crc);
  const std::string_view framed(bytes.data(), bytes.size() - 4);
  if (Crc32(framed) != stored_crc) {
    return Status::Corruption("catalog checksum mismatch in " + path);
  }
  file.payload.assign(body.data(), body.size());
  return file;
}

std::string EncodeCatalogFile(uint64_t generation, std::string_view payload) {
  std::string bytes;
  PutFixed32(&bytes, kCatalogMagic);
  PutFixed32(&bytes, kCatalogVersion);
  PutFixed64(&bytes, generation);
  bytes.append(payload.data(), payload.size());
  PutFixed32(&bytes, Crc32(bytes));
  return bytes;
}

Status ResolveCommittedCatalog(const std::string& dir, ResolvedCatalog* out) {
  *out = ResolvedCatalog{};
  bool current_found = false;
  STARFISH_ASSIGN_OR_RETURN(out->current,
                            ReadCurrentGeneration(dir, &current_found));
  out->generations = ListCatalogGenerations(dir);
  uint64_t max_seen = out->generations.empty() ? 0 : out->generations.back();
  if (current_found) max_seen = std::max(max_seen, out->current);
  out->next_generation = max_seen + 1;
  if (!current_found) return Status::OK();
  out->any_committed = true;

  std::vector<uint64_t> candidates{out->current};
  for (auto it = out->generations.rbegin(); it != out->generations.rend();
       ++it) {
    // Generations above CURRENT were written but never committed (a crash
    // between the catalog write and the CURRENT repoint): leftovers, never
    // load candidates.
    if (*it < out->current) candidates.push_back(*it);
  }
  for (uint64_t candidate : candidates) {
    const std::string path = CatalogGenerationPath(dir, candidate);
    auto file_or = ReadCatalogFile(path);
    if (file_or.ok() && !file_or.value().legacy &&
        file_or.value().generation == candidate) {
      out->loaded = candidate;
      out->fallback = candidate != out->current;
      out->file = std::move(file_or).value();
      return Status::OK();
    }
    out->rejected.push_back(
        GenerationName(candidate) + ": " +
        (file_or.ok() ? "generation number mismatch in " + path
                      : file_or.status().ToString()));
  }
  return Status::Corruption(
      "no loadable catalog generation in " + dir + " (CURRENT names " +
      std::to_string(out->current) + "): " +
      (out->rejected.empty() ? "none on disk" : out->rejected.back()));
}

}  // namespace starfish
