#include "core/complex_object_store.h"

#include <algorithm>
#include <filesystem>

#include "core/generations.h"
#include "util/coding.h"
#include "util/file_io.h"

namespace starfish {

namespace {

/// Catalog payload layout (framed/checksummed by generations.h):
///   u32 model kind, u32 page_size, u64 key_attr_index, str schema name,
///   u32 schema path count, engine segment catalog, model state.
/// The payload is identical between the legacy v1 file and v2 generations;
/// only the framing differs.

/// Pre-parsed fixed header of a catalog payload.
struct CatalogHeader {
  uint32_t model_kind = 0;
  uint32_t page_size = 0;
  uint64_t key_attr = 0;
  std::string_view schema_name;
  uint32_t path_count = 0;
};

bool ParseCatalogHeader(std::string_view* in, CatalogHeader* header) {
  return GetFixed32(in, &header->model_kind) &&
         GetFixed32(in, &header->page_size) &&
         GetFixed64(in, &header->key_attr) &&
         GetLengthPrefixed(in, &header->schema_name) &&
         GetFixed32(in, &header->path_count);
}

}  // namespace

Result<std::unique_ptr<ComplexObjectStore>> ComplexObjectStore::Open(
    std::shared_ptr<const Schema> schema, StoreOptions options) {
  if (schema == nullptr || schema->path_count() == 0) {
    return Status::InvalidArgument("Open requires a finalized root schema");
  }
  auto store = std::unique_ptr<ComplexObjectStore>(new ComplexObjectStore());
  store->options_ = options;
  store->schema_ = schema;

  StorageEngineOptions engine_options;
  engine_options.disk.page_size = options.page_size;
  engine_options.buffer.frame_count = options.buffer_frames;
  engine_options.buffer.policy = options.replacement;
  engine_options.buffer.write_batch_size = options.write_batch_size;
  engine_options.buffer.shard_count = options.buffer_shards;
  engine_options.backend = options.backend;
  engine_options.path = options.path;
  engine_options.timed = options.timed_volume;
  engine_options.timing = options.timing;
  engine_options.volume_decorator = options.volume_decorator;
  STARFISH_ASSIGN_OR_RETURN(store->engine_,
                            StorageEngine::Open(engine_options));
  // A reopened mmap volume keeps its recorded geometry; mirror it so
  // options() reports the truth.
  store->options_.page_size = store->engine_->disk()->page_size();

  // Persistent reopen: resolve the committed catalog generation. CURRENT
  // names it; when that file fails its checksum (bit rot, torn hardware
  // write) the next-older on-disk generation is the last committed state.
  // Nothing here trusts an unchecksummed byte.
  std::string payload;
  bool reopen = false;
  bool legacy = false;
  if (store->persistent()) {
    const std::string& dir = options.path;
    ResolvedCatalog resolved;
    STARFISH_RETURN_NOT_OK(ResolveCommittedCatalog(dir, &resolved));
    store->next_generation_ = resolved.next_generation;

    if (resolved.any_committed) {
      payload = std::move(resolved.file.payload);
      store->generation_ = resolved.loaded;
      store->fallback_ = resolved.fallback;
      reopen = true;
    } else {
      // Nothing was ever committed through the generation protocol. Either
      // a pre-generation (legacy) store, or a fresh directory — possibly
      // with the stray uncommitted first checkpoint of a crashed run.
      auto legacy_or = ReadCatalogFile(LegacyCatalogPath(dir));
      if (legacy_or.ok()) {
        if (!legacy_or.value().legacy) {
          return Status::Corruption("versioned frame under legacy name " +
                                    LegacyCatalogPath(dir));
        }
        payload = std::move(legacy_or.value().payload);
        reopen = true;
        legacy = true;
      } else if (!legacy_or.status().IsNotFound()) {
        // An unreadable or corrupt legacy catalog has no older generation
        // to fall back to: surface it rather than silently re-formatting.
        return legacy_or.status();
      }
    }
  }

  std::string_view in(payload);
  if (reopen) {
    CatalogHeader header;
    if (!ParseCatalogHeader(&in, &header)) {
      return Status::Corruption("truncated store catalog in " + options.path);
    }
    if (static_cast<StorageModelKind>(header.model_kind) != options.model) {
      return Status::InvalidArgument(
          "store at " + options.path + " was written with model " +
          ToString(static_cast<StorageModelKind>(header.model_kind)) +
          ", not " + ToString(options.model));
    }
    if (header.schema_name != schema->name() ||
        header.path_count != static_cast<uint32_t>(schema->path_count()) ||
        header.key_attr != options.key_attr_index) {
      return Status::InvalidArgument("store at " + options.path +
                                     " was written with a different schema");
    }
    STARFISH_RETURN_NOT_OK(store->engine_->LoadCatalog(&in));
  }

  ModelConfig config;
  config.schema = std::move(schema);
  config.key_attr_index = store->options_.key_attr_index;
  STARFISH_ASSIGN_OR_RETURN(
      store->model_,
      CreateStorageModel(store->options_.model, store->engine_.get(), config));
  if (reopen) {
    STARFISH_RETURN_NOT_OK(store->model_->LoadState(&in));
    if (!in.empty()) {
      return Status::Corruption("trailing garbage after store catalog in " +
                                options.path);
    }
    // The committed catalog is the source of truth for what is allocated:
    // reclaim pages a torn checkpoint allocated but never referenced, and
    // revive pages it freed before the free was committed.
    const Status reconciled =
        store->engine_->disk()->ReconcileLive(store->engine_->AllSegmentPages());
    if (!reconciled.ok()) {
      return Status::Corruption("catalog at " + options.path +
                                " references pages beyond the volume: " +
                                reconciled.ToString());
    }
    // ... and for what is stored: shared slotted pages are written in
    // place, so a torn checkpoint (or a fallback past a corrupt newer
    // generation) can leave records on them the committed state never
    // heard of. Scrub them out before anything scans or inserts.
    std::vector<Tid> live_tids;
    STARFISH_RETURN_NOT_OK(store->model_->CollectLiveTids(&live_tids));
    STARFISH_RETURN_NOT_OK(store->engine_->ScrubSlottedRecords(live_tids));
  } else if (store->persistent() &&
             store->engine_->disk()->page_count() > 0) {
    // Fresh store over a volume that already journaled allocations: a run
    // crashed after its first volume sync but before its first commit.
    // Nothing committed means nothing is referenced — reclaim it all, or
    // the dead run's pages stay live forever.
    STARFISH_RETURN_NOT_OK(store->engine_->disk()->ReconcileLive({}));
  }

  if (store->persistent()) {
    const std::string& dir = options.path;
    if (store->fallback_) {
      // Repair: make CURRENT agree with what actually loaded, so the next
      // crash-free reader needs no fallback.
      STARFISH_RETURN_NOT_OK(CommitCurrentGeneration(dir, store->generation_));
    }
    // Leftover housekeeping. Keep the loaded generation and its actual
    // on-disk predecessor (one level of checksum-fallback depth) —
    // numbers are non-consecutive after an aborted checkpoint burned one,
    // so "generation - 1" may not be the file that exists. Uncommitted
    // newer files and long-superseded older ones go.
    std::vector<uint64_t> keep{store->generation_};
    uint64_t predecessor = 0;
    bool has_predecessor = false;
    for (uint64_t gen : ListCatalogGenerations(dir)) {  // ascending
      if (gen < store->generation_) {
        predecessor = gen;
        has_predecessor = true;
      }
    }
    if (has_predecessor) keep.push_back(predecessor);
    RemoveCatalogGenerationsExcept(dir, reopen && !legacy
                                            ? keep
                                            : std::vector<uint64_t>{});
  }

  // Only a fully opened store may checkpoint: the destructor of a store
  // abandoned mid-reopen must not overwrite a (possibly recoverable)
  // catalog with the empty state of a half-constructed model.
  store->opened_ = true;
  return store;
}

ComplexObjectStore::~ComplexObjectStore() {
  // Only a mutated store needs the best-effort checkpoint: a read-only run
  // must not churn generation files (or touch a down volume at all).
  if (opened_ && persistent() && dirty_) {
    (void)Flush();
  }
}

Status ComplexObjectStore::Put(ObjectRef ref, const Tuple& object) {
  dirty_ = true;
  return model_->Insert(ref, object);
}

Result<Tuple> ComplexObjectStore::Get(ObjectRef ref,
                                      const Projection& projection) {
  return model_->GetByRef(ref, projection);
}

Result<Tuple> ComplexObjectStore::Get(ObjectRef ref) {
  return model_->GetByRef(ref, Projection::All(*schema_));
}

Result<Tuple> ComplexObjectStore::GetByKey(int64_t key,
                                           const Projection& projection) {
  return model_->GetByKey(key, projection);
}

Status ComplexObjectStore::Scan(const Projection& projection,
                                const ScanCallback& fn) {
  return model_->ScanAll(projection, fn);
}

Result<std::vector<ObjectRef>> ComplexObjectStore::Children(ObjectRef ref) {
  return model_->GetChildRefs(ref);
}

Result<Tuple> ComplexObjectStore::RootRecord(ObjectRef ref) {
  return model_->GetRootRecord(ref);
}

Status ComplexObjectStore::UpdateRootRecord(ObjectRef ref,
                                            const Tuple& new_root) {
  dirty_ = true;
  return model_->UpdateRootRecord(ref, new_root);
}

Status ComplexObjectStore::Replace(ObjectRef ref, const Tuple& new_object) {
  dirty_ = true;
  return model_->ReplaceObject(ref, new_object);
}

Status ComplexObjectStore::Remove(ObjectRef ref) {
  dirty_ = true;
  return model_->Remove(ref);
}

Result<Tuple> ReadSession::Get(ObjectRef ref,
                               const Projection& projection) const {
  return store_->Get(ref, projection);
}

Result<Tuple> ReadSession::Get(ObjectRef ref) const { return store_->Get(ref); }

Result<Tuple> ReadSession::GetByKey(int64_t key,
                                    const Projection& projection) const {
  return store_->GetByKey(key, projection);
}

Status ReadSession::Scan(const Projection& projection,
                         const ScanCallback& fn) const {
  return store_->Scan(projection, fn);
}

Result<std::vector<ObjectRef>> ReadSession::Children(ObjectRef ref) const {
  return store_->Children(ref);
}

Result<Tuple> ReadSession::RootRecord(ObjectRef ref) const {
  return store_->RootRecord(ref);
}

Status ComplexObjectStore::BuildCatalogPayload(std::string* payload) const {
  PutFixed32(payload, static_cast<uint32_t>(options_.model));
  PutFixed32(payload, options_.page_size);
  PutFixed64(payload, options_.key_attr_index);
  PutLengthPrefixed(payload, schema_->name());
  PutFixed32(payload, static_cast<uint32_t>(schema_->path_count()));
  engine_->SaveCatalog(payload);
  return model_->SaveState(payload);
}

Status ComplexObjectStore::Flush() {
  STARFISH_RETURN_NOT_OK(engine_->Flush());
  if (!persistent()) return Status::OK();
  const std::string& dir = options_.path;

  // Checkpoint protocol — each step durable before the next begins:
  //   1. Sync the volume (page images + allocator journal): the catalog
  //      must never reference bytes or pages the volume does not have.
  //   2. Write the NEXT catalog generation to its own fsync'd file; the
  //      live generation is never touched.
  //   3. Atomically repoint CURRENT — the one and only commit point.
  // A crash before step 3 leaves the previous generation committed; the
  // next Open reclaims the half-checkpoint's pages via ReconcileLive.
  STARFISH_RETURN_NOT_OK(engine_->disk()->Sync());

  const uint64_t next = next_generation_;
  std::string payload;
  STARFISH_RETURN_NOT_OK(BuildCatalogPayload(&payload));
  STARFISH_RETURN_NOT_OK(WriteFileAtomic(CatalogGenerationPath(dir, next),
                                         EncodeCatalogFile(next, payload)));
  STARFISH_RETURN_NOT_OK(CommitCurrentGeneration(dir, next));

  // Committed. Everything below is housekeeping on dead files.
  const uint64_t previous = generation_;
  generation_ = next;
  next_generation_ = next + 1;
  dirty_ = false;
  RemoveCatalogGenerationsExcept(dir, {previous, next});
  std::error_code ec;
  std::filesystem::remove(LegacyCatalogPath(dir), ec);  // migration complete
  return Status::OK();
}

}  // namespace starfish
