#include "core/complex_object_store.h"

namespace starfish {

Result<std::unique_ptr<ComplexObjectStore>> ComplexObjectStore::Open(
    std::shared_ptr<const Schema> schema, StoreOptions options) {
  if (schema == nullptr || schema->path_count() == 0) {
    return Status::InvalidArgument("Open requires a finalized root schema");
  }
  auto store = std::unique_ptr<ComplexObjectStore>(new ComplexObjectStore());
  store->options_ = options;
  store->schema_ = schema;

  StorageEngineOptions engine_options;
  engine_options.disk.page_size = options.page_size;
  engine_options.buffer.frame_count = options.buffer_frames;
  engine_options.buffer.policy = options.replacement;
  engine_options.buffer.write_batch_size = options.write_batch_size;
  store->engine_ = std::make_unique<StorageEngine>(engine_options);

  ModelConfig config;
  config.schema = std::move(schema);
  config.key_attr_index = options.key_attr_index;
  STARFISH_ASSIGN_OR_RETURN(
      store->model_,
      CreateStorageModel(options.model, store->engine_.get(), config));
  return store;
}

Status ComplexObjectStore::Put(ObjectRef ref, const Tuple& object) {
  return model_->Insert(ref, object);
}

Result<Tuple> ComplexObjectStore::Get(ObjectRef ref,
                                      const Projection& projection) {
  return model_->GetByRef(ref, projection);
}

Result<Tuple> ComplexObjectStore::Get(ObjectRef ref) {
  return model_->GetByRef(ref, Projection::All(*schema_));
}

Result<Tuple> ComplexObjectStore::GetByKey(int64_t key,
                                           const Projection& projection) {
  return model_->GetByKey(key, projection);
}

Status ComplexObjectStore::Scan(const Projection& projection,
                                const ScanCallback& fn) {
  return model_->ScanAll(projection, fn);
}

Result<std::vector<ObjectRef>> ComplexObjectStore::Children(ObjectRef ref) {
  return model_->GetChildRefs(ref);
}

Result<Tuple> ComplexObjectStore::RootRecord(ObjectRef ref) {
  return model_->GetRootRecord(ref);
}

Status ComplexObjectStore::UpdateRootRecord(ObjectRef ref,
                                            const Tuple& new_root) {
  return model_->UpdateRootRecord(ref, new_root);
}

Status ComplexObjectStore::Replace(ObjectRef ref, const Tuple& new_object) {
  return model_->ReplaceObject(ref, new_object);
}

Status ComplexObjectStore::Remove(ObjectRef ref) {
  return model_->Remove(ref);
}

Status ComplexObjectStore::Flush() { return engine_->Flush(); }

}  // namespace starfish
