#include "core/complex_object_store.h"

#include "util/coding.h"
#include "util/file_io.h"

namespace starfish {

namespace {

/// catalog.sf layout (little-endian):
///   u32 magic 'SFCT', u32 version, u32 model kind, u32 page_size,
///   u64 key_attr_index, str schema name, u32 schema path count,
///   engine segment catalog, model state.
constexpr uint32_t kCatalogMagic = 0x54434653;  // "SFCT"
constexpr uint32_t kCatalogVersion = 1;

std::string CatalogPath(const std::string& dir) { return dir + "/catalog.sf"; }

}  // namespace

Result<std::unique_ptr<ComplexObjectStore>> ComplexObjectStore::Open(
    std::shared_ptr<const Schema> schema, StoreOptions options) {
  if (schema == nullptr || schema->path_count() == 0) {
    return Status::InvalidArgument("Open requires a finalized root schema");
  }
  auto store = std::unique_ptr<ComplexObjectStore>(new ComplexObjectStore());
  store->options_ = options;
  store->schema_ = schema;

  StorageEngineOptions engine_options;
  engine_options.disk.page_size = options.page_size;
  engine_options.buffer.frame_count = options.buffer_frames;
  engine_options.buffer.policy = options.replacement;
  engine_options.buffer.write_batch_size = options.write_batch_size;
  engine_options.buffer.shard_count = options.buffer_shards;
  engine_options.backend = options.backend;
  engine_options.path = options.path;
  engine_options.timed = options.timed_volume;
  engine_options.timing = options.timing;
  STARFISH_ASSIGN_OR_RETURN(store->engine_,
                            StorageEngine::Open(engine_options));
  // A reopened mmap volume keeps its recorded geometry; mirror it so
  // options() reports the truth.
  store->options_.page_size = store->engine_->disk()->page_size();

  // Persistent reopen: restore the segment catalog before the model attaches
  // to its segments, and the model's in-memory tables afterwards.
  std::string catalog;
  bool reopen = false;
  if (store->persistent()) {
    STARFISH_RETURN_NOT_OK(
        ReadFileToString(CatalogPath(options.path), &catalog, &reopen));
  }

  std::string_view in(catalog);
  if (reopen) {
    uint32_t magic = 0, version = 0, kind = 0, page_size = 0;
    uint64_t key_attr = 0;
    std::string_view schema_name;
    uint32_t path_count = 0;
    if (!GetFixed32(&in, &magic) || magic != kCatalogMagic ||
        !GetFixed32(&in, &version) || version != kCatalogVersion) {
      return Status::Corruption("bad store catalog in " + options.path);
    }
    if (!GetFixed32(&in, &kind) || !GetFixed32(&in, &page_size) ||
        !GetFixed64(&in, &key_attr) || !GetLengthPrefixed(&in, &schema_name) ||
        !GetFixed32(&in, &path_count)) {
      return Status::Corruption("truncated store catalog in " + options.path);
    }
    if (static_cast<StorageModelKind>(kind) != options.model) {
      return Status::InvalidArgument(
          "store at " + options.path + " was written with model " +
          ToString(static_cast<StorageModelKind>(kind)) + ", not " +
          ToString(options.model));
    }
    if (schema_name != schema->name() ||
        path_count != static_cast<uint32_t>(schema->path_count()) ||
        key_attr != options.key_attr_index) {
      return Status::InvalidArgument("store at " + options.path +
                                     " was written with a different schema");
    }
    STARFISH_RETURN_NOT_OK(store->engine_->LoadCatalog(&in));
  }

  ModelConfig config;
  config.schema = std::move(schema);
  config.key_attr_index = store->options_.key_attr_index;
  STARFISH_ASSIGN_OR_RETURN(
      store->model_,
      CreateStorageModel(store->options_.model, store->engine_.get(), config));
  if (reopen) {
    STARFISH_RETURN_NOT_OK(store->model_->LoadState(&in));
  }
  // Only a fully opened store may checkpoint: the destructor of a store
  // abandoned mid-reopen must not overwrite a (possibly recoverable)
  // catalog with the empty state of a half-constructed model.
  store->opened_ = true;
  return store;
}

ComplexObjectStore::~ComplexObjectStore() {
  if (opened_ && persistent()) {
    (void)Flush();  // best-effort checkpoint
  }
}

Status ComplexObjectStore::Put(ObjectRef ref, const Tuple& object) {
  return model_->Insert(ref, object);
}

Result<Tuple> ComplexObjectStore::Get(ObjectRef ref,
                                      const Projection& projection) {
  return model_->GetByRef(ref, projection);
}

Result<Tuple> ComplexObjectStore::Get(ObjectRef ref) {
  return model_->GetByRef(ref, Projection::All(*schema_));
}

Result<Tuple> ComplexObjectStore::GetByKey(int64_t key,
                                           const Projection& projection) {
  return model_->GetByKey(key, projection);
}

Status ComplexObjectStore::Scan(const Projection& projection,
                                const ScanCallback& fn) {
  return model_->ScanAll(projection, fn);
}

Result<std::vector<ObjectRef>> ComplexObjectStore::Children(ObjectRef ref) {
  return model_->GetChildRefs(ref);
}

Result<Tuple> ComplexObjectStore::RootRecord(ObjectRef ref) {
  return model_->GetRootRecord(ref);
}

Status ComplexObjectStore::UpdateRootRecord(ObjectRef ref,
                                            const Tuple& new_root) {
  return model_->UpdateRootRecord(ref, new_root);
}

Status ComplexObjectStore::Replace(ObjectRef ref, const Tuple& new_object) {
  return model_->ReplaceObject(ref, new_object);
}

Status ComplexObjectStore::Remove(ObjectRef ref) {
  return model_->Remove(ref);
}

Result<Tuple> ReadSession::Get(ObjectRef ref,
                               const Projection& projection) const {
  return store_->Get(ref, projection);
}

Result<Tuple> ReadSession::Get(ObjectRef ref) const { return store_->Get(ref); }

Result<Tuple> ReadSession::GetByKey(int64_t key,
                                    const Projection& projection) const {
  return store_->GetByKey(key, projection);
}

Status ReadSession::Scan(const Projection& projection,
                         const ScanCallback& fn) const {
  return store_->Scan(projection, fn);
}

Result<std::vector<ObjectRef>> ReadSession::Children(ObjectRef ref) const {
  return store_->Children(ref);
}

Result<Tuple> ReadSession::RootRecord(ObjectRef ref) const {
  return store_->RootRecord(ref);
}

Status ComplexObjectStore::Flush() {
  STARFISH_RETURN_NOT_OK(engine_->Flush());
  if (!persistent()) return Status::OK();

  // Sync the volume (extent bytes + volume.meta allocator state) BEFORE
  // committing the catalog: the catalog rename is the checkpoint's commit
  // point, and it must never reference pages volume.meta does not cover.
  // A crash before the rename leaves the previous consistent checkpoint.
  STARFISH_RETURN_NOT_OK(engine_->disk()->Sync());

  std::string catalog;
  PutFixed32(&catalog, kCatalogMagic);
  PutFixed32(&catalog, kCatalogVersion);
  PutFixed32(&catalog, static_cast<uint32_t>(options_.model));
  PutFixed32(&catalog, options_.page_size);
  PutFixed64(&catalog, options_.key_attr_index);
  PutLengthPrefixed(&catalog, schema_->name());
  PutFixed32(&catalog, static_cast<uint32_t>(schema_->path_count()));
  engine_->SaveCatalog(&catalog);
  STARFISH_RETURN_NOT_OK(model_->SaveState(&catalog));
  return WriteFileAtomic(CatalogPath(options_.path), catalog);
}

}  // namespace starfish
