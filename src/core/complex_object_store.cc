#include "core/complex_object_store.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <optional>
#include <unordered_set>

#include "core/generations.h"
#include "storage/segment.h"
#include "util/coding.h"
#include "util/file_io.h"

namespace starfish {

namespace {

/// Catalog payload layout (framed/checksummed by generations.h):
///   u32 model kind, u32 page_size, u64 key_attr_index, str schema name,
///   u32 schema path count, [v3+: u64 wal checkpoint LSN],
///   engine segment catalog, model state.
/// The fixed prefix is identical between the legacy v1 file and v2
/// generations; v3 inserts the WAL checkpoint LSN (the log-truncation
/// point recovery replays from).

/// Pre-parsed fixed header of a catalog payload.
struct CatalogHeader {
  uint32_t model_kind = 0;
  uint32_t page_size = 0;
  uint64_t key_attr = 0;
  std::string_view schema_name;
  uint32_t path_count = 0;
  uint64_t wal_checkpoint_lsn = 0;  ///< 0 for v1/v2 payloads
};

bool ParseCatalogHeader(std::string_view* in, CatalogHeader* header,
                        bool has_checkpoint_lsn) {
  return GetFixed32(in, &header->model_kind) &&
         GetFixed32(in, &header->page_size) &&
         GetFixed64(in, &header->key_attr) &&
         GetLengthPrefixed(in, &header->schema_name) &&
         GetFixed32(in, &header->path_count) &&
         (!has_checkpoint_lsn ||
          GetFixed64(in, &header->wal_checkpoint_lsn));
}

/// WAL op-body encoding of a Put/Replace argument: the object's serialized
/// regions (u32 count, per region u32 tag + u32 len + bytes). Replay
/// decodes and reassembles the tuple, then re-runs the model write path.
std::string EncodeRegions(const std::vector<RecordRegion>& regions) {
  std::string out;
  PutFixed32(&out, static_cast<uint32_t>(regions.size()));
  for (const RecordRegion& region : regions) {
    PutFixed32(&out, region.tag);
    PutFixed32(&out, static_cast<uint32_t>(region.bytes.size()));
    out.append(region.bytes);
  }
  return out;
}

bool DecodeRegions(std::string_view in, std::vector<RecordRegion>* out) {
  out->clear();
  uint32_t count = 0;
  if (!GetFixed32(&in, &count) || count > in.size() / 8) return false;
  out->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    RecordRegion region;
    uint32_t len = 0;
    if (!GetFixed32(&in, &region.tag) || !GetFixed32(&in, &len) ||
        len > in.size()) {
      return false;
    }
    region.bytes.assign(in.data(), len);
    in.remove_prefix(len);
    out->push_back(std::move(region));
  }
  return in.empty();
}

/// Locks an op's write-latch set for apply + append + stamp. The set is
/// sorted by address and deduplicated, so any two ops lock their shared
/// segments in one global order — no lock cycles between concurrent
/// writers, whatever their models hand back.
class SegmentLatchSet {
 public:
  explicit SegmentLatchSet(std::vector<Segment*> segments)
      : segments_(std::move(segments)) {
    std::sort(segments_.begin(), segments_.end());
    segments_.erase(std::unique(segments_.begin(), segments_.end()),
                    segments_.end());
    for (Segment* segment : segments_) segment->write_latch().lock();
  }
  ~SegmentLatchSet() {
    for (auto it = segments_.rbegin(); it != segments_.rend(); ++it) {
      (*it)->write_latch().unlock();
    }
  }
  SegmentLatchSet(const SegmentLatchSet&) = delete;
  SegmentLatchSet& operator=(const SegmentLatchSet&) = delete;

 private:
  std::vector<Segment*> segments_;
};

}  // namespace

Result<std::unique_ptr<ComplexObjectStore>> ComplexObjectStore::Open(
    std::shared_ptr<const Schema> schema, StoreOptions options) {
  if (schema == nullptr || schema->path_count() == 0) {
    return Status::InvalidArgument("Open requires a finalized root schema");
  }
  auto store = std::unique_ptr<ComplexObjectStore>(new ComplexObjectStore());
  store->options_ = options;
  store->schema_ = schema;

  StorageEngineOptions engine_options;
  engine_options.disk.page_size = options.page_size;
  engine_options.buffer.frame_count = options.buffer_frames;
  engine_options.buffer.policy = options.replacement;
  engine_options.buffer.write_batch_size = options.write_batch_size;
  engine_options.buffer.shard_count = options.buffer_shards;
  engine_options.backend = options.backend;
  engine_options.path = options.path;
  engine_options.timed = options.timed_volume;
  engine_options.timing = options.timing;
  engine_options.volume_decorator = options.volume_decorator;
  STARFISH_ASSIGN_OR_RETURN(store->engine_,
                            StorageEngine::Open(engine_options));
  // A reopened mmap volume keeps its recorded geometry; mirror it so
  // options() reports the truth.
  store->options_.page_size = store->engine_->disk()->page_size();

  // Persistent reopen: resolve the committed catalog generation. CURRENT
  // names it; when that file fails its checksum (bit rot, torn hardware
  // write) the next-older on-disk generation is the last committed state.
  // Nothing here trusts an unchecksummed byte.
  std::string payload;
  bool reopen = false;
  bool legacy = false;
  bool catalog_v3 = false;
  if (store->persistent()) {
    const std::string& dir = options.path;
    ResolvedCatalog resolved;
    STARFISH_RETURN_NOT_OK(ResolveCommittedCatalog(dir, &resolved));
    store->next_generation_ = resolved.next_generation;

    if (resolved.any_committed) {
      payload = std::move(resolved.file.payload);
      store->generation_ = resolved.loaded;
      store->fallback_ = resolved.fallback;
      catalog_v3 = resolved.file.version >= 3;
      reopen = true;
    } else {
      // Nothing was ever committed through the generation protocol. Either
      // a pre-generation (legacy) store, or a fresh directory — possibly
      // with the stray uncommitted first checkpoint of a crashed run.
      auto legacy_or = ReadCatalogFile(LegacyCatalogPath(dir));
      if (legacy_or.ok()) {
        if (!legacy_or.value().legacy) {
          return Status::Corruption("versioned frame under legacy name " +
                                    LegacyCatalogPath(dir));
        }
        payload = std::move(legacy_or.value().payload);
        reopen = true;
        legacy = true;
      } else if (!legacy_or.status().IsNotFound()) {
        // An unreadable or corrupt legacy catalog has no older generation
        // to fall back to: surface it rather than silently re-formatting.
        return legacy_or.status();
      }
    }
  }

  std::string_view in(payload);
  CatalogHeader header;
  if (reopen) {
    if (!ParseCatalogHeader(&in, &header, catalog_v3)) {
      return Status::Corruption("truncated store catalog in " + options.path);
    }
    if (static_cast<StorageModelKind>(header.model_kind) != options.model) {
      return Status::InvalidArgument(
          "store at " + options.path + " was written with model " +
          ToString(static_cast<StorageModelKind>(header.model_kind)) +
          ", not " + ToString(options.model));
    }
    if (header.schema_name != schema->name() ||
        header.path_count != static_cast<uint32_t>(schema->path_count()) ||
        header.key_attr != options.key_attr_index) {
      return Status::InvalidArgument("store at " + options.path +
                                     " was written with a different schema");
    }
    STARFISH_RETURN_NOT_OK(store->engine_->LoadCatalog(&in));
  }

  ModelConfig config;
  config.schema = std::move(schema);
  config.key_attr_index = store->options_.key_attr_index;
  config.write_stripes = store->options_.write_stripes;
  STARFISH_ASSIGN_OR_RETURN(
      store->model_,
      CreateStorageModel(store->options_.model, store->engine_.get(), config));
  if (reopen) {
    STARFISH_RETURN_NOT_OK(store->model_->LoadState(&in));
    if (!in.empty()) {
      return Status::Corruption("trailing garbage after store catalog in " +
                                options.path);
    }
    // The committed catalog is the source of truth for what is allocated:
    // reclaim pages a torn checkpoint allocated but never referenced, and
    // revive pages it freed before the free was committed.
    const Status reconciled =
        store->engine_->disk()->ReconcileLive(store->engine_->AllSegmentPages());
    if (!reconciled.ok()) {
      return Status::Corruption("catalog at " + options.path +
                                " references pages beyond the volume: " +
                                reconciled.ToString());
    }
    // What is STORED on the shared slotted pages is reconciled below by
    // AttachWalAndRecover: targeted WAL replay when the log covers the
    // tail, the full scrub otherwise.
  } else if (store->persistent() &&
             store->engine_->disk()->page_count() > 0) {
    // Fresh store over a volume that already journaled allocations: a run
    // crashed after its first volume sync but before its first commit.
    // Nothing committed means nothing is referenced — reclaim it all, or
    // the dead run's pages stay live forever.
    STARFISH_RETURN_NOT_OK(store->engine_->disk()->ReconcileLive({}));
  }

  if (store->persistent()) {
    const std::string& dir = options.path;
    if (store->fallback_) {
      // Repair: make CURRENT agree with what actually loaded, so the next
      // crash-free reader needs no fallback.
      STARFISH_RETURN_NOT_OK(CommitCurrentGeneration(dir, store->generation_));
    }
    // Leftover housekeeping. Keep the loaded generation and its actual
    // on-disk predecessor (one level of checksum-fallback depth) —
    // numbers are non-consecutive after an aborted checkpoint burned one,
    // so "generation - 1" may not be the file that exists. Uncommitted
    // newer files and long-superseded older ones go.
    std::vector<uint64_t> keep{store->generation_};
    uint64_t predecessor = 0;
    bool has_predecessor = false;
    for (uint64_t gen : ListCatalogGenerations(dir)) {  // ascending
      if (gen < store->generation_) {
        predecessor = gen;
        has_predecessor = true;
      }
    }
    if (has_predecessor) keep.push_back(predecessor);
    RemoveCatalogGenerationsExcept(dir, reopen && !legacy
                                            ? keep
                                            : std::vector<uint64_t>{});
  }

  // Serializes logged op bodies AND transaction undo images — the mem
  // backend needs it for the latter, so it exists on every path.
  store->wal_serializer_ = std::make_unique<ObjectSerializer>(store->schema_);

  // WAL attach + crash recovery (persistent backends; a no-op for mem).
  // After this the store's committed state is reconstructed, the log is
  // clean, and the write path logs through wal_.
  STARFISH_RETURN_NOT_OK(
      store->AttachWalAndRecover(reopen, header.wal_checkpoint_lsn));

  // The object cache attaches LAST, and always empty: whatever route the
  // open took (fresh, clean reopen, WAL replay, fallback scrub,
  // paranoid_open), no pre-crash assembly exists to be served. Plain NSM
  // has no by-ref access to accelerate, so the tier stays off there (the
  // paper's "query 1a is not relevant" model).
  if (store->options_.objcache.enabled && store->model_->SupportsGetByRef()) {
    store->objcache_ = std::make_unique<ObjectCache>(store->options_.objcache);
  }

  // Only a fully opened store may checkpoint: the destructor of a store
  // abandoned mid-reopen must not overwrite a (possibly recoverable)
  // catalog with the empty state of a half-constructed model.
  store->opened_ = true;
  return store;
}

Status ComplexObjectStore::AttachWalAndRecover(bool reopen,
                                               uint64_t checkpoint_lsn) {
  if (!persistent()) return Status::OK();
  const std::string& dir = options_.path;
  const std::string wal_path = WalPath(dir);

  STARFISH_ASSIGN_OR_RETURN(WalScan scan, ScanWalFile(wal_path));

  // Decide between targeted replay (trust the validated log tail) and the
  // fallback (trust only the committed state: for a reopen the catalog —
  // restored by the scrub below; for a fresh directory the empty store,
  // already in place after ReconcileLive({})). Replay also runs WITHOUT a
  // committed catalog: under kAlways/kGroup, commits of the first
  // checkpoint interval were acknowledged durable on the strength of the
  // log alone, and re-running them onto the empty initial state is what
  // makes that acknowledgement honest.
  std::string no_replay_reason;
  if (options_.paranoid_open) {
    no_replay_reason = "paranoid_open";
  } else if (fallback_) {
    // The newest catalog was corrupt; the log was truncated against it,
    // not against the older generation that loaded. Its records do not
    // extend the state we actually have.
    no_replay_reason = "generation fallback";
  } else if (!scan.found || !scan.header_valid) {
    no_replay_reason = scan.found ? "invalid WAL header" : "missing WAL";
  } else if (reopen && scan.next_lsn < checkpoint_lsn) {
    // The log ends before the committed checkpoint: it cannot be the log
    // that checkpoint truncated. Do not replay from it.
    no_replay_reason = "WAL older than committed checkpoint";
  }

  if (reopen && !no_replay_reason.empty()) {
    // Restore exactly the committed state: delete every slotted record the
    // committed model state does not know and rebuild the hints. The log
    // tail (if any survived) is DISCARDED — documented for paranoid_open.
    std::vector<Tid> live_tids;
    STARFISH_RETURN_NOT_OK(model_->CollectLiveTids(&live_tids));
    STARFISH_RETURN_NOT_OK(engine_->ScrubSlottedRecords(live_tids));
  }

  const bool replay = no_replay_reason.empty();

  // A rebuilt log must start past every LSN already stamped into a
  // committed page, or sf_fsck's page-LSN-below-horizon check (and the
  // dense-LSN invariant itself) breaks for future records.
  uint64_t rebuild_base = std::max<uint64_t>(checkpoint_lsn, 1);
  if (!replay && reopen) {
    for (PageId id : engine_->AllSegmentPages()) {
      STARFISH_ASSIGN_OR_RETURN(PageGuard guard, engine_->buffer()->Fix(id));
      rebuild_base = std::max(rebuild_base, GetPageLsn(guard.data()) + 1);
    }
  }

  STARFISH_ASSIGN_OR_RETURN(std::unique_ptr<LogFile> log,
                            OpenPosixLogFile(wal_path));
  if (options_.wal_log_decorator) {
    log = options_.wal_log_decorator(std::move(log));
  }
  WalManagerOptions wal_options;
  wal_options.sync = options_.wal_sync;
  wal_options.group_interval_us = options_.wal_group_interval_us;
  // Forcing the rebuild on the scrub path: pass an empty scan so the
  // manager replaces the file instead of appending after a discarded tail.
  STARFISH_ASSIGN_OR_RETURN(
      wal_, WalManager::Open(std::move(log), replay ? scan : WalScan{},
                             rebuild_base, generation_, wal_options));
  wal_checkpoint_page_count_ = engine_->disk()->page_count();
  wal_->SetCheckpointPageCount(wal_checkpoint_page_count_);
  engine_->buffer()->SetWalHook(wal_.get());
  engine_->buffer()->SetPreimageQuery(
      [wal = wal_.get()](PageId id) { return wal->NeedsPreimage(id); });

  if (!replay) return Status::OK();

  // The committed tail: op and txn-marker records at or past the checkpoint
  // LSN. Records below it are stale leftovers of a crash between the
  // catalog commit and the log truncation; checkpoint records are markers,
  // not ops.
  std::vector<const WalRecord*> tail;
  bool stale = scan.base_lsn < checkpoint_lsn;
  for (const WalRecord& record : scan.records) {
    if (record.lsn < checkpoint_lsn) {
      stale = true;
      continue;
    }
    if (IsWalOpKind(record.kind) || IsWalTxnMarker(record.kind)) {
      tail.push_back(&record);
    }
  }

  // Transaction verdicts: an op with a non-zero txn id replays only when
  // its kTxnCommit marker made the log. Everything else of that
  // transaction — forward ops of an unterminated (crashed) transaction,
  // and a rolled-back transaction's forward ops AND compensations alike —
  // is skipped wholesale: phase 1's pre-images restore any of its pages
  // that reached the volume, which IS the committed state.
  std::unordered_set<uint64_t> committed_txns;
  for (const WalRecord* record : tail) {
    if (record->kind != WalRecordKind::kTxnCommit) continue;
    uint64_t txn_id = 0;
    if (!DecodeWalTxnPayload(record->payload, &txn_id)) {
      return Status::Corruption("undecodable WAL txn marker (lsn " +
                                std::to_string(record->lsn) + ") in " +
                                wal_path);
    }
    committed_txns.insert(txn_id);
  }

  if (tail.empty()) {
    if (stale) {
      // Nothing to replay, but the file still carries pre-checkpoint
      // records: truncate now so the next scan starts clean.
      STARFISH_RETURN_NOT_OK(wal_->TruncateAt(
          std::max<uint64_t>(checkpoint_lsn, scan.next_lsn), generation_,
          wal_checkpoint_page_count_));
    }
    return Status::OK();
  }

  // Redo, phase 1 — roll shared pages back: install each page's FIRST
  // pre-image in the tail. First-touch capture means that image is the
  // page's committed content, so phase 2 re-runs from exactly the
  // committed state (idempotent across repeated crashes during recovery).
  // EVERY op record contributes here, aborted and uncommitted-transaction
  // ones included: their pages may have been flushed, and the pre-image is
  // what rolls them back.
  std::vector<std::pair<const WalRecord*, WalOpPayload>> ops;
  ops.reserve(tail.size());
  std::unordered_set<PageId> installed;
  const uint32_t page_size = engine_->disk()->page_size();
  for (const WalRecord* record : tail) {
    if (IsWalTxnMarker(record->kind)) continue;  // no state, no pre-images
    WalOpPayload op;
    if (!DecodeWalOpPayload(record->payload, &op)) {
      return Status::Corruption("undecodable WAL op record (lsn " +
                                std::to_string(record->lsn) + ") in " +
                                wal_path);
    }
    for (const auto& [page, image] : op.preimages) {
      if (!installed.insert(page).second) continue;
      if (page >= engine_->disk()->page_count()) continue;  // reclaimed
      if (image.size() != page_size) {
        return Status::Corruption("WAL pre-image size mismatch for page " +
                                  std::to_string(page));
      }
      STARFISH_ASSIGN_OR_RETURN(PageGuard guard, engine_->buffer()->Fix(page));
      std::memcpy(guard.data(), image.data(), page_size);
      guard.MarkDirty();
    }
    ops.emplace_back(record, std::move(op));
  }

  // Redo, phase 2 — re-run the surviving ops in LSN order through the
  // normal model write path (logging and capture off): non-aborted, and —
  // when the op belongs to a transaction — only with a commit verdict. LSN
  // order is apply order, and the allocator state is deterministic from
  // the committed state after ReconcileLive, so this reconstructs every
  // committed op's effect.
  for (const auto& [record, op] : ops) {
    if (record->flags & kWalFlagAborted) continue;
    if (op.txn_id != 0 && committed_txns.count(op.txn_id) == 0) continue;
    STARFISH_RETURN_NOT_OK(ReplayOp(*record));
    ++replayed_wal_records_;
  }

  // Recovery checkpoint: commit the replayed state and truncate the log,
  // so a post-recovery store always starts from a clean, empty tail.
  dirty_.store(true, std::memory_order_relaxed);
  return Flush();
}

Status ComplexObjectStore::ApplyLogicalOp(WalRecordKind kind, ObjectRef ref,
                                          std::string_view body) {
  switch (kind) {
    case WalRecordKind::kPut:
    case WalRecordKind::kReplace: {
      std::vector<RecordRegion> regions;
      if (!DecodeRegions(body, &regions)) {
        return Status::Corruption("undecodable logical op body");
      }
      STARFISH_ASSIGN_OR_RETURN(Tuple object,
                                wal_serializer_->FromRegionsAll(regions));
      return kind == WalRecordKind::kPut ? model_->Insert(ref, object)
                                         : model_->ReplaceObject(ref, object);
    }
    case WalRecordKind::kUpdateRoot: {
      STARFISH_ASSIGN_OR_RETURN(Tuple root,
                                ObjectSerializer::DecodeFlat(*schema_, body));
      return model_->UpdateRootRecord(ref, root);
    }
    case WalRecordKind::kRemove:
      return model_->Remove(ref);
    case WalRecordKind::kCheckpoint:
    case WalRecordKind::kTxnBegin:
    case WalRecordKind::kTxnCommit:
    case WalRecordKind::kTxnAbort:
      return Status::OK();  // markers carry no object state
  }
  return Status::Corruption("unknown WAL record kind");
}

Status ComplexObjectStore::ReplayOp(const WalRecord& record) {
  WalOpPayload op;
  if (!DecodeWalOpPayload(record.payload, &op)) {
    return Status::Corruption("undecodable WAL op record");
  }
  const Status applied =
      ApplyLogicalOp(record.kind, static_cast<ObjectRef>(op.ref), op.body);
  if (applied.IsCorruption()) {
    return Status::Corruption(applied.message() + " (lsn " +
                              std::to_string(record.lsn) + ")");
  }
  return applied;
}

ComplexObjectStore::~ComplexObjectStore() {
  // Only a mutated store needs the best-effort checkpoint: a read-only run
  // must not churn generation files (or touch a down volume at all), and
  // an explicitly Close()d store already reported its verdict.
  if (closed_.load() || !opened_ || !persistent() ||
      !dirty_.load(std::memory_order_relaxed)) {
    return;
  }
  const Status flushed = Flush();
  if (!flushed.ok()) {
    // A destructor cannot return the failure — Close() exists so callers
    // can observe it. Silently losing a checkpoint is the one thing this
    // store must never do, so the fallback path at least says so.
    std::fprintf(stderr,
                 "starfish: best-effort checkpoint at store destruction "
                 "failed (un-checkpointed work survives only as far as the "
                 "WAL covers it): %s\n",
                 flushed.ToString().c_str());
  }
}

Status ComplexObjectStore::Close() {
  if (closed_.load(std::memory_order_relaxed)) return Status::OK();
  if (!opened_ || !persistent() ||
      !dirty_.load(std::memory_order_relaxed)) {
    closed_.store(true, std::memory_order_relaxed);
    return Status::OK();
  }
  const Status flushed = Flush();
  if (flushed.IsFailedPrecondition()) {
    // An open transaction blocked the checkpoint: the store is NOT closed —
    // commit or roll back, then Close again.
    return flushed;
  }
  // Success or a real checkpoint failure both deliver the verdict to the
  // caller; either way the destructor must not flush (and possibly fail)
  // a second time.
  closed_.store(true, std::memory_order_relaxed);
  return flushed;
}

Status ComplexObjectStore::LoggedWrite(WalRecordKind kind,
                                       const std::function<Status()>& apply,
                                       uint64_t ref, std::string body,
                                       StoreTransaction* txn,
                                       bool compensating) {
  uint64_t lsn = 0;
  {
    // Shared: concurrent with every other writer, excluded only by a
    // checkpoint (which takes commit_mu_ exclusive to seal one state).
    std::shared_lock<std::shared_mutex> commit_lock(commit_mu_);
    if (wal_ != nullptr) {
      // A poisoned log acknowledges nothing: fail fast instead of applying
      // writes whose records can never become durable.
      STARFISH_RETURN_NOT_OK(wal_->status());
    }

    // The op's write-latch set, held across apply + append + stamp. Two
    // ops sharing any page share a segment, so holding the set across all
    // three steps makes per-page LSN order equal apply order — the
    // WAL-before-data invariant under concurrent writers. Ops with
    // disjoint sets (different stripes of a striped direct model) never
    // wait on each other here; the log append below is the only point
    // they serialize.
    std::vector<Segment*> latch_segments;
    model_->CollectWriteSegments(static_cast<ObjectRef>(ref),
                                 &latch_segments);
    SegmentLatchSet latches(std::move(latch_segments));

    // Transactional op: read the state this op clobbers and encode the
    // compensation FIRST (plain latched reads, outside the write capture).
    // A compensation never captures undo — it IS the undo being unwound.
    std::optional<StoreTransaction::UndoRecord> undo;
    if (txn != nullptr && !compensating) {
      auto undo_or = CaptureUndo(kind, static_cast<ObjectRef>(ref));
      if (undo_or.ok()) {
        undo = std::move(undo_or).value();
      } else if (!undo_or.status().IsNotFound()) {
        return undo_or.status();
      }
      // NotFound: the apply below is about to fail the same way, with
      // nothing moved.
    }

    engine_->buffer()->BeginWriteCapture(
        wal_ != nullptr ? wal_checkpoint_page_count_ : 0);
    const Status applied = apply();
    BufferManager::WriteCapture capture =
        engine_->buffer()->TakeWriteCapture();

    if (wal_ == nullptr) {
      // Mem backend (or pre-attach): no log, but the capture still ran so
      // this path keeps the WAL path's invalidation contract — a
      // validation failure that moved no page invalidates nothing. The
      // pending marks the capture left are cleared without stamping
      // (lsn 0: there is no record to point at).
      engine_->buffer()->StampRecoveryLsn(capture.dirtied, 0);
      if (!applied.ok() && capture.dirtied.empty()) return applied;
      InvalidateForWrite(static_cast<ObjectRef>(ref), capture.dirtied);
      if (applied.ok()) {
        dirty_.store(true, std::memory_order_relaxed);
        if (txn != nullptr && !compensating && undo.has_value()) {
          txn->undo_.push_back(std::move(undo).value());
        }
      }
      return applied;
    }

    if (!applied.ok() && capture.dirtied.empty()) {
      // Validation failure before anything was touched: nothing to log
      // (and nothing to invalidate — no page moved).
      return applied;
    }
    // Invalidate BEFORE any acknowledgement (and before the early error
    // returns below — their pages are dirty too): every cached assembly
    // backed by a dirtied page goes, plus the target ref itself, and the
    // cache epochs move so a concurrent in-flight assembly cannot publish
    // a pre-write snapshot. Readers holding an entry keep their consistent
    // pre-write copy — entries are immutable, invalidation only unshares.
    InvalidateForWrite(static_cast<ObjectRef>(ref), capture.dirtied);

    WalOpPayload op;
    op.ref = ref;
    op.pages = capture.dirtied;
    op.preimages = std::move(capture.preimages);
    op.body = std::move(body);
    if (txn != nullptr) {
      op.txn_id = txn->id_;
      if (undo.has_value()) {
        op.undo_kind = static_cast<uint8_t>(undo->kind);
        op.undo_body = undo->body;
      }
    }
    auto lsn_or =
        wal_->AppendOp(kind, applied.ok() ? 0 : kWalFlagAborted, op);
    if (!lsn_or.ok()) {
      // The op's frames stay marked pending (un-evictable, un-flushable):
      // with no record to explain them they must never reach the volume.
      // The log is now poisoned, so every later write and every checkpoint
      // refuses — the bounded frame leak ends with the store (and eviction
      // under it reports FailedPrecondition naming this cause rather than
      // deadlocking; see BufferManager::PickVictim).
      return lsn_or.status();
    }
    lsn = lsn_or.value();
    engine_->buffer()->StampRecoveryLsn(op.pages, lsn);
    dirty_.store(true, std::memory_order_relaxed);
    if (!applied.ok()) {
      // Aborted record logged (its pre-images roll the pages back at
      // replay); surface the apply failure, not a commit ack.
      return applied;
    }
    if (txn != nullptr && !compensating && undo.has_value()) {
      txn->undo_.push_back(std::move(undo).value());
    }
  }
  // In-transaction ops skip the per-op durability wait: the kTxnCommit
  // marker pays it once for the whole transaction (and recovery ignores
  // the ops without it, so acking them early promises nothing).
  if (txn != nullptr) return Status::OK();
  // Durability wait OUTSIDE every lock: this is where concurrent
  // committers pile into one leader epoch (group commit).
  return wal_->Commit(lsn);
}

void ComplexObjectStore::InvalidateForWrite(
    ObjectRef ref, const std::vector<PageId>& dirtied) {
  if (objcache_ == nullptr) return;
  objcache_->InvalidatePages(dirtied);
  objcache_->InvalidateRef(ref);
}

Result<StoreTransaction::UndoRecord> ComplexObjectStore::CaptureUndo(
    WalRecordKind kind, ObjectRef ref) {
  StoreTransaction::UndoRecord undo;
  undo.ref = ref;
  switch (kind) {
    case WalRecordKind::kPut:
      // Undoing an insert needs no read: remove what it put.
      undo.kind = WalRecordKind::kRemove;
      return undo;
    case WalRecordKind::kReplace:
    case WalRecordKind::kRemove: {
      STARFISH_ASSIGN_OR_RETURN(Tuple old_object,
                                model_->ReadObjectForUndo(ref));
      STARFISH_ASSIGN_OR_RETURN(std::vector<RecordRegion> regions,
                                wal_serializer_->ToRegions(old_object));
      undo.kind = kind == WalRecordKind::kReplace ? WalRecordKind::kReplace
                                                  : WalRecordKind::kPut;
      undo.body = EncodeRegions(regions);
      return undo;
    }
    case WalRecordKind::kUpdateRoot: {
      STARFISH_ASSIGN_OR_RETURN(Tuple old_root, model_->GetRootRecord(ref));
      undo.kind = WalRecordKind::kUpdateRoot;
      undo.body = ObjectSerializer::EncodeFlat(*schema_, old_root);
      return undo;
    }
    default:
      return Status::Internal("undo capture on a non-op WAL record kind");
  }
}

Status ComplexObjectStore::AppendTxnMarker(WalRecordKind kind,
                                           uint64_t txn_id, bool wait) {
  if (wal_ == nullptr) return Status::OK();  // mem: in-memory undo carries alone
  uint64_t lsn = 0;
  {
    std::shared_lock<std::shared_mutex> commit_lock(commit_mu_);
    STARFISH_RETURN_NOT_OK(wal_->status());
    STARFISH_ASSIGN_OR_RETURN(lsn, wal_->AppendTxnMarker(kind, txn_id));
    // Markers dirty no page but must still reach (and be truncated by) a
    // checkpoint eventually.
    dirty_.store(true, std::memory_order_relaxed);
  }
  return wait ? wal_->Commit(lsn) : Status::OK();
}

Result<StoreTransaction> ComplexObjectStore::Begin() {
  const uint64_t id = next_txn_id_.fetch_add(1);
  // The begin marker is framing for the log (sf_fsck pairs it with the
  // terminator); the replay verdict hangs off kTxnCommit alone, so it
  // needs no durability of its own.
  STARFISH_RETURN_NOT_OK(
      AppendTxnMarker(WalRecordKind::kTxnBegin, id, /*wait=*/false));
  open_txns_.fetch_add(1);
  return StoreTransaction(this, id);
}

Status ComplexObjectStore::ApplyCompensation(
    const StoreTransaction::UndoRecord& undo, StoreTransaction* txn) {
  std::string body = undo.body;
  return LoggedWrite(
      undo.kind,
      [&] { return ApplyLogicalOp(undo.kind, undo.ref, undo.body); },
      undo.ref, std::move(body), txn, /*compensating=*/true);
}

Status ComplexObjectStore::DoPut(ObjectRef ref, const Tuple& object,
                                 StoreTransaction* txn) {
  std::string body;
  if (wal_ != nullptr) {
    STARFISH_ASSIGN_OR_RETURN(std::vector<RecordRegion> regions,
                              wal_serializer_->ToRegions(object));
    body = EncodeRegions(regions);
  }
  return LoggedWrite(
      WalRecordKind::kPut, [&] { return model_->Insert(ref, object); }, ref,
      std::move(body), txn);
}

Status ComplexObjectStore::Put(ObjectRef ref, const Tuple& object) {
  return DoPut(ref, object, nullptr);
}

Result<Tuple> ComplexObjectStore::Get(ObjectRef ref,
                                      const Projection& projection) {
  if (objcache_ == nullptr) return model_->GetByRef(ref, projection);
  return CachedGet(ref, projection);
}

Result<Tuple> ComplexObjectStore::Get(ObjectRef ref) {
  if (objcache_ == nullptr) {
    return model_->GetByRef(ref, Projection::All(*schema_));
  }
  return CachedGet(ref, Projection::All(*schema_));
}

Result<Tuple> ComplexObjectStore::CachedGet(ObjectRef ref,
                                            const Projection& projection) {
  uint64_t epoch = 0;
  if (ObjCacheEntryRef entry = objcache_->Lookup(ref, &epoch)) {
    if (projection.IsAll()) return entry->object;
    return ProjectAssembled(*schema_, entry->object, projection);
  }
  // A repeated probe for an object already known absent is answered from
  // the negative side table — no model read, no page fix. The verdict is
  // epoch-guarded inside the cache, so any write since it was recorded
  // voids it and the probe falls through again.
  if (objcache_->LookupNegative(ref)) {
    // Same message the models produce, so a cache-served NotFound is
    // indistinguishable (code and text) from one that read the pages.
    return Status::NotFound("no object with ref " + std::to_string(ref));
  }
  // Miss: read-through. Assemble the FULL object (so one miss serves every
  // later projection) under a read-page capture, then publish it guarded
  // by the epoch sampled above — if any invalidation ran in between, the
  // assembly may have observed a half-applied write and is discarded.
  std::vector<PageId> pages;
  Result<Tuple> full_or = [&] {
    BufferManager::ThreadReadCaptureScope capture(&pages);
    return model_->GetByRef(ref, Projection::All(*schema_));
  }();
  if (!full_or.ok()) {
    // A NotFound verdict from the model is worth remembering: record it
    // under the same epoch guard an assembly publishes under.
    if (full_or.status().IsNotFound()) objcache_->InsertNegative(ref, epoch);
    return full_or.status();
  }
  Tuple full = std::move(full_or).value();
  Tuple out = projection.IsAll()
                  ? full
                  : ProjectAssembled(*schema_, full, projection);
  objcache_->Insert(ref, std::move(full), std::move(pages), epoch);
  return out;
}

Result<Tuple> ComplexObjectStore::GetByKey(int64_t key,
                                           const Projection& projection) {
  return model_->GetByKey(key, projection);
}

Status ComplexObjectStore::Scan(const Projection& projection,
                                const ScanCallback& fn) {
  return model_->ScanAll(projection, fn);
}

Result<std::vector<ObjectRef>> ComplexObjectStore::Children(ObjectRef ref) {
  // A cached assembly answers navigation without touching a page; a miss
  // falls through to the model's link-projection read WITHOUT populating
  // the cache (assembling a whole cold object to answer a link walk would
  // inflate exactly the I/O the paper's query 2 avoids).
  if (objcache_ != nullptr) {
    if (ObjCacheEntryRef entry = objcache_->Lookup(ref)) {
      return CollectAssembledLinks(*schema_, entry->object);
    }
  }
  return model_->GetChildRefs(ref);
}

Result<Tuple> ComplexObjectStore::RootRecord(ObjectRef ref) {
  // Same policy as Children: serve hits, never populate on a miss.
  if (objcache_ != nullptr) {
    if (ObjCacheEntryRef entry = objcache_->Lookup(ref)) {
      return ProjectAssembled(*schema_, entry->object,
                              Projection::RootOnly(*schema_));
    }
  }
  return model_->GetRootRecord(ref);
}

Status ComplexObjectStore::DoUpdateRootRecord(ObjectRef ref,
                                              const Tuple& new_root,
                                              StoreTransaction* txn) {
  std::string body;
  if (wal_ != nullptr) {
    body = ObjectSerializer::EncodeFlat(*schema_, new_root);
  }
  return LoggedWrite(
      WalRecordKind::kUpdateRoot,
      [&] { return model_->UpdateRootRecord(ref, new_root); }, ref,
      std::move(body), txn);
}

Status ComplexObjectStore::UpdateRootRecord(ObjectRef ref,
                                            const Tuple& new_root) {
  return DoUpdateRootRecord(ref, new_root, nullptr);
}

Status ComplexObjectStore::DoReplace(ObjectRef ref, const Tuple& new_object,
                                     StoreTransaction* txn) {
  std::string body;
  if (wal_ != nullptr) {
    STARFISH_ASSIGN_OR_RETURN(std::vector<RecordRegion> regions,
                              wal_serializer_->ToRegions(new_object));
    body = EncodeRegions(regions);
  }
  return LoggedWrite(
      WalRecordKind::kReplace,
      [&] { return model_->ReplaceObject(ref, new_object); }, ref,
      std::move(body), txn);
}

Status ComplexObjectStore::Replace(ObjectRef ref, const Tuple& new_object) {
  return DoReplace(ref, new_object, nullptr);
}

Status ComplexObjectStore::DoRemove(ObjectRef ref, StoreTransaction* txn) {
  return LoggedWrite(
      WalRecordKind::kRemove, [&] { return model_->Remove(ref); }, ref, {},
      txn);
}

Status ComplexObjectStore::Remove(ObjectRef ref) {
  return DoRemove(ref, nullptr);
}

StoreTransaction::StoreTransaction(StoreTransaction&& other) noexcept
    : store_(other.store_),
      id_(other.id_),
      open_(other.open_),
      undo_(std::move(other.undo_)) {
  other.store_ = nullptr;
  other.open_ = false;
}

StoreTransaction::~StoreTransaction() {
  if (open_) (void)Rollback();
}

Status StoreTransaction::Put(ObjectRef ref, const Tuple& object) {
  if (!open_) return Status::FailedPrecondition("transaction is closed");
  return store_->DoPut(ref, object, this);
}

Status StoreTransaction::Replace(ObjectRef ref, const Tuple& new_object) {
  if (!open_) return Status::FailedPrecondition("transaction is closed");
  return store_->DoReplace(ref, new_object, this);
}

Status StoreTransaction::UpdateRootRecord(ObjectRef ref,
                                          const Tuple& new_root) {
  if (!open_) return Status::FailedPrecondition("transaction is closed");
  return store_->DoUpdateRootRecord(ref, new_root, this);
}

Status StoreTransaction::Remove(ObjectRef ref) {
  if (!open_) return Status::FailedPrecondition("transaction is closed");
  return store_->DoRemove(ref, this);
}

Status StoreTransaction::Commit() {
  if (!open_) return Status::FailedPrecondition("transaction is closed");
  open_ = false;
  undo_.clear();
  store_->open_txns_.fetch_sub(1);
  // The commit marker is the transaction's ONE durability point: recovery
  // replays the ops only when it finds this record, so the wait here is
  // what makes the whole transaction's acknowledgement honest.
  return store_->AppendTxnMarker(WalRecordKind::kTxnCommit, id_,
                                 /*wait=*/true);
}

Status StoreTransaction::Rollback() {
  if (!open_) return Status::FailedPrecondition("transaction is closed");
  open_ = false;
  // Unwind in reverse op order; keep going past a failed compensation so
  // the rest of the stack still unwinds (recovery fixes whatever this
  // best-effort pass could not — the transaction has no commit marker).
  Status first_failure = Status::OK();
  for (auto it = undo_.rbegin(); it != undo_.rend(); ++it) {
    const Status undone = store_->ApplyCompensation(*it, this);
    if (!undone.ok() && first_failure.ok()) first_failure = undone;
  }
  undo_.clear();
  store_->open_txns_.fetch_sub(1);
  const Status marker = store_->AppendTxnMarker(WalRecordKind::kTxnAbort, id_,
                                                /*wait=*/true);
  return first_failure.ok() ? marker : first_failure;
}

Result<Tuple> ReadSession::Get(ObjectRef ref,
                               const Projection& projection) const {
  return store_->Get(ref, projection);
}

Result<Tuple> ReadSession::Get(ObjectRef ref) const { return store_->Get(ref); }

Result<Tuple> ReadSession::GetByKey(int64_t key,
                                    const Projection& projection) const {
  return store_->GetByKey(key, projection);
}

Status ReadSession::Scan(const Projection& projection,
                         const ScanCallback& fn) const {
  return store_->Scan(projection, fn);
}

Result<std::vector<ObjectRef>> ReadSession::Children(ObjectRef ref) const {
  return store_->Children(ref);
}

Result<Tuple> ReadSession::RootRecord(ObjectRef ref) const {
  return store_->RootRecord(ref);
}

Status ComplexObjectStore::BuildCatalogPayload(
    std::string* payload, uint64_t wal_checkpoint_lsn) const {
  PutFixed32(payload, static_cast<uint32_t>(options_.model));
  PutFixed32(payload, options_.page_size);
  PutFixed64(payload, options_.key_attr_index);
  PutLengthPrefixed(payload, schema_->name());
  PutFixed32(payload, static_cast<uint32_t>(schema_->path_count()));
  PutFixed64(payload, wal_checkpoint_lsn);
  engine_->SaveCatalog(payload);
  return model_->SaveState(payload);
}

Status ComplexObjectStore::Flush() {
  // Writers are excluded for the whole checkpoint: the catalog payload,
  // the WAL checkpoint LSN and the flushed pages must describe ONE state.
  // commit_mu_ exclusive drains every in-flight op and marker append.
  std::unique_lock<std::shared_mutex> lock(commit_mu_);
  if (open_txns_.load() != 0) {
    // An open transaction's ops carry no commit verdict yet: a checkpoint
    // here would fold them into the catalog as if committed, making
    // Rollback unable to unsee them after a crash.
    return Status::FailedPrecondition(
        "cannot checkpoint with " + std::to_string(open_txns_.load()) +
        " transaction(s) open: commit or roll back first");
  }
  if (wal_ != nullptr) {
    // A poisoned log may hold acknowledged-nothing records whose pages are
    // pinned un-flushable: advancing the catalog past them would commit a
    // state the log cannot explain. Stay at the last committed generation.
    STARFISH_RETURN_NOT_OK(wal_->status());
  }
  STARFISH_RETURN_NOT_OK(engine_->Flush());
  if (!persistent()) return Status::OK();
  const std::string& dir = options_.path;

  // Checkpoint protocol — each step durable before the next begins:
  //   1. Make the log durable (WAL-before-data held per write-back batch
  //      during engine Flush; this covers records with no flushed page) and
  //      seal the checkpoint LSN: with write_mu_ held no record can be
  //      appended after it, so every op record is below the LSN the catalog
  //      will carry.
  //   2. Sync the volume (page images + allocator journal): the catalog
  //      must never reference bytes or pages the volume does not have.
  //   3. Write the NEXT catalog generation to its own fsync'd file; the
  //      live generation is never touched.
  //   4. Atomically repoint CURRENT — the one and only commit point.
  //   5. Truncate the log at the checkpoint LSN (housekeeping: a crash
  //      before it leaves stale records the next Open's replay skips).
  // A crash before step 4 leaves the previous generation committed; the
  // next Open reclaims the half-checkpoint's pages via ReconcileLive and
  // replays the log tail from the PREVIOUS checkpoint LSN.
  uint64_t checkpoint_lsn = 0;
  if (wal_ != nullptr) {
    STARFISH_RETURN_NOT_OK(wal_->SyncAll());
    checkpoint_lsn = wal_->next_lsn();
  }
  STARFISH_RETURN_NOT_OK(engine_->disk()->Sync());

  const uint64_t next = next_generation_;
  std::string payload;
  STARFISH_RETURN_NOT_OK(BuildCatalogPayload(&payload, checkpoint_lsn));
  STARFISH_RETURN_NOT_OK(WriteFileAtomic(CatalogGenerationPath(dir, next),
                                         EncodeCatalogFile(next, payload)));
  STARFISH_RETURN_NOT_OK(CommitCurrentGeneration(dir, next));

  // Committed. Everything below is housekeeping on dead files.
  const uint64_t previous = generation_;
  generation_ = next;
  next_generation_ = next + 1;
  dirty_.store(false, std::memory_order_relaxed);
  RemoveCatalogGenerationsExcept(dir, {previous, next});
  std::error_code ec;
  std::filesystem::remove(LegacyCatalogPath(dir), ec);  // migration complete
  if (wal_ != nullptr) {
    wal_checkpoint_page_count_ = engine_->disk()->page_count();
    STARFISH_RETURN_NOT_OK(wal_->TruncateAt(checkpoint_lsn, next,
                                            wal_checkpoint_page_count_));
  }
  return Status::OK();
}

}  // namespace starfish
