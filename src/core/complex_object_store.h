#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <vector>

#include "disk/disk_timing.h"
#include "disk/log_file.h"
#include "models/model_factory.h"
#include "objcache/object_cache.h"
#include "nf2/projection.h"
#include "nf2/schema.h"
#include "nf2/serializer.h"
#include "nf2/value.h"
#include "wal/wal_manager.h"

/// \file complex_object_store.h
/// The library's front door: a complex-object store with a selectable
/// physical storage model and full I/O accounting.
///
/// Typical use (see examples/quickstart.cc):
///
///   auto schema = SchemaBuilder("Doc").AddInt32("Id")...Build();
///   StoreOptions options;
///   options.model = StorageModelKind::kDasdbsNsm;
///   auto store = ComplexObjectStore::Open(schema, options).value();
///   store->Put(0, doc);
///   Tuple back = store->Get(0, Projection::All(*schema)).value();
///   printf("%s\n", store->stats().io.ToString().c_str());
///
/// The store owns a volume and buffer pool; every operation's physical page
/// I/Os, I/O calls and buffer fixes are metered, and the Eq.-1 timing model
/// converts them to estimated service time. Swap `options.model` to compare
/// how the paper's four storage models behave on *your* object schema and
/// workload — the question the paper answers for its railway benchmark.
///
/// The disk backend is pluggable (`options.backend`; see docs/VOLUMES.md):
///
///   * `VolumeKind::kMem` (default) — in-memory arena, nothing persists.
///   * `VolumeKind::kMmap` — pages live in memory-mapped files under
///     `options.path`; the store writes a catalog on Flush()/destruction
///     and `Open` on the same path restores every object, so experiment
///     volumes can exceed RAM and survive process restarts:
///
///       options.backend = VolumeKind::kMmap;
///       options.path = "/tmp/my_experiment";
///       // first run: load objects, Flush(); later runs: Get() them back.
///
///   * `VolumeKind::kDirect` — same persistence and on-disk format, but
///     every page transfer is a real O_DIRECT device I/O that bypasses the
///     kernel page cache: a buffer-pool miss costs what the hardware
///     charges. Requires a filesystem with O_DIRECT support (Open returns
///     NotSupported on tmpfs/overlayfs).

namespace starfish {

/// Store configuration.
struct StoreOptions {
  /// Physical storage model (the paper's recommendation: DASDBS-NSM).
  StorageModelKind model = StorageModelKind::kDasdbsNsm;

  /// Root attribute holding the unique Int32 object key.
  size_t key_attr_index = 0;

  /// Page size in bytes (DASDBS: 2048).
  uint32_t page_size = kDefaultPageSize;

  /// Buffer pool frames (DASDBS testbed: 1200).
  uint32_t buffer_frames = 1200;

  /// Buffer replacement policy.
  ReplacementPolicy replacement = ReplacementPolicy::kLru;

  /// Pages per chained write-back call.
  uint32_t write_batch_size = 32;

  /// Equation-1 service-time coefficients (defaults model a period disk).
  LinearTimingModel timing;

  /// Disk backend underneath the buffer pool. kMmap/kDirect require `path`
  /// and make the store persistent: reopening the same path restores it
  /// (with either backend — they share one on-disk format).
  VolumeKind backend = VolumeKind::kMem;

  /// Backing directory of the persistent backends (created if absent).
  /// When the directory already holds a store, Open reopens it: `model`
  /// must match the stored catalog and `page_size` is adopted from the
  /// volume.
  std::string path;

  /// Wrap the backend in a TimedVolume charging `timing` per I/O call;
  /// the accumulated milliseconds are available via timed_millis().
  bool timed_volume = false;

  /// Buffer-pool shards. 1 (default) keeps the paper-exact single-user
  /// pool (unlocked, global LRU); any other value makes the read path
  /// thread-safe so ReadSession handles can run on concurrent threads
  /// (0 = derive from hardware concurrency). See BufferOptions::shard_count.
  uint32_t buffer_shards = 1;

  /// Write stripes of the direct models (kDsm / kDasdbsDsm): the address
  /// space is partitioned `ref % write_stripes`, each stripe owning its own
  /// segment, so ops on refs in different stripes hold disjoint write-latch
  /// sets and apply truly in parallel (the WAL append stays the one
  /// serialized point). 1 (default) keeps the single-segment layout and
  /// byte-identical paper benches; a persistent store must be reopened with
  /// the stripe count it was created with. The NSM-family models shred
  /// every object over all path relations, so their latch set is always
  /// "everything" and this knob is ignored. Parallel applies additionally
  /// need a thread-safe buffer pool (`buffer_shards != 1`).
  uint32_t write_stripes = 1;

  /// Test seam: wraps the freshly created disk backend (e.g. in a
  /// FaultVolume) before the buffer pool attaches — how the crash-matrix
  /// tests kill the disk mid-checkpoint. Null = no wrapping.
  std::function<std::unique_ptr<Volume>(std::unique_ptr<Volume>)>
      volume_decorator;

  /// When a write op's commit is acknowledged durable (persistent backends
  /// only; the mem backend runs without a WAL). kNone — the pre-WAL
  /// contract and the default: ops are logged but commit returns
  /// immediately, durability arrives at the next Flush checkpoint (the log
  /// still shrinks the loss window to the last group-commit epoch and keeps
  /// every flushed page explained). kAlways/kGroup — every Put/Replace/
  /// Remove/UpdateRootRecord blocks until its record is fsync'd, leader-
  /// batched across concurrent writers (group commit). See docs/WAL.md.
  WalSyncPolicy wal_sync = WalSyncPolicy::kNone;

  /// kGroup epoch accumulation window, microseconds.
  uint32_t wal_group_interval_us = 100;

  /// Reopen via the full committed-state scrub instead of WAL replay, and
  /// DISCARD the log tail beyond the committed checkpoint — acked-but-
  /// uncheckpointed commits are dropped. The recovery of last resort for a
  /// log the operator does not trust.
  bool paranoid_open = false;

  /// Test seam: wraps the WAL's log file (e.g. FaultVolume::WrapLogFile)
  /// so crash tests can tear log appends and drop unsynced log bytes at
  /// power loss. Null = no wrapping.
  std::function<std::unique_ptr<LogFile>(std::unique_ptr<LogFile>)>
      wal_log_decorator;

  /// The assembled-object cache tier above the buffer pool (off by
  /// default; docs/OBJCACHE.md). When enabled, by-ref reads (Get /
  /// Children / RootRecord) serve hot objects from finished assemblies
  /// instead of re-decoding pages, every write op invalidates before it is
  /// acknowledged, and the cache starts empty on every Open — so crash
  /// recovery can never serve a pre-crash assembly. `enabled = false`
  /// leaves every code path and every counter exactly as before (the paper
  /// benches measure per-access physical I/O and stay byte-identical).
  /// Ignored for plain NSM, which has no by-ref access to accelerate.
  ObjCacheOptions objcache;
};

class ComplexObjectStore;

/// A multi-op transaction handle: all-or-nothing over any number of write
/// ops. Obtained from ComplexObjectStore::Begin(); move-only.
///
/// Each op applies (and, on persistent stores, logs) immediately — there is
/// no deferred write set, so the transaction's own thread reads its writes
/// through the normal APIs. Atomicity comes from undo: every successful op
/// pushes a logical compensation (Put ⇒ Remove, Replace/UpdateRootRecord ⇒
/// re-write the old value, Remove ⇒ re-Put the old object) onto an
/// in-memory stack, and the same compensation rides in the op's WAL record
/// for audit. Rollback() applies the stack in reverse; Commit() seals the
/// transaction with a durable kTxnCommit marker.
///
/// Crash contract (persistent stores): recovery replays an op with a
/// non-zero txn id only when its kTxnCommit marker is in the log — an
/// uncommitted or rolled-back transaction's ops (and its compensations)
/// are skipped wholesale, and their first-touch pre-images restore any of
/// their flushed pages. So nothing of an unterminated transaction survives
/// reopen, while a committed one survives byte-for-byte.
///
/// Threading: one transaction belongs to one thread; independent
/// transactions on other threads (and autonomous ops, txn id 0) run
/// concurrently under the usual write-latch rules. Flush() refuses with
/// FailedPrecondition while any transaction is open. A handle destroyed
/// while open rolls back (best effort).
class StoreTransaction {
 public:
  StoreTransaction(StoreTransaction&& other) noexcept;
  StoreTransaction& operator=(StoreTransaction&&) = delete;
  StoreTransaction(const StoreTransaction&) = delete;
  StoreTransaction& operator=(const StoreTransaction&) = delete;
  /// Rolls back if still open (best effort; failures are swallowed —
  /// call Rollback() explicitly to observe them).
  ~StoreTransaction();

  /// The write ops, transactional twins of the store's own.
  Status Put(ObjectRef ref, const Tuple& object);
  Status Replace(ObjectRef ref, const Tuple& new_object);
  Status UpdateRootRecord(ObjectRef ref, const Tuple& new_root);
  Status Remove(ObjectRef ref);

  /// Seals the transaction: appends the kTxnCommit marker and (under
  /// kAlways/kGroup) waits for it to be durable. After OK, every op in the
  /// transaction survives crash recovery.
  Status Commit();

  /// Undoes every applied op in reverse order via logical compensations,
  /// then appends the kTxnAbort marker. The handle is closed either way;
  /// a failed compensation poisons no state a reopen cannot fix (the WAL
  /// skips the whole transaction).
  Status Rollback();

  /// Log-visible transaction id (non-zero).
  uint64_t id() const { return id_; }
  /// True until Commit()/Rollback() (or a move) closes the handle.
  bool open() const { return open_; }

 private:
  friend class ComplexObjectStore;
  struct UndoRecord {
    WalRecordKind kind;  ///< compensation op kind
    ObjectRef ref;
    std::string body;  ///< compensation body, WAL op-body encoding
  };
  StoreTransaction(ComplexObjectStore* store, uint64_t id)
      : store_(store), id_(id), open_(true) {}

  ComplexObjectStore* store_ = nullptr;
  uint64_t id_ = 0;
  bool open_ = false;
  std::vector<UndoRecord> undo_;  ///< in-memory undo stack, pushed per op
};

/// A handle for running queries against an open store from one reader
/// thread — the store's single-writer / multi-reader contract made
/// explicit in the type system.
///
/// Any number of ReadSessions may run concurrently (each on its own
/// thread) against one store, PROVIDED
///   * the store was opened with `buffer_shards != 1` (a thread-safe
///     buffer pool), and
///   * no write API (Put/Replace/Remove/UpdateRootRecord/Flush) and no
///     cache-structure API (engine()->DropCache(), ResetStats) runs while
///     reader threads are active: quiesce the readers, write, resume.
///     Writers MAY run concurrently with each other (since the WAL PR):
///     each op locks only the segments it touches (the model's write-latch
///     set), so ops on disjoint segments — different stripes of a striped
///     direct model — apply truly in parallel, and the durability wait
///     overlaps across threads via group commit (docs/WAL.md). Concurrent
///     writers are safe, readers-vs-writers are not.
///
/// The session itself carries no mutable state — every read path underneath
/// (storage model lookup tables, record manager, serializer) is const over
/// in-memory structures and goes through the thread-safe buffer pool, which
/// is what makes a plain forwarding handle sufficient. The store must
/// outlive its sessions.
class ReadSession {
 public:
  /// Retrieves an object (or the projected part of it) by reference.
  Result<Tuple> Get(ObjectRef ref, const Projection& projection) const;
  Result<Tuple> Get(ObjectRef ref) const;

  /// Retrieves an object by key value.
  Result<Tuple> GetByKey(int64_t key, const Projection& projection) const;

  /// Visits every object.
  Status Scan(const Projection& projection, const ScanCallback& fn) const;

  /// References this object makes to other objects.
  Result<std::vector<ObjectRef>> Children(ObjectRef ref) const;

  /// The object's root record (atomic/link attributes only).
  Result<Tuple> RootRecord(ObjectRef ref) const;

  const ComplexObjectStore* store() const { return store_; }

 private:
  friend class ComplexObjectStore;
  explicit ReadSession(ComplexObjectStore* store) : store_(store) {}

  ComplexObjectStore* store_;
};

/// A complex-object store over one schema.
class ComplexObjectStore {
 public:
  /// Opens a store for objects of `schema`: fresh for the mem backend,
  /// fresh-or-reopened for the mmap backend (see StoreOptions::path).
  static Result<std::unique_ptr<ComplexObjectStore>> Open(
      std::shared_ptr<const Schema> schema, StoreOptions options = {});

  /// Persistent stores checkpoint their catalog on destruction. A failed
  /// destructor checkpoint is LOGGED to stderr but lost as a Status — call
  /// Close() first when you need the verdict.
  ~ComplexObjectStore();

  /// Explicit close: checkpoints a mutated persistent store (exactly the
  /// destructor's fallback, but the failure is returned instead of
  /// swallowed). Idempotent; after an OK Close the destructor rewrites
  /// nothing. Refuses (FailedPrecondition) while a transaction is open.
  Status Close();

  /// Opens a multi-op transaction. See StoreTransaction for the contract.
  Result<StoreTransaction> Begin();

  /// Stores a new object under `ref`. Keys must be unique.
  Status Put(ObjectRef ref, const Tuple& object);

  /// Retrieves an object (or the projected part of it) by reference.
  Result<Tuple> Get(ObjectRef ref, const Projection& projection);
  Result<Tuple> Get(ObjectRef ref);

  /// Retrieves an object by key value.
  Result<Tuple> GetByKey(int64_t key, const Projection& projection);

  /// Visits every object.
  Status Scan(const Projection& projection, const ScanCallback& fn);

  /// References this object makes to other objects.
  Result<std::vector<ObjectRef>> Children(ObjectRef ref);

  /// The object's root record (atomic/link attributes only).
  Result<Tuple> RootRecord(ObjectRef ref);

  /// Replaces the root record's atomic/link attributes.
  Status UpdateRootRecord(ObjectRef ref, const Tuple& new_root);

  /// Replaces the whole object (structure changes allowed; key immutable).
  Status Replace(ObjectRef ref, const Tuple& new_object);

  /// Removes the object and releases its pages.
  Status Remove(ObjectRef ref);

  /// Opens a read session: a handle for running Get/Scan queries from one
  /// reader thread. See ReadSession for the single-writer / multi-reader
  /// contract; concurrent sessions require options.buffer_shards != 1.
  ReadSession OpenReadSession() { return ReadSession(this); }

  /// Write-back of all dirty pages ("disconnect"). Persistent stores also
  /// checkpoint durably: volume sync (page images + allocator journal)
  /// first, then a NEW catalog generation file (catalog.<gen>.sf, fsync'd),
  /// then the atomic CURRENT repoint that commits it — a crash anywhere in
  /// between leaves the previous committed generation intact. See
  /// core/generations.h for the protocol.
  Status Flush();

  /// True when this store survives process restarts (mmap or direct
  /// backend + path; the two share one on-disk format).
  bool persistent() const {
    return options_.backend == VolumeKind::kMmap ||
           options_.backend == VolumeKind::kDirect;
  }

  /// Generation of the committed catalog this store runs on: what Open
  /// resolved (0 for a fresh or legacy store), advanced by every durable
  /// Flush.
  uint64_t catalog_generation() const { return generation_; }

  /// True when Open skipped a corrupt newer generation and recovered the
  /// next-older committed one (the fuzz/crash tests assert on this).
  bool opened_from_fallback() const { return fallback_; }

  /// Number of committed-but-uncheckpointed WAL records Open replayed (0
  /// after a clean close, or when recovery went through the scrub path).
  uint64_t replayed_wal_records() const { return replayed_wal_records_; }

  /// The store's write-ahead log, or nullptr (mem backend / legacy-only).
  /// Tests read LSNs and poison state through this.
  WalManager* wal() { return wal_.get(); }

  /// Estimated milliseconds charged by the TimedVolume wrapper, or 0 when
  /// `options.timed_volume` was not set. Unlike EstimatedIoMillis() (which
  /// converts the counter snapshot after the fact), this accumulates per
  /// I/O call as the work happens.
  double timed_millis() const {
    TimedVolume* timed = engine_->timed_volume();
    return timed != nullptr ? timed->elapsed_ms() : 0.0;
  }

  /// Counter snapshot (physical I/O + buffer).
  EngineStats stats() const { return engine_->stats(); }
  void ResetStats() {
    engine_->ResetStats();
    if (objcache_ != nullptr) objcache_->ResetStats();
  }

  /// Assembly-level counter snapshot — the object-cache analog of the
  /// page-level stats(). All zeros when the cache is disabled.
  ObjCacheStats objcache_stats() const {
    return objcache_ != nullptr ? objcache_->stats() : ObjCacheStats{};
  }

  /// The object cache, or nullptr when disabled. Tests and benches reach
  /// epochs and direct invalidation through this.
  ObjectCache* object_cache() { return objcache_.get(); }

  /// Wholesale cache invalidation. Callers mutating records through
  /// model()/engine() (which bypasses the store's write path and therefore
  /// its invalidation hook) must call this before reading via Get again.
  void InvalidateObjectCache() {
    if (objcache_ != nullptr) objcache_->Clear();
  }

  /// Estimated I/O service time of the work since the last ResetStats,
  /// under the configured Equation-1 timing model.
  double EstimatedIoMillis() const {
    return options_.timing.Cost(engine_->stats().io);
  }

  const StoreOptions& options() const { return options_; }
  const std::shared_ptr<const Schema>& schema() const { return schema_; }
  /// Direct access to the layers underneath (benches and calibration read
  /// counters and drop caches through these). Mutating records through
  /// them BYPASSES the store's dirty tracking: a persistent store only
  /// checkpoints at close when its own write API ran — callers mutating
  /// at this level must call Flush() themselves.
  StorageModel* model() { return model_.get(); }
  StorageEngine* engine() { return engine_.get(); }

 private:
  friend class StoreTransaction;

  ComplexObjectStore() = default;

  /// Serializes the catalog payload (store header + engine segment catalog
  /// + model state) — the bytes a generation file frames and checksums.
  /// `wal_checkpoint_lsn` is the v3 payload's log-truncation point.
  Status BuildCatalogPayload(std::string* payload,
                             uint64_t wal_checkpoint_lsn) const;

  /// Open-time WAL attach + recovery of a persistent store: scans the log,
  /// decides replay vs scrub, installs pre-images and re-runs the
  /// committed tail, wires the buffer-pool hooks. `reopen` = a committed
  /// catalog was loaded; `checkpoint_lsn` = its v3 truncation point (0 for
  /// v2/legacy).
  Status AttachWalAndRecover(bool reopen, uint64_t checkpoint_lsn);

  /// Re-applies one logged op through the normal model write path (replay
  /// only; capture and logging are off).
  Status ReplayOp(const WalRecord& record);

  /// One logged write op: capture + apply + append + stamp under the op's
  /// write-latch set (every segment the model says the op can touch, locked
  /// in address order — held across all three so per-page LSN order is
  /// apply order), then the policy-dependent commit wait outside every
  /// lock. `txn` non-null runs the op inside that transaction: its id and
  /// logical undo ride in the WAL record, the undo is pushed on the
  /// transaction's stack, and the per-op durability wait is skipped (the
  /// commit marker pays it once).
  /// `compensating` marks a rollback compensation: the op is tagged with
  /// the transaction id but captures no undo of its own (it IS the undo)
  /// and pushes nothing on the stack being unwound.
  Status LoggedWrite(WalRecordKind kind,
                     const std::function<Status()>& apply,
                     uint64_t ref, std::string body,
                     StoreTransaction* txn = nullptr,
                     bool compensating = false);

  /// Applies one logical op (WAL op-body encoding) through the model write
  /// path — the shared core of WAL replay and rollback compensations.
  Status ApplyLogicalOp(WalRecordKind kind, ObjectRef ref,
                        std::string_view body);

  /// Reads the state `kind` on `ref` is about to clobber and encodes the
  /// compensation that would restore it (empty body for kPut ⇒ kRemove).
  /// NotFound from the read maps to "no undo yet" for ops whose apply will
  /// fail anyway.
  Result<StoreTransaction::UndoRecord> CaptureUndo(WalRecordKind kind,
                                                   ObjectRef ref);

  /// Appends a txn marker record and (for kTxnCommit under kAlways/kGroup)
  /// waits for durability.
  Status AppendTxnMarker(WalRecordKind kind, uint64_t txn_id, bool wait);

  /// The write ops' shared bodies: encode the WAL op body, then LoggedWrite
  /// (autonomous when `txn` is null, transactional otherwise).
  Status DoPut(ObjectRef ref, const Tuple& object, StoreTransaction* txn);
  Status DoReplace(ObjectRef ref, const Tuple& new_object,
                   StoreTransaction* txn);
  Status DoUpdateRootRecord(ObjectRef ref, const Tuple& new_root,
                            StoreTransaction* txn);
  Status DoRemove(ObjectRef ref, StoreTransaction* txn);

  /// Re-applies one undo record as a logged compensation (Rollback's loop
  /// body): same txn id, no undo capture, no per-op durability wait.
  Status ApplyCompensation(const StoreTransaction::UndoRecord& undo,
                           StoreTransaction* txn);

  /// Get through the object cache (objcache_ != nullptr): serve hits from
  /// the assembled entry, assemble misses under a read-page capture and
  /// publish them epoch-guarded.
  Result<Tuple> CachedGet(ObjectRef ref, const Projection& projection);

  /// Write-path invalidation: drops every cached assembly a just-applied
  /// op could have staled (its dirtied pages + its target ref), BEFORE the
  /// op is acknowledged. `dirtied` is the WAL write capture's page list
  /// (empty on the mem path, where ref-based invalidation carries alone).
  void InvalidateForWrite(ObjectRef ref, const std::vector<PageId>& dirtied);

  StoreOptions options_;
  std::shared_ptr<const Schema> schema_;
  /// Write-ahead log of a persistent store (null for mem / when the open
  /// fell back to a WAL-less legacy flow). Owns wal.log in options_.path.
  /// Declared BEFORE engine_: the buffer pool's teardown flush calls the
  /// ordering hook, so the manager must outlive it.
  std::unique_ptr<WalManager> wal_;
  std::unique_ptr<StorageEngine> engine_;
  std::unique_ptr<StorageModel> model_;
  /// Assembled-object cache (null = disabled). Created EMPTY at the end of
  /// Open, after WAL replay / the fallback scrub ran — reopening is itself
  /// the wholesale invalidation the crash contract requires.
  std::unique_ptr<ObjectCache> objcache_;
  /// Set once Open fully succeeded; gates the destructor's checkpoint.
  bool opened_ = false;
  /// Set by Close(): the destructor's fallback checkpoint already ran (or
  /// was explicitly requested and reported).
  std::atomic<bool> closed_{false};
  /// Committed generation this store runs on (0 = fresh/legacy).
  uint64_t generation_ = 0;
  /// Number the next checkpoint commits as. Always past every generation
  /// file ever seen in the directory, so an aborted checkpoint's leftover
  /// can never collide with a later commit.
  uint64_t next_generation_ = 1;
  bool fallback_ = false;
  /// Mutations since the last committed checkpoint; gates the destructor's
  /// best-effort Flush so a read-only run rewrites nothing. Atomic: set by
  /// writers holding only their per-segment latches.
  std::atomic<bool> dirty_{false};

  /// Serializes logged op bodies (Put/Replace region streams).
  std::unique_ptr<ObjectSerializer> wal_serializer_;
  /// Volume page count at the committed checkpoint: pages below it need a
  /// first-touch pre-image (mirrors WalManager::SetCheckpointPageCount).
  uint64_t wal_checkpoint_page_count_ = 0;
  uint64_t replayed_wal_records_ = 0;
  /// Writer/checkpoint coordination. Write ops and txn markers take it
  /// SHARED — they exclude only each other's Flush, not each other; the
  /// actual mutual exclusion between ops is the per-segment write-latch
  /// set. Flush takes it EXCLUSIVE: the catalog payload, the checkpoint
  /// LSN and the flushed pages must describe ONE state, so every writer is
  /// drained first. Commit waits happen outside it — that overlap is the
  /// group-commit win. Reads stay unlocked: the no-reads-during-writes
  /// contract is unchanged.
  std::shared_mutex commit_mu_;
  /// Ids handed to Begin(); reset per open (safe: recovery ends with a
  /// truncating checkpoint, so ids never meet a previous run's records).
  std::atomic<uint64_t> next_txn_id_{1};
  /// Open transactions; Flush refuses while non-zero.
  std::atomic<uint32_t> open_txns_{0};
};

}  // namespace starfish
