#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

/// \file generations.h
/// Shadow catalog generations: file naming, framing and the CURRENT commit
/// pointer of a persistent store's checkpoint protocol.
///
/// A persistent store directory holds
///
///     catalog.<gen>.sf    one immutable catalog image per checkpoint
///     CURRENT             "catalog.<gen>.sf\n" — the committed generation
///     volume.meta         allocator journal (volume_meta.h)
///     extent_NNNNNN       page images
///
/// A checkpoint NEVER overwrites the live catalog: it writes the next
/// generation to a fresh file (fsync'd), then atomically repoints CURRENT
/// (fsync'd file + directory). The CURRENT rename is the one and only
/// commit point; a crash anywhere before it leaves the previous generation
/// committed, a crash after it leaves the new one. Readers resolve CURRENT
/// and may fall back to the next-older on-disk generation when the live
/// file fails its checksum (bit rot, torn hardware write).
///
/// Catalog file framing (little-endian):
///
///   v3:  u32 magic 'SFCT', u32 version (3), u64 generation,
///        payload, u32 crc32 over everything before it — the payload
///        carries the WAL checkpoint LSN (see wal/wal_format.h)
///   v2:  same frame, version 2, payload without the checkpoint LSN
///        (pre-WAL, read-only: the next checkpoint migrates to v3)
///   v1:  u32 magic, u32 version (1), payload         (legacy, pre-PR4,
///        read-only: the first checkpoint migrates to v2 + CURRENT)
///
/// The payload (model kind, schema fingerprint, segment page lists, model
/// state) is owned by ComplexObjectStore; this module frames and checksums
/// it, so the store and the offline verifier (sf_fsck) agree byte-for-byte
/// on what a valid generation is.
///
/// This module is deliberately free of store types: sf_fsck links it
/// without dragging in the model layer.

namespace starfish {

/// `<dir>/catalog.<gen>.sf`
std::string CatalogGenerationPath(const std::string& dir, uint64_t gen);

/// `<dir>/CURRENT`
std::string CurrentPath(const std::string& dir);

/// `<dir>/catalog.sf` — the pre-generation single catalog.
std::string LegacyCatalogPath(const std::string& dir);

/// Reads CURRENT. `*found` false when absent (not an error: nothing was
/// ever committed). Corruption when present but unparseable — CURRENT is
/// written atomically, so garbage is damage, not a crash artifact.
Result<uint64_t> ReadCurrentGeneration(const std::string& dir, bool* found);

/// Atomically repoints CURRENT at `gen` (fsync'd tmp + rename + directory
/// fsync): THE commit point of a checkpoint.
Status CommitCurrentGeneration(const std::string& dir, uint64_t gen);

/// Generation numbers of all catalog.<gen>.sf files in `dir`, ascending.
std::vector<uint64_t> ListCatalogGenerations(const std::string& dir);

/// Best-effort removal of generation files whose number is not in `keep`.
void RemoveCatalogGenerationsExcept(const std::string& dir,
                                    const std::vector<uint64_t>& keep);

/// A validated, de-framed catalog file.
struct CatalogFile {
  uint64_t generation = 0;  ///< 0 for legacy v1 files
  bool legacy = false;      ///< v1: no generation, no checksum
  /// Frame version (1 legacy, 2 pre-WAL, 3 with WAL checkpoint LSN in the
  /// payload). v2 and v3 share the framing; the store parses the payload
  /// difference.
  uint32_t version = 1;
  std::string payload;      ///< store-owned bytes (model kind onward)
};

/// Reads and validates one catalog file: magic, version, and (v2) the
/// checksum over the whole frame. Corruption — not a partial result — when
/// anything is off; absence is NotFound. The caller decides whether
/// Corruption means "fall back a generation" or "fail the open".
Result<CatalogFile> ReadCatalogFile(const std::string& path);

/// Frames `payload` as a v2 generation file (magic, version, generation,
/// payload, crc32).
std::string EncodeCatalogFile(uint64_t generation, std::string_view payload);

/// Outcome of resolving the committed catalog of a directory.
struct ResolvedCatalog {
  bool any_committed = false;  ///< CURRENT existed
  uint64_t current = 0;        ///< the generation CURRENT names
  uint64_t loaded = 0;         ///< the generation that validated
  bool fallback = false;       ///< loaded != current
  CatalogFile file;            ///< the validated generation's payload
  /// Generation numbers of all on-disk catalog files, ascending.
  std::vector<uint64_t> generations;
  /// First number a new commit may use: past everything ever seen, so an
  /// aborted checkpoint's leftover can never collide with a later commit.
  uint64_t next_generation = 1;
  /// One line per candidate that failed validation (checksum mismatch,
  /// generation-number mismatch), in the order they were tried.
  std::vector<std::string> rejected;
};

/// THE resolution algorithm — shared by ComplexObjectStore::Open and
/// sf_fsck so recovery and verification can never disagree. CURRENT names
/// the live generation; when its file fails validation, on-disk
/// generations below it are tried newest-first (generations above CURRENT
/// were never committed and are never candidates). Returns OK with
/// `any_committed == false` when CURRENT is absent (nothing was ever
/// committed through the protocol — the caller decides about legacy
/// catalogs), Corruption when CURRENT is unparseable or present with no
/// loadable generation. `out` is filled as far as resolution got either
/// way, so a verifier can report the rejected candidates.
Status ResolveCommittedCatalog(const std::string& dir, ResolvedCatalog* out);

}  // namespace starfish
