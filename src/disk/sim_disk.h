#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "disk/io_stats.h"
#include "disk/page.h"
#include "util/status.h"

/// \file sim_disk.h
/// The simulated disk volume.
///
/// SimDisk stands in for the physical disk of the DASDBS testbed. It stores
/// page images in memory and meters every transfer. The unit of metering
/// follows the paper: a *run* of consecutive pages moved by one request is a
/// single I/O call; each page in the run is one page I/O. DASDBS issued
/// separate calls for the root page, the remaining header pages and the data
/// pages of a complex record — the storage layer reproduces that call
/// pattern on top of ReadRun/WriteRun.
///
/// Page ids are dense and increase in allocation order; AllocateRun yields
/// physically contiguous pages, which is how segments implement clustering.
///
/// Storage layout: pages live in a chunked flat arena — fixed-size extents
/// (DiskOptions::extent_bytes, default 4 MiB) each holding a contiguous run
/// of pages. Consecutive page ids are physically adjacent within an extent,
/// so a ReadRun/WriteRun is a bounds check plus one memcpy per extent
/// touched (one for any run that fits in an extent). Extents are never
/// moved or freed while the volume lives, which is what makes the zero-copy
/// accessors below safe.

namespace starfish {

/// Geometry options for a simulated volume.
struct DiskOptions {
  /// Physical page size in bytes. DASDBS default: 2048.
  uint32_t page_size = kDefaultPageSize;

  /// Arena extent size in bytes; each extent stores
  /// max(1, extent_bytes / page_size) contiguous pages.
  uint32_t extent_bytes = 4u << 20;
};

/// An in-memory disk volume with I/O accounting.
///
/// Not thread-safe: the reproduction is single-user, like the paper's
/// experiments.
class SimDisk {
 public:
  explicit SimDisk(DiskOptions options = {});

  /// Usable page size of this volume.
  uint32_t page_size() const { return options_.page_size; }

  /// Pages per arena extent (geometry detail, exposed for tests).
  uint32_t pages_per_extent() const { return pages_per_extent_; }

  /// Number of pages ever allocated (including freed ones).
  uint64_t page_count() const { return page_count_; }

  /// Number of currently allocated (not freed) pages.
  uint64_t live_page_count() const { return live_pages_; }

  /// Allocates one zero-filled page and returns its id.
  PageId Allocate();

  /// Allocates `n` physically contiguous zero-filled pages; returns the id of
  /// the first (ids first .. first+n-1 are all valid).
  PageId AllocateRun(uint32_t n);

  /// Returns a page to the allocator. Freed pages keep their id (ids are
  /// never reused: simplifies reasoning about clustering and is harmless for
  /// experiment-scale volumes).
  Status Free(PageId id);

  /// Reads `count` consecutive pages starting at `first` into `out`
  /// (`count * page_size` bytes). Counts one read call and `count` page reads.
  Status ReadRun(PageId first, uint32_t count, char* out);

  /// Writes `count` consecutive pages starting at `first` from `src`.
  /// Counts one write call and `count` page writes.
  Status WriteRun(PageId first, uint32_t count, const char* src);

  /// Zero-copy variant of ReadRun: instead of copying into a caller buffer,
  /// appends one stable arena pointer per page to `views` (cleared first).
  /// Same accounting as ReadRun (one read call, `count` page reads). The
  /// pointers remain valid for the lifetime of the volume; the buffer
  /// manager uses this to copy straight into its frames with no staging
  /// buffer in between.
  Status ReadRunZeroCopy(PageId first, uint32_t count,
                         std::vector<const char*>* views);

  /// Reads a batch of (not necessarily contiguous) pages as a single chained
  /// I/O call, e.g. DASDBS fetching all data pages of one object in one
  /// request. Counts one read call and `ids.size()` page reads.
  Status ReadChained(const std::vector<PageId>& ids,
                     const std::vector<char*>& outs);

  /// Zero-copy variant of ReadChained: appends one stable arena pointer per
  /// page to `views` (cleared first). Same accounting as ReadChained.
  Status ReadChainedZeroCopy(const std::vector<PageId>& ids,
                             std::vector<const char*>* views);

  /// Writes a batch of (not necessarily contiguous) pages as a single chained
  /// I/O call (DASDBS batches write-back at buffer overflow / disconnect).
  /// Counts one write call and `ids.size()` page writes.
  Status WriteChained(const std::vector<PageId>& ids,
                      const std::vector<const char*>& srcs);

  /// Unmetered read-only view of a page's bytes, or nullptr when `id` is out
  /// of range. Debug/test accessor: it deliberately bypasses the I/O
  /// counters, so production paths must go through the metered calls above.
  const char* PeekPage(PageId id) const;

  /// Cumulative transfer counters.
  const IoStats& stats() const { return stats_; }

  /// Zeroes the counters (page contents are unaffected).
  void ResetStats() { stats_ = IoStats{}; }

 private:
  Status CheckRange(PageId first, uint32_t count) const;

  char* PagePtr(PageId id) {
    return extents_[id / pages_per_extent_].get() +
           static_cast<size_t>(id % pages_per_extent_) * options_.page_size;
  }
  const char* PagePtr(PageId id) const {
    return extents_[id / pages_per_extent_].get() +
           static_cast<size_t>(id % pages_per_extent_) * options_.page_size;
  }

  DiskOptions options_;
  uint32_t pages_per_extent_;
  /// Extent arrays never move once allocated (the vector of owners may
  /// reallocate, the arrays it owns do not) — PeekPage/ZeroCopy views stay
  /// valid across later allocations.
  std::vector<std::unique_ptr<char[]>> extents_;
  uint64_t page_count_ = 0;
  std::vector<bool> freed_;
  uint64_t live_pages_ = 0;
  IoStats stats_;
};

}  // namespace starfish
