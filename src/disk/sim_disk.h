#pragma once

#include <cstdint>
#include <vector>

#include "disk/io_stats.h"
#include "disk/page.h"
#include "util/status.h"

/// \file sim_disk.h
/// The simulated disk volume.
///
/// SimDisk stands in for the physical disk of the DASDBS testbed. It stores
/// page images in memory and meters every transfer. The unit of metering
/// follows the paper: a *run* of consecutive pages moved by one request is a
/// single I/O call; each page in the run is one page I/O. DASDBS issued
/// separate calls for the root page, the remaining header pages and the data
/// pages of a complex record — the storage layer reproduces that call
/// pattern on top of ReadRun/WriteRun.
///
/// Page ids are dense and increase in allocation order; AllocateRun yields
/// physically contiguous pages, which is how segments implement clustering.

namespace starfish {

/// Geometry options for a simulated volume.
struct DiskOptions {
  /// Physical page size in bytes. DASDBS default: 2048.
  uint32_t page_size = kDefaultPageSize;
};

/// An in-memory disk volume with I/O accounting.
///
/// Not thread-safe: the reproduction is single-user, like the paper's
/// experiments.
class SimDisk {
 public:
  explicit SimDisk(DiskOptions options = {});

  /// Usable page size of this volume.
  uint32_t page_size() const { return options_.page_size; }

  /// Number of pages ever allocated (including freed ones).
  uint64_t page_count() const { return pages_.size(); }

  /// Number of currently allocated (not freed) pages.
  uint64_t live_page_count() const { return live_pages_; }

  /// Allocates one zero-filled page and returns its id.
  PageId Allocate();

  /// Allocates `n` physically contiguous zero-filled pages; returns the id of
  /// the first (ids first .. first+n-1 are all valid).
  PageId AllocateRun(uint32_t n);

  /// Returns a page to the allocator. Freed pages keep their id (ids are
  /// never reused: simplifies reasoning about clustering and is harmless for
  /// experiment-scale volumes).
  Status Free(PageId id);

  /// Reads `count` consecutive pages starting at `first` into `out`
  /// (`count * page_size` bytes). Counts one read call and `count` page reads.
  Status ReadRun(PageId first, uint32_t count, char* out);

  /// Writes `count` consecutive pages starting at `first` from `src`.
  /// Counts one write call and `count` page writes.
  Status WriteRun(PageId first, uint32_t count, const char* src);

  /// Reads a batch of (not necessarily contiguous) pages as a single chained
  /// I/O call, e.g. DASDBS fetching all data pages of one object in one
  /// request. Counts one read call and `ids.size()` page reads.
  Status ReadChained(const std::vector<PageId>& ids,
                     const std::vector<char*>& outs);

  /// Writes a batch of (not necessarily contiguous) pages as a single chained
  /// I/O call (DASDBS batches write-back at buffer overflow / disconnect).
  /// Counts one write call and `ids.size()` page writes.
  Status WriteChained(const std::vector<PageId>& ids,
                      const std::vector<const char*>& srcs);

  /// Cumulative transfer counters.
  const IoStats& stats() const { return stats_; }

  /// Zeroes the counters (page contents are unaffected).
  void ResetStats() { stats_ = IoStats{}; }

 private:
  Status CheckRange(PageId first, uint32_t count) const;

  DiskOptions options_;
  std::vector<std::vector<char>> pages_;
  std::vector<bool> freed_;
  uint64_t live_pages_ = 0;
  IoStats stats_;
};

}  // namespace starfish
