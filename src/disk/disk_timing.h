#pragma once

#include "disk/io_stats.h"

/// \file disk_timing.h
/// Disk service-time models.
///
/// Equation 1 of the paper estimates disk cost as
///
///     C_diskIO = d1 * X_IO_calls + d2 * X_IO_pages
///
/// i.e. a fixed positioning cost per I/O request plus a transfer cost per
/// page. LinearTimingModel implements exactly that. PhysicalTimingModel
/// derives d1/d2 from the mechanical parameters of a period disk drive
/// (average seek + half-rotation per call, track transfer rate per page) so
/// the benches can also report estimated milliseconds.

namespace starfish {

/// Equation 1: cost = d1 * calls + d2 * pages. The unit of d1/d2 is up to
/// the caller (milliseconds in the benches).
struct LinearTimingModel {
  double d1_per_call = 24.0;  ///< positioning cost per I/O request
  double d2_per_page = 1.3;   ///< transfer cost per page moved

  /// Cost of the given number of calls and pages.
  double Cost(uint64_t calls, uint64_t pages) const {
    return d1_per_call * static_cast<double>(calls) +
           d2_per_page * static_cast<double>(pages);
  }

  /// Cost of a measured statistics delta.
  double Cost(const IoStats& stats) const {
    return Cost(stats.TotalCalls(), stats.TotalPages());
  }
};

/// Mechanical model of a period SCSI drive (circa 1992, e.g. a 1-GB 5400 rpm
/// unit). Produces the d1/d2 of a LinearTimingModel.
struct PhysicalTimingModel {
  double average_seek_ms = 12.0;       ///< average head movement
  double rpm = 5400.0;                 ///< spindle speed
  double transfer_mb_per_s = 2.5;      ///< sustained media rate
  double controller_overhead_ms = 1.0; ///< per-request software/controller
  uint32_t page_size_bytes = 2048;

  /// Rotational latency: half a revolution on average.
  double RotationalLatencyMs() const { return 0.5 * 60000.0 / rpm; }

  /// Per-page transfer time at the sustained rate.
  double TransferMsPerPage() const {
    return static_cast<double>(page_size_bytes) / (transfer_mb_per_s * 1e6) * 1e3;
  }

  /// Collapses the mechanical parameters into Equation-1 coefficients.
  LinearTimingModel ToLinear() const {
    return LinearTimingModel{
        average_seek_ms + RotationalLatencyMs() + controller_overhead_ms,
        TransferMsPerPage()};
  }
};

}  // namespace starfish
