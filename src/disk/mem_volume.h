#pragma once

#include <memory>
#include <vector>

#include "disk/extent_volume.h"

/// \file mem_volume.h
/// The in-memory disk volume (formerly `SimDisk`).
///
/// MemVolume stores page images in heap-allocated extents. It is the default
/// backend: allocation-cheap, nothing persists, ideal for the paper's
/// counted experiments where only the I/O meter matters. See volume.h for
/// the metering contract and extent_volume.h for the arena layout.

namespace starfish {

/// An in-memory disk volume with I/O accounting.
class MemVolume final : public ExtentVolume {
 public:
  explicit MemVolume(DiskOptions options = {}) : ExtentVolume(options) {}

  VolumeKind kind() const override { return VolumeKind::kMem; }

 private:
  Result<char*> NewExtent(size_t /*index*/) override {
    // make_unique value-initializes: fresh extents are zero-filled.
    owned_.push_back(std::make_unique<char[]>(extent_size_bytes()));
    return owned_.back().get();
  }

  /// Extent owners, mutated only under the base class's allocator lock.
  /// The vector may reallocate; the arrays it owns do not.
  std::vector<std::unique_ptr<char[]>> owned_;
};

}  // namespace starfish
