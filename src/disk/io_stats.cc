#include "disk/io_stats.h"

#include <cstdio>

namespace starfish {

std::string IoStats::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "IoStats{pages_read=%llu, pages_written=%llu, read_calls=%llu, "
                "write_calls=%llu}",
                static_cast<unsigned long long>(pages_read),
                static_cast<unsigned long long>(pages_written),
                static_cast<unsigned long long>(read_calls),
                static_cast<unsigned long long>(write_calls));
  return buf;
}

}  // namespace starfish
