#include "disk/fault_volume.h"

#include <algorithm>
#include <cstring>
#include <string>

namespace starfish {

Status FaultVolume::DownError() const {
  return Status::IOError("simulated power loss: volume is down");
}

void FaultVolume::BufferWriteLocked(PageId id, const char* src) {
  auto it = overlay_.find(id);
  if (it == overlay_.end()) {
    auto image = std::make_unique<char[]>(inner_->page_size());
    it = overlay_.emplace(id, std::move(image)).first;
  }
  std::memcpy(it->second.get(), src, inner_->page_size());
  dirty_.insert(id);
}

bool FaultVolume::WriteFaultFiresLocked() {
  if (plan_.fail_write_call != 0 &&
      write_calls_seen_ == plan_.fail_write_call) {
    ++faults_fired_;
    if (plan_.power_loss_on_fault) down_ = true;
    return true;
  }
  return false;
}

bool FaultVolume::ReadFaultFiresLocked() {
  ++read_calls_seen_;
  if (plan_.fail_read_call != 0 && read_calls_seen_ == plan_.fail_read_call) {
    ++faults_fired_;
    if (plan_.power_loss_on_fault) down_ = true;
    return true;
  }
  return false;
}

Result<PageId> FaultVolume::AllocateRun(uint32_t n) {
  if (down()) return DownError();
  return inner_->AllocateRun(n);
}

Status FaultVolume::Free(PageId id) {
  if (down()) return DownError();
  return inner_->Free(id);
}

Status FaultVolume::ReadRun(PageId first, uint32_t count, char* out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (down_) return DownError();
  if (ReadFaultFiresLocked()) {
    return Status::IOError("injected read fault (call " +
                           std::to_string(read_calls_seen_) + ")");
  }
  // Reads go through the backend for bounds checks and accounting, then the
  // overlay patches pages whose latest image is still un-synced.
  STARFISH_RETURN_NOT_OK(inner_->ReadRun(first, count, out));
  if (!overlay_.empty()) {
    const uint32_t page_size = inner_->page_size();
    for (uint32_t i = 0; i < count; ++i) {
      auto it = overlay_.find(first + i);
      if (it != overlay_.end()) {
        std::memcpy(out + static_cast<size_t>(i) * page_size,
                    it->second.get(), page_size);
      }
    }
  }
  return Status::OK();
}

Status FaultVolume::ReadRunZeroCopy(PageId first, uint32_t count,
                                    std::vector<const char*>* views) {
  std::lock_guard<std::mutex> lock(mu_);
  if (down_) return DownError();
  if (ReadFaultFiresLocked()) {
    return Status::IOError("injected read fault (call " +
                           std::to_string(read_calls_seen_) + ")");
  }
  STARFISH_RETURN_NOT_OK(inner_->ReadRunZeroCopy(first, count, views));
  if (!overlay_.empty()) {
    for (uint32_t i = 0; i < count; ++i) {
      auto it = overlay_.find(first + i);
      if (it != overlay_.end()) (*views)[i] = it->second.get();
    }
  }
  return Status::OK();
}

Status FaultVolume::ReadChained(const std::vector<PageId>& ids,
                                const std::vector<char*>& outs) {
  std::lock_guard<std::mutex> lock(mu_);
  if (down_) return DownError();
  if (ReadFaultFiresLocked()) {
    return Status::IOError("injected read fault (call " +
                           std::to_string(read_calls_seen_) + ")");
  }
  STARFISH_RETURN_NOT_OK(inner_->ReadChained(ids, outs));
  if (!overlay_.empty()) {
    for (size_t i = 0; i < ids.size(); ++i) {
      auto it = overlay_.find(ids[i]);
      if (it != overlay_.end()) {
        std::memcpy(outs[i], it->second.get(), inner_->page_size());
      }
    }
  }
  return Status::OK();
}

Status FaultVolume::ReadChainedZeroCopy(const std::vector<PageId>& ids,
                                        std::vector<const char*>* views) {
  std::lock_guard<std::mutex> lock(mu_);
  if (down_) return DownError();
  if (ReadFaultFiresLocked()) {
    return Status::IOError("injected read fault (call " +
                           std::to_string(read_calls_seen_) + ")");
  }
  STARFISH_RETURN_NOT_OK(inner_->ReadChainedZeroCopy(ids, views));
  if (!overlay_.empty()) {
    for (size_t i = 0; i < ids.size(); ++i) {
      auto it = overlay_.find(ids[i]);
      if (it != overlay_.end()) (*views)[i] = it->second.get();
    }
  }
  return Status::OK();
}

Status FaultVolume::WriteRun(PageId first, uint32_t count, const char* src) {
  std::lock_guard<std::mutex> lock(mu_);
  if (down_) return DownError();
  if (count == 0) return Status::InvalidArgument("empty page run");
  if (first == kInvalidPageId ||
      static_cast<uint64_t>(first) + count > inner_->page_count()) {
    return Status::OutOfRange("page run [" + std::to_string(first) + ", " +
                              std::to_string(first + count) +
                              ") outside volume");
  }
  ++write_calls_seen_;
  const bool fires = WriteFaultFiresLocked();
  const uint32_t apply = fires ? std::min(plan_.torn_pages, count) : count;
  const uint32_t page_size = inner_->page_size();
  if (options_.buffer_unsynced_writes) {
    if (fires) {
      // A torn prefix models pages the controller DMA'd to the medium
      // before dying: it bypasses the volatile overlay and lands in the
      // backend directly, so it SURVIVES the coming power loss.
      if (apply > 0) {
        STARFISH_RETURN_NOT_OK(inner_->WriteRun(first, apply, src));
        // Keep any existing overlay image coherent with the medium.
        for (uint32_t i = 0; i < apply; ++i) {
          auto it = overlay_.find(first + i);
          if (it != overlay_.end()) {
            std::memcpy(it->second.get(),
                        src + static_cast<size_t>(i) * page_size, page_size);
          }
        }
      }
    } else {
      for (uint32_t i = 0; i < count; ++i) {
        BufferWriteLocked(first + i,
                          src + static_cast<size_t>(i) * page_size);
      }
      buffered_writes_.CountWrite(count);
    }
  } else if (apply > 0) {
    STARFISH_RETURN_NOT_OK(fires ? inner_->WriteRun(first, apply, src)
                                 : inner_->WriteRun(first, count, src));
  }
  if (fires) {
    return Status::IOError("injected write fault (call " +
                           std::to_string(write_calls_seen_) + ", " +
                           std::to_string(apply) + "/" +
                           std::to_string(count) + " pages applied)");
  }
  return Status::OK();
}

Status FaultVolume::WriteChained(const std::vector<PageId>& ids,
                                 const std::vector<const char*>& srcs) {
  std::lock_guard<std::mutex> lock(mu_);
  if (down_) return DownError();
  if (ids.empty()) return Status::InvalidArgument("empty chained write");
  if (ids.size() != srcs.size()) {
    return Status::InvalidArgument("chained write size mismatch");
  }
  for (PageId id : ids) {
    if (id == kInvalidPageId ||
        static_cast<uint64_t>(id) >= inner_->page_count()) {
      return Status::OutOfRange("page " + std::to_string(id) +
                                " outside volume");
    }
  }
  ++write_calls_seen_;
  const bool fires = WriteFaultFiresLocked();
  const uint32_t count = static_cast<uint32_t>(ids.size());
  const uint32_t apply = fires ? std::min(plan_.torn_pages, count) : count;
  if (options_.buffer_unsynced_writes) {
    if (fires) {
      // As in WriteRun: a torn prefix hit the medium, not the cache.
      for (uint32_t i = 0; i < apply; ++i) {
        STARFISH_RETURN_NOT_OK(inner_->WriteRun(ids[i], 1, srcs[i]));
        auto it = overlay_.find(ids[i]);
        if (it != overlay_.end()) {
          std::memcpy(it->second.get(), srcs[i], inner_->page_size());
        }
      }
    } else {
      for (uint32_t i = 0; i < count; ++i) BufferWriteLocked(ids[i], srcs[i]);
      buffered_writes_.CountWrite(count);
    }
  } else if (apply > 0) {
    if (fires) {
      const std::vector<PageId> head(ids.begin(), ids.begin() + apply);
      const std::vector<const char*> head_srcs(srcs.begin(),
                                               srcs.begin() + apply);
      STARFISH_RETURN_NOT_OK(inner_->WriteChained(head, head_srcs));
    } else {
      STARFISH_RETURN_NOT_OK(inner_->WriteChained(ids, srcs));
    }
  }
  if (fires) {
    return Status::IOError("injected write fault (call " +
                           std::to_string(write_calls_seen_) + ", " +
                           std::to_string(apply) + "/" +
                           std::to_string(count) + " pages applied)");
  }
  return Status::OK();
}

const char* FaultVolume::PeekPage(PageId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (down_) return nullptr;
  auto it = overlay_.find(id);
  if (it != overlay_.end() &&
      static_cast<uint64_t>(id) < inner_->page_count()) {
    return it->second.get();
  }
  return inner_->PeekPage(id);
}

Status FaultVolume::WritePageUnmetered(PageId id, const char* src) {
  std::lock_guard<std::mutex> lock(mu_);
  if (down_) return DownError();
  // Straight to the medium (the point of the unmetered seam); keep any
  // overlay image coherent with it, as the torn-write path does.
  STARFISH_RETURN_NOT_OK(inner_->WritePageUnmetered(id, src));
  auto it = overlay_.find(id);
  if (it != overlay_.end()) {
    std::memcpy(it->second.get(), src, inner_->page_size());
  }
  return Status::OK();
}

Status FaultVolume::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  if (down_) return DownError();
  ++sync_calls_seen_;
  if (plan_.fail_sync_call != 0 && sync_calls_seen_ == plan_.fail_sync_call) {
    ++faults_fired_;
    if (plan_.power_loss_on_fault) down_ = true;
    // The fault fires before the backend syncs: neither the buffered pages
    // nor the allocator journal advance, as with a device lost mid-flush.
    return Status::IOError("injected sync fault (call " +
                           std::to_string(sync_calls_seen_) + ")");
  }
  for (PageId id : dirty_) {
    // Unmetered apply: the write was already counted when it entered the
    // overlay ("disk cache"); flushing the cache to the platter is not a
    // second transfer. WritePageUnmetered patches the memory image on the
    // mem/mmap backends and issues an uncounted device write on the direct
    // backend — which is what lets the crash matrix run over O_DIRECT.
    STARFISH_RETURN_NOT_OK(
        inner_->WritePageUnmetered(id, overlay_.at(id).get()));
  }
  dirty_.clear();
  return inner_->Sync();
}

/// LogFile decorator sharing the owning FaultVolume's fault plan, power
/// state and mutex. Under buffer_unsynced_writes, appended bytes accumulate
/// in the volume's volatile log cache (log_pending_) and only reach the
/// wrapped file at Sync — so SimulatePowerLoss loses exactly the un-synced
/// tail, as the OS page cache would. A firing log fault may first let a
/// `torn_log_bytes` prefix of that cache reach the medium (the torn tail
/// the WAL scanner must stop at).
class FaultLogFile final : public LogFile {
 public:
  FaultLogFile(FaultVolume* volume, std::unique_ptr<LogFile> inner)
      : volume_(volume), inner_(std::move(inner)) {}

  Status Append(std::string_view bytes) override {
    FaultVolume* v = volume_;
    std::lock_guard<std::mutex> lock(v->mu_);
    if (v->down_) return v->DownError();
    ++v->log_append_calls_seen_;
    if (v->plan_.fail_log_append != 0 &&
        v->log_append_calls_seen_ == v->plan_.fail_log_append) {
      ++v->faults_fired_;
      // The dying cache flushed a prefix of the un-synced stream
      // (including the bytes of this very append) to the medium.
      std::string stream = std::move(v->log_pending_);
      v->log_pending_.clear();
      stream.append(bytes);
      const size_t persist =
          std::min<size_t>(v->plan_.torn_log_bytes, stream.size());
      if (persist > 0) {
        (void)inner_->Append(std::string_view(stream).substr(0, persist));
        (void)inner_->Sync();
      }
      if (v->plan_.power_loss_on_fault) v->down_ = true;
      return Status::IOError("injected log append fault (call " +
                             std::to_string(v->log_append_calls_seen_) + ")");
    }
    if (v->options_.buffer_unsynced_writes) {
      v->log_pending_.append(bytes);
      return Status::OK();
    }
    return inner_->Append(bytes);
  }

  Status Sync() override {
    FaultVolume* v = volume_;
    std::lock_guard<std::mutex> lock(v->mu_);
    if (v->down_) return v->DownError();
    ++v->log_sync_calls_seen_;
    if (v->plan_.fail_log_sync != 0 &&
        v->log_sync_calls_seen_ == v->plan_.fail_log_sync) {
      ++v->faults_fired_;
      std::string stream = std::move(v->log_pending_);
      v->log_pending_.clear();
      const size_t persist =
          std::min<size_t>(v->plan_.torn_log_bytes, stream.size());
      if (persist > 0) {
        (void)inner_->Append(std::string_view(stream).substr(0, persist));
        (void)inner_->Sync();
      }
      if (v->plan_.power_loss_on_fault) v->down_ = true;
      return Status::IOError("injected log sync fault (call " +
                             std::to_string(v->log_sync_calls_seen_) + ")");
    }
    if (!v->log_pending_.empty()) {
      STARFISH_RETURN_NOT_OK(inner_->Append(v->log_pending_));
      v->log_pending_.clear();
    }
    return inner_->Sync();
  }

  Status Replace(std::string_view bytes) override {
    FaultVolume* v = volume_;
    std::lock_guard<std::mutex> lock(v->mu_);
    if (v->down_) return v->DownError();
    // Replace is the atomic, durable whole-file swap (rebuild/truncation):
    // whatever was pending belonged to the superseded content.
    v->log_pending_.clear();
    return inner_->Replace(bytes);
  }

  const std::string& path() const override { return inner_->path(); }

 private:
  FaultVolume* volume_;
  std::unique_ptr<LogFile> inner_;
};

std::unique_ptr<LogFile> FaultVolume::WrapLogFile(
    std::unique_ptr<LogFile> inner) {
  return std::make_unique<FaultLogFile>(this, std::move(inner));
}

IoStats FaultVolume::stats() const {
  IoStats s = inner_->stats();
  s += buffered_writes_.Snapshot();
  return s;
}

void FaultVolume::ResetStats() {
  inner_->ResetStats();
  buffered_writes_.Reset();
}

}  // namespace starfish
