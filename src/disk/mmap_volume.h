#pragma once

#include <memory>
#include <string>
#include <vector>

#include "disk/extent_volume.h"
#include "disk/volume_meta.h"

/// \file mmap_volume.h
/// The persistent, memory-mapped disk volume.
///
/// MmapVolume maps one real file per extent (default 4 MiB, see
/// DiskOptions::extent_bytes) from a backing directory:
///
///     <dir>/volume.meta      geometry + allocator journal (volume_meta.h)
///     <dir>/extent_000000    page images of extent 0
///     <dir>/extent_000001    ...
///
/// Extents are mapped MAP_SHARED, so page images live in the kernel page
/// cache and the volume can exceed RAM; the files survive process exit, and
/// reopening the directory restores the exact page images and allocator
/// state. Mappings never move while the volume lives, giving the same
/// zero-copy pointer guarantees as the in-memory backend.
///
/// Durability: Sync() msyncs every extent and appends a checksummed
/// allocator delta to the volume.meta journal (the destructor does the same,
/// best-effort). A crash can therefore only tear the journal's *tail*
/// record — replay drops it and recovers the last durable allocator state;
/// it can never corrupt the established state, and a checkpoint no longer
/// rewrites metadata proportional to the volume size. Reopening also
/// removes extent files beyond the recorded page count and zero-fills the
/// unallocated tail of the last extent, so pages allocated by a crashed,
/// never-synced run cannot leak stale bytes into future allocations.
///
/// When reopening an existing volume the geometry recorded in volume.meta
/// wins over the geometry passed to Open (a volume cannot change its page
/// size after the fact).

namespace starfish {

/// A file-backed mmap volume with I/O accounting and persistence.
class MmapVolume final : public ExtentVolume {
 public:
  /// Opens (or creates) the volume backed by directory `dir`. The directory
  /// is created if absent. When `dir` already holds a volume, its page
  /// images and allocator state are restored and `options` geometry is
  /// ignored in favour of the recorded one.
  static Result<std::unique_ptr<MmapVolume>> Open(const std::string& dir,
                                                  DiskOptions options = {});

  ~MmapVolume() override;

  VolumeKind kind() const override { return VolumeKind::kMmap; }

  /// msync()s every extent, then appends the allocator delta since the last
  /// checkpoint to the volume.meta journal (fsync'd).
  Status Sync() override;

  /// Backing directory of this volume.
  const std::string& dir() const { return dir_; }

 private:
  MmapVolume(std::string dir, DiskOptions options)
      : ExtentVolume(options), dir_(std::move(dir)) {}

  Result<char*> NewExtent(size_t index) override;

  /// Maps extent file `index`, creating/growing it to extent size when
  /// `create` is set; fails if absent otherwise.
  Result<char*> MapExtent(size_t index, bool create);

  std::string ExtentPath(size_t index) const;
  std::string MetaPath() const;

  /// Appends the allocator changes since `last_checkpoint_` to the journal
  /// (creating it with a header + base snapshot on first use, or rewriting
  /// it compacted when the state moved backwards, i.e. after
  /// ReconcileLive). No-op when nothing changed.
  Status CheckpointAllocator();

  /// Atomically replaces the journal with a compacted header + snapshot of
  /// the current allocator state.
  Status RewriteCompactedMeta();

  /// Removes extent files at or beyond `expected` (orphans of a crashed,
  /// never-committed allocation) so a later re-allocation of their indices
  /// starts from zero-filled images.
  Status RemoveOrphanExtentFiles(size_t expected) const;

  std::string dir_;
  /// Mapped extent addresses for munmap. Grown only at open time and under
  /// the base class's allocator lock (NewExtent); Sync/destructor run on the
  /// writer side of the single-writer contract.
  std::vector<void*> mappings_;
  /// Allocator state as of the last durable journal record; the next
  /// checkpoint appends the delta against it.
  VolumeMetaState last_checkpoint_;
  /// True once volume.meta exists with a valid v2 header on disk.
  bool meta_on_disk_ = false;
  /// Set when an append failed partway (the tail may be torn): appending
  /// past torn bytes would put records where replay never reaches, so
  /// only an atomic compacted rewrite may touch the journal until one
  /// succeeds.
  bool meta_append_unsafe_ = false;
};

}  // namespace starfish
