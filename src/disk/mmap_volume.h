#pragma once

#include <memory>
#include <string>
#include <vector>

#include "disk/extent_volume.h"
#include "disk/volume_meta.h"

/// \file mmap_volume.h
/// The persistent, memory-mapped disk volume.
///
/// MmapVolume maps one real file per extent (default 4 MiB, see
/// DiskOptions::extent_bytes) from a backing directory:
///
///     <dir>/volume.meta      geometry + allocator journal (volume_meta.h)
///     <dir>/extent_000000    page images of extent 0
///     <dir>/extent_000001    ...
///
/// This layout is shared byte-for-byte with DirectVolume — a directory
/// written by one backend reopens under the other; only the access path
/// (page cache vs. O_DIRECT) differs.
///
/// Extents are mapped MAP_SHARED, so page images live in the kernel page
/// cache and the volume can exceed RAM; the files survive process exit, and
/// reopening the directory restores the exact page images and allocator
/// state. Mappings never move while the volume lives, giving the same
/// zero-copy pointer guarantees as the in-memory backend.
///
/// Durability: Sync() msyncs every extent and appends a checksummed
/// allocator delta to the volume.meta journal (the destructor does the same,
/// best-effort). A crash can therefore only tear the journal's *tail*
/// record — replay drops it and recovers the last durable allocator state;
/// it can never corrupt the established state, and a checkpoint no longer
/// rewrites metadata proportional to the volume size. Reopening also
/// removes extent files beyond the recorded page count and zero-fills the
/// unallocated tail of the last extent, so pages allocated by a crashed,
/// never-synced run cannot leak stale bytes into future allocations.
///
/// When reopening an existing volume the geometry recorded in volume.meta
/// wins over the geometry passed to Open (a volume cannot change its page
/// size after the fact).

namespace starfish {

/// A file-backed mmap volume with I/O accounting and persistence.
class MmapVolume final : public ExtentVolume {
 public:
  /// Opens (or creates) the volume backed by directory `dir`. The directory
  /// is created if absent. When `dir` already holds a volume, its page
  /// images and allocator state are restored and `options` geometry is
  /// ignored in favour of the recorded one.
  static Result<std::unique_ptr<MmapVolume>> Open(const std::string& dir,
                                                  DiskOptions options = {});

  ~MmapVolume() override;

  VolumeKind kind() const override { return VolumeKind::kMmap; }

  /// msync()s every extent, then appends the allocator delta since the last
  /// checkpoint to the volume.meta journal (fsync'd).
  Status Sync() override;

  /// Backing directory of this volume.
  const std::string& dir() const { return dir_; }

 private:
  MmapVolume(std::string dir, DiskOptions options)
      : ExtentVolume(options), dir_(std::move(dir)) {
    journal_.Attach(dir_ + "/volume.meta");
  }

  Result<char*> NewExtent(size_t index) override;

  /// Maps extent file `index`, creating/growing it to extent size when
  /// `create` is set; fails if absent otherwise.
  Result<char*> MapExtent(size_t index, bool create);

  std::string ExtentPath(size_t index) const;

  std::string dir_;
  /// Mapped extent addresses for munmap. Grown only at open time and under
  /// the base class's allocator lock (NewExtent); Sync/destructor run on the
  /// writer side of the single-writer contract.
  std::vector<void*> mappings_;
  /// Durable-side allocator bookkeeping (delta appends, compaction, torn
  /// tails) — shared with DirectVolume via volume_meta.h.
  AllocatorJournal journal_;
};

}  // namespace starfish
