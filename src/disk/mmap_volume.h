#pragma once

#include <memory>
#include <string>
#include <vector>

#include "disk/extent_volume.h"

/// \file mmap_volume.h
/// The persistent, memory-mapped disk volume.
///
/// MmapVolume maps one real file per extent (default 4 MiB, see
/// DiskOptions::extent_bytes) from a backing directory:
///
///     <dir>/volume.meta      geometry + allocator state
///     <dir>/extent_000000    page images of extent 0
///     <dir>/extent_000001    ...
///
/// Extents are mapped MAP_SHARED, so page images live in the kernel page
/// cache and the volume can exceed RAM; the files survive process exit, and
/// reopening the directory restores the exact page images and allocator
/// state. Mappings never move while the volume lives, giving the same
/// zero-copy pointer guarantees as the in-memory backend.
///
/// Metadata is rewritten by Sync() and by the destructor; a crash between
/// Syncs can lose allocator metadata (not page bytes) — acceptable for an
/// experiment volume, call Sync() at checkpoints that matter.
///
/// When reopening an existing volume the geometry recorded in volume.meta
/// wins over the geometry passed to Open (a volume cannot change its page
/// size after the fact).

namespace starfish {

/// A file-backed mmap volume with I/O accounting and persistence.
class MmapVolume final : public ExtentVolume {
 public:
  /// Opens (or creates) the volume backed by directory `dir`. The directory
  /// is created if absent. When `dir` already holds a volume, its page
  /// images and allocator state are restored and `options` geometry is
  /// ignored in favour of the recorded one.
  static Result<std::unique_ptr<MmapVolume>> Open(const std::string& dir,
                                                  DiskOptions options = {});

  ~MmapVolume() override;

  VolumeKind kind() const override { return VolumeKind::kMmap; }

  /// msync()s every extent and rewrites the metadata file.
  Status Sync() override;

  /// Backing directory of this volume.
  const std::string& dir() const { return dir_; }

 private:
  MmapVolume(std::string dir, DiskOptions options)
      : ExtentVolume(options), dir_(std::move(dir)) {}

  Result<char*> NewExtent(size_t index) override;

  /// Maps extent file `index`, creating/growing it to extent size when
  /// `create` is set; fails if absent otherwise.
  Result<char*> MapExtent(size_t index, bool create);

  std::string ExtentPath(size_t index) const;
  std::string MetaPath() const;

  Status WriteMeta() const;

  std::string dir_;
  /// Mapped extent addresses for munmap. Grown only at open time and under
  /// the base class's allocator lock (NewExtent); Sync/destructor run on the
  /// writer side of the single-writer contract.
  std::vector<void*> mappings_;
};

}  // namespace starfish
