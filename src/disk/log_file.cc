#include "disk/log_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/file_io.h"

namespace starfish {

namespace {

Status ErrnoStatus(const std::string& what, const std::string& path) {
  return Status::IOError(what + " " + path + ": " + std::strerror(errno));
}

class PosixLogFile final : public LogFile {
 public:
  PosixLogFile(std::string path, int fd) : path_(std::move(path)), fd_(fd) {}

  ~PosixLogFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(std::string_view bytes) override {
    const char* p = bytes.data();
    size_t left = bytes.size();
    while (left > 0) {
      const ssize_t n = ::write(fd_, p, left);
      if (n < 0) {
        if (errno == EINTR) continue;
        return ErrnoStatus("append to", path_);
      }
      p += n;
      left -= static_cast<size_t>(n);
    }
    return Status::OK();
  }

  Status Sync() override {
    if (::fdatasync(fd_) != 0) return ErrnoStatus("fdatasync", path_);
    return Status::OK();
  }

  Status Replace(std::string_view bytes) override {
    // WriteFileAtomic's rename is the commit point; only after it succeeded
    // is the old fd (now pointing at an unlinked inode) swapped for a fresh
    // append fd on the new file. A failure leaves the old log intact and
    // this object still appending to it.
    STARFISH_RETURN_NOT_OK(WriteFileAtomic(path_, bytes));
    const int fd = ::open(path_.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
    if (fd < 0) return ErrnoStatus("reopen", path_);
    ::close(fd_);
    fd_ = fd;
    return Status::OK();
  }

  const std::string& path() const override { return path_; }

 private:
  std::string path_;
  int fd_;
};

}  // namespace

Result<std::unique_ptr<LogFile>> OpenPosixLogFile(const std::string& path) {
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) return ErrnoStatus("open log", path);
  return {std::unique_ptr<LogFile>(new PosixLogFile(path, fd))};
}

}  // namespace starfish
