#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "util/status.h"

/// \file log_file.h
/// Append-only log file abstraction for the write-ahead log.
///
/// Lives in the disk layer (not src/wal/) for the same reason Volume does:
/// the fault-injection decorator (FaultVolume::WrapLogFile) must be able to
/// interpose on log I/O without the disk layer depending on the WAL layer.
/// The interface is deliberately tiny — the WAL's durability story needs
/// exactly three physical operations:
///
///   * Append — add bytes at the tail. NOT atomic and NOT durable by
///     itself: a crash can leave a torn suffix, which is why every WAL
///     record carries its own CRC and the scanner drops a corrupt tail.
///   * Sync — fdatasync. Everything appended so far survives power loss
///     once Sync returns; this is the group-commit leader's one syscall.
///   * Replace — atomically swap the whole file for `bytes` (write tmp,
///     fsync, rename, fsync dir) and continue appending after the new
///     content. Checkpoints use it to truncate the log: the rename is the
///     commit point, so a crash mid-replace leaves either the old or the
///     new log, never a hybrid.
///
/// Error poisoning is the CALLER's job (WalManager): a failed append or
/// sync leaves the file object usable but the log's durable prefix unknown,
/// and the WAL layer must stop acknowledging commits — fsyncgate semantics.

namespace starfish {

class LogFile {
 public:
  virtual ~LogFile() = default;

  /// Appends `bytes` at the current tail (volatile until Sync).
  virtual Status Append(std::string_view bytes) = 0;

  /// Makes every appended byte durable (fdatasync).
  virtual Status Sync() = 0;

  /// Atomically replaces the whole file content with `bytes`, durably.
  /// Subsequent Appends continue after the new content.
  virtual Status Replace(std::string_view bytes) = 0;

  /// The file's path (diagnostics; the scanner reads it directly).
  virtual const std::string& path() const = 0;
};

/// Opens (creating if absent) the POSIX log file at `path` for appending.
Result<std::unique_ptr<LogFile>> OpenPosixLogFile(const std::string& path);

}  // namespace starfish
