#include "disk/sim_disk.h"

#include <cstring>
#include <string>

namespace starfish {

SimDisk::SimDisk(DiskOptions options) : options_(options) {}

PageId SimDisk::Allocate() { return AllocateRun(1); }

PageId SimDisk::AllocateRun(uint32_t n) {
  const PageId first = static_cast<PageId>(pages_.size());
  for (uint32_t i = 0; i < n; ++i) {
    pages_.emplace_back(options_.page_size, '\0');
    freed_.push_back(false);
  }
  live_pages_ += n;
  return first;
}

Status SimDisk::Free(PageId id) {
  STARFISH_RETURN_NOT_OK(CheckRange(id, 1));
  if (freed_[id]) {
    return Status::InvalidArgument("page " + std::to_string(id) +
                                   " already freed");
  }
  freed_[id] = true;
  --live_pages_;
  return Status::OK();
}

Status SimDisk::CheckRange(PageId first, uint32_t count) const {
  if (count == 0) return Status::InvalidArgument("empty page run");
  const uint64_t end = static_cast<uint64_t>(first) + count;
  if (first == kInvalidPageId || end > pages_.size()) {
    return Status::OutOfRange("page run [" + std::to_string(first) + ", " +
                              std::to_string(end) + ") outside volume of " +
                              std::to_string(pages_.size()) + " pages");
  }
  return Status::OK();
}

Status SimDisk::ReadRun(PageId first, uint32_t count, char* out) {
  STARFISH_RETURN_NOT_OK(CheckRange(first, count));
  for (uint32_t i = 0; i < count; ++i) {
    std::memcpy(out + static_cast<size_t>(i) * options_.page_size,
                pages_[first + i].data(), options_.page_size);
  }
  stats_.read_calls += 1;
  stats_.pages_read += count;
  return Status::OK();
}

Status SimDisk::WriteRun(PageId first, uint32_t count, const char* src) {
  STARFISH_RETURN_NOT_OK(CheckRange(first, count));
  for (uint32_t i = 0; i < count; ++i) {
    std::memcpy(pages_[first + i].data(),
                src + static_cast<size_t>(i) * options_.page_size,
                options_.page_size);
  }
  stats_.write_calls += 1;
  stats_.pages_written += count;
  return Status::OK();
}

Status SimDisk::ReadChained(const std::vector<PageId>& ids,
                            const std::vector<char*>& outs) {
  if (ids.empty()) return Status::InvalidArgument("empty chained read");
  if (ids.size() != outs.size()) {
    return Status::InvalidArgument("chained read: ids/outs size mismatch");
  }
  for (size_t i = 0; i < ids.size(); ++i) {
    STARFISH_RETURN_NOT_OK(CheckRange(ids[i], 1));
    std::memcpy(outs[i], pages_[ids[i]].data(), options_.page_size);
  }
  stats_.read_calls += 1;
  stats_.pages_read += ids.size();
  return Status::OK();
}

Status SimDisk::WriteChained(const std::vector<PageId>& ids,
                             const std::vector<const char*>& srcs) {
  if (ids.empty()) return Status::InvalidArgument("empty chained write");
  if (ids.size() != srcs.size()) {
    return Status::InvalidArgument("chained write: ids/srcs size mismatch");
  }
  for (size_t i = 0; i < ids.size(); ++i) {
    STARFISH_RETURN_NOT_OK(CheckRange(ids[i], 1));
    std::memcpy(pages_[ids[i]].data(), srcs[i], options_.page_size);
  }
  stats_.write_calls += 1;
  stats_.pages_written += ids.size();
  return Status::OK();
}

}  // namespace starfish
