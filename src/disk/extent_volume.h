#pragma once

#include <cstdint>
#include <vector>

#include "disk/volume.h"

/// \file extent_volume.h
/// Shared implementation core of the extent-backed volumes.
///
/// Both concrete page stores — the in-memory arena (MemVolume) and the
/// file-per-extent mmap backend (MmapVolume) — keep pages in fixed-size
/// extents (DiskOptions::extent_bytes, default 4 MiB) each holding a
/// contiguous run of pages. Consecutive page ids are physically adjacent
/// within an extent, so a ReadRun/WriteRun is a bounds check plus one memcpy
/// per extent touched (one for any run that fits in an extent). Extents are
/// never moved or unmapped while the volume lives, which is what makes the
/// zero-copy accessors safe.
///
/// ExtentVolume implements every data operation over a flat `char*` extent
/// table; subclasses only provision extents (heap allocation vs. mmap) and
/// release them in their destructor.

namespace starfish {

/// Extent-table volume core. Subclasses provide NewExtent().
class ExtentVolume : public Volume {
 public:
  uint32_t page_size() const override { return options_.page_size; }
  uint32_t pages_per_extent() const override { return pages_per_extent_; }
  uint64_t page_count() const override { return page_count_; }
  uint64_t live_page_count() const override { return live_pages_; }

  Result<PageId> AllocateRun(uint32_t n) override;
  Status Free(PageId id) override;
  Status ReadRun(PageId first, uint32_t count, char* out) override;
  Status WriteRun(PageId first, uint32_t count, const char* src) override;
  Status ReadRunZeroCopy(PageId first, uint32_t count,
                         std::vector<const char*>* views) override;
  Status ReadChained(const std::vector<PageId>& ids,
                     const std::vector<char*>& outs) override;
  Status ReadChainedZeroCopy(const std::vector<PageId>& ids,
                             std::vector<const char*>* views) override;
  Status WriteChained(const std::vector<PageId>& ids,
                      const std::vector<const char*>& srcs) override;
  const char* PeekPage(PageId id) const override;

  const IoStats& stats() const override { return stats_; }
  void ResetStats() override { stats_ = IoStats{}; }

 protected:
  explicit ExtentVolume(DiskOptions options);

  /// Provisions one more zero-filled extent of
  /// `pages_per_extent() * page_size()` bytes whose address never changes
  /// for the lifetime of the volume. The subclass owns the memory.
  virtual Result<char*> NewExtent() = 0;

  /// Bytes per extent after geometry normalization.
  size_t extent_size_bytes() const {
    return static_cast<size_t>(pages_per_extent_) * options_.page_size;
  }

  const std::vector<char*>& extents() const { return extents_; }

  /// Registers an already-provisioned extent during reopen (mmap backend
  /// only): extents re-mapped from existing files were not allocated through
  /// NewExtent, but PagePtr must still find them.
  void AdoptExtent(char* extent) { extents_.push_back(extent); }

  /// Restores allocator state on reopen (mmap backend only). `freed` may be
  /// shorter than `page_count`; missing entries mean "not freed".
  void RestoreAllocatorState(uint64_t page_count, std::vector<bool> freed);

  const std::vector<bool>& freed_pages() const { return freed_; }

 private:
  Status CheckRange(PageId first, uint32_t count) const;

  char* PagePtr(PageId id) {
    return extents_[id / pages_per_extent_] +
           static_cast<size_t>(id % pages_per_extent_) * options_.page_size;
  }
  const char* PagePtr(PageId id) const {
    return extents_[id / pages_per_extent_] +
           static_cast<size_t>(id % pages_per_extent_) * options_.page_size;
  }

  DiskOptions options_;
  uint32_t pages_per_extent_;
  /// Extent base addresses. The vector may reallocate; the memory the
  /// entries point at never moves — PeekPage/ZeroCopy views stay valid
  /// across later allocations.
  std::vector<char*> extents_;
  uint64_t page_count_ = 0;
  std::vector<bool> freed_;
  uint64_t live_pages_ = 0;
  IoStats stats_;
};

}  // namespace starfish
