#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "disk/paged_volume.h"

/// \file extent_volume.h
/// Shared implementation core of the *memory-addressable* extent backends.
///
/// The in-memory arena (MemVolume) and the file-per-extent mmap backend
/// (MmapVolume) both keep page images addressable in the process: each
/// extent is a contiguous memory range, so a ReadRun/WriteRun is a bounds
/// check plus one memcpy per extent touched (one for any run that fits in
/// an extent). Extents are never moved or unmapped while the volume lives,
/// which is what makes the zero-copy accessors safe. (The O_DIRECT backend
/// keeps no memory image at all — it derives from PagedVolume directly, see
/// direct_volume.h.)
///
/// ExtentVolume implements every data operation over a two-level extent
/// directory; subclasses only provision extents (heap allocation vs. mmap)
/// and release them in their destructor. Allocator state lives in the
/// PagedVolume base.
///
/// Thread safety (see Volume for the full contract): the extent directory is
/// a fixed-shape table of atomic pointers, so the read path takes no lock —
/// a reader that passed the bounds check (an acquire load of the page count)
/// is guaranteed to see the extent pointers published before the matching
/// release store in AllocateRun.

namespace starfish {

/// Extent-directory volume core. Subclasses provide NewExtent().
class ExtentVolume : public PagedVolume {
 public:
  bool supports_zero_copy() const override { return true; }

  Status ReadRun(PageId first, uint32_t count, char* out) override;
  Status WriteRun(PageId first, uint32_t count, const char* src) override;
  Status ReadRunZeroCopy(PageId first, uint32_t count,
                         std::vector<const char*>* views) override;
  Status ReadChained(const std::vector<PageId>& ids,
                     const std::vector<char*>& outs) override;
  Status ReadChainedZeroCopy(const std::vector<PageId>& ids,
                             std::vector<const char*>* views) override;
  Status WriteChained(const std::vector<PageId>& ids,
                      const std::vector<const char*>& srcs) override;
  const char* PeekPage(PageId id) const override;

 protected:
  explicit ExtentVolume(DiskOptions options);
  ~ExtentVolume() override;

  /// Provisions extent `index` (zero-filled,
  /// `pages_per_extent() * page_size()` bytes) whose address never changes
  /// for the lifetime of the volume. The subclass owns the memory. Called
  /// with the allocator lock held; indices arrive in increasing order.
  virtual Result<char*> NewExtent(size_t index) = 0;

  /// PagedVolume hook: provisions and publishes memory extents up to
  /// `extent_count`.
  Status EnsureExtentsLocked(size_t extent_count) override;

  /// Number of provisioned extents.
  size_t extent_count() const {
    return extent_count_.load(std::memory_order_acquire);
  }

  /// Registers an already-provisioned extent during reopen (mmap backend
  /// only): extents re-mapped from existing files were not allocated through
  /// NewExtent, but PagePtr must still find them.
  void AdoptExtent(char* extent);

 private:
  // Fixed-shape two-level directory of extent base pointers. The root is
  // allocated once in the constructor; leaf chunks are allocated on demand
  // under the allocator lock and published with release stores. Readers
  // index it lock-free: the acquire load in the bounds check (page_count_)
  // pairs with AllocateRun's release store, so every extent slot at or
  // below the observed page count is visible. 2048 * 2048 slots cap the
  // volume at 4 M extents — 16 TiB of pages at the default 4 MiB extent.
  static constexpr size_t kDirChunkBits = 11;
  static constexpr size_t kDirChunkSlots = size_t{1} << kDirChunkBits;  // 2048
  static constexpr size_t kDirRootSlots = 2048;

  struct DirChunk {
    std::atomic<char*> slot[kDirChunkSlots];
  };

  /// Publishes `extent` as extent `index`. Allocator lock held.
  Status PublishExtent(size_t index, char* extent);

  char* ExtentBase(size_t index) const {
    // Relaxed is enough: the caller ordered itself after publication via the
    // acquire load of page_count_ (or extent_count_) in its bounds check.
    return root_[index >> kDirChunkBits]
        .load(std::memory_order_relaxed)
        ->slot[index & (kDirChunkSlots - 1)]
        .load(std::memory_order_relaxed);
  }

  char* PagePtr(PageId id) const {
    return ExtentBase(id / pages_per_extent_) +
           static_cast<size_t>(id % pages_per_extent_) * options_.page_size;
  }

  std::unique_ptr<std::atomic<DirChunk*>[]> root_;  ///< kDirRootSlots entries
  std::atomic<size_t> extent_count_{0};
};

}  // namespace starfish
