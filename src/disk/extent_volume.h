#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "disk/volume.h"

/// \file extent_volume.h
/// Shared implementation core of the extent-backed volumes.
///
/// Both concrete page stores — the in-memory arena (MemVolume) and the
/// file-per-extent mmap backend (MmapVolume) — keep pages in fixed-size
/// extents (DiskOptions::extent_bytes, default 4 MiB) each holding a
/// contiguous run of pages. Consecutive page ids are physically adjacent
/// within an extent, so a ReadRun/WriteRun is a bounds check plus one memcpy
/// per extent touched (one for any run that fits in an extent). Extents are
/// never moved or unmapped while the volume lives, which is what makes the
/// zero-copy accessors safe.
///
/// ExtentVolume implements every data operation over a two-level extent
/// directory; subclasses only provision extents (heap allocation vs. mmap)
/// and release them in their destructor.
///
/// Thread safety (see Volume for the full contract): the extent directory is
/// a fixed-shape table of atomic pointers, so the read path takes no lock —
/// a reader that passed the bounds check (an acquire load of the page count)
/// is guaranteed to see the extent pointers published before the matching
/// release store in AllocateRun. Allocator state (growth, the freed bitmap)
/// sits behind a small mutex; data reads and writes never touch it.

namespace starfish {

/// Extent-directory volume core. Subclasses provide NewExtent().
class ExtentVolume : public Volume {
 public:
  uint32_t page_size() const override { return options_.page_size; }
  uint32_t pages_per_extent() const override { return pages_per_extent_; }
  uint64_t page_count() const override {
    return page_count_.load(std::memory_order_acquire);
  }
  uint64_t live_page_count() const override {
    return live_pages_.load(std::memory_order_relaxed);
  }

  Result<PageId> AllocateRun(uint32_t n) override;
  Status Free(PageId id) override;
  Status ReadRun(PageId first, uint32_t count, char* out) override;
  Status WriteRun(PageId first, uint32_t count, const char* src) override;
  Status ReadRunZeroCopy(PageId first, uint32_t count,
                         std::vector<const char*>* views) override;
  Status ReadChained(const std::vector<PageId>& ids,
                     const std::vector<char*>& outs) override;
  Status ReadChainedZeroCopy(const std::vector<PageId>& ids,
                             std::vector<const char*>* views) override;
  Status WriteChained(const std::vector<PageId>& ids,
                      const std::vector<const char*>& srcs) override;
  const char* PeekPage(PageId id) const override;
  Status ReconcileLive(const std::vector<PageId>& live) override;

  IoStats stats() const override { return stats_.Snapshot(); }
  void ResetStats() override { stats_.Reset(); }

 protected:
  explicit ExtentVolume(DiskOptions options);
  ~ExtentVolume() override;

  /// Provisions extent `index` (zero-filled,
  /// `pages_per_extent() * page_size()` bytes) whose address never changes
  /// for the lifetime of the volume. The subclass owns the memory. Called
  /// with the allocator lock held; indices arrive in increasing order.
  virtual Result<char*> NewExtent(size_t index) = 0;

  /// Bytes per extent after geometry normalization.
  size_t extent_size_bytes() const {
    return static_cast<size_t>(pages_per_extent_) * options_.page_size;
  }

  /// Number of provisioned extents.
  size_t extent_count() const {
    return extent_count_.load(std::memory_order_acquire);
  }

  /// Registers an already-provisioned extent during reopen (mmap backend
  /// only): extents re-mapped from existing files were not allocated through
  /// NewExtent, but PagePtr must still find them.
  void AdoptExtent(char* extent);

  /// Restores allocator state on reopen (mmap backend only). `freed` may be
  /// shorter than `page_count`; missing entries mean "not freed".
  void RestoreAllocatorState(uint64_t page_count, std::vector<bool> freed);

  /// Consistent copy of the allocator state (page count + freed bitmap),
  /// taken under the allocator lock — what a metadata checkpoint persists.
  void SnapshotAllocator(uint64_t* page_count, std::vector<bool>* freed) const;

 private:
  // Fixed-shape two-level directory of extent base pointers. The root is
  // allocated once in the constructor; leaf chunks are allocated on demand
  // under the allocator lock and published with release stores. Readers
  // index it lock-free: the acquire load in the bounds check (page_count_)
  // pairs with AllocateRun's release store, so every extent slot at or
  // below the observed page count is visible. 2048 * 2048 slots cap the
  // volume at 4 M extents — 16 TiB of pages at the default 4 MiB extent.
  static constexpr size_t kDirChunkBits = 11;
  static constexpr size_t kDirChunkSlots = size_t{1} << kDirChunkBits;  // 2048
  static constexpr size_t kDirRootSlots = 2048;

  struct DirChunk {
    std::atomic<char*> slot[kDirChunkSlots];
  };

  Status CheckRange(PageId first, uint32_t count) const;

  /// Publishes `extent` as extent `index`. Allocator lock held.
  Status PublishExtent(size_t index, char* extent);

  char* ExtentBase(size_t index) const {
    // Relaxed is enough: the caller ordered itself after publication via the
    // acquire load of page_count_ (or extent_count_) in its bounds check.
    return root_[index >> kDirChunkBits]
        .load(std::memory_order_relaxed)
        ->slot[index & (kDirChunkSlots - 1)]
        .load(std::memory_order_relaxed);
  }

  char* PagePtr(PageId id) const {
    return ExtentBase(id / pages_per_extent_) +
           static_cast<size_t>(id % pages_per_extent_) * options_.page_size;
  }

  DiskOptions options_;
  uint32_t pages_per_extent_;
  std::unique_ptr<std::atomic<DirChunk*>[]> root_;  ///< kDirRootSlots entries
  std::atomic<size_t> extent_count_{0};
  std::atomic<uint64_t> page_count_{0};
  std::atomic<uint64_t> live_pages_{0};
  /// Serializes extent growth and the freed bitmap. Data reads/writes never
  /// take it — only AllocateRun/Free/restore/snapshot do.
  mutable std::mutex alloc_mu_;
  std::vector<bool> freed_;  ///< guarded by alloc_mu_
  AtomicIoStats stats_;
};

}  // namespace starfish
