#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "disk/volume.h"
#include "disk/volume_meta.h"

/// \file paged_volume.h
/// Shared allocator core of the concrete volume backends.
///
/// Every concrete page store — the in-memory arena (MemVolume), the mmap
/// backend (MmapVolume) and the O_DIRECT backend (DirectVolume) — carves its
/// address space into fixed-size extents (DiskOptions::extent_bytes, default
/// 4 MiB) each holding a contiguous run of pages, and shares one allocator:
/// a monotonically growing page count plus a freed bitmap (page ids are
/// never reused). PagedVolume owns exactly that state; what differs per
/// backend is only how an extent is *provisioned* (heap memory, an mmap'd
/// file, an O_DIRECT file descriptor) and how page bytes move — both behind
/// the EnsureExtentsLocked() hook and the data-operation overrides.
///
/// Thread safety (see Volume for the full contract): the allocator state
/// (growth, the freed bitmap) sits behind a small mutex; the page count is
/// additionally published with a release store so that lock-free readers
/// whose bounds check (an acquire load in CheckRange) admits a page id are
/// guaranteed to see the extent that backs it — every subclass publishes its
/// extent handle (pointer or file descriptor) before AllocateRun's release
/// store.

namespace starfish {

/// Allocator core. Subclasses provide extent provisioning and data I/O.
class PagedVolume : public Volume {
 public:
  uint32_t page_size() const override { return options_.page_size; }
  uint32_t pages_per_extent() const override { return pages_per_extent_; }
  uint64_t page_count() const override {
    return page_count_.load(std::memory_order_acquire);
  }
  uint64_t live_page_count() const override {
    return live_pages_.load(std::memory_order_relaxed);
  }

  Result<PageId> AllocateRun(uint32_t n) override;
  Status Free(PageId id) override;
  Status ReconcileLive(const std::vector<PageId>& live) override;

  IoStats stats() const override { return stats_.Snapshot(); }
  void ResetStats() override { stats_.Reset(); }

 protected:
  explicit PagedVolume(DiskOptions options);

  /// Provisions backing storage so that extents [0, extent_count) exist
  /// (indices arrive in increasing order; already-provisioned extents must
  /// be left alone). Fresh extents must read as zero-filled pages. Called
  /// with the allocator lock held; the subclass publishes each extent
  /// handle with a release store (or relies on AllocateRun's release store
  /// of the page count) before readers can pass the bounds check.
  virtual Status EnsureExtentsLocked(size_t extent_count) = 0;

  /// Validates a page run against the current page count. The acquire load
  /// inside pairs with AllocateRun's release store: admitting a page id
  /// also makes its extent visible to the caller.
  Status CheckRange(PageId first, uint32_t count) const;

  /// Bytes per extent after geometry normalization.
  size_t extent_size_bytes() const {
    return static_cast<size_t>(pages_per_extent_) * options_.page_size;
  }

  /// Restores allocator state on reopen (persistent backends). `freed` may
  /// be shorter than `page_count`; missing entries mean "not freed".
  void RestoreAllocatorState(uint64_t page_count, std::vector<bool> freed);

  /// Consistent copy of the allocator state (page count + freed bitmap),
  /// taken under the allocator lock — what a metadata checkpoint persists.
  void SnapshotAllocator(uint64_t* page_count, std::vector<bool>* freed) const;

  /// The allocator state in journal form: normalized geometry (the
  /// reopening constructor derives the identical layout from it) plus the
  /// snapshot — what the persistent backends hand to AllocatorJournal.
  VolumeMetaState CurrentMetaState() const;

  // Hot read-path fields lead the layout (geometry, the bounds-check
  // counter, the meter): every data operation touches them, and a derived
  // class's extent directory starts right after the cold tail below.
  DiskOptions options_;
  uint32_t pages_per_extent_;
  std::atomic<uint64_t> page_count_{0};
  AtomicIoStats stats_;
  std::atomic<uint64_t> live_pages_{0};
  /// Serializes extent growth and the freed bitmap. Data reads/writes never
  /// take it — only AllocateRun/Free/restore/snapshot do.
  mutable std::mutex alloc_mu_;
  std::vector<bool> freed_;  ///< guarded by alloc_mu_
};

}  // namespace starfish
