#include "disk/mmap_volume.h"

#if defined(__unix__) || defined(__APPLE__)
#define STARFISH_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "util/file_io.h"

namespace starfish {

namespace {

/// Journals longer than this are compacted to a single snapshot at reopen;
/// between reopens they grow by one small delta per checkpoint.
constexpr uint32_t kCompactRecordThreshold = 64;

}  // namespace

Result<std::unique_ptr<MmapVolume>> MmapVolume::Open(const std::string& dir,
                                                     DiskOptions options) {
#if !STARFISH_HAVE_MMAP
  (void)dir;
  (void)options;
  return Status::NotSupported("MmapVolume requires a POSIX mmap platform");
#else
  if (dir.empty()) {
    return Status::InvalidArgument("MmapVolume requires a backing directory");
  }
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("cannot create volume directory " + dir + ": " +
                           ec.message());
  }

  VolumeMetaReplay replay;
  STARFISH_RETURN_NOT_OK(ReplayVolumeMeta(dir + "/volume.meta", &replay));
  // A volume cannot change its geometry after the fact: the recorded
  // page/extent sizes win over the ones passed in.
  if (replay.found) options = replay.state.options;

  auto volume = std::unique_ptr<MmapVolume>(new MmapVolume(dir, options));
  if (!replay.found) {
    // No durable allocator state: any extent file lying around is the
    // leaving of a run that crashed before its first checkpoint. Remove
    // them — NewExtent would otherwise adopt their stale bytes as
    // "zero-filled" fresh pages.
    STARFISH_RETURN_NOT_OK(RemoveOrphanExtentFiles(dir, 0));
  }
  if (replay.found) {
    const uint64_t ppe = volume->pages_per_extent();
    const uint64_t pages = replay.state.page_count;
    const size_t extent_count = (pages + ppe - 1) / ppe;
    // Extent files beyond the durable page count are the leavings of a
    // crashed, never-checkpointed allocation. Remove them now: a future
    // AllocateRun reaching their index must see zero-filled pages, not the
    // stale bytes of the crashed run.
    STARFISH_RETURN_NOT_OK(RemoveOrphanExtentFiles(dir, extent_count));
    for (size_t i = 0; i < extent_count; ++i) {
      STARFISH_ASSIGN_OR_RETURN(char* extent,
                                volume->MapExtent(i, /*create=*/false));
      volume->AdoptExtent(extent);
      if (i + 1 == extent_count && pages % ppe != 0) {
        // Same reasoning within the last extent: pages past the durable
        // count may hold bytes of a crashed run; fresh pages must be zero.
        const size_t used =
            static_cast<size_t>(pages % ppe) * volume->page_size();
        std::memset(extent + used, 0, volume->extent_size_bytes() - used);
      }
    }
    volume->RestoreAllocatorState(pages, replay.state.freed);
    volume->journal_.MarkReplayed(replay.state);
    if (replay.legacy || replay.torn_tail ||
        replay.records > kCompactRecordThreshold) {
      // Legacy formats upgrade, torn tails must not poison later appends
      // (replay stops at the first bad record), and long journals fold into
      // one snapshot.
      STARFISH_RETURN_NOT_OK(
          volume->journal_.RewriteCompacted(volume->CurrentMetaState()));
    }
  }
  return volume;
#endif
}

MmapVolume::~MmapVolume() {
#if STARFISH_HAVE_MMAP
  // Best-effort checkpoint: page bytes reach the files via the shared
  // mappings; the journal append makes the allocator state match them.
  (void)journal_.Checkpoint(CurrentMetaState());
  for (void* mapping : mappings_) {
    if (mapping != nullptr) ::munmap(mapping, extent_size_bytes());
  }
#endif
}

std::string MmapVolume::ExtentPath(size_t index) const {
  return dir_ + "/" + ExtentFileName(index);
}

Result<char*> MmapVolume::NewExtent(size_t index) {
  return MapExtent(index, /*create=*/true);
}

Result<char*> MmapVolume::MapExtent(size_t index, bool create) {
#if !STARFISH_HAVE_MMAP
  (void)index;
  (void)create;
  return Status::NotSupported("MmapVolume requires a POSIX mmap platform");
#else
  const std::string path = ExtentPath(index);
  const int flags = create ? (O_RDWR | O_CREAT) : O_RDWR;
  const int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) {
    return Status::IOError("open " + path + ": " + std::strerror(errno));
  }
  const size_t bytes = extent_size_bytes();
  // ftruncate both creates the zero-filled image of a fresh extent and
  // repairs a short file (holes read as zeros, same as fresh pages).
  struct stat st;
  if (::fstat(fd, &st) != 0 ||
      (static_cast<size_t>(st.st_size) < bytes &&
       ::ftruncate(fd, static_cast<off_t>(bytes)) != 0)) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IOError("size " + path + ": " + err);
  }
  void* mapping =
      ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);  // the mapping keeps the file alive
  if (mapping == MAP_FAILED) {
    return Status::IOError("mmap " + path + ": " + std::strerror(errno));
  }
  mappings_.push_back(mapping);
  return static_cast<char*>(mapping);
#endif
}

Status MmapVolume::Sync() {
#if !STARFISH_HAVE_MMAP
  return Status::NotSupported("MmapVolume requires a POSIX mmap platform");
#else
  for (void* mapping : mappings_) {
    if (mapping != nullptr &&
        ::msync(mapping, extent_size_bytes(), MS_SYNC) != 0) {
      return Status::IOError(std::string("msync: ") + std::strerror(errno));
    }
  }
  return journal_.Checkpoint(CurrentMetaState());
#endif
}

}  // namespace starfish
