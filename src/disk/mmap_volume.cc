#include "disk/mmap_volume.h"

#if defined(__unix__) || defined(__APPLE__)
#define STARFISH_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "util/coding.h"
#include "util/file_io.h"

namespace starfish {

namespace {

/// volume.meta layout (little-endian, see coding.h):
///   u32 magic 'SFVM', u32 version, u32 page_size, u32 extent_bytes,
///   u64 page_count, then ceil(page_count / 8) bytes of freed bitmap
///   (bit i of byte i/8 set = page i freed).
constexpr uint32_t kMetaMagic = 0x4D564653;  // "SFVM"
constexpr uint32_t kMetaVersion = 1;

struct VolumeMeta {
  DiskOptions options;
  uint64_t page_count = 0;
  std::vector<bool> freed;
};

#if STARFISH_HAVE_MMAP

Status ReadMeta(const std::string& path, VolumeMeta* meta, bool* found) {
  // An absent meta file means a fresh volume; an UNREADABLE one must be an
  // error — treating it as fresh would re-format a live volume.
  std::string bytes;
  STARFISH_RETURN_NOT_OK(ReadFileToString(path, &bytes, found));
  if (!*found) return Status::OK();

  std::string_view in(bytes);
  uint32_t magic = 0, version = 0;
  if (!GetFixed32(&in, &magic) || magic != kMetaMagic) {
    return Status::Corruption("bad volume.meta magic in " + path);
  }
  if (!GetFixed32(&in, &version) || version != kMetaVersion) {
    return Status::Corruption("unsupported volume.meta version in " + path);
  }
  if (!GetFixed32(&in, &meta->options.page_size) ||
      !GetFixed32(&in, &meta->options.extent_bytes) ||
      !GetFixed64(&in, &meta->page_count)) {
    return Status::Corruption("truncated volume.meta in " + path);
  }
  const size_t bitmap_bytes = (meta->page_count + 7) / 8;
  if (in.size() < bitmap_bytes) {
    return Status::Corruption("truncated freed bitmap in " + path);
  }
  meta->freed.assign(meta->page_count, false);
  for (uint64_t i = 0; i < meta->page_count; ++i) {
    if (in[i / 8] & (1 << (i % 8))) meta->freed[i] = true;
  }
  *found = true;
  return Status::OK();
}

#endif  // STARFISH_HAVE_MMAP

}  // namespace

Result<std::unique_ptr<MmapVolume>> MmapVolume::Open(const std::string& dir,
                                                     DiskOptions options) {
#if !STARFISH_HAVE_MMAP
  (void)dir;
  (void)options;
  return Status::NotSupported("MmapVolume requires a POSIX mmap platform");
#else
  if (dir.empty()) {
    return Status::InvalidArgument("MmapVolume requires a backing directory");
  }
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("cannot create volume directory " + dir + ": " +
                           ec.message());
  }

  VolumeMeta meta;
  bool existing = false;
  STARFISH_RETURN_NOT_OK(ReadMeta(dir + "/volume.meta", &meta, &existing));
  // A volume cannot change its geometry after the fact: the recorded
  // page/extent sizes win over the ones passed in.
  if (existing) options = meta.options;

  auto volume = std::unique_ptr<MmapVolume>(new MmapVolume(dir, options));
  if (existing) {
    const uint64_t ppe = volume->pages_per_extent();
    const size_t extent_count = (meta.page_count + ppe - 1) / ppe;
    for (size_t i = 0; i < extent_count; ++i) {
      STARFISH_ASSIGN_OR_RETURN(char* extent,
                                volume->MapExtent(i, /*create=*/false));
      volume->AdoptExtent(extent);
    }
    volume->RestoreAllocatorState(meta.page_count, std::move(meta.freed));
  }
  return volume;
#endif
}

MmapVolume::~MmapVolume() {
#if STARFISH_HAVE_MMAP
  // Best-effort checkpoint: page bytes reach the files via the shared
  // mappings; the meta rewrite makes the allocator state match them.
  (void)WriteMeta();
  for (void* mapping : mappings_) {
    if (mapping != nullptr) ::munmap(mapping, extent_size_bytes());
  }
#endif
}

std::string MmapVolume::ExtentPath(size_t index) const {
  char name[32];
  std::snprintf(name, sizeof(name), "/extent_%06zu", index);
  return dir_ + name;
}

std::string MmapVolume::MetaPath() const { return dir_ + "/volume.meta"; }

Result<char*> MmapVolume::NewExtent(size_t index) {
  return MapExtent(index, /*create=*/true);
}

Result<char*> MmapVolume::MapExtent(size_t index, bool create) {
#if !STARFISH_HAVE_MMAP
  (void)index;
  (void)create;
  return Status::NotSupported("MmapVolume requires a POSIX mmap platform");
#else
  const std::string path = ExtentPath(index);
  const int flags = create ? (O_RDWR | O_CREAT) : O_RDWR;
  const int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) {
    return Status::IOError("open " + path + ": " + std::strerror(errno));
  }
  const size_t bytes = extent_size_bytes();
  // ftruncate both creates the zero-filled image of a fresh extent and
  // repairs a short file (holes read as zeros, same as fresh pages).
  struct stat st;
  if (::fstat(fd, &st) != 0 ||
      (static_cast<size_t>(st.st_size) < bytes &&
       ::ftruncate(fd, static_cast<off_t>(bytes)) != 0)) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IOError("size " + path + ": " + err);
  }
  void* mapping =
      ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);  // the mapping keeps the file alive
  if (mapping == MAP_FAILED) {
    return Status::IOError("mmap " + path + ": " + std::strerror(errno));
  }
  mappings_.push_back(mapping);
  return static_cast<char*>(mapping);
#endif
}

Status MmapVolume::WriteMeta() const {
#if !STARFISH_HAVE_MMAP
  return Status::NotSupported("MmapVolume requires a POSIX mmap platform");
#else
  uint64_t pages = 0;
  std::vector<bool> freed;
  SnapshotAllocator(&pages, &freed);
  std::string bytes;
  PutFixed32(&bytes, kMetaMagic);
  PutFixed32(&bytes, kMetaVersion);
  PutFixed32(&bytes, page_size());
  // Record the normalized extent size (pages_per_extent * page_size); the
  // reopening constructor derives the identical geometry from it.
  PutFixed32(&bytes, static_cast<uint32_t>(extent_size_bytes()));
  PutFixed64(&bytes, pages);
  std::string bitmap((pages + 7) / 8, '\0');
  for (uint64_t i = 0; i < pages; ++i) {
    if (freed[i]) bitmap[i / 8] |= static_cast<char>(1 << (i % 8));
  }
  bytes += bitmap;
  return WriteFileAtomic(MetaPath(), bytes);
#endif
}

Status MmapVolume::Sync() {
#if !STARFISH_HAVE_MMAP
  return Status::NotSupported("MmapVolume requires a POSIX mmap platform");
#else
  for (void* mapping : mappings_) {
    if (mapping != nullptr &&
        ::msync(mapping, extent_size_bytes(), MS_SYNC) != 0) {
      return Status::IOError(std::string("msync: ") + std::strerror(errno));
    }
  }
  return WriteMeta();
#endif
}

}  // namespace starfish
