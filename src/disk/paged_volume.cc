#include "disk/paged_volume.h"

#include <algorithm>
#include <string>

namespace starfish {

PagedVolume::PagedVolume(DiskOptions options) : options_(options) {
  if (options_.page_size == 0) options_.page_size = kDefaultPageSize;
  pages_per_extent_ = std::max(1u, options_.extent_bytes / options_.page_size);
}

Result<PageId> PagedVolume::AllocateRun(uint32_t n) {
  if (n == 0) return Status::InvalidArgument("empty page run");
  std::lock_guard<std::mutex> lock(alloc_mu_);
  const uint64_t old_count = page_count_.load(std::memory_order_relaxed);
  const PageId first = static_cast<PageId>(old_count);
  const uint64_t new_count = old_count + n;
  const uint64_t extents_needed =
      (new_count + pages_per_extent_ - 1) / pages_per_extent_;
  // Fresh extents (and thus fresh pages) are zero-filled by the backend.
  // Ids are never reused, so no page is handed out twice.
  STARFISH_RETURN_NOT_OK(
      EnsureExtentsLocked(static_cast<size_t>(extents_needed)));
  freed_.resize(new_count, false);
  live_pages_.fetch_add(n, std::memory_order_relaxed);
  // The release store pairs with the acquire load in CheckRange/PeekPage:
  // any reader whose bounds check admits these page ids also sees the
  // extents (and zero-filled contents) provisioned above.
  page_count_.store(new_count, std::memory_order_release);
  return first;
}

void PagedVolume::RestoreAllocatorState(uint64_t page_count,
                                        std::vector<bool> freed) {
  std::lock_guard<std::mutex> lock(alloc_mu_);
  freed_ = std::move(freed);
  freed_.resize(page_count, false);
  uint64_t live = page_count;
  for (bool f : freed_) {
    if (f) --live;
  }
  live_pages_.store(live, std::memory_order_relaxed);
  page_count_.store(page_count, std::memory_order_release);
}

void PagedVolume::SnapshotAllocator(uint64_t* page_count,
                                    std::vector<bool>* freed) const {
  std::lock_guard<std::mutex> lock(alloc_mu_);
  *page_count = page_count_.load(std::memory_order_relaxed);
  *freed = freed_;
  freed->resize(*page_count, false);
}

VolumeMetaState PagedVolume::CurrentMetaState() const {
  VolumeMetaState state;
  state.options.page_size = page_size();
  state.options.extent_bytes = static_cast<uint32_t>(extent_size_bytes());
  SnapshotAllocator(&state.page_count, &state.freed);
  return state;
}

Status PagedVolume::ReconcileLive(const std::vector<PageId>& live) {
  std::lock_guard<std::mutex> lock(alloc_mu_);
  const uint64_t count = page_count_.load(std::memory_order_relaxed);
  std::vector<bool> freed(count, true);
  uint64_t live_count = 0;
  for (PageId id : live) {
    if (id >= count) {
      return Status::InvalidArgument(
          "live page " + std::to_string(id) + " beyond volume of " +
          std::to_string(count) + " pages");
    }
    if (freed[id]) {
      freed[id] = false;
      ++live_count;
    }
  }
  freed_ = std::move(freed);
  live_pages_.store(live_count, std::memory_order_relaxed);
  return Status::OK();
}

Status PagedVolume::Free(PageId id) {
  STARFISH_RETURN_NOT_OK(CheckRange(id, 1));
  std::lock_guard<std::mutex> lock(alloc_mu_);
  if (freed_[id]) {
    return Status::InvalidArgument("page " + std::to_string(id) +
                                   " already freed");
  }
  freed_[id] = true;
  live_pages_.fetch_sub(1, std::memory_order_relaxed);
  return Status::OK();
}

Status PagedVolume::CheckRange(PageId first, uint32_t count) const {
  if (count == 0) return Status::InvalidArgument("empty page run");
  const uint64_t end = static_cast<uint64_t>(first) + count;
  // Acquire: admitting these ids must also make their extents visible.
  const uint64_t limit = page_count_.load(std::memory_order_acquire);
  if (first == kInvalidPageId || end > limit) {
    return Status::OutOfRange("page run [" + std::to_string(first) + ", " +
                              std::to_string(end) + ") outside volume of " +
                              std::to_string(limit) + " pages");
  }
  return Status::OK();
}

}  // namespace starfish
