#pragma once

#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "disk/io_stats.h"
#include "disk/log_file.h"
#include "disk/volume.h"

/// \file fault_volume.h
/// A fault-injecting decorator over any Volume backend — the test substrate
/// of the crash-consistency guarantee.
///
/// FaultVolume forwards every operation to the wrapped backend (same pattern
/// as TimedVolume) and can, on demand:
///
///   * fail the Nth write call (WriteRun/WriteChained), optionally after
///     "tearing" it — applying only the first `torn_pages` pages of the
///     request, as a real multi-page DMA interrupted by power loss would;
///   * fail the Nth Sync call before it reaches the backend, so neither the
///     page images nor the allocator journal advance;
///   * simulate power loss: all un-synced page writes vanish and the volume
///     goes down (every subsequent operation fails), exactly what a store
///     sees when the machine dies mid-checkpoint.
///
/// Dropping un-synced bytes requires the decorator to *buffer* writes
/// (Options::buffer_unsynced_writes): written pages live in a volatile
/// overlay — the "disk cache" — and only reach the wrapped backend when
/// Sync flushes them. Reads are served through the overlay, so a running
/// store observes its own writes as usual; the backing files only ever
/// contain synced state, which is what a post-crash reopen must see.
///
/// With buffering off and no fault armed the decorator is a transparent
/// passthrough: same results, same IoStats, same zero-copy pointers — the
/// backend-parameterized conformance suite runs over FaultVolume{MemVolume}
/// to prove it.
///
/// Thread safety: the overlay and fault counters sit behind one mutex. This
/// is a test harness, not a hot path — the paper benches never see it.

namespace starfish {

/// FaultVolume construction options.
struct FaultVolumeOptions {
  /// Buffer page writes in a volatile overlay until Sync, so
  /// SimulatePowerLoss can drop them. Off = pure passthrough writes.
  bool buffer_unsynced_writes = false;
};

/// What to break. Counters are 1-based; 0 disarms the fault.
struct FaultPlan {
  /// Fail the Nth write call (counted across WriteRun/WriteChained).
  uint64_t fail_write_call = 0;
  /// Pages of the failing write applied before the failure ("torn
  /// write"). 0 = the write fails without transferring anything.
  uint32_t torn_pages = 0;
  /// Fail the Nth Sync call, before the backend sees it.
  uint64_t fail_sync_call = 0;
  /// Fail the Nth read call (counted across ReadRun/ReadChained and their
  /// zero-copy variants; PeekPage is a non-I/O peek and never counts) —
  /// a dying medium returning EIO, not a crash artifact.
  uint64_t fail_read_call = 0;
  /// Fail the Nth log Append call (counted per wrapped LogFile, see
  /// WrapLogFile).
  uint64_t fail_log_append = 0;
  /// Fail the Nth log Sync call.
  uint64_t fail_log_sync = 0;
  /// Bytes of the un-synced log stream that reach the medium when a log
  /// fault fires ("torn log tail"): the cache made it partway out before
  /// the machine died. 0 = nothing beyond the already-synced prefix.
  uint64_t torn_log_bytes = 0;
  /// Enter the powered-off state the moment a fault fires, as if the
  /// failing operation was the last thing the machine did.
  bool power_loss_on_fault = false;
};

/// Decorator injecting write/sync faults and simulated power loss.
class FaultVolume final : public Volume {
 public:
  /// Wraps and owns `inner`.
  explicit FaultVolume(std::unique_ptr<Volume> inner,
                       FaultVolumeOptions options = {})
      : owned_(std::move(inner)), inner_(owned_.get()), options_(options) {}

  /// Wraps a caller-owned backend (must outlive the decorator).
  explicit FaultVolume(Volume* inner, FaultVolumeOptions options = {})
      : inner_(inner), options_(options) {}

  /// Arms the next faults. Replaces any previous plan; counters keep
  /// running (the plan indices are absolute, counted from construction or
  /// the last ResetFaultCounters).
  void SetPlan(const FaultPlan& plan) {
    std::lock_guard<std::mutex> lock(mu_);
    plan_ = plan;
  }
  void ClearPlan() { SetPlan(FaultPlan{}); }

  /// Zeroes the write/sync/read/log call counters (the plan indices
  /// restart at 1).
  void ResetFaultCounters() {
    std::lock_guard<std::mutex> lock(mu_);
    write_calls_seen_ = 0;
    sync_calls_seen_ = 0;
    read_calls_seen_ = 0;
    log_append_calls_seen_ = 0;
    log_sync_calls_seen_ = 0;
  }

  /// Write calls observed so far (fault-counter clock, not IoStats).
  uint64_t write_calls_seen() const {
    std::lock_guard<std::mutex> lock(mu_);
    return write_calls_seen_;
  }
  /// Sync calls observed so far.
  uint64_t sync_calls_seen() const {
    std::lock_guard<std::mutex> lock(mu_);
    return sync_calls_seen_;
  }
  /// Read calls observed so far.
  uint64_t read_calls_seen() const {
    std::lock_guard<std::mutex> lock(mu_);
    return read_calls_seen_;
  }
  /// Log Append calls observed so far (across wrapped log files).
  uint64_t log_append_calls_seen() const {
    std::lock_guard<std::mutex> lock(mu_);
    return log_append_calls_seen_;
  }
  /// Log Sync calls observed so far.
  uint64_t log_sync_calls_seen() const {
    std::lock_guard<std::mutex> lock(mu_);
    return log_sync_calls_seen_;
  }
  /// Injected faults that actually fired.
  uint64_t faults_fired() const {
    std::lock_guard<std::mutex> lock(mu_);
    return faults_fired_;
  }

  /// The machine dies: un-synced buffered writes are gone (they never
  /// reached the backend) and every subsequent operation fails until
  /// Revive(). The backend now holds exactly the synced state — copy or
  /// reopen its directory to observe the post-crash disk.
  void SimulatePowerLoss() {
    std::lock_guard<std::mutex> lock(mu_);
    down_ = true;
  }

  /// Powers the volume back up (the overlay and any un-synced log tail
  /// stay dropped).
  void Revive() {
    std::lock_guard<std::mutex> lock(mu_);
    down_ = false;
    overlay_.clear();
    dirty_.clear();
    log_pending_.clear();
  }

  bool down() const {
    std::lock_guard<std::mutex> lock(mu_);
    return down_;
  }

  /// The wrapped backend.
  Volume* inner() { return inner_; }

  /// Decorates a log file with this volume's fault plan and power state:
  /// appends/syncs fail when the volume is down or an armed log fault
  /// fires, and (under buffer_unsynced_writes) un-synced appended bytes
  /// live in a volatile cache that SimulatePowerLoss drops — except for a
  /// `torn_log_bytes` prefix a firing fault lets reach the medium. The
  /// decorator holds a reference to this volume; it must not outlive it.
  std::unique_ptr<LogFile> WrapLogFile(std::unique_ptr<LogFile> inner);

  // ------------------------------------------------------------ Volume --
  VolumeKind kind() const override { return inner_->kind(); }
  bool supports_zero_copy() const override {
    return inner_->supports_zero_copy();
  }
  uint32_t io_buffer_alignment() const override {
    return inner_->io_buffer_alignment();
  }
  // Like TimedVolume, the async read pair stays on the base implementation:
  // it routes through this decorator's virtual ReadChained, so armed read
  // faults fire on async-shaped callers too.
  void RegisterIoMemory(const void* base, size_t bytes) override {
    inner_->RegisterIoMemory(base, bytes);
  }
  void UnregisterIoMemory(const void* base) override {
    inner_->UnregisterIoMemory(base);
  }
  uint32_t page_size() const override { return inner_->page_size(); }
  uint32_t pages_per_extent() const override {
    return inner_->pages_per_extent();
  }
  uint64_t page_count() const override { return inner_->page_count(); }
  uint64_t live_page_count() const override {
    return inner_->live_page_count();
  }

  Result<PageId> AllocateRun(uint32_t n) override;
  Status Free(PageId id) override;
  Status ReadRun(PageId first, uint32_t count, char* out) override;
  Status WriteRun(PageId first, uint32_t count, const char* src) override;
  Status ReadRunZeroCopy(PageId first, uint32_t count,
                         std::vector<const char*>* views) override;
  Status ReadChained(const std::vector<PageId>& ids,
                     const std::vector<char*>& outs) override;
  Status ReadChainedZeroCopy(const std::vector<PageId>& ids,
                             std::vector<const char*>* views) override;
  Status WriteChained(const std::vector<PageId>& ids,
                      const std::vector<const char*>& srcs) override;
  const char* PeekPage(PageId id) const override;
  Status WritePageUnmetered(PageId id, const char* src) override;
  Status Sync() override;
  Status ReconcileLive(const std::vector<PageId>& live) override {
    return inner_->ReconcileLive(live);
  }
  IoStats stats() const override;
  void ResetStats() override;

 private:
  friend class FaultLogFile;

  Status DownError() const;

  /// Copies `src` into the overlay image of `id` (creating it) and marks it
  /// un-synced. mu_ held.
  void BufferWriteLocked(PageId id, const char* src);

  /// True (and counts the fault) when the write call just counted is the
  /// armed one. mu_ held.
  bool WriteFaultFiresLocked();

  /// True (and counts the fault) when the read call just counted is the
  /// armed one. mu_ held.
  bool ReadFaultFiresLocked();

  std::unique_ptr<Volume> owned_;  // empty for the non-owning constructor
  Volume* inner_;
  FaultVolumeOptions options_;

  mutable std::mutex mu_;
  FaultPlan plan_;
  bool down_ = false;
  uint64_t write_calls_seen_ = 0;
  uint64_t sync_calls_seen_ = 0;
  uint64_t read_calls_seen_ = 0;
  uint64_t log_append_calls_seen_ = 0;
  uint64_t log_sync_calls_seen_ = 0;
  uint64_t faults_fired_ = 0;
  /// Un-synced log bytes across wrapped log files ("OS page cache" of the
  /// append-only log): dropped by power loss, flushed by a log Sync.
  std::string log_pending_;
  /// Volatile page images of buffered writes. Entries are never erased
  /// while powered (Sync copies them to the backend but keeps the image, so
  /// zero-copy views handed out earlier stay valid and subsequent reads see
  /// identical bytes either way).
  std::unordered_map<PageId, std::unique_ptr<char[]>> overlay_;
  /// Overlay pages not yet applied to the backend (a set: rewriting a hot
  /// page between Syncs must not grow it or re-copy at flush).
  std::unordered_set<PageId> dirty_;
  /// Write accounting for buffered writes (they never reach the backend's
  /// meter; reads always do).
  AtomicIoStats buffered_writes_;
};

}  // namespace starfish
