#pragma once

#include <atomic>
#include <cstdint>
#include <string>

/// \file io_stats.h
/// Counters for the quantities the paper measures.
///
/// The evaluation of the paper is entirely in terms of
///   * X_IO_pages  — physical pages transferred (Tables 3, 4, Figs. 5, 6),
///   * X_IO_calls  — I/O requests issued, where one request may move a run
///                   of several pages (Table 5),
/// plus buffer fixes as a CPU proxy (Table 6). IoStats carries the disk-side
/// pair; buffer statistics live in BufferStats.
///
/// IoStats itself is a plain value type (snapshot-and-subtract). Volumes,
/// which are read from many threads at once, maintain their counters in an
/// AtomicIoStats and hand out IoStats snapshots: relaxed per-call increments,
/// aggregated on read. Single-threaded measurement code keeps the exact
/// semantics it always had — Since() over two snapshots is unchanged.

namespace starfish {

/// Monotonic disk-level counters. Snapshot-and-subtract to measure a query.
struct IoStats {
  uint64_t pages_read = 0;    ///< physical pages transferred disk -> memory
  uint64_t pages_written = 0; ///< physical pages transferred memory -> disk
  uint64_t read_calls = 0;    ///< read requests (>= 1 page each)
  uint64_t write_calls = 0;   ///< write requests (>= 1 page each)

  /// Total pages transferred in either direction (the paper's X_IO_pages).
  uint64_t TotalPages() const { return pages_read + pages_written; }

  /// Total I/O requests in either direction (the paper's X_IO_calls).
  uint64_t TotalCalls() const { return read_calls + write_calls; }

  /// Component-wise difference (this - earlier). Counters are monotonic, so
  /// the result is well defined whenever `earlier` was taken first.
  IoStats Since(const IoStats& earlier) const {
    IoStats d;
    d.pages_read = pages_read - earlier.pages_read;
    d.pages_written = pages_written - earlier.pages_written;
    d.read_calls = read_calls - earlier.read_calls;
    d.write_calls = write_calls - earlier.write_calls;
    return d;
  }

  IoStats& operator+=(const IoStats& other) {
    pages_read += other.pages_read;
    pages_written += other.pages_written;
    read_calls += other.read_calls;
    write_calls += other.write_calls;
    return *this;
  }

  std::string ToString() const;
};

/// The volume-side accumulator behind IoStats: one relaxed fetch_add per
/// counted quantity, so concurrent readers (the sharded buffer pool issues
/// I/O from many threads) never race on the meter. Relaxed ordering is
/// enough — the counters are statistics, not synchronization; exactness is
/// still guaranteed because fetch_add never loses increments, and a
/// single-threaded run observes precisely the sequence of values the plain
/// uint64 fields used to produce.
struct AtomicIoStats {
  std::atomic<uint64_t> pages_read{0};
  std::atomic<uint64_t> pages_written{0};
  std::atomic<uint64_t> read_calls{0};
  std::atomic<uint64_t> write_calls{0};

  /// One read request moving `pages` pages.
  void CountRead(uint64_t pages) {
    read_calls.fetch_add(1, std::memory_order_relaxed);
    pages_read.fetch_add(pages, std::memory_order_relaxed);
  }

  /// One write request moving `pages` pages.
  void CountWrite(uint64_t pages) {
    write_calls.fetch_add(1, std::memory_order_relaxed);
    pages_written.fetch_add(pages, std::memory_order_relaxed);
  }

  /// Value snapshot. Counters advancing concurrently may be torn *between*
  /// fields (each field is itself consistent) — measurement code snapshots
  /// around quiesced work, exactly as it always did.
  IoStats Snapshot() const {
    IoStats s;
    s.pages_read = pages_read.load(std::memory_order_relaxed);
    s.pages_written = pages_written.load(std::memory_order_relaxed);
    s.read_calls = read_calls.load(std::memory_order_relaxed);
    s.write_calls = write_calls.load(std::memory_order_relaxed);
    return s;
  }

  void Reset() {
    pages_read.store(0, std::memory_order_relaxed);
    pages_written.store(0, std::memory_order_relaxed);
    read_calls.store(0, std::memory_order_relaxed);
    write_calls.store(0, std::memory_order_relaxed);
  }
};

}  // namespace starfish
