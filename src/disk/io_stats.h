#pragma once

#include <cstdint>
#include <string>

/// \file io_stats.h
/// Counters for the quantities the paper measures.
///
/// The evaluation of the paper is entirely in terms of
///   * X_IO_pages  — physical pages transferred (Tables 3, 4, Figs. 5, 6),
///   * X_IO_calls  — I/O requests issued, where one request may move a run
///                   of several pages (Table 5),
/// plus buffer fixes as a CPU proxy (Table 6). IoStats carries the disk-side
/// pair; buffer statistics live in BufferStats.

namespace starfish {

/// Monotonic disk-level counters. Snapshot-and-subtract to measure a query.
struct IoStats {
  uint64_t pages_read = 0;    ///< physical pages transferred disk -> memory
  uint64_t pages_written = 0; ///< physical pages transferred memory -> disk
  uint64_t read_calls = 0;    ///< read requests (>= 1 page each)
  uint64_t write_calls = 0;   ///< write requests (>= 1 page each)

  /// Total pages transferred in either direction (the paper's X_IO_pages).
  uint64_t TotalPages() const { return pages_read + pages_written; }

  /// Total I/O requests in either direction (the paper's X_IO_calls).
  uint64_t TotalCalls() const { return read_calls + write_calls; }

  /// Component-wise difference (this - earlier). Counters are monotonic, so
  /// the result is well defined whenever `earlier` was taken first.
  IoStats Since(const IoStats& earlier) const {
    IoStats d;
    d.pages_read = pages_read - earlier.pages_read;
    d.pages_written = pages_written - earlier.pages_written;
    d.read_calls = read_calls - earlier.read_calls;
    d.write_calls = write_calls - earlier.write_calls;
    return d;
  }

  IoStats& operator+=(const IoStats& other) {
    pages_read += other.pages_read;
    pages_written += other.pages_written;
    read_calls += other.read_calls;
    write_calls += other.write_calls;
    return *this;
  }

  std::string ToString() const;
};

}  // namespace starfish
