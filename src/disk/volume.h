#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "disk/io_stats.h"
#include "disk/page.h"
#include "util/status.h"

/// \file volume.h
/// The abstract disk volume underneath the buffer pool.
///
/// A Volume stands in for the physical disk of the DASDBS testbed. It stores
/// page images and meters every transfer. The unit of metering follows the
/// paper: a *run* of consecutive pages moved by one request is a single I/O
/// call; each page in the run is one page I/O. DASDBS issued separate calls
/// for the root page, the remaining header pages and the data pages of a
/// complex record — the storage layer reproduces that call pattern on top of
/// ReadRun/WriteRun.
///
/// Page ids are dense and increase in allocation order; AllocateRun yields
/// physically contiguous pages, which is how segments implement clustering.
///
/// Backends (selected via VolumeKind / CreateVolume; see docs/VOLUMES.md
/// for the selection matrix):
///   * **MemVolume** (mem_volume.h) — a chunked in-memory arena; the
///     default, equivalent to the paper's simulated drum.
///   * **MmapVolume** (mmap_volume.h) — one real memory-mapped file per
///     extent, so volumes can exceed RAM and persist across process
///     restarts.
///   * **DirectVolume** (direct_volume.h) — one O_DIRECT file per extent:
///     every page transfer is a real device I/O that bypasses the kernel
///     page cache (batched through io_uring where available). Same on-disk
///     format as MmapVolume.
///   * **TimedVolume** (timed_volume.h) — a decorator over any backend
///     that charges Equation-1 service time per call.
///   * **FaultVolume** (fault_volume.h) — a fault-injecting decorator (the
///     crash-matrix test substrate).
///
/// The memory-addressable backends (mem, mmap) give a zero-copy guarantee:
/// extents never move while the volume lives, so PeekPage / ReadRunZeroCopy
/// / ReadChainedZeroCopy hand out pointers that stay valid for the lifetime
/// of the volume. The direct backend keeps no memory image — callers probe
/// supports_zero_copy() and fall back to the copying calls (the buffer pool
/// does this automatically, reading straight into its aligned frames).

namespace starfish {

/// Storage backend selector.
enum class VolumeKind {
  kMem,     ///< in-memory chunked arena (default; nothing persists)
  kMmap,    ///< one memory-mapped file per extent; persists across runs
  kDirect,  ///< one O_DIRECT file per extent; persists, bypasses page cache
};

/// Human-readable backend name ("mem" / "mmap" / "direct").
std::string ToString(VolumeKind kind);

/// Geometry options for a volume.
struct DiskOptions {
  /// Physical page size in bytes. DASDBS default: 2048.
  uint32_t page_size = kDefaultPageSize;

  /// Arena extent size in bytes; each extent stores
  /// max(1, extent_bytes / page_size) contiguous pages.
  uint32_t extent_bytes = 4u << 20;
};

/// An abstract disk volume with I/O accounting.
///
/// Concurrency contract (the substrate of the store's single-writer /
/// multi-reader model):
///   * Read operations (ReadRun / ReadChained / the zero-copy variants /
///     PeekPage) may run concurrently from any number of threads, also
///     concurrently with AllocateRun — the extent directory publishes new
///     extents atomically and established page ids never move.
///   * AllocateRun / Free are serialized internally (a small allocator lock
///     around extent-vector growth), so concurrent allocators are safe and
///     zero-copy read views handed out earlier stay valid.
///   * Writes to *disjoint* page sets may run concurrently (the sharded
///     buffer pool writes back each page from the one shard that owns it).
///     Concurrent writes to the same page, or a write racing a read of the
///     same page, are the caller's data race, as on a real disk.
///   * stats() aggregates atomic counters and is safe from any thread.
class Volume {
 public:
  virtual ~Volume() = default;

  /// Which backend this is.
  virtual VolumeKind kind() const = 0;

  /// Usable page size of this volume.
  virtual uint32_t page_size() const = 0;

  /// Pages per arena extent (geometry detail, exposed for tests).
  virtual uint32_t pages_per_extent() const = 0;

  /// Number of pages ever allocated (including freed ones).
  virtual uint64_t page_count() const = 0;

  /// Number of currently allocated (not freed) pages.
  virtual uint64_t live_page_count() const = 0;

  /// Allocates one zero-filled page and returns its id.
  Result<PageId> Allocate() { return AllocateRun(1); }

  /// Allocates `n` physically contiguous zero-filled pages; returns the id
  /// of the first (ids first .. first+n-1 are all valid). Fails when the
  /// backend cannot grow (e.g. the mmap backend's filesystem is full).
  virtual Result<PageId> AllocateRun(uint32_t n) = 0;

  /// Returns a page to the allocator. Freed pages keep their id (ids are
  /// never reused: simplifies reasoning about clustering and is harmless for
  /// experiment-scale volumes).
  virtual Status Free(PageId id) = 0;

  /// Reads `count` consecutive pages starting at `first` into `out`
  /// (`count * page_size` bytes). Counts one read call, `count` page reads.
  virtual Status ReadRun(PageId first, uint32_t count, char* out) = 0;

  /// Writes `count` consecutive pages starting at `first` from `src`.
  /// Counts one write call and `count` page writes.
  virtual Status WriteRun(PageId first, uint32_t count, const char* src) = 0;

  /// True when this backend keeps page images addressable in memory, i.e.
  /// the zero-copy calls (ReadRunZeroCopy / ReadChainedZeroCopy) and
  /// PeekPage work. Backends that do real device I/O (DirectVolume) return
  /// false: their zero-copy calls return NotSupported and PeekPage returns
  /// nullptr, and callers route through the copying calls instead.
  virtual bool supports_zero_copy() const { return true; }

  /// Byte alignment this backend wants for I/O buffers (0 = none). Direct
  /// backends report the device's DMA alignment; the storage engine raises
  /// BufferOptions::frame_alignment to it so page reads can DMA straight
  /// into buffer-pool frames. Misaligned buffers still work everywhere —
  /// the direct backend bounces them internally — this is a performance
  /// hint, not a correctness requirement.
  virtual uint32_t io_buffer_alignment() const { return 0; }

  /// Zero-copy variant of ReadRun: instead of copying into a caller buffer,
  /// appends one stable extent pointer per page to `views` (cleared first).
  /// Same accounting as ReadRun (one read call, `count` page reads). The
  /// pointers remain valid for the lifetime of the volume; the buffer
  /// manager uses this to copy straight into its frames with no staging
  /// buffer in between. NotSupported when supports_zero_copy() is false.
  virtual Status ReadRunZeroCopy(PageId first, uint32_t count,
                                 std::vector<const char*>* views) = 0;

  /// Reads a batch of (not necessarily contiguous) pages as a single chained
  /// I/O call, e.g. DASDBS fetching all data pages of one object in one
  /// request. Counts one read call and `ids.size()` page reads.
  virtual Status ReadChained(const std::vector<PageId>& ids,
                             const std::vector<char*>& outs) = 0;

  /// Zero-copy variant of ReadChained: appends one stable extent pointer per
  /// page to `views` (cleared first). Same accounting as ReadChained.
  virtual Status ReadChainedZeroCopy(const std::vector<PageId>& ids,
                                     std::vector<const char*>* views) = 0;

  /// True when SubmitReadChained actually overlaps device I/O with the
  /// caller (DirectVolume with a working io_uring). When false the async
  /// pair still works — SubmitReadChained performs the read synchronously
  /// and CompleteRead is a no-op — so callers can use one code path and
  /// only gain overlap where the backend provides it.
  virtual bool supports_async_read() const { return false; }

  /// Asynchronous ReadChained: starts reading `ids[i]` into `outs[i]`
  /// (each `page_size()` bytes) and returns a ticket to pass to
  /// CompleteRead. The caller must keep every `outs[i]` buffer (and the
  /// two vectors' page images, not the vectors themselves) untouched until
  /// CompleteRead returns. Accounting is identical to ReadChained — one
  /// read call and `ids.size()` page reads, counted at submit — so a
  /// prefetch pipeline built on this meters exactly like the blocking one.
  ///
  /// Tickets are *thread-local*: submit and complete must happen on the
  /// same thread, and each thread completes its tickets in FIFO order
  /// (matching a per-thread submission ring). The base implementation
  /// simply calls ReadChained and returns an already-completed ticket.
  virtual Result<uint64_t> SubmitReadChained(const std::vector<PageId>& ids,
                                             const std::vector<char*>& outs) {
    STARFISH_RETURN_NOT_OK(ReadChained(ids, outs));
    return uint64_t{0};  // kCompletedTicket: CompleteRead is a no-op
  }

  /// Waits until the submitted read behind `ticket` has fully landed in its
  /// output buffers and returns its status. Must run on the submitting
  /// thread; see SubmitReadChained.
  virtual Status CompleteRead(uint64_t ticket) {
    (void)ticket;
    return Status::OK();
  }

  /// Hints that `[base, base+bytes)` is long-lived I/O memory (the buffer
  /// pool's frame arena). Backends that can pre-register buffers with the
  /// kernel (io_uring fixed buffers) use this to skip per-I/O page pinning;
  /// everyone else ignores it. Never required for correctness; unknown or
  /// unregistered buffers always work. Pair with UnregisterIoMemory before
  /// the memory is freed (the registration holds no reference).
  virtual void RegisterIoMemory(const void* base, size_t bytes) {
    (void)base;
    (void)bytes;
  }

  /// Retracts a RegisterIoMemory hint (match by `base`).
  virtual void UnregisterIoMemory(const void* base) { (void)base; }

  /// Writes a batch of (not necessarily contiguous) pages as a single
  /// chained I/O call (DASDBS batches write-back at buffer overflow /
  /// disconnect). Counts one write call and `ids.size()` page writes.
  virtual Status WriteChained(const std::vector<PageId>& ids,
                              const std::vector<const char*>& srcs) = 0;

  /// Unmetered read-only view of a page's bytes, or nullptr when `id` is out
  /// of range. Debug/test accessor: it deliberately bypasses the I/O
  /// counters, so production paths must go through the metered calls above.
  /// Backends without a memory image (supports_zero_copy() == false) return
  /// nullptr for every id.
  virtual const char* PeekPage(PageId id) const = 0;

  /// Applies `page_size()` bytes to the medium image of `id` WITHOUT
  /// touching the I/O meter. Test/recovery seam: FaultVolume flushes its
  /// volatile write overlay through this (the write was already counted
  /// when it entered the "disk cache"; flushing cache to platter is not a
  /// second transfer). The base implementation patches the memory image via
  /// PeekPage; backends without one (DirectVolume) override with an
  /// unmetered device write.
  virtual Status WritePageUnmetered(PageId id, const char* src);

  /// Forces durable state (page images + allocator metadata) to storage.
  /// No-op for backends without persistence.
  virtual Status Sync() { return Status::OK(); }

  /// Reopen-time allocator reconciliation: declares `live` (with possible
  /// duplicates) to be EXACTLY the allocated pages; every other page at or
  /// below page_count() becomes freed, and pages in `live` that a torn
  /// checkpoint left marked freed become live again. The committed catalog
  /// is the source of truth for what is referenced — this is how a store
  /// falling back to an older catalog generation reclaims the orphans of an
  /// uncommitted checkpoint. Only meaningful for allocator-backed volumes;
  /// the base implementation rejects the call.
  virtual Status ReconcileLive(const std::vector<PageId>& live) {
    (void)live;
    return Status::NotSupported("volume has no reconcilable allocator");
  }

  /// Cumulative transfer counters (a snapshot of the volume's atomic
  /// meter; see AtomicIoStats on concurrent-read semantics).
  virtual IoStats stats() const = 0;

  /// Zeroes the counters (page contents are unaffected).
  virtual void ResetStats() = 0;
};

/// Constructs a volume of the given kind. `path` is the backing directory of
/// the persistent backends (mmap/direct: created if absent; reopened if it
/// already holds a volume — the two share one on-disk format) and ignored by
/// the mem backend. kDirect returns NotSupported on filesystems that reject
/// O_DIRECT (tmpfs, overlayfs); see docs/VOLUMES.md.
Result<std::unique_ptr<Volume>> CreateVolume(VolumeKind kind,
                                             DiskOptions options = {},
                                             const std::string& path = "");

}  // namespace starfish
