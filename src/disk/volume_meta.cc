#include "disk/volume_meta.h"

#include <cstdio>
#include <filesystem>

#include "util/coding.h"
#include "util/crc32.h"
#include "util/file_io.h"

namespace starfish {

namespace {

constexpr uint32_t kMetaMagic = 0x4D564653;  // "SFVM"
constexpr uint32_t kMetaVersionLegacy = 1;
constexpr uint32_t kMetaVersion = 2;

constexpr uint32_t kRecordSnapshot = 1;
constexpr uint32_t kRecordDelta = 2;

/// kind + payload_len + crc32 around every record payload.
constexpr size_t kRecordOverhead = 12;

std::string EncodeBitmap(const std::vector<bool>& freed, uint64_t pages) {
  std::string bitmap((pages + 7) / 8, '\0');
  for (uint64_t i = 0; i < pages && i < freed.size(); ++i) {
    if (freed[i]) bitmap[i / 8] |= static_cast<char>(1 << (i % 8));
  }
  return bitmap;
}

void AppendRecord(std::string* out, uint32_t kind, std::string_view payload) {
  std::string frame;
  PutFixed32(&frame, kind);
  PutFixed32(&frame, static_cast<uint32_t>(payload.size()));
  frame.append(payload.data(), payload.size());
  PutFixed32(&frame, Crc32(frame));
  out->append(frame);
}

/// Applies one payload to the running state; false = corrupt record.
bool ApplyRecord(uint32_t kind, std::string_view payload,
                 VolumeMetaState* state) {
  if (kind == kRecordSnapshot) {
    uint64_t pages = 0;
    if (!GetFixed64(&payload, &pages)) return false;
    const size_t bitmap_bytes = (pages + 7) / 8;
    if (payload.size() != bitmap_bytes) return false;
    state->page_count = pages;
    state->freed.assign(pages, false);
    for (uint64_t i = 0; i < pages; ++i) {
      if (payload[i / 8] & (1 << (i % 8))) state->freed[i] = true;
    }
    return true;
  }
  if (kind == kRecordDelta) {
    uint64_t pages = 0;
    uint32_t freed_count = 0;
    if (!GetFixed64(&payload, &pages) || !GetFixed32(&payload, &freed_count)) {
      return false;
    }
    // The allocator only grows and ids are never reused: a shrinking count
    // or an id beyond it marks the record as garbage, not as state.
    if (pages < state->page_count) return false;
    if (payload.size() != static_cast<size_t>(freed_count) * 4) return false;
    state->page_count = pages;
    state->freed.resize(pages, false);
    for (uint32_t i = 0; i < freed_count; ++i) {
      uint32_t id = 0;
      if (!GetFixed32(&payload, &id)) return false;
      if (id >= pages) return false;
      // Idempotent on purpose: a checkpoint raced by a concurrent reopen may
      // re-record a free the snapshot already carries.
      state->freed[id] = true;
    }
    return true;
  }
  return false;  // unknown kind
}

Status ReplayLegacy(const std::string& path, std::string_view in,
                    VolumeMetaReplay* out) {
  if (!GetFixed32(&in, &out->state.options.page_size) ||
      !GetFixed32(&in, &out->state.options.extent_bytes) ||
      !GetFixed64(&in, &out->state.page_count)) {
    return Status::Corruption("truncated volume.meta in " + path);
  }
  const size_t bitmap_bytes = (out->state.page_count + 7) / 8;
  if (in.size() < bitmap_bytes) {
    return Status::Corruption("truncated freed bitmap in " + path);
  }
  out->state.freed.assign(out->state.page_count, false);
  for (uint64_t i = 0; i < out->state.page_count; ++i) {
    if (in[i / 8] & (1 << (i % 8))) out->state.freed[i] = true;
  }
  out->legacy = true;
  return Status::OK();
}

}  // namespace

Status ReplayVolumeMeta(const std::string& path, VolumeMetaReplay* out) {
  *out = VolumeMetaReplay{};
  std::string bytes;
  STARFISH_RETURN_NOT_OK(ReadFileToString(path, &bytes, &out->found));
  if (!out->found) return Status::OK();

  std::string_view in(bytes);
  uint32_t magic = 0, version = 0;
  // An absent meta file means a fresh volume; an unreadable HEADER must be
  // an error — treating it as fresh would re-format a live volume.
  if (!GetFixed32(&in, &magic) || magic != kMetaMagic) {
    return Status::Corruption("bad volume.meta magic in " + path);
  }
  if (!GetFixed32(&in, &version)) {
    return Status::Corruption("truncated volume.meta in " + path);
  }
  if (version == kMetaVersionLegacy) return ReplayLegacy(path, in, out);
  if (version != kMetaVersion) {
    return Status::Corruption("unsupported volume.meta version in " + path);
  }
  if (!GetFixed32(&in, &out->state.options.page_size) ||
      !GetFixed32(&in, &out->state.options.extent_bytes)) {
    return Status::Corruption("truncated volume.meta header in " + path);
  }

  while (!in.empty()) {
    if (in.size() < kRecordOverhead) {
      out->torn_tail = true;  // short frame: a torn append
      break;
    }
    std::string_view frame = in;
    uint32_t kind = 0, len = 0;
    GetFixed32(&frame, &kind);
    GetFixed32(&frame, &len);
    if (frame.size() < static_cast<size_t>(len) + 4) {
      out->torn_tail = true;  // payload or checksum missing
      break;
    }
    const std::string_view payload = frame.substr(0, len);
    frame.remove_prefix(len);
    uint32_t stored_crc = 0;
    GetFixed32(&frame, &stored_crc);
    if (Crc32(in.substr(0, 8 + len)) != stored_crc ||
        !ApplyRecord(kind, payload, &out->state)) {
      out->torn_tail = true;
      break;
    }
    ++out->records;
    in.remove_prefix(kRecordOverhead + len);
  }
  return Status::OK();
}

void AppendVolumeMetaHeader(std::string* out, const DiskOptions& options) {
  PutFixed32(out, kMetaMagic);
  PutFixed32(out, kMetaVersion);
  PutFixed32(out, options.page_size);
  PutFixed32(out, options.extent_bytes);
}

void AppendSnapshotRecord(std::string* out, const VolumeMetaState& state) {
  std::string payload;
  PutFixed64(&payload, state.page_count);
  payload += EncodeBitmap(state.freed, state.page_count);
  AppendRecord(out, kRecordSnapshot, payload);
}

void AppendDeltaRecord(std::string* out, uint64_t new_page_count,
                       const std::vector<PageId>& newly_freed) {
  std::string payload;
  PutFixed64(&payload, new_page_count);
  PutFixed32(&payload, static_cast<uint32_t>(newly_freed.size()));
  for (PageId id : newly_freed) PutFixed32(&payload, id);
  AppendRecord(out, kRecordDelta, payload);
}

std::string ExtentFileName(size_t index) {
  char name[32];
  std::snprintf(name, sizeof(name), "extent_%06zu", index);
  return name;
}

bool ParseExtentFileName(const std::string& name, uint64_t* index) {
  constexpr std::string_view kPrefix = "extent_";
  if (name.rfind(kPrefix.data(), 0) != 0) return false;
  const std::string digits = name.substr(kPrefix.size());
  if (digits.empty() || digits.size() > 12 ||
      digits.find_first_not_of("0123456789") != std::string::npos) {
    return false;
  }
  *index = std::stoull(digits);
  return true;
}

Status RemoveOrphanExtentFiles(const std::string& dir, size_t expected) {
  // Manual increment with an error_code: the range-for ++ throws on a
  // mid-scan I/O error, which must surface as a Status on this API.
  std::error_code ec;
  std::vector<std::string> doomed;
  std::filesystem::directory_iterator it(dir, ec), end;
  for (; !ec && it != end; it.increment(ec)) {
    uint64_t index = 0;
    if (ParseExtentFileName(it->path().filename().string(), &index) &&
        index >= expected) {
      doomed.push_back(it->path());
    }
  }
  if (ec) {
    return Status::IOError("scan " + dir + ": " + ec.message());
  }
  for (const std::string& path : doomed) {
    std::filesystem::remove(path, ec);
    if (ec) {
      return Status::IOError("remove orphan extent " + path + ": " +
                             ec.message());
    }
  }
  if (!doomed.empty()) STARFISH_RETURN_NOT_OK(SyncDir(dir));
  return Status::OK();
}

Status AllocatorJournal::RewriteCompacted(VolumeMetaState current) {
  std::string bytes;
  AppendVolumeMetaHeader(&bytes, current.options);
  AppendSnapshotRecord(&bytes, current);
  STARFISH_RETURN_NOT_OK(WriteFileAtomic(path_, bytes));
  last_ = std::move(current);
  on_disk_ = true;
  append_unsafe_ = false;  // the atomic replace healed any torn tail
  return Status::OK();
}

Status AllocatorJournal::Checkpoint(VolumeMetaState current) {
  if (!on_disk_) return RewriteCompacted(std::move(current));

  std::vector<PageId> newly_freed;
  for (uint64_t i = 0; i < current.page_count; ++i) {
    const bool was_freed = i < last_.page_count && last_.freed[i];
    const bool is_freed = i < current.freed.size() && current.freed[i];
    if (is_freed && !was_freed) {
      newly_freed.push_back(static_cast<PageId>(i));
    } else if (!is_freed && was_freed) {
      // Un-freeing only happens via ReconcileLive (reopen recovery); a
      // delta cannot express it, so fold the journal into a snapshot.
      return RewriteCompacted(std::move(current));
    }
  }
  if (current.page_count == last_.page_count && newly_freed.empty()) {
    return Status::OK();  // nothing moved since the last record
  }
  if (append_unsafe_) {
    // A previous append failed partway: the tail may hold torn bytes, and
    // a fresh append would land BEYOND them, where replay never reaches.
    // Only an atomic rewrite may touch the file now.
    return RewriteCompacted(std::move(current));
  }
  std::string record;
  AppendDeltaRecord(&record, current.page_count, newly_freed);
  const Status appended = AppendFileDurable(path_, record);
  if (!appended.ok()) {
    // Heal the possibly-torn tail immediately (the compacted snapshot
    // replaces the whole file atomically and supersedes the delta); if
    // even that fails, the flag poisons appends until a rewrite succeeds.
    append_unsafe_ = true;
    return RewriteCompacted(std::move(current)).ok() ? Status::OK() : appended;
  }
  last_ = std::move(current);
  return Status::OK();
}

}  // namespace starfish
