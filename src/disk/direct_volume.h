#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "disk/paged_volume.h"
#include "disk/volume_meta.h"

/// \file direct_volume.h
/// The real-device disk volume: O_DIRECT file I/O, batched via io_uring.
///
/// DirectVolume is the backend that makes the paper's *physical* I/O claim
/// testable on hardware. The mem and mmap backends satisfy every read from
/// RAM or the kernel page cache, so their wall-clock numbers say nothing
/// about device latency; DirectVolume opens one file per extent with
/// O_DIRECT, so every ReadRun/WriteRun is a real device transfer that
/// bypasses the page cache entirely — a buffer-pool miss costs what the
/// hardware charges, which is what the out-of-core bench measures against
/// TimedVolume's Equation-1 model.
///
/// On-disk format: IDENTICAL to MmapVolume —
///
///     <dir>/volume.meta      geometry + allocator journal (volume_meta.h)
///     <dir>/extent_000000    page images of extent 0 (ftruncated to size)
///     <dir>/extent_000001    ...
///
/// so a directory written by either persistent backend reopens under the
/// other, sf_fsck verifies both without knowing which wrote it, and the
/// PR 4 shadow-catalog commit protocol (write-back -> Sync -> catalog
/// generation -> CURRENT repoint) extends to this backend unchanged.
///
/// I/O submission: reads/writes are split into per-extent segments and
/// submitted as ONE batch — through an io_uring when the kernel provides
/// one (probed at Open; containers often seccomp it away), otherwise a
/// plain pread/pwrite loop. Either way the batch counts as one I/O call in
/// the meter, preserving the paper's call/page accounting.
///
/// Ring model (see docs/VOLUMES.md for the full matrix): by default every
/// submitting thread lazily gets its OWN io_uring, so N reader threads keep
/// N submission queues feeding the device with zero software serialization
/// — the single-ring-plus-mutex arrangement of earlier revisions survives
/// as RingMode::kShared (a measurable baseline) and RingMode::kSqpoll (one
/// kernel-polled ring; submission needs no syscall, but threads still
/// serialize on the queue). Rings pre-register long-lived I/O memory
/// (RegisterIoMemory — the buffer pool registers its frame arena) as fixed
/// buffers and the extent fd table as registered files, cutting per-I/O
/// pinning and fd-reference cost; every feature degrades independently
/// (registration refused -> plain SQEs; ring refused -> pread/pwrite), and
/// the accessors (io_uring_active(), registered_buffers_active(), ...)
/// report what is actually in effect. SubmitReadChained/CompleteRead expose
/// the ring's native submit/wait split so prefetchers can keep a queue of
/// reads in flight per thread.
///
/// Alignment: O_DIRECT requires transfers aligned to the device's DMA
/// granularity. Open() probes the filesystem (statx STATX_DIOALIGN where
/// available, plus a trial write) and rejects geometries the device cannot
/// do (page_size must be a multiple of the device's offset alignment;
/// tmpfs/overlayfs reject O_DIRECT outright -> NotSupported — callers and
/// tests skip, see docs/VOLUMES.md). Caller buffers need no alignment:
/// misaligned ones bounce through an internal aligned scratch. Aligned
/// buffers (the buffer pool aligns its frame arena to
/// io_buffer_alignment()) DMA directly.
///
/// No memory image exists, so supports_zero_copy() is false: the zero-copy
/// calls return NotSupported and PeekPage returns nullptr. The buffer pool
/// detects this and reads through the copying calls into its own frames.
///
/// Thread safety: same contract as every backend (see volume.h). The
/// pread/pwrite path is naturally concurrent; per-thread rings make the
/// io_uring path concurrent without any shared lock. Ring teardown is
/// centralized: the volume's ring registry owns every ring it handed out,
/// so closing the volume closes all ring fds even when the submitting
/// threads are still alive (their thread-local slots just go stale and are
/// swept on next use), and a thread exiting early only drops its reference
/// — the registry reaps the unused ring on the next ring creation.

namespace starfish {

/// DirectVolume construction knobs (beyond the shared DiskOptions).
struct DirectVolumeOptions {
  /// Try to set up io_uring at Open; silently falls back to pread/pwrite
  /// when the kernel refuses (ENOSYS, seccomp EPERM, ...). Force false to
  /// test/measure the fallback path.
  bool use_io_uring = true;

  /// Submission-queue depth of each ring; batches larger than this are
  /// submitted in chunks.
  uint32_t ring_depth = 64;

  /// How submitting threads map onto rings.
  enum class RingMode {
    kPerThread,  ///< one ring per submitting thread (default; lock-free)
    kShared,     ///< one ring, submissions serialized by a mutex (the
                 ///< pre-rework baseline, kept measurable for benches)
    kSqpoll,     ///< one IORING_SETUP_SQPOLL ring: a kernel thread polls
                 ///< the SQ so submission needs no syscall; submitting
                 ///< threads still serialize on the single queue. Falls
                 ///< back to kPerThread when the kernel refuses SQPOLL.
  };
  RingMode ring_mode = RingMode::kPerThread;

  /// Pre-register RegisterIoMemory regions as fixed buffers
  /// (IORING_REGISTER_BUFFERS -> IORING_OP_READ_FIXED/WRITE_FIXED). Rings
  /// that fail the registration (RLIMIT_MEMLOCK, old kernel) silently keep
  /// using plain SQEs.
  bool register_buffers = true;

  /// Pre-register extent fds (IORING_REGISTER_FILES -> IOSQE_FIXED_FILE).
  /// Same per-ring graceful fallback as register_buffers.
  bool register_files = true;

  /// Idle time (ms) before a kSqpoll kernel thread sleeps and submission
  /// needs an IORING_ENTER_SQ_WAKEUP.
  uint32_t sqpoll_idle_ms = 100;
};

/// An O_DIRECT file-per-extent volume with I/O accounting and persistence.
class DirectVolume final : public PagedVolume {
 public:
  /// Opens (or creates) the volume backed by directory `dir`. Returns
  /// NotSupported when the directory's filesystem rejects O_DIRECT or the
  /// device's DMA alignment cannot serve `options.page_size`; the recorded
  /// geometry wins over `options` when the directory already holds a
  /// volume (written by this backend or by MmapVolume).
  static Result<std::unique_ptr<DirectVolume>> Open(
      const std::string& dir, DiskOptions options = {},
      DirectVolumeOptions direct_options = {});

  /// Cheap probe: would Open(dir, {page_size}) succeed on this filesystem?
  /// Tests and CI use it to skip direct-backend coverage on filesystems
  /// without O_DIRECT support (tmpfs, overlayfs) instead of failing.
  static bool SupportedAt(const std::string& dir,
                          uint32_t page_size = kDefaultPageSize);

  ~DirectVolume() override;

  VolumeKind kind() const override { return VolumeKind::kDirect; }
  bool supports_zero_copy() const override { return false; }
  uint32_t io_buffer_alignment() const override { return dio_mem_align_; }

  Status ReadRun(PageId first, uint32_t count, char* out) override;
  Status WriteRun(PageId first, uint32_t count, const char* src) override;
  Status ReadChained(const std::vector<PageId>& ids,
                     const std::vector<char*>& outs) override;
  Status WriteChained(const std::vector<PageId>& ids,
                      const std::vector<const char*>& srcs) override;

  /// Native submit/wait split over this thread's ring (volume.h contract:
  /// tickets are thread-local and FIFO per thread). Falls back to a
  /// blocking ReadChained — still returning a completed ticket — whenever
  /// the calling thread has no usable ring or a buffer would need a bounce.
  bool supports_async_read() const override;
  Result<uint64_t> SubmitReadChained(const std::vector<PageId>& ids,
                                     const std::vector<char*>& outs) override;
  Status CompleteRead(uint64_t ticket) override;

  /// Registers `[base, base+bytes)` for fixed-buffer I/O on every ring
  /// (existing rings re-register lazily, before their next idle
  /// submission). The memory must outlive the registration.
  void RegisterIoMemory(const void* base, size_t bytes) override;
  void UnregisterIoMemory(const void* base) override;

  /// No memory image: NotSupported (see supports_zero_copy()).
  Status ReadRunZeroCopy(PageId first, uint32_t count,
                         std::vector<const char*>* views) override;
  Status ReadChainedZeroCopy(const std::vector<PageId>& ids,
                             std::vector<const char*>* views) override;
  /// No memory image: nullptr for every id.
  const char* PeekPage(PageId /*id*/) const override { return nullptr; }

  /// Unmetered single-page device write (FaultVolume's overlay flush).
  Status WritePageUnmetered(PageId id, const char* src) override;

  /// fdatasync()s every extent file (O_DIRECT data bypasses the cache, but
  /// block allocations do not), fsyncs the directory when extents were
  /// added, then checkpoints the allocator journal.
  Status Sync() override;

  /// Backing directory of this volume.
  const std::string& dir() const { return dir_; }

  /// True when batches go through an io_uring (false = pread/pwrite
  /// fallback, either by option or because the kernel refused a ring).
  bool io_uring_active() const {
    return ring_available_.load(std::memory_order_relaxed);
  }

  /// The ring mode actually in effect (kSqpoll downgrades to kPerThread
  /// when the kernel refuses SQPOLL). Meaningless if !io_uring_active().
  DirectVolumeOptions::RingMode ring_mode() const { return effective_mode_; }

  /// True when the CALLING thread's ring currently has fixed buffers /
  /// registered files in effect (creates the thread's ring on first use,
  /// like any submission would). Both are per-ring states: a ring that
  /// failed a registration runs on plain SQEs while others use the fast
  /// path.
  bool registered_buffers_active();
  bool registered_files_active();

  /// True when the single SQPOLL ring is live (kSqpoll requested AND the
  /// kernel granted it).
  bool sqpoll_active() const;

  /// Rings currently owned by the registry (tests: bounded by the number
  /// of distinct submitting threads; 0 until the first submission in
  /// kPerThread mode).
  size_t ring_count() const;

 private:
  /// One device transfer: `len` bytes at file offset `off` of extent
  /// `extent` (fd `fd`), to/from `buf`.
  struct IoOp {
    int fd;
    uint32_t extent;
    uint64_t off;
    char* buf;
    uint32_t len;
  };

  struct IoRing;        // raw-syscall io_uring wrapper (direct_volume.cc)
  struct RingRegistry;  // all rings handed out + registered I/O memory

  DirectVolume(std::string dir, DiskOptions options,
               DirectVolumeOptions direct_options, uint32_t dio_mem_align);

  /// PagedVolume hook: creates + opens extent files up to `extent_count`.
  Status EnsureExtentsLocked(size_t extent_count) override;

  /// Opens extent file `index` with O_DIRECT, creating/ftruncating it to
  /// extent size when `create` is set. Publishes the fd.
  Status OpenExtentFd(size_t index, bool create);

  std::string ExtentPath(size_t index) const;

  /// fd of the extent holding `id` plus the in-file offset of the page.
  /// Valid after a successful CheckRange (the acquire there pairs with the
  /// release publication of the fd).
  int FdOf(PageId id, uint64_t* off) const;

  /// True when `buf` can be handed to O_DIRECT as-is.
  bool DioEligible(const void* buf) const {
    return reinterpret_cast<uintptr_t>(buf) % dio_mem_align_ == 0;
  }

  /// Splits a page run into per-extent IoOps targeting `base`.
  void BuildRunOps(PageId first, uint32_t count, char* base,
                   std::vector<IoOp>* ops) const;

  /// The calling thread's usable ring (created on first use in kPerThread
  /// mode; the shared ring otherwise), or nullptr when the thread must use
  /// the pread/pwrite path. `lock` receives true when ring operations must
  /// run under the ring's mutex (shared modes).
  IoRing* AcquireRing(bool* lock);

  /// Executes one batch as a single logical I/O call: io_uring submission
  /// when a ring is up, pread/pwrite loop otherwise. Does not touch the
  /// meter (callers count one call per batch).
  Status Execute(const std::vector<IoOp>& ops, bool write);

  /// The pread/pwrite path (also finishes short io_uring completions).
  static Status ExecuteSync(const IoOp& op, bool write, uint32_t done);

  // 65536 extent fds cap the volume at 256 GiB with default 4 MiB extents
  // — far beyond experiment scale; a fixed-shape table keeps the read path
  // lock-free (the acquire bounds check orders readers after publication).
  static constexpr size_t kMaxExtents = size_t{1} << 16;

  std::string dir_;
  uint32_t dio_mem_align_;  ///< device DMA buffer alignment (>= 512)
  DirectVolumeOptions direct_options_;
  DirectVolumeOptions::RingMode effective_mode_ =
      DirectVolumeOptions::RingMode::kPerThread;
  std::unique_ptr<std::atomic<int>[]> fds_;  ///< kMaxExtents slots, -1 empty
  size_t open_extents_ = 0;                  ///< guarded by alloc_mu_
  /// Extent count whose fds are published (release; registration snapshots
  /// pair with an acquire load). Trails open_extents_ by design: it is
  /// readable without alloc_mu_.
  std::atomic<uint32_t> published_extents_{0};
  /// Extent files created since the last directory fsync: their directory
  /// entries are not durable until Sync.
  std::atomic<bool> dir_dirty_{false};
  /// io_uring probed usable at Open (kernel + opcodes). Individual threads
  /// can still fail ring creation later and fall back alone.
  std::atomic<bool> ring_available_{false};
  /// Identifies this volume in thread-local ring slots; never reused, so a
  /// slot left over from a destroyed volume can never match a live one.
  uint64_t serial_ = 0;
  std::shared_ptr<RingRegistry> registry_;
  std::shared_ptr<IoRing> shared_ring_;  ///< kShared/kSqpoll modes only
  AllocatorJournal journal_;
};

}  // namespace starfish
