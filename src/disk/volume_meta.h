#pragma once

#include <string>
#include <vector>

#include "disk/volume.h"
#include "util/status.h"

/// \file volume_meta.h
/// The volume.meta allocator journal: encoding, decoding, replay.
///
/// volume.meta records the allocator state of a persistent volume — how many
/// pages exist and which of them are freed. Since PR 4 it is an append-only
/// journal rather than a rewritten snapshot, so a checkpoint appends a small
/// delta instead of rewriting state proportional to the volume, and a crash
/// mid-append can only tear the *tail* record, never the established state.
///
/// File layout (little-endian, see coding.h):
///
///   header:   u32 magic 'SFVM', u32 version (2), u32 page_size,
///             u32 extent_bytes
///   records:  u32 kind, u32 payload_len, payload, u32 crc32
///
/// where the CRC covers the record's kind/len/payload bytes. Record kinds:
///
///   kSnapshot (1): u64 page_count, ceil(page_count/8) bytes freed bitmap
///                  (bit i of byte i/8 set = page i freed) — replaces the
///                  running state.
///   kDelta    (2): u64 new_page_count, u32 freed_count, freed_count * u32
///                  newly freed page ids — extends the running state.
///
/// Replay applies records in order and stops at the first torn or corrupt
/// record (short frame, bad checksum, implausible payload): everything
/// before it is the durable allocator state, everything after never
/// happened. The version-1 format (one unchecksummed snapshot, rewritten
/// atomically per Sync) is still read for volumes written by older builds;
/// the first checkpoint after reopen compacts them to version 2.
///
/// This module is shared by the writer (MmapVolume) and the offline
/// verifier (sf_fsck), so both sides agree byte-for-byte on what a valid
/// journal is.

namespace starfish {

/// Allocator state described by a volume.meta file.
struct VolumeMetaState {
  DiskOptions options;
  uint64_t page_count = 0;
  /// Index i set = page i freed. Sized to page_count.
  std::vector<bool> freed;

  uint64_t live_pages() const {
    uint64_t live = page_count;
    for (bool f : freed) {
      if (f) --live;
    }
    return live;
  }
};

/// Outcome of replaying a volume.meta file.
struct VolumeMetaReplay {
  VolumeMetaState state;
  bool found = false;      ///< the file existed
  bool legacy = false;     ///< version-1 single-snapshot format
  bool torn_tail = false;  ///< a trailing record was dropped as torn/corrupt
  uint32_t records = 0;    ///< valid records applied (0 for legacy)
};

/// Replays `path` into `*out`. A missing file is not an error (`found`
/// stays false). A corrupt *header* is Corruption — treating it as absent
/// would re-format a live volume; only tail records degrade gracefully.
Status ReplayVolumeMeta(const std::string& path, VolumeMetaReplay* out);

/// Appends the version-2 file header.
void AppendVolumeMetaHeader(std::string* out, const DiskOptions& options);

/// Appends a checksummed snapshot record of `state`.
void AppendSnapshotRecord(std::string* out, const VolumeMetaState& state);

/// Appends a checksummed delta record (page-count growth + newly freed ids).
void AppendDeltaRecord(std::string* out, uint64_t new_page_count,
                       const std::vector<PageId>& newly_freed);

/// "extent_NNNNNN" — the file name (no directory) of extent `index`. The
/// one definition shared by the mmap backend and sf_fsck, so both always
/// agree on which files are extents.
std::string ExtentFileName(size_t index);

/// Parses an extent file name back into its index; false for anything
/// else (including the legacy-free "catalog.*" and "volume.meta" names).
bool ParseExtentFileName(const std::string& name, uint64_t* index);

}  // namespace starfish
