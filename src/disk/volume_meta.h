#pragma once

#include <string>
#include <vector>

#include "disk/volume.h"
#include "util/status.h"

/// \file volume_meta.h
/// The volume.meta allocator journal: encoding, decoding, replay.
///
/// volume.meta records the allocator state of a persistent volume — how many
/// pages exist and which of them are freed. Since PR 4 it is an append-only
/// journal rather than a rewritten snapshot, so a checkpoint appends a small
/// delta instead of rewriting state proportional to the volume, and a crash
/// mid-append can only tear the *tail* record, never the established state.
///
/// File layout (little-endian, see coding.h):
///
///   header:   u32 magic 'SFVM', u32 version (2), u32 page_size,
///             u32 extent_bytes
///   records:  u32 kind, u32 payload_len, payload, u32 crc32
///
/// where the CRC covers the record's kind/len/payload bytes. Record kinds:
///
///   kSnapshot (1): u64 page_count, ceil(page_count/8) bytes freed bitmap
///                  (bit i of byte i/8 set = page i freed) — replaces the
///                  running state.
///   kDelta    (2): u64 new_page_count, u32 freed_count, freed_count * u32
///                  newly freed page ids — extends the running state.
///
/// Replay applies records in order and stops at the first torn or corrupt
/// record (short frame, bad checksum, implausible payload): everything
/// before it is the durable allocator state, everything after never
/// happened. The version-1 format (one unchecksummed snapshot, rewritten
/// atomically per Sync) is still read for volumes written by older builds;
/// the first checkpoint after reopen compacts them to version 2.
///
/// This module is shared by the writers (MmapVolume, DirectVolume — the two
/// persistent backends write the identical format, so a volume directory
/// can be reopened with either backend) and the offline verifier (sf_fsck),
/// so all sides agree byte-for-byte on what a valid journal is.

namespace starfish {

/// Allocator state described by a volume.meta file.
struct VolumeMetaState {
  DiskOptions options;
  uint64_t page_count = 0;
  /// Index i set = page i freed. Sized to page_count.
  std::vector<bool> freed;

  uint64_t live_pages() const {
    uint64_t live = page_count;
    for (bool f : freed) {
      if (f) --live;
    }
    return live;
  }
};

/// Outcome of replaying a volume.meta file.
struct VolumeMetaReplay {
  VolumeMetaState state;
  bool found = false;      ///< the file existed
  bool legacy = false;     ///< version-1 single-snapshot format
  bool torn_tail = false;  ///< a trailing record was dropped as torn/corrupt
  uint32_t records = 0;    ///< valid records applied (0 for legacy)
};

/// Replays `path` into `*out`. A missing file is not an error (`found`
/// stays false). A corrupt *header* is Corruption — treating it as absent
/// would re-format a live volume; only tail records degrade gracefully.
Status ReplayVolumeMeta(const std::string& path, VolumeMetaReplay* out);

/// Appends the version-2 file header.
void AppendVolumeMetaHeader(std::string* out, const DiskOptions& options);

/// Appends a checksummed snapshot record of `state`.
void AppendSnapshotRecord(std::string* out, const VolumeMetaState& state);

/// Appends a checksummed delta record (page-count growth + newly freed ids).
void AppendDeltaRecord(std::string* out, uint64_t new_page_count,
                       const std::vector<PageId>& newly_freed);

/// "extent_NNNNNN" — the file name (no directory) of extent `index`. The
/// one definition shared by the mmap backend and sf_fsck, so both always
/// agree on which files are extents.
std::string ExtentFileName(size_t index);

/// Parses an extent file name back into its index; false for anything
/// else (including the legacy-free "catalog.*" and "volume.meta" names).
bool ParseExtentFileName(const std::string& name, uint64_t* index);

/// Removes extent files at index `expected` or beyond from `dir` (the
/// leavings of a crashed, never-checkpointed allocation) and fsyncs the
/// directory when anything was removed. A later re-allocation of their
/// indices must start from zero-filled images. Shared by the persistent
/// backends' reopen paths.
Status RemoveOrphanExtentFiles(const std::string& dir, size_t expected);

/// The volume.meta journal writer shared by the persistent backends.
///
/// Owns the "what is durably recorded" side of the allocator: the state as
/// of the last durable record, whether the file exists, and whether a torn
/// append poisoned the tail. Checkpoint() appends a small delta when the
/// allocator only grew/freed, and falls back to an atomic compacted rewrite
/// when the state moved backwards (ReconcileLive un-freeing pages), when a
/// previous append may have torn the tail, or when no file exists yet.
class AllocatorJournal {
 public:
  /// Binds the journal to its file path. Call once before any other method.
  void Attach(std::string path) { path_ = std::move(path); }

  /// Declares `state` to be what a successful replay recovered: the file
  /// exists and `state` is its durable content.
  void MarkReplayed(VolumeMetaState state) {
    last_ = std::move(state);
    on_disk_ = true;
  }

  /// Records `current` durably: appends a delta against the last durable
  /// record, or rewrites the journal compacted where a delta cannot express
  /// the change. No-op when nothing moved.
  Status Checkpoint(VolumeMetaState current);

  /// Atomically replaces the journal with a compacted header + snapshot of
  /// `current` (also heals a torn tail: the replacement is atomic).
  Status RewriteCompacted(VolumeMetaState current);

 private:
  std::string path_;
  /// Allocator state as of the last durable journal record; the next
  /// checkpoint appends the delta against it.
  VolumeMetaState last_;
  /// True once the file exists with a valid v2 header on disk.
  bool on_disk_ = false;
  /// Set when an append failed partway (the tail may be torn): appending
  /// past torn bytes would put records where replay never reaches, so only
  /// an atomic compacted rewrite may touch the journal until one succeeds.
  bool append_unsafe_ = false;
};

}  // namespace starfish
