#pragma once

#include <atomic>
#include <memory>
#include <vector>

#include "disk/disk_timing.h"
#include "disk/volume.h"

/// \file timed_volume.h
/// A latency-charging decorator over any Volume backend.
///
/// TimedVolume forwards every operation to the wrapped backend and, on
/// success, charges the Equation-1 service time of the call:
///
///     d1 (seek + rotate + controller, per I/O call)
///   + d2 * pages_moved (transfer, per page)
///
/// Allocation, Free and the unmetered PeekPage are free, mirroring the I/O
/// counters. The accumulated `elapsed_ms()` therefore equals
/// `LinearTimingModel::Cost(stats delta)` for everything routed through the
/// decorator — benches wrap their volume in a TimedVolume to print estimated
/// milliseconds next to the call/page counts. Derive the coefficients from a
/// mechanical drive description with PhysicalTimingModel::ToLinear().

namespace starfish {

/// Decorator charging LinearTimingModel time per successful call.
class TimedVolume final : public Volume {
 public:
  /// Wraps and owns `inner`.
  TimedVolume(std::unique_ptr<Volume> inner, LinearTimingModel timing)
      : owned_(std::move(inner)), inner_(owned_.get()), timing_(timing) {}

  /// Wraps a caller-owned backend (must outlive the decorator).
  TimedVolume(Volume* inner, LinearTimingModel timing)
      : inner_(inner), timing_(timing) {}

  /// Estimated service time charged so far, in the unit of the timing
  /// coefficients (milliseconds for the defaults).
  double elapsed_ms() const {
    return elapsed_ms_.load(std::memory_order_relaxed);
  }

  /// Zeroes the accumulated time (backend counters are unaffected).
  void ResetElapsed() { elapsed_ms_.store(0.0, std::memory_order_relaxed); }

  /// The timing coefficients in use.
  const LinearTimingModel& timing() const { return timing_; }

  /// The wrapped backend.
  Volume* inner() { return inner_; }

  // ------------------------------------------------------------ Volume --
  VolumeKind kind() const override { return inner_->kind(); }
  bool supports_zero_copy() const override {
    return inner_->supports_zero_copy();
  }
  uint32_t io_buffer_alignment() const override {
    return inner_->io_buffer_alignment();
  }
  // supports_async_read()/SubmitReadChained/CompleteRead stay on the base
  // implementation on purpose: it dispatches through THIS decorator's
  // virtual ReadChained, so async-shaped callers are charged exactly like
  // blocking ones (true overlap would make Equation-1 time meaningless).
  void RegisterIoMemory(const void* base, size_t bytes) override {
    inner_->RegisterIoMemory(base, bytes);
  }
  void UnregisterIoMemory(const void* base) override {
    inner_->UnregisterIoMemory(base);
  }
  uint32_t page_size() const override { return inner_->page_size(); }
  uint32_t pages_per_extent() const override {
    return inner_->pages_per_extent();
  }
  uint64_t page_count() const override { return inner_->page_count(); }
  uint64_t live_page_count() const override {
    return inner_->live_page_count();
  }

  Result<PageId> AllocateRun(uint32_t n) override {
    return inner_->AllocateRun(n);
  }
  Status Free(PageId id) override { return inner_->Free(id); }

  Status ReadRun(PageId first, uint32_t count, char* out) override {
    return Charge(inner_->ReadRun(first, count, out), count);
  }
  Status WriteRun(PageId first, uint32_t count, const char* src) override {
    return Charge(inner_->WriteRun(first, count, src), count);
  }
  Status ReadRunZeroCopy(PageId first, uint32_t count,
                         std::vector<const char*>* views) override {
    return Charge(inner_->ReadRunZeroCopy(first, count, views), count);
  }
  Status ReadChained(const std::vector<PageId>& ids,
                     const std::vector<char*>& outs) override {
    return Charge(inner_->ReadChained(ids, outs),
                  static_cast<uint64_t>(ids.size()));
  }
  Status ReadChainedZeroCopy(const std::vector<PageId>& ids,
                             std::vector<const char*>* views) override {
    return Charge(inner_->ReadChainedZeroCopy(ids, views),
                  static_cast<uint64_t>(ids.size()));
  }
  Status WriteChained(const std::vector<PageId>& ids,
                      const std::vector<const char*>& srcs) override {
    return Charge(inner_->WriteChained(ids, srcs),
                  static_cast<uint64_t>(ids.size()));
  }

  const char* PeekPage(PageId id) const override {
    return inner_->PeekPage(id);
  }
  Status WritePageUnmetered(PageId id, const char* src) override {
    // Unmetered implies uncharged, mirroring the I/O counters.
    return inner_->WritePageUnmetered(id, src);
  }
  Status Sync() override { return inner_->Sync(); }
  Status ReconcileLive(const std::vector<PageId>& live) override {
    return inner_->ReconcileLive(live);
  }
  IoStats stats() const override { return inner_->stats(); }
  void ResetStats() override {
    inner_->ResetStats();
    elapsed_ms_.store(0.0, std::memory_order_relaxed);
  }

 private:
  /// One successful call moving `pages` pages costs d1 + pages * d2.
  /// The accumulator is a CAS loop: concurrent readers each charge their own
  /// calls without losing updates (std::atomic<double> has no fetch_add
  /// until C++20).
  Status Charge(Status status, uint64_t pages) {
    if (status.ok()) {
      const double cost = timing_.Cost(1, pages);
      double current = elapsed_ms_.load(std::memory_order_relaxed);
      while (!elapsed_ms_.compare_exchange_weak(current, current + cost,
                                                std::memory_order_relaxed)) {
      }
    }
    return status;
  }

  std::unique_ptr<Volume> owned_;  // empty for the non-owning constructor
  Volume* inner_;
  LinearTimingModel timing_;
  std::atomic<double> elapsed_ms_{0.0};
};

}  // namespace starfish
