#pragma once

#include <cstdint>
#include <limits>

/// \file page.h
/// Page identifiers and the default page geometry.
///
/// The paper's experiments ran on DASDBS with 2048-byte pages of which a
/// 36-byte page header leaves 2012 effective bytes. Those are the library
/// defaults; both are configurable (see DiskOptions / the page-size ablation
/// bench).

namespace starfish {

/// Identifier of a physical page on the simulated disk. Page ids are dense:
/// the disk allocates them in increasing order, so consecutive ids are
/// physically adjacent (this is what makes multi-page I/O calls and
/// clustering meaningful).
using PageId = uint32_t;

/// Sentinel for "no page".
inline constexpr PageId kInvalidPageId = std::numeric_limits<PageId>::max();

/// Default physical page size in bytes (DASDBS used 2 KiB pages).
inline constexpr uint32_t kDefaultPageSize = 2048;

/// Bytes reserved at the start of every page for the page header
/// (page id, type tag, slot count, free-space pointer, checksum).
/// DASDBS reserved 36 bytes; so do we.
inline constexpr uint32_t kPageHeaderSize = 36;

}  // namespace starfish
