#pragma once

#include <cstdint>
#include <cstring>
#include <limits>

/// \file page.h
/// Page identifiers and the default page geometry.
///
/// The paper's experiments ran on DASDBS with 2048-byte pages of which a
/// 36-byte page header leaves 2012 effective bytes. Those are the library
/// defaults; both are configurable (see DiskOptions / the page-size ablation
/// bench).

namespace starfish {

/// Identifier of a physical page on the simulated disk. Page ids are dense:
/// the disk allocates them in increasing order, so consecutive ids are
/// physically adjacent (this is what makes multi-page I/O calls and
/// clustering meaningful).
using PageId = uint32_t;

/// Sentinel for "no page".
inline constexpr PageId kInvalidPageId = std::numeric_limits<PageId>::max();

/// Default physical page size in bytes (DASDBS used 2 KiB pages).
inline constexpr uint32_t kDefaultPageSize = 2048;

/// Bytes reserved at the start of every page for the page header
/// (page id, type tag, slot count, free-space pointer, checksum).
/// DASDBS reserved 36 bytes; so do we.
inline constexpr uint32_t kPageHeaderSize = 36;

/// Byte offset of the page LSN inside the page header (u64, little-endian).
/// Every formatted page carries the LSN of the last WAL record that touched
/// it; flush order enforces WAL-before-data against it (buffer_manager.h)
/// and sf_fsck cross-checks it against the log's issued-LSN horizon. The
/// slot was reserved since the first page format, so pre-WAL page images
/// simply read as LSN 0 ("never logged").
inline constexpr uint32_t kPageLsnOffset = 12;

/// Reads the page LSN out of a raw page image (header included).
inline uint64_t GetPageLsn(const char* page) {
  uint64_t lsn;
  std::memcpy(&lsn, page + kPageLsnOffset, sizeof(lsn));
  return lsn;
}

/// Stamps the page LSN into a raw page image (header included).
inline void SetPageLsn(char* page, uint64_t lsn) {
  std::memcpy(page + kPageLsnOffset, &lsn, sizeof(lsn));
}

}  // namespace starfish
