#include "disk/extent_volume.h"

#include <algorithm>
#include <cstring>
#include <string>

namespace starfish {

ExtentVolume::ExtentVolume(DiskOptions options) : PagedVolume(options) {
  root_ = std::make_unique<std::atomic<DirChunk*>[]>(kDirRootSlots);
  for (size_t i = 0; i < kDirRootSlots; ++i) {
    root_[i].store(nullptr, std::memory_order_relaxed);
  }
}

ExtentVolume::~ExtentVolume() {
  // The directory chunks are plain bookkeeping (the extent memory itself is
  // owned by the subclass); free them here.
  for (size_t i = 0; i < kDirRootSlots; ++i) {
    delete root_[i].load(std::memory_order_relaxed);
  }
}

Status ExtentVolume::PublishExtent(size_t index, char* extent) {
  const size_t root_idx = index >> kDirChunkBits;
  if (root_idx >= kDirRootSlots) {
    return Status::ResourceExhausted(
        "volume extent directory full (" + std::to_string(index) +
        " extents)");
  }
  DirChunk* chunk = root_[root_idx].load(std::memory_order_relaxed);
  if (chunk == nullptr) {
    chunk = new DirChunk;
    for (size_t i = 0; i < kDirChunkSlots; ++i) {
      chunk->slot[i].store(nullptr, std::memory_order_relaxed);
    }
    // Release: a reader that sees the chunk pointer sees its initialization.
    root_[root_idx].store(chunk, std::memory_order_release);
  }
  chunk->slot[index & (kDirChunkSlots - 1)].store(extent,
                                                  std::memory_order_release);
  extent_count_.store(index + 1, std::memory_order_release);
  return Status::OK();
}

Status ExtentVolume::EnsureExtentsLocked(size_t extent_count) {
  for (size_t i = extent_count_.load(std::memory_order_relaxed);
       i < extent_count; ++i) {
    STARFISH_ASSIGN_OR_RETURN(char* extent, NewExtent(i));
    STARFISH_RETURN_NOT_OK(PublishExtent(i, extent));
  }
  return Status::OK();
}

void ExtentVolume::AdoptExtent(char* extent) {
  std::lock_guard<std::mutex> lock(alloc_mu_);
  // Reopen-time only; indices continue from the current count.
  (void)PublishExtent(extent_count_.load(std::memory_order_relaxed), extent);
}

Status ExtentVolume::ReadRun(PageId first, uint32_t count, char* out) {
  STARFISH_RETURN_NOT_OK(CheckRange(first, count));
  const uint32_t page_size = options_.page_size;
  // One memcpy per extent touched; a run inside one extent is one memcpy.
  uint32_t done = 0;
  while (done < count) {
    const PageId id = first + done;
    const uint32_t left_in_extent = pages_per_extent_ - id % pages_per_extent_;
    const uint32_t n = std::min(count - done, left_in_extent);
    std::memcpy(out + static_cast<size_t>(done) * page_size, PagePtr(id),
                static_cast<size_t>(n) * page_size);
    done += n;
  }
  stats_.CountRead(count);
  return Status::OK();
}

Status ExtentVolume::WriteRun(PageId first, uint32_t count, const char* src) {
  STARFISH_RETURN_NOT_OK(CheckRange(first, count));
  const uint32_t page_size = options_.page_size;
  uint32_t done = 0;
  while (done < count) {
    const PageId id = first + done;
    const uint32_t left_in_extent = pages_per_extent_ - id % pages_per_extent_;
    const uint32_t n = std::min(count - done, left_in_extent);
    std::memcpy(PagePtr(id), src + static_cast<size_t>(done) * page_size,
                static_cast<size_t>(n) * page_size);
    done += n;
  }
  stats_.CountWrite(count);
  return Status::OK();
}

Status ExtentVolume::ReadRunZeroCopy(PageId first, uint32_t count,
                                     std::vector<const char*>* views) {
  STARFISH_RETURN_NOT_OK(CheckRange(first, count));
  views->clear();
  views->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    views->push_back(PagePtr(first + i));
  }
  stats_.CountRead(count);
  return Status::OK();
}

Status ExtentVolume::ReadChained(const std::vector<PageId>& ids,
                                 const std::vector<char*>& outs) {
  if (ids.empty()) return Status::InvalidArgument("empty chained read");
  if (ids.size() != outs.size()) {
    return Status::InvalidArgument("chained read: ids/outs size mismatch");
  }
  for (size_t i = 0; i < ids.size(); ++i) {
    STARFISH_RETURN_NOT_OK(CheckRange(ids[i], 1));
    std::memcpy(outs[i], PagePtr(ids[i]), options_.page_size);
  }
  stats_.CountRead(ids.size());
  return Status::OK();
}

Status ExtentVolume::ReadChainedZeroCopy(const std::vector<PageId>& ids,
                                         std::vector<const char*>* views) {
  if (ids.empty()) return Status::InvalidArgument("empty chained read");
  views->clear();
  views->reserve(ids.size());
  for (PageId id : ids) {
    STARFISH_RETURN_NOT_OK(CheckRange(id, 1));
    views->push_back(PagePtr(id));
  }
  stats_.CountRead(ids.size());
  return Status::OK();
}

Status ExtentVolume::WriteChained(const std::vector<PageId>& ids,
                                  const std::vector<const char*>& srcs) {
  if (ids.empty()) return Status::InvalidArgument("empty chained write");
  if (ids.size() != srcs.size()) {
    return Status::InvalidArgument("chained write: ids/srcs size mismatch");
  }
  for (size_t i = 0; i < ids.size(); ++i) {
    STARFISH_RETURN_NOT_OK(CheckRange(ids[i], 1));
    std::memcpy(PagePtr(ids[i]), srcs[i], options_.page_size);
  }
  stats_.CountWrite(ids.size());
  return Status::OK();
}

const char* ExtentVolume::PeekPage(PageId id) const {
  if (id == kInvalidPageId ||
      id >= page_count_.load(std::memory_order_acquire)) {
    return nullptr;
  }
  return PagePtr(id);
}

}  // namespace starfish
