#include "disk/extent_volume.h"

#include <algorithm>
#include <cstring>
#include <string>

namespace starfish {

ExtentVolume::ExtentVolume(DiskOptions options) : options_(options) {
  if (options_.page_size == 0) options_.page_size = kDefaultPageSize;
  pages_per_extent_ = std::max(1u, options_.extent_bytes / options_.page_size);
  root_ = std::make_unique<std::atomic<DirChunk*>[]>(kDirRootSlots);
  for (size_t i = 0; i < kDirRootSlots; ++i) {
    root_[i].store(nullptr, std::memory_order_relaxed);
  }
}

ExtentVolume::~ExtentVolume() {
  // The directory chunks are plain bookkeeping (the extent memory itself is
  // owned by the subclass); free them here.
  for (size_t i = 0; i < kDirRootSlots; ++i) {
    delete root_[i].load(std::memory_order_relaxed);
  }
}

Status ExtentVolume::PublishExtent(size_t index, char* extent) {
  const size_t root_idx = index >> kDirChunkBits;
  if (root_idx >= kDirRootSlots) {
    return Status::ResourceExhausted(
        "volume extent directory full (" + std::to_string(index) +
        " extents)");
  }
  DirChunk* chunk = root_[root_idx].load(std::memory_order_relaxed);
  if (chunk == nullptr) {
    chunk = new DirChunk;
    for (size_t i = 0; i < kDirChunkSlots; ++i) {
      chunk->slot[i].store(nullptr, std::memory_order_relaxed);
    }
    // Release: a reader that sees the chunk pointer sees its initialization.
    root_[root_idx].store(chunk, std::memory_order_release);
  }
  chunk->slot[index & (kDirChunkSlots - 1)].store(extent,
                                                  std::memory_order_release);
  extent_count_.store(index + 1, std::memory_order_release);
  return Status::OK();
}

Result<PageId> ExtentVolume::AllocateRun(uint32_t n) {
  if (n == 0) return Status::InvalidArgument("empty page run");
  std::lock_guard<std::mutex> lock(alloc_mu_);
  const uint64_t old_count = page_count_.load(std::memory_order_relaxed);
  const PageId first = static_cast<PageId>(old_count);
  const uint64_t new_count = old_count + n;
  const uint64_t extents_needed =
      (new_count + pages_per_extent_ - 1) / pages_per_extent_;
  for (size_t i = extent_count_.load(std::memory_order_relaxed);
       i < extents_needed; ++i) {
    // Fresh extents (and thus fresh pages) are zero-filled by the backend.
    // Ids are never reused, so no page is handed out twice.
    STARFISH_ASSIGN_OR_RETURN(char* extent, NewExtent(i));
    STARFISH_RETURN_NOT_OK(PublishExtent(i, extent));
  }
  freed_.resize(new_count, false);
  live_pages_.fetch_add(n, std::memory_order_relaxed);
  // The release store pairs with the acquire load in CheckRange/PeekPage:
  // any reader whose bounds check admits these page ids also sees the extent
  // pointers (and zero-filled contents) published above.
  page_count_.store(new_count, std::memory_order_release);
  return first;
}

void ExtentVolume::AdoptExtent(char* extent) {
  std::lock_guard<std::mutex> lock(alloc_mu_);
  // Reopen-time only; indices continue from the current count.
  (void)PublishExtent(extent_count_.load(std::memory_order_relaxed), extent);
}

void ExtentVolume::RestoreAllocatorState(uint64_t page_count,
                                         std::vector<bool> freed) {
  std::lock_guard<std::mutex> lock(alloc_mu_);
  freed_ = std::move(freed);
  freed_.resize(page_count, false);
  uint64_t live = page_count;
  for (bool f : freed_) {
    if (f) --live;
  }
  live_pages_.store(live, std::memory_order_relaxed);
  page_count_.store(page_count, std::memory_order_release);
}

void ExtentVolume::SnapshotAllocator(uint64_t* page_count,
                                     std::vector<bool>* freed) const {
  std::lock_guard<std::mutex> lock(alloc_mu_);
  *page_count = page_count_.load(std::memory_order_relaxed);
  *freed = freed_;
  freed->resize(*page_count, false);
}

Status ExtentVolume::ReconcileLive(const std::vector<PageId>& live) {
  std::lock_guard<std::mutex> lock(alloc_mu_);
  const uint64_t count = page_count_.load(std::memory_order_relaxed);
  std::vector<bool> freed(count, true);
  uint64_t live_count = 0;
  for (PageId id : live) {
    if (id >= count) {
      return Status::InvalidArgument(
          "live page " + std::to_string(id) + " beyond volume of " +
          std::to_string(count) + " pages");
    }
    if (freed[id]) {
      freed[id] = false;
      ++live_count;
    }
  }
  freed_ = std::move(freed);
  live_pages_.store(live_count, std::memory_order_relaxed);
  return Status::OK();
}

Status ExtentVolume::Free(PageId id) {
  STARFISH_RETURN_NOT_OK(CheckRange(id, 1));
  std::lock_guard<std::mutex> lock(alloc_mu_);
  if (freed_[id]) {
    return Status::InvalidArgument("page " + std::to_string(id) +
                                   " already freed");
  }
  freed_[id] = true;
  live_pages_.fetch_sub(1, std::memory_order_relaxed);
  return Status::OK();
}

Status ExtentVolume::CheckRange(PageId first, uint32_t count) const {
  if (count == 0) return Status::InvalidArgument("empty page run");
  const uint64_t end = static_cast<uint64_t>(first) + count;
  // Acquire: admitting these ids must also make their extents visible.
  const uint64_t limit = page_count_.load(std::memory_order_acquire);
  if (first == kInvalidPageId || end > limit) {
    return Status::OutOfRange("page run [" + std::to_string(first) + ", " +
                              std::to_string(end) + ") outside volume of " +
                              std::to_string(limit) + " pages");
  }
  return Status::OK();
}

Status ExtentVolume::ReadRun(PageId first, uint32_t count, char* out) {
  STARFISH_RETURN_NOT_OK(CheckRange(first, count));
  const uint32_t page_size = options_.page_size;
  // One memcpy per extent touched; a run inside one extent is one memcpy.
  uint32_t done = 0;
  while (done < count) {
    const PageId id = first + done;
    const uint32_t left_in_extent = pages_per_extent_ - id % pages_per_extent_;
    const uint32_t n = std::min(count - done, left_in_extent);
    std::memcpy(out + static_cast<size_t>(done) * page_size, PagePtr(id),
                static_cast<size_t>(n) * page_size);
    done += n;
  }
  stats_.CountRead(count);
  return Status::OK();
}

Status ExtentVolume::WriteRun(PageId first, uint32_t count, const char* src) {
  STARFISH_RETURN_NOT_OK(CheckRange(first, count));
  const uint32_t page_size = options_.page_size;
  uint32_t done = 0;
  while (done < count) {
    const PageId id = first + done;
    const uint32_t left_in_extent = pages_per_extent_ - id % pages_per_extent_;
    const uint32_t n = std::min(count - done, left_in_extent);
    std::memcpy(PagePtr(id), src + static_cast<size_t>(done) * page_size,
                static_cast<size_t>(n) * page_size);
    done += n;
  }
  stats_.CountWrite(count);
  return Status::OK();
}

Status ExtentVolume::ReadRunZeroCopy(PageId first, uint32_t count,
                                     std::vector<const char*>* views) {
  STARFISH_RETURN_NOT_OK(CheckRange(first, count));
  views->clear();
  views->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    views->push_back(PagePtr(first + i));
  }
  stats_.CountRead(count);
  return Status::OK();
}

Status ExtentVolume::ReadChained(const std::vector<PageId>& ids,
                                 const std::vector<char*>& outs) {
  if (ids.empty()) return Status::InvalidArgument("empty chained read");
  if (ids.size() != outs.size()) {
    return Status::InvalidArgument("chained read: ids/outs size mismatch");
  }
  for (size_t i = 0; i < ids.size(); ++i) {
    STARFISH_RETURN_NOT_OK(CheckRange(ids[i], 1));
    std::memcpy(outs[i], PagePtr(ids[i]), options_.page_size);
  }
  stats_.CountRead(ids.size());
  return Status::OK();
}

Status ExtentVolume::ReadChainedZeroCopy(const std::vector<PageId>& ids,
                                         std::vector<const char*>* views) {
  if (ids.empty()) return Status::InvalidArgument("empty chained read");
  views->clear();
  views->reserve(ids.size());
  for (PageId id : ids) {
    STARFISH_RETURN_NOT_OK(CheckRange(id, 1));
    views->push_back(PagePtr(id));
  }
  stats_.CountRead(ids.size());
  return Status::OK();
}

Status ExtentVolume::WriteChained(const std::vector<PageId>& ids,
                                  const std::vector<const char*>& srcs) {
  if (ids.empty()) return Status::InvalidArgument("empty chained write");
  if (ids.size() != srcs.size()) {
    return Status::InvalidArgument("chained write: ids/srcs size mismatch");
  }
  for (size_t i = 0; i < ids.size(); ++i) {
    STARFISH_RETURN_NOT_OK(CheckRange(ids[i], 1));
    std::memcpy(PagePtr(ids[i]), srcs[i], options_.page_size);
  }
  stats_.CountWrite(ids.size());
  return Status::OK();
}

const char* ExtentVolume::PeekPage(PageId id) const {
  if (id == kInvalidPageId ||
      id >= page_count_.load(std::memory_order_acquire)) {
    return nullptr;
  }
  return PagePtr(id);
}

}  // namespace starfish
