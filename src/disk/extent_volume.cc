#include "disk/extent_volume.h"

#include <algorithm>
#include <cstring>
#include <string>

namespace starfish {

ExtentVolume::ExtentVolume(DiskOptions options) : options_(options) {
  if (options_.page_size == 0) options_.page_size = kDefaultPageSize;
  pages_per_extent_ = std::max(1u, options_.extent_bytes / options_.page_size);
}

Result<PageId> ExtentVolume::AllocateRun(uint32_t n) {
  if (n == 0) return Status::InvalidArgument("empty page run");
  const PageId first = static_cast<PageId>(page_count_);
  const uint64_t new_count = page_count_ + n;
  const uint64_t extents_needed =
      (new_count + pages_per_extent_ - 1) / pages_per_extent_;
  while (extents_.size() < extents_needed) {
    // Fresh extents (and thus fresh pages) are zero-filled by the backend.
    // Ids are never reused, so no page is handed out twice.
    STARFISH_ASSIGN_OR_RETURN(char* extent, NewExtent());
    extents_.push_back(extent);
  }
  page_count_ = new_count;
  freed_.resize(page_count_, false);
  live_pages_ += n;
  return first;
}

void ExtentVolume::RestoreAllocatorState(uint64_t page_count,
                                         std::vector<bool> freed) {
  page_count_ = page_count;
  freed_ = std::move(freed);
  freed_.resize(page_count_, false);
  live_pages_ = page_count_;
  for (bool f : freed_) {
    if (f) --live_pages_;
  }
}

Status ExtentVolume::Free(PageId id) {
  STARFISH_RETURN_NOT_OK(CheckRange(id, 1));
  if (freed_[id]) {
    return Status::InvalidArgument("page " + std::to_string(id) +
                                   " already freed");
  }
  freed_[id] = true;
  --live_pages_;
  return Status::OK();
}

Status ExtentVolume::CheckRange(PageId first, uint32_t count) const {
  if (count == 0) return Status::InvalidArgument("empty page run");
  const uint64_t end = static_cast<uint64_t>(first) + count;
  if (first == kInvalidPageId || end > page_count_) {
    return Status::OutOfRange("page run [" + std::to_string(first) + ", " +
                              std::to_string(end) + ") outside volume of " +
                              std::to_string(page_count_) + " pages");
  }
  return Status::OK();
}

Status ExtentVolume::ReadRun(PageId first, uint32_t count, char* out) {
  STARFISH_RETURN_NOT_OK(CheckRange(first, count));
  const uint32_t page_size = options_.page_size;
  // One memcpy per extent touched; a run inside one extent is one memcpy.
  uint32_t done = 0;
  while (done < count) {
    const PageId id = first + done;
    const uint32_t left_in_extent = pages_per_extent_ - id % pages_per_extent_;
    const uint32_t n = std::min(count - done, left_in_extent);
    std::memcpy(out + static_cast<size_t>(done) * page_size, PagePtr(id),
                static_cast<size_t>(n) * page_size);
    done += n;
  }
  stats_.read_calls += 1;
  stats_.pages_read += count;
  return Status::OK();
}

Status ExtentVolume::WriteRun(PageId first, uint32_t count, const char* src) {
  STARFISH_RETURN_NOT_OK(CheckRange(first, count));
  const uint32_t page_size = options_.page_size;
  uint32_t done = 0;
  while (done < count) {
    const PageId id = first + done;
    const uint32_t left_in_extent = pages_per_extent_ - id % pages_per_extent_;
    const uint32_t n = std::min(count - done, left_in_extent);
    std::memcpy(PagePtr(id), src + static_cast<size_t>(done) * page_size,
                static_cast<size_t>(n) * page_size);
    done += n;
  }
  stats_.write_calls += 1;
  stats_.pages_written += count;
  return Status::OK();
}

Status ExtentVolume::ReadRunZeroCopy(PageId first, uint32_t count,
                                     std::vector<const char*>* views) {
  STARFISH_RETURN_NOT_OK(CheckRange(first, count));
  views->clear();
  views->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    views->push_back(PagePtr(first + i));
  }
  stats_.read_calls += 1;
  stats_.pages_read += count;
  return Status::OK();
}

Status ExtentVolume::ReadChained(const std::vector<PageId>& ids,
                                 const std::vector<char*>& outs) {
  if (ids.empty()) return Status::InvalidArgument("empty chained read");
  if (ids.size() != outs.size()) {
    return Status::InvalidArgument("chained read: ids/outs size mismatch");
  }
  for (size_t i = 0; i < ids.size(); ++i) {
    STARFISH_RETURN_NOT_OK(CheckRange(ids[i], 1));
    std::memcpy(outs[i], PagePtr(ids[i]), options_.page_size);
  }
  stats_.read_calls += 1;
  stats_.pages_read += ids.size();
  return Status::OK();
}

Status ExtentVolume::ReadChainedZeroCopy(const std::vector<PageId>& ids,
                                         std::vector<const char*>* views) {
  if (ids.empty()) return Status::InvalidArgument("empty chained read");
  views->clear();
  views->reserve(ids.size());
  for (PageId id : ids) {
    STARFISH_RETURN_NOT_OK(CheckRange(id, 1));
    views->push_back(PagePtr(id));
  }
  stats_.read_calls += 1;
  stats_.pages_read += ids.size();
  return Status::OK();
}

Status ExtentVolume::WriteChained(const std::vector<PageId>& ids,
                                  const std::vector<const char*>& srcs) {
  if (ids.empty()) return Status::InvalidArgument("empty chained write");
  if (ids.size() != srcs.size()) {
    return Status::InvalidArgument("chained write: ids/srcs size mismatch");
  }
  for (size_t i = 0; i < ids.size(); ++i) {
    STARFISH_RETURN_NOT_OK(CheckRange(ids[i], 1));
    std::memcpy(PagePtr(ids[i]), srcs[i], options_.page_size);
  }
  stats_.write_calls += 1;
  stats_.pages_written += ids.size();
  return Status::OK();
}

const char* ExtentVolume::PeekPage(PageId id) const {
  if (id == kInvalidPageId || id >= page_count_) return nullptr;
  return PagePtr(id);
}

}  // namespace starfish
