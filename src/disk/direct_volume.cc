#include "disk/direct_volume.h"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <sys/uio.h>
#include <unistd.h>
#endif

#if defined(__linux__)
#include <sys/syscall.h>
#if __has_include(<linux/io_uring.h>)
#include <linux/io_uring.h>
#define STARFISH_HAVE_IO_URING 1
#endif
#endif

#if defined(O_DIRECT)
#define STARFISH_HAVE_ODIRECT 1
#endif

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <mutex>
#include <string>
#include <unordered_map>

#include "util/aligned_buffer.h"
#include "util/file_io.h"

namespace starfish {

namespace {

/// Bounce buffers are allocated at this alignment — enough for any device
/// DMA requirement in practice (the probe relaxes the *eligibility* check
/// to 512 where the device allows it, but over-aligning an allocation
/// costs nothing).
constexpr size_t kBounceAlign = 4096;

/// Journals longer than this are compacted at reopen (same policy as the
/// mmap backend).
constexpr uint32_t kCompactRecordThreshold = 64;

/// Each DirectVolume gets a process-unique serial so a thread-local ring
/// slot left over from a destroyed volume can never match a live one.
std::atomic<uint64_t> g_volume_serial{1};

#if STARFISH_HAVE_ODIRECT

/// Trial-writes a scratch file to answer: can this filesystem do O_DIRECT
/// transfers of `page_size` bytes at page-size offsets, and does it accept
/// 512-byte buffer alignment or insist on 4096? Returns the buffer
/// alignment to use, or NotSupported.
Result<uint32_t> ProbeDioAlignment(const std::string& dir,
                                   uint32_t page_size) {
  const std::string path = dir + "/.dio_probe";
  const int fd =
      ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC | O_DIRECT, 0644);
  if (fd < 0) {
    return Status::NotSupported("filesystem at " + dir +
                                " rejects O_DIRECT: " + std::strerror(errno));
  }
  AlignedBuffer buf;
  Status failed;
  uint32_t align = 0;
  if (!buf.Reserve(static_cast<size_t>(page_size) + 512, kBounceAlign)) {
    failed = Status::ResourceExhausted("cannot allocate O_DIRECT probe");
  } else {
    std::memset(buf.data(), 0, static_cast<size_t>(page_size) + 512);
    // One page at offset 0 and one at offset page_size: covers the length,
    // offset and (4096-aligned) buffer requirements in one go.
    if (::pwrite(fd, buf.data(), page_size, 0) ==
            static_cast<ssize_t>(page_size) &&
        ::pwrite(fd, buf.data(), page_size,
                 static_cast<off_t>(page_size)) ==
            static_cast<ssize_t>(page_size)) {
      align = kBounceAlign;
      // Relax to sector alignment where the device accepts it — fewer
      // caller buffers have to bounce.
      if (::pwrite(fd, buf.data() + 512, page_size, 0) ==
          static_cast<ssize_t>(page_size)) {
        align = 512;
      }
    } else {
      failed = Status::NotSupported(
          "O_DIRECT at " + dir + " cannot transfer page_size=" +
          std::to_string(page_size) + ": " + std::strerror(errno));
    }
  }
  ::close(fd);
  ::unlink(path.c_str());
  if (align == 0) return failed;
  return align;
}

#endif  // STARFISH_HAVE_ODIRECT

#if STARFISH_HAVE_IO_URING

int SysIoUringSetup(unsigned entries, struct io_uring_params* params) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, params));
}

int SysIoUringEnter(int fd, unsigned to_submit, unsigned min_complete,
                    unsigned flags) {
  return static_cast<int>(::syscall(__NR_io_uring_enter, fd, to_submit,
                                    min_complete, flags, nullptr, 0));
}

int SysIoUringRegister(int fd, unsigned opcode, const void* arg,
                       unsigned nr_args) {
  return static_cast<int>(
      ::syscall(__NR_io_uring_register, fd, opcode, arg, nr_args));
}

/// True when the kernel supports the (non-vectored) IORING_OP_READ/WRITE
/// this wrapper submits. Ring *creation* succeeds from 5.1, but these
/// opcodes only exist since 5.6 — the probe (itself 5.6+) distinguishes
/// "ring works" from "our opcodes work", so a 5.1-5.5 kernel falls back to
/// pread/pwrite instead of completing every I/O with EINVAL. (The _FIXED
/// variants predate the plain ones — 5.1 — so no separate probe is needed
/// for the registered-buffer path.)
bool RingSupportsReadWrite(int ring_fd) {
  constexpr unsigned kProbeOps = 64;  // covers IORING_OP_WRITE everywhere
  std::vector<char> buf(
      sizeof(struct io_uring_probe) +
          kProbeOps * sizeof(struct io_uring_probe_op),
      0);
  auto* probe = reinterpret_cast<struct io_uring_probe*>(buf.data());
  if (SysIoUringRegister(ring_fd, IORING_REGISTER_PROBE, probe,
                         kProbeOps) != 0) {
    return false;
  }
  return probe->ops_len > IORING_OP_WRITE &&
         (probe->ops[IORING_OP_READ].flags & IO_URING_OP_SUPPORTED) != 0 &&
         (probe->ops[IORING_OP_WRITE].flags & IO_URING_OP_SUPPORTED) != 0;
}

#endif  // STARFISH_HAVE_IO_URING

}  // namespace

/// All rings this volume ever handed out, plus the registered-I/O-memory
/// regions they snapshot. Teardown is centralized here: DirectVolume's
/// destructor calls Close(), which shuts every ring down (closing its fd
/// and unmapping its queues) regardless of whether the owning threads are
/// still alive — a surviving thread's thread-local slot keeps the IoRing
/// *object* alive via shared_ptr, sees `down`, and falls back, so nothing
/// ever touches freed ring memory. Conversely, when a thread exits while
/// the volume lives, its slot releases the last outside reference and the
/// registry reaps the ring (use_count()==1 under mu) on the next ring
/// creation, so per-thread ring fds never accumulate past the number of
/// live submitting threads.
struct DirectVolume::RingRegistry {
  struct Region {
    uintptr_t base;
    size_t len;
  };

  std::mutex mu;
  bool closed = false;                          ///< guarded by mu
  std::vector<std::shared_ptr<IoRing>> rings;   ///< guarded by mu
  std::vector<Region> regions;                  ///< guarded by mu
  /// Bumped on every regions change; rings compare their snapshot version
  /// against it without taking mu (monotonic, release/acquire).
  std::atomic<uint64_t> regions_version{1};

  void Close();
};

/// Minimal raw-syscall io_uring wrapper (no liburing dependency): one
/// submission/completion ring pair with ticketed completions. A ring is
/// owned by exactly one submitting thread (RingMode::kPerThread — no lock
/// anywhere) or shared behind `mu` (kShared/kSqpoll). SubmitTicket pushes
/// a batch of read or write SQEs and returns a ticket; WaitTicket blocks
/// until that ticket's completions have all landed, finishing any short
/// transfer synchronously — the synchronous Execute path is simply
/// submit-then-wait, and the async prefetch path holds several tickets in
/// flight. Null from Create means the kernel refused (ENOSYS, seccomp
/// EPERM, sysctl-disabled) and the volume runs on pread/pwrite instead.
struct DirectVolume::IoRing {
#if STARFISH_HAVE_IO_URING
  int ring_fd = -1;
  unsigned sq_entries = 0;
  unsigned cq_entries = 0;
  void* sq_map = nullptr;
  size_t sq_map_len = 0;
  void* cq_map = nullptr;   ///< null when IORING_FEAT_SINGLE_MMAP
  size_t cq_map_len = 0;
  void* sqe_map = nullptr;
  size_t sqe_map_len = 0;
  struct io_uring_sqe* sqes = nullptr;
  unsigned* sq_head = nullptr;
  unsigned* sq_tail = nullptr;
  unsigned* sq_mask = nullptr;
  unsigned* sq_array = nullptr;
  unsigned* sq_flags = nullptr;
  unsigned* cq_head = nullptr;
  unsigned* cq_tail = nullptr;
  unsigned* cq_mask = nullptr;
  struct io_uring_cqe* cqes = nullptr;
  bool sqpoll = false;

  /// True after an error left submissions in an indeterminate state (SQEs
  /// queued but never handed to the kernel, or completions that could not
  /// be drained). A broken ring is never touched again — callers fall back
  /// to the pread/pwrite path. Atomic so AcquireRing can check it cheaply
  /// without any lock.
  std::atomic<bool> broken{false};

  /// Set by Shutdown(): the fd is closed and the queue mappings are gone.
  /// Stale thread-local slots check this and fall back (the IoRing object
  /// itself stays alive through their shared_ptr).
  std::atomic<bool> down{false};

  /// Release-published by the owning thread's Slot destructor at thread
  /// exit. The reaper's acquire load of it is the happens-before edge that
  /// orders every plain-field use the owner made (SubmitTicket reads
  /// ring_fd etc. without locks) before the registry's Shutdown() — a bare
  /// use_count()==1 observation carries no such edge.
  std::atomic<bool> owner_detached{false};

  /// Shared modes only; per-thread rings are single-owner and lock-free.
  std::mutex mu;

  // Registration state. Owner-thread-only (or under mu in shared modes).
  bool want_buffers = false;
  bool want_files = false;
  bool bufs_registered = false;
  uint64_t bufs_version = 0;  ///< registry regions_version last synced
  std::vector<RingRegistry::Region> buf_regions;  ///< index == buf_index
  bool files_registered = false;
  uint32_t files_count = 0;  ///< registered fd table size (== extent count)

  /// One submitted batch awaiting completion.
  struct Pending {
    std::vector<IoOp> owned;    ///< async tickets own their ops
    const IoOp* ops = nullptr;  ///< sync tickets alias the caller's vector
    size_t count = 0;
    unsigned remaining = 0;
    bool write = false;
    Status error;
  };
  std::unordered_map<uint32_t, Pending> pending;
  uint32_t next_ticket = 1;  ///< 0 is the "already completed" sentinel
  unsigned in_flight = 0;    ///< SQEs accepted by the kernel, CQE unreaped

  ~IoRing() { Shutdown(); }

  /// Closes the ring fd and unmaps the queues. Idempotent. Only called
  /// with no in-flight I/O and no concurrent submitter (registry Close
  /// under its mu, or the destructor).
  void Shutdown() {
    if (down.exchange(true)) return;
    if (sqe_map != nullptr) {
      ::munmap(sqe_map, sqe_map_len);
      sqe_map = nullptr;
    }
    if (cq_map != nullptr) {
      ::munmap(cq_map, cq_map_len);
      cq_map = nullptr;
    }
    if (sq_map != nullptr) {
      ::munmap(sq_map, sq_map_len);
      sq_map = nullptr;
    }
    if (ring_fd >= 0) {
      ::close(ring_fd);
      ring_fd = -1;
    }
  }

  static std::shared_ptr<IoRing> Create(uint32_t depth, bool want_sqpoll,
                                        uint32_t sqpoll_idle_ms) {
    struct io_uring_params params;
    std::memset(&params, 0, sizeof(params));
    if (want_sqpoll) {
      params.flags |= IORING_SETUP_SQPOLL;
      params.sq_thread_idle = sqpoll_idle_ms;
    }
    const int fd = SysIoUringSetup(depth, &params);
    if (fd < 0) return nullptr;
    auto ring = std::make_shared<IoRing>();
    ring->ring_fd = fd;
    ring->sq_entries = params.sq_entries;
    ring->cq_entries = params.cq_entries;
    ring->sqpoll = want_sqpoll;
    size_t sq_len = params.sq_off.array + params.sq_entries * sizeof(unsigned);
    size_t cq_len = params.cq_off.cqes +
                    params.cq_entries * sizeof(struct io_uring_cqe);
    const bool single = (params.features & IORING_FEAT_SINGLE_MMAP) != 0;
    if (single) sq_len = cq_len = std::max(sq_len, cq_len);
    ring->sq_map = ::mmap(nullptr, sq_len, PROT_READ | PROT_WRITE,
                          MAP_SHARED | MAP_POPULATE, fd, IORING_OFF_SQ_RING);
    if (ring->sq_map == MAP_FAILED) {
      ring->sq_map = nullptr;
      return nullptr;
    }
    ring->sq_map_len = sq_len;
    char* cq_base = static_cast<char*>(ring->sq_map);
    if (!single) {
      ring->cq_map = ::mmap(nullptr, cq_len, PROT_READ | PROT_WRITE,
                            MAP_SHARED | MAP_POPULATE, fd, IORING_OFF_CQ_RING);
      if (ring->cq_map == MAP_FAILED) {
        ring->cq_map = nullptr;
        return nullptr;
      }
      ring->cq_map_len = cq_len;
      cq_base = static_cast<char*>(ring->cq_map);
    }
    ring->sqe_map_len = params.sq_entries * sizeof(struct io_uring_sqe);
    ring->sqe_map = ::mmap(nullptr, ring->sqe_map_len, PROT_READ | PROT_WRITE,
                           MAP_SHARED | MAP_POPULATE, fd, IORING_OFF_SQES);
    if (ring->sqe_map == MAP_FAILED) {
      ring->sqe_map = nullptr;
      return nullptr;
    }
    char* sq_base = static_cast<char*>(ring->sq_map);
    ring->sqes = reinterpret_cast<struct io_uring_sqe*>(ring->sqe_map);
    ring->sq_head = reinterpret_cast<unsigned*>(sq_base + params.sq_off.head);
    ring->sq_tail = reinterpret_cast<unsigned*>(sq_base + params.sq_off.tail);
    ring->sq_mask =
        reinterpret_cast<unsigned*>(sq_base + params.sq_off.ring_mask);
    ring->sq_array = reinterpret_cast<unsigned*>(sq_base + params.sq_off.array);
    ring->sq_flags =
        reinterpret_cast<unsigned*>(sq_base + params.sq_off.flags);
    ring->cq_head = reinterpret_cast<unsigned*>(cq_base + params.cq_off.head);
    ring->cq_tail = reinterpret_cast<unsigned*>(cq_base + params.cq_off.tail);
    ring->cq_mask =
        reinterpret_cast<unsigned*>(cq_base + params.cq_off.ring_mask);
    ring->cqes = reinterpret_cast<struct io_uring_cqe*>(cq_base +
                                                        params.cq_off.cqes);
    if (!RingSupportsReadWrite(fd)) return nullptr;
    return ring;
  }

  /// Re-syncs fixed-buffer / registered-file state with the volume when it
  /// drifted (extents grew, RegisterIoMemory was called). Only safe — and
  /// only attempted — while nothing is in flight on this ring; a kernel
  /// refusal permanently downgrades that feature on this ring (plain SQEs
  /// keep working).
  void MaybeSyncRegistrations(DirectVolume* vol) {
    if (!pending.empty() || in_flight != 0) return;
    if (want_files) {
      const uint32_t ext =
          vol->published_extents_.load(std::memory_order_acquire);
      if (ext != files_count) {
        if (files_registered) {
          (void)SysIoUringRegister(ring_fd, IORING_UNREGISTER_FILES, nullptr,
                                   0);
          files_registered = false;
          files_count = 0;
        }
        if (ext > 0) {
          std::vector<int> fds(ext);
          for (uint32_t i = 0; i < ext; ++i) {
            fds[i] = vol->fds_[i].load(std::memory_order_relaxed);
          }
          if (SysIoUringRegister(ring_fd, IORING_REGISTER_FILES, fds.data(),
                                 ext) == 0) {
            files_registered = true;
            files_count = ext;
          } else {
            want_files = false;
          }
        }
      }
    }
    if (want_buffers) {
      RingRegistry* reg = vol->registry_.get();
      if (reg->regions_version.load(std::memory_order_acquire) !=
          bufs_version) {
        if (bufs_registered) {
          (void)SysIoUringRegister(ring_fd, IORING_UNREGISTER_BUFFERS, nullptr,
                                   0);
          bufs_registered = false;
        }
        buf_regions.clear();
        {
          std::lock_guard<std::mutex> lock(reg->mu);
          buf_regions = reg->regions;
          bufs_version = reg->regions_version.load(std::memory_order_relaxed);
        }
        if (!buf_regions.empty()) {
          std::vector<struct iovec> iov(buf_regions.size());
          for (size_t i = 0; i < buf_regions.size(); ++i) {
            iov[i].iov_base = reinterpret_cast<void*>(buf_regions[i].base);
            iov[i].iov_len = buf_regions[i].len;
          }
          if (SysIoUringRegister(ring_fd, IORING_REGISTER_BUFFERS, iov.data(),
                                 static_cast<unsigned>(iov.size())) == 0) {
            bufs_registered = true;
          } else {
            // Typical cause: RLIMIT_MEMLOCK too small to pin the arena.
            // This ring keeps using plain (unpinned) SQEs.
            want_buffers = false;
            buf_regions.clear();
          }
        }
      }
    }
  }

  void FillSqe(struct io_uring_sqe* sqe, const IoOp& op, bool write,
               uint64_t user_data) const {
    std::memset(sqe, 0, sizeof(*sqe));
    int buf_index = -1;
    if (bufs_registered) {
      const uintptr_t addr = reinterpret_cast<uintptr_t>(op.buf);
      for (size_t r = 0; r < buf_regions.size(); ++r) {
        if (addr >= buf_regions[r].base &&
            addr + op.len <= buf_regions[r].base + buf_regions[r].len) {
          buf_index = static_cast<int>(r);
          break;
        }
      }
    }
    if (buf_index >= 0) {
      sqe->opcode = write ? IORING_OP_WRITE_FIXED : IORING_OP_READ_FIXED;
      sqe->buf_index = static_cast<uint16_t>(buf_index);
    } else {
      sqe->opcode = write ? IORING_OP_WRITE : IORING_OP_READ;
    }
    if (files_registered && op.extent < files_count) {
      sqe->fd = static_cast<int>(op.extent);
      sqe->flags |= IOSQE_FIXED_FILE;
    } else {
      sqe->fd = op.fd;
    }
    sqe->addr = reinterpret_cast<uint64_t>(op.buf);
    sqe->len = op.len;
    sqe->off = op.off;
    sqe->user_data = user_data;
  }

  /// SQ slots a SQPOLL kernel thread has not consumed yet.
  unsigned SqRoom() const {
    const unsigned head = __atomic_load_n(sq_head, __ATOMIC_ACQUIRE);
    return sq_entries - (*sq_tail - head);
  }

  /// Attributes one CQE back to its pending ticket, finishing short
  /// transfers synchronously.
  void HandleCqe(const struct io_uring_cqe& cqe) {
    if (in_flight > 0) --in_flight;
    const uint32_t ticket = static_cast<uint32_t>(cqe.user_data >> 32);
    const size_t idx = static_cast<uint32_t>(cqe.user_data);
    auto it = pending.find(ticket);
    if (it == pending.end() || idx >= it->second.count) return;
    Pending& p = it->second;
    const IoOp& op = p.ops[idx];
    if (cqe.res < 0) {
      if (p.error.ok()) {
        p.error = Status::IOError(
            std::string(p.write ? "io_uring write: " : "io_uring read: ") +
            std::strerror(-cqe.res));
      }
    } else if (static_cast<uint32_t>(cqe.res) < op.len) {
      const Status st = ExecuteSync(op, p.write, static_cast<uint32_t>(cqe.res));
      if (p.error.ok() && !st.ok()) p.error = st;
    }
    if (p.remaining > 0) --p.remaining;
  }

  /// Consumes available CQEs; with `blocking` set and nothing available,
  /// waits for at least one (in_flight permitting). Marks the ring broken
  /// when the kernel will not hand completions back.
  Status Reap(bool blocking) {
    int wait_failures = 0;
    for (;;) {
      unsigned head = *cq_head;
      const unsigned ctail = __atomic_load_n(cq_tail, __ATOMIC_ACQUIRE);
      if (head == ctail) {
        if (!blocking || in_flight == 0) return Status::OK();
        const int ret = SysIoUringEnter(ring_fd, 0, 1, IORING_ENTER_GETEVENTS);
        if (ret < 0 && errno != EINTR && ++wait_failures > 64) {
          // The kernel will not complete what it accepted; the ring (and
          // the in-flight buffers) are lost to us.
          broken.store(true, std::memory_order_relaxed);
          return Status::IOError(
              std::string("io_uring completion drain failed: ") +
              std::strerror(errno));
        }
        continue;
      }
      while (head != ctail) {
        HandleCqe(cqes[head & *cq_mask]);
        ++head;
      }
      __atomic_store_n(cq_head, head, __ATOMIC_RELEASE);
      return Status::OK();
    }
  }

  /// Blocks until everything in flight completed (best effort; gives up on
  /// a broken ring). Used before failing a ticket so the kernel cannot
  /// keep scribbling into buffers the caller is about to reuse.
  void DrainAllBestEffort() {
    while (in_flight > 0) {
      const unsigned before = in_flight;
      if (!Reap(/*blocking=*/true).ok()) return;
      if (in_flight == before) return;
    }
  }

  /// Pushes `count` ops as SQEs (in SQ-sized chunks, with CQ headroom
  /// respected) and returns a ticket for WaitTicket. Async callers move
  /// their ops in via `owned`; the synchronous path passes an alias
  /// pointer and waits before touching its vector again.
  Result<uint64_t> SubmitTicket(const IoOp* ops, size_t count, bool write,
                                std::vector<IoOp> owned) {
    if (down.load(std::memory_order_relaxed) ||
        broken.load(std::memory_order_relaxed)) {
      return Status::Internal("io_uring in indeterminate state");
    }
    while (pending.count(next_ticket) != 0 || next_ticket == 0) ++next_ticket;
    const uint32_t ticket = next_ticket++;
    Pending& p = pending[ticket];
    p.owned = std::move(owned);
    p.ops = p.owned.empty() ? ops : p.owned.data();
    p.count = count;
    p.remaining = static_cast<unsigned>(count);
    p.write = write;

    size_t done = 0;
    while (done < count) {
      // Never let accepted-but-unreaped ops exceed the CQ: an overflowed
      // CQ drops completions on old kernels.
      const unsigned cq_room = cq_entries > in_flight
                                   ? cq_entries - in_flight
                                   : 0;
      unsigned batch = static_cast<unsigned>(
          std::min<size_t>({count - done, sq_entries, cq_room}));
      if (sqpoll && batch > 0) batch = std::min(batch, SqRoom());
      if (batch == 0) {
        const Status st = Reap(/*blocking=*/true);
        if (!st.ok()) {
          DrainAllBestEffort();
          pending.erase(ticket);
          return st;
        }
        continue;
      }
      const unsigned tail = *sq_tail;
      for (unsigned i = 0; i < batch; ++i) {
        const unsigned idx = (tail + i) & *sq_mask;
        FillSqe(&sqes[idx], p.ops[done + i], write,
                (static_cast<uint64_t>(ticket) << 32) |
                    static_cast<uint32_t>(done + i));
        sq_array[idx] = idx;
      }
      __atomic_store_n(sq_tail, tail + batch, __ATOMIC_RELEASE);
      if (sqpoll) {
        // The kernel thread consumes the SQ on its own; we only need a
        // wakeup syscall when it went to sleep.
        in_flight += batch;
        if ((__atomic_load_n(sq_flags, __ATOMIC_ACQUIRE) &
             IORING_SQ_NEED_WAKEUP) != 0) {
          (void)SysIoUringEnter(ring_fd, 0, 0, IORING_ENTER_SQ_WAKEUP);
        }
        done += batch;
        continue;
      }
      unsigned submitted = 0;
      Status submit_error;
      while (submitted < batch) {
        const int ret = SysIoUringEnter(ring_fd, batch - submitted, 0, 0);
        if (ret < 0) {
          if (errno == EINTR) continue;
          if (errno == EBUSY || errno == EAGAIN) {
            // Completion-queue back-pressure: reap, then retry.
            const Status st = Reap(/*blocking=*/true);
            if (!st.ok()) {
              submit_error = st;
              break;
            }
            continue;
          }
          submit_error = Status::IOError(std::string("io_uring_enter: ") +
                                         std::strerror(errno));
          break;
        }
        submitted += static_cast<unsigned>(ret);
        in_flight += static_cast<unsigned>(ret);
      }
      if (!submit_error.ok()) {
        // SQEs past `submitted` are still queued in the SQ ring and would
        // be handed to the kernel (with dangling buffers) by the next
        // enter — the ring cannot be safely reused. Drain what the kernel
        // accepted BEFORE returning: in-flight ops write into caller
        // buffers that would otherwise be reused while the kernel still
        // scribbles on them.
        broken.store(true, std::memory_order_relaxed);
        DrainAllBestEffort();
        pending.erase(ticket);
        return submit_error;
      }
      done += batch;
    }
    return static_cast<uint64_t>(ticket);
  }

  /// Blocks until `ticket`'s completions all landed; returns its first
  /// per-op error. Reaps (and credits) other tickets' completions along
  /// the way.
  Status WaitTicket(uint64_t ticket64) {
    const uint32_t ticket = static_cast<uint32_t>(ticket64);
    auto it = pending.find(ticket);
    if (it == pending.end()) return Status::OK();
    while (it->second.remaining > 0) {
      if (broken.load(std::memory_order_relaxed) ||
          down.load(std::memory_order_relaxed)) {
        pending.erase(it);
        return Status::IOError("io_uring broke with I/O in flight");
      }
      const Status st = Reap(/*blocking=*/true);
      if (!st.ok()) {
        pending.erase(it);
        return st;
      }
    }
    Status result = std::move(it->second.error);
    pending.erase(it);
    return result;
  }
#else   // !STARFISH_HAVE_IO_URING
  bool sqpoll = false;
  std::atomic<bool> broken{false};
  std::atomic<bool> down{false};
  std::atomic<bool> owner_detached{false};
  std::mutex mu;
  bool want_buffers = false, want_files = false;
  bool bufs_registered = false, files_registered = false;
  static std::shared_ptr<IoRing> Create(uint32_t, bool, uint32_t) {
    return nullptr;
  }
  void Shutdown() {}
  void MaybeSyncRegistrations(DirectVolume*) {}
  Result<uint64_t> SubmitTicket(const IoOp*, size_t, bool,
                                std::vector<IoOp>) {
    return Status::Internal("io_uring support not compiled in");
  }
  Status WaitTicket(uint64_t) {
    return Status::Internal("io_uring support not compiled in");
  }
#endif  // STARFISH_HAVE_IO_URING
};

void DirectVolume::RingRegistry::Close() {
  std::lock_guard<std::mutex> lock(mu);
  closed = true;
  for (auto& ring : rings) {
    // Order an exited owner's lock-free ring uses before Shutdown. Live
    // owners must already be quiesced by the caller (closing a volume
    // while threads submit to it is outside the contract).
    (void)ring->owner_detached.load(std::memory_order_acquire);
    ring->Shutdown();
  }
  rings.clear();
}

DirectVolume::DirectVolume(std::string dir, DiskOptions options,
                           DirectVolumeOptions direct_options,
                           uint32_t dio_mem_align)
    : PagedVolume(options),
      dir_(std::move(dir)),
      dio_mem_align_(std::max<uint32_t>(dio_mem_align, 512)),
      direct_options_(direct_options),
      serial_(g_volume_serial.fetch_add(1, std::memory_order_relaxed)),
      registry_(std::make_shared<RingRegistry>()) {
  journal_.Attach(dir_ + "/volume.meta");
  fds_ = std::make_unique<std::atomic<int>[]>(kMaxExtents);
  for (size_t i = 0; i < kMaxExtents; ++i) {
    fds_[i].store(-1, std::memory_order_relaxed);
  }
}

DirectVolume::~DirectVolume() {
  // Centralized ring teardown FIRST (no I/O may be in flight at
  // destruction per the Volume contract): every ring the registry handed
  // out — per-thread or shared — gets its fd closed and queues unmapped,
  // even when the threads that own the thread-local slots are still
  // alive. Their slots hold the IoRing objects (shared_ptr) but observe
  // `down` and never touch the freed mappings.
  if (registry_ != nullptr) registry_->Close();
  shared_ring_.reset();
#if STARFISH_HAVE_ODIRECT
  // Best-effort close-time checkpoint, mirroring the mmap backend: page
  // bytes already sit on the device (O_DIRECT), but block allocations and
  // the allocator journal still need their durable record — in the same
  // order Sync() enforces: extent data, then the directory entries of any
  // extent files created since the last sync, then the journal (which may
  // reference their pages only once they durably exist).
  for (size_t i = 0; i < open_extents_; ++i) {
    const int fd = fds_[i].load(std::memory_order_relaxed);
    if (fd >= 0) {
      (void)::fdatasync(fd);
    }
  }
  if (dir_dirty_.load(std::memory_order_relaxed)) {
    if (SyncDir(dir_).ok()) {
      dir_dirty_.store(false, std::memory_order_relaxed);
      (void)journal_.Checkpoint(CurrentMetaState());
    }
    // Dir fsync failed: skip the journal append rather than record pages
    // whose extent files may not survive a power loss.
  } else {
    (void)journal_.Checkpoint(CurrentMetaState());
  }
  for (size_t i = 0; i < open_extents_; ++i) {
    const int fd = fds_[i].load(std::memory_order_relaxed);
    if (fd >= 0) ::close(fd);
  }
#endif
}

bool DirectVolume::SupportedAt(const std::string& dir, uint32_t page_size) {
#if !STARFISH_HAVE_ODIRECT
  (void)dir;
  (void)page_size;
  return false;
#else
  if (dir.empty() || page_size == 0 || page_size % 512 != 0) return false;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return false;
  return ProbeDioAlignment(dir, page_size).ok();
#endif
}

Result<std::unique_ptr<DirectVolume>> DirectVolume::Open(
    const std::string& dir, DiskOptions options,
    DirectVolumeOptions direct_options) {
#if !STARFISH_HAVE_ODIRECT
  (void)dir;
  (void)options;
  (void)direct_options;
  return Status::NotSupported("DirectVolume requires a platform with O_DIRECT");
#else
  if (dir.empty()) {
    return Status::InvalidArgument("DirectVolume requires a backing directory");
  }
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("cannot create volume directory " + dir + ": " +
                           ec.message());
  }

  VolumeMetaReplay replay;
  STARFISH_RETURN_NOT_OK(ReplayVolumeMeta(dir + "/volume.meta", &replay));
  // The recorded geometry wins (a volume written by EITHER persistent
  // backend — the on-disk format is shared — keeps its page size).
  if (replay.found) options = replay.state.options;
  if (options.page_size == 0) options.page_size = kDefaultPageSize;
  if (options.page_size % 512 != 0) {
    return Status::InvalidArgument(
        "DirectVolume page size must be a multiple of the 512-byte device "
        "sector, got " +
        std::to_string(options.page_size));
  }
  STARFISH_ASSIGN_OR_RETURN(const uint32_t mem_align,
                            ProbeDioAlignment(dir, options.page_size));

  auto volume = std::unique_ptr<DirectVolume>(
      new DirectVolume(dir, options, direct_options, mem_align));
  if (direct_options.use_io_uring) {
    using RingMode = DirectVolumeOptions::RingMode;
    const uint32_t depth = std::max(1u, direct_options.ring_depth);
    if (direct_options.ring_mode == RingMode::kSqpoll) {
      // SQPOLL needs privileges on older kernels; refusal downgrades to
      // the default per-thread mode rather than to pread/pwrite.
      volume->shared_ring_ =
          IoRing::Create(depth, /*want_sqpoll=*/true,
                         direct_options.sqpoll_idle_ms);
      if (volume->shared_ring_ != nullptr) {
        volume->effective_mode_ = RingMode::kSqpoll;
      }
    } else if (direct_options.ring_mode == RingMode::kShared) {
      volume->shared_ring_ = IoRing::Create(depth, false, 0);
      if (volume->shared_ring_ != nullptr) {
        volume->effective_mode_ = RingMode::kShared;
      }
    }
    if (volume->shared_ring_ != nullptr) {
      volume->shared_ring_->want_buffers = direct_options.register_buffers;
      volume->shared_ring_->want_files = direct_options.register_files;
      std::lock_guard<std::mutex> lock(volume->registry_->mu);
      volume->registry_->rings.push_back(volume->shared_ring_);
      volume->ring_available_.store(true, std::memory_order_relaxed);
    } else {
      // Per-thread mode (requested, or the shared-ring setup refused):
      // rings are created lazily per submitting thread; probe once here so
      // io_uring_active() reflects reality from the start.
      volume->effective_mode_ = RingMode::kPerThread;
      auto probe = IoRing::Create(depth, false, 0);
      volume->ring_available_.store(probe != nullptr,
                                    std::memory_order_relaxed);
    }
  }

  if (!replay.found) {
    // No durable allocator state: stray extent files are the leavings of a
    // run that crashed before its first checkpoint — their stale bytes must
    // not masquerade as zero-filled fresh pages.
    STARFISH_RETURN_NOT_OK(RemoveOrphanExtentFiles(dir, 0));
    return volume;
  }

  const uint64_t ppe = volume->pages_per_extent();
  const uint64_t pages = replay.state.page_count;
  const size_t extent_count = static_cast<size_t>((pages + ppe - 1) / ppe);
  STARFISH_RETURN_NOT_OK(RemoveOrphanExtentFiles(dir, extent_count));
  {
    std::lock_guard<std::mutex> lock(volume->alloc_mu_);
    for (size_t i = 0; i < extent_count; ++i) {
      STARFISH_RETURN_NOT_OK(volume->OpenExtentFd(i, /*create=*/false));
    }
  }
  if (extent_count > 0 && pages % ppe != 0) {
    // Pages past the durable count may hold bytes of a crashed run; fresh
    // pages must read zero. Truncate down to the used prefix and back up:
    // the reinstated tail is a hole, and holes read as zeros.
    const int fd = volume->fds_[extent_count - 1].load(
        std::memory_order_relaxed);
    const off_t used = static_cast<off_t>(
        static_cast<uint64_t>(pages % ppe) * volume->page_size());
    if (::ftruncate(fd, used) != 0 ||
        ::ftruncate(fd, static_cast<off_t>(volume->extent_size_bytes())) !=
            0) {
      return Status::IOError("zero tail of extent " +
                             std::to_string(extent_count - 1) + ": " +
                             std::strerror(errno));
    }
  }
  volume->RestoreAllocatorState(pages, replay.state.freed);
  volume->journal_.MarkReplayed(replay.state);
  if (replay.legacy || replay.torn_tail ||
      replay.records > kCompactRecordThreshold) {
    STARFISH_RETURN_NOT_OK(
        volume->journal_.RewriteCompacted(volume->CurrentMetaState()));
  }
  return volume;
#endif
}

std::string DirectVolume::ExtentPath(size_t index) const {
  return dir_ + "/" + ExtentFileName(index);
}

Status DirectVolume::OpenExtentFd(size_t index, bool create) {
#if !STARFISH_HAVE_ODIRECT
  (void)index;
  (void)create;
  return Status::NotSupported("DirectVolume requires a platform with O_DIRECT");
#else
  if (index >= kMaxExtents) {
    return Status::ResourceExhausted("volume extent directory full (" +
                                     std::to_string(index) + " extents)");
  }
  const std::string path = ExtentPath(index);
  const int flags = O_RDWR | O_CLOEXEC | O_DIRECT | (create ? O_CREAT : 0);
  const int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) {
    return Status::IOError("open " + path + ": " + std::strerror(errno));
  }
  // ftruncate creates the zero-filled image of a fresh extent and repairs a
  // short file (holes read as zeros, same as fresh pages).
  struct stat st;
  if (::fstat(fd, &st) != 0 ||
      (static_cast<size_t>(st.st_size) < extent_size_bytes() &&
       ::ftruncate(fd, static_cast<off_t>(extent_size_bytes())) != 0)) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IOError("size " + path + ": " + err);
  }
  // Release pairs with the acquire bounds check readers do before FdOf,
  // and with the acquire in ring file-table registration.
  fds_[index].store(fd, std::memory_order_release);
  open_extents_ = index + 1;
  published_extents_.store(static_cast<uint32_t>(index + 1),
                           std::memory_order_release);
  if (create) dir_dirty_.store(true, std::memory_order_relaxed);
  return Status::OK();
#endif
}

Status DirectVolume::EnsureExtentsLocked(size_t extent_count) {
  for (size_t i = open_extents_; i < extent_count; ++i) {
    STARFISH_RETURN_NOT_OK(OpenExtentFd(i, /*create=*/true));
  }
  return Status::OK();
}

int DirectVolume::FdOf(PageId id, uint64_t* off) const {
  const size_t extent = id / pages_per_extent_;
  *off = static_cast<uint64_t>(id % pages_per_extent_) * options_.page_size;
  // Relaxed is enough: the caller ordered itself after publication via the
  // acquire load in CheckRange.
  return fds_[extent].load(std::memory_order_relaxed);
}

void DirectVolume::BuildRunOps(PageId first, uint32_t count, char* base,
                               std::vector<IoOp>* ops) const {
  const uint32_t page_size = options_.page_size;
  uint32_t done = 0;
  while (done < count) {
    const PageId id = first + done;
    const uint32_t left_in_extent = pages_per_extent_ - id % pages_per_extent_;
    const uint32_t n = std::min(count - done, left_in_extent);
    uint64_t off = 0;
    const int fd = FdOf(id, &off);
    ops->push_back(IoOp{fd, static_cast<uint32_t>(id / pages_per_extent_), off,
                        base + static_cast<size_t>(done) * page_size,
                        n * page_size});
    done += n;
  }
}

Status DirectVolume::ExecuteSync(const IoOp& op, bool write, uint32_t done) {
#if !STARFISH_HAVE_ODIRECT
  (void)op;
  (void)write;
  (void)done;
  return Status::NotSupported("DirectVolume requires a platform with O_DIRECT");
#else
  while (done < op.len) {
    const ssize_t n =
        write ? ::pwrite(op.fd, op.buf + done, op.len - done,
                         static_cast<off_t>(op.off + done))
              : ::pread(op.fd, op.buf + done, op.len - done,
                        static_cast<off_t>(op.off + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string(write ? "pwrite: " : "pread: ") +
                             std::strerror(errno));
    }
    if (n == 0) {
      return Status::IOError("unexpected EOF in extent file (offset " +
                             std::to_string(op.off + done) + ")");
    }
    done += static_cast<uint32_t>(n);
  }
  return Status::OK();
#endif
}

DirectVolume::IoRing* DirectVolume::AcquireRing(bool* lock) {
  *lock = false;
#if !STARFISH_HAVE_IO_URING
  return nullptr;
#else
  if (!ring_available_.load(std::memory_order_relaxed)) return nullptr;
  if (shared_ring_ != nullptr) {
    if (shared_ring_->broken.load(std::memory_order_relaxed) ||
        shared_ring_->down.load(std::memory_order_relaxed)) {
      return nullptr;
    }
    *lock = true;
    return shared_ring_.get();
  }
  // Per-thread mode: one lazily created ring per (thread, volume). The
  // slot caches failure too (null ring), so a thread that cannot get a
  // ring probes once and then stays on pread/pwrite.
  struct Slot {
    uint64_t serial = 0;
    std::shared_ptr<IoRing> ring;
    Slot(uint64_t s, std::shared_ptr<IoRing> r)
        : serial(s), ring(std::move(r)) {}
    Slot(Slot&&) = default;
    Slot& operator=(Slot&&) = default;
    ~Slot() {
      // Publish every use this thread made of the ring before the reaper
      // may Shutdown() it (pairs with the acquire load in the reap loop).
      if (ring != nullptr) {
        ring->owner_detached.store(true, std::memory_order_release);
      }
    }
  };
  thread_local std::vector<Slot> slots;
  for (const Slot& s : slots) {
    if (s.serial != serial_) continue;
    if (s.ring == nullptr || s.ring->down.load(std::memory_order_relaxed) ||
        s.ring->broken.load(std::memory_order_relaxed)) {
      return nullptr;
    }
    return s.ring.get();
  }
  // Drop slots whose rings were shut down (their volumes are gone) before
  // growing the cache; slots that cached a creation failure stay (they are
  // the "don't retry every I/O" memo and cost 24 bytes).
  slots.erase(std::remove_if(slots.begin(), slots.end(),
                             [](const Slot& s) {
                               return s.ring != nullptr &&
                                      s.ring->down.load(
                                          std::memory_order_relaxed);
                             }),
              slots.end());
  std::shared_ptr<IoRing> ring;
  {
    std::lock_guard<std::mutex> reg_lock(registry_->mu);
    if (!registry_->closed) {
      // Reap rings whose threads exited: under mu, the registry holding
      // the only reference means no thread-local slot can reach the ring
      // anymore (slots are only created right here, under this lock). The
      // acquire load of owner_detached is load-bearing: it synchronizes
      // with the Slot destructor's release store, ordering the dead
      // thread's lock-free ring uses before our Shutdown(). If the flag
      // is not visible yet, skip — the ring gets reaped on a later pass.
      for (auto it = registry_->rings.begin();
           it != registry_->rings.end();) {
        if (it->use_count() == 1 &&
            (*it)->owner_detached.load(std::memory_order_acquire)) {
          (*it)->Shutdown();
          it = registry_->rings.erase(it);
        } else {
          ++it;
        }
      }
      ring = IoRing::Create(std::max(1u, direct_options_.ring_depth), false,
                            0);
      if (ring != nullptr) {
        ring->want_buffers = direct_options_.register_buffers;
        ring->want_files = direct_options_.register_files;
        registry_->rings.push_back(ring);
      }
    }
  }
  slots.push_back(Slot{serial_, ring});
  return ring != nullptr ? ring.get() : nullptr;
#endif
}

Status DirectVolume::Execute(const std::vector<IoOp>& ops, bool write) {
#if STARFISH_HAVE_IO_URING
  bool need_lock = false;
  IoRing* ring = AcquireRing(&need_lock);
  if (ring != nullptr) {
    std::unique_lock<std::mutex> lock(ring->mu, std::defer_lock);
    if (need_lock) lock.lock();
    ring->MaybeSyncRegistrations(this);
    Result<uint64_t> ticket =
        ring->SubmitTicket(ops.data(), ops.size(), write, {});
    if (!ticket.ok()) return ticket.status();
    return ring->WaitTicket(*ticket);
  }
#endif
  for (const IoOp& op : ops) {
    STARFISH_RETURN_NOT_OK(ExecuteSync(op, write, 0));
  }
  return Status::OK();
}

bool DirectVolume::supports_async_read() const {
  return ring_available_.load(std::memory_order_relaxed);
}

Result<uint64_t> DirectVolume::SubmitReadChained(
    const std::vector<PageId>& ids, const std::vector<char*>& outs) {
  if (ids.empty()) return Status::InvalidArgument("empty chained read");
  if (ids.size() != outs.size()) {
    return Status::InvalidArgument("chained read: ids/outs size mismatch");
  }
  bool need_lock = false;
  IoRing* ring = AcquireRing(&need_lock);
  bool async_ok = ring != nullptr;
  if (async_ok) {
    for (char* out : outs) {
      // Async completion cannot patch a bounce back into the caller's
      // buffer at a well-defined time; misaligned batches take the
      // blocking path (which bounces internally) instead.
      if (!DioEligible(out)) {
        async_ok = false;
        break;
      }
    }
  }
  if (!async_ok) {
    STARFISH_RETURN_NOT_OK(ReadChained(ids, outs));
    return uint64_t{0};  // completed sentinel, CompleteRead is a no-op
  }
  std::vector<IoOp> ops;
  ops.reserve(ids.size());
  const uint32_t page_size = options_.page_size;
  for (size_t i = 0; i < ids.size(); ++i) {
    STARFISH_RETURN_NOT_OK(CheckRange(ids[i], 1));
    uint64_t off = 0;
    const int fd = FdOf(ids[i], &off);
    ops.push_back(IoOp{fd, static_cast<uint32_t>(ids[i] / pages_per_extent_),
                       off, outs[i], page_size});
  }
  std::unique_lock<std::mutex> lock(ring->mu, std::defer_lock);
  if (need_lock) lock.lock();
  ring->MaybeSyncRegistrations(this);
  const size_t n = ops.size();
  Result<uint64_t> ticket =
      ring->SubmitTicket(nullptr, n, /*write=*/false, std::move(ops));
  if (!ticket.ok()) return ticket.status();
  // Metered at submit — one chained call, n page reads — exactly like the
  // blocking ReadChained, so async prefetch pipelines keep the paper's
  // call/page accounting.
  stats_.CountRead(n);
  return *ticket;
}

Status DirectVolume::CompleteRead(uint64_t ticket) {
  if (ticket == 0) return Status::OK();
  bool need_lock = false;
  IoRing* ring = AcquireRing(&need_lock);
  if (ring == nullptr) {
    return Status::Internal(
        "CompleteRead: calling thread has no usable ring (tickets are "
        "thread-local)");
  }
  std::unique_lock<std::mutex> lock(ring->mu, std::defer_lock);
  if (need_lock) lock.lock();
  return ring->WaitTicket(ticket);
}

void DirectVolume::RegisterIoMemory(const void* base, size_t bytes) {
  if (base == nullptr || bytes == 0) return;
  std::lock_guard<std::mutex> lock(registry_->mu);
  registry_->regions.push_back(RingRegistry::Region{
      reinterpret_cast<uintptr_t>(base), bytes});
  registry_->regions_version.fetch_add(1, std::memory_order_release);
}

void DirectVolume::UnregisterIoMemory(const void* base) {
  std::lock_guard<std::mutex> lock(registry_->mu);
  const uintptr_t addr = reinterpret_cast<uintptr_t>(base);
  auto& regions = registry_->regions;
  const size_t before = regions.size();
  regions.erase(std::remove_if(regions.begin(), regions.end(),
                               [addr](const RingRegistry::Region& r) {
                                 return r.base == addr;
                               }),
                regions.end());
  if (regions.size() != before) {
    registry_->regions_version.fetch_add(1, std::memory_order_release);
  }
}

bool DirectVolume::registered_buffers_active() {
  bool need_lock = false;
  IoRing* ring = AcquireRing(&need_lock);
  if (ring == nullptr) return false;
  std::unique_lock<std::mutex> lock(ring->mu, std::defer_lock);
  if (need_lock) lock.lock();
  ring->MaybeSyncRegistrations(this);
  return ring->bufs_registered;
}

bool DirectVolume::registered_files_active() {
  bool need_lock = false;
  IoRing* ring = AcquireRing(&need_lock);
  if (ring == nullptr) return false;
  std::unique_lock<std::mutex> lock(ring->mu, std::defer_lock);
  if (need_lock) lock.lock();
  ring->MaybeSyncRegistrations(this);
  return ring->files_registered;
}

bool DirectVolume::sqpoll_active() const {
  return shared_ring_ != nullptr && shared_ring_->sqpoll &&
         !shared_ring_->down.load(std::memory_order_relaxed) &&
         !shared_ring_->broken.load(std::memory_order_relaxed);
}

size_t DirectVolume::ring_count() const {
  std::lock_guard<std::mutex> lock(registry_->mu);
  return registry_->rings.size();
}

Status DirectVolume::ReadRun(PageId first, uint32_t count, char* out) {
  STARFISH_RETURN_NOT_OK(CheckRange(first, count));
  const uint32_t page_size = options_.page_size;
  thread_local std::vector<IoOp> ops;
  thread_local AlignedBuffer bounce;
  ops.clear();
  // All per-extent segments sit at multiples of page_size from `out`, so
  // one check covers the whole run.
  const bool direct_ok = DioEligible(out) && page_size % dio_mem_align_ == 0;
  char* base = out;
  if (!direct_ok) {
    if (!bounce.Reserve(static_cast<size_t>(count) * page_size,
                        kBounceAlign)) {
      return Status::ResourceExhausted("cannot allocate bounce buffer");
    }
    base = bounce.data();
  }
  BuildRunOps(first, count, base, &ops);
  STARFISH_RETURN_NOT_OK(Execute(ops, /*write=*/false));
  if (!direct_ok) {
    std::memcpy(out, base, static_cast<size_t>(count) * page_size);
  }
  stats_.CountRead(count);
  return Status::OK();
}

Status DirectVolume::WriteRun(PageId first, uint32_t count, const char* src) {
  STARFISH_RETURN_NOT_OK(CheckRange(first, count));
  const uint32_t page_size = options_.page_size;
  thread_local std::vector<IoOp> ops;
  thread_local AlignedBuffer bounce;
  ops.clear();
  const bool direct_ok = DioEligible(src) && page_size % dio_mem_align_ == 0;
  char* base = const_cast<char*>(src);  // write ops never modify the buffer
  if (!direct_ok) {
    if (!bounce.Reserve(static_cast<size_t>(count) * page_size,
                        kBounceAlign)) {
      return Status::ResourceExhausted("cannot allocate bounce buffer");
    }
    std::memcpy(bounce.data(), src, static_cast<size_t>(count) * page_size);
    base = bounce.data();
  }
  BuildRunOps(first, count, base, &ops);
  STARFISH_RETURN_NOT_OK(Execute(ops, /*write=*/true));
  stats_.CountWrite(count);
  return Status::OK();
}

Status DirectVolume::ReadChained(const std::vector<PageId>& ids,
                                 const std::vector<char*>& outs) {
  if (ids.empty()) return Status::InvalidArgument("empty chained read");
  if (ids.size() != outs.size()) {
    return Status::InvalidArgument("chained read: ids/outs size mismatch");
  }
  const uint32_t page_size = options_.page_size;
  thread_local std::vector<IoOp> ops;
  thread_local std::vector<uint32_t> patch;
  thread_local AlignedBuffer bounce;
  ops.clear();
  patch.clear();
  for (size_t i = 0; i < ids.size(); ++i) {
    STARFISH_RETURN_NOT_OK(CheckRange(ids[i], 1));
    char* buf = outs[i];
    if (!DioEligible(buf)) {
      // Reserved lazily: the dominant callers (buffer-pool frames and
      // prefetch staging) are aligned and never pay for a bounce arena.
      if (patch.empty() &&
          !bounce.Reserve(ids.size() * static_cast<size_t>(page_size),
                          kBounceAlign)) {
        return Status::ResourceExhausted("cannot allocate bounce buffer");
      }
      buf = bounce.data() + i * page_size;
      patch.push_back(static_cast<uint32_t>(i));
    }
    uint64_t off = 0;
    const int fd = FdOf(ids[i], &off);
    ops.push_back(IoOp{fd, static_cast<uint32_t>(ids[i] / pages_per_extent_),
                       off, buf, page_size});
  }
  STARFISH_RETURN_NOT_OK(Execute(ops, /*write=*/false));
  for (const uint32_t i : patch) {
    std::memcpy(outs[i], bounce.data() + static_cast<size_t>(i) * page_size,
                page_size);
  }
  stats_.CountRead(ids.size());
  return Status::OK();
}

Status DirectVolume::WriteChained(const std::vector<PageId>& ids,
                                  const std::vector<const char*>& srcs) {
  if (ids.empty()) return Status::InvalidArgument("empty chained write");
  if (ids.size() != srcs.size()) {
    return Status::InvalidArgument("chained write: ids/srcs size mismatch");
  }
  const uint32_t page_size = options_.page_size;
  thread_local std::vector<IoOp> ops;
  thread_local AlignedBuffer bounce;
  ops.clear();
  bool bounce_reserved = false;
  for (size_t i = 0; i < ids.size(); ++i) {
    STARFISH_RETURN_NOT_OK(CheckRange(ids[i], 1));
    char* buf = const_cast<char*>(srcs[i]);
    if (!DioEligible(buf)) {
      // Reserved lazily, as in ReadChained: aligned sources (the frame
      // arena) never pay for a bounce arena.
      if (!bounce_reserved &&
          !bounce.Reserve(ids.size() * static_cast<size_t>(page_size),
                          kBounceAlign)) {
        return Status::ResourceExhausted("cannot allocate bounce buffer");
      }
      bounce_reserved = true;
      buf = bounce.data() + i * page_size;
      std::memcpy(buf, srcs[i], page_size);
    }
    uint64_t off = 0;
    const int fd = FdOf(ids[i], &off);
    ops.push_back(IoOp{fd, static_cast<uint32_t>(ids[i] / pages_per_extent_),
                       off, buf, page_size});
  }
  STARFISH_RETURN_NOT_OK(Execute(ops, /*write=*/true));
  stats_.CountWrite(ids.size());
  return Status::OK();
}

Status DirectVolume::ReadRunZeroCopy(PageId first, uint32_t count,
                                     std::vector<const char*>* views) {
  (void)first;
  (void)count;
  (void)views;
  return Status::NotSupported(
      "DirectVolume keeps no memory image; use ReadRun "
      "(supports_zero_copy() is false)");
}

Status DirectVolume::ReadChainedZeroCopy(const std::vector<PageId>& ids,
                                         std::vector<const char*>* views) {
  (void)ids;
  (void)views;
  return Status::NotSupported(
      "DirectVolume keeps no memory image; use ReadChained "
      "(supports_zero_copy() is false)");
}

Status DirectVolume::WritePageUnmetered(PageId id, const char* src) {
  STARFISH_RETURN_NOT_OK(CheckRange(id, 1));
  const uint32_t page_size = options_.page_size;
  thread_local std::vector<IoOp> ops;
  thread_local AlignedBuffer bounce;
  ops.clear();
  char* buf = const_cast<char*>(src);
  if (!DioEligible(buf)) {
    if (!bounce.Reserve(page_size, kBounceAlign)) {
      return Status::ResourceExhausted("cannot allocate bounce buffer");
    }
    std::memcpy(bounce.data(), src, page_size);
    buf = bounce.data();
  }
  uint64_t off = 0;
  const int fd = FdOf(id, &off);
  ops.push_back(IoOp{fd, static_cast<uint32_t>(id / pages_per_extent_), off,
                     buf, page_size});
  return Execute(ops, /*write=*/true);  // deliberately unmetered
}

Status DirectVolume::Sync() {
#if !STARFISH_HAVE_ODIRECT
  return Status::NotSupported("DirectVolume requires a platform with O_DIRECT");
#else
  size_t extent_count = 0;
  {
    std::lock_guard<std::mutex> lock(alloc_mu_);
    extent_count = open_extents_;
  }
  for (size_t i = 0; i < extent_count; ++i) {
    const int fd = fds_[i].load(std::memory_order_acquire);
    // O_DIRECT moved the data, but block allocations (writes into holes)
    // still live in dirty filesystem metadata until fdatasync.
    if (fd >= 0 && ::fdatasync(fd) != 0) {
      return Status::IOError("fdatasync " + ExtentPath(i) + ": " +
                             std::strerror(errno));
    }
  }
  if (dir_dirty_.load(std::memory_order_relaxed)) {
    // New extent files: their directory entries must be durable before the
    // allocator journal (and later the catalog) may reference their pages.
    STARFISH_RETURN_NOT_OK(SyncDir(dir_));
    dir_dirty_.store(false, std::memory_order_relaxed);
  }
  return journal_.Checkpoint(CurrentMetaState());
#endif
}

}  // namespace starfish
