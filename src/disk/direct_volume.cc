#include "disk/direct_volume.h"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

#if defined(__linux__)
#include <sys/syscall.h>
#if __has_include(<linux/io_uring.h>)
#include <linux/io_uring.h>
#define STARFISH_HAVE_IO_URING 1
#endif
#endif

#if defined(O_DIRECT)
#define STARFISH_HAVE_ODIRECT 1
#endif

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <mutex>
#include <string>

#include "util/aligned_buffer.h"
#include "util/file_io.h"

namespace starfish {

namespace {

/// Bounce buffers are allocated at this alignment — enough for any device
/// DMA requirement in practice (the probe relaxes the *eligibility* check
/// to 512 where the device allows it, but over-aligning an allocation
/// costs nothing).
constexpr size_t kBounceAlign = 4096;

/// Journals longer than this are compacted at reopen (same policy as the
/// mmap backend).
constexpr uint32_t kCompactRecordThreshold = 64;

#if STARFISH_HAVE_ODIRECT

/// Trial-writes a scratch file to answer: can this filesystem do O_DIRECT
/// transfers of `page_size` bytes at page-size offsets, and does it accept
/// 512-byte buffer alignment or insist on 4096? Returns the buffer
/// alignment to use, or NotSupported.
Result<uint32_t> ProbeDioAlignment(const std::string& dir,
                                   uint32_t page_size) {
  const std::string path = dir + "/.dio_probe";
  const int fd =
      ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC | O_DIRECT, 0644);
  if (fd < 0) {
    return Status::NotSupported("filesystem at " + dir +
                                " rejects O_DIRECT: " + std::strerror(errno));
  }
  AlignedBuffer buf;
  Status failed;
  uint32_t align = 0;
  if (!buf.Reserve(static_cast<size_t>(page_size) + 512, kBounceAlign)) {
    failed = Status::ResourceExhausted("cannot allocate O_DIRECT probe");
  } else {
    std::memset(buf.data(), 0, static_cast<size_t>(page_size) + 512);
    // One page at offset 0 and one at offset page_size: covers the length,
    // offset and (4096-aligned) buffer requirements in one go.
    if (::pwrite(fd, buf.data(), page_size, 0) ==
            static_cast<ssize_t>(page_size) &&
        ::pwrite(fd, buf.data(), page_size,
                 static_cast<off_t>(page_size)) ==
            static_cast<ssize_t>(page_size)) {
      align = kBounceAlign;
      // Relax to sector alignment where the device accepts it — fewer
      // caller buffers have to bounce.
      if (::pwrite(fd, buf.data() + 512, page_size, 0) ==
          static_cast<ssize_t>(page_size)) {
        align = 512;
      }
    } else {
      failed = Status::NotSupported(
          "O_DIRECT at " + dir + " cannot transfer page_size=" +
          std::to_string(page_size) + ": " + std::strerror(errno));
    }
  }
  ::close(fd);
  ::unlink(path.c_str());
  if (align == 0) return failed;
  return align;
}

#endif  // STARFISH_HAVE_ODIRECT

#if STARFISH_HAVE_IO_URING

int SysIoUringSetup(unsigned entries, struct io_uring_params* params) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, params));
}

int SysIoUringEnter(int fd, unsigned to_submit, unsigned min_complete,
                    unsigned flags) {
  return static_cast<int>(::syscall(__NR_io_uring_enter, fd, to_submit,
                                    min_complete, flags, nullptr, 0));
}

/// True when the kernel supports the (non-vectored) IORING_OP_READ/WRITE
/// this wrapper submits. Ring *creation* succeeds from 5.1, but these
/// opcodes only exist since 5.6 — the probe (itself 5.6+) distinguishes
/// "ring works" from "our opcodes work", so a 5.1-5.5 kernel falls back to
/// pread/pwrite instead of completing every I/O with EINVAL.
bool RingSupportsReadWrite(int ring_fd) {
  constexpr unsigned kProbeOps = 64;  // covers IORING_OP_WRITE everywhere
  std::vector<char> buf(
      sizeof(struct io_uring_probe) +
          kProbeOps * sizeof(struct io_uring_probe_op),
      0);
  auto* probe = reinterpret_cast<struct io_uring_probe*>(buf.data());
  if (::syscall(__NR_io_uring_register, ring_fd, IORING_REGISTER_PROBE,
                probe, kProbeOps) != 0) {
    return false;
  }
  return probe->ops_len > IORING_OP_WRITE &&
         (probe->ops[IORING_OP_READ].flags & IO_URING_OP_SUPPORTED) != 0 &&
         (probe->ops[IORING_OP_WRITE].flags & IO_URING_OP_SUPPORTED) != 0;
}

#endif  // STARFISH_HAVE_IO_URING

}  // namespace

/// Minimal raw-syscall io_uring wrapper (no liburing dependency): one
/// submission/completion ring pair, used under a mutex. Submit() pushes a
/// batch of read or write SQEs, waits for all completions, and finishes any
/// short transfer synchronously. Created at Open; a null ring means the
/// kernel refused (ENOSYS, seccomp EPERM, sysctl-disabled) and the volume
/// runs on the pread/pwrite fallback instead.
struct DirectVolume::IoRing {
#if STARFISH_HAVE_IO_URING
  int ring_fd = -1;
  unsigned sq_entries = 0;
  void* sq_map = nullptr;
  size_t sq_map_len = 0;
  void* cq_map = nullptr;   ///< null when IORING_FEAT_SINGLE_MMAP
  size_t cq_map_len = 0;
  void* sqe_map = nullptr;
  size_t sqe_map_len = 0;
  struct io_uring_sqe* sqes = nullptr;
  unsigned* sq_tail = nullptr;
  unsigned* sq_mask = nullptr;
  unsigned* sq_array = nullptr;
  unsigned* cq_head = nullptr;
  unsigned* cq_tail = nullptr;
  unsigned* cq_mask = nullptr;
  struct io_uring_cqe* cqes = nullptr;
  std::mutex mu;

  ~IoRing() {
    if (sqe_map != nullptr) ::munmap(sqe_map, sqe_map_len);
    if (cq_map != nullptr) ::munmap(cq_map, cq_map_len);
    if (sq_map != nullptr) ::munmap(sq_map, sq_map_len);
    if (ring_fd >= 0) ::close(ring_fd);
  }

  static std::unique_ptr<IoRing> Create(uint32_t depth) {
    struct io_uring_params params;
    std::memset(&params, 0, sizeof(params));
    const int fd = SysIoUringSetup(depth, &params);
    if (fd < 0) return nullptr;
    auto ring = std::make_unique<IoRing>();
    ring->ring_fd = fd;
    ring->sq_entries = params.sq_entries;
    size_t sq_len = params.sq_off.array + params.sq_entries * sizeof(unsigned);
    size_t cq_len = params.cq_off.cqes +
                    params.cq_entries * sizeof(struct io_uring_cqe);
    const bool single = (params.features & IORING_FEAT_SINGLE_MMAP) != 0;
    if (single) sq_len = cq_len = std::max(sq_len, cq_len);
    ring->sq_map = ::mmap(nullptr, sq_len, PROT_READ | PROT_WRITE,
                          MAP_SHARED | MAP_POPULATE, fd, IORING_OFF_SQ_RING);
    if (ring->sq_map == MAP_FAILED) {
      ring->sq_map = nullptr;
      return nullptr;
    }
    ring->sq_map_len = sq_len;
    char* cq_base = static_cast<char*>(ring->sq_map);
    if (!single) {
      ring->cq_map = ::mmap(nullptr, cq_len, PROT_READ | PROT_WRITE,
                            MAP_SHARED | MAP_POPULATE, fd, IORING_OFF_CQ_RING);
      if (ring->cq_map == MAP_FAILED) {
        ring->cq_map = nullptr;
        return nullptr;
      }
      ring->cq_map_len = cq_len;
      cq_base = static_cast<char*>(ring->cq_map);
    }
    ring->sqe_map_len = params.sq_entries * sizeof(struct io_uring_sqe);
    ring->sqe_map = ::mmap(nullptr, ring->sqe_map_len, PROT_READ | PROT_WRITE,
                           MAP_SHARED | MAP_POPULATE, fd, IORING_OFF_SQES);
    if (ring->sqe_map == MAP_FAILED) {
      ring->sqe_map = nullptr;
      return nullptr;
    }
    char* sq_base = static_cast<char*>(ring->sq_map);
    ring->sqes = reinterpret_cast<struct io_uring_sqe*>(ring->sqe_map);
    ring->sq_tail = reinterpret_cast<unsigned*>(sq_base + params.sq_off.tail);
    ring->sq_mask =
        reinterpret_cast<unsigned*>(sq_base + params.sq_off.ring_mask);
    ring->sq_array = reinterpret_cast<unsigned*>(sq_base + params.sq_off.array);
    ring->cq_head = reinterpret_cast<unsigned*>(cq_base + params.cq_off.head);
    ring->cq_tail = reinterpret_cast<unsigned*>(cq_base + params.cq_off.tail);
    ring->cq_mask =
        reinterpret_cast<unsigned*>(cq_base + params.cq_off.ring_mask);
    ring->cqes = reinterpret_cast<struct io_uring_cqe*>(cq_base +
                                                        params.cq_off.cqes);
    if (!RingSupportsReadWrite(fd)) return nullptr;
    return ring;
  }

  /// True after an error left submissions in an indeterminate state (SQEs
  /// queued but never handed to the kernel, or completions that could not
  /// be drained). A broken ring is never touched again — callers fall back
  /// to the pread/pwrite path. Atomic so Execute() can check it cheaply
  /// without the ring mutex.
  std::atomic<bool> broken{false};

  Status Submit(const std::vector<IoOp>& ops, bool write) {
    std::lock_guard<std::mutex> lock(mu);
    if (broken.load(std::memory_order_relaxed)) {
      return Status::Internal("io_uring in indeterminate state");
    }
    size_t done = 0;
    while (done < ops.size()) {
      const unsigned batch = static_cast<unsigned>(
          std::min<size_t>(ops.size() - done, sq_entries));
      // We are the only submitter (the mutex), so the SQ tail is ours.
      const unsigned tail = *sq_tail;
      for (unsigned i = 0; i < batch; ++i) {
        const IoOp& op = ops[done + i];
        const unsigned idx = (tail + i) & *sq_mask;
        struct io_uring_sqe* sqe = &sqes[idx];
        std::memset(sqe, 0, sizeof(*sqe));
        sqe->opcode = write ? IORING_OP_WRITE : IORING_OP_READ;
        sqe->fd = op.fd;
        sqe->addr = reinterpret_cast<uint64_t>(op.buf);
        sqe->len = op.len;
        sqe->off = op.off;
        sqe->user_data = done + i;
        sq_array[idx] = idx;
      }
      __atomic_store_n(sq_tail, tail + batch, __ATOMIC_RELEASE);
      unsigned submitted = 0;
      Status submit_error;
      while (submitted < batch) {
        const int ret =
            SysIoUringEnter(ring_fd, batch - submitted, 0, 0);
        if (ret < 0) {
          if (errno == EINTR) continue;
          submit_error = Status::IOError(std::string("io_uring_enter: ") +
                                         std::strerror(errno));
          break;
        }
        submitted += static_cast<unsigned>(ret);
      }
      // Drain everything the kernel accepted BEFORE returning any error:
      // in-flight ops write into caller buffers (thread_local bounce /
      // staging) that would otherwise be reused while the kernel still
      // scribbles on them, and their stray CQEs would be misattributed to
      // the next batch's ops via user_data.
      const Status reap_error = ReapLocked(ops, write, submitted);
      if (!submit_error.ok()) {
        // SQEs past `submitted` are still queued in the SQ ring and would
        // be handed to the kernel (with dangling buffers) by the next
        // enter — the ring cannot be safely reused.
        broken.store(true, std::memory_order_relaxed);
        return submit_error;
      }
      STARFISH_RETURN_NOT_OK(reap_error);
      done += batch;
    }
    return Status::OK();
  }

  /// Reaps exactly `expect` completions (order arbitrary, user_data maps
  /// each CQE back to its op), finishing short transfers synchronously.
  /// Returns the first per-op I/O error; marks the ring broken when the
  /// kernel will not hand the completions back.
  Status ReapLocked(const std::vector<IoOp>& ops, bool write,
                    unsigned expect) {
    Status first_error;
    unsigned reaped = 0;
    int wait_failures = 0;
    while (reaped < expect) {
      unsigned head = *cq_head;
      const unsigned ctail = __atomic_load_n(cq_tail, __ATOMIC_ACQUIRE);
      if (head == ctail) {
        const int ret =
            SysIoUringEnter(ring_fd, 0, 1, IORING_ENTER_GETEVENTS);
        if (ret < 0 && errno != EINTR && ++wait_failures > 64) {
          // The kernel will not complete what it accepted; the ring (and
          // the in-flight buffers) are lost to us.
          broken.store(true, std::memory_order_relaxed);
          return Status::IOError(
              std::string("io_uring completion drain failed: ") +
              std::strerror(errno));
        }
        continue;
      }
      wait_failures = 0;
      while (head != ctail && reaped < expect) {
        const struct io_uring_cqe& cqe = cqes[head & *cq_mask];
        const IoOp& op = ops[static_cast<size_t>(cqe.user_data)];
        if (cqe.res < 0) {
          if (first_error.ok()) {
            first_error = Status::IOError(
                std::string(write ? "io_uring write: " : "io_uring read: ") +
                std::strerror(-cqe.res));
          }
        } else if (static_cast<uint32_t>(cqe.res) < op.len) {
          // Short transfer: finish the remainder synchronously.
          const Status st =
              ExecuteSync(op, write, static_cast<uint32_t>(cqe.res));
          if (first_error.ok() && !st.ok()) first_error = st;
        }
        ++head;
        ++reaped;
      }
      __atomic_store_n(cq_head, head, __ATOMIC_RELEASE);
    }
    return first_error;
  }
#else   // !STARFISH_HAVE_IO_URING
  static std::unique_ptr<IoRing> Create(uint32_t) { return nullptr; }
  Status Submit(const std::vector<IoOp>&, bool) {
    return Status::Internal("io_uring support not compiled in");
  }
#endif  // STARFISH_HAVE_IO_URING
};

DirectVolume::DirectVolume(std::string dir, DiskOptions options,
                           uint32_t dio_mem_align)
    : PagedVolume(options),
      dir_(std::move(dir)),
      dio_mem_align_(std::max<uint32_t>(dio_mem_align, 512)) {
  journal_.Attach(dir_ + "/volume.meta");
  fds_ = std::make_unique<std::atomic<int>[]>(kMaxExtents);
  for (size_t i = 0; i < kMaxExtents; ++i) {
    fds_[i].store(-1, std::memory_order_relaxed);
  }
}

DirectVolume::~DirectVolume() {
#if STARFISH_HAVE_ODIRECT
  // Best-effort close-time checkpoint, mirroring the mmap backend: page
  // bytes already sit on the device (O_DIRECT), but block allocations and
  // the allocator journal still need their durable record — in the same
  // order Sync() enforces: extent data, then the directory entries of any
  // extent files created since the last sync, then the journal (which may
  // reference their pages only once they durably exist).
  for (size_t i = 0; i < open_extents_; ++i) {
    const int fd = fds_[i].load(std::memory_order_relaxed);
    if (fd >= 0) {
      (void)::fdatasync(fd);
    }
  }
  if (dir_dirty_.load(std::memory_order_relaxed)) {
    if (SyncDir(dir_).ok()) {
      dir_dirty_.store(false, std::memory_order_relaxed);
      (void)journal_.Checkpoint(CurrentMetaState());
    }
    // Dir fsync failed: skip the journal append rather than record pages
    // whose extent files may not survive a power loss.
  } else {
    (void)journal_.Checkpoint(CurrentMetaState());
  }
  for (size_t i = 0; i < open_extents_; ++i) {
    const int fd = fds_[i].load(std::memory_order_relaxed);
    if (fd >= 0) ::close(fd);
  }
#endif
}

bool DirectVolume::SupportedAt(const std::string& dir, uint32_t page_size) {
#if !STARFISH_HAVE_ODIRECT
  (void)dir;
  (void)page_size;
  return false;
#else
  if (dir.empty() || page_size == 0 || page_size % 512 != 0) return false;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return false;
  return ProbeDioAlignment(dir, page_size).ok();
#endif
}

Result<std::unique_ptr<DirectVolume>> DirectVolume::Open(
    const std::string& dir, DiskOptions options,
    DirectVolumeOptions direct_options) {
#if !STARFISH_HAVE_ODIRECT
  (void)dir;
  (void)options;
  (void)direct_options;
  return Status::NotSupported("DirectVolume requires a platform with O_DIRECT");
#else
  if (dir.empty()) {
    return Status::InvalidArgument("DirectVolume requires a backing directory");
  }
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("cannot create volume directory " + dir + ": " +
                           ec.message());
  }

  VolumeMetaReplay replay;
  STARFISH_RETURN_NOT_OK(ReplayVolumeMeta(dir + "/volume.meta", &replay));
  // The recorded geometry wins (a volume written by EITHER persistent
  // backend — the on-disk format is shared — keeps its page size).
  if (replay.found) options = replay.state.options;
  if (options.page_size == 0) options.page_size = kDefaultPageSize;
  if (options.page_size % 512 != 0) {
    return Status::InvalidArgument(
        "DirectVolume page size must be a multiple of the 512-byte device "
        "sector, got " +
        std::to_string(options.page_size));
  }
  STARFISH_ASSIGN_OR_RETURN(const uint32_t mem_align,
                            ProbeDioAlignment(dir, options.page_size));

  auto volume = std::unique_ptr<DirectVolume>(
      new DirectVolume(dir, options, mem_align));
  if (direct_options.use_io_uring) {
    volume->ring_ = IoRing::Create(std::max(1u, direct_options.ring_depth));
  }

  if (!replay.found) {
    // No durable allocator state: stray extent files are the leavings of a
    // run that crashed before its first checkpoint — their stale bytes must
    // not masquerade as zero-filled fresh pages.
    STARFISH_RETURN_NOT_OK(RemoveOrphanExtentFiles(dir, 0));
    return volume;
  }

  const uint64_t ppe = volume->pages_per_extent();
  const uint64_t pages = replay.state.page_count;
  const size_t extent_count = static_cast<size_t>((pages + ppe - 1) / ppe);
  STARFISH_RETURN_NOT_OK(RemoveOrphanExtentFiles(dir, extent_count));
  {
    std::lock_guard<std::mutex> lock(volume->alloc_mu_);
    for (size_t i = 0; i < extent_count; ++i) {
      STARFISH_RETURN_NOT_OK(volume->OpenExtentFd(i, /*create=*/false));
    }
  }
  if (extent_count > 0 && pages % ppe != 0) {
    // Pages past the durable count may hold bytes of a crashed run; fresh
    // pages must read zero. Truncate down to the used prefix and back up:
    // the reinstated tail is a hole, and holes read as zeros.
    const int fd = volume->fds_[extent_count - 1].load(
        std::memory_order_relaxed);
    const off_t used = static_cast<off_t>(
        static_cast<uint64_t>(pages % ppe) * volume->page_size());
    if (::ftruncate(fd, used) != 0 ||
        ::ftruncate(fd, static_cast<off_t>(volume->extent_size_bytes())) !=
            0) {
      return Status::IOError("zero tail of extent " +
                             std::to_string(extent_count - 1) + ": " +
                             std::strerror(errno));
    }
  }
  volume->RestoreAllocatorState(pages, replay.state.freed);
  volume->journal_.MarkReplayed(replay.state);
  if (replay.legacy || replay.torn_tail ||
      replay.records > kCompactRecordThreshold) {
    STARFISH_RETURN_NOT_OK(
        volume->journal_.RewriteCompacted(volume->CurrentMetaState()));
  }
  return volume;
#endif
}

std::string DirectVolume::ExtentPath(size_t index) const {
  return dir_ + "/" + ExtentFileName(index);
}

Status DirectVolume::OpenExtentFd(size_t index, bool create) {
#if !STARFISH_HAVE_ODIRECT
  (void)index;
  (void)create;
  return Status::NotSupported("DirectVolume requires a platform with O_DIRECT");
#else
  if (index >= kMaxExtents) {
    return Status::ResourceExhausted("volume extent directory full (" +
                                     std::to_string(index) + " extents)");
  }
  const std::string path = ExtentPath(index);
  const int flags = O_RDWR | O_CLOEXEC | O_DIRECT | (create ? O_CREAT : 0);
  const int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) {
    return Status::IOError("open " + path + ": " + std::strerror(errno));
  }
  // ftruncate creates the zero-filled image of a fresh extent and repairs a
  // short file (holes read as zeros, same as fresh pages).
  struct stat st;
  if (::fstat(fd, &st) != 0 ||
      (static_cast<size_t>(st.st_size) < extent_size_bytes() &&
       ::ftruncate(fd, static_cast<off_t>(extent_size_bytes())) != 0)) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IOError("size " + path + ": " + err);
  }
  // Release pairs with the acquire bounds check readers do before FdOf.
  fds_[index].store(fd, std::memory_order_release);
  open_extents_ = index + 1;
  if (create) dir_dirty_.store(true, std::memory_order_relaxed);
  return Status::OK();
#endif
}

Status DirectVolume::EnsureExtentsLocked(size_t extent_count) {
  for (size_t i = open_extents_; i < extent_count; ++i) {
    STARFISH_RETURN_NOT_OK(OpenExtentFd(i, /*create=*/true));
  }
  return Status::OK();
}

int DirectVolume::FdOf(PageId id, uint64_t* off) const {
  const size_t extent = id / pages_per_extent_;
  *off = static_cast<uint64_t>(id % pages_per_extent_) * options_.page_size;
  // Relaxed is enough: the caller ordered itself after publication via the
  // acquire load in CheckRange.
  return fds_[extent].load(std::memory_order_relaxed);
}

void DirectVolume::BuildRunOps(PageId first, uint32_t count, char* base,
                               std::vector<IoOp>* ops) const {
  const uint32_t page_size = options_.page_size;
  uint32_t done = 0;
  while (done < count) {
    const PageId id = first + done;
    const uint32_t left_in_extent = pages_per_extent_ - id % pages_per_extent_;
    const uint32_t n = std::min(count - done, left_in_extent);
    uint64_t off = 0;
    const int fd = FdOf(id, &off);
    ops->push_back(IoOp{fd, off, base + static_cast<size_t>(done) * page_size,
                        n * page_size});
    done += n;
  }
}

Status DirectVolume::ExecuteSync(const IoOp& op, bool write, uint32_t done) {
#if !STARFISH_HAVE_ODIRECT
  (void)op;
  (void)write;
  (void)done;
  return Status::NotSupported("DirectVolume requires a platform with O_DIRECT");
#else
  while (done < op.len) {
    const ssize_t n =
        write ? ::pwrite(op.fd, op.buf + done, op.len - done,
                         static_cast<off_t>(op.off + done))
              : ::pread(op.fd, op.buf + done, op.len - done,
                        static_cast<off_t>(op.off + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string(write ? "pwrite: " : "pread: ") +
                             std::strerror(errno));
    }
    if (n == 0) {
      return Status::IOError("unexpected EOF in extent file (offset " +
                             std::to_string(op.off + done) + ")");
    }
    done += static_cast<uint32_t>(n);
  }
  return Status::OK();
#endif
}

Status DirectVolume::Execute(const std::vector<IoOp>& ops, bool write) {
#if STARFISH_HAVE_IO_URING
  if (ring_ != nullptr && !ring_->broken.load(std::memory_order_relaxed)) {
    return ring_->Submit(ops, write);
  }
#endif
  for (const IoOp& op : ops) {
    STARFISH_RETURN_NOT_OK(ExecuteSync(op, write, 0));
  }
  return Status::OK();
}

Status DirectVolume::ReadRun(PageId first, uint32_t count, char* out) {
  STARFISH_RETURN_NOT_OK(CheckRange(first, count));
  const uint32_t page_size = options_.page_size;
  thread_local std::vector<IoOp> ops;
  thread_local AlignedBuffer bounce;
  ops.clear();
  // All per-extent segments sit at multiples of page_size from `out`, so
  // one check covers the whole run.
  const bool direct_ok = DioEligible(out) && page_size % dio_mem_align_ == 0;
  char* base = out;
  if (!direct_ok) {
    if (!bounce.Reserve(static_cast<size_t>(count) * page_size,
                        kBounceAlign)) {
      return Status::ResourceExhausted("cannot allocate bounce buffer");
    }
    base = bounce.data();
  }
  BuildRunOps(first, count, base, &ops);
  STARFISH_RETURN_NOT_OK(Execute(ops, /*write=*/false));
  if (!direct_ok) {
    std::memcpy(out, base, static_cast<size_t>(count) * page_size);
  }
  stats_.CountRead(count);
  return Status::OK();
}

Status DirectVolume::WriteRun(PageId first, uint32_t count, const char* src) {
  STARFISH_RETURN_NOT_OK(CheckRange(first, count));
  const uint32_t page_size = options_.page_size;
  thread_local std::vector<IoOp> ops;
  thread_local AlignedBuffer bounce;
  ops.clear();
  const bool direct_ok = DioEligible(src) && page_size % dio_mem_align_ == 0;
  char* base = const_cast<char*>(src);  // write ops never modify the buffer
  if (!direct_ok) {
    if (!bounce.Reserve(static_cast<size_t>(count) * page_size,
                        kBounceAlign)) {
      return Status::ResourceExhausted("cannot allocate bounce buffer");
    }
    std::memcpy(bounce.data(), src, static_cast<size_t>(count) * page_size);
    base = bounce.data();
  }
  BuildRunOps(first, count, base, &ops);
  STARFISH_RETURN_NOT_OK(Execute(ops, /*write=*/true));
  stats_.CountWrite(count);
  return Status::OK();
}

Status DirectVolume::ReadChained(const std::vector<PageId>& ids,
                                 const std::vector<char*>& outs) {
  if (ids.empty()) return Status::InvalidArgument("empty chained read");
  if (ids.size() != outs.size()) {
    return Status::InvalidArgument("chained read: ids/outs size mismatch");
  }
  const uint32_t page_size = options_.page_size;
  thread_local std::vector<IoOp> ops;
  thread_local std::vector<uint32_t> patch;
  thread_local AlignedBuffer bounce;
  ops.clear();
  patch.clear();
  for (size_t i = 0; i < ids.size(); ++i) {
    STARFISH_RETURN_NOT_OK(CheckRange(ids[i], 1));
    char* buf = outs[i];
    if (!DioEligible(buf)) {
      // Reserved lazily: the dominant callers (buffer-pool frames and
      // prefetch staging) are aligned and never pay for a bounce arena.
      if (patch.empty() &&
          !bounce.Reserve(ids.size() * static_cast<size_t>(page_size),
                          kBounceAlign)) {
        return Status::ResourceExhausted("cannot allocate bounce buffer");
      }
      buf = bounce.data() + i * page_size;
      patch.push_back(static_cast<uint32_t>(i));
    }
    uint64_t off = 0;
    const int fd = FdOf(ids[i], &off);
    ops.push_back(IoOp{fd, off, buf, page_size});
  }
  STARFISH_RETURN_NOT_OK(Execute(ops, /*write=*/false));
  for (const uint32_t i : patch) {
    std::memcpy(outs[i], bounce.data() + static_cast<size_t>(i) * page_size,
                page_size);
  }
  stats_.CountRead(ids.size());
  return Status::OK();
}

Status DirectVolume::WriteChained(const std::vector<PageId>& ids,
                                  const std::vector<const char*>& srcs) {
  if (ids.empty()) return Status::InvalidArgument("empty chained write");
  if (ids.size() != srcs.size()) {
    return Status::InvalidArgument("chained write: ids/srcs size mismatch");
  }
  const uint32_t page_size = options_.page_size;
  thread_local std::vector<IoOp> ops;
  thread_local AlignedBuffer bounce;
  ops.clear();
  bool bounce_reserved = false;
  for (size_t i = 0; i < ids.size(); ++i) {
    STARFISH_RETURN_NOT_OK(CheckRange(ids[i], 1));
    char* buf = const_cast<char*>(srcs[i]);
    if (!DioEligible(buf)) {
      // Reserved lazily, as in ReadChained: aligned sources (the frame
      // arena) never pay for a bounce arena.
      if (!bounce_reserved &&
          !bounce.Reserve(ids.size() * static_cast<size_t>(page_size),
                          kBounceAlign)) {
        return Status::ResourceExhausted("cannot allocate bounce buffer");
      }
      bounce_reserved = true;
      buf = bounce.data() + i * page_size;
      std::memcpy(buf, srcs[i], page_size);
    }
    uint64_t off = 0;
    const int fd = FdOf(ids[i], &off);
    ops.push_back(IoOp{fd, off, buf, page_size});
  }
  STARFISH_RETURN_NOT_OK(Execute(ops, /*write=*/true));
  stats_.CountWrite(ids.size());
  return Status::OK();
}

Status DirectVolume::ReadRunZeroCopy(PageId first, uint32_t count,
                                     std::vector<const char*>* views) {
  (void)first;
  (void)count;
  (void)views;
  return Status::NotSupported(
      "DirectVolume keeps no memory image; use ReadRun "
      "(supports_zero_copy() is false)");
}

Status DirectVolume::ReadChainedZeroCopy(const std::vector<PageId>& ids,
                                         std::vector<const char*>* views) {
  (void)ids;
  (void)views;
  return Status::NotSupported(
      "DirectVolume keeps no memory image; use ReadChained "
      "(supports_zero_copy() is false)");
}

Status DirectVolume::WritePageUnmetered(PageId id, const char* src) {
  STARFISH_RETURN_NOT_OK(CheckRange(id, 1));
  const uint32_t page_size = options_.page_size;
  thread_local std::vector<IoOp> ops;
  thread_local AlignedBuffer bounce;
  ops.clear();
  char* buf = const_cast<char*>(src);
  if (!DioEligible(buf)) {
    if (!bounce.Reserve(page_size, kBounceAlign)) {
      return Status::ResourceExhausted("cannot allocate bounce buffer");
    }
    std::memcpy(bounce.data(), src, page_size);
    buf = bounce.data();
  }
  uint64_t off = 0;
  const int fd = FdOf(id, &off);
  ops.push_back(IoOp{fd, off, buf, page_size});
  return Execute(ops, /*write=*/true);  // deliberately unmetered
}

Status DirectVolume::Sync() {
#if !STARFISH_HAVE_ODIRECT
  return Status::NotSupported("DirectVolume requires a platform with O_DIRECT");
#else
  size_t extent_count = 0;
  {
    std::lock_guard<std::mutex> lock(alloc_mu_);
    extent_count = open_extents_;
  }
  for (size_t i = 0; i < extent_count; ++i) {
    const int fd = fds_[i].load(std::memory_order_acquire);
    // O_DIRECT moved the data, but block allocations (writes into holes)
    // still live in dirty filesystem metadata until fdatasync.
    if (fd >= 0 && ::fdatasync(fd) != 0) {
      return Status::IOError("fdatasync " + ExtentPath(i) + ": " +
                             std::strerror(errno));
    }
  }
  if (dir_dirty_.load(std::memory_order_relaxed)) {
    // New extent files: their directory entries must be durable before the
    // allocator journal (and later the catalog) may reference their pages.
    STARFISH_RETURN_NOT_OK(SyncDir(dir_));
    dir_dirty_.store(false, std::memory_order_relaxed);
  }
  return journal_.Checkpoint(CurrentMetaState());
#endif
}

}  // namespace starfish
