#include "disk/volume.h"

#include "disk/mem_volume.h"
#include "disk/mmap_volume.h"

namespace starfish {

std::string ToString(VolumeKind kind) {
  switch (kind) {
    case VolumeKind::kMem:
      return "mem";
    case VolumeKind::kMmap:
      return "mmap";
  }
  return "unknown";
}

Result<std::unique_ptr<Volume>> CreateVolume(VolumeKind kind,
                                             DiskOptions options,
                                             const std::string& path) {
  switch (kind) {
    case VolumeKind::kMem:
      return {std::make_unique<MemVolume>(options)};
    case VolumeKind::kMmap: {
      STARFISH_ASSIGN_OR_RETURN(std::unique_ptr<MmapVolume> volume,
                                MmapVolume::Open(path, options));
      return {std::unique_ptr<Volume>(std::move(volume))};
    }
  }
  return Status::InvalidArgument("unknown volume kind");
}

}  // namespace starfish
