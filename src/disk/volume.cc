#include "disk/volume.h"

#include <cstring>

#include "disk/direct_volume.h"
#include "disk/mem_volume.h"
#include "disk/mmap_volume.h"

namespace starfish {

std::string ToString(VolumeKind kind) {
  switch (kind) {
    case VolumeKind::kMem:
      return "mem";
    case VolumeKind::kMmap:
      return "mmap";
    case VolumeKind::kDirect:
      return "direct";
  }
  return "unknown";
}

Status Volume::WritePageUnmetered(PageId id, const char* src) {
  // Memory-addressable backends patch the page image in place; PeekPage is
  // merely a const view of writable extent memory. Backends without a
  // memory image override this with an unmetered device write.
  char* dst = const_cast<char*>(PeekPage(id));
  if (dst == nullptr) {
    return Status::OutOfRange("unmetered write to unknown page " +
                              std::to_string(id));
  }
  std::memcpy(dst, src, page_size());
  return Status::OK();
}

Result<std::unique_ptr<Volume>> CreateVolume(VolumeKind kind,
                                             DiskOptions options,
                                             const std::string& path) {
  switch (kind) {
    case VolumeKind::kMem:
      return {std::make_unique<MemVolume>(options)};
    case VolumeKind::kMmap: {
      STARFISH_ASSIGN_OR_RETURN(std::unique_ptr<MmapVolume> volume,
                                MmapVolume::Open(path, options));
      return {std::unique_ptr<Volume>(std::move(volume))};
    }
    case VolumeKind::kDirect: {
      STARFISH_ASSIGN_OR_RETURN(std::unique_ptr<DirectVolume> volume,
                                DirectVolume::Open(path, options));
      return {std::unique_ptr<Volume>(std::move(volume))};
    }
  }
  return Status::InvalidArgument("unknown volume kind");
}

}  // namespace starfish
