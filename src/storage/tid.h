#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "disk/page.h"

/// \file tid.h
/// Tuple/record identifiers — the "physical addresses" of the paper.
///
/// The paper's OIDs and LINK attributes are physical addresses of stored
/// records. A Tid names either a slot in a shared slotted page (small
/// records) or, with slot == kComplexRecordSlot, the root header page of a
/// multi-page complex record.

namespace starfish {

/// Slot number marking a Tid that points at the root page of a multi-page
/// complex record rather than at a slot in a shared page.
inline constexpr uint16_t kComplexRecordSlot = 0xFFFE;

/// Sentinel slot for "no record".
inline constexpr uint16_t kInvalidSlot = 0xFFFF;

/// Physical record address: page + slot.
struct Tid {
  PageId page = kInvalidPageId;
  uint16_t slot = kInvalidSlot;

  bool valid() const { return page != kInvalidPageId && slot != kInvalidSlot; }
  bool is_complex() const { return slot == kComplexRecordSlot; }

  bool operator==(const Tid& other) const {
    return page == other.page && slot == other.slot;
  }
  bool operator!=(const Tid& other) const { return !(*this == other); }
  bool operator<(const Tid& other) const {
    return page != other.page ? page < other.page : slot < other.slot;
  }

  /// Packs the address into 48 bits inside a uint64 (page:32, slot:16).
  uint64_t Pack() const {
    return (static_cast<uint64_t>(page) << 16) | slot;
  }
  static Tid Unpack(uint64_t packed) {
    Tid t;
    t.page = static_cast<PageId>(packed >> 16);
    t.slot = static_cast<uint16_t>(packed & 0xFFFF);
    return t;
  }

  std::string ToString() const {
    return "(" + std::to_string(page) + "," + std::to_string(slot) + ")";
  }
};

/// Invalid address constant.
inline constexpr Tid kInvalidTid{};

}  // namespace starfish

template <>
struct std::hash<starfish::Tid> {
  size_t operator()(const starfish::Tid& tid) const noexcept {
    return std::hash<uint64_t>()(tid.Pack());
  }
};
