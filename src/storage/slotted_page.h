#pragma once

#include <cstdint>
#include <string_view>

#include "disk/page.h"
#include "util/status.h"

/// \file slotted_page.h
/// In-page record organization for small records.
///
/// Small records (at most one page) live in slotted pages and share pages
/// with other records — the paper's `k` (tuples per page) falls out of this
/// layout. Records never span slotted pages, matching the DASDBS rule that
/// small tuples do not cross page boundaries.
///
/// Physical layout (page size P, header H = 36 bytes):
///
///   [0,  H)                     page header (magic, type, counts, ...)
///   [H,  H + 4*slot_count)      slot directory, 4 bytes per slot
///   [heap_start, P)             record heap, grows downward
///
/// The page is compacted eagerly on delete/shrink, so free space is always
/// the single gap between the slot directory and the heap.

namespace starfish {

/// Tag stored in the page header identifying how a page is used.
enum class PageType : uint16_t {
  kFree = 0,
  kSlotted = 1,           ///< shared page of small records
  kComplexHeader = 2,     ///< root header page of a multi-page complex record
  kComplexHeaderExt = 3,  ///< continuation header page (directory overflow)
  kComplexData = 4,       ///< data page of a multi-page complex record
  kPool = 5,              ///< page-pool page of the change-attribute protocol
  kIndex = 6,             ///< persistent B+-tree node
};

/// A non-owning view over one page image that interprets it as a slotted
/// page. All mutators require the caller to hold the page fixed for write
/// and to mark it dirty afterwards.
class SlottedPage {
 public:
  /// Wraps an existing page image. `data` must point at `page_size` bytes.
  SlottedPage(char* data, uint32_t page_size)
      : data_(data), page_size_(page_size) {}

  /// Formats a fresh page: writes the header, zero slots, empty heap.
  void Init(uint32_t segment_id, PageType type);

  /// True if the header magic marks this page as formatted by starfish.
  bool IsFormatted() const;

  PageType type() const;
  uint32_t segment_id() const;

  /// Number of slot directory entries (free slots included).
  uint16_t slot_count() const;

  /// Number of live (non-empty) records.
  uint16_t live_count() const;

  /// Bytes available for a new record, accounting for a possibly needed new
  /// slot directory entry.
  uint32_t FreeSpaceForNewRecord() const;

  /// Maximum record payload an empty page can hold.
  static uint32_t MaxRecordSize(uint32_t page_size);

  /// Inserts a record; returns its slot. Fails with ResourceExhausted when
  /// the record does not fit.
  Result<uint16_t> Insert(std::string_view record);

  /// Reads a live record. The view is valid while the page stays fixed.
  Result<std::string_view> Read(uint16_t slot) const;

  /// Replaces the record in `slot`, keeping the slot id stable.
  /// Fails with ResourceExhausted when the new record does not fit.
  Status Update(uint16_t slot, std::string_view record);

  /// Removes the record and compacts the heap. The slot becomes reusable.
  Status Delete(uint16_t slot);

 private:
  uint16_t heap_start() const;
  void set_heap_start(uint16_t value);
  void set_slot_count(uint16_t value);
  uint16_t slot_offset(uint16_t slot) const;
  uint16_t slot_length(uint16_t slot) const;
  void set_slot(uint16_t slot, uint16_t offset, uint16_t length);
  Status CheckLiveSlot(uint16_t slot) const;

  /// Removes the byte range of a record from the heap, shifting records that
  /// live below it and fixing their slots.
  void EraseFromHeap(uint16_t offset, uint16_t length);

  char* data_;
  uint32_t page_size_;
};

}  // namespace starfish
