#include "storage/storage_engine.h"

namespace starfish {

StorageEngine::StorageEngine(StorageEngineOptions options)
    : disk_(options.disk), buffer_(&disk_, options.buffer) {}

Result<Segment*> StorageEngine::CreateSegment(const std::string& name) {
  if (by_name_.count(name) > 0) {
    return Status::AlreadyExists("segment '" + name + "' already exists");
  }
  const uint32_t id = static_cast<uint32_t>(segments_.size());
  segments_.push_back(std::make_unique<Segment>(id, name, &buffer_));
  Segment* segment = segments_.back().get();
  by_name_[name] = segment;
  return segment;
}

Segment* StorageEngine::GetSegment(const std::string& name) {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : it->second;
}

std::vector<Segment*> StorageEngine::segments() {
  std::vector<Segment*> out;
  out.reserve(segments_.size());
  for (const auto& segment : segments_) out.push_back(segment.get());
  return out;
}

EngineStats StorageEngine::stats() const {
  return EngineStats{disk_.stats(), buffer_.stats()};
}

void StorageEngine::ResetStats() {
  disk_.ResetStats();
  buffer_.ResetStats();
}

}  // namespace starfish
