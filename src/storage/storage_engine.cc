#include "storage/storage_engine.h"

#include <algorithm>
#include <unordered_set>

#include "disk/mem_volume.h"
#include "util/coding.h"

namespace starfish {

StorageEngine::StorageEngine(StorageEngineOptions options)
    : options_(std::move(options)) {
  auto volume_or = CreateVolume(options_.backend, options_.disk, options_.path);
  if (volume_or.ok()) {
    volume_ = std::move(volume_or).value();
  } else {
    // Keep the engine usable for callers that cannot observe a constructor
    // failure; Open() turns this into a proper error.
    init_status_ = volume_or.status();
    volume_ = std::make_unique<MemVolume>(options_.disk);
  }
  if (options_.volume_decorator) {
    volume_ = options_.volume_decorator(std::move(volume_));
  }
  if (options_.timed) {
    auto timed = std::make_unique<TimedVolume>(std::move(volume_),
                                               options_.timing);
    timed_ = timed.get();
    volume_ = std::move(timed);
  }
  // Let a direct-I/O backend DMA page reads straight into the frames: the
  // buffer arena adopts the volume's preferred alignment (decorators
  // forward it; 0 for the memory-addressable backends).
  options_.buffer.frame_alignment = std::max(
      options_.buffer.frame_alignment, volume_->io_buffer_alignment());
  buffer_ = std::make_unique<BufferManager>(volume_.get(), options_.buffer);
}

Result<std::unique_ptr<StorageEngine>> StorageEngine::Open(
    StorageEngineOptions options) {
  auto engine = std::make_unique<StorageEngine>(std::move(options));
  STARFISH_RETURN_NOT_OK(engine->init_status());
  return engine;
}

Result<Segment*> StorageEngine::CreateSegment(const std::string& name) {
  if (by_name_.count(name) > 0) {
    return Status::AlreadyExists("segment '" + name + "' already exists");
  }
  const uint32_t id = static_cast<uint32_t>(segments_.size());
  segments_.push_back(std::make_unique<Segment>(id, name, buffer_.get()));
  Segment* segment = segments_.back().get();
  by_name_[name] = segment;
  return segment;
}

Result<Segment*> StorageEngine::OpenOrCreateSegment(const std::string& name) {
  auto it = by_name_.find(name);
  if (it != by_name_.end()) return it->second;
  return CreateSegment(name);
}

Segment* StorageEngine::GetSegment(const std::string& name) {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : it->second;
}

std::vector<Segment*> StorageEngine::segments() {
  std::vector<Segment*> out;
  out.reserve(segments_.size());
  for (const auto& segment : segments_) out.push_back(segment.get());
  return out;
}

std::vector<PageId> StorageEngine::AllSegmentPages() const {
  std::vector<PageId> out;
  for (const auto& segment : segments_) {
    out.insert(out.end(), segment->pages().begin(), segment->pages().end());
  }
  return out;
}

Status StorageEngine::ScrubSlottedRecords(const std::vector<Tid>& live) {
  std::unordered_set<uint64_t> keep;
  keep.reserve(live.size());
  for (const Tid& tid : live) keep.insert(tid.Pack());

  const uint32_t page_size = volume_->page_size();
  for (const auto& segment : segments_) {
    for (PageId page : segment->pages()) {
      if (segment->TypeHint(page) != PageType::kSlotted) continue;
      STARFISH_ASSIGN_OR_RETURN(PageGuard guard, buffer_->Fix(page));
      SlottedPage view(guard.data(), page_size);
      if (!view.IsFormatted()) {
        return Status::Corruption("cataloged slotted page " +
                                  std::to_string(page) +
                                  " has no formatted header");
      }
      bool scrubbed = false;
      const uint16_t slots = view.slot_count();
      for (uint16_t slot = 0; slot < slots; ++slot) {
        if (!view.Read(slot).ok()) continue;  // already empty
        if (keep.count(Tid{page, slot}.Pack()) > 0) continue;
        STARFISH_RETURN_NOT_OK(view.Delete(slot));
        scrubbed = true;
      }
      if (scrubbed) guard.MarkDirty();
      // Recompute the hint from the actual content either way: a fallback
      // can also leave hints claiming MORE space than the page has.
      segment->SetFreeHint(page, view.FreeSpaceForNewRecord());
    }
  }
  return Status::OK();
}

EngineStats StorageEngine::stats() const {
  return EngineStats{volume_->stats(), buffer_->stats()};
}

void StorageEngine::ResetStats() {
  volume_->ResetStats();
  buffer_->ResetStats();
}

void StorageEngine::SaveCatalog(std::string* out) const {
  PutFixed32(out, static_cast<uint32_t>(segments_.size()));
  for (const auto& segment : segments_) {
    PutLengthPrefixed(out, segment->name());
    segment->SaveState(out);
  }
}

Status StorageEngine::LoadCatalog(std::string_view* in) {
  uint32_t count = 0;
  if (!GetFixed32(in, &count)) {
    return Status::Corruption("engine catalog: truncated segment count");
  }
  for (uint32_t i = 0; i < count; ++i) {
    std::string_view name;
    if (!GetLengthPrefixed(in, &name)) {
      return Status::Corruption("engine catalog: truncated segment name");
    }
    STARFISH_ASSIGN_OR_RETURN(Segment * segment,
                              OpenOrCreateSegment(std::string(name)));
    STARFISH_RETURN_NOT_OK(segment->LoadState(in));
  }
  return Status::OK();
}

}  // namespace starfish
