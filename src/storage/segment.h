#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "buffer/buffer_manager.h"
#include "disk/page.h"
#include "storage/slotted_page.h"
#include "util/status.h"

/// \file segment.h
/// A segment is the page set of one stored relation.
///
/// Each relation of each storage model (e.g. `NSM_Connection`,
/// `DSM_Station`) lives in its own segment. The segment tracks which pages
/// belong to it, in allocation order; scans walk this list. Page ids grow
/// monotonically, so a segment loaded in one go is nearly contiguous on disk
/// and scan prefetching can batch it into few I/O calls — this is exactly
/// the physical clustering the paper's Equations 6/7 describe.
///
/// The page list itself is kept in memory. A production system would
/// persist it in a page directory; its I/O is deliberately *not* metered,
/// matching the paper ("we did not account for additional I/Os needed to
/// access the data dictionary").
///
/// Concurrency: each segment carries its own write latch. Mutating methods
/// (and the hint accessors they race with) self-latch, and RecordManager
/// holds the latch across a whole record op — so writers to DIFFERENT
/// segments proceed in parallel (raw page allocation is serialized inside
/// the volume), while writers to the same segment serialize only against
/// each other. The latch is recursive precisely for that two-level
/// pattern. Requires a thread-safe buffer pool (shard_count != 1) when
/// actually used from multiple threads. Reads of record *contents* are the
/// caller's problem (the store-level contract still forbids reads
/// concurrent with writes to the same store).

namespace starfish {

/// Page set + free-space bookkeeping of one relation.
class Segment {
 public:
  Segment(uint32_t id, std::string name, BufferManager* buffer)
      : id_(id), name_(std::move(name)), buffer_(buffer) {}

  Segment(const Segment&) = delete;
  Segment& operator=(const Segment&) = delete;

  uint32_t id() const { return id_; }
  const std::string& name() const { return name_; }
  BufferManager* buffer() { return buffer_; }
  const BufferManager* buffer() const { return buffer_; }

  /// Pages of this segment in allocation order.
  const std::vector<PageId>& pages() const { return pages_; }

  /// How freshly allocated pages are brought into the buffer for formatting.
  enum class PageInitMode {
    /// Materialize zero-filled frames with no metered read
    /// (BufferManager::FixFresh) — the default: the formatter overwrites
    /// the bytes anyway, so reading them from disk first is pure waste.
    kFreshZeroed,
    /// Fault each page in through the metered read path. Used where the
    /// fault-in cost is part of the modelled protocol (the DASDBS
    /// change-attribute page pool is opened inside the measured operation).
    kPrefault,
  };

  /// Allocates and formats one page of the given type. The fresh page is
  /// resident and dirty afterwards (it will reach disk on write-back).
  Result<PageId> AllocatePage(PageType type);

  /// Allocates `n` physically contiguous pages (a complex-record run),
  /// formats each with the given type. The run is allocated from the volume
  /// in one call and formatted batch-style according to `mode`.
  Result<PageId> AllocateRun(uint32_t n, PageType type,
                             PageInitMode mode = PageInitMode::kFreshZeroed);

  /// Releases pages back to the disk and removes them from the segment.
  Status FreePages(const std::vector<PageId>& ids);

  /// Free-space hint for slotted pages (bytes available for a new record,
  /// slot entry included). Only meaningful for pages allocated as kSlotted.
  uint32_t FreeHint(PageId id) const;
  void SetFreeHint(PageId id, uint32_t free_bytes);

  /// Page-type hint from the in-memory catalog (kFree when unknown). Lets
  /// projection-pushdown scans skip data pages without reading them; kept
  /// in sync by whoever formats pages.
  PageType TypeHint(PageId id) const;
  void SetTypeHint(PageId id, PageType type);

  /// Returns the most recently allocated slotted page with at least
  /// `bytes` of room, or kInvalidPageId. Insertion policy "fill the current
  /// page, then open a new one" keeps records clustered in insert order.
  PageId FindSlottedPageWithSpace(uint32_t bytes) const;

  /// Serializes the page list and hints (persistent-store catalog).
  void SaveState(std::string* out) const;

  /// Restores the state written by SaveState, consuming it from `*in`.
  /// Replaces any current content of the segment.
  Status LoadState(std::string_view* in);

  /// This segment's write latch (see the file comment). Held recursively by
  /// RecordManager across whole record ops.
  std::recursive_mutex& write_latch() const { return write_mu_; }

 private:
  uint32_t id_;
  std::string name_;
  BufferManager* buffer_;
  std::vector<PageId> pages_;
  // Parallel free-space hints; index matches pages_. ~0u marks non-slotted.
  std::vector<uint32_t> free_hints_;
  // Parallel page-type hints; index matches pages_.
  std::vector<PageType> type_hints_;
  // page id -> index into pages_/free_hints_, for O(1) hint updates.
  std::unordered_map<PageId, size_t> page_index_;
  // Guards pages_/free_hints_/type_hints_/page_index_ against concurrent
  // writers of OTHER record ops on this segment.
  mutable std::recursive_mutex write_mu_;
};

}  // namespace starfish
