#include "storage/record_manager.h"

#include "util/coding.h"

namespace starfish {

namespace {

// A forwarding stub is the kind byte plus the packed target TID.
constexpr size_t kStubSize = 1 + 8;

std::string MakeStub(const Tid& target) {
  std::string stub;
  stub.push_back(1);  // kForwardStub
  PutFixed64(&stub, target.Pack());
  return stub;
}

}  // namespace

uint32_t RecordManager::MaxRecordSize() const {
  return SlottedPage::MaxRecordSize(segment_->buffer()->disk()->page_size()) - 1;
}

Result<Tid> RecordManager::Insert(std::string_view record) {
  return InsertWithKind(record, kPlain);
}

Result<Tid> RecordManager::InsertWithKind(std::string_view record, char kind) {
  // Whole-op latch: the find-space / allocate / insert / hint-update
  // sequence must be atomic against other writers of this segment. Writers
  // of other segments proceed in parallel (per-segment latching).
  std::lock_guard<std::recursive_mutex> latch(segment_->write_latch());
  if (record.size() > MaxRecordSize()) {
    return Status::InvalidArgument("record too large for RecordManager: " +
                                   std::to_string(record.size()) + " bytes");
  }
  std::string framed;
  framed.reserve(record.size() + 1);
  framed.push_back(kind);
  framed.append(record);

  const uint32_t needed =
      static_cast<uint32_t>(framed.size()) + 4;  // + slot entry
  PageId page = segment_->FindSlottedPageWithSpace(needed);
  if (page == kInvalidPageId) {
    STARFISH_ASSIGN_OR_RETURN(page, segment_->AllocatePage(PageType::kSlotted));
  }
  STARFISH_ASSIGN_OR_RETURN(PageGuard guard, segment_->buffer()->Fix(page));
  SlottedPage view(guard.data(), segment_->buffer()->disk()->page_size());
  STARFISH_ASSIGN_OR_RETURN(uint16_t slot, view.Insert(framed));
  guard.MarkDirty();
  segment_->SetFreeHint(page, view.FreeSpaceForNewRecord());
  return Tid{page, slot};
}

Result<std::string> RecordManager::Read(const Tid& tid) const {
  STARFISH_ASSIGN_OR_RETURN(PageGuard guard, segment_->buffer()->Fix(tid.page));
  SlottedPage view(guard.data(), segment_->buffer()->disk()->page_size());
  STARFISH_ASSIGN_OR_RETURN(std::string_view framed, view.Read(tid.slot));
  if (framed.empty()) return Status::Corruption("empty framed record");
  if (framed[0] == kForwardStub) {
    if (framed.size() != kStubSize) {
      return Status::Corruption("malformed forwarding stub at " + tid.ToString());
    }
    const Tid target = Tid::Unpack(DecodeFixed64(framed.data() + 1));
    STARFISH_ASSIGN_OR_RETURN(PageGuard tguard,
                              segment_->buffer()->Fix(target.page));
    SlottedPage tview(tguard.data(), segment_->buffer()->disk()->page_size());
    STARFISH_ASSIGN_OR_RETURN(std::string_view tframed, tview.Read(target.slot));
    if (tframed.empty() || tframed[0] != kMovedPayload) {
      return Status::Corruption("stub at " + tid.ToString() +
                                " points to non-moved record");
    }
    return std::string(tframed.substr(1));
  }
  return std::string(framed.substr(1));
}

Result<Tid> RecordManager::ForwardTarget(const Tid& home) const {
  STARFISH_ASSIGN_OR_RETURN(PageGuard guard,
                            segment_->buffer()->Fix(home.page));
  SlottedPage view(guard.data(), segment_->buffer()->disk()->page_size());
  auto framed_or = view.Read(home.slot);
  if (!framed_or.ok()) return kInvalidTid;  // empty slot: no stub to follow
  const std::string_view framed = framed_or.value();
  if (framed.size() != kStubSize || framed[0] != kForwardStub) {
    return kInvalidTid;
  }
  return Tid::Unpack(DecodeFixed64(framed.data() + 1));
}

Status RecordManager::Update(const Tid& tid, std::string_view record) {
  std::lock_guard<std::recursive_mutex> latch(segment_->write_latch());
  if (record.size() > MaxRecordSize()) {
    return Status::InvalidArgument("updated record too large");
  }
  STARFISH_ASSIGN_OR_RETURN(PageGuard guard, segment_->buffer()->Fix(tid.page));
  SlottedPage view(guard.data(), segment_->buffer()->disk()->page_size());
  STARFISH_ASSIGN_OR_RETURN(std::string_view framed, view.Read(tid.slot));
  if (framed.empty()) return Status::Corruption("empty framed record");

  if (framed[0] == kForwardStub) {
    // Update the moved copy; if it no longer fits there, move it again and
    // repoint the home stub. A failed page update is non-destructive, so
    // the old copy survives until the new one is in place.
    const Tid target = Tid::Unpack(DecodeFixed64(framed.data() + 1));
    std::string moved;
    moved.push_back(kMovedPayload);
    moved.append(record);
    {
      STARFISH_ASSIGN_OR_RETURN(PageGuard tguard,
                                segment_->buffer()->Fix(target.page));
      SlottedPage tview(tguard.data(), segment_->buffer()->disk()->page_size());
      Status st = tview.Update(target.slot, moved);
      if (st.ok()) {
        tguard.MarkDirty();
        segment_->SetFreeHint(target.page, tview.FreeSpaceForNewRecord());
        return Status::OK();
      }
      if (!st.IsResourceExhausted()) return st;
    }
    STARFISH_ASSIGN_OR_RETURN(Tid new_target,
                              InsertWithKind(record, kMovedPayload));
    const std::string stub = MakeStub(new_target);
    STARFISH_RETURN_NOT_OK(view.Update(tid.slot, stub));
    guard.MarkDirty();
    // Drop the superseded copy.
    STARFISH_ASSIGN_OR_RETURN(PageGuard tguard,
                              segment_->buffer()->Fix(target.page));
    SlottedPage tview(tguard.data(), segment_->buffer()->disk()->page_size());
    STARFISH_RETURN_NOT_OK(tview.Delete(target.slot));
    tguard.MarkDirty();
    segment_->SetFreeHint(target.page, tview.FreeSpaceForNewRecord());
    return Status::OK();
  }

  // Plain record: try in place.
  std::string framed_new;
  framed_new.push_back(framed[0]);  // keep kind
  framed_new.append(record);
  Status st = view.Update(tid.slot, framed_new);
  if (st.ok()) {
    guard.MarkDirty();
    segment_->SetFreeHint(tid.page, view.FreeSpaceForNewRecord());
    return Status::OK();
  }
  if (!st.IsResourceExhausted()) return st;

  // Did not fit: move the payload elsewhere and shrink the home slot to a
  // forwarding stub (always fits when the old record was at least stub
  // sized; otherwise report the page as full).
  STARFISH_ASSIGN_OR_RETURN(Tid target, InsertWithKind(record, kMovedPayload));
  const std::string stub = MakeStub(target);
  Status stub_st = view.Update(tid.slot, stub);
  if (!stub_st.ok()) {
    return Status::ResourceExhausted(
        "no room for forwarding stub on page " + std::to_string(tid.page));
  }
  guard.MarkDirty();
  segment_->SetFreeHint(tid.page, view.FreeSpaceForNewRecord());
  return Status::OK();
}

Status RecordManager::Delete(const Tid& tid) {
  std::lock_guard<std::recursive_mutex> latch(segment_->write_latch());
  STARFISH_ASSIGN_OR_RETURN(PageGuard guard, segment_->buffer()->Fix(tid.page));
  SlottedPage view(guard.data(), segment_->buffer()->disk()->page_size());
  STARFISH_ASSIGN_OR_RETURN(std::string_view framed, view.Read(tid.slot));
  if (!framed.empty() && framed[0] == kForwardStub) {
    const Tid target = Tid::Unpack(DecodeFixed64(framed.data() + 1));
    STARFISH_ASSIGN_OR_RETURN(PageGuard tguard,
                              segment_->buffer()->Fix(target.page));
    SlottedPage tview(tguard.data(), segment_->buffer()->disk()->page_size());
    STARFISH_RETURN_NOT_OK(tview.Delete(target.slot));
    tguard.MarkDirty();
    segment_->SetFreeHint(target.page, tview.FreeSpaceForNewRecord());
  }
  STARFISH_RETURN_NOT_OK(view.Delete(tid.slot));
  guard.MarkDirty();
  segment_->SetFreeHint(tid.page, view.FreeSpaceForNewRecord());
  return Status::OK();
}

Status RecordManager::ForEachOnPage(
    PageId page,
    const std::function<Status(Tid, std::string_view)>& fn) const {
  STARFISH_ASSIGN_OR_RETURN(PageGuard guard, segment_->buffer()->Fix(page));
  SlottedPage view(guard.data(), segment_->buffer()->disk()->page_size());
  if (view.type() != PageType::kSlotted) return Status::OK();
  const uint16_t n = view.slot_count();
  for (uint16_t s = 0; s < n; ++s) {
    auto rec = view.Read(s);
    if (!rec.ok()) continue;  // free slot
    const std::string_view framed = rec.value();
    if (framed.empty()) continue;
    if (framed[0] == kMovedPayload) continue;  // visited via its home stub
    if (framed[0] == kForwardStub) {
      // Follow the stub so every record is visited exactly once, at its
      // home TID (costs one extra page fix, as real TID forwarding does).
      const Tid target = Tid::Unpack(DecodeFixed64(framed.data() + 1));
      STARFISH_ASSIGN_OR_RETURN(PageGuard tguard,
                                segment_->buffer()->Fix(target.page));
      SlottedPage tview(tguard.data(), segment_->buffer()->disk()->page_size());
      STARFISH_ASSIGN_OR_RETURN(std::string_view tframed,
                                tview.Read(target.slot));
      if (tframed.empty() || tframed[0] != kMovedPayload) {
        return Status::Corruption("dangling forwarding stub at " +
                                  Tid{page, s}.ToString());
      }
      STARFISH_RETURN_NOT_OK(fn(Tid{page, s}, tframed.substr(1)));
      continue;
    }
    STARFISH_RETURN_NOT_OK(fn(Tid{page, s}, framed.substr(1)));
  }
  return Status::OK();
}

}  // namespace starfish
