#include "storage/complex_record.h"

#include <algorithm>
#include <cstring>
#include <map>

#include "util/coding.h"
#include "util/math_util.h"

namespace starfish {

namespace {

// Fixed large-record header, laid out after the 36-byte page header.
constexpr uint32_t kRegionCountOff = kPageHeaderSize + 0;   // u16
constexpr uint32_t kHeaderPagesOff = kPageHeaderSize + 2;   // u16
constexpr uint32_t kDataPagesOff = kPageHeaderSize + 4;     // u16
constexpr uint32_t kAuxAllocOff = kPageHeaderSize + 6;      // u16
constexpr uint32_t kAuxFirstOff = kPageHeaderSize + 8;      // u32
constexpr uint32_t kStreamBytesOff = kPageHeaderSize + 12;  // u32
constexpr uint32_t kRootDirOff = kPageHeaderSize + 16;

constexpr uint32_t kDirEntrySize = 12;  // u32 tag + u32 offset + u32 length

}  // namespace

void ComplexRecordStore::LayoutStream(const std::vector<RecordRegion>& regions,
                                      std::vector<DirEntry>* dir,
                                      uint32_t* stream_len) const {
  const uint32_t chunk = ChunkSize();
  uint32_t cursor = 0;
  dir->clear();
  dir->reserve(regions.size());
  for (const RecordRegion& region : regions) {
    const uint32_t len = static_cast<uint32_t>(region.bytes.size());
    const uint32_t rem = chunk - (cursor % chunk);
    // Regions that fit one page never straddle a page boundary (sub-tuples
    // do not span pages); the skipped tail is internal waste.
    if (len <= chunk && len > rem) cursor += rem;
    dir->push_back(DirEntry{region.tag, cursor, len});
    cursor += len;
  }
  *stream_len = cursor;
}

uint32_t ComplexRecordStore::HeaderPagesFor(uint32_t n) const {
  const uint32_t root_cap = (page_size() - kRootDirOff) / kDirEntrySize;
  if (n <= root_cap) return 1;
  const uint32_t ext_cap = ChunkSize() / kDirEntrySize;
  return 1 + (n - root_cap + ext_cap - 1) / ext_cap;
}

std::string ComplexRecordStore::EncodeSmall(
    const std::vector<RecordRegion>& regions) {
  std::string out;
  PutFixed16(&out, static_cast<uint16_t>(regions.size()));
  for (const RecordRegion& region : regions) {
    PutFixed32(&out, region.tag);
    PutFixed16(&out, static_cast<uint16_t>(region.bytes.size()));
  }
  for (const RecordRegion& region : regions) {
    out.append(region.bytes);
  }
  return out;
}

Status ComplexRecordStore::DecodeSmall(std::string_view payload,
                                       std::vector<RecordRegion>* regions) {
  regions->clear();
  if (payload.size() < 2) return Status::Corruption("small record truncated");
  const uint16_t n = DecodeFixed16(payload.data());
  size_t dir_off = 2;
  size_t data_off = 2 + static_cast<size_t>(n) * 6;
  if (payload.size() < data_off) {
    return Status::Corruption("small record directory truncated");
  }
  regions->reserve(n);
  for (uint16_t i = 0; i < n; ++i) {
    const uint32_t tag = DecodeFixed32(payload.data() + dir_off);
    const uint16_t len = DecodeFixed16(payload.data() + dir_off + 4);
    dir_off += 6;
    if (payload.size() < data_off + len) {
      return Status::Corruption("small record data truncated");
    }
    regions->push_back(RecordRegion{tag, std::string(payload.substr(data_off, len))});
    data_off += len;
  }
  return Status::OK();
}

uint32_t ComplexRecordStore::SmallEncodedSize(
    const std::vector<RecordRegion>& regions) const {
  uint32_t size = 2;
  for (const RecordRegion& region : regions) {
    size += 6 + static_cast<uint32_t>(region.bytes.size());
  }
  return size;
}

Result<Tid> ComplexRecordStore::Insert(const std::vector<RecordRegion>& regions) {
  const uint32_t small_size = SmallEncodedSize(regions);
  if (!options_.force_large && small_size <= records_.MaxRecordSize()) {
    return records_.Insert(EncodeSmall(regions));
  }

  std::vector<DirEntry> dir;
  uint32_t stream_len = 0;
  LayoutStream(regions, &dir, &stream_len);

  LargeHeader hdr;
  hdr.region_count = static_cast<uint16_t>(regions.size());
  hdr.header_pages = static_cast<uint16_t>(HeaderPagesFor(hdr.region_count));
  hdr.data_pages =
      static_cast<uint16_t>(std::max<uint32_t>(1, CeilDiv(stream_len, ChunkSize())));
  hdr.aux_alloc = static_cast<uint16_t>((hdr.header_pages - 1) + hdr.data_pages);
  hdr.stream_bytes = stream_len;

  STARFISH_ASSIGN_OR_RETURN(PageId root,
                            segment_->AllocatePage(PageType::kComplexHeader));
  STARFISH_ASSIGN_OR_RETURN(hdr.aux_first,
                            segment_->AllocateRun(hdr.aux_alloc,
                                                  PageType::kComplexData));
  STARFISH_RETURN_NOT_OK(WriteLarge(root, hdr, dir, regions));
  return Tid{root, kComplexRecordSlot};
}

Status ComplexRecordStore::WriteLarge(PageId root, const LargeHeader& hdr,
                                      const std::vector<DirEntry>& dir,
                                      const std::vector<RecordRegion>& regions) {
  const uint32_t psize = page_size();
  const uint32_t chunk = ChunkSize();
  const uint32_t root_cap = (psize - kRootDirOff) / kDirEntrySize;
  const uint32_t ext_cap = chunk / kDirEntrySize;

  auto encode_entry = [](char* dst, const DirEntry& e) {
    EncodeFixed32(dst, e.tag);
    EncodeFixed32(dst + 4, e.stream_offset);
    EncodeFixed32(dst + 8, e.length);
  };

  // Root header page.
  {
    STARFISH_ASSIGN_OR_RETURN(PageGuard guard, segment_->buffer()->Fix(root));
    SlottedPage view(guard.data(), psize);
    view.Init(segment_->id(), PageType::kComplexHeader);
    EncodeFixed16(guard.data() + kRegionCountOff, hdr.region_count);
    EncodeFixed16(guard.data() + kHeaderPagesOff, hdr.header_pages);
    EncodeFixed16(guard.data() + kDataPagesOff, hdr.data_pages);
    EncodeFixed16(guard.data() + kAuxAllocOff, hdr.aux_alloc);
    EncodeFixed32(guard.data() + kAuxFirstOff, hdr.aux_first);
    EncodeFixed32(guard.data() + kStreamBytesOff, hdr.stream_bytes);
    const uint32_t n_root = std::min<uint32_t>(root_cap, hdr.region_count);
    for (uint32_t i = 0; i < n_root; ++i) {
      encode_entry(guard.data() + kRootDirOff + i * kDirEntrySize, dir[i]);
    }
    guard.MarkDirty();
  }

  // Continuation header pages.
  for (uint32_t hp = 0; hp + 1 < hdr.header_pages; ++hp) {
    const PageId page = hdr.aux_first + hp;
    STARFISH_ASSIGN_OR_RETURN(PageGuard guard, segment_->buffer()->Fix(page));
    SlottedPage view(guard.data(), psize);
    view.Init(segment_->id(), PageType::kComplexHeaderExt);
    segment_->SetTypeHint(page, PageType::kComplexHeaderExt);
    const uint32_t begin = root_cap + hp * ext_cap;
    const uint32_t end =
        std::min<uint32_t>(hdr.region_count, begin + ext_cap);
    for (uint32_t i = begin; i < end; ++i) {
      encode_entry(guard.data() + kPageHeaderSize + (i - begin) * kDirEntrySize,
                   dir[i]);
    }
    guard.MarkDirty();
  }

  // Assemble the data stream, then write it chunk by chunk.
  std::string stream(hdr.stream_bytes, '\0');
  for (size_t i = 0; i < dir.size(); ++i) {
    std::memcpy(stream.data() + dir[i].stream_offset, regions[i].bytes.data(),
                regions[i].bytes.size());
  }
  for (uint32_t dp = 0; dp < hdr.data_pages; ++dp) {
    const PageId page = hdr.aux_first + (hdr.header_pages - 1) + dp;
    STARFISH_ASSIGN_OR_RETURN(PageGuard guard, segment_->buffer()->Fix(page));
    SlottedPage view(guard.data(), psize);
    view.Init(segment_->id(), PageType::kComplexData);
    segment_->SetTypeHint(page, PageType::kComplexData);
    const uint32_t begin = dp * chunk;
    const uint32_t end = std::min<uint32_t>(hdr.stream_bytes, begin + chunk);
    if (end > begin) {
      std::memcpy(guard.data() + kPageHeaderSize, stream.data() + begin,
                  end - begin);
    }
    guard.MarkDirty();
  }
  return Status::OK();
}

Status ComplexRecordStore::ReadHeader(PageId root, LargeHeader* hdr,
                                      std::vector<DirEntry>* dir) const {
  const uint32_t psize = page_size();
  const uint32_t root_cap = (psize - kRootDirOff) / kDirEntrySize;
  const uint32_t ext_cap = ChunkSize() / kDirEntrySize;

  auto decode_entry = [](const char* src) {
    DirEntry e;
    e.tag = DecodeFixed32(src);
    e.stream_offset = DecodeFixed32(src + 4);
    e.length = DecodeFixed32(src + 8);
    return e;
  };

  // DASDBS call pattern, part 1: a dedicated read call for the root page.
  {
    STARFISH_ASSIGN_OR_RETURN(PageGuard guard,
                              segment_->buffer()->Fix(root));
    SlottedPage view(guard.data(), psize);
    if (view.type() != PageType::kComplexHeader) {
      return Status::InvalidArgument("page " + std::to_string(root) +
                                     " is not a complex record root");
    }
    hdr->region_count = DecodeFixed16(guard.data() + kRegionCountOff);
    hdr->header_pages = DecodeFixed16(guard.data() + kHeaderPagesOff);
    hdr->data_pages = DecodeFixed16(guard.data() + kDataPagesOff);
    hdr->aux_alloc = DecodeFixed16(guard.data() + kAuxAllocOff);
    hdr->aux_first = DecodeFixed32(guard.data() + kAuxFirstOff);
    hdr->stream_bytes = DecodeFixed32(guard.data() + kStreamBytesOff);
    dir->clear();
    dir->reserve(hdr->region_count);
    const uint32_t n_root = std::min<uint32_t>(root_cap, hdr->region_count);
    for (uint32_t i = 0; i < n_root; ++i) {
      dir->push_back(decode_entry(guard.data() + kRootDirOff + i * kDirEntrySize));
    }
  }

  // Part 2: the remaining header pages in one chained call.
  if (hdr->header_pages > 1) {
    std::vector<PageId> ext_pages;
    for (uint32_t hp = 0; hp + 1 < hdr->header_pages; ++hp) {
      ext_pages.push_back(hdr->aux_first + hp);
    }
    STARFISH_RETURN_NOT_OK(
        segment_->buffer()->Prefetch(ext_pages, PrefetchMode::kChained));
    for (uint32_t hp = 0; hp + 1 < hdr->header_pages; ++hp) {
      STARFISH_ASSIGN_OR_RETURN(PageGuard guard,
                                segment_->buffer()->Fix(ext_pages[hp]));
      const uint32_t begin = root_cap + hp * ext_cap;
      const uint32_t end =
          std::min<uint32_t>(hdr->region_count, begin + ext_cap);
      for (uint32_t i = begin; i < end; ++i) {
        dir->push_back(decode_entry(guard.data() + kPageHeaderSize +
                                    (i - begin) * kDirEntrySize));
      }
    }
  }
  return Status::OK();
}

PageId ComplexRecordStore::DataPage(const LargeHeader& hdr,
                                    uint32_t chunk) const {
  return hdr.aux_first + (hdr.header_pages - 1) + chunk;
}

Result<std::vector<RecordRegion>> ComplexRecordStore::ReadAll(
    const Tid& tid) const {
  return ReadPartial(tid, [](uint32_t) { return true; });
}

Result<std::vector<RecordRegion>> ComplexRecordStore::ReadPartial(
    const Tid& tid, const std::function<bool(uint32_t)>& want) const {
  if (!tid.is_complex()) {
    STARFISH_ASSIGN_OR_RETURN(std::string payload, records_.Read(tid));
    std::vector<RecordRegion> all;
    STARFISH_RETURN_NOT_OK(DecodeSmall(payload, &all));
    std::vector<RecordRegion> out;
    for (auto& region : all) {
      if (want(region.tag)) out.push_back(std::move(region));
    }
    return out;
  }

  LargeHeader hdr;
  std::vector<DirEntry> dir;
  STARFISH_RETURN_NOT_OK(ReadHeader(tid.page, &hdr, &dir));

  const uint32_t chunk = ChunkSize();
  std::vector<size_t> selected;
  for (size_t i = 0; i < dir.size(); ++i) {
    if (want(dir[i].tag)) selected.push_back(i);
  }

  // Chunk -> list of (selected index) overlapping it.
  std::map<uint32_t, std::vector<size_t>> by_chunk;
  for (size_t sel : selected) {
    const DirEntry& e = dir[sel];
    if (e.length == 0) continue;
    const uint32_t first = e.stream_offset / chunk;
    const uint32_t last = (e.stream_offset + e.length - 1) / chunk;
    for (uint32_t c = first; c <= last; ++c) by_chunk[c].push_back(sel);
  }

  // DASDBS call pattern, part 3: the needed data pages in one chained call.
  std::vector<PageId> needed_pages;
  needed_pages.reserve(by_chunk.size());
  for (const auto& [c, _] : by_chunk) needed_pages.push_back(DataPage(hdr, c));
  if (!needed_pages.empty()) {
    STARFISH_RETURN_NOT_OK(
        segment_->buffer()->Prefetch(needed_pages, PrefetchMode::kChained));
  }

  std::vector<RecordRegion> out(selected.size());
  std::vector<size_t> pos_of(dir.size(), 0);
  for (size_t i = 0; i < selected.size(); ++i) {
    out[i].tag = dir[selected[i]].tag;
    out[i].bytes.resize(dir[selected[i]].length);
    pos_of[selected[i]] = i;
  }

  for (const auto& [c, sels] : by_chunk) {
    STARFISH_ASSIGN_OR_RETURN(PageGuard guard,
                              segment_->buffer()->Fix(DataPage(hdr, c)));
    const uint32_t chunk_begin = c * chunk;
    for (size_t sel : sels) {
      const DirEntry& e = dir[sel];
      const uint32_t lo = std::max(e.stream_offset, chunk_begin);
      const uint32_t hi = std::min(e.stream_offset + e.length,
                                   chunk_begin + chunk);
      std::memcpy(out[pos_of[sel]].bytes.data() + (lo - e.stream_offset),
                  guard.data() + kPageHeaderSize + (lo - chunk_begin),
                  hi - lo);
    }
  }
  return out;
}

Result<Tid> ComplexRecordStore::Replace(const Tid& tid,
                                        const std::vector<RecordRegion>& regions) {
  if (!tid.is_complex()) {
    const uint32_t small_size = SmallEncodedSize(regions);
    if (!options_.force_large && small_size <= records_.MaxRecordSize()) {
      STARFISH_RETURN_NOT_OK(records_.Update(tid, EncodeSmall(regions)));
      return tid;
    }
    // Small -> large transition: the record gets a new address.
    STARFISH_RETURN_NOT_OK(records_.Delete(tid));
    return Insert(regions);
  }

  LargeHeader old_hdr;
  std::vector<DirEntry> old_dir;
  STARFISH_RETURN_NOT_OK(ReadHeader(tid.page, &old_hdr, &old_dir));

  std::vector<DirEntry> dir;
  uint32_t stream_len = 0;
  LayoutStream(regions, &dir, &stream_len);

  LargeHeader hdr;
  hdr.region_count = static_cast<uint16_t>(regions.size());
  hdr.header_pages = static_cast<uint16_t>(HeaderPagesFor(hdr.region_count));
  hdr.data_pages =
      static_cast<uint16_t>(std::max<uint32_t>(1, CeilDiv(stream_len, ChunkSize())));
  hdr.stream_bytes = stream_len;

  const uint32_t need_aux = (hdr.header_pages - 1) + hdr.data_pages;
  if (need_aux <= old_hdr.aux_alloc) {
    // Rewrite in place; keep the allocated run (slack pages stay reserved).
    hdr.aux_alloc = old_hdr.aux_alloc;
    hdr.aux_first = old_hdr.aux_first;
  } else {
    // Outgrew the run: reallocate aux pages, root page (and TID) stay put.
    std::vector<PageId> old_aux;
    for (uint32_t i = 0; i < old_hdr.aux_alloc; ++i) {
      old_aux.push_back(old_hdr.aux_first + i);
    }
    STARFISH_RETURN_NOT_OK(segment_->FreePages(old_aux));
    hdr.aux_alloc = static_cast<uint16_t>(need_aux);
    STARFISH_ASSIGN_OR_RETURN(
        hdr.aux_first, segment_->AllocateRun(need_aux, PageType::kComplexData));
  }
  STARFISH_RETURN_NOT_OK(WriteLarge(tid.page, hdr, dir, regions));
  return tid;
}

Result<Tid> ComplexRecordStore::UpdateRegion(const Tid& tid, uint32_t tag,
                                             uint32_t ordinal,
                                             std::string_view bytes) {
  // The DASDBS change-attribute protocol writes its page pool on every
  // operation (§5.3) — model that cost first.
  STARFISH_RETURN_NOT_OK(WritePagePool());

  if (!tid.is_complex()) {
    STARFISH_ASSIGN_OR_RETURN(std::string payload, records_.Read(tid));
    std::vector<RecordRegion> regions;
    STARFISH_RETURN_NOT_OK(DecodeSmall(payload, &regions));
    uint32_t seen = 0;
    for (auto& region : regions) {
      if (region.tag == tag && seen++ == ordinal) {
        region.bytes.assign(bytes);
        const std::string encoded = EncodeSmall(regions);
        if (encoded.size() <= records_.MaxRecordSize()) {
          STARFISH_RETURN_NOT_OK(records_.Update(tid, encoded));
          return tid;
        }
        // The record outgrew the small representation: full replace.
        return Replace(tid, regions);
      }
    }
    return Status::NotFound("no region with tag " + std::to_string(tag));
  }

  LargeHeader hdr;
  std::vector<DirEntry> dir;
  STARFISH_RETURN_NOT_OK(ReadHeader(tid.page, &hdr, &dir));
  uint32_t seen = 0;
  for (const DirEntry& e : dir) {
    if (e.tag != tag || seen++ != ordinal) continue;
    if (e.length != bytes.size()) {
      // Length change: rebuild the whole record (structure rewrite).
      STARFISH_ASSIGN_OR_RETURN(std::vector<RecordRegion> regions, ReadAll(tid));
      uint32_t seen2 = 0;
      for (auto& region : regions) {
        if (region.tag == tag && seen2++ == ordinal) {
          region.bytes.assign(bytes);
          break;
        }
      }
      return Replace(tid, regions);
    }
    // Same-length fast path: patch the data page(s) in place.
    const uint32_t chunk = ChunkSize();
    if (e.length == 0) return tid;
    const uint32_t first = e.stream_offset / chunk;
    const uint32_t last = (e.stream_offset + e.length - 1) / chunk;
    std::vector<PageId> pages;
    for (uint32_t c = first; c <= last; ++c) pages.push_back(DataPage(hdr, c));
    STARFISH_RETURN_NOT_OK(
        segment_->buffer()->Prefetch(pages, PrefetchMode::kChained));
    for (uint32_t c = first; c <= last; ++c) {
      STARFISH_ASSIGN_OR_RETURN(PageGuard guard,
                                segment_->buffer()->Fix(DataPage(hdr, c)));
      const uint32_t chunk_begin = c * chunk;
      const uint32_t lo = std::max(e.stream_offset, chunk_begin);
      const uint32_t hi =
          std::min(e.stream_offset + e.length, chunk_begin + chunk);
      std::memcpy(guard.data() + kPageHeaderSize + (lo - chunk_begin),
                  bytes.data() + (lo - e.stream_offset), hi - lo);
      guard.MarkDirty();
    }
    return tid;
  }
  return Status::NotFound("no region with tag " + std::to_string(tag));
}

Status ComplexRecordStore::Delete(const Tid& tid) {
  if (!tid.is_complex()) return records_.Delete(tid);
  LargeHeader hdr;
  std::vector<DirEntry> dir;
  STARFISH_RETURN_NOT_OK(ReadHeader(tid.page, &hdr, &dir));
  std::vector<PageId> pages{tid.page};
  for (uint32_t i = 0; i < hdr.aux_alloc; ++i) {
    pages.push_back(hdr.aux_first + i);
  }
  return segment_->FreePages(pages);
}

Status ComplexRecordStore::ScanObjects(
    const std::function<Status(Tid, const std::vector<RecordRegion>&)>& fn,
    uint32_t prefetch_window) const {
  const std::vector<PageId> pages = segment_->pages();  // snapshot
  size_t window_end = 0;
  for (size_t i = 0; i < pages.size(); ++i) {
    if (i >= window_end) {
      const size_t end = std::min(pages.size(), i + prefetch_window);
      std::vector<PageId> window(pages.begin() + static_cast<long>(i),
                                 pages.begin() + static_cast<long>(end));
      STARFISH_RETURN_NOT_OK(segment_->buffer()->Prefetch(
          window, PrefetchMode::kContiguousRuns));
      window_end = end;
    }
    PageType type;
    {
      STARFISH_ASSIGN_OR_RETURN(PageGuard guard,
                                segment_->buffer()->Fix(pages[i]));
      SlottedPage view(guard.data(), page_size());
      type = view.type();
    }
    if (type == PageType::kSlotted) {
      STARFISH_RETURN_NOT_OK(records_.ForEachOnPage(
          pages[i], [&](Tid tid, std::string_view payload) {
            std::vector<RecordRegion> regions;
            STARFISH_RETURN_NOT_OK(DecodeSmall(payload, &regions));
            return fn(tid, regions);
          }));
    } else if (type == PageType::kComplexHeader) {
      const Tid tid{pages[i], kComplexRecordSlot};
      STARFISH_ASSIGN_OR_RETURN(std::vector<RecordRegion> regions, ReadAll(tid));
      STARFISH_RETURN_NOT_OK(fn(tid, regions));
    }
    // Ext-header / data / pool pages are reached via their root pages.
  }
  return Status::OK();
}

Status ComplexRecordStore::ScanPartial(
    const std::function<bool(uint32_t)>& want,
    const std::function<Status(Tid, const std::vector<RecordRegion>&)>& fn,
    uint32_t prefetch_window) const {
  // Walk the catalog: slotted pages and root header pages are touched,
  // continuation/data/pool pages only when a selected region lives there
  // (ReadPartial fetches those itself with chained calls).
  const std::vector<PageId> pages = segment_->pages();  // snapshot
  std::vector<PageId> touchable;
  touchable.reserve(pages.size());
  for (PageId id : pages) {
    const PageType type = segment_->TypeHint(id);
    if (type == PageType::kSlotted || type == PageType::kComplexHeader) {
      touchable.push_back(id);
    }
  }
  size_t window_end = 0;
  for (size_t i = 0; i < touchable.size(); ++i) {
    if (i >= window_end) {
      const size_t end = std::min(touchable.size(), i + prefetch_window);
      std::vector<PageId> window(touchable.begin() + static_cast<long>(i),
                                 touchable.begin() + static_cast<long>(end));
      STARFISH_RETURN_NOT_OK(segment_->buffer()->Prefetch(
          window, PrefetchMode::kContiguousRuns));
      window_end = end;
    }
    if (segment_->TypeHint(touchable[i]) == PageType::kSlotted) {
      STARFISH_RETURN_NOT_OK(records_.ForEachOnPage(
          touchable[i], [&](Tid tid, std::string_view payload) -> Status {
            std::vector<RecordRegion> regions;
            STARFISH_RETURN_NOT_OK(DecodeSmall(payload, &regions));
            std::vector<RecordRegion> kept;
            for (auto& region : regions) {
              if (want(region.tag)) kept.push_back(std::move(region));
            }
            return fn(tid, kept);
          }));
    } else {
      const Tid tid{touchable[i], kComplexRecordSlot};
      STARFISH_ASSIGN_OR_RETURN(std::vector<RecordRegion> regions,
                                ReadPartial(tid, want));
      STARFISH_RETURN_NOT_OK(fn(tid, regions));
    }
  }
  return Status::OK();
}

Result<ComplexRecordInfo> ComplexRecordStore::GetInfo(const Tid& tid) const {
  ComplexRecordInfo info;
  if (!tid.is_complex()) {
    STARFISH_ASSIGN_OR_RETURN(std::string payload, records_.Read(tid));
    std::vector<RecordRegion> regions;
    STARFISH_RETURN_NOT_OK(DecodeSmall(payload, &regions));
    info.is_small = true;
    for (const auto& region : regions) {
      info.payload_bytes += static_cast<uint32_t>(region.bytes.size());
    }
    // +1 framing byte, +4 slot entry: the shared-page footprint.
    info.stored_bytes = static_cast<uint32_t>(payload.size()) + 1 + 4;
    return info;
  }
  LargeHeader hdr;
  std::vector<DirEntry> dir;
  STARFISH_RETURN_NOT_OK(ReadHeader(tid.page, &hdr, &dir));
  info.is_small = false;
  info.header_pages = hdr.header_pages;
  info.data_pages = hdr.data_pages;
  for (const DirEntry& e : dir) info.payload_bytes += e.length;
  // Occupied bytes including internal waste — what the paper's S_tuple
  // column reports for page-spanning tuples (e.g. 6078 ~= 3.02 * 2012).
  info.stored_bytes = info.private_pages() * ChunkSize();
  return info;
}

Status ComplexRecordStore::WritePagePool() {
  if (options_.change_attr_page_pool == 0) return Status::OK();
  if (pool_first_ == kInvalidPageId) {
    // The pool is opened lazily inside the first measured change-attribute
    // call; its fault-in read is part of the protocol cost the paper's
    // Table 5 includes, so keep the metered path here (kPrefault).
    STARFISH_ASSIGN_OR_RETURN(
        pool_first_,
        segment_->AllocateRun(options_.change_attr_page_pool, PageType::kPool,
                              Segment::PageInitMode::kPrefault));
  }
  // The pool is written through, bypassing the buffer: DASDBS flushed the
  // pool pages as part of every change-attribute operation.
  std::vector<char> zeros(static_cast<size_t>(options_.change_attr_page_pool) *
                          page_size());
  return segment_->buffer()->disk()->WriteRun(
      pool_first_, options_.change_attr_page_pool, zeros.data());
}

}  // namespace starfish
