#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "buffer/buffer_manager.h"
#include "disk/sim_disk.h"
#include "storage/segment.h"
#include "util/status.h"

/// \file storage_engine.h
/// Owns the simulated volume, the buffer pool and the segment catalog —
/// one "database instance" in the sense of the paper's DASDBS testbed.

namespace starfish {

/// Engine configuration: geometry + buffering.
struct StorageEngineOptions {
  DiskOptions disk;
  BufferOptions buffer;
};

/// Combined counter snapshot used by the benchmark runner to delta-measure
/// individual queries.
struct EngineStats {
  IoStats io;
  BufferStats buffer;

  EngineStats Since(const EngineStats& earlier) const {
    return EngineStats{io.Since(earlier.io), buffer.Since(earlier.buffer)};
  }
};

/// The storage substrate: disk + buffer + segments.
class StorageEngine {
 public:
  explicit StorageEngine(StorageEngineOptions options = {});

  /// Creates a new, empty segment. Fails if the name exists.
  Result<Segment*> CreateSegment(const std::string& name);

  /// Looks up a segment by name (nullptr if absent).
  Segment* GetSegment(const std::string& name);

  /// All segments in creation order.
  std::vector<Segment*> segments();

  BufferManager* buffer() { return &buffer_; }
  SimDisk* disk() { return &disk_; }

  /// Write-back of all dirty pages — the paper's "database disconnect".
  Status Flush() { return buffer_.FlushAll(); }

  /// Flushes and empties the buffer: the next query starts cold.
  Status DropCache() { return buffer_.DropAll(); }

  /// Snapshot of all counters.
  EngineStats stats() const;

  /// Zeroes all counters (page contents unaffected).
  void ResetStats();

 private:
  SimDisk disk_;
  BufferManager buffer_;
  std::vector<std::unique_ptr<Segment>> segments_;
  std::unordered_map<std::string, Segment*> by_name_;
};

}  // namespace starfish
