#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "buffer/buffer_manager.h"
#include "disk/disk_timing.h"
#include "disk/timed_volume.h"
#include "disk/volume.h"
#include "storage/segment.h"
#include "util/status.h"

/// \file storage_engine.h
/// Owns the volume, the buffer pool and the segment catalog — one "database
/// instance" in the sense of the paper's DASDBS testbed.
///
/// The disk backend is pluggable (StorageEngineOptions::backend): the
/// default in-memory arena, or the persistent mmap backend rooted at
/// StorageEngineOptions::path. Either can additionally be wrapped in a
/// TimedVolume that charges Equation-1 service time per I/O call.

namespace starfish {

/// Engine configuration: geometry + backend + buffering.
struct StorageEngineOptions {
  DiskOptions disk;
  BufferOptions buffer;

  /// Disk backend. kMmap requires `path`.
  VolumeKind backend = VolumeKind::kMem;

  /// Backing directory of the mmap backend (created if absent, reopened if
  /// it already holds a volume). Ignored by the mem backend.
  std::string path;

  /// Wrap the backend in a TimedVolume charging `timing` per call.
  bool timed = false;

  /// Equation-1 coefficients of the timed wrapper.
  LinearTimingModel timing;
};

/// Combined counter snapshot used by the benchmark runner to delta-measure
/// individual queries.
struct EngineStats {
  IoStats io;
  BufferStats buffer;

  EngineStats Since(const EngineStats& earlier) const {
    return EngineStats{io.Since(earlier.io), buffer.Since(earlier.buffer)};
  }
};

/// The storage substrate: volume + buffer + segments.
class StorageEngine {
 public:
  /// Creates an engine, propagating backend construction failures (a
  /// missing mmap directory, geometry corruption, ...). Prefer this over
  /// the constructor whenever options select a non-default backend.
  static Result<std::unique_ptr<StorageEngine>> Open(
      StorageEngineOptions options = {});

  /// Convenience constructor for the infallible default backend. When the
  /// requested backend cannot be constructed (only possible for kMmap),
  /// the engine falls back to an in-memory volume and records the failure
  /// in init_status() — Open() is the error-propagating path.
  explicit StorageEngine(StorageEngineOptions options = {});

  /// OK unless the constructor had to fall back to the mem backend.
  const Status& init_status() const { return init_status_; }

  /// Creates a new, empty segment. Fails if the name exists.
  Result<Segment*> CreateSegment(const std::string& name);

  /// Returns the named segment, creating it when absent. This is how the
  /// storage models attach to their relations: fresh on first open,
  /// catalog-restored after a persistent reopen.
  Result<Segment*> OpenOrCreateSegment(const std::string& name);

  /// Looks up a segment by name (nullptr if absent).
  Segment* GetSegment(const std::string& name);

  /// All segments in creation order.
  std::vector<Segment*> segments();

  BufferManager* buffer() { return buffer_.get(); }
  Volume* disk() { return volume_.get(); }
  const Volume* disk() const { return volume_.get(); }

  /// The timing decorator, or nullptr when options.timed was not set.
  TimedVolume* timed_volume() { return timed_; }

  /// Write-back of all dirty pages — the paper's "database disconnect".
  Status Flush() { return buffer_->FlushAll(); }

  /// Flushes and empties the buffer: the next query starts cold.
  Status DropCache() { return buffer_->DropAll(); }

  /// Snapshot of all counters.
  EngineStats stats() const;

  /// Zeroes all counters (page contents unaffected).
  void ResetStats();

  /// Serializes the segment catalog (names + page lists + hints) for the
  /// persistent-store catalog file.
  void SaveCatalog(std::string* out) const;

  /// Restores the segment catalog written by SaveCatalog, consuming it from
  /// `*in`. Existing segments with matching names are overwritten; the
  /// engine must otherwise be fresh.
  Status LoadCatalog(std::string_view* in);

 private:
  StorageEngineOptions options_;
  Status init_status_;
  std::unique_ptr<Volume> volume_;  ///< possibly a TimedVolume wrapper
  TimedVolume* timed_ = nullptr;    ///< alias into volume_ when timed
  std::unique_ptr<BufferManager> buffer_;
  std::vector<std::unique_ptr<Segment>> segments_;
  std::unordered_map<std::string, Segment*> by_name_;
};

}  // namespace starfish
