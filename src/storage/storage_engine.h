#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "buffer/buffer_manager.h"
#include "disk/disk_timing.h"
#include "disk/timed_volume.h"
#include "disk/volume.h"
#include "storage/segment.h"
#include "storage/tid.h"
#include "util/status.h"

/// \file storage_engine.h
/// Owns the volume, the buffer pool and the segment catalog — one "database
/// instance" in the sense of the paper's DASDBS testbed.
///
/// The disk backend is pluggable (StorageEngineOptions::backend): the
/// default in-memory arena, or a persistent backend rooted at
/// StorageEngineOptions::path — mmap (page-cache-backed) or direct
/// (O_DIRECT, every transfer a real device I/O). Any of them can
/// additionally be wrapped in a TimedVolume that charges Equation-1 service
/// time per I/O call.

namespace starfish {

/// Engine configuration: geometry + backend + buffering.
struct StorageEngineOptions {
  DiskOptions disk;
  BufferOptions buffer;

  /// Disk backend. kMmap/kDirect require `path`.
  VolumeKind backend = VolumeKind::kMem;

  /// Backing directory of the persistent backends (created if absent,
  /// reopened if it already holds a volume — mmap and direct share one
  /// on-disk format). Ignored by the mem backend.
  std::string path;

  /// Wrap the backend in a TimedVolume charging `timing` per call.
  bool timed = false;

  /// Equation-1 coefficients of the timed wrapper.
  LinearTimingModel timing;

  /// Test seam: wraps the freshly created backend before the timing
  /// decorator and the buffer pool attach — how the crash-matrix tests
  /// interpose a FaultVolume. Null = no wrapping.
  std::function<std::unique_ptr<Volume>(std::unique_ptr<Volume>)>
      volume_decorator;
};

/// Combined counter snapshot used by the benchmark runner to delta-measure
/// individual queries.
struct EngineStats {
  IoStats io;
  BufferStats buffer;

  EngineStats Since(const EngineStats& earlier) const {
    return EngineStats{io.Since(earlier.io), buffer.Since(earlier.buffer)};
  }
};

/// The storage substrate: volume + buffer + segments.
class StorageEngine {
 public:
  /// Creates an engine, propagating backend construction failures (a
  /// missing mmap directory, geometry corruption, ...). Prefer this over
  /// the constructor whenever options select a non-default backend.
  static Result<std::unique_ptr<StorageEngine>> Open(
      StorageEngineOptions options = {});

  /// Convenience constructor for the infallible default backend. When the
  /// requested backend cannot be constructed (only possible for the
  /// persistent backends, e.g. an unwritable directory or a filesystem
  /// without O_DIRECT), the engine falls back to an in-memory volume and
  /// records the failure in init_status() — Open() is the
  /// error-propagating path.
  explicit StorageEngine(StorageEngineOptions options = {});

  /// OK unless the constructor had to fall back to the mem backend.
  const Status& init_status() const { return init_status_; }

  /// Creates a new, empty segment. Fails if the name exists.
  Result<Segment*> CreateSegment(const std::string& name);

  /// Returns the named segment, creating it when absent. This is how the
  /// storage models attach to their relations: fresh on first open,
  /// catalog-restored after a persistent reopen.
  Result<Segment*> OpenOrCreateSegment(const std::string& name);

  /// Looks up a segment by name (nullptr if absent).
  Segment* GetSegment(const std::string& name);

  /// All segments in creation order.
  std::vector<Segment*> segments();

  BufferManager* buffer() { return buffer_.get(); }
  Volume* disk() { return volume_.get(); }
  const Volume* disk() const { return volume_.get(); }

  /// The timing decorator, or nullptr when options.timed was not set.
  TimedVolume* timed_volume() { return timed_; }

  /// Write-back of all dirty pages — the paper's "database disconnect".
  Status Flush() { return buffer_->FlushAll(); }

  /// Flushes and empties the buffer: the next query starts cold.
  Status DropCache() { return buffer_->DropAll(); }

  /// Snapshot of all counters.
  EngineStats stats() const;

  /// Zeroes all counters (page contents unaffected).
  void ResetStats();

  /// Serializes the segment catalog (names + page lists + hints) for the
  /// persistent-store catalog file.
  void SaveCatalog(std::string* out) const;

  /// Restores the segment catalog written by SaveCatalog, consuming it from
  /// `*in`. Existing segments with matching names are overwritten; the
  /// engine must otherwise be fresh.
  Status LoadCatalog(std::string_view* in);

  /// Every page of every segment (duplicates possible across calls, not
  /// within a segment) — the reference set a reopen reconciles the volume
  /// allocator against: catalog-referenced pages are live, everything else
  /// is reclaimable.
  std::vector<PageId> AllSegmentPages() const;

  /// Reopen-time recovery over shared slotted pages: deletes every record
  /// whose (page, slot) is not in `live` and recomputes the free-space
  /// hints from the actual page content. Data pages are written in place
  /// between checkpoints, so after a crash (or a checksum fallback to an
  /// older generation) a cataloged page can hold records NEWER than the
  /// committed catalog — phantoms that scans would surface and stale hints
  /// that would lie to inserts. The committed model state (`live`) is the
  /// source of truth; everything else on a slotted page is scrubbed.
  ///
  /// Slotted pages are the only page class needing reconstruction:
  /// complex-record pages are never shared across objects (an uncommitted
  /// record's pages are whole-page orphans that allocator reconciliation
  /// reclaims), pool pages carry change-attribute values whose in-place
  /// rewrite is the documented update caveat (README "Durability"), and no
  /// factory storage model persists B+-tree nodes (persistent_index is an
  /// ablation-only option) — revisit if that ever changes.
  Status ScrubSlottedRecords(const std::vector<Tid>& live);

 private:
  StorageEngineOptions options_;
  Status init_status_;
  std::unique_ptr<Volume> volume_;  ///< possibly a TimedVolume wrapper
  TimedVolume* timed_ = nullptr;    ///< alias into volume_ when timed
  std::unique_ptr<BufferManager> buffer_;
  std::vector<std::unique_ptr<Segment>> segments_;
  std::unordered_map<std::string, Segment*> by_name_;
};

}  // namespace starfish
