#include "storage/slotted_page.h"

#include <cstring>
#include <string>

#include "util/coding.h"

namespace starfish {

namespace {

// Page header field offsets (within the 36-byte header).
constexpr uint32_t kMagicOff = 0;        // u16
constexpr uint32_t kTypeOff = 2;         // u16
constexpr uint32_t kSlotCountOff = 4;    // u16
constexpr uint32_t kHeapStartOff = 6;    // u16
constexpr uint32_t kSegmentIdOff = 8;    // u32
constexpr uint32_t kLsnOff = 12;         // u64 (reserved for a WAL extension)
// Bytes [20, 36) reserved.

constexpr uint16_t kMagic = 0xDA5D;

constexpr uint32_t kSlotEntrySize = 4;  // u16 offset + u16 length

}  // namespace

void SlottedPage::Init(uint32_t segment_id, PageType type) {
  std::memset(data_, 0, page_size_);
  EncodeFixed16(data_ + kMagicOff, kMagic);
  EncodeFixed16(data_ + kTypeOff, static_cast<uint16_t>(type));
  EncodeFixed16(data_ + kSlotCountOff, 0);
  EncodeFixed16(data_ + kHeapStartOff, static_cast<uint16_t>(page_size_));
  EncodeFixed32(data_ + kSegmentIdOff, segment_id);
  EncodeFixed64(data_ + kLsnOff, 0);
}

bool SlottedPage::IsFormatted() const {
  return DecodeFixed16(data_ + kMagicOff) == kMagic;
}

PageType SlottedPage::type() const {
  return static_cast<PageType>(DecodeFixed16(data_ + kTypeOff));
}

uint32_t SlottedPage::segment_id() const {
  return DecodeFixed32(data_ + kSegmentIdOff);
}

uint16_t SlottedPage::slot_count() const {
  return DecodeFixed16(data_ + kSlotCountOff);
}

uint16_t SlottedPage::live_count() const {
  uint16_t live = 0;
  const uint16_t n = slot_count();
  for (uint16_t s = 0; s < n; ++s) {
    if (slot_offset(s) != 0) ++live;
  }
  return live;
}

uint16_t SlottedPage::heap_start() const {
  return DecodeFixed16(data_ + kHeapStartOff);
}

void SlottedPage::set_heap_start(uint16_t value) {
  EncodeFixed16(data_ + kHeapStartOff, value);
}

void SlottedPage::set_slot_count(uint16_t value) {
  EncodeFixed16(data_ + kSlotCountOff, value);
}

uint16_t SlottedPage::slot_offset(uint16_t slot) const {
  return DecodeFixed16(data_ + kPageHeaderSize + slot * kSlotEntrySize);
}

uint16_t SlottedPage::slot_length(uint16_t slot) const {
  return DecodeFixed16(data_ + kPageHeaderSize + slot * kSlotEntrySize + 2);
}

void SlottedPage::set_slot(uint16_t slot, uint16_t offset, uint16_t length) {
  EncodeFixed16(data_ + kPageHeaderSize + slot * kSlotEntrySize, offset);
  EncodeFixed16(data_ + kPageHeaderSize + slot * kSlotEntrySize + 2, length);
}

uint32_t SlottedPage::FreeSpaceForNewRecord() const {
  const uint32_t dir_end = kPageHeaderSize + slot_count() * kSlotEntrySize;
  const uint32_t gap = heap_start() - dir_end;
  // A free slot can be reused; otherwise a new directory entry is needed.
  const uint16_t n = slot_count();
  for (uint16_t s = 0; s < n; ++s) {
    if (slot_offset(s) == 0) return gap;
  }
  return gap >= kSlotEntrySize ? gap - kSlotEntrySize : 0;
}

uint32_t SlottedPage::MaxRecordSize(uint32_t page_size) {
  return page_size - kPageHeaderSize - kSlotEntrySize;
}

Result<uint16_t> SlottedPage::Insert(std::string_view record) {
  if (record.size() > MaxRecordSize(page_size_)) {
    return Status::InvalidArgument("record of " +
                                   std::to_string(record.size()) +
                                   " bytes cannot fit any slotted page");
  }
  if (record.size() > FreeSpaceForNewRecord()) {
    return Status::ResourceExhausted("page full");
  }
  // Reuse a free slot if available.
  uint16_t slot = slot_count();
  const uint16_t n = slot_count();
  for (uint16_t s = 0; s < n; ++s) {
    if (slot_offset(s) == 0) {
      slot = s;
      break;
    }
  }
  if (slot == slot_count()) set_slot_count(slot_count() + 1);

  const uint16_t new_heap = static_cast<uint16_t>(heap_start() - record.size());
  std::memcpy(data_ + new_heap, record.data(), record.size());
  set_heap_start(new_heap);
  set_slot(slot, new_heap, static_cast<uint16_t>(record.size()));
  return slot;
}

Status SlottedPage::CheckLiveSlot(uint16_t slot) const {
  if (slot >= slot_count() || slot_offset(slot) == 0) {
    return Status::NotFound("no record in slot " + std::to_string(slot));
  }
  return Status::OK();
}

Result<std::string_view> SlottedPage::Read(uint16_t slot) const {
  STARFISH_RETURN_NOT_OK(CheckLiveSlot(slot));
  return std::string_view(data_ + slot_offset(slot), slot_length(slot));
}

void SlottedPage::EraseFromHeap(uint16_t offset, uint16_t length) {
  const uint16_t old_heap = heap_start();
  // Shift everything in [old_heap, offset) up by `length`.
  std::memmove(data_ + old_heap + length, data_ + old_heap, offset - old_heap);
  set_heap_start(old_heap + length);
  // Fix slots whose records moved (those with offset < erased offset).
  const uint16_t n = slot_count();
  for (uint16_t s = 0; s < n; ++s) {
    const uint16_t off = slot_offset(s);
    if (off != 0 && off < offset) {
      set_slot(s, off + length, slot_length(s));
    }
  }
}

Status SlottedPage::Update(uint16_t slot, std::string_view record) {
  STARFISH_RETURN_NOT_OK(CheckLiveSlot(slot));
  const uint16_t old_off = slot_offset(slot);
  const uint16_t old_len = slot_length(slot);
  if (record.size() == old_len) {
    std::memcpy(data_ + old_off, record.data(), record.size());
    return Status::OK();
  }
  // Fit check BEFORE mutating: a failed update leaves the page untouched
  // (callers rely on this to fall back to record relocation).
  const uint32_t dir_end = kPageHeaderSize + slot_count() * kSlotEntrySize;
  const uint32_t gap = heap_start() - dir_end;
  if (record.size() > gap + old_len) {
    return Status::ResourceExhausted("updated record does not fit page");
  }
  // Delete + reinsert into the same slot (eager compaction keeps the gap
  // contiguous, so the fit check above is exact).
  set_slot(slot, 0, 0);
  EraseFromHeap(old_off, old_len);
  const uint16_t new_heap = static_cast<uint16_t>(heap_start() - record.size());
  std::memcpy(data_ + new_heap, record.data(), record.size());
  set_heap_start(new_heap);
  set_slot(slot, new_heap, static_cast<uint16_t>(record.size()));
  return Status::OK();
}

Status SlottedPage::Delete(uint16_t slot) {
  STARFISH_RETURN_NOT_OK(CheckLiveSlot(slot));
  const uint16_t off = slot_offset(slot);
  const uint16_t len = slot_length(slot);
  set_slot(slot, 0, 0);
  EraseFromHeap(off, len);
  // Trim trailing free slots so the directory can shrink.
  uint16_t n = slot_count();
  while (n > 0 && slot_offset(n - 1) == 0) --n;
  set_slot_count(n);
  return Status::OK();
}

}  // namespace starfish
