#pragma once

#include <functional>
#include <string>
#include <string_view>

#include "storage/segment.h"
#include "storage/tid.h"
#include "util/status.h"

/// \file record_manager.h
/// TID-addressed storage of small (single-page) records in a segment.
///
/// Records are placed append-style: the current fill page is used until a
/// record no longer fits, then a new page is opened. Consecutively inserted
/// records therefore end up physically clustered — the paper's normalized
/// models rely on this ("tuples that belong to the same root or parent are
/// likely to be stored clustered together", §3.3).
///
/// Updates keep TIDs stable. When an update outgrows its page the record
/// moves and leaves a forwarding stub behind, so later reads pay one extra
/// page access — the classic TID forwarding scheme.

namespace starfish {

/// Heap-file manager for small records over one segment.
class RecordManager {
 public:
  explicit RecordManager(Segment* segment) : segment_(segment) {}

  /// Maximum payload size (one page minus headers and the stub tag byte).
  uint32_t MaxRecordSize() const;

  /// Inserts a record, returns its stable TID.
  Result<Tid> Insert(std::string_view record);

  /// Reads a record (follows at most one forwarding hop).
  Result<std::string> Read(const Tid& tid) const;

  /// Replaces the record's payload. The TID stays valid even if the record
  /// has to move to another page.
  Status Update(const Tid& tid, std::string_view record);

  /// Deletes the record (and its forwarded copy, if any).
  Status Delete(const Tid& tid);

  /// Calls `fn` for every live record on `page` (forwarding stubs skipped;
  /// each record is visited exactly once at its home TID). The record view
  /// is only valid during the callback.
  Status ForEachOnPage(PageId page,
                       const std::function<Status(Tid, std::string_view)>& fn) const;

  /// When `home` holds a forwarding stub, the TID of the moved payload;
  /// kInvalidTid for a plain record or an empty slot. An unreadable page
  /// is an ERROR, not "no stub" — crash recovery uses this to keep a live
  /// record's forwarded copy when scrubbing un-cataloged slots, and
  /// mistaking an I/O failure for "plain" would let the scrub delete the
  /// moved payload.
  Result<Tid> ForwardTarget(const Tid& home) const;

  Segment* segment() { return segment_; }

 private:
  // Record kinds on the page: a plain payload, a stub pointing to the
  // record's current home, or a moved payload (target of a stub).
  enum RecordKind : char { kPlain = 0, kForwardStub = 1, kMovedPayload = 2 };

  Result<Tid> InsertWithKind(std::string_view record, char kind);

  Segment* segment_;
};

}  // namespace starfish
