#include "storage/segment.h"

#include <algorithm>

namespace starfish {

namespace {
constexpr uint32_t kNotSlotted = ~0u;
}

Result<PageId> Segment::AllocatePage(PageType type) {
  return AllocateRun(1, type);
}

Result<PageId> Segment::AllocateRun(uint32_t n, PageType type) {
  if (n == 0) return Status::InvalidArgument("empty run");
  const PageId first = buffer_->disk()->AllocateRun(n);
  for (uint32_t i = 0; i < n; ++i) {
    const PageId id = first + i;
    // Fresh pages are zero-filled on disk; format the in-buffer copy.
    STARFISH_ASSIGN_OR_RETURN(PageGuard guard, buffer_->Fix(id));
    SlottedPage view(guard.data(), buffer_->disk()->page_size());
    view.Init(id_, type);
    guard.MarkDirty();
    page_index_[id] = pages_.size();
    pages_.push_back(id);
    free_hints_.push_back(type == PageType::kSlotted
                              ? view.FreeSpaceForNewRecord()
                              : kNotSlotted);
    type_hints_.push_back(type);
  }
  return first;
}

Status Segment::FreePages(const std::vector<PageId>& ids) {
  for (PageId id : ids) {
    auto it = page_index_.find(id);
    if (it == page_index_.end()) {
      return Status::NotFound("page " + std::to_string(id) +
                              " not in segment " + name_);
    }
    const size_t idx = it->second;
    pages_.erase(pages_.begin() + static_cast<long>(idx));
    free_hints_.erase(free_hints_.begin() + static_cast<long>(idx));
    type_hints_.erase(type_hints_.begin() + static_cast<long>(idx));
    page_index_.erase(it);
    for (auto& [pid, i] : page_index_) {
      if (i > idx) --i;
    }
    STARFISH_RETURN_NOT_OK(buffer_->disk()->Free(id));
  }
  return Status::OK();
}

uint32_t Segment::FreeHint(PageId id) const {
  auto it = page_index_.find(id);
  return it == page_index_.end() ? 0 : free_hints_[it->second];
}

void Segment::SetFreeHint(PageId id, uint32_t free_bytes) {
  auto it = page_index_.find(id);
  if (it != page_index_.end()) free_hints_[it->second] = free_bytes;
}

PageType Segment::TypeHint(PageId id) const {
  auto it = page_index_.find(id);
  return it == page_index_.end() ? PageType::kFree : type_hints_[it->second];
}

void Segment::SetTypeHint(PageId id, PageType type) {
  auto it = page_index_.find(id);
  if (it != page_index_.end()) type_hints_[it->second] = type;
}

PageId Segment::FindSlottedPageWithSpace(uint32_t bytes) const {
  // Check the most recent slotted pages first: the insert pattern is
  // append-mostly, so the current fill page is almost always at the back.
  for (size_t i = pages_.size(); i > 0; --i) {
    const uint32_t hint = free_hints_[i - 1];
    if (hint != kNotSlotted && hint >= bytes) return pages_[i - 1];
  }
  return kInvalidPageId;
}

}  // namespace starfish
