#include "storage/segment.h"

#include <algorithm>

#include "util/coding.h"

namespace starfish {

namespace {
constexpr uint32_t kNotSlotted = ~0u;
}

Result<PageId> Segment::AllocatePage(PageType type) {
  return AllocateRun(1, type);
}

Result<PageId> Segment::AllocateRun(uint32_t n, PageType type,
                                    PageInitMode mode) {
  std::lock_guard<std::recursive_mutex> latch(write_mu_);
  if (n == 0) return Status::InvalidArgument("empty run");
  STARFISH_ASSIGN_OR_RETURN(const PageId first,
                            buffer_->disk()->AllocateRun(n));
  const uint32_t page_size = buffer_->disk()->page_size();
  if (n > 1) {
    // Multi-page runs reserve up front; single-page allocations rely on
    // push_back's geometric growth (reserve(size + 1) per call would
    // reallocate every time).
    pages_.reserve(pages_.size() + n);
    free_hints_.reserve(free_hints_.size() + n);
    type_hints_.reserve(type_hints_.size() + n);
  }
  for (uint32_t i = 0; i < n; ++i) {
    const PageId id = first + i;
    // Fresh pages are zero-filled on disk; FixFresh materializes the frame
    // without a metered read and the formatter writes it in place.
    STARFISH_ASSIGN_OR_RETURN(PageGuard guard,
                              mode == PageInitMode::kFreshZeroed
                                  ? buffer_->FixFresh(id)
                                  : buffer_->Fix(id));
    SlottedPage view(guard.data(), page_size);
    view.Init(id_, type);
    guard.MarkDirty();
    page_index_[id] = pages_.size();
    pages_.push_back(id);
    free_hints_.push_back(type == PageType::kSlotted
                              ? view.FreeSpaceForNewRecord()
                              : kNotSlotted);
    type_hints_.push_back(type);
  }
  return first;
}

Status Segment::FreePages(const std::vector<PageId>& ids) {
  std::lock_guard<std::recursive_mutex> latch(write_mu_);
  for (PageId id : ids) {
    auto it = page_index_.find(id);
    if (it == page_index_.end()) {
      return Status::NotFound("page " + std::to_string(id) +
                              " not in segment " + name_);
    }
    const size_t idx = it->second;
    pages_.erase(pages_.begin() + static_cast<long>(idx));
    free_hints_.erase(free_hints_.begin() + static_cast<long>(idx));
    type_hints_.erase(type_hints_.begin() + static_cast<long>(idx));
    page_index_.erase(it);
    for (auto& [pid, i] : page_index_) {
      if (i > idx) --i;
    }
    STARFISH_RETURN_NOT_OK(buffer_->disk()->Free(id));
  }
  return Status::OK();
}

uint32_t Segment::FreeHint(PageId id) const {
  std::lock_guard<std::recursive_mutex> latch(write_mu_);
  auto it = page_index_.find(id);
  return it == page_index_.end() ? 0 : free_hints_[it->second];
}

void Segment::SetFreeHint(PageId id, uint32_t free_bytes) {
  std::lock_guard<std::recursive_mutex> latch(write_mu_);
  auto it = page_index_.find(id);
  if (it != page_index_.end()) free_hints_[it->second] = free_bytes;
}

PageType Segment::TypeHint(PageId id) const {
  std::lock_guard<std::recursive_mutex> latch(write_mu_);
  auto it = page_index_.find(id);
  return it == page_index_.end() ? PageType::kFree : type_hints_[it->second];
}

void Segment::SetTypeHint(PageId id, PageType type) {
  std::lock_guard<std::recursive_mutex> latch(write_mu_);
  auto it = page_index_.find(id);
  if (it != page_index_.end()) type_hints_[it->second] = type;
}

void Segment::SaveState(std::string* out) const {
  PutFixed32(out, static_cast<uint32_t>(pages_.size()));
  for (size_t i = 0; i < pages_.size(); ++i) {
    PutFixed32(out, pages_[i]);
    PutFixed32(out, free_hints_[i]);
    PutFixed16(out, static_cast<uint16_t>(type_hints_[i]));
  }
}

Status Segment::LoadState(std::string_view* in) {
  uint32_t count = 0;
  if (!GetFixed32(in, &count)) {
    return Status::Corruption("segment catalog: truncated page count");
  }
  // Bound the on-disk count (10 bytes per entry) before allocating.
  if (count > in->size() / 10) {
    return Status::Corruption("segment catalog: implausible page count");
  }
  pages_.clear();
  free_hints_.clear();
  type_hints_.clear();
  page_index_.clear();
  pages_.reserve(count);
  free_hints_.reserve(count);
  type_hints_.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t page = 0, hint = 0;
    uint16_t type = 0;
    if (!GetFixed32(in, &page) || !GetFixed32(in, &hint) ||
        !GetFixed16(in, &type)) {
      return Status::Corruption("segment catalog: truncated page entry");
    }
    page_index_[page] = pages_.size();
    pages_.push_back(page);
    free_hints_.push_back(hint);
    type_hints_.push_back(static_cast<PageType>(type));
  }
  return Status::OK();
}

PageId Segment::FindSlottedPageWithSpace(uint32_t bytes) const {
  std::lock_guard<std::recursive_mutex> latch(write_mu_);
  // Check the most recent slotted pages first: the insert pattern is
  // append-mostly, so the current fill page is almost always at the back.
  for (size_t i = pages_.size(); i > 0; --i) {
    const uint32_t hint = free_hints_[i - 1];
    if (hint != kNotSlotted && hint >= bytes) return pages_[i - 1];
  }
  return kInvalidPageId;
}

}  // namespace starfish
