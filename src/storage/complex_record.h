#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "storage/record_manager.h"
#include "storage/segment.h"
#include "storage/tid.h"
#include "util/status.h"

/// \file complex_record.h
/// Multi-page complex records with the DASDBS header/data page split.
///
/// A complex record is an ordered list of *regions* — opaque byte strings
/// tagged by the object layer (root attributes, each sub-tuple, ...). The
/// store keeps small records (whole record fits a shared slotted page) and
/// large records (private pages) transparently behind one TID:
///
///   * **Small**: regions are concatenated with a mini-directory into one
///     slotted-page record. Several objects share a page; `k` objects per
///     page, exactly the situation of Equation 4.
///   * **Large**: a *root header page* (+ continuation header pages when the
///     directory overflows) holds the region directory; the region bytes
///     live on separate *data pages*. Retrieval issues DASDBS's call
///     pattern: one read call for the root page, one for the remaining
///     header pages, one chained call for the touched data pages. A partial
///     read (projection) touches only the data pages its regions live on —
///     this is what distinguishes DASDBS-DSM from plain DSM.
///
/// Data pages form a byte stream of (page_size - 36)-byte chunks. A region
/// that fits one chunk never straddles a chunk boundary (sub-tuples do not
/// span pages); oversized regions span. The unused tail of the last header
/// page and of chunks is the "internal wasted space" the paper's primed
/// (no-waste) model variants remove.
///
/// Updates:
///   * Replace() rewrites the whole record (the paper's 'replace set of
///     tuples' protocol used by DSM/NSM/DASDBS-NSM updates); all record
///     pages become dirty.
///   * UpdateRegion() patches one region in place (the 'change attribute'
///     protocol DASDBS-DSM is forced into, §5.3). When
///     `change_attr_page_pool > 0`, every call writes that many page-pool
///     pages immediately — the DASDBS behaviour that makes DASDBS-DSM
///     updates expensive.

namespace starfish {

/// One tagged byte region of a complex record. Tags are assigned by the
/// object layer; the store treats them opaquely (uniqueness not required,
/// order is preserved).
struct RecordRegion {
  uint32_t tag = 0;
  std::string bytes;

  bool operator==(const RecordRegion& other) const {
    return tag == other.tag && bytes == other.bytes;
  }
};

/// Store configuration.
struct ComplexStoreOptions {
  /// Pages written (one chained call) by every UpdateRegion invocation,
  /// emulating the DASDBS change-attribute page pool. 0 disables.
  uint32_t change_attr_page_pool = 0;

  /// Force the multi-page representation even for records that would fit a
  /// shared page (used by tests/ablations; the paper's models always prefer
  /// the small representation).
  bool force_large = false;
};

/// Storage placement details of one record (for the cost-model calibration
/// and Table 2 reproduction).
struct ComplexRecordInfo {
  bool is_small = false;
  uint32_t header_pages = 0;  ///< root + continuation header pages (0 if small)
  uint32_t data_pages = 0;    ///< data pages (0 if small)
  uint32_t payload_bytes = 0; ///< sum of region sizes
  uint32_t stored_bytes = 0;  ///< payload + directory/admin bytes
  /// Total pages the record occupies exclusively (0 for small records,
  /// which share their page).
  uint32_t private_pages() const { return header_pages + data_pages; }
};

/// TID-addressed store of complex records over one segment.
class ComplexRecordStore {
 public:
  ComplexRecordStore(Segment* segment, ComplexStoreOptions options = {})
      : segment_(segment), records_(segment), options_(options) {}

  /// Stores a record; returns its TID. The TID addresses the shared page
  /// slot (small) or the root header page (large, slot ==
  /// kComplexRecordSlot).
  Result<Tid> Insert(const std::vector<RecordRegion>& regions);

  /// Reads the whole record.
  Result<std::vector<RecordRegion>> ReadAll(const Tid& tid) const;

  /// Reads only the regions whose tag satisfies `want`. For large records
  /// only the data pages containing selected regions are read.
  Result<std::vector<RecordRegion>> ReadPartial(
      const Tid& tid, const std::function<bool(uint32_t)>& want) const;

  /// Replaces the whole record. Returns the (possibly new) TID: large
  /// records keep their TID; a small record that outgrows its page keeps its
  /// TID via forwarding; a small record that becomes large gets a new TID.
  Result<Tid> Replace(const Tid& tid, const std::vector<RecordRegion>& regions);

  /// Patches the `ordinal`-th region with tag `tag` in place (same-length
  /// fast path); falls back to Replace when the length changes, so — like
  /// Replace — it returns the possibly-new TID (a small record that outgrows
  /// its page representation moves). Writes the page pool if configured.
  Result<Tid> UpdateRegion(const Tid& tid, uint32_t tag, uint32_t ordinal,
                           std::string_view bytes);

  /// Removes the record and releases its private pages.
  Status Delete(const Tid& tid);

  /// Visits every record in the segment in physical order. Pages are
  /// prefetched in contiguous runs of up to `prefetch_window` pages.
  Status ScanObjects(
      const std::function<Status(Tid, const std::vector<RecordRegion>&)>& fn,
      uint32_t prefetch_window = 64) const;

  /// Projection-pushdown scan: visits every record but reads, for large
  /// records, only the header pages and the data pages whose regions
  /// satisfy `want` — unneeded data pages are skipped using the segment's
  /// page-type catalog, without touching them. `fn` receives just the
  /// selected regions. (Small shared-page records are read whole — there
  /// is nothing to skip within one page.)
  Status ScanPartial(
      const std::function<bool(uint32_t)>& want,
      const std::function<Status(Tid, const std::vector<RecordRegion>&)>& fn,
      uint32_t prefetch_window = 64) const;

  /// Placement details for calibration/statistics.
  Result<ComplexRecordInfo> GetInfo(const Tid& tid) const;

  Segment* segment() { return segment_; }
  const ComplexStoreOptions& options() const { return options_; }

  /// Catalog entry of the change-attribute page pool (persistent reopen):
  /// the pool is lazily allocated, so a restored store either re-adopts the
  /// saved run or allocates a fresh one on first use.
  PageId pool_first() const { return pool_first_; }
  void set_pool_first(PageId id) { pool_first_ = id; }

  /// Forwarded copy of a small record's home slot, kInvalidTid when `home`
  /// is large or plain; errors propagate (crash recovery: the forwarded
  /// copy of a live record must survive the slotted-page scrub, so an I/O
  /// failure must abort the scrub, not read as "no stub").
  Result<Tid> ForwardTarget(const Tid& home) const {
    if (home.is_complex()) return kInvalidTid;
    return records_.ForwardTarget(home);
  }

 private:
  struct DirEntry {
    uint32_t tag = 0;
    uint32_t stream_offset = 0;
    uint32_t length = 0;
  };
  struct LargeHeader {
    uint16_t region_count = 0;
    uint16_t header_pages = 0;  // incl. root
    uint16_t data_pages = 0;
    uint16_t aux_alloc = 0;     // pages in the aux run (ext headers + data)
    PageId aux_first = kInvalidPageId;
    uint32_t stream_bytes = 0;
  };

  uint32_t page_size() const { return segment_->buffer()->disk()->page_size(); }
  /// Usable bytes per page ("chunk") after the page header.
  uint32_t ChunkSize() const { return page_size() - kPageHeaderSize; }

  /// Lays regions out into the data stream (chunk-aligned packing).
  /// Returns directory entries and the total stream length.
  void LayoutStream(const std::vector<RecordRegion>& regions,
                    std::vector<DirEntry>* dir, uint32_t* stream_len) const;

  /// Number of header pages needed for `n` directory entries.
  uint32_t HeaderPagesFor(uint32_t n) const;

  /// Encodes the small (single slotted record) representation.
  static std::string EncodeSmall(const std::vector<RecordRegion>& regions);
  static Status DecodeSmall(std::string_view payload,
                            std::vector<RecordRegion>* regions);
  uint32_t SmallEncodedSize(const std::vector<RecordRegion>& regions) const;

  /// Writes a large record into the given root page + aux run. All touched
  /// pages are fixed, rewritten and marked dirty.
  Status WriteLarge(PageId root, const LargeHeader& hdr,
                    const std::vector<DirEntry>& dir,
                    const std::vector<RecordRegion>& regions);

  /// Reads the fixed header + directory; issues the DASDBS call pattern
  /// (root page, then remaining header pages in one chained call).
  Status ReadHeader(PageId root, LargeHeader* hdr,
                    std::vector<DirEntry>* dir) const;

  /// Data page id for chunk index `i` under header `hdr`.
  PageId DataPage(const LargeHeader& hdr, uint32_t chunk) const;

  Status WritePagePool();

  Segment* segment_;
  RecordManager records_;
  ComplexStoreOptions options_;
  PageId pool_first_ = kInvalidPageId;
};

}  // namespace starfish
