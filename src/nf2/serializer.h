#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "nf2/projection.h"
#include "nf2/schema.h"
#include "nf2/value.h"
#include "storage/complex_record.h"
#include "util/status.h"

/// \file serializer.h
/// Mapping between NF² tuples and tagged storage regions.
///
/// An object is serialized into one region per tuple, in depth-first
/// document order: the root tuple's flat image first, then for each
/// sub-tuple its flat image followed by its own descendants. A tuple's flat
/// image stores atomic/link attributes inline and, for each relation-valued
/// attribute, only the count of sub-tuples — the "minimum amount of
/// structure information" DASDBS kept with the data. Reassembly walks the
/// regions in order, consuming counts.
///
/// Region tags encode `path | (ordinal << 16)`: the low 16 bits name the
/// tuple-type path (what projections select), the high bits the per-path
/// ordinal within the object (diagnostics + integrity checks).
///
/// Flat attribute encoding: Int32 — 4 bytes LE; String — u16 length +
/// bytes; Link — u64; Relation — u16 sub-tuple count.

namespace starfish {

/// Serializer bound to one root schema.
class ObjectSerializer {
 public:
  explicit ObjectSerializer(std::shared_ptr<const Schema> root)
      : root_(std::move(root)) {}

  const std::shared_ptr<const Schema>& schema() const { return root_; }

  /// Serializes a full object into DFS-ordered regions.
  Result<std::vector<RecordRegion>> ToRegions(const Tuple& object) const;

  /// Reassembles an object from regions produced by ToRegions (possibly
  /// filtered by `projection` — regions of unselected paths must be absent).
  /// Unselected relation attributes come back as empty relations.
  Result<Tuple> FromRegions(const std::vector<RecordRegion>& regions,
                            const Projection& projection) const;

  /// Reassembles a full object (all paths present).
  Result<Tuple> FromRegionsAll(const std::vector<RecordRegion>& regions) const {
    return FromRegions(regions, Projection::All(*root_));
  }

  /// Encodes the flat image (atomics, links, sub-tuple counts) of one tuple
  /// of type `schema`.
  static std::string EncodeFlat(const Schema& schema, const Tuple& tuple);

  /// Like EncodeFlat, but relation-valued attributes take their counts from
  /// `counts` (attribute order) instead of the tuple's relation values.
  /// Used by in-place root-record updates, which must preserve the stored
  /// sub-tuple counts without materializing the sub-tuples.
  static std::string EncodeFlatWithCounts(const Schema& schema,
                                          const Tuple& tuple,
                                          const std::vector<uint32_t>& counts);

  /// Decodes a flat image. Relation attributes become empty relations;
  /// their stored counts are returned in `counts` (one entry per relation
  /// attribute, in attribute order) when non-null.
  static Result<Tuple> DecodeFlat(const Schema& schema, std::string_view bytes,
                                  std::vector<uint32_t>* counts = nullptr);

  /// Size in bytes of the flat image of `tuple` under `schema`.
  static uint32_t FlatSize(const Schema& schema, const Tuple& tuple);

  static PathId TagPath(uint32_t tag) { return static_cast<PathId>(tag & 0xFFFF); }
  static uint32_t TagOrdinal(uint32_t tag) { return tag >> 16; }
  static uint32_t MakeTag(PathId path, uint32_t ordinal) {
    return (ordinal << 16) | path;
  }

 private:
  Status AppendTuple(const Schema& schema, PathId path, const Tuple& tuple,
                     std::vector<uint32_t>* ordinals,
                     std::vector<RecordRegion>* out) const;

  Status ConsumeTuple(const Schema& schema, PathId path,
                      const std::vector<RecordRegion>& regions, size_t* cursor,
                      const Projection& projection, Tuple* out) const;

  std::shared_ptr<const Schema> root_;
};

}  // namespace starfish
