#include "nf2/projection.h"

namespace starfish {

Projection Projection::All(const Schema& root) {
  Projection p;
  p.included_.assign(root.path_count(), true);
  p.all_ = true;
  return p;
}

Projection Projection::RootOnly(const Schema& root) {
  Projection p;
  p.included_.assign(root.path_count(), false);
  p.included_[kRootPath] = true;
  p.all_ = root.path_count() == 1;
  return p;
}

Result<Projection> Projection::OfPaths(const Schema& root,
                                       const std::vector<PathId>& paths) {
  Projection p;
  p.included_.assign(root.path_count(), false);
  for (PathId path : paths) {
    if (path >= root.path_count()) {
      return Status::InvalidArgument("path " + std::to_string(path) +
                                     " out of range");
    }
    p.included_[path] = true;
  }
  if (!p.included_[kRootPath]) {
    return Status::InvalidArgument("projection must include the root path");
  }
  for (PathId path = 1; path < root.path_count(); ++path) {
    if (p.included_[path] && !p.included_[root.path(path).parent]) {
      return Status::InvalidArgument(
          "projection not ancestor-closed: path " + std::to_string(path) +
          " selected without its parent");
    }
  }
  p.all_ = true;
  for (bool inc : p.included_) p.all_ = p.all_ && inc;
  return p;
}

size_t Projection::count() const {
  size_t n = 0;
  for (bool inc : included_) n += inc ? 1 : 0;
  return n;
}

std::vector<PathId> Projection::paths() const {
  std::vector<PathId> out;
  for (PathId p = 0; p < included_.size(); ++p) {
    if (included_[p]) out.push_back(p);
  }
  return out;
}

std::string Projection::ToString() const {
  std::string out = "{";
  bool first = true;
  for (PathId p = 0; p < included_.size(); ++p) {
    if (!included_[p]) continue;
    if (!first) out += ",";
    out += std::to_string(p);
    first = false;
  }
  return out + "}";
}

}  // namespace starfish
