#include "nf2/serializer.h"

#include "util/coding.h"

namespace starfish {

std::string ObjectSerializer::EncodeFlat(const Schema& schema,
                                         const Tuple& tuple) {
  std::string out;
  for (size_t i = 0; i < schema.attributes().size(); ++i) {
    const Attribute& attr = schema.attributes()[i];
    const Value& value = tuple.values[i];
    switch (attr.type) {
      case AttrType::kInt32:
        PutFixed32(&out, static_cast<uint32_t>(value.as_int32()));
        break;
      case AttrType::kString:
        PutLengthPrefixed(&out, value.as_string());
        break;
      case AttrType::kLink:
        PutFixed64(&out, value.as_link());
        break;
      case AttrType::kRelation:
        PutFixed16(&out, static_cast<uint16_t>(value.as_relation().size()));
        break;
    }
  }
  return out;
}

std::string ObjectSerializer::EncodeFlatWithCounts(
    const Schema& schema, const Tuple& tuple,
    const std::vector<uint32_t>& counts) {
  std::string out;
  size_t rel_idx = 0;
  for (size_t i = 0; i < schema.attributes().size(); ++i) {
    const Attribute& attr = schema.attributes()[i];
    const Value& value = tuple.values[i];
    switch (attr.type) {
      case AttrType::kInt32:
        PutFixed32(&out, static_cast<uint32_t>(value.as_int32()));
        break;
      case AttrType::kString:
        PutLengthPrefixed(&out, value.as_string());
        break;
      case AttrType::kLink:
        PutFixed64(&out, value.as_link());
        break;
      case AttrType::kRelation:
        PutFixed16(&out, static_cast<uint16_t>(counts[rel_idx++]));
        break;
    }
  }
  return out;
}

uint32_t ObjectSerializer::FlatSize(const Schema& schema, const Tuple& tuple) {
  uint32_t size = 0;
  for (size_t i = 0; i < schema.attributes().size(); ++i) {
    const Attribute& attr = schema.attributes()[i];
    switch (attr.type) {
      case AttrType::kInt32:
        size += 4;
        break;
      case AttrType::kString:
        size += 2 + static_cast<uint32_t>(tuple.values[i].as_string().size());
        break;
      case AttrType::kLink:
        size += 8;
        break;
      case AttrType::kRelation:
        size += 2;
        break;
    }
  }
  return size;
}

Result<Tuple> ObjectSerializer::DecodeFlat(const Schema& schema,
                                           std::string_view bytes,
                                           std::vector<uint32_t>* counts) {
  Tuple tuple;
  tuple.values.reserve(schema.attributes().size());
  if (counts != nullptr) counts->clear();
  size_t off = 0;
  auto need = [&](size_t n) -> Status {
    if (off + n > bytes.size()) {
      return Status::Corruption("flat tuple of schema " + schema.name() +
                                " truncated");
    }
    return Status::OK();
  };
  for (const Attribute& attr : schema.attributes()) {
    switch (attr.type) {
      case AttrType::kInt32: {
        STARFISH_RETURN_NOT_OK(need(4));
        tuple.values.push_back(Value::Int32(
            static_cast<int32_t>(DecodeFixed32(bytes.data() + off))));
        off += 4;
        break;
      }
      case AttrType::kString: {
        STARFISH_RETURN_NOT_OK(need(2));
        const uint16_t len = DecodeFixed16(bytes.data() + off);
        off += 2;
        STARFISH_RETURN_NOT_OK(need(len));
        tuple.values.push_back(
            Value::Str(std::string(bytes.substr(off, len))));
        off += len;
        break;
      }
      case AttrType::kLink: {
        STARFISH_RETURN_NOT_OK(need(8));
        tuple.values.push_back(Value::Link(DecodeFixed64(bytes.data() + off)));
        off += 8;
        break;
      }
      case AttrType::kRelation: {
        STARFISH_RETURN_NOT_OK(need(2));
        const uint16_t count = DecodeFixed16(bytes.data() + off);
        off += 2;
        if (counts != nullptr) counts->push_back(count);
        tuple.values.push_back(Value::Relation({}));
        break;
      }
    }
  }
  if (off != bytes.size()) {
    return Status::Corruption("flat tuple of schema " + schema.name() +
                              " has trailing bytes");
  }
  return tuple;
}

Result<std::vector<RecordRegion>> ObjectSerializer::ToRegions(
    const Tuple& object) const {
  STARFISH_RETURN_NOT_OK(ValidateTuple(*root_, object));
  std::vector<RecordRegion> out;
  std::vector<uint32_t> ordinals(root_->path_count(), 0);
  STARFISH_RETURN_NOT_OK(
      AppendTuple(*root_, kRootPath, object, &ordinals, &out));
  return out;
}

Status ObjectSerializer::AppendTuple(const Schema& schema, PathId path,
                                     const Tuple& tuple,
                                     std::vector<uint32_t>* ordinals,
                                     std::vector<RecordRegion>* out) const {
  out->push_back(
      RecordRegion{MakeTag(path, (*ordinals)[path]++), EncodeFlat(schema, tuple)});
  for (size_t i = 0; i < schema.attributes().size(); ++i) {
    const Attribute& attr = schema.attributes()[i];
    if (attr.type != AttrType::kRelation) continue;
    STARFISH_ASSIGN_OR_RETURN(PathId child, root_->ChildPath(path, i));
    for (const Tuple& sub : tuple.values[i].as_relation()) {
      STARFISH_RETURN_NOT_OK(AppendTuple(*attr.relation, child, sub, ordinals, out));
    }
  }
  return Status::OK();
}

Result<Tuple> ObjectSerializer::FromRegions(
    const std::vector<RecordRegion>& regions,
    const Projection& projection) const {
  size_t cursor = 0;
  Tuple object;
  STARFISH_RETURN_NOT_OK(ConsumeTuple(*root_, kRootPath, regions, &cursor,
                                      projection, &object));
  if (cursor != regions.size()) {
    return Status::Corruption("object has " +
                              std::to_string(regions.size() - cursor) +
                              " unconsumed regions");
  }
  return object;
}

Status ObjectSerializer::ConsumeTuple(const Schema& schema, PathId path,
                                      const std::vector<RecordRegion>& regions,
                                      size_t* cursor,
                                      const Projection& projection,
                                      Tuple* out) const {
  if (*cursor >= regions.size()) {
    return Status::Corruption("object truncated at path " +
                              std::to_string(path));
  }
  const RecordRegion& region = regions[*cursor];
  if (TagPath(region.tag) != path) {
    return Status::Corruption(
        "expected region of path " + std::to_string(path) + ", found " +
        std::to_string(TagPath(region.tag)));
  }
  ++*cursor;
  std::vector<uint32_t> counts;
  STARFISH_ASSIGN_OR_RETURN(*out, DecodeFlat(schema, region.bytes, &counts));

  size_t rel_idx = 0;
  for (size_t i = 0; i < schema.attributes().size(); ++i) {
    const Attribute& attr = schema.attributes()[i];
    if (attr.type != AttrType::kRelation) continue;
    const uint32_t count = counts[rel_idx++];
    STARFISH_ASSIGN_OR_RETURN(PathId child, root_->ChildPath(path, i));
    if (!projection.Includes(child)) continue;  // regions absent by design
    std::vector<Tuple> subs;
    subs.reserve(count);
    for (uint32_t j = 0; j < count; ++j) {
      Tuple sub;
      STARFISH_RETURN_NOT_OK(ConsumeTuple(*attr.relation, child, regions,
                                          cursor, projection, &sub));
      subs.push_back(std::move(sub));
    }
    out->values[i] = Value::Relation(std::move(subs));
  }
  return Status::OK();
}

}  // namespace starfish
