#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "nf2/schema.h"
#include "util/status.h"

/// \file value.h
/// Runtime values of NF² tuples.
///
/// A Tuple holds one Value per attribute of its Schema. Relation-valued
/// attributes hold a vector of sub-Tuples; LINK attributes hold an opaque
/// 64-bit object reference that the storage models resolve (the paper's
/// OidConnection — the "physical reference [that] is the address of the
/// referred Station").

namespace starfish {

class Value;

/// One NF² tuple: values in schema attribute order.
struct Tuple {
  std::vector<Value> values;

  Tuple() = default;
  explicit Tuple(std::vector<Value> vals) : values(std::move(vals)) {}

  bool operator==(const Tuple& other) const;
  bool operator!=(const Tuple& other) const { return !(*this == other); }
};

/// Reference to another complex object. The generator stores logical object
/// numbers; the direct storage models may additionally map them to physical
/// addresses via their (uncounted, in-memory) object tables.
struct LinkRef {
  uint64_t ref = 0;
  bool operator==(const LinkRef& other) const { return ref == other.ref; }
};

/// A single attribute value: int, string, link or nested relation.
class Value {
 public:
  Value() : repr_(int32_t{0}) {}

  static Value Int32(int32_t v) { return Value(Repr(v)); }
  static Value Str(std::string v) { return Value(Repr(std::move(v))); }
  static Value Link(uint64_t ref) { return Value(Repr(LinkRef{ref})); }
  static Value Relation(std::vector<Tuple> tuples) {
    return Value(Repr(std::move(tuples)));
  }

  AttrType type() const {
    switch (repr_.index()) {
      case 0: return AttrType::kInt32;
      case 1: return AttrType::kString;
      case 2: return AttrType::kLink;
      default: return AttrType::kRelation;
    }
  }

  bool is_int32() const { return repr_.index() == 0; }
  bool is_string() const { return repr_.index() == 1; }
  bool is_link() const { return repr_.index() == 2; }
  bool is_relation() const { return repr_.index() == 3; }

  int32_t as_int32() const { return std::get<int32_t>(repr_); }
  const std::string& as_string() const { return std::get<std::string>(repr_); }
  uint64_t as_link() const { return std::get<LinkRef>(repr_).ref; }
  const std::vector<Tuple>& as_relation() const {
    return std::get<std::vector<Tuple>>(repr_);
  }
  std::vector<Tuple>& as_relation() {
    return std::get<std::vector<Tuple>>(repr_);
  }

  bool operator==(const Value& other) const { return repr_ == other.repr_; }
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Debug rendering ("42", "\"abc\"", "->7", "{3 tuples}").
  std::string ToString() const;

 private:
  using Repr = std::variant<int32_t, std::string, LinkRef, std::vector<Tuple>>;
  explicit Value(Repr repr) : repr_(std::move(repr)) {}
  Repr repr_;
};

/// Checks that `tuple` conforms to `schema` (attribute count and types,
/// recursively).
Status ValidateTuple(const Schema& schema, const Tuple& tuple);

/// Renders a tuple for debugging: "(1, \"x\", {(...)})".
std::string TupleToString(const Tuple& tuple);

}  // namespace starfish
