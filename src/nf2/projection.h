#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nf2/schema.h"
#include "util/status.h"

/// \file projection.h
/// Sub-object projections.
///
/// The benchmark queries retrieve *parts* of objects: query 2 navigates via
/// root attributes and Connection sub-tuples without touching Sightseeing
/// data ("only the attribute tuples that are needed will be
/// projected/selected"). A Projection names the set of tuple-type paths a
/// query needs. The set must be ancestor-closed — a sub-tuple cannot be
/// interpreted without the parent tuples that carry the nesting counts.

namespace starfish {

/// A set of path ids to retrieve. Immutable once built.
class Projection {
 public:
  /// All paths of the schema (whole-object retrieval).
  static Projection All(const Schema& root);

  /// Only the root tuple's atomic/link attributes.
  static Projection RootOnly(const Schema& root);

  /// Selected paths; validates ancestor-closure against `root`.
  static Result<Projection> OfPaths(const Schema& root,
                                    const std::vector<PathId>& paths);

  /// True if the path is selected.
  bool Includes(PathId path) const {
    return path < included_.size() && included_[path];
  }

  /// True if the whole schema tree is selected.
  bool IsAll() const { return all_; }

  /// Number of selected paths.
  size_t count() const;

  /// Selected paths in ascending order.
  std::vector<PathId> paths() const;

  std::string ToString() const;

 private:
  Projection() = default;
  std::vector<bool> included_;
  bool all_ = false;
};

}  // namespace starfish
