#include "nf2/schema.h"

namespace starfish {

Result<size_t> Schema::IndexOf(const std::string& attr_name) const {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name == attr_name) return i;
  }
  return Status::NotFound("no attribute '" + attr_name + "' in schema " +
                          name_);
}

Result<PathId> Schema::ChildPath(PathId parent_path, size_t attr_index) const {
  for (PathId p = 0; p < paths_.size(); ++p) {
    if (p != kRootPath && paths_[p].parent == parent_path &&
        paths_[p].attr_index == attr_index) {
      return p;
    }
  }
  return Status::NotFound("no relation attribute " +
                          std::to_string(attr_index) + " under path " +
                          std::to_string(parent_path));
}

Result<PathId> Schema::PathByName(const std::string& qualified_name) const {
  for (PathId p = 0; p < paths_.size(); ++p) {
    if (paths_[p].qualified_name == qualified_name) return p;
  }
  return Status::NotFound("no path named '" + qualified_name + "'");
}

void Schema::BuildPathTable() {
  paths_.clear();
  // DFS pre-order over relation attributes.
  struct Frame {
    const Schema* schema;
    PathId parent;
    size_t attr_index;
    std::string qualified;
  };
  paths_.push_back(PathInfo{kRootPath, 0, this, name_});
  std::vector<Frame> stack;
  auto push_children = [&stack](const Schema* s, PathId path,
                                const std::string& prefix) {
    // Push in reverse so DFS visits attributes in declaration order.
    for (size_t i = s->attributes_.size(); i > 0; --i) {
      const Attribute& attr = s->attributes_[i - 1];
      if (attr.type == AttrType::kRelation) {
        stack.push_back(Frame{attr.relation.get(), path, i - 1,
                              prefix + "." + attr.name});
      }
    }
  };
  push_children(this, kRootPath, name_);
  while (!stack.empty()) {
    Frame frame = stack.back();
    stack.pop_back();
    const PathId path = static_cast<PathId>(paths_.size());
    paths_.push_back(
        PathInfo{frame.parent, frame.attr_index, frame.schema, frame.qualified});
    push_children(frame.schema, path, frame.qualified);
  }
}

SchemaBuilder::SchemaBuilder(std::string name)
    : schema_(std::shared_ptr<Schema>(new Schema())) {
  schema_->name_ = std::move(name);
}

SchemaBuilder& SchemaBuilder::AddInt32(std::string name) {
  schema_->attributes_.push_back(Attribute{std::move(name), AttrType::kInt32, nullptr});
  return *this;
}

SchemaBuilder& SchemaBuilder::AddString(std::string name) {
  schema_->attributes_.push_back(Attribute{std::move(name), AttrType::kString, nullptr});
  return *this;
}

SchemaBuilder& SchemaBuilder::AddLink(std::string name) {
  schema_->attributes_.push_back(Attribute{std::move(name), AttrType::kLink, nullptr});
  return *this;
}

SchemaBuilder& SchemaBuilder::AddRelation(
    std::string name, std::shared_ptr<const Schema> sub_schema) {
  schema_->attributes_.push_back(
      Attribute{std::move(name), AttrType::kRelation, std::move(sub_schema)});
  return *this;
}

std::shared_ptr<const Schema> SchemaBuilder::Build() {
  schema_->BuildPathTable();
  return schema_;
}

}  // namespace starfish
