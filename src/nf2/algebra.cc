#include "nf2/algebra.h"

#include <unordered_map>

#include "util/coding.h"

namespace starfish {

namespace {

/// Appends one attribute declaration of `source` to `builder`.
void CopyAttribute(SchemaBuilder* builder, const Attribute& attr) {
  switch (attr.type) {
    case AttrType::kInt32:
      builder->AddInt32(attr.name);
      break;
    case AttrType::kString:
      builder->AddString(attr.name);
      break;
    case AttrType::kLink:
      builder->AddLink(attr.name);
      break;
    case AttrType::kRelation:
      builder->AddRelation(attr.name, attr.relation);
      break;
  }
}

/// Canonical byte encoding of a value, injective per type, used as a
/// grouping key (deep: recurses into relation values).
void CanonicalKey(const Value& value, std::string* out) {
  out->push_back(static_cast<char>(value.type()));
  switch (value.type()) {
    case AttrType::kInt32:
      PutFixed32(out, static_cast<uint32_t>(value.as_int32()));
      break;
    case AttrType::kString:
      PutFixed32(out, static_cast<uint32_t>(value.as_string().size()));
      out->append(value.as_string());
      break;
    case AttrType::kLink:
      PutFixed64(out, value.as_link());
      break;
    case AttrType::kRelation: {
      PutFixed32(out, static_cast<uint32_t>(value.as_relation().size()));
      for (const Tuple& sub : value.as_relation()) {
        PutFixed32(out, static_cast<uint32_t>(sub.values.size()));
        for (const Value& v : sub.values) CanonicalKey(v, out);
      }
      break;
    }
  }
}

Status CheckArity(const Relation& input) {
  if (input.schema == nullptr) {
    return Status::InvalidArgument("relation has no schema");
  }
  for (const Tuple& tuple : input.tuples) {
    if (tuple.values.size() != input.schema->attributes().size()) {
      return Status::InvalidArgument("tuple arity does not match schema");
    }
  }
  return Status::OK();
}

}  // namespace

Result<Relation> Project(const Relation& input,
                         const std::vector<size_t>& attr_indexes) {
  STARFISH_RETURN_NOT_OK(CheckArity(input));
  SchemaBuilder builder(input.schema->name() + "_proj");
  for (size_t idx : attr_indexes) {
    if (idx >= input.schema->attributes().size()) {
      return Status::InvalidArgument("projection index out of range");
    }
    CopyAttribute(&builder, input.schema->attributes()[idx]);
  }
  Relation out;
  out.schema = builder.Build();
  out.tuples.reserve(input.tuples.size());
  for (const Tuple& tuple : input.tuples) {
    Tuple projected;
    projected.values.reserve(attr_indexes.size());
    for (size_t idx : attr_indexes) projected.values.push_back(tuple.values[idx]);
    out.tuples.push_back(std::move(projected));
  }
  return out;
}

Result<Relation> Select(const Relation& input,
                        const std::function<bool(const Tuple&)>& predicate) {
  STARFISH_RETURN_NOT_OK(CheckArity(input));
  Relation out;
  out.schema = input.schema;
  for (const Tuple& tuple : input.tuples) {
    if (predicate(tuple)) out.tuples.push_back(tuple);
  }
  return out;
}

Result<Relation> Nest(const Relation& input,
                      const std::vector<size_t>& nest_attr_indexes,
                      const std::string& as_name) {
  STARFISH_RETURN_NOT_OK(CheckArity(input));
  const size_t arity = input.schema->attributes().size();
  std::vector<bool> nested(arity, false);
  for (size_t idx : nest_attr_indexes) {
    if (idx >= arity) return Status::InvalidArgument("nest index out of range");
    nested[idx] = true;
  }
  std::vector<size_t> group_attrs, inner_attrs;
  for (size_t i = 0; i < arity; ++i) {
    (nested[i] ? inner_attrs : group_attrs).push_back(i);
  }
  if (inner_attrs.empty()) {
    return Status::InvalidArgument("nest needs at least one attribute");
  }

  SchemaBuilder inner_builder(input.schema->name() + "_" + as_name);
  for (size_t idx : inner_attrs) {
    CopyAttribute(&inner_builder, input.schema->attributes()[idx]);
  }
  auto inner_schema = inner_builder.Build();
  SchemaBuilder outer_builder(input.schema->name() + "_nested");
  for (size_t idx : group_attrs) {
    CopyAttribute(&outer_builder, input.schema->attributes()[idx]);
  }
  outer_builder.AddRelation(as_name, inner_schema);

  Relation out;
  out.schema = outer_builder.Build();
  std::unordered_map<std::string, size_t> group_of;  // key -> out index
  for (const Tuple& tuple : input.tuples) {
    std::string key;
    for (size_t idx : group_attrs) CanonicalKey(tuple.values[idx], &key);
    auto [it, inserted] = group_of.try_emplace(key, out.tuples.size());
    if (inserted) {
      Tuple group;
      for (size_t idx : group_attrs) group.values.push_back(tuple.values[idx]);
      group.values.push_back(Value::Relation({}));
      out.tuples.push_back(std::move(group));
    }
    Tuple inner;
    for (size_t idx : inner_attrs) inner.values.push_back(tuple.values[idx]);
    out.tuples[it->second].values.back().as_relation().push_back(
        std::move(inner));
  }
  return out;
}

Result<Relation> Unnest(const Relation& input, size_t rel_attr_index) {
  STARFISH_RETURN_NOT_OK(CheckArity(input));
  const auto& attrs = input.schema->attributes();
  if (rel_attr_index >= attrs.size() ||
      attrs[rel_attr_index].type != AttrType::kRelation) {
    return Status::InvalidArgument(
        "unnest needs a relation-valued attribute index");
  }
  const Schema& inner = *attrs[rel_attr_index].relation;
  SchemaBuilder builder(input.schema->name() + "_unnested");
  for (size_t i = 0; i < attrs.size(); ++i) {
    if (i == rel_attr_index) {
      for (const Attribute& in : inner.attributes()) CopyAttribute(&builder, in);
    } else {
      CopyAttribute(&builder, attrs[i]);
    }
  }
  Relation out;
  out.schema = builder.Build();
  for (const Tuple& tuple : input.tuples) {
    for (const Tuple& sub : tuple.values[rel_attr_index].as_relation()) {
      Tuple flat;
      for (size_t i = 0; i < attrs.size(); ++i) {
        if (i == rel_attr_index) {
          for (const Value& v : sub.values) flat.values.push_back(v);
        } else {
          flat.values.push_back(tuple.values[i]);
        }
      }
      out.tuples.push_back(std::move(flat));
    }
  }
  return out;
}

Result<Relation> JoinOn(const Relation& left, size_t left_attr,
                        const Relation& right, size_t right_attr) {
  STARFISH_RETURN_NOT_OK(CheckArity(left));
  STARFISH_RETURN_NOT_OK(CheckArity(right));
  if (left_attr >= left.schema->attributes().size() ||
      right_attr >= right.schema->attributes().size()) {
    return Status::InvalidArgument("join attribute out of range");
  }
  SchemaBuilder builder(left.schema->name() + "_join_" + right.schema->name());
  for (const Attribute& attr : left.schema->attributes()) {
    CopyAttribute(&builder, attr);
  }
  for (const Attribute& attr : right.schema->attributes()) {
    CopyAttribute(&builder, attr);
  }
  Relation out;
  out.schema = builder.Build();

  std::unordered_map<std::string, std::vector<size_t>> hash;
  for (size_t r = 0; r < right.tuples.size(); ++r) {
    std::string key;
    CanonicalKey(right.tuples[r].values[right_attr], &key);
    hash[key].push_back(r);
  }
  for (const Tuple& lt : left.tuples) {
    std::string key;
    CanonicalKey(lt.values[left_attr], &key);
    auto it = hash.find(key);
    if (it == hash.end()) continue;
    for (size_t r : it->second) {
      Tuple joined = lt;
      for (const Value& v : right.tuples[r].values) joined.values.push_back(v);
      out.tuples.push_back(std::move(joined));
    }
  }
  return out;
}

}  // namespace starfish
