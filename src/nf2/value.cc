#include "nf2/value.h"

namespace starfish {

bool Tuple::operator==(const Tuple& other) const {
  return values == other.values;
}

std::string Value::ToString() const {
  switch (type()) {
    case AttrType::kInt32:
      return std::to_string(as_int32());
    case AttrType::kString:
      return "\"" + as_string() + "\"";
    case AttrType::kLink:
      return "->" + std::to_string(as_link());
    case AttrType::kRelation: {
      std::string out = "{";
      const auto& tuples = as_relation();
      for (size_t i = 0; i < tuples.size(); ++i) {
        if (i > 0) out += ", ";
        out += TupleToString(tuples[i]);
      }
      out += "}";
      return out;
    }
  }
  return "?";
}

std::string TupleToString(const Tuple& tuple) {
  std::string out = "(";
  for (size_t i = 0; i < tuple.values.size(); ++i) {
    if (i > 0) out += ", ";
    out += tuple.values[i].ToString();
  }
  out += ")";
  return out;
}

Status ValidateTuple(const Schema& schema, const Tuple& tuple) {
  if (tuple.values.size() != schema.attributes().size()) {
    return Status::InvalidArgument(
        "tuple has " + std::to_string(tuple.values.size()) +
        " values, schema " + schema.name() + " has " +
        std::to_string(schema.attributes().size()) + " attributes");
  }
  for (size_t i = 0; i < tuple.values.size(); ++i) {
    const Attribute& attr = schema.attributes()[i];
    const Value& value = tuple.values[i];
    if (value.type() != attr.type) {
      return Status::InvalidArgument("attribute '" + attr.name +
                                     "' has mismatched type");
    }
    if (attr.type == AttrType::kRelation) {
      for (const Tuple& sub : value.as_relation()) {
        STARFISH_RETURN_NOT_OK(ValidateTuple(*attr.relation, sub));
      }
    }
  }
  return Status::OK();
}

}  // namespace starfish
