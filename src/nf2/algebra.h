#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "nf2/schema.h"
#include "nf2/value.h"
#include "util/status.h"

/// \file algebra.h
/// In-memory NF² algebra.
///
/// The paper's storage transformations are algebraic: DASDBS-NSM is the NSM
/// relations *nested* on the root/parent foreign keys ("We can force such a
/// clustering by means of nesting on these attributes", §3.4), and object
/// reassembly is unnest + join. This module provides those operators over
/// in-memory relations — the NF² model of Schek & Scholl the paper builds
/// on — so applications can reshape retrieved data without round-tripping
/// through storage.
///
/// All operators are pure: they build fresh schemas/tuples and never mutate
/// their inputs.

namespace starfish {

/// An in-memory NF² relation: a schema plus its tuples.
struct Relation {
  std::shared_ptr<const Schema> schema;
  std::vector<Tuple> tuples;
};

/// π — keeps the attributes at `attr_indexes` (in the given order,
/// duplicates allowed). Nested relation values are kept whole.
Result<Relation> Project(const Relation& input,
                         const std::vector<size_t>& attr_indexes);

/// σ — keeps the tuples satisfying `predicate`.
Result<Relation> Select(const Relation& input,
                        const std::function<bool(const Tuple&)>& predicate);

/// ν — nests: groups tuples by all attributes NOT in `nest_attr_indexes`;
/// each group becomes one tuple whose grouping attributes are kept and
/// whose nested attributes are collapsed into a relation-valued attribute
/// named `as_name` (appended last). Group order is first-appearance;
/// within-group order is input order.
Result<Relation> Nest(const Relation& input,
                      const std::vector<size_t>& nest_attr_indexes,
                      const std::string& as_name);

/// μ — unnests: replaces the relation-valued attribute at `rel_attr_index`
/// by its sub-tuples' attributes (inlined in place); one output tuple per
/// sub-tuple. Tuples with an empty sub-relation produce no output (the
/// classic information-losing property of unnest — nest(unnest(r)) == r
/// only when every sub-relation is non-empty).
Result<Relation> Unnest(const Relation& input, size_t rel_attr_index);

/// Natural-join-like helper used for object reassembly: pairs every tuple
/// of `left` with the tuples of `right` whose attribute `right_attr` equals
/// the left tuple's `left_attr` (hash join on one attribute). Output schema
/// is left's attributes followed by right's (names may repeat).
Result<Relation> JoinOn(const Relation& left, size_t left_attr,
                        const Relation& right, size_t right_attr);

}  // namespace starfish
