#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/status.h"

/// \file schema.h
/// NF² (nested relational) schemas.
///
/// The paper's complex objects are NF² tuples: tuples whose attributes are
/// atomic values (INT, STR), references to other objects (LINK), or whole
/// relations of sub-tuples. A Schema describes one tuple type; relation
/// attributes nest further Schemas, e.g. the benchmark's
///
///   Station(Key, NoPlatform, NoSeeing, Name,
///           Platform{(PlatformNr, NoLine, TicketCode, Information,
///                     Connection{(LineNr, KeyConnection, OidConnection,
///                                 DepartureTimes)})},
///           Sightseeing{(SeeingNr, Description, Location, History, Remarks)})
///
/// Every tuple type reachable from the root gets a *path id* in depth-first
/// pre-order: Station = 0, Platform = 1, Connection = 2, Sightseeing = 3.
/// Path ids identify sub-object classes in projections and region tags.

namespace starfish {

/// Attribute domain.
enum class AttrType : uint8_t {
  kInt32 = 0,
  kString = 1,
  kLink = 2,      ///< reference to another complex object
  kRelation = 3,  ///< set of sub-tuples (relation-valued attribute)
};

class Schema;

/// One attribute of a tuple type.
struct Attribute {
  std::string name;
  AttrType type = AttrType::kInt32;
  std::shared_ptr<const Schema> relation;  ///< set for kRelation only
};

/// Path id — index of a tuple type in the DFS pre-order of the schema tree.
using PathId = uint16_t;

/// Root tuple type's path id.
inline constexpr PathId kRootPath = 0;

/// Descriptor of one path (tuple type) of a root schema.
struct PathInfo {
  PathId parent = kRootPath;      ///< parent path (root's parent is itself)
  size_t attr_index = 0;          ///< relation attribute index in the parent
  const Schema* schema = nullptr; ///< tuple type at this path
  std::string qualified_name;     ///< e.g. "Station.Platform.Connection"
};

/// An immutable NF² tuple type. Build with SchemaBuilder.
class Schema : public std::enable_shared_from_this<Schema> {
 public:
  const std::string& name() const { return name_; }
  const std::vector<Attribute>& attributes() const { return attributes_; }

  /// Index of the named attribute, or NotFound.
  Result<size_t> IndexOf(const std::string& attr_name) const;

  /// Number of tuple types in the tree rooted here (>= 1). Only meaningful
  /// on a root schema after Finalize (SchemaBuilder::Build does this).
  size_t path_count() const { return paths_.size(); }

  /// Path table entry. Requires path < path_count().
  const PathInfo& path(PathId path) const { return paths_[path]; }

  /// Path id of the tuple type reached from `parent_path` through its
  /// relation attribute `attr_index`.
  Result<PathId> ChildPath(PathId parent_path, size_t attr_index) const;

  /// Path id whose qualified name matches (e.g. "Station.Platform").
  Result<PathId> PathByName(const std::string& qualified_name) const;

 private:
  friend class SchemaBuilder;
  Schema() = default;

  void BuildPathTable();

  std::string name_;
  std::vector<Attribute> attributes_;
  std::vector<PathInfo> paths_;  // populated on the root schema only
};

/// Fluent builder for Schema. Sub-schemas are built first and passed to
/// AddRelation; Build() assigns the path table of the resulting root.
/// A built sub-schema must appear at most once in a schema tree.
class SchemaBuilder {
 public:
  explicit SchemaBuilder(std::string name);

  SchemaBuilder& AddInt32(std::string name);
  SchemaBuilder& AddString(std::string name);
  SchemaBuilder& AddLink(std::string name);
  SchemaBuilder& AddRelation(std::string name,
                             std::shared_ptr<const Schema> sub_schema);

  /// Finalizes the schema and computes its path table.
  std::shared_ptr<const Schema> Build();

 private:
  std::shared_ptr<Schema> schema_;
};

}  // namespace starfish
