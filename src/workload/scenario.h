#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nf2/schema.h"
#include "nf2/value.h"
#include "util/status.h"
#include "workload/trace.h"

/// \file scenario.h
/// OCB-style parameterized scenario generation (Darmont's object clustering
/// benchmark line): a seeded synthetic workload with skewed fan-out, a
/// Zipf-distributed hot set that drifts, burst phases, a read/write ratio
/// schedule and multi-op transaction groups — everything the paper's five
/// hand-written access mixes are not. A ScenarioParams value plus a seed
/// deterministically produces one Trace; named families
/// (ScenarioFamilies) cover the corners of the parameter space.
///
/// The generator maintains its own model of which refs are live (including
/// transaction rollback), so every emitted write is valid by construction
/// and every guaranteed-miss probe really misses — the differential oracle
/// (shadow.h) then independently recomputes expected outcomes at replay
/// time.

namespace starfish::workload {

/// Knobs of one scenario. All defaults produce a small mixed workload.
struct ScenarioParams {
  /// Master seed: same params + same seed => byte-identical trace.
  uint64_t seed = 1;

  /// Objects Put during the load phase (refs 0 .. n_objects-1).
  uint32_t n_objects = 48;

  /// Operations emitted after the load phase.
  uint32_t n_ops = 400;

  /// New refs the workload may Put after the load (growth).
  uint32_t max_growth = 24;

  /// Zipf exponent of target selection over live objects (0 = uniform;
  /// 0.8-1.2 = the classic hot-set skews).
  double zipf_theta = 0.8;

  /// Ops between hot-set rotations (the Zipf ranks shift over the live
  /// set, so yesterday's cold objects become hot). 0 = static hot set.
  uint32_t drift_every = 96;

  /// Fraction of post-load ops that are writes — at the START of the
  /// trace. The effective fraction interpolates linearly to
  /// `write_fraction_end` across the trace (a read/write ratio schedule);
  /// set both equal for a flat mix.
  double write_fraction = 0.3;
  double write_fraction_end = 0.3;

  /// Fraction of reads that are full scans.
  double scan_fraction = 0.01;

  /// Fraction of reads probing refs guaranteed absent (negative-cache
  /// coverage). Half of these target the next not-yet-Put growth ref, so
  /// a later Put turns the cached NotFound verdict into the hazard the
  /// objcache epoch machinery must handle.
  double miss_fraction = 0.05;

  /// Fraction of write decisions that open a multi-op transaction group
  /// instead of an autonomous op.
  double txn_fraction = 0.2;

  /// Fraction of transaction groups sealed by Rollback instead of Commit.
  double rollback_fraction = 0.3;

  /// Max ops per transaction group (>= 1).
  uint32_t txn_ops_max = 5;

  /// Burst phases: 0 = fully interleaved mix; N > 0 alternates N-op
  /// read-only and write-only phases (the multi-threaded replayer turns
  /// each phase into one parallel batch).
  uint32_t burst_len = 0;

  /// Skewed per-object fan-out: sub-tuple counts are geometric-ish in
  /// [1, fanout_max], so a few objects are much larger than most.
  uint32_t fanout_max = 6;

  /// STR attribute length of generated payloads.
  uint32_t string_bytes = 24;
};

/// A named parameter point.
struct Scenario {
  std::string name;
  ScenarioParams params;
};

/// The named scenario families, re-seeded from `seed`: read-mostly,
/// write-heavy, hot-drift, bursty, txn-mix, scan-heavy, cooling.
std::vector<Scenario> ScenarioFamilies(uint64_t seed);

/// The workload object schema:
///
///   Doc(Id, Tag, Name,
///       Items{(Nr, Payload, Ref)},        -- links live here
///       Notes{(Nr, Text)})
///
/// Nested relations exercise every storage model's shredding; Item.Ref
/// links exercise Children navigation.
std::shared_ptr<const Schema> MakeWorkloadSchema();

/// The key of `ref` (keys are ref+1, unique and immutable by construction).
int64_t WorkloadKeyOf(ObjectRef ref);

/// Deterministically builds the object a kPut/kReplace op stores:
/// schema-conforming, key = WorkloadKeyOf(ref), `fanout` sub-tuples per
/// relation, links uniform over [0, ref_universe).
Tuple MakeWorkloadObject(const Schema& schema, ObjectRef ref,
                         uint64_t payload_seed, uint32_t fanout,
                         uint64_t ref_universe, uint32_t string_bytes);

/// Deterministically builds the root-record tuple a kUpdateRoot op writes:
/// full root arity, relation attributes empty, key preserved.
Tuple MakeWorkloadRootRecord(const Schema& schema, ObjectRef ref,
                             uint64_t payload_seed, uint32_t string_bytes);

/// Generates the trace of one scenario. Deterministic in `params`
/// (including the seed); InvalidArgument for degenerate parameters.
Result<Trace> GenerateTrace(const ScenarioParams& params);

}  // namespace starfish::workload
