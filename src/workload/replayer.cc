#include "workload/replayer.h"

#include <map>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "nf2/projection.h"
#include "util/coding.h"
#include "util/crc32.h"
#include "workload/scenario.h"

namespace starfish::workload {

namespace {

/// Renders a children list for a divergence message.
std::string RefsToString(const std::vector<ObjectRef>& refs) {
  std::string out = "[";
  for (size_t i = 0; i < refs.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(refs[i]);
  }
  return out + "]";
}

/// Executes one read-class op against `reader` (a ComplexObjectStore or a
/// ReadSession — identical read signatures) and checks the oracle verdict.
/// `by_ref` is false for plain NSM, whose kGet is served by key instead.
template <typename Reader>
Status CheckRead(Reader& reader, const Projection& all, bool by_ref,
                 const TraceOp& op, const Expected& expected,
                 const std::string& where) {
  switch (op.kind) {
    case TraceOpKind::kScan: {
      std::map<int64_t, Tuple> image;
      STARFISH_RETURN_NOT_OK(
          reader.Scan(all, [&](int64_t key, const Tuple& object) {
            if (!image.emplace(key, object).second) {
              return Status::Internal(where + "scan yielded key " +
                                      std::to_string(key) + " twice");
            }
            return Status::OK();
          }));
      if (image.size() != expected.scan.size()) {
        return Status::Internal(
            where + "scan saw " + std::to_string(image.size()) +
            " objects, oracle expects " + std::to_string(expected.scan.size()));
      }
      for (const auto& [key, tuple] : expected.scan) {
        const auto it = image.find(key);
        if (it == image.end()) {
          return Status::Internal(where + "scan is missing key " +
                                  std::to_string(key));
        }
        if (it->second != tuple) {
          return Status::Internal(where + "scan object with key " +
                                  std::to_string(key) +
                                  " diverges: " + TupleToString(it->second) +
                                  " != " + TupleToString(tuple));
        }
      }
      return Status::OK();
    }
    case TraceOpKind::kGet:
    case TraceOpKind::kGetByKey: {
      Result<Tuple> got =
          (op.kind == TraceOpKind::kGet && by_ref)
              ? reader.Get(op.ref, all)
              : reader.GetByKey(WorkloadKeyOf(op.ref), all);
      if (!expected.present) {
        if (got.ok()) {
          return Status::Internal(where + "read succeeded, oracle expects " +
                                  std::string("NotFound"));
        }
        if (!got.status().IsNotFound()) {
          return Status::Internal(where + "expected NotFound, store says " +
                                  got.status().ToString());
        }
        return Status::OK();
      }
      if (!got.ok()) {
        return Status::Internal(where + "read failed: " +
                                got.status().ToString());
      }
      if (got.value() != expected.tuple) {
        return Status::Internal(where + "object diverges: " +
                                TupleToString(got.value()) +
                                " != " + TupleToString(expected.tuple));
      }
      return Status::OK();
    }
    case TraceOpKind::kChildren: {
      Result<std::vector<ObjectRef>> got = reader.Children(op.ref);
      if (!expected.present) {
        if (got.ok()) {
          return Status::Internal(where +
                                  "Children succeeded, oracle expects "
                                  "NotFound");
        }
        if (!got.status().IsNotFound()) {
          return Status::Internal(where + "expected NotFound, store says " +
                                  got.status().ToString());
        }
        return Status::OK();
      }
      if (!got.ok()) {
        return Status::Internal(where + "Children failed: " +
                                got.status().ToString());
      }
      if (got.value() != expected.children) {
        return Status::Internal(where + "children diverge: " +
                                RefsToString(got.value()) +
                                " != " + RefsToString(expected.children));
      }
      return Status::OK();
    }
    case TraceOpKind::kRootRecord: {
      Result<Tuple> got = reader.RootRecord(op.ref);
      if (!expected.present) {
        if (got.ok()) {
          return Status::Internal(where +
                                  "RootRecord succeeded, oracle expects "
                                  "NotFound");
        }
        if (!got.status().IsNotFound()) {
          return Status::Internal(where + "expected NotFound, store says " +
                                  got.status().ToString());
        }
        return Status::OK();
      }
      if (!got.ok()) {
        return Status::Internal(where + "RootRecord failed: " +
                                got.status().ToString());
      }
      if (got.value() != expected.tuple) {
        return Status::Internal(where + "root record diverges: " +
                                TupleToString(got.value()) +
                                " != " + TupleToString(expected.tuple));
      }
      return Status::OK();
    }
    default:
      return Status::Internal(where + "not a read-class op");
  }
}

/// Bench mode (`verify_reads == false`): issues the read so the store does
/// all the work a verified replay would trigger, but discards the result —
/// NotFound on a miss probe is the intended outcome, not an error.
template <typename Reader>
void IssueRead(Reader& reader, const Projection& all, bool by_ref,
               const TraceOp& op) {
  switch (op.kind) {
    case TraceOpKind::kScan:
      reader.Scan(all, [](int64_t, const Tuple&) { return Status::OK(); });
      return;
    case TraceOpKind::kGet:
    case TraceOpKind::kGetByKey:
      if (op.kind == TraceOpKind::kGet && by_ref) {
        reader.Get(op.ref, all);
      } else {
        reader.GetByKey(WorkloadKeyOf(op.ref), all);
      }
      return;
    case TraceOpKind::kChildren:
      reader.Children(op.ref);
      return;
    case TraceOpKind::kRootRecord:
      reader.RootRecord(op.ref);
      return;
    default:
      return;
  }
}

/// Executes one write-class op (marker or mutation) against the store,
/// routing through `txn` when one is open.
Status ApplyWriteOp(ComplexObjectStore* store,
                    std::optional<StoreTransaction>* txn, const Schema& schema,
                    const TraceHeader& header, const TraceOp& op) {
  switch (op.kind) {
    case TraceOpKind::kBegin: {
      STARFISH_ASSIGN_OR_RETURN(StoreTransaction t, store->Begin());
      txn->emplace(std::move(t));
      return Status::OK();
    }
    case TraceOpKind::kCommit: {
      const Status s = (*txn)->Commit();
      txn->reset();
      return s;
    }
    case TraceOpKind::kRollback: {
      const Status s = (*txn)->Rollback();
      txn->reset();
      return s;
    }
    case TraceOpKind::kPut:
    case TraceOpKind::kReplace: {
      const Tuple object =
          MakeWorkloadObject(schema, op.ref, op.payload_seed, op.fanout,
                             header.ref_universe, header.string_bytes);
      if (op.kind == TraceOpKind::kPut) {
        return txn->has_value() ? (*txn)->Put(op.ref, object)
                                : store->Put(op.ref, object);
      }
      return txn->has_value() ? (*txn)->Replace(op.ref, object)
                              : store->Replace(op.ref, object);
    }
    case TraceOpKind::kUpdateRoot: {
      const Tuple root = MakeWorkloadRootRecord(schema, op.ref,
                                                op.payload_seed,
                                                header.string_bytes);
      return txn->has_value() ? (*txn)->UpdateRootRecord(op.ref, root)
                              : store->UpdateRootRecord(op.ref, root);
    }
    case TraceOpKind::kRemove:
      return txn->has_value() ? (*txn)->Remove(op.ref)
                              : store->Remove(op.ref);
    default:
      return Status::Internal("not a write-class op");
  }
}

void CountOp(const TraceOp& op, const Expected* expected, ReplayStats* stats) {
  ++stats->ops;
  switch (op.kind) {
    case TraceOpKind::kScan:
      ++stats->scans;
      break;
    case TraceOpKind::kGet:
    case TraceOpKind::kGetByKey:
    case TraceOpKind::kChildren:
    case TraceOpKind::kRootRecord:
      ++stats->reads;
      if (expected != nullptr && !expected->present) ++stats->expected_misses;
      break;
    case TraceOpKind::kPut:
    case TraceOpKind::kReplace:
    case TraceOpKind::kRemove:
    case TraceOpKind::kUpdateRoot:
      ++stats->writes;
      break;
    case TraceOpKind::kCommit:
      ++stats->txns_committed;
      break;
    case TraceOpKind::kRollback:
      ++stats->txns_rolled_back;
      break;
    default:
      break;
  }
}

}  // namespace

TraceReplayer::TraceReplayer(const Trace& trace,
                             std::shared_ptr<const Schema> schema)
    : trace_(trace),
      schema_(std::move(schema)),
      shadow_(schema_, trace.header) {}

std::string TraceReplayer::Describe(size_t index) const {
  const TraceOp& op = trace_.ops[index];
  return "[STARFISH_SEED=" + std::to_string(trace_.header.seed) + "] op " +
         std::to_string(index) + " " + ToString(op.kind) + " ref=" +
         std::to_string(op.ref) + ": ";
}

Result<ReplayStats> TraceReplayer::Replay(ComplexObjectStore* store,
                                          const ReplayOptions& options) {
  if (options.threads == 0) {
    return Status::InvalidArgument("threads must be >= 1");
  }
  if (options.threads > 1 && options.halt_on_store_error) {
    return Status::InvalidArgument(
        "halt_on_store_error requires single-threaded replay");
  }
  ReplayStats stats;
  if (options.threads == 1) {
    STARFISH_RETURN_NOT_OK(ReplaySequential(store, options, &stats));
  } else {
    STARFISH_RETURN_NOT_OK(ReplayThreaded(store, options, &stats));
  }
  return stats;
}

Status TraceReplayer::ReplaySequential(ComplexObjectStore* store,
                                       const ReplayOptions& options,
                                       ReplayStats* stats) {
  const Projection all = Projection::All(*schema_);
  const bool by_ref = store->model()->SupportsGetByRef();
  std::optional<StoreTransaction> txn;
  for (size_t i = 0; i < trace_.ops.size(); ++i) {
    const TraceOp& op = trace_.ops[i];
    if (IsWriteClass(op.kind)) {
      const Status applied =
          ApplyWriteOp(store, &txn, *schema_, trace_.header, op);
      if (!applied.ok()) {
        if (!options.halt_on_store_error) {
          return Status::Internal(Describe(i) +
                                  "write failed: " + applied.ToString());
        }
        // Crash mode: the store just died mid-op. The halting op was never
        // acknowledged, so the shadow keeps the acked prefix — minus any
        // open transaction, whose commit marker never became durable.
        txn.reset();  // handle destructor = best-effort rollback
        shadow_.AbortOpenTxns();
        stats->halted = true;
        stats->halted_at = i;
        stats->halt_error = applied.ToString();
        return Status::OK();
      }
      shadow_.ApplyWrite(op);
      CountOp(op, nullptr, stats);
      continue;
    }
    if (!options.verify_reads) {
      IssueRead(*store, all, by_ref, op);
      CountOp(op, nullptr, stats);
      continue;
    }
    const Expected expected = shadow_.ExpectRead(op);
    {
      const Status checked =
          CheckRead(*store, all, by_ref, op, expected, Describe(i));
      if (!checked.ok()) {
        if (options.halt_on_store_error) {
          // In crash mode a read can fail because the volume died under
          // it; that is a halt, not a divergence.
          shadow_.AbortOpenTxns();
          txn.reset();
          stats->halted = true;
          stats->halted_at = i;
          stats->halt_error = checked.ToString();
          return Status::OK();
        }
        return checked;
      }
    }
    CountOp(op, &expected, stats);
  }
  return Status::OK();
}

Status TraceReplayer::ReplayThreaded(ComplexObjectStore* store,
                                     const ReplayOptions& options,
                                     ReplayStats* stats) {
  const Projection all = Projection::All(*schema_);
  const bool by_ref = store->model()->SupportsGetByRef();
  const uint32_t threads = options.threads;

  // Cut the trace into read-only / write-class batches: reads never run
  // while a write is in flight (the store's contract).
  struct Batch {
    size_t begin = 0, end = 0;
    bool write = false;
  };
  std::vector<Batch> batches;
  for (size_t i = 0; i < trace_.ops.size();) {
    const bool write = IsWriteClass(trace_.ops[i].kind);
    size_t j = i + 1;
    while (j < trace_.ops.size() && IsWriteClass(trace_.ops[j].kind) == write) {
      ++j;
    }
    batches.push_back(Batch{i, j, write});
    i = j;
  }

  for (const Batch& batch : batches) {
    std::mutex error_mu;
    Status first_error;
    const auto record_error = [&](const Status& status) {
      std::lock_guard<std::mutex> lock(error_mu);
      if (first_error.ok()) first_error = status;
    };

    if (batch.write) {
      // Deterministic stream partition: a stream's ops stay in trace order
      // on one worker, and concurrent workers touch disjoint refs (and
      // whole transaction groups, which are single-stream by construction).
      std::vector<std::thread> workers;
      workers.reserve(threads);
      for (uint32_t t = 0; t < threads; ++t) {
        workers.emplace_back([&, t] {
          std::optional<StoreTransaction> txn;
          for (size_t i = batch.begin; i < batch.end; ++i) {
            const TraceOp& op = trace_.ops[i];
            if (op.stream % threads != t) continue;
            const Status applied =
                ApplyWriteOp(store, &txn, *schema_, trace_.header, op);
            if (!applied.ok()) {
              record_error(Status::Internal(Describe(i) + "write failed: " +
                                            applied.ToString()));
              return;
            }
          }
        });
      }
      for (std::thread& w : workers) w.join();
      STARFISH_RETURN_NOT_OK(first_error);
      // Expectations evolve in trace order — sound because the concurrent
      // application above commuted (disjoint refs across streams,
      // trace-ordered within a stream).
      for (size_t i = batch.begin; i < batch.end; ++i) {
        shadow_.ApplyWrite(trace_.ops[i]);
        CountOp(trace_.ops[i], nullptr, stats);
      }
      continue;
    }

    // Read batch: the shadow is static, so expectations can be computed up
    // front and checked from concurrent sessions. Bench mode skips the
    // oracle entirely — reads are still issued, results discarded.
    std::vector<Expected> expected;
    if (options.verify_reads) {
      expected.resize(batch.end - batch.begin);
      for (size_t i = batch.begin; i < batch.end; ++i) {
        expected[i - batch.begin] = shadow_.ExpectRead(trace_.ops[i]);
      }
    }
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (uint32_t t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        ReadSession session = store->OpenReadSession();
        for (size_t i = batch.begin; i < batch.end; ++i) {
          const TraceOp& op = trace_.ops[i];
          if (op.stream % threads != t) continue;
          if (!options.verify_reads) {
            IssueRead(session, all, by_ref, op);
            continue;
          }
          const Status checked = CheckRead(session, all, by_ref, op,
                                           expected[i - batch.begin],
                                           Describe(i));
          if (!checked.ok()) {
            record_error(checked);
            return;
          }
        }
      });
    }
    for (std::thread& w : workers) w.join();
    STARFISH_RETURN_NOT_OK(first_error);
    for (size_t i = batch.begin; i < batch.end; ++i) {
      CountOp(trace_.ops[i],
              options.verify_reads ? &expected[i - batch.begin] : nullptr,
              stats);
    }
  }
  return Status::OK();
}

Status TraceReplayer::VerifyFinalState(ComplexObjectStore* store) const {
  const Projection all = Projection::All(*schema_);
  std::map<int64_t, Tuple> image;
  STARFISH_RETURN_NOT_OK(
      store->Scan(all, [&](int64_t key, const Tuple& object) {
        if (!image.emplace(key, object).second) {
          return Status::Internal("final scan yielded key " +
                                  std::to_string(key) + " twice");
        }
        return Status::OK();
      }));
  const std::map<int64_t, Tuple> want = shadow_.ExpectScan();
  const std::string seed =
      "[STARFISH_SEED=" + std::to_string(trace_.header.seed) + "] ";
  if (image.size() != want.size()) {
    return Status::Internal(seed + "final state has " +
                            std::to_string(image.size()) +
                            " objects, oracle expects " +
                            std::to_string(want.size()));
  }
  for (const auto& [key, tuple] : want) {
    const auto it = image.find(key);
    if (it == image.end()) {
      return Status::Internal(seed + "final state is missing key " +
                              std::to_string(key));
    }
    if (it->second != tuple) {
      return Status::Internal(seed + "final object with key " +
                              std::to_string(key) +
                              " diverges: " + TupleToString(it->second) +
                              " != " + TupleToString(tuple));
    }
  }
  return Status::OK();
}

Result<uint32_t> TraceReplayer::StoreStateDigest(ComplexObjectStore* store) {
  const Projection all = Projection::All(*store->schema());
  std::map<int64_t, Tuple> image;
  STARFISH_RETURN_NOT_OK(
      store->Scan(all, [&](int64_t key, const Tuple& object) {
        image.emplace(key, object);
        return Status::OK();
      }));
  std::string bytes;
  for (const auto& [key, tuple] : image) {
    PutFixed64(&bytes, static_cast<uint64_t>(key));
    AppendCanonicalTuple(tuple, &bytes);
  }
  return Crc32(bytes);
}

}  // namespace starfish::workload
