#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "core/complex_object_store.h"
#include "workload/shadow.h"
#include "workload/trace.h"

/// \file replayer.h
/// Drives any ComplexObjectStore configuration from a Trace and checks
/// every result against the differential oracle (shadow.h).
///
/// Single-threaded replay executes ops in trace order. Multi-threaded
/// replay honors the store's concurrency contract (concurrent readers OK,
/// concurrent writers OK, readers-vs-writers NOT OK) by cutting the trace
/// into read-only and write-class batches at every IsWriteClass transition
/// and running each batch on `threads` workers with the deterministic
/// stream partition (`op.stream % threads` — a transaction group shares one
/// stream, so it never splits across threads). Expectations are always
/// computed in trace order, which is sound because concurrently applied
/// write ops target disjoint refs (distinct streams) and same-stream ops
/// keep their trace order on one worker.
///
/// Every divergence message carries "STARFISH_SEED=<seed>" so a failing
/// randomized run reproduces with one environment variable.

namespace starfish::workload {

/// Replay knobs.
struct ReplayOptions {
  /// Worker threads. 1 = strict trace order on the caller's thread.
  /// > 1 requires a store opened with buffer_shards != 1; halting mode
  /// requires 1.
  uint32_t threads = 1;

  /// Byte-compare every read result against the oracle. When false (bench
  /// mode) reads are still issued against the store — the full access path
  /// runs — but results are discarded and `expected_misses` stays 0.
  bool verify_reads = true;

  /// Crash-fuzz mode: a failing store op stops the replay at that op
  /// (recorded in ReplayStats) instead of failing, leaving the shadow
  /// describing exactly the acked prefix — with any open transaction
  /// aborted, mirroring recovery's crash contract.
  bool halt_on_store_error = false;
};

/// What one replay did.
struct ReplayStats {
  uint64_t ops = 0;     ///< trace ops executed (markers included)
  uint64_t reads = 0;
  uint64_t writes = 0;  ///< Put/Replace/Remove/UpdateRoot applied OK
  uint64_t scans = 0;
  uint64_t expected_misses = 0;  ///< reads the oracle predicted NotFound
  uint64_t txns_committed = 0;
  uint64_t txns_rolled_back = 0;
  bool halted = false;      ///< halt_on_store_error stopped the replay
  uint64_t halted_at = 0;   ///< op index of the halting op
  std::string halt_error;   ///< the store error that halted the replay
};

/// One replay of one trace against one store.
class TraceReplayer {
 public:
  /// The schema must be the one the store was opened with
  /// (MakeWorkloadSchema()).
  TraceReplayer(const Trace& trace, std::shared_ptr<const Schema> schema);

  /// Replays the trace. Returns the stats on success; any divergence from
  /// the oracle, or any unexpected store error, is a non-OK status naming
  /// the op and the seed. On success the shadow describes the expected
  /// final store state (in halting mode: the acked-prefix state).
  Result<ReplayStats> Replay(ComplexObjectStore* store,
                             const ReplayOptions& options);

  /// Compares the store's full scan image against the shadow — run after
  /// Replay (or after a crash-reopen in halting mode) for end-state
  /// verification.
  Status VerifyFinalState(ComplexObjectStore* store) const;

  /// CRC digest of a store's full scan image in canonical encoding —
  /// comparable across any two configurations replaying the same trace,
  /// and against ShadowModel::Digest().
  static Result<uint32_t> StoreStateDigest(ComplexObjectStore* store);

  const ShadowModel& shadow() const { return shadow_; }

 private:
  Status ReplaySequential(ComplexObjectStore* store,
                          const ReplayOptions& options, ReplayStats* stats);
  Status ReplayThreaded(ComplexObjectStore* store,
                        const ReplayOptions& options, ReplayStats* stats);

  /// Error prefix naming op `index` and the reproduction seed.
  std::string Describe(size_t index) const;

  const Trace& trace_;
  std::shared_ptr<const Schema> schema_;
  ShadowModel shadow_;
};

}  // namespace starfish::workload
