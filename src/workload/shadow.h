#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "nf2/schema.h"
#include "nf2/value.h"
#include "workload/trace.h"

/// \file shadow.h
/// The differential oracle: an in-memory shadow of the expected store state.
///
/// The shadow is updated in replay order from the trace's write ops (objects
/// are recipes — payload_seed + fanout — so the shadow regenerates the exact
/// tuples the replayer wrote) and can answer, for any read op, the outcome
/// the store MUST produce: present/absent, and the byte-exact tuple /
/// children list / scan image. Any disagreement is a store bug or a model
/// divergence, never oracle fuzz — which is what lets the replayer treat
/// every mismatch as a hard failure with the scenario seed attached.
///
/// Transactions mirror the store's: Begin snapshots the object map,
/// Rollback restores it, Commit discards the snapshot. AbortOpenTxns() is
/// the crash-mode hook: when a replay halts mid-transaction, the store's
/// recovery drops the unterminated transaction wholesale, and the shadow
/// must do the same to describe the surviving state.

namespace starfish::workload {

/// The oracle's verdict on one read-class op.
struct Expected {
  bool present = false;              ///< expected to succeed
  Tuple tuple;                       ///< kGet/kGetByKey/kRootRecord payload
  std::vector<ObjectRef> children;   ///< kChildren payload
  std::map<int64_t, Tuple> scan;     ///< kScan payload (key -> object)
};

/// Appends a canonical, unambiguous byte encoding of `tuple` (type tags +
/// length-prefixed payloads, recursive). Equal tuples produce equal bytes
/// and vice versa — the basis of the state digests the differential tests
/// compare across configurations.
void AppendCanonicalTuple(const Tuple& tuple, std::string* out);

/// In-memory expected-state model for one trace.
class ShadowModel {
 public:
  ShadowModel(std::shared_ptr<const Schema> schema, TraceHeader header);

  /// Applies one write-class op (including txn markers) in replay order.
  /// The generator only emits valid writes, so there is no failure mode.
  void ApplyWrite(const TraceOp& op);

  /// Expected outcome of one read-class op against the current state.
  Expected ExpectRead(const TraceOp& op) const;

  /// Expected full-scan image of the current state (key -> whole object).
  std::map<int64_t, Tuple> ExpectScan() const;

  /// The expected whole object under `ref` (requires Contains(ref)).
  Tuple ExpectedObject(ObjectRef ref) const;

  bool Contains(ObjectRef ref) const { return objects_.count(ref) > 0; }
  size_t live_count() const { return objects_.size(); }
  bool in_txn() const { return !txn_stack_.empty(); }

  /// Crash-mode hook: rolls back every open transaction (recovery never
  /// keeps an unterminated transaction's ops).
  void AbortOpenTxns();

  /// CRC digest of the canonical encoding of the full expected state.
  /// Replays of the same trace — any thread count, any store config —
  /// must land on stores whose digest (TraceReplayer::StoreStateDigest)
  /// equals this.
  uint32_t Digest() const;

 private:
  /// The recipe of one live object.
  struct Stored {
    uint64_t payload_seed = 0;
    uint32_t fanout = 1;
    bool has_root_override = false;   ///< kUpdateRoot applied since last write
    uint64_t root_seed = 0;
  };

  Tuple Materialize(ObjectRef ref, const Stored& stored) const;

  std::shared_ptr<const Schema> schema_;
  TraceHeader header_;
  std::map<ObjectRef, Stored> objects_;
  std::vector<std::map<ObjectRef, Stored>> txn_stack_;
};

}  // namespace starfish::workload
