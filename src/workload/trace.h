#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "models/storage_model.h"
#include "util/status.h"

/// \file trace.h
/// The versioned operation-trace format of the workload subsystem.
///
/// A Trace is a deterministic, replayable recording of a synthetic
/// workload: a header naming the scenario's generative parameters plus a
/// flat list of typed operations (reads, writes, transaction markers) over
/// an object universe. Write operations do not carry their payload bytes —
/// they carry a *recipe* (payload_seed + fanout) from which the replayer
/// and the differential oracle regenerate the identical tuple, so traces
/// stay a few dozen bytes per op no matter how large the objects are.
///
/// Wire format (all little-endian, see docs/WORKLOAD.md):
///
///   [magic "SFWTRC01" 8B] [version u32] [string_bytes u32]
///   [seed u64] [ref_universe u64] [op_count u64]
///   op_count x { kind u8, stream u8, reserved u16, fanout u32,
///                ref u64, payload_seed u64 }                    (24B each)
///   [crc32 u32 over everything above]
///
/// The CRC makes a truncated or bit-flipped trace a loud Corruption at
/// decode time instead of a silently different workload; the version field
/// rejects traces from a future format instead of misparsing them.

namespace starfish::workload {

/// Current wire-format version.
inline constexpr uint32_t kTraceVersion = 1;

/// Deterministic partition classes: every ref-targeted op belongs to
/// stream `ref % kTraceStreams`, and a transaction's ops all share one
/// stream — so a multi-threaded replay can map streams to threads and know
/// that concurrent write ops never target the same object.
inline constexpr uint32_t kTraceStreams = 8;

/// Operation kinds. Values are wire format — append only, never renumber.
enum class TraceOpKind : uint8_t {
  kGet = 0,         ///< by-ref full-object read
  kGetByKey = 1,    ///< by-key full-object read (ref field holds the ref; key derives)
  kChildren = 2,    ///< link navigation
  kRootRecord = 3,  ///< root-record read
  kScan = 4,        ///< full scan, compared as a key->tuple set
  kPut = 5,         ///< insert a generated object
  kReplace = 6,     ///< whole-object replace (same key)
  kRemove = 7,      ///< remove
  kUpdateRoot = 8,  ///< replace the root record's atomic attributes
  kBegin = 9,       ///< open a transaction on this op's stream
  kCommit = 10,     ///< seal the open transaction
  kRollback = 11,   ///< undo the open transaction
};

/// Human-readable op name ("Get", "Put", ...).
const char* ToString(TraceOpKind kind);

/// True for ops that can mutate store state (writes + txn markers). The
/// multi-threaded replayer cuts phase barriers where this classification
/// changes, so reads never race writes.
bool IsWriteClass(TraceOpKind kind);

/// One operation.
struct TraceOp {
  TraceOpKind kind = TraceOpKind::kGet;
  /// Partition class (see kTraceStreams). For ref-targeted ops this is
  /// always ref % kTraceStreams; scans and txn markers carry the stream
  /// they were generated for.
  uint8_t stream = 0;
  /// Payload fanout (kPut/kReplace: sub-tuples per relation).
  uint32_t fanout = 0;
  /// Target object ref (0 for kScan and txn markers).
  ObjectRef ref = 0;
  /// Payload recipe seed (kPut/kReplace/kUpdateRoot), 0 otherwise.
  uint64_t payload_seed = 0;

  bool operator==(const TraceOp& other) const {
    return kind == other.kind && stream == other.stream &&
           fanout == other.fanout && ref == other.ref &&
           payload_seed == other.payload_seed;
  }
  bool operator!=(const TraceOp& other) const { return !(*this == other); }
};

/// Generative parameters the replayer needs to reconstruct payloads.
struct TraceHeader {
  /// Scenario seed the trace was generated from — printed by every
  /// divergence message so a failure reproduces with STARFISH_SEED.
  uint64_t seed = 0;
  /// Links are drawn from [0, ref_universe); refs at or beyond the range
  /// the generator ever Puts are guaranteed-missing probe targets.
  uint64_t ref_universe = 0;
  /// STR attribute length of generated payloads.
  uint32_t string_bytes = 0;

  bool operator==(const TraceHeader& other) const {
    return seed == other.seed && ref_universe == other.ref_universe &&
           string_bytes == other.string_bytes;
  }
};

/// A replayable workload recording.
struct Trace {
  TraceHeader header;
  std::vector<TraceOp> ops;

  bool operator==(const Trace& other) const {
    return header == other.header && ops == other.ops;
  }
};

/// Serializes a trace to the versioned wire format. Deterministic: equal
/// traces encode to identical bytes (the determinism tests byte-compare
/// two generations through this).
std::string EncodeTrace(const Trace& trace);

/// Parses a wire-format trace. Returns Corruption for torn/flipped bytes,
/// NotSupported for a future version.
Result<Trace> DecodeTrace(std::string_view bytes);

/// Durably writes `trace` to `path` (atomic replace).
Status WriteTraceFile(const Trace& trace, const std::string& path);

/// Reads a trace file written by WriteTraceFile. A missing file is
/// NotFound.
Result<Trace> ReadTraceFile(const std::string& path);

}  // namespace starfish::workload
