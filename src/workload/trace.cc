#include "workload/trace.h"

#include <cstring>

#include "util/coding.h"
#include "util/crc32.h"
#include "util/file_io.h"

namespace starfish::workload {

namespace {

constexpr char kMagic[8] = {'S', 'F', 'W', 'T', 'R', 'C', '0', '1'};
constexpr size_t kHeaderBytes = 8 + 4 + 4 + 8 + 8 + 8;
constexpr size_t kOpBytes = 1 + 1 + 2 + 4 + 8 + 8;
constexpr uint8_t kMaxOpKind = static_cast<uint8_t>(TraceOpKind::kRollback);

}  // namespace

const char* ToString(TraceOpKind kind) {
  switch (kind) {
    case TraceOpKind::kGet: return "Get";
    case TraceOpKind::kGetByKey: return "GetByKey";
    case TraceOpKind::kChildren: return "Children";
    case TraceOpKind::kRootRecord: return "RootRecord";
    case TraceOpKind::kScan: return "Scan";
    case TraceOpKind::kPut: return "Put";
    case TraceOpKind::kReplace: return "Replace";
    case TraceOpKind::kRemove: return "Remove";
    case TraceOpKind::kUpdateRoot: return "UpdateRoot";
    case TraceOpKind::kBegin: return "Begin";
    case TraceOpKind::kCommit: return "Commit";
    case TraceOpKind::kRollback: return "Rollback";
  }
  return "?";
}

bool IsWriteClass(TraceOpKind kind) {
  switch (kind) {
    case TraceOpKind::kPut:
    case TraceOpKind::kReplace:
    case TraceOpKind::kRemove:
    case TraceOpKind::kUpdateRoot:
    case TraceOpKind::kBegin:
    case TraceOpKind::kCommit:
    case TraceOpKind::kRollback:
      return true;
    default:
      return false;
  }
}

std::string EncodeTrace(const Trace& trace) {
  std::string out;
  out.reserve(kHeaderBytes + trace.ops.size() * kOpBytes + 4);
  out.append(kMagic, sizeof(kMagic));
  PutFixed32(&out, kTraceVersion);
  PutFixed32(&out, trace.header.string_bytes);
  PutFixed64(&out, trace.header.seed);
  PutFixed64(&out, trace.header.ref_universe);
  PutFixed64(&out, static_cast<uint64_t>(trace.ops.size()));
  for (const TraceOp& op : trace.ops) {
    out.push_back(static_cast<char>(op.kind));
    out.push_back(static_cast<char>(op.stream));
    PutFixed16(&out, 0);  // reserved
    PutFixed32(&out, op.fanout);
    PutFixed64(&out, op.ref);
    PutFixed64(&out, op.payload_seed);
  }
  PutFixed32(&out, Crc32(out));
  return out;
}

Result<Trace> DecodeTrace(std::string_view bytes) {
  if (bytes.size() < kHeaderBytes + 4) {
    return Status::Corruption("trace truncated: " +
                              std::to_string(bytes.size()) + " bytes");
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("not a trace file (bad magic)");
  }
  const uint32_t version = DecodeFixed32(bytes.data() + 8);
  if (version != kTraceVersion) {
    return Status::NotSupported("trace version " + std::to_string(version) +
                                " (this build reads version " +
                                std::to_string(kTraceVersion) + ")");
  }
  const uint32_t stored_crc = DecodeFixed32(bytes.data() + bytes.size() - 4);
  const uint32_t actual_crc =
      Crc32(std::string_view(bytes.data(), bytes.size() - 4));
  if (stored_crc != actual_crc) {
    return Status::Corruption("trace checksum mismatch");
  }

  Trace trace;
  trace.header.string_bytes = DecodeFixed32(bytes.data() + 12);
  trace.header.seed = DecodeFixed64(bytes.data() + 16);
  trace.header.ref_universe = DecodeFixed64(bytes.data() + 24);
  const uint64_t op_count = DecodeFixed64(bytes.data() + 32);
  if (bytes.size() != kHeaderBytes + op_count * kOpBytes + 4) {
    return Status::Corruption("trace op count disagrees with size");
  }
  trace.ops.reserve(op_count);
  const char* p = bytes.data() + kHeaderBytes;
  for (uint64_t i = 0; i < op_count; ++i, p += kOpBytes) {
    const uint8_t raw_kind = static_cast<uint8_t>(p[0]);
    if (raw_kind > kMaxOpKind) {
      return Status::Corruption("trace op " + std::to_string(i) +
                                " has unknown kind " +
                                std::to_string(raw_kind));
    }
    TraceOp op;
    op.kind = static_cast<TraceOpKind>(raw_kind);
    op.stream = static_cast<uint8_t>(p[1]);
    op.fanout = DecodeFixed32(p + 4);
    op.ref = DecodeFixed64(p + 8);
    op.payload_seed = DecodeFixed64(p + 16);
    trace.ops.push_back(op);
  }
  return trace;
}

Status WriteTraceFile(const Trace& trace, const std::string& path) {
  return WriteFileAtomic(path, EncodeTrace(trace));
}

Result<Trace> ReadTraceFile(const std::string& path) {
  std::string bytes;
  bool found = false;
  STARFISH_RETURN_NOT_OK(ReadFileToString(path, &bytes, &found));
  if (!found) return Status::NotFound("no trace file at " + path);
  return DecodeTrace(bytes);
}

}  // namespace starfish::workload
