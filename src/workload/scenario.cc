#include "workload/scenario.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "util/random.h"

namespace starfish::workload {

namespace {

/// Guaranteed-miss probe targets live in a small window past every ref the
/// generator can Put — small on purpose, so probes repeat and the negative
/// cache's side table actually gets hits.
constexpr uint64_t kMissRange = 8;

/// Zipf(theta) sampler over ranks 0..n-1 (rank 0 hottest) via an explicit
/// cumulative table — exact, deterministic, and cheap at workload sizes
/// (n is the live-object count). Rebuilt lazily when n changes.
class ZipfPicker {
 public:
  size_t Pick(size_t n, double theta, Rng* rng) {
    if (n == 0) return 0;
    if (n != cumulative_.size() || theta != theta_) Rebuild(n, theta);
    const double u = rng->NextDouble() * cumulative_.back();
    const auto it =
        std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
    return static_cast<size_t>(it - cumulative_.begin());
  }

 private:
  void Rebuild(size_t n, double theta) {
    theta_ = theta;
    cumulative_.resize(n);
    double sum = 0;
    for (size_t r = 0; r < n; ++r) {
      sum += 1.0 / std::pow(static_cast<double>(r + 1), theta);
      cumulative_[r] = sum;
    }
  }

  double theta_ = -1;
  std::vector<double> cumulative_;
};

/// The generator's own model of which refs are live, with O(1)
/// swap-with-last removal and transaction snapshots. Selection order is
/// part of the deterministic contract: identical op sequences yield
/// identical layouts.
class LiveSet {
 public:
  void Insert(ObjectRef ref) {
    index_[ref] = list_.size();
    list_.push_back(ref);
  }

  void Remove(ObjectRef ref) {
    const auto it = index_.find(ref);
    const size_t pos = it->second;
    index_.erase(it);
    if (pos + 1 != list_.size()) {
      list_[pos] = list_.back();
      index_[list_[pos]] = pos;
    }
    list_.pop_back();
  }

  bool Contains(ObjectRef ref) const { return index_.count(ref) > 0; }
  size_t size() const { return list_.size(); }
  ObjectRef at(size_t i) const { return list_[i]; }

  std::vector<ObjectRef> InStream(uint8_t stream) const {
    std::vector<ObjectRef> out;
    for (ObjectRef ref : list_) {
      if (ref % kTraceStreams == stream) out.push_back(ref);
    }
    return out;
  }

  LiveSet Snapshot() const { return *this; }
  void Restore(LiveSet snapshot) { *this = std::move(snapshot); }

 private:
  std::vector<ObjectRef> list_;
  std::unordered_map<ObjectRef, size_t> index_;
};

/// Skewed fan-out draw: geometric-ish in [1, fanout_max] — most objects
/// small, a heavy tail of big ones.
uint32_t SkewedFanout(Rng* rng, uint32_t fanout_max) {
  uint32_t f = 1;
  while (f < fanout_max && rng->Bernoulli(0.6)) ++f;
  return f;
}

}  // namespace

std::shared_ptr<const Schema> MakeWorkloadSchema() {
  auto item = SchemaBuilder("Item")
                  .AddInt32("Nr")
                  .AddString("Payload")
                  .AddLink("Ref")
                  .Build();
  auto note = SchemaBuilder("Note").AddInt32("Nr").AddString("Text").Build();
  return SchemaBuilder("Doc")
      .AddInt32("Id")
      .AddInt32("Tag")
      .AddString("Name")
      .AddRelation("Items", item)
      .AddRelation("Notes", note)
      .Build();
}

int64_t WorkloadKeyOf(ObjectRef ref) { return static_cast<int64_t>(ref) + 1; }

Tuple MakeWorkloadObject(const Schema& schema, ObjectRef ref,
                         uint64_t payload_seed, uint32_t fanout,
                         uint64_t ref_universe, uint32_t string_bytes) {
  (void)schema;  // shape is fixed; the parameter documents the contract
  Rng rng(payload_seed);
  if (fanout == 0) fanout = 1;
  if (ref_universe == 0) ref_universe = 1;
  std::vector<Tuple> items;
  items.reserve(fanout);
  for (uint32_t i = 0; i < fanout; ++i) {
    items.push_back(Tuple{{Value::Int32(static_cast<int32_t>(i)),
                           Value::Str(rng.RandomString(string_bytes)),
                           Value::Link(rng.Uniform(ref_universe))}});
  }
  const uint32_t notes_count = (fanout + 1) / 2;
  std::vector<Tuple> notes;
  notes.reserve(notes_count);
  for (uint32_t i = 0; i < notes_count; ++i) {
    notes.push_back(Tuple{{Value::Int32(static_cast<int32_t>(i)),
                           Value::Str(rng.RandomString(string_bytes))}});
  }
  return Tuple{{Value::Int32(static_cast<int32_t>(WorkloadKeyOf(ref))),
                Value::Int32(static_cast<int32_t>(rng.UniformInt(0, 1 << 20))),
                Value::Str(rng.RandomString(string_bytes)),
                Value::Relation(std::move(items)),
                Value::Relation(std::move(notes))}};
}

Tuple MakeWorkloadRootRecord(const Schema& schema, ObjectRef ref,
                             uint64_t payload_seed, uint32_t string_bytes) {
  (void)schema;
  Rng rng(payload_seed);
  return Tuple{{Value::Int32(static_cast<int32_t>(WorkloadKeyOf(ref))),
                Value::Int32(static_cast<int32_t>(rng.UniformInt(0, 1 << 20))),
                Value::Str(rng.RandomString(string_bytes)),
                Value::Relation({}),
                Value::Relation({})}};
}

std::vector<Scenario> ScenarioFamilies(uint64_t seed) {
  std::vector<Scenario> families;
  const auto add = [&](const char* name, auto&& tune) {
    Scenario scenario;
    scenario.name = name;
    scenario.params.seed = seed + families.size() * 1000003ull;
    tune(&scenario.params);
    families.push_back(std::move(scenario));
  };
  add("read_mostly", [](ScenarioParams* p) {
    p->write_fraction = p->write_fraction_end = 0.08;
    p->miss_fraction = 0.08;
    p->zipf_theta = 0.9;
  });
  add("write_heavy", [](ScenarioParams* p) {
    p->write_fraction = p->write_fraction_end = 0.6;
    p->max_growth = 40;
    p->txn_fraction = 0.25;
  });
  add("hot_drift", [](ScenarioParams* p) {
    p->zipf_theta = 1.1;
    p->drift_every = 48;
    p->write_fraction = p->write_fraction_end = 0.25;
  });
  add("bursty", [](ScenarioParams* p) {
    p->burst_len = 48;
    p->write_fraction = p->write_fraction_end = 0.5;
  });
  add("txn_mix", [](ScenarioParams* p) {
    p->write_fraction = p->write_fraction_end = 0.45;
    p->txn_fraction = 0.6;
    p->rollback_fraction = 0.4;
    p->txn_ops_max = 6;
  });
  add("scan_heavy", [](ScenarioParams* p) {
    p->scan_fraction = 0.12;
    p->write_fraction = p->write_fraction_end = 0.15;
  });
  add("cooling", [](ScenarioParams* p) {
    // Read/write ratio schedule: a load-then-serve shape — write-heavy
    // start draining to a read-mostly tail.
    p->write_fraction = 0.7;
    p->write_fraction_end = 0.05;
    p->max_growth = 40;
  });
  return families;
}

Result<Trace> GenerateTrace(const ScenarioParams& params) {
  if (params.n_objects < kTraceStreams) {
    return Status::InvalidArgument("n_objects must be >= kTraceStreams");
  }
  if (params.txn_ops_max == 0) {
    return Status::InvalidArgument("txn_ops_max must be >= 1");
  }
  if (params.fanout_max == 0) {
    return Status::InvalidArgument("fanout_max must be >= 1");
  }

  Trace trace;
  trace.header.seed = params.seed;
  trace.header.ref_universe =
      static_cast<uint64_t>(params.n_objects) + params.max_growth + kMissRange;
  trace.header.string_bytes = params.string_bytes;

  Rng rng(params.seed);
  ZipfPicker zipf;
  LiveSet live;
  uint64_t next_new = 0;  // growth refs handed out so far
  size_t drift_offset = 0;
  const uint64_t miss_base =
      static_cast<uint64_t>(params.n_objects) + params.max_growth;
  const size_t remove_floor =
      std::max<size_t>(4, params.n_objects / 3);

  const auto emit = [&](TraceOpKind kind, ObjectRef ref, uint8_t stream,
                        uint32_t fanout, uint64_t payload_seed) {
    TraceOp op;
    op.kind = kind;
    op.ref = ref;
    op.stream = stream;
    op.fanout = fanout;
    op.payload_seed = payload_seed;
    trace.ops.push_back(op);
  };
  const auto emit_ref_op = [&](TraceOpKind kind, ObjectRef ref,
                               uint32_t fanout, uint64_t payload_seed) {
    emit(kind, ref, static_cast<uint8_t>(ref % kTraceStreams), fanout,
         payload_seed);
  };

  // Load phase: Put every initial object.
  for (uint32_t i = 0; i < params.n_objects; ++i) {
    emit_ref_op(TraceOpKind::kPut, i, SkewedFanout(&rng, params.fanout_max),
                rng.Next());
    live.Insert(i);
  }

  // One write op on a live ref (Replace/UpdateRoot/Remove), targets
  // restricted to `candidates`. Keeps the live model in sync.
  const auto emit_mutation = [&](const std::vector<ObjectRef>& candidates,
                                 bool allow_remove) {
    const ObjectRef ref =
        candidates[rng.Uniform(static_cast<uint64_t>(candidates.size()))];
    const double r = rng.NextDouble();
    if (r < 0.5) {
      emit_ref_op(TraceOpKind::kReplace, ref,
                  SkewedFanout(&rng, params.fanout_max), rng.Next());
    } else if (r < 0.8 || !allow_remove || live.size() <= remove_floor) {
      emit_ref_op(TraceOpKind::kUpdateRoot, ref, 0, rng.Next());
    } else {
      emit_ref_op(TraceOpKind::kRemove, ref, 0, 0);
      live.Remove(ref);
    }
  };

  while (trace.ops.size() <
         static_cast<size_t>(params.n_objects) + params.n_ops) {
    const size_t emitted =
        trace.ops.size() - params.n_objects;  // post-load ops so far
    if (params.drift_every > 0 && emitted > 0 &&
        emitted % params.drift_every == 0) {
      drift_offset += 1 + live.size() / 5;
    }

    bool write;
    if (params.burst_len > 0) {
      write = (emitted / params.burst_len) % 2 == 1;
    } else {
      const double t =
          params.n_ops > 1
              ? static_cast<double>(emitted) / (params.n_ops - 1)
              : 0.0;
      write = rng.Bernoulli(params.write_fraction +
                            (params.write_fraction_end -
                             params.write_fraction) *
                                t);
    }

    if (!write) {
      if (rng.Bernoulli(params.scan_fraction)) {
        emit(TraceOpKind::kScan, 0,
             static_cast<uint8_t>(rng.Uniform(kTraceStreams)), 0, 0);
        continue;
      }
      ObjectRef target;
      if (rng.Bernoulli(params.miss_fraction)) {
        // Guaranteed-miss probe — or a probe of the NEXT growth ref, which
        // a later Put will turn into a present object (the negative-cache
        // invalidation hazard).
        if (next_new < params.max_growth && rng.Bernoulli(0.5)) {
          target = params.n_objects + next_new;
        } else {
          target = miss_base + rng.Uniform(kMissRange);
        }
      } else {
        const size_t rank =
            zipf.Pick(live.size(), params.zipf_theta, &rng);
        target = live.at((rank + drift_offset) % live.size());
      }
      const double r = rng.NextDouble();
      if (r < 0.45) {
        emit_ref_op(TraceOpKind::kGet, target, 0, 0);
      } else if (r < 0.65) {
        emit_ref_op(TraceOpKind::kGetByKey, target, 0, 0);
      } else if (r < 0.85) {
        emit_ref_op(TraceOpKind::kChildren, target, 0, 0);
      } else {
        emit_ref_op(TraceOpKind::kRootRecord, target, 0, 0);
      }
      continue;
    }

    // Write decision. A fraction opens a transaction group: contiguous
    // write-class ops, all on ONE stream, sealed by Commit or Rollback.
    if (rng.Bernoulli(params.txn_fraction)) {
      uint8_t stream = static_cast<uint8_t>(rng.Uniform(kTraceStreams));
      std::vector<ObjectRef> candidates = live.InStream(stream);
      for (uint32_t attempt = 1; candidates.empty() && attempt < kTraceStreams;
           ++attempt) {
        stream = static_cast<uint8_t>((stream + 1) % kTraceStreams);
        candidates = live.InStream(stream);
      }
      if (!candidates.empty()) {
        const bool rollback = rng.Bernoulli(params.rollback_fraction);
        const uint64_t group_ops = 1 + rng.Uniform(params.txn_ops_max);
        LiveSet snapshot = live.Snapshot();
        emit(TraceOpKind::kBegin, 0, stream, 0, 0);
        for (uint64_t i = 0; i < group_ops; ++i) {
          candidates = live.InStream(stream);
          if (candidates.empty()) break;
          emit_mutation(candidates, /*allow_remove=*/true);
        }
        emit(rollback ? TraceOpKind::kRollback : TraceOpKind::kCommit, 0,
             stream, 0, 0);
        if (rollback) live.Restore(std::move(snapshot));
        continue;
      }
      // No stream has a live ref (degenerate) — fall through to autonomous.
    }

    if (next_new < params.max_growth && rng.Bernoulli(0.25)) {
      const ObjectRef ref = params.n_objects + next_new++;
      emit_ref_op(TraceOpKind::kPut, ref,
                  SkewedFanout(&rng, params.fanout_max), rng.Next());
      live.Insert(ref);
      continue;
    }
    std::vector<ObjectRef> all;
    all.reserve(live.size());
    for (size_t i = 0; i < live.size(); ++i) all.push_back(live.at(i));
    emit_mutation(all, /*allow_remove=*/true);
  }

  return trace;
}

}  // namespace starfish::workload
