#include "workload/shadow.h"

#include <utility>

#include "util/coding.h"
#include "util/crc32.h"
#include "workload/scenario.h"

namespace starfish::workload {

namespace {

void AppendCanonicalValue(const Value& value, std::string* out) {
  out->push_back(static_cast<char>(value.type()));
  switch (value.type()) {
    case AttrType::kInt32:
      PutFixed32(out, static_cast<uint32_t>(value.as_int32()));
      break;
    case AttrType::kString:
      PutFixed32(out, static_cast<uint32_t>(value.as_string().size()));
      out->append(value.as_string());
      break;
    case AttrType::kLink:
      PutFixed64(out, value.as_link());
      break;
    case AttrType::kRelation:
      PutFixed32(out, static_cast<uint32_t>(value.as_relation().size()));
      for (const Tuple& sub : value.as_relation()) {
        AppendCanonicalTuple(sub, out);
      }
      break;
  }
}

/// Mirrors StorageModel::CollectLinks: every link attribute in schema DFS
/// order, descending into relation sub-tuples in stored order.
void CollectExpectedLinks(const Schema& schema, const Tuple& tuple,
                          std::vector<ObjectRef>* out) {
  const auto& attrs = schema.attributes();
  for (size_t i = 0; i < attrs.size() && i < tuple.values.size(); ++i) {
    if (attrs[i].type == AttrType::kLink) {
      out->push_back(tuple.values[i].as_link());
    } else if (attrs[i].type == AttrType::kRelation) {
      for (const Tuple& sub : tuple.values[i].as_relation()) {
        CollectExpectedLinks(*attrs[i].relation, sub, out);
      }
    }
  }
}

}  // namespace

void AppendCanonicalTuple(const Tuple& tuple, std::string* out) {
  PutFixed32(out, static_cast<uint32_t>(tuple.values.size()));
  for (const Value& value : tuple.values) AppendCanonicalValue(value, out);
}

ShadowModel::ShadowModel(std::shared_ptr<const Schema> schema,
                         TraceHeader header)
    : schema_(std::move(schema)), header_(header) {}

Tuple ShadowModel::Materialize(ObjectRef ref, const Stored& stored) const {
  Tuple object =
      MakeWorkloadObject(*schema_, ref, stored.payload_seed, stored.fanout,
                         header_.ref_universe, header_.string_bytes);
  if (stored.has_root_override) {
    const Tuple root = MakeWorkloadRootRecord(*schema_, ref, stored.root_seed,
                                              header_.string_bytes);
    const auto& attrs = schema_->attributes();
    for (size_t i = 0; i < attrs.size(); ++i) {
      if (attrs[i].type != AttrType::kRelation) {
        object.values[i] = root.values[i];
      }
    }
  }
  return object;
}

void ShadowModel::ApplyWrite(const TraceOp& op) {
  switch (op.kind) {
    case TraceOpKind::kPut:
      objects_[op.ref] = Stored{op.payload_seed, op.fanout, false, 0};
      break;
    case TraceOpKind::kReplace:
      objects_[op.ref] = Stored{op.payload_seed, op.fanout, false, 0};
      break;
    case TraceOpKind::kUpdateRoot: {
      Stored& stored = objects_[op.ref];
      stored.has_root_override = true;
      stored.root_seed = op.payload_seed;
      break;
    }
    case TraceOpKind::kRemove:
      objects_.erase(op.ref);
      break;
    case TraceOpKind::kBegin:
      txn_stack_.push_back(objects_);
      break;
    case TraceOpKind::kCommit:
      txn_stack_.pop_back();
      break;
    case TraceOpKind::kRollback:
      objects_ = std::move(txn_stack_.back());
      txn_stack_.pop_back();
      break;
    default:
      break;  // read-class ops do not change state
  }
}

Expected ShadowModel::ExpectRead(const TraceOp& op) const {
  Expected expected;
  if (op.kind == TraceOpKind::kScan) {
    expected.present = true;
    expected.scan = ExpectScan();
    return expected;
  }
  const auto it = objects_.find(op.ref);
  if (it == objects_.end()) return expected;  // expected NotFound
  expected.present = true;
  switch (op.kind) {
    case TraceOpKind::kGet:
    case TraceOpKind::kGetByKey:
      expected.tuple = Materialize(op.ref, it->second);
      break;
    case TraceOpKind::kChildren: {
      const Tuple object = Materialize(op.ref, it->second);
      CollectExpectedLinks(*schema_, object, &expected.children);
      break;
    }
    case TraceOpKind::kRootRecord: {
      Tuple object = Materialize(op.ref, it->second);
      const auto& attrs = schema_->attributes();
      for (size_t i = 0; i < attrs.size(); ++i) {
        if (attrs[i].type == AttrType::kRelation) {
          object.values[i] = Value::Relation({});
        }
      }
      expected.tuple = std::move(object);
      break;
    }
    default:
      break;
  }
  return expected;
}

std::map<int64_t, Tuple> ShadowModel::ExpectScan() const {
  std::map<int64_t, Tuple> image;
  for (const auto& [ref, stored] : objects_) {
    image.emplace(WorkloadKeyOf(ref), Materialize(ref, stored));
  }
  return image;
}

Tuple ShadowModel::ExpectedObject(ObjectRef ref) const {
  return Materialize(ref, objects_.at(ref));
}

void ShadowModel::AbortOpenTxns() {
  if (txn_stack_.empty()) return;
  // The outermost snapshot is the state before the first open Begin.
  objects_ = std::move(txn_stack_.front());
  txn_stack_.clear();
}

uint32_t ShadowModel::Digest() const {
  std::string bytes;
  for (const auto& [ref, stored] : objects_) {
    // Keyed by the object key (not the ref) so a store-side scan — which
    // only sees keys — digests to the same bytes.
    PutFixed64(&bytes, static_cast<uint64_t>(WorkloadKeyOf(ref)));
    AppendCanonicalTuple(Materialize(ref, stored), &bytes);
  }
  return Crc32(bytes);
}

}  // namespace starfish::workload
