#include "util/random.h"

#include <cmath>

namespace starfish {

namespace {

// splitmix64: seed expander recommended by the xoshiro authors.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t n) {
  if (n == 0) return 0;
  // Rejection sampling to remove modulo bias.
  const uint64_t threshold = (0 - n) % n;  // == 2^64 mod n
  for (;;) {
    const uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(Uniform(span));
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1) double.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

std::string Rng::RandomString(size_t length) {
  static constexpr char kAlphabet[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 ";
  static constexpr size_t kAlphabetSize = sizeof(kAlphabet) - 1;  // 64
  std::string out;
  out.resize(length);
  for (size_t i = 0; i < length; ++i) {
    out[i] = kAlphabet[Next() & (kAlphabetSize - 1)];
  }
  return out;
}

void Rng::Shuffle(std::vector<uint64_t>* values) {
  for (size_t i = values->size(); i > 1; --i) {
    const size_t j = Uniform(i);
    std::swap((*values)[i - 1], (*values)[j]);
  }
}

}  // namespace starfish
