#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <variant>

/// \file status.h
/// Error handling primitives for the starfish library.
///
/// The library does not throw exceptions. Fallible operations return a
/// starfish::Status, or a starfish::Result<T> when they also produce a value
/// (the RocksDB / Apache Arrow idiom). Helper macros propagate errors up the
/// call stack.

namespace starfish {

/// Machine-readable category of an error.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kResourceExhausted = 5,
  kIOError = 6,
  kCorruption = 7,
  kNotSupported = 8,
  kInternal = 9,
  kFailedPrecondition = 10,
};

/// Returns a stable, human-readable name for a status code ("OK", "IOError"...).
std::string_view StatusCodeToString(StatusCode code);

/// The outcome of a fallible operation: a code plus an optional message.
///
/// A default-constructed Status is OK. Status is cheap to copy for the OK
/// case and carries a heap-allocated message otherwise.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with an explicit code and message.
  Status(StatusCode code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  bool IsInvalidArgument() const { return code_ == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsResourceExhausted() const { return code_ == StatusCode::kResourceExhausted; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsNotSupported() const { return code_ == StatusCode::kNotSupported; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }

  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && msg_ == other.msg_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string msg_;
};

/// A value of type T or the Status explaining why it could not be produced.
///
/// Access the value only after checking ok(); accessing the value of a failed
/// Result is undefined (checked by assert in debug builds via std::get).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(google-explicit-constructor)

  /// Implicit construction from a non-OK status (failure).
  Result(Status status) : repr_(std::move(status)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// Status of the operation; OK when a value is present.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  const T& value() const& { return std::get<T>(repr_); }
  T& value() & { return std::get<T>(repr_); }
  T&& value() && { return std::get<T>(std::move(repr_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this result holds an error.
  T value_or(T fallback) const {
    return ok() ? value() : std::move(fallback);
  }

 private:
  std::variant<Status, T> repr_;
};

namespace internal {
// Token pasting helpers so the macros below create unique temporaries.
#define STARFISH_CONCAT_IMPL(a, b) a##b
#define STARFISH_CONCAT(a, b) STARFISH_CONCAT_IMPL(a, b)
}  // namespace internal

/// Propagates a non-OK Status to the caller.
#define STARFISH_RETURN_NOT_OK(expr)                      \
  do {                                                    \
    ::starfish::Status _st = (expr);                      \
    if (!_st.ok()) return _st;                            \
  } while (false)

/// Evaluates a Result<T> expression; assigns the value to `lhs` on success,
/// returns the error Status otherwise. `lhs` may include a declaration.
#define STARFISH_ASSIGN_OR_RETURN(lhs, rexpr)                          \
  STARFISH_ASSIGN_OR_RETURN_IMPL(                                      \
      STARFISH_CONCAT(_starfish_result_, __LINE__), lhs, rexpr)

#define STARFISH_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                   \
  if (!tmp.ok()) return tmp.status();                   \
  lhs = std::move(tmp).value()

}  // namespace starfish
