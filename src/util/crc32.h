#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

/// \file crc32.h
/// CRC-32 (the IEEE 802.3 polynomial, reflected) over byte ranges.
///
/// The durability metadata writers append a CRC-32 to everything whose loss
/// must be *detected* rather than tolerated: each catalog generation file
/// and each record of the volume.meta allocator journal. A torn write, a
/// truncation or a flipped byte then turns into a checksum mismatch that the
/// reader converts into "fall back to the previous consistent state" instead
/// of parsing garbage.
///
/// Table-driven, one byte at a time — these blobs are checkpoint-rate
/// metadata of a few KiB, not a data path worth SIMD.

namespace starfish {

namespace crc32_internal {

inline const uint32_t* Table() {
  static const auto* table = [] {
    auto* t = new uint32_t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace crc32_internal

/// CRC-32 of `data`, optionally continuing from a previous value (pass the
/// previous return value as `seed` to checksum split buffers).
inline uint32_t Crc32(std::string_view data, uint32_t seed = 0) {
  const uint32_t* table = crc32_internal::Table();
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (unsigned char byte : data) {
    c = table[(c ^ byte) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace starfish
