#pragma once

#include <string>
#include <string_view>

#include "util/status.h"

/// \file file_io.h
/// Small-file helpers shared by the persistence metadata writers
/// (MmapVolume's volume.meta journal, ComplexObjectStore's catalog
/// generations and CURRENT pointer).

namespace starfish {

/// Reads the whole file into `*out`. A missing file is not an error:
/// `*found` is set false and OK is returned. Every other failure (open
/// error, read error) is reported as IOError — callers that treat
/// "unreadable" as "absent" would silently reset existing stores.
Status ReadFileToString(const std::string& path, std::string* out,
                        bool* found);

/// fsyncs the directory itself, making previously renamed/created entries
/// durable. A rename is only a crash-safe commit point once the directory
/// holding it has been synced — without this, a power loss can roll back
/// the rename even though the file's own bytes were fsynced.
Status SyncDir(const std::string& dir);

/// Durably replaces `path` with `bytes`: writes `path`.tmp, fsyncs it,
/// renames over `path`, then fsyncs the parent directory so the rename
/// itself survives power loss. The rename is the commit point.
Status WriteFileAtomic(const std::string& path, std::string_view bytes);

/// Appends `bytes` to `path` (creating it if absent) and fsyncs the file.
/// Used for the allocator journal: the append is NOT atomic — a crash can
/// leave a torn tail record, which is why every journal record carries its
/// own checksum and the replayer drops a corrupt tail.
Status AppendFileDurable(const std::string& path, std::string_view bytes);

}  // namespace starfish
