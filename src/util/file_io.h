#pragma once

#include <string>
#include <string_view>

#include "util/status.h"

/// \file file_io.h
/// Small-file helpers shared by the persistence metadata writers
/// (MmapVolume's volume.meta, ComplexObjectStore's catalog.sf).

namespace starfish {

/// Reads the whole file into `*out`. A missing file is not an error:
/// `*found` is set false and OK is returned. Every other failure (open
/// error, read error) is reported as IOError — callers that treat
/// "unreadable" as "absent" would silently reset existing stores.
Status ReadFileToString(const std::string& path, std::string* out,
                        bool* found);

/// Durably replaces `path` with `bytes`: writes `path`.tmp, fsyncs it, then
/// renames over `path` (the rename is the commit point).
Status WriteFileAtomic(const std::string& path, std::string_view bytes);

}  // namespace starfish
