#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

/// \file coding.h
/// Little-endian fixed-width encoding helpers used by the on-page record
/// formats. All page and record layouts in starfish are explicitly
/// little-endian so that a dumped page image is platform independent.

namespace starfish {

inline void EncodeFixed16(char* dst, uint16_t value) {
  std::memcpy(dst, &value, sizeof(value));
}

inline void EncodeFixed32(char* dst, uint32_t value) {
  std::memcpy(dst, &value, sizeof(value));
}

inline void EncodeFixed64(char* dst, uint64_t value) {
  std::memcpy(dst, &value, sizeof(value));
}

inline uint16_t DecodeFixed16(const char* src) {
  uint16_t value;
  std::memcpy(&value, src, sizeof(value));
  return value;
}

inline uint32_t DecodeFixed32(const char* src) {
  uint32_t value;
  std::memcpy(&value, src, sizeof(value));
  return value;
}

inline uint64_t DecodeFixed64(const char* src) {
  uint64_t value;
  std::memcpy(&value, src, sizeof(value));
  return value;
}

inline void PutFixed16(std::string* dst, uint16_t value) {
  char buf[sizeof(value)];
  EncodeFixed16(buf, value);
  dst->append(buf, sizeof(buf));
}

inline void PutFixed32(std::string* dst, uint32_t value) {
  char buf[sizeof(value)];
  EncodeFixed32(buf, value);
  dst->append(buf, sizeof(buf));
}

inline void PutFixed64(std::string* dst, uint64_t value) {
  char buf[sizeof(value)];
  EncodeFixed64(buf, value);
  dst->append(buf, sizeof(buf));
}

/// Appends a 16-bit length prefix followed by the bytes of `value`.
/// Used for variable-length string attributes (max 64 KiB - 1).
inline void PutLengthPrefixed(std::string* dst, std::string_view value) {
  PutFixed16(dst, static_cast<uint16_t>(value.size()));
  dst->append(value.data(), value.size());
}

/// Bounds-checked readers: each consumes its bytes from the front of `*in`
/// and returns false (leaving `*in` unspecified) when `*in` is too short.
/// Used by the volume/catalog metadata decoders.
inline bool GetFixed16(std::string_view* in, uint16_t* out) {
  if (in->size() < sizeof(*out)) return false;
  *out = DecodeFixed16(in->data());
  in->remove_prefix(sizeof(*out));
  return true;
}

inline bool GetFixed32(std::string_view* in, uint32_t* out) {
  if (in->size() < sizeof(*out)) return false;
  *out = DecodeFixed32(in->data());
  in->remove_prefix(sizeof(*out));
  return true;
}

inline bool GetFixed64(std::string_view* in, uint64_t* out) {
  if (in->size() < sizeof(*out)) return false;
  *out = DecodeFixed64(in->data());
  in->remove_prefix(sizeof(*out));
  return true;
}

/// Reads a 16-bit length prefix followed by that many bytes. The returned
/// view aliases `in`'s buffer.
inline bool GetLengthPrefixed(std::string_view* in, std::string_view* out) {
  uint16_t len = 0;
  if (!GetFixed16(in, &len) || in->size() < len) return false;
  *out = in->substr(0, len);
  in->remove_prefix(len);
  return true;
}

}  // namespace starfish
