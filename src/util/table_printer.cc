#include "util/table_printer.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace starfish {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
  is_separator_.push_back(false);
}

void TablePrinter::AddSeparator() {
  rows_.emplace_back();
  is_separator_.push_back(true);
}

std::string TablePrinter::ToString() const {
  size_t ncols = headers_.size();
  for (const auto& row : rows_) ncols = std::max(ncols, row.size());

  std::vector<size_t> widths(ncols, 0);
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_line = [&](const std::vector<std::string>& cells) {
    std::ostringstream os;
    os << "|";
    for (size_t c = 0; c < ncols; ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      os << ' ' << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    os << '\n';
    return os.str();
  };
  auto render_separator = [&]() {
    std::ostringstream os;
    os << "+";
    for (size_t c = 0; c < ncols; ++c) {
      os << std::string(widths[c] + 2, '-') << '+';
    }
    os << '\n';
    return os.str();
  };

  std::string out;
  out += render_separator();
  out += render_line(headers_);
  out += render_separator();
  for (size_t r = 0; r < rows_.size(); ++r) {
    out += is_separator_[r] ? render_separator() : render_line(rows_[r]);
  }
  out += render_separator();
  return out;
}

void TablePrinter::Print() const { std::fputs(ToString().c_str(), stdout); }

std::string TablePrinter::FormatValue(double value, int precision) {
  if (!std::isfinite(value)) return "-";
  // Integers >= 100 print without decimals (paper style: "6000", "154").
  if (std::abs(value) >= 100.0 || value == std::floor(value)) {
    if (std::abs(value) >= 100.0) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.0f", value);
      return buf;
    }
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision - 1, value);
  // Trim to ~3 significant digits like the paper ("4.00", "86.9", "19.7").
  if (std::abs(value) >= 10.0) {
    std::snprintf(buf, sizeof(buf), "%.1f", value);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f", value);
  }
  return buf;
}

}  // namespace starfish
