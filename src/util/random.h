#pragma once

#include <cstdint>
#include <string>
#include <vector>

/// \file random.h
/// Deterministic pseudo-random number generation.
///
/// The benchmark databases of the paper are randomly generated (creation
/// probabilities, fan-outs, random inter-object references). To make every
/// experiment reproducible bit-for-bit across platforms and standard library
/// implementations, starfish ships its own generator (xoshiro256**) and its
/// own distribution transforms instead of relying on <random>'s
/// implementation-defined distributions.

namespace starfish {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm):
/// a small, fast, high-quality 64-bit PRNG with 256 bits of state.
class Rng {
 public:
  /// Seeds the state from a single 64-bit seed via splitmix64, which is the
  /// recommended seeding procedure for xoshiro generators.
  explicit Rng(uint64_t seed = 0x5742c0de) { Seed(seed); }

  /// Re-seeds the generator; identical seeds yield identical sequences.
  void Seed(uint64_t seed);

  /// Next raw 64-bit output.
  uint64_t Next();

  /// Uniform integer in [0, n). Requires n > 0. Unbiased (rejection method).
  uint64_t Uniform(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1) with 53 bits of precision.
  double NextDouble();

  /// Returns true with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Random printable ASCII string of exactly `length` bytes. The paper fills
  /// its 100-byte STR attributes with dummy data; realistic-looking text
  /// keeps page dumps debuggable.
  std::string RandomString(size_t length);

  /// Fisher-Yates shuffle of `values` (deterministic given the seed).
  void Shuffle(std::vector<uint64_t>* values);

 private:
  uint64_t state_[4];
};

}  // namespace starfish
