#pragma once

#include <cstdint>
#include <string>
#include <vector>

/// \file table_printer.h
/// Fixed-width ASCII table rendering for the benchmark harnesses.
///
/// Every table/figure reproduction prints rows in the layout of the paper;
/// this helper keeps the formatting consistent across the bench binaries.

namespace starfish {

/// Accumulates rows of string cells and renders them with aligned columns.
class TablePrinter {
 public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends a data row; missing trailing cells render empty, extra cells
  /// widen the table.
  void AddRow(std::vector<std::string> cells);

  /// Inserts a horizontal separator line at the current position.
  void AddSeparator();

  /// Renders the full table (headers, separator, rows) as a string.
  std::string ToString() const;

  /// Convenience: render and write to stdout.
  void Print() const;

  /// Formats a double with `precision` significant decimal digits, trimming
  /// the representation the way the paper prints values (e.g. "4.00", "86.9",
  /// "6000").
  static std::string FormatValue(double value, int precision = 3);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;  // separator == empty row tag
  std::vector<bool> is_separator_;
};

}  // namespace starfish
