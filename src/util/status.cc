#include "util/status.h"

namespace starfish {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

}  // namespace starfish
