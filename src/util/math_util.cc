#include "util/math_util.h"

#include <cmath>
#include <limits>

namespace starfish {

double LogFactorial(int64_t n) {
  if (n <= 1) return 0.0;
  return std::lgamma(static_cast<double>(n) + 1.0);
}

double LogBinomial(int64_t n, int64_t k) {
  if (k < 0 || k > n) return -std::numeric_limits<double>::infinity();
  if (k == 0 || k == n) return 0.0;
  return LogFactorial(n) - LogFactorial(k) - LogFactorial(n - k);
}

double BinomialRatio(int64_t a, int64_t b, int64_t t) {
  if (t > a) return 0.0;  // C(a, t) == 0
  const double log_ratio = LogBinomial(a, t) - LogBinomial(b, t);
  return std::exp(log_ratio);
}

}  // namespace starfish
