#pragma once

#include <cstdlib>
#include <memory>

/// \file aligned_buffer.h
/// A grow-only byte buffer with a caller-chosen alignment.
///
/// Direct (O_DIRECT) disk I/O requires transfer buffers aligned to the
/// device's DMA granularity. This helper owns one reusable allocation —
/// DirectVolume's bounce buffers and the buffer pool's prefetch staging
/// area are thread_local AlignedBuffers, so steady state allocates nothing.

namespace starfish {

/// A reusable aligned allocation. Reserve() only ever grows (amortized: the
/// common pattern is a thread_local scratch reused across calls).
class AlignedBuffer {
 public:
  char* data() { return data_.get(); }
  const char* data() const { return data_.get(); }
  size_t capacity() const { return capacity_; }

  /// Ensures at least `bytes` of capacity aligned to `alignment` (a power
  /// of two; at least sizeof(void*)). Existing contents are NOT preserved
  /// across a growth reallocation. Returns false on allocation failure.
  bool Reserve(size_t bytes, size_t alignment) {
    if (bytes == 0) bytes = alignment;
    if (bytes <= capacity_ && alignment <= alignment_) return true;
    void* raw = nullptr;
    if (::posix_memalign(&raw, alignment, bytes) != 0) return false;
    data_.reset(static_cast<char*>(raw));
    capacity_ = bytes;
    alignment_ = alignment;
    return true;
  }

 private:
  struct FreeDeleter {
    void operator()(char* p) const { std::free(p); }
  };
  std::unique_ptr<char, FreeDeleter> data_;
  size_t capacity_ = 0;
  size_t alignment_ = 0;
};

}  // namespace starfish
