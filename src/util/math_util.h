#pragma once

#include <cstdint>

/// \file math_util.h
/// Numerically stable combinatorics for the analytical cost model.
///
/// The Yao/Bernstein page-access formula (Equation 4 of the paper) evaluates
/// ratios of binomial coefficients with arguments in the tens of thousands
/// (e.g. m*k = 11,250 tuples of the Sightseeing relation). Computing those
/// coefficients directly overflows; we work with log-gamma instead.

namespace starfish {

/// Natural logarithm of n! (via lgamma). Requires n >= 0.
double LogFactorial(int64_t n);

/// Natural logarithm of the binomial coefficient C(n, k).
/// Returns -infinity when k < 0 or k > n (the coefficient is zero).
double LogBinomial(int64_t n, int64_t k);

/// Ratio C(a, t) / C(b, t) computed in log space. Requires b >= a >= 0.
/// Used by the Yao formula; the ratio is the probability that t draws
/// without replacement from b items all avoid a designated (b - a)-subset.
double BinomialRatio(int64_t a, int64_t b, int64_t t);

/// Integer division rounding up. Requires b > 0, a >= 0.
constexpr int64_t CeilDiv(int64_t a, int64_t b) { return (a + b - 1) / b; }

}  // namespace starfish
