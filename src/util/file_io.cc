#include "util/file_io.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#define STARFISH_HAVE_FSYNC 1
#endif

namespace starfish {

Status ReadFileToString(const std::string& path, std::string* out,
                        bool* found) {
  *found = false;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (errno == ENOENT) return Status::OK();  // genuinely absent
    return Status::IOError("open " + path + ": " + std::strerror(errno));
  }
  out->clear();
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out->append(buf, n);
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) return Status::IOError("read " + path);
  *found = true;
  return Status::OK();
}

Status SyncDir(const std::string& dir) {
#if STARFISH_HAVE_FSYNC
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IOError("open dir " + dir + ": " + std::strerror(errno));
  }
  const bool ok = ::fsync(fd) == 0;
  const std::string err = ok ? "" : std::strerror(errno);
  ::close(fd);
  if (!ok) return Status::IOError("fsync dir " + dir + ": " + err);
#else
  (void)dir;
#endif
  return Status::OK();
}

Status WriteFileAtomic(const std::string& path, std::string_view bytes) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("open " + tmp + ": " + std::strerror(errno));
  }
  bool ok = std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size() &&
            std::fflush(f) == 0;
#if STARFISH_HAVE_FSYNC
  // The rename only commits durably if the tmp file's bytes reached disk.
  ok = ok && ::fsync(::fileno(f)) == 0;
#endif
  std::fclose(f);
  if (!ok) return Status::IOError("write " + tmp);
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) return Status::IOError("rename " + tmp + ": " + ec.message());
  // ... and the rename itself only commits once the directory entry is on
  // disk. The parent of the rename target is its own dirname.
  const std::string parent =
      std::filesystem::path(path).parent_path().string();
  return SyncDir(parent.empty() ? "." : parent);
}

Status AppendFileDurable(const std::string& path, std::string_view bytes) {
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) {
    return Status::IOError("open " + path + ": " + std::strerror(errno));
  }
  bool ok = std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size() &&
            std::fflush(f) == 0;
#if STARFISH_HAVE_FSYNC
  ok = ok && ::fsync(::fileno(f)) == 0;
#endif
  std::fclose(f);
  if (!ok) return Status::IOError("append " + path);
  return Status::OK();
}

}  // namespace starfish
