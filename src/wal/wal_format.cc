#include "wal/wal_format.h"

#include "util/coding.h"
#include "util/crc32.h"
#include "util/file_io.h"

namespace starfish {

std::string WalPath(const std::string& dir) { return dir + "/wal.log"; }

const char* ToString(WalRecordKind kind) {
  switch (kind) {
    case WalRecordKind::kCheckpoint: return "checkpoint";
    case WalRecordKind::kPut: return "put";
    case WalRecordKind::kUpdateRoot: return "update-root";
    case WalRecordKind::kReplace: return "replace";
    case WalRecordKind::kRemove: return "remove";
    case WalRecordKind::kTxnBegin: return "txn-begin";
    case WalRecordKind::kTxnCommit: return "txn-commit";
    case WalRecordKind::kTxnAbort: return "txn-abort";
  }
  return "unknown";
}

bool IsWalOpKind(WalRecordKind kind) {
  switch (kind) {
    case WalRecordKind::kPut:
    case WalRecordKind::kUpdateRoot:
    case WalRecordKind::kReplace:
    case WalRecordKind::kRemove:
      return true;
    case WalRecordKind::kCheckpoint:
    case WalRecordKind::kTxnBegin:
    case WalRecordKind::kTxnCommit:
    case WalRecordKind::kTxnAbort:
      return false;
  }
  return false;
}

bool IsWalTxnMarker(WalRecordKind kind) {
  return kind == WalRecordKind::kTxnBegin ||
         kind == WalRecordKind::kTxnCommit ||
         kind == WalRecordKind::kTxnAbort;
}

std::string EncodeWalHeader(uint64_t base_lsn) {
  std::string bytes;
  PutFixed32(&bytes, kWalMagic);
  PutFixed32(&bytes, kWalVersion);
  PutFixed64(&bytes, base_lsn);
  PutFixed32(&bytes, Crc32(bytes));
  return bytes;
}

void AppendWalRecord(std::string* dst, WalRecordKind kind, uint8_t flags,
                     uint64_t lsn, std::string_view payload) {
  std::string body;
  body.reserve(10 + payload.size());
  body.push_back(static_cast<char>(kind));
  body.push_back(static_cast<char>(flags));
  PutFixed64(&body, lsn);
  body.append(payload.data(), payload.size());
  PutFixed32(dst, static_cast<uint32_t>(body.size()));
  PutFixed32(dst, Crc32(body));
  dst->append(body);
}

std::string EncodeWalOpPayload(const WalOpPayload& op) {
  std::string out;
  PutFixed64(&out, op.ref);
  PutFixed32(&out, static_cast<uint32_t>(op.pages.size()));
  for (PageId id : op.pages) PutFixed32(&out, id);
  PutFixed32(&out, static_cast<uint32_t>(op.preimages.size()));
  for (const auto& [id, image] : op.preimages) {
    PutFixed32(&out, id);
    PutFixed32(&out, static_cast<uint32_t>(image.size()));
    out.append(image);
  }
  PutFixed32(&out, static_cast<uint32_t>(op.body.size()));
  out.append(op.body);
  // Optional transaction trailer: only written when the op carries txn
  // state, so autonomous ops keep the exact pre-txn encoding.
  if (op.txn_id != 0 || op.undo_kind != 0) {
    PutFixed64(&out, op.txn_id);
    out.push_back(static_cast<char>(op.undo_kind));
    PutFixed32(&out, static_cast<uint32_t>(op.undo_body.size()));
    out.append(op.undo_body);
  }
  return out;
}

bool DecodeWalOpPayload(std::string_view in, WalOpPayload* op) {
  *op = WalOpPayload{};
  uint32_t page_count = 0;
  if (!GetFixed64(&in, &op->ref) || !GetFixed32(&in, &page_count) ||
      page_count > in.size() / 4) {
    return false;
  }
  op->pages.reserve(page_count);
  for (uint32_t i = 0; i < page_count; ++i) {
    uint32_t id = 0;
    if (!GetFixed32(&in, &id)) return false;
    op->pages.push_back(id);
  }
  uint32_t preimage_count = 0;
  if (!GetFixed32(&in, &preimage_count) || preimage_count > in.size() / 8) {
    return false;
  }
  op->preimages.reserve(preimage_count);
  for (uint32_t i = 0; i < preimage_count; ++i) {
    uint32_t id = 0, len = 0;
    if (!GetFixed32(&in, &id) || !GetFixed32(&in, &len) || len > in.size()) {
      return false;
    }
    op->preimages.emplace_back(id, std::string(in.substr(0, len)));
    in.remove_prefix(len);
  }
  uint32_t body_len = 0;
  if (!GetFixed32(&in, &body_len) || body_len > in.size()) return false;
  op->body.assign(in.data(), body_len);
  in.remove_prefix(body_len);
  if (in.empty()) return true;  // pre-txn encoding: no trailer
  uint32_t undo_len = 0;
  if (in.size() < 13 || !GetFixed64(&in, &op->txn_id)) return false;
  op->undo_kind = static_cast<uint8_t>(in.front());
  in.remove_prefix(1);
  if (!GetFixed32(&in, &undo_len) || undo_len != in.size()) return false;
  op->undo_body.assign(in.data(), in.size());
  return true;
}

std::string EncodeWalCheckpointPayload(uint64_t generation) {
  std::string out;
  PutFixed64(&out, generation);
  return out;
}

bool DecodeWalCheckpointPayload(std::string_view in, uint64_t* generation) {
  return GetFixed64(&in, generation) && in.empty();
}

std::string EncodeWalTxnPayload(uint64_t txn_id) {
  std::string out;
  PutFixed64(&out, txn_id);
  return out;
}

bool DecodeWalTxnPayload(std::string_view in, uint64_t* txn_id) {
  return GetFixed64(&in, txn_id) && in.empty();
}

void ScanWalBytes(std::string_view bytes, WalScan* out) {
  *out = WalScan{};
  out->found = true;

  std::string_view in(bytes);
  uint32_t magic = 0, version = 0, header_crc = 0;
  uint64_t base_lsn = 0;
  if (bytes.size() < kWalHeaderSize || !GetFixed32(&in, &magic) ||
      magic != kWalMagic || !GetFixed32(&in, &version) ||
      version != kWalVersion || !GetFixed64(&in, &base_lsn) ||
      !GetFixed32(&in, &header_crc) ||
      Crc32(bytes.substr(0, 16)) != header_crc) {
    return;  // header_valid stays false; the caller decides how bad that is
  }
  out->header_valid = true;
  out->base_lsn = base_lsn;
  out->valid_bytes = kWalHeaderSize;

  // Records must validate AND carry the dense expected LSN: a frame whose
  // lsn is out of sequence is as untrustworthy as a CRC mismatch (the file
  // was not produced by ordered appends to this header).
  while (!in.empty()) {
    std::string_view frame(in);
    uint32_t body_len = 0, body_crc = 0;
    if (!GetFixed32(&frame, &body_len) || !GetFixed32(&frame, &body_crc) ||
        body_len < 10 || frame.size() < body_len) {
      out->torn_tail = true;
      break;
    }
    const std::string_view body = frame.substr(0, body_len);
    if (Crc32(body) != body_crc) {
      out->torn_tail = true;
      break;
    }
    WalRecord record;
    record.kind = static_cast<WalRecordKind>(static_cast<uint8_t>(body[0]));
    record.flags = static_cast<uint8_t>(body[1]);
    std::string_view lsn_view = body.substr(2, 8);
    GetFixed64(&lsn_view, &record.lsn);
    if (record.lsn != base_lsn + out->records.size()) {
      out->torn_tail = true;
      break;
    }
    record.payload.assign(body.data() + 10, body.size() - 10);
    out->records.push_back(std::move(record));
    const size_t frame_bytes = 8 + body_len;
    out->valid_bytes += frame_bytes;
    in.remove_prefix(frame_bytes);
  }
  out->next_lsn = base_lsn + out->records.size();
}

Result<WalScan> ScanWalFile(const std::string& path) {
  std::string bytes;
  bool found = false;
  STARFISH_RETURN_NOT_OK(ReadFileToString(path, &bytes, &found));
  WalScan scan;
  if (!found) return scan;
  ScanWalBytes(bytes, &scan);
  return scan;
}

}  // namespace starfish
