#pragma once

#include <condition_variable>
#include <memory>
#include <mutex>
#include <unordered_set>

#include "buffer/buffer_manager.h"
#include "disk/log_file.h"
#include "wal/wal_format.h"

/// \file wal_manager.h
/// The write-ahead log of one persistent store: LSN allocation, record
/// buffering, epoch-based group commit, checkpoint truncation, and the
/// WAL-before-data ordering hook the buffer pool calls at write-back.
///
/// Concurrency protocol (the multi-writer story):
///
///   * AppendOp runs under the op's per-segment write-latch set, held from
///     apply through LSN stamping — so per segment (and hence per page),
///     LSN order IS apply order, which is what makes logical redo
///     deterministic. Ops on disjoint latch sets append concurrently: the
///     payload is encoded outside mu_ and only the framing runs under it,
///     keeping the log the single short serialized point of the write path.
///   * Commit(lsn) runs OUTSIDE the store mutex: concurrent committers
///     overlap in EnsureDurable, where the first arrival becomes the epoch
///     leader, snapshots the pending buffer, appends + fsyncs it in one
///     batch, and wakes every follower whose LSN the batch covered. Under
///     `kGroup` the leader first waits `group_interval_us` so more
///     committers can join the epoch — the Samsung-IO-stack observation
///     that one fsync can carry many writers' durability work.
///   * Sync policies: kAlways (every commit waits for durability, batched
///     with its contemporaries), kGroup{interval_us} (same, after the
///     accumulation window), kNone (commits return immediately; durability
///     arrives at the next checkpoint — the pre-WAL contract, and the
///     default).
///
/// Failure model (fsyncgate): a failed append, sync or truncation poisons
/// the manager permanently. A poisoned log acknowledges nothing, the store
/// fails writes fast, and Flush refuses to checkpoint — the directory stays
/// at the last committed state instead of advancing past records that may
/// not be on disk.
///
/// WAL-before-data: the buffer pool calls EnsureDurable(max frame LSN)
/// before handing a write-back batch to the volume, regardless of sync
/// policy — an un-synced page image must never land over committed bytes
/// while the record that explains it is still volatile.

namespace starfish {

/// When a committer learns its record is durable.
enum class WalSyncPolicy {
  kNone,    ///< never at commit; the checkpoint syncs (default)
  kAlways,  ///< every commit fsyncs (leader-batched with concurrent ones)
  kGroup,   ///< leader waits group_interval_us, then one fsync per epoch
};

struct WalManagerOptions {
  WalSyncPolicy sync = WalSyncPolicy::kNone;
  /// Epoch accumulation window of the kGroup leader, microseconds.
  uint32_t group_interval_us = 100;
  /// Under kNone, pending records are spilled (un-synced) to the file once
  /// the in-memory buffer exceeds this, bounding memory between checkpoints.
  size_t spill_bytes = 1 << 20;
};

class WalManager final : public WalOrderingHook {
 public:
  /// Takes over the log whose on-disk state is `scan` (produced by
  /// ScanWalFile on the same path `file` appends to).
  ///
  ///   * valid scan, clean tail — appends continue at scan.next_lsn;
  ///   * valid scan, torn tail — the file is first rewritten to its valid
  ///     prefix (durably), so new appends follow validated bytes;
  ///   * missing file or invalid header — the log is rebuilt fresh at
  ///     `rebuild_base_lsn`: header only when `rebuild_generation` is 0, or
  ///     header + a checkpoint record carrying that generation (its LSN is
  ///     the base). The caller is responsible for having recovered the
  ///     store by other means (the paranoid scrub) before discarding the
  ///     tail like this.
  static Result<std::unique_ptr<WalManager>> Open(
      std::unique_ptr<LogFile> file, const WalScan& scan,
      uint64_t rebuild_base_lsn, uint64_t rebuild_generation,
      WalManagerOptions options);

  /// First LSN no appended record carries yet.
  uint64_t next_lsn() const;

  /// Highest LSN known durable.
  uint64_t durable_lsn() const;

  /// OK, or the poison status after a log I/O failure.
  Status status() const;

  WalSyncPolicy sync_policy() const { return options_.sync; }

  // -------------------------------------------------------- pre-images --
  /// Pages below this id existed at the last checkpoint: an op's first
  /// write to one of them this interval must log a pre-image.
  void SetCheckpointPageCount(uint64_t page_count);

  /// True when an op dirtying `id` must capture its pre-image: the page
  /// belongs to the committed checkpoint and no record since then carries
  /// an image of it. (The buffer pool's write capture queries this.)
  bool NeedsPreimage(PageId id) const;

  // ------------------------------------------------------------- append --
  /// Appends one op record under the op's write-latch set: assigns the next
  /// LSN, frames the record into the pending buffer, and marks the op's
  /// pre-imaged pages as imaged for this checkpoint interval. Volatile
  /// until EnsureDurable covers the returned LSN.
  Result<uint64_t> AppendOp(WalRecordKind kind, uint8_t flags,
                            const WalOpPayload& op);

  /// Appends a kTxnBegin/kTxnCommit/kTxnAbort marker carrying `txn_id`.
  /// Same LSN and durability semantics as AppendOp; markers dirty no pages
  /// and are never re-run — replay only reads them to decide which txn ops
  /// redo.
  Result<uint64_t> AppendTxnMarker(WalRecordKind kind, uint64_t txn_id);

  /// Commit acknowledgement per the sync policy: kNone returns immediately,
  /// kAlways/kGroup block until `lsn` is durable.
  Status Commit(uint64_t lsn);

  /// WAL-before-data (WalOrderingHook): group-commit core. lsn 0 = no-op.
  Status EnsureDurable(uint64_t lsn) override;

  /// Makes every appended record durable (checkpoint preamble).
  Status SyncAll();

  // --------------------------------------------------------- checkpoint --
  /// Durably truncates the log at a committed checkpoint: the file becomes
  /// header{base_lsn = checkpoint_lsn} + one checkpoint record (that LSN,
  /// carrying `generation`), the imaged-page set clears, and the pre-image
  /// threshold becomes `page_count`. `checkpoint_lsn` must be next_lsn()
  /// at the time the catalog payload was built (every op record before the
  /// catalog commit is below it). Called after CommitCurrentGeneration —
  /// a crash in between leaves stale sub-checkpoint records that the next
  /// Open's replay filter skips.
  Status TruncateAt(uint64_t checkpoint_lsn, uint64_t generation,
                    uint64_t page_count);

 private:
  WalManager(std::unique_ptr<LogFile> file, WalManagerOptions options)
      : file_(std::move(file)), options_(options) {}

  /// Appends pending_ to the file un-synced (memory bound). mu_ held,
  /// no leader active.
  void SpillLocked();

  void PoisonLocked(const Status& s);

  std::unique_ptr<LogFile> file_;
  WalManagerOptions options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  uint64_t next_lsn_ = 1;
  uint64_t durable_lsn_ = 0;
  /// Framed records not yet handed to the file.
  std::string pending_;
  /// An epoch leader is appending+syncing with mu_ released.
  bool leader_active_ = false;
  Status poison_ = Status::OK();
  /// Pre-image bookkeeping (see NeedsPreimage).
  uint64_t checkpoint_page_count_ = 0;
  std::unordered_set<PageId> imaged_pages_;
};

}  // namespace starfish
