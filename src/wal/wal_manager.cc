#include "wal/wal_manager.h"

#include <chrono>
#include <thread>

namespace starfish {

Result<std::unique_ptr<WalManager>> WalManager::Open(
    std::unique_ptr<LogFile> file, const WalScan& scan,
    uint64_t rebuild_base_lsn, uint64_t rebuild_generation,
    WalManagerOptions options) {
  auto wal =
      std::unique_ptr<WalManager>(new WalManager(std::move(file), options));
  if (scan.found && scan.header_valid) {
    if (scan.torn_tail) {
      // Durably cut the garbage off: appends must follow validated bytes,
      // or the next scan would stop at the old tear forever.
      std::string prefix = EncodeWalHeader(scan.base_lsn);
      for (const WalRecord& r : scan.records) {
        AppendWalRecord(&prefix, r.kind, r.flags, r.lsn, r.payload);
      }
      STARFISH_RETURN_NOT_OK(wal->file_->Replace(prefix));
      wal->durable_lsn_ = scan.next_lsn - 1;
    } else {
      // The records were read back, but the previous process may never have
      // fsynced them: durable only from the base, until the first sync
      // covers the whole file.
      wal->durable_lsn_ = scan.base_lsn == 0 ? 0 : scan.base_lsn - 1;
    }
    wal->next_lsn_ = scan.next_lsn;
  } else {
    // Missing or header-corrupt log: rebuild fresh. The tail (if any ever
    // existed) is gone — the caller recovers by scrubbing to the committed
    // catalog before trusting this.
    std::string fresh = EncodeWalHeader(rebuild_base_lsn);
    uint64_t next = rebuild_base_lsn;
    if (rebuild_generation > 0) {
      AppendWalRecord(&fresh, WalRecordKind::kCheckpoint, 0, rebuild_base_lsn,
                      EncodeWalCheckpointPayload(rebuild_generation));
      next = rebuild_base_lsn + 1;
    }
    STARFISH_RETURN_NOT_OK(wal->file_->Replace(fresh));
    wal->next_lsn_ = next;
    wal->durable_lsn_ = next - 1;
  }
  return {std::move(wal)};
}

uint64_t WalManager::next_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_lsn_;
}

uint64_t WalManager::durable_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return durable_lsn_;
}

Status WalManager::status() const {
  std::lock_guard<std::mutex> lock(mu_);
  return poison_;
}

void WalManager::SetCheckpointPageCount(uint64_t page_count) {
  std::lock_guard<std::mutex> lock(mu_);
  checkpoint_page_count_ = page_count;
}

bool WalManager::NeedsPreimage(PageId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return id < checkpoint_page_count_ && imaged_pages_.count(id) == 0;
}

void WalManager::PoisonLocked(const Status& s) {
  if (poison_.ok()) poison_ = s;
}

void WalManager::SpillLocked() {
  const Status s = file_->Append(pending_);
  if (!s.ok()) {
    PoisonLocked(s);
    return;
  }
  pending_.clear();
}

Result<uint64_t> WalManager::AppendOp(WalRecordKind kind, uint8_t flags,
                                      const WalOpPayload& op) {
  // Encode outside mu_: the payload copy (pre-images + body) is the bulk of
  // the work, and writers on disjoint latch sets reach here concurrently.
  const std::string payload = EncodeWalOpPayload(op);
  std::lock_guard<std::mutex> lock(mu_);
  if (!poison_.ok()) return poison_;
  const uint64_t lsn = next_lsn_++;
  AppendWalRecord(&pending_, kind, flags, lsn, payload);
  for (const auto& [id, image] : op.preimages) {
    (void)image;
    imaged_pages_.insert(id);
  }
  // Bound memory between checkpoints: overflow goes to the file un-synced
  // (durable_lsn_ does not move; the next epoch's fsync covers it). Skipped
  // while a leader holds the file — appends must stay ordered.
  if (pending_.size() >= options_.spill_bytes && !leader_active_) {
    SpillLocked();
    if (!poison_.ok()) return poison_;
  }
  return lsn;
}

Result<uint64_t> WalManager::AppendTxnMarker(WalRecordKind kind,
                                             uint64_t txn_id) {
  const std::string payload = EncodeWalTxnPayload(txn_id);
  std::lock_guard<std::mutex> lock(mu_);
  if (!poison_.ok()) return poison_;
  const uint64_t lsn = next_lsn_++;
  AppendWalRecord(&pending_, kind, 0, lsn, payload);
  if (pending_.size() >= options_.spill_bytes && !leader_active_) {
    SpillLocked();
    if (!poison_.ok()) return poison_;
  }
  return lsn;
}

Status WalManager::Commit(uint64_t lsn) {
  if (options_.sync == WalSyncPolicy::kNone) return Status::OK();
  return EnsureDurable(lsn);
}

Status WalManager::EnsureDurable(uint64_t lsn) {
  if (lsn == 0) return Status::OK();
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (!poison_.ok()) return poison_;
    if (durable_lsn_ >= lsn) return Status::OK();
    if (!leader_active_) break;
    cv_.wait(lock);  // follower: the leader's epoch may cover us
  }

  // This thread leads the epoch. Under kGroup it first leaves the mutex so
  // concurrent committers can enqueue into the batch it is about to sync.
  leader_active_ = true;
  if (options_.sync == WalSyncPolicy::kGroup &&
      options_.group_interval_us > 0) {
    lock.unlock();
    std::this_thread::sleep_for(
        std::chrono::microseconds(options_.group_interval_us));
    lock.lock();
  }
  std::string batch = std::move(pending_);
  pending_.clear();
  const uint64_t target = next_lsn_ - 1;
  lock.unlock();

  Status s = Status::OK();
  if (!batch.empty()) s = file_->Append(batch);
  if (s.ok()) s = file_->Sync();  // also covers earlier spilled bytes

  lock.lock();
  leader_active_ = false;
  if (!s.ok()) {
    PoisonLocked(s);
    cv_.notify_all();
    return poison_;
  }
  if (target > durable_lsn_) durable_lsn_ = target;
  cv_.notify_all();
  // The caller's record predates this epoch's snapshot, so target >= lsn.
  return Status::OK();
}

Status WalManager::SyncAll() {
  uint64_t target = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!poison_.ok()) return poison_;
    target = next_lsn_ - 1;
  }
  return EnsureDurable(target);
}

Status WalManager::TruncateAt(uint64_t checkpoint_lsn, uint64_t generation,
                              uint64_t page_count) {
  std::unique_lock<std::mutex> lock(mu_);
  // Quiesce: a late committer may still be leading an (empty) epoch.
  cv_.wait(lock, [&] { return !leader_active_; });
  if (!poison_.ok()) return poison_;
  std::string fresh = EncodeWalHeader(checkpoint_lsn);
  AppendWalRecord(&fresh, WalRecordKind::kCheckpoint, 0, checkpoint_lsn,
                  EncodeWalCheckpointPayload(generation));
  const Status s = file_->Replace(fresh);
  if (!s.ok()) {
    PoisonLocked(s);
    cv_.notify_all();
    return poison_;
  }
  next_lsn_ = checkpoint_lsn + 1;
  durable_lsn_ = checkpoint_lsn;
  pending_.clear();
  imaged_pages_.clear();
  checkpoint_page_count_ = page_count;
  cv_.notify_all();
  return Status::OK();
}

}  // namespace starfish
