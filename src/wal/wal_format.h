#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "disk/page.h"
#include "util/status.h"

/// \file wal_format.h
/// On-disk format of the write-ahead log — shared by the WAL manager
/// (append/replay), the offline verifier (sf_fsck) and the torn-tail tests,
/// so the writer and every reader agree byte-for-byte on what a valid log
/// is. Same CRC-32 framing idiom as the catalog generations
/// (core/generations.h) and the allocator journal (volume_meta.h).
///
/// File layout (little-endian throughout):
///
///   header:  u32 magic 'SFWL', u32 version (1), u64 base_lsn,
///            u32 crc32 over the preceding 16 bytes
///   record:  u32 body_len, u32 crc32 over body,
///            body = [u8 kind, u8 flags, u64 lsn, payload]
///
/// LSNs are dense: record i carries lsn == base_lsn + i. The scanner stops
/// at the first frame that fails its length, CRC or LSN-sequence check —
/// everything after a torn or bit-flipped record is dropped, which is sound
/// because appends are strictly ordered (a record is only durable when
/// every record before it is).
///
/// Record payloads:
///
///   kCheckpoint:  u64 generation — the catalog generation whose commit
///                 truncated the log here. Written as the first record of
///                 every truncated log; its lsn equals the catalog's
///                 checkpoint LSN.
///   op records (kPut/kUpdateRoot/kReplace/kRemove):
///                 u64 ref,
///                 u32 page_count,   page ids the op dirtied (stamp targets),
///                 u32 preimage_count, per image {u32 page, u32 len, bytes}
///                   — full pre-op images of pages that already belonged to
///                   the committed checkpoint, captured at most once per
///                   page per checkpoint interval (first-touch),
///                 u32 body_len, body — the op's logical argument
///                   (serialized object regions for kPut/kReplace, the flat
///                   root image for kUpdateRoot, empty for kRemove),
///                 then an OPTIONAL transaction trailer (absent on
///                 autonomous ops, so version-1 logs stay decodable):
///                 u64 txn_id, u8 undo_kind, u32 undo_len, undo bytes —
///                   the logical compensation (op kind + body) that
///                   reverses this op, recorded so an acked-but-uncommitted
///                   op is auditable and reversible from the log alone.
///   txn markers (kTxnBegin/kTxnCommit/kTxnAbort):
///                 u64 txn_id — transaction ids are store-local and reset
///                 at every open (safe: every open ends with a truncating
///                 checkpoint, so ids never collide across a log).
///
/// Replay = install every page's FIRST pre-image in the tail (that restores
/// the committed content of every page the tail touched), then re-run the
/// non-aborted ops in LSN order through the normal model write path. Ops
/// carrying a txn id are re-run only when the tail also holds that txn's
/// kTxnCommit marker: a transaction whose commit never became durable —
/// including one that logged kTxnAbort plus compensations — contributes
/// nothing to redo (its pre-images alone restore committed state). See
/// docs/WAL.md for why this physiological scheme is exact.

namespace starfish {

inline constexpr uint32_t kWalMagic = 0x4C574653;  // "SFWL"
inline constexpr uint32_t kWalVersion = 1;
inline constexpr size_t kWalHeaderSize = 20;
inline constexpr size_t kWalRecordOverhead = 8 + 10;  // frame + body prefix

/// `<dir>/wal.log`
std::string WalPath(const std::string& dir);

enum class WalRecordKind : uint8_t {
  kCheckpoint = 1,
  kPut = 2,
  kUpdateRoot = 3,
  kReplace = 4,
  kRemove = 5,
  kTxnBegin = 6,
  kTxnCommit = 7,
  kTxnAbort = 8,
};

/// The op failed mid-apply: its pre-images roll the pages back at replay
/// and the logical re-run is skipped.
inline constexpr uint8_t kWalFlagAborted = 1;

const char* ToString(WalRecordKind kind);
bool IsWalOpKind(WalRecordKind kind);
/// True for the kTxnBegin/kTxnCommit/kTxnAbort markers — they carry no
/// pages, dirty nothing, and are never re-run; they only decide which op
/// records redo.
bool IsWalTxnMarker(WalRecordKind kind);

/// One de-framed log record.
struct WalRecord {
  WalRecordKind kind = WalRecordKind::kCheckpoint;
  uint8_t flags = 0;
  uint64_t lsn = 0;
  std::string payload;
};

/// Decoded payload of an op record.
struct WalOpPayload {
  uint64_t ref = 0;
  std::vector<PageId> pages;
  std::vector<std::pair<PageId, std::string>> preimages;
  std::string body;
  /// Transaction this op belongs to; 0 = autonomous (commits with its own
  /// record). Encoded as an optional trailer so pre-txn logs still decode.
  uint64_t txn_id = 0;
  /// Logical undo: the op kind (as uint8_t; 0 = none) and body that reverse
  /// this op. Only captured for in-transaction ops.
  uint8_t undo_kind = 0;
  std::string undo_body;
};

/// Frames `bytes` as a log file header.
std::string EncodeWalHeader(uint64_t base_lsn);

/// Appends one framed record (length, crc, body) to `*dst`.
void AppendWalRecord(std::string* dst, WalRecordKind kind, uint8_t flags,
                     uint64_t lsn, std::string_view payload);

std::string EncodeWalOpPayload(const WalOpPayload& op);
bool DecodeWalOpPayload(std::string_view in, WalOpPayload* op);

std::string EncodeWalCheckpointPayload(uint64_t generation);
bool DecodeWalCheckpointPayload(std::string_view in, uint64_t* generation);

std::string EncodeWalTxnPayload(uint64_t txn_id);
bool DecodeWalTxnPayload(std::string_view in, uint64_t* txn_id);

/// Result of scanning a log file: the valid prefix and how it ended.
struct WalScan {
  bool found = false;         ///< the file exists
  bool header_valid = false;  ///< magic/version/header-crc check passed
  uint64_t base_lsn = 0;
  std::vector<WalRecord> records;  ///< the valid prefix, in LSN order
  /// Bytes beyond the valid prefix were present but failed validation (a
  /// torn append or bit rot) — dropped, like the allocator journal's tail.
  bool torn_tail = false;
  size_t valid_bytes = 0;  ///< header + valid records
  /// First LSN no scanned record carries: base_lsn + records.size(). The
  /// next record appended to this log gets it, and no valid page image may
  /// carry a page LSN at or beyond it.
  uint64_t next_lsn = 0;
};

/// Validates in-memory log bytes into `*out` (never fails: damage shows up
/// as header_valid=false or torn_tail).
void ScanWalBytes(std::string_view bytes, WalScan* out);

/// Reads and validates the log at `path` with plain file I/O. Only a hard
/// read error is a non-OK status; a missing file is found=false.
Result<WalScan> ScanWalFile(const std::string& path);

}  // namespace starfish
