// Reproduces Table 7: data skew — the creation probability drops from 80%
// to 20% and the fan-out grows from 2 to 8, keeping the same expected
// number of children but a much wider spread. The paper finds the overall
// query-2b figures "similar to those of the original benchmark".

#include <cstdio>

#include "harness.h"

namespace starfish::bench {
namespace {

int Run() {
  PrintBanner("Table 7",
              "Query 2b measurements under data skew: probability 20% / "
              "fan-out 8 versus the default 80% / 2 (same expected 4.1 "
              "children per object, wider variance).");

  GeneratorConfig normal;
  normal.n_objects = 1500;
  GeneratorConfig skewed = normal;
  skewed.creation_probability = 0.2;
  skewed.fanout = 8;

  auto normal_db = BenchmarkDatabase::Generate(normal);
  auto skewed_db = BenchmarkDatabase::Generate(skewed);
  if (!normal_db.ok() || !skewed_db.ok()) return 1;

  std::printf("default: avg %.2f Platforms / %.2f Connections, max %u / %u\n",
              normal_db->stats().avg_platforms,
              normal_db->stats().avg_connections,
              normal_db->stats().max_platforms,
              normal_db->stats().max_connections);
  std::printf("skewed:  avg %.2f Platforms / %.2f Connections, max %u / %u "
              "(paper: 1.57 / 3.99 average; max 6 Platforms, 34 "
              "Connections)\n\n",
              skewed_db->stats().avg_platforms,
              skewed_db->stats().avg_connections,
              skewed_db->stats().max_platforms,
              skewed_db->stats().max_connections);

  BufferOptions buffer;
  buffer.frame_count = 1200;
  QueryConfig query;
  query.loops = 300;

  TablePrinter table({"STORAGE MODEL", "2b pages (default)",
                      "2b pages (skewed)", "2b fixes (default)",
                      "2b fixes (skewed)"});
  for (StorageModelKind kind : AllStorageModelKinds()) {
    auto a = BenchmarkRunner::RunOne(kind, *normal_db, buffer, query);
    auto b = BenchmarkRunner::RunOne(kind, *skewed_db, buffer, query);
    if (!a.ok() || !b.ok()) return 1;
    table.AddRow({ModelLabel(kind), Cell(a->queries.q2b.Pages()),
                  Cell(b->queries.q2b.Pages()), Cell(a->queries.q2b.Fixes()),
                  Cell(b->queries.q2b.Fixes())});
  }
  table.Print();

  std::printf(
      "\nShape to check: per-loop aggregates barely move under skew (the "
      "paper: \"the overall figures are similar to those of the original "
      "benchmark\"); the I/O is merely concentrated into fewer, heavier "
      "loops. bench_ablation_skew_nodes quantifies the paper's closing "
      "remark about distributed placement.\n");
  return 0;
}

}  // namespace
}  // namespace starfish::bench

int main() { return starfish::bench::Run(); }
