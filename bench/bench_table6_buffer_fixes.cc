// Reproduces Table 6: "the number of pages that have been fixed in the
// buffer" — the paper's CPU-load proxy; NSM's join-by-scan execution fixes
// hundreds of thousands of pages ("more than 370,000 page fixes" for
// query 2b; ~2.5 h on the Sun 3/60 against <0.5 h for the others).

#include <cstdio>

#include "disk/disk_timing.h"
#include "harness.h"

namespace starfish::bench {
namespace {

int Run() {
  PrintBanner("Table 6",
              "Measured buffer page fixes per query (CPU-load indicator): "
              "query 1 per object, queries 2/3 per loop.");

  const RunnerOptions options = PaperRunnerOptions();
  BenchmarkRunner runner(options);
  auto results = runner.Run();
  if (!results.ok()) {
    std::fprintf(stderr, "run: %s\n", results.status().ToString().c_str());
    return 1;
  }
  PrintQueryTable(results.value(), &QueryMeasurement::Fixes);

  for (const ModelRunResult& r : results.value()) {
    if (r.kind == StorageModelKind::kNsm) {
      std::printf("\nNSM query 2b total fixes: %.0f (paper: \"more than "
                  "370,000 page fixes\"; 300 loops x %.0f fixes/loop).\n",
                  r.queries.q2b.Fixes() * options.query.loops,
                  r.queries.q2b.Fixes());
    }
  }

  // The paper's response-time anecdote: "On a Sun 3/60 workstation this
  // [NSM query 2b] program took about 2.5 hours, whereas the same query was
  // executed within at most 0.5 hour for the other storage models."
  // Estimated here as CPU (fix cost on a ~3-MIPS machine, ~20 ms per fix
  // incl. decode) + disk (Eq. 1 with period-disk coefficients).
  std::printf("\nEstimated query-2b response time (Sun-3/60-scale model):\n");
  constexpr double kMsPerFix = 20.0;
  const LinearTimingModel disk_model{24.0, 1.3};
  TablePrinter rt({"STORAGE MODEL", "CPU (min)", "disk (min)", "total (min)"});
  for (const ModelRunResult& r : results.value()) {
    const double total_fixes = r.queries.q2b.Fixes() * options.query.loops;
    const double cpu_min = total_fixes * kMsPerFix / 60000.0;
    const double disk_min =
        disk_model.Cost(r.queries.q2b.Calls() * options.query.loops,
                        r.queries.q2b.Pages() * options.query.loops) /
        60000.0;
    rt.AddRow({ModelLabel(r.kind), Cell(cpu_min), Cell(disk_min),
               Cell(cpu_min + disk_min)});
  }
  rt.Print();
  std::printf(
      "Shape to check: NSM lands in hours, everything else well under half "
      "an hour — the paper's 2.5 h vs <0.5 h anecdote.\n"
      "Paper anchors: NSM ~1,240 fixes/loop for query 2b; DASDBS-NSM the "
      "fewest; the direct models in between.\n");
  return 0;
}

}  // namespace
}  // namespace starfish::bench

int main() { return starfish::bench::Run(); }
